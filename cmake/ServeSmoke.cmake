# End-to-end serving-chain smoke: fit-and-save a demo model, generate
# valid requests from its header domains, then serve them. Fails unless
# every step exits 0, the serve step prints a parseable "[serve] ..."
# stats line on stderr, and stdout is exactly one 0/1 prediction per
# request. (ctest PASS_REGULAR_EXPRESSION alone ignores exit codes,
# which would mask sanitizer aborts after the marker prints.)
#
# A second pass feeds the same requests with two bad lines spliced in:
# strict mode (the default) must refuse the stream with a nonzero exit,
# and resilient mode (HAMLET_SERVE_ON_ERROR=skip) must serve everything
# else, emitting in-order ERR lines and errors=2 in the summary.
#
# Usage: cmake -DSERVE_BIN=<hamlet_serve> -DWORK_DIR=<dir> \
#              [-DFAMILY=<demo family>] -P ServeSmoke.cmake

if(NOT DEFINED SERVE_BIN OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "ServeSmoke.cmake needs -DSERVE_BIN=... and -DWORK_DIR=...")
endif()
if(NOT DEFINED FAMILY)
  set(FAMILY "dt")
endif()

file(MAKE_DIRECTORY "${WORK_DIR}")
set(model "${WORK_DIR}/smoke_${FAMILY}.hmlm")
set(requests "${WORK_DIR}/smoke_${FAMILY}_requests.txt")

execute_process(
  COMMAND "${SERVE_BIN}" --train-demo "${model}" "${FAMILY}"
  RESULT_VARIABLE rc
  ERROR_VARIABLE step_err
)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "serve smoke: --train-demo failed (${rc}): ${step_err}")
endif()

execute_process(
  COMMAND "${SERVE_BIN}" --emit-requests "${model}" "100"
  RESULT_VARIABLE rc
  OUTPUT_FILE "${requests}"
  ERROR_VARIABLE step_err
)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "serve smoke: --emit-requests failed (${rc}): ${step_err}")
endif()

execute_process(
  COMMAND "${SERVE_BIN}" "${model}" "${requests}"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE serve_out
  ERROR_VARIABLE serve_err
)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "serve smoke: serving failed (${rc}): ${serve_err}")
endif()

# The machine-parseable summary contract (also parsed by humans and by
# bench tooling): every key present, rows equal to the request count.
if(NOT serve_err MATCHES "\\[serve\\] model=[^ ]+ rows=100 batches=[0-9]+ errors=0 model_seconds=[0-9.]+ preds_per_sec=[0-9.]+ p50_us=[0-9.]+ p99_us=[0-9.]+")
  message(FATAL_ERROR "serve smoke: stats line missing or malformed in stderr:\n${serve_err}")
endif()

# Predictions: exactly 100 lines, each a bare 0 or 1.
string(REGEX REPLACE "\n$" "" trimmed "${serve_out}")
string(REPLACE "\n" ";" pred_lines "${trimmed}")
list(LENGTH pred_lines num_preds)
if(NOT num_preds EQUAL 100)
  message(FATAL_ERROR "serve smoke: expected 100 prediction lines, got ${num_preds}")
endif()
foreach(p IN LISTS pred_lines)
  if(NOT p MATCHES "^[01]$")
    message(FATAL_ERROR "serve smoke: bad prediction line '${p}'")
  endif()
endforeach()

# ---- error-isolation pass: the same requests with two bad lines ----
# Line 1 is non-numeric; the last line is out of every demo family's
# domains (each domain is < 999).
set(bad_requests "${WORK_DIR}/smoke_${FAMILY}_bad_requests.txt")
file(READ "${requests}" good_requests)
file(WRITE "${bad_requests}" "oops not a request\n${good_requests}999 999 999 999\n")

# Strict mode (the default) must refuse the stream: nonzero exit, no
# summary line.
execute_process(
  COMMAND "${SERVE_BIN}" "${model}" "${bad_requests}"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE strict_out
  ERROR_VARIABLE strict_err
)
if(rc EQUAL 0)
  message(FATAL_ERROR "serve smoke: strict mode accepted a malformed stream:\n${strict_err}")
endif()
if(NOT strict_err MATCHES "request line 1")
  message(FATAL_ERROR "serve smoke: strict failure does not name the line:\n${strict_err}")
endif()

# Resilient mode serves the 100 good rows, reports errors=2, and keeps
# one output line per request (102 = 100 predictions + 2 ERR lines).
execute_process(
  COMMAND "${CMAKE_COMMAND}" -E env HAMLET_SERVE_ON_ERROR=skip
          "${SERVE_BIN}" "${model}" "${bad_requests}"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE skip_out
  ERROR_VARIABLE skip_err
)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "serve smoke: resilient serving failed (${rc}): ${skip_err}")
endif()
if(NOT skip_err MATCHES "\\[serve\\] model=[^ ]+ rows=100 batches=[0-9]+ errors=2 ")
  message(FATAL_ERROR "serve smoke: resilient stats line missing or malformed:\n${skip_err}")
endif()
string(REGEX REPLACE "\n$" "" skip_trimmed "${skip_out}")
string(REPLACE "\n" ";" skip_lines "${skip_trimmed}")
list(LENGTH skip_lines num_lines)
if(NOT num_lines EQUAL 102)
  message(FATAL_ERROR "serve smoke: expected 102 output lines (100 predictions + 2 ERR), got ${num_lines}")
endif()
# The ERR lines land in request order: first and last.
list(GET skip_lines 0 first_line)
list(GET skip_lines 101 last_line)
if(NOT first_line MATCHES "^ERR 1: ")
  message(FATAL_ERROR "serve smoke: expected 'ERR 1: ...' first, got '${first_line}'")
endif()
if(NOT last_line MATCHES "^ERR 102: ")
  message(FATAL_ERROR "serve smoke: expected 'ERR 102: ...' last, got '${last_line}'")
endif()

# ---- bad-seed guard: --emit-requests must reject a garbage seed ----
# (strtoull used to turn "banana" into seed 0 silently, quietly
# reproducing the wrong request stream.)
execute_process(
  COMMAND "${SERVE_BIN}" --emit-requests "${model}" "5" "banana"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE seed_out
  ERROR_VARIABLE seed_err
)
if(rc EQUAL 0)
  message(FATAL_ERROR "serve smoke: --emit-requests accepted garbage seed 'banana'")
endif()
if(NOT seed_err MATCHES "bad request seed")
  message(FATAL_ERROR "serve smoke: bad-seed failure lacks a clear message:\n${seed_err}")
endif()

# ---- socket pass: the TCP front-end against the same fixtures ----
# Start `--listen 0` in the background (execute_process is synchronous,
# so the server goes through sh), parse the announced ephemeral port,
# drive concurrent --client runs, probe /healthz, then SIGTERM and
# check the graceful-shutdown summary.
set(server_err_file "${WORK_DIR}/smoke_${FAMILY}_server_err.txt")
set(stdin_out_file "${WORK_DIR}/smoke_${FAMILY}_stdin_out.txt")
file(WRITE "${stdin_out_file}" "${serve_out}")

execute_process(
  COMMAND sh -c "'${SERVE_BIN}' --listen 0 '${model}' > /dev/null 2> '${server_err_file}' & echo $!"
  OUTPUT_VARIABLE server_pid
  RESULT_VARIABLE rc
)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "serve smoke: failed to launch --listen server (${rc})")
endif()
string(STRIP "${server_pid}" server_pid)

# Kills the background server before failing, so a broken smoke does
# not leak a listener into the CI machine.
macro(socket_fatal msg)
  execute_process(COMMAND sh -c "kill -9 ${server_pid} 2> /dev/null || true")
  message(FATAL_ERROR "${msg}")
endmacro()

# Wait for the port announcement (the server prints it once bound).
set(port "")
foreach(attempt RANGE 100)
  if(EXISTS "${server_err_file}")
    file(READ "${server_err_file}" server_banner)
    if(server_banner MATCHES "listening on port ([0-9]+)")
      set(port "${CMAKE_MATCH_1}")
      break()
    endif()
  endif()
  execute_process(COMMAND "${CMAKE_COMMAND}" -E sleep 0.1)
endforeach()
if(port STREQUAL "")
  socket_fatal("serve smoke: server never announced its port")
endif()

# Three concurrent clients streaming the same requests: each response
# stream must be bit-identical to the stdin path's output.
execute_process(
  COMMAND sh -c "'${SERVE_BIN}' --client 127.0.0.1:${port} '${requests}' > '${WORK_DIR}/smoke_${FAMILY}_client_1.txt' & '${SERVE_BIN}' --client 127.0.0.1:${port} '${requests}' > '${WORK_DIR}/smoke_${FAMILY}_client_2.txt' & '${SERVE_BIN}' --client 127.0.0.1:${port} '${requests}' > '${WORK_DIR}/smoke_${FAMILY}_client_3.txt' & wait"
  RESULT_VARIABLE rc
  ERROR_VARIABLE clients_err
)
if(NOT rc EQUAL 0)
  socket_fatal("serve smoke: --client run failed (${rc}): ${clients_err}")
endif()
foreach(client_idx 1 2 3)
  execute_process(
    COMMAND "${CMAKE_COMMAND}" -E compare_files
            "${stdin_out_file}" "${WORK_DIR}/smoke_${FAMILY}_client_${client_idx}.txt"
    RESULT_VARIABLE rc
  )
  if(NOT rc EQUAL 0)
    socket_fatal("serve smoke: client ${client_idx} responses differ from the stdin path")
  endif()
endforeach()

# The health probe answers while the server is serving.
execute_process(
  COMMAND sh -c "echo /healthz | '${SERVE_BIN}' --client 127.0.0.1:${port}"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE health_out
)
if(NOT rc EQUAL 0 OR NOT health_out MATCHES "^OK model=[^ ]+ rows=[0-9]+ errors=[0-9]+")
  socket_fatal("serve smoke: /healthz probe failed (${rc}): ${health_out}")
endif()

# Graceful shutdown: SIGTERM, wait for exit, then the stderr log must
# end with a well-formed summary covering all three clients' rows.
execute_process(
  COMMAND sh -c "kill -TERM ${server_pid} && for i in $(seq 50); do kill -0 ${server_pid} 2> /dev/null || exit 0; sleep 0.1; done; exit 1"
  RESULT_VARIABLE rc
)
if(NOT rc EQUAL 0)
  socket_fatal("serve smoke: server did not exit within 5s of SIGTERM")
endif()
file(READ "${server_err_file}" net_err)
if(NOT net_err MATCHES "\\[serve\\] model=[^ ]+ rows=300 batches=[0-9]+ errors=0 model_seconds=[0-9.]+ preds_per_sec=[0-9.]+ p50_us=[0-9.]+ p99_us=[0-9.]+")
  message(FATAL_ERROR "serve smoke: socket shutdown summary missing or malformed:\n${net_err}")
endif()

message("serve smoke (${FAMILY}): OK — ${serve_err}")
