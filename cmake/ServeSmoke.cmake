# End-to-end serving-chain smoke: fit-and-save a demo model, generate
# valid requests from its header domains, then serve them. Fails unless
# every step exits 0, the serve step prints a parseable "[serve] ..."
# stats line on stderr, and stdout is exactly one 0/1 prediction per
# request. (ctest PASS_REGULAR_EXPRESSION alone ignores exit codes,
# which would mask sanitizer aborts after the marker prints.)
#
# Usage: cmake -DSERVE_BIN=<hamlet_serve> -DWORK_DIR=<dir> \
#              [-DFAMILY=<demo family>] -P ServeSmoke.cmake

if(NOT DEFINED SERVE_BIN OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "ServeSmoke.cmake needs -DSERVE_BIN=... and -DWORK_DIR=...")
endif()
if(NOT DEFINED FAMILY)
  set(FAMILY "dt")
endif()

file(MAKE_DIRECTORY "${WORK_DIR}")
set(model "${WORK_DIR}/smoke_${FAMILY}.hmlm")
set(requests "${WORK_DIR}/smoke_${FAMILY}_requests.txt")

execute_process(
  COMMAND "${SERVE_BIN}" --train-demo "${model}" "${FAMILY}"
  RESULT_VARIABLE rc
  ERROR_VARIABLE step_err
)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "serve smoke: --train-demo failed (${rc}): ${step_err}")
endif()

execute_process(
  COMMAND "${SERVE_BIN}" --emit-requests "${model}" "100"
  RESULT_VARIABLE rc
  OUTPUT_FILE "${requests}"
  ERROR_VARIABLE step_err
)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "serve smoke: --emit-requests failed (${rc}): ${step_err}")
endif()

execute_process(
  COMMAND "${SERVE_BIN}" "${model}" "${requests}"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE serve_out
  ERROR_VARIABLE serve_err
)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "serve smoke: serving failed (${rc}): ${serve_err}")
endif()

# The machine-parseable summary contract (also parsed by humans and by
# bench tooling): every key present, rows equal to the request count.
if(NOT serve_err MATCHES "\\[serve\\] model=[^ ]+ rows=100 batches=[0-9]+ model_seconds=[0-9.]+ preds_per_sec=[0-9.]+ p50_us=[0-9.]+ p99_us=[0-9.]+")
  message(FATAL_ERROR "serve smoke: stats line missing or malformed in stderr:\n${serve_err}")
endif()

# Predictions: exactly 100 lines, each a bare 0 or 1.
string(REGEX REPLACE "\n$" "" trimmed "${serve_out}")
string(REPLACE "\n" ";" pred_lines "${trimmed}")
list(LENGTH pred_lines num_preds)
if(NOT num_preds EQUAL 100)
  message(FATAL_ERROR "serve smoke: expected 100 prediction lines, got ${num_preds}")
endif()
foreach(p IN LISTS pred_lines)
  if(NOT p MATCHES "^[01]$")
    message(FATAL_ERROR "serve smoke: bad prediction line '${p}'")
  endif()
endforeach()

message("serve smoke (${FAMILY}): OK — ${serve_err}")
