# Runs a binary and fails unless BOTH the exit code is 0 and MARKER
# appears in its stdout. (ctest's PASS_REGULAR_EXPRESSION alone ignores
# the exit code, which would mask e.g. sanitizer aborts after the marker
# prints.)
#
# Usage: cmake -DCMD=<binary> -DMARKER=<regex> -P RunSmokeTest.cmake

if(NOT DEFINED CMD OR NOT DEFINED MARKER)
  message(FATAL_ERROR "RunSmokeTest.cmake needs -DCMD=... and -DMARKER=...")
endif()

execute_process(
  COMMAND "${CMD}"
  OUTPUT_VARIABLE smoke_out
  ERROR_VARIABLE smoke_err
  RESULT_VARIABLE smoke_rc
)
message("${smoke_out}")
if(smoke_err)
  message("${smoke_err}")
endif()

if(NOT smoke_rc EQUAL 0)
  message(FATAL_ERROR "smoke: ${CMD} exited with '${smoke_rc}'")
endif()
if(NOT smoke_out MATCHES "${MARKER}")
  message(FATAL_ERROR "smoke: marker '${MARKER}' not found in stdout")
endif()
