# Shared compile/link settings: strict warnings for all hamlet targets and
# the opt-in HAMLET_SANITIZE (ASan+UBSan) / HAMLET_TSAN (ThreadSanitizer)
# modes. The two sanitizer modes are mutually exclusive (TSan cannot link
# with ASan).
#
# Usage: target_link_libraries(<tgt> PRIVATE hamlet::flags)

add_library(hamlet_flags INTERFACE)
add_library(hamlet::flags ALIAS hamlet_flags)

if(CMAKE_CXX_COMPILER_ID MATCHES "GNU|Clang")
  target_compile_options(hamlet_flags INTERFACE -Wall -Wextra -Werror)
elseif(MSVC)
  target_compile_options(hamlet_flags INTERFACE /W4 /WX)
endif()

if(HAMLET_SANITIZE AND HAMLET_TSAN)
  message(FATAL_ERROR
    "HAMLET_SANITIZE and HAMLET_TSAN are mutually exclusive; pick one")
endif()

if(HAMLET_SANITIZE)
  if(NOT CMAKE_CXX_COMPILER_ID MATCHES "GNU|Clang")
    message(FATAL_ERROR "HAMLET_SANITIZE requires gcc or clang")
  endif()
  set(_hamlet_san_flags -fsanitize=address,undefined -fno-sanitize-recover=all
      -fno-omit-frame-pointer)
  target_compile_options(hamlet_flags INTERFACE ${_hamlet_san_flags})
  target_link_options(hamlet_flags INTERFACE ${_hamlet_san_flags})
  # Keep CodeMatrix::at() bounds checks on even in optimised sanitizer
  # builds: a row-internal overrun stays inside the heap allocation, where
  # ASan alone cannot flag it.
  target_compile_definitions(hamlet_flags INTERFACE HAMLET_CHECK_BOUNDS=1)
  message(STATUS "hamlet: building with ASan + UBSan")
endif()

if(HAMLET_TSAN)
  if(NOT CMAKE_CXX_COMPILER_ID MATCHES "GNU|Clang")
    message(FATAL_ERROR "HAMLET_TSAN requires gcc or clang")
  endif()
  set(_hamlet_tsan_flags -fsanitize=thread -fno-omit-frame-pointer)
  target_compile_options(hamlet_flags INTERFACE ${_hamlet_tsan_flags})
  target_link_options(hamlet_flags INTERFACE ${_hamlet_tsan_flags})
  target_compile_definitions(hamlet_flags INTERFACE HAMLET_CHECK_BOUNDS=1)
  message(STATUS "hamlet: building with ThreadSanitizer")
endif()

# Clang's thread-safety analysis checks the HAMLET_GUARDED_BY/
# HAMLET_REQUIRES annotations (common/thread_annotations.h) at compile
# time. Combined with the project-wide -Werror, any lock-discipline
# violation is a build break. The analysis only exists in clang; gcc
# builds compile the annotations as no-ops, so this mode is a hard error
# elsewhere rather than a silent no-op.
if(HAMLET_THREAD_SAFETY)
  if(NOT CMAKE_CXX_COMPILER_ID MATCHES "Clang")
    message(FATAL_ERROR
      "HAMLET_THREAD_SAFETY requires clang (-Wthread-safety is a clang "
      "analysis; gcc builds treat the annotations as no-ops)")
  endif()
  target_compile_options(hamlet_flags INTERFACE -Wthread-safety)
  message(STATUS "hamlet: clang thread-safety analysis enabled")
endif()
