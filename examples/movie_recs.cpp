// Movie-rating prediction with FK smoothing (paper §6.2).
//
// A MovieLens-style scenario: ratings joined with users and movies. Some
// movie FK values never occur among the training rows (γ > 0) but do occur
// at serving time — popular R tree packages crash on this. We compare the
// library's three answers: majority-branch routing, random smoothing, and
// X_R-based smoothing that uses the movies table as side information.
//
// Run: ./example_movie_recs

#include <cstdio>

#include "hamlet/core/experiment.h"
#include "hamlet/core/fk_smoothing.h"
#include "hamlet/core/variants.h"
#include "hamlet/ml/metrics.h"
#include "hamlet/ml/tree/decision_tree.h"
#include "hamlet/synth/realworld.h"

int main() {
  using namespace hamlet;

  auto spec = synth::RealWorldSpecByName("Movies", 0.5);
  StarSchema star = synth::GenerateRealWorld(spec.value());
  Result<core::PreparedData> prepared = core::Prepare(
      star, 33, synth::RealWorldJoinOptions(spec.value()));
  core::PreparedData& p = prepared.value();

  // Induce unseen movie FKs: drop training rows whose movie code is in the
  // first third of the domain.
  const int movie_fk = p.data.IndexOf("fk_movies");
  const uint32_t domain = p.data.feature_spec(movie_fk).domain_size;
  const uint32_t cutoff = domain / 3;
  std::vector<uint32_t> kept;
  for (uint32_t row : p.split.train) {
    if (p.data.feature(row, movie_fk) >= cutoff) kept.push_back(row);
  }
  std::printf("Training rows: %zu -> %zu after withholding %u of %u movie "
              "codes\n\n",
              p.split.train.size(), kept.size(), cutoff, domain);
  p.split.train = std::move(kept);

  const auto nojoin =
      core::SelectVariant(p.data, core::FeatureVariant::kNoJoin);

  // (a) No smoothing: majority-branch routing inside the tree.
  {
    SplitViews views = MakeSplitViews(p.data, p.split, nojoin);
    ml::DecisionTree tree({.minsplit = 10,
                           .cp = 0.001,
                           .unseen_policy =
                               ml::UnseenPolicy::kMajorityBranch});
    (void)tree.Fit(views.train);
    std::printf("majority-branch routing: accuracy=%.4f\n",
                ml::Accuracy(tree, views.test));
  }

  // (b) and (c): smooth the FK column, then train normally.
  DataView train_fk(&p.data, p.split.train,
                    {static_cast<uint32_t>(movie_fk)});
  const std::vector<uint8_t> seen = core::SeenCodes(train_fk, 0);
  struct Method {
    const char* label;
    core::SmoothingMethod method;
  };
  for (const Method& m : {Method{"random smoothing", //
                                 core::SmoothingMethod::kRandom},
                          Method{"X_R-based smoothing",
                                 core::SmoothingMethod::kXrBased}}) {
    Result<core::SmoothingMap> map =
        m.method == core::SmoothingMethod::kRandom
            ? core::BuildRandomSmoothing(seen, 77)
            : core::BuildXrSmoothing(
                  seen, star.dimension(1).table);  // movies = dim 1
    Dataset smoothed = p.data;
    (void)core::ApplySmoothing(smoothed, movie_fk, map.value());
    SplitViews views = MakeSplitViews(smoothed, p.split, nojoin);
    ml::DecisionTree tree({.minsplit = 10, .cp = 0.001});
    (void)tree.Fit(views.train);
    std::printf("%-22s: accuracy=%.4f (reassigned %zu unseen codes)\n",
                m.label, ml::Accuracy(tree, views.test),
                map.value().num_unseen);
  }

  std::printf(
      "\nX_R-based smoothing uses the movies table only as side\n"
      "information for code reassignment — the model still never learns\n"
      "over foreign features (the \"best of both worlds\" of §6.2).\n");
  return 0;
}
