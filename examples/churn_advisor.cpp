// Churn prediction — the paper's running example (§1).
//
// Customers(CustomerID, Churn, Gender, Age, Employer) joins
// Employers(Employer, State, Revenue). The data scientist wants employer
// features for churn prediction; the advisor tells her whether she can
// skip procuring the Employers table at all. We build the scenario from
// CSV snippets to show the ingestion path, then compare all three feature
// variants across model families.
//
// Run: ./example_churn_advisor

#include <cmath>
#include <cstdio>

#include "hamlet/common/rng.h"
#include "hamlet/core/advisor.h"
#include "hamlet/core/experiment.h"
#include "hamlet/relational/csv.h"

namespace {

using namespace hamlet;

/// Synthesises the Customers/Employers star schema: churn depends on the
/// employer's state/revenue (foreign features) plus the customer's age
/// bucket (home feature).
StarSchema MakeChurnStar(size_t customers, size_t employers,
                         uint64_t seed) {
  Rng rng(seed);
  Table emp(TableSchema({{"state", 5}, {"revenue_bucket", 4}}));
  std::vector<double> emp_score(employers);
  for (size_t e = 0; e < employers; ++e) {
    const uint32_t state = static_cast<uint32_t>(rng.UniformInt(5));
    const uint32_t revenue = static_cast<uint32_t>(rng.UniformInt(4));
    emp.AppendRowUnchecked({state, revenue});
    // "Rich companies in coastal states" (states 0-1) churn less.
    emp_score[e] = (state <= 1 ? -0.8 : 0.4) + (revenue >= 2 ? -0.6 : 0.5);
  }

  StarSchema star{Table(TableSchema({{"gender", 2}, {"age_bucket", 6}}))};
  star.AddDimension("employers", std::move(emp));
  for (size_t c = 0; c < customers; ++c) {
    const uint32_t gender = static_cast<uint32_t>(rng.UniformInt(2));
    const uint32_t age = static_cast<uint32_t>(rng.UniformInt(6));
    const uint32_t fk = static_cast<uint32_t>(rng.UniformInt(employers));
    const double score = emp_score[fk] + (age <= 1 ? 0.7 : -0.2);
    const double p = 1.0 / (1.0 + std::exp(-score));
    (void)star.AppendFact({gender, age}, {fk}, rng.Bernoulli(p) ? 1 : 0);
  }
  return star;
}

}  // namespace

int main() {
  using namespace hamlet;

  // Show the CSV ingestion path on a toy Employers snippet.
  const char* employers_csv =
      "employer,state,revenue\n"
      "acme,CA,high\n"
      "initech,TX,low\n"
      "globex,NY,high\n";
  Result<CsvTable> parsed = ReadCsv(employers_csv);
  std::printf("Parsed employers CSV: %zu rows, %zu columns; "
              "state domain = %u values\n\n",
              parsed.value().table.num_rows(),
              parsed.value().table.num_columns(),
              parsed.value().table.schema().column(1).domain_size);

  // The full scenario: 4000 customers, 80 employers (tuple ratio 25).
  StarSchema star = MakeChurnStar(4000, 80, 11);

  std::printf("Tuple ratio (train split): %.1f\n\n",
              0.5 * star.TupleRatio(0));
  for (auto family :
       {core::ModelFamily::kLinear, core::ModelFamily::kRbfSvm,
        core::ModelFamily::kDecisionTree}) {
    std::printf("Advice for %s:\n%s\n", core::ModelFamilyName(family),
                core::FormatAdvice(core::AdviseJoins(star, family)).c_str());
  }

  // Verify with a decision tree and an RBF-SVM.
  Result<core::PreparedData> prepared = core::Prepare(star, 13);
  for (auto kind : {core::ModelKind::kTreeGini, core::ModelKind::kSvmRbf}) {
    std::printf("%s:\n", core::ModelKindName(kind));
    for (auto variant :
         {core::FeatureVariant::kJoinAll, core::FeatureVariant::kNoJoin,
          core::FeatureVariant::kNoFK}) {
      Result<core::VariantResult> r = core::RunVariant(
          prepared.value(), kind, variant, core::Effort::kQuick);
      std::printf("  %-8s accuracy = %.4f\n", r.value().variant_name.c_str(),
                  r.value().test_accuracy);
    }
  }
  std::printf(
      "\nAt tuple ratio 25 every family can avoid the Employers join; the\n"
      "FK column alone carries the employer signal.\n");
  return 0;
}
