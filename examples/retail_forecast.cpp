// Retail sales forecasting with FK domain compression (paper §6.1).
//
// A Walmart-style scenario: department-level sales joined with stores and
// economic indicators. The store FK domain is large enough to make the
// learned tree unreadable, so we compress it with the supervised
// sort-based method and show (a) the accuracy is retained and (b) the tree
// becomes small enough to print.
//
// Run: ./example_retail_forecast

#include <cstdio>

#include "hamlet/core/experiment.h"
#include "hamlet/core/fk_compression.h"
#include "hamlet/core/variants.h"
#include "hamlet/ml/metrics.h"
#include "hamlet/ml/tree/decision_tree.h"
#include "hamlet/ml/tree/tree_printer.h"
#include "hamlet/synth/realworld.h"

int main() {
  using namespace hamlet;

  auto spec = synth::RealWorldSpecByName("Walmart", 0.5);
  StarSchema star = synth::GenerateRealWorld(spec.value());
  Result<core::PreparedData> prepared = core::Prepare(
      star, 21, synth::RealWorldJoinOptions(spec.value()));
  core::PreparedData& p = prepared.value();

  // Baseline: NoJoin tree on the raw FK domains.
  const auto nojoin = core::SelectVariant(p.data, core::FeatureVariant::kNoJoin);
  SplitViews views = MakeSplitViews(p.data, p.split, nojoin);
  ml::DecisionTree raw_tree({.minsplit = 10, .cp = 0.001});
  (void)raw_tree.Fit(views.train);
  std::printf("Raw FK domains:    accuracy=%.4f, tree nodes=%zu\n",
              ml::Accuracy(raw_tree, views.test), raw_tree.num_nodes());

  // Compress every FK column to 8 buckets with the supervised method.
  Dataset compressed = p.data;
  for (uint32_t col : core::ForeignKeyColumns(compressed)) {
    DataView train_col(&compressed, p.split.train, {col});
    Result<core::DomainMapping> map =
        core::BuildSortedEntropyMapping(train_col, 0, 8);
    if (!map.ok()) {
      std::printf("compression failed: %s\n",
                  map.status().ToString().c_str());
      return 1;
    }
    (void)core::ApplyMapping(compressed, col, map.value());
  }
  SplitViews cviews = MakeSplitViews(compressed, p.split,
                                     core::SelectVariant(
                                         compressed,
                                         core::FeatureVariant::kNoJoin));
  ml::DecisionTree small_tree({.minsplit = 10, .cp = 0.001});
  (void)small_tree.Fit(cviews.train);
  std::printf("Budget-8 domains:  accuracy=%.4f, tree nodes=%zu\n\n",
              ml::Accuracy(small_tree, cviews.test),
              small_tree.num_nodes());

  // The §6.1 payoff: the compressed tree is small enough to read.
  std::printf("%s\n", ml::PrintTree(small_tree, cviews.train, 4).c_str());
  std::printf("%s\n",
              ml::PrintFeatureUsage(small_tree, cviews.train).c_str());
  return 0;
}
