// Quickstart: the hamlet pipeline in ~60 lines.
//
// Builds a tiny two-table star schema, asks the JoinSafetyAdvisor whether
// the dimension join can be avoided, then verifies the advice empirically
// by training a decision tree with JoinAll vs NoJoin features.
//
// Run: ./example_quickstart

#include <cstdio>

#include "hamlet/core/advisor.h"
#include "hamlet/core/experiment.h"
#include "hamlet/core/variants.h"
#include "hamlet/synth/onexr.h"

int main() {
  using namespace hamlet;

  // 1. Get a star schema. Here: the OneXr simulation (a lone foreign
  //    feature drives the label) with 2000 facts over 40 dimension rows —
  //    a healthy tuple ratio of 2000/40 = 50.
  synth::OneXrConfig cfg;
  cfg.ns = 2000;
  cfg.nr = 40;
  StarSchema star = synth::GenerateOneXr(cfg);

  // 2. Schema-only advice: no dimension bytes are read for this.
  std::printf("Join-safety advice for a decision tree:\n");
  const auto advice =
      core::AdviseJoins(star, core::ModelFamily::kDecisionTree);
  std::printf("%s\n", core::FormatAdvice(advice).c_str());

  // 3. Verify empirically: join once, train on JoinAll vs NoJoin.
  Result<core::PreparedData> prepared = core::Prepare(star, /*seed=*/7);
  if (!prepared.ok()) {
    std::printf("prepare failed: %s\n", prepared.status().ToString().c_str());
    return 1;
  }
  for (auto variant :
       {core::FeatureVariant::kJoinAll, core::FeatureVariant::kNoJoin}) {
    Result<core::VariantResult> r =
        core::RunVariant(prepared.value(), core::ModelKind::kTreeGini,
                         variant, core::Effort::kQuick);
    if (!r.ok()) {
      std::printf("run failed: %s\n", r.status().ToString().c_str());
      return 1;
    }
    std::printf("%-8s holdout accuracy = %.4f  (train %.4f, %.2fs)\n",
                r.value().variant_name.c_str(), r.value().test_accuracy,
                r.value().train_accuracy, r.value().seconds);
  }
  std::printf(
      "\nNoJoin skipped the dimension table entirely and should match\n"
      "JoinAll within ~0.01 — the paper's \"avoid the join safely\".\n");
  return 0;
}
