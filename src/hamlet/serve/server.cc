#include "hamlet/serve/server.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <istream>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "hamlet/common/logging.h"
#include "hamlet/data/dataset.h"
#include "hamlet/data/view.h"

namespace hamlet {
namespace serve {

namespace {

constexpr size_t kDefaultBatchSize = 2048;

/// Builds the request-decoding Dataset skeleton from the model header's
/// domain metadata: one kHome feature per training feature, same domain
/// sizes, so a view over appended request rows is learner-compatible
/// with the training view by construction.
Dataset MakeRequestDataset(const std::vector<uint32_t>& domains) {
  std::vector<FeatureSpec> specs(domains.size());
  for (size_t j = 0; j < domains.size(); ++j) {
    specs[j].name = "f" + std::to_string(j);
    specs[j].domain_size = domains[j];
    specs[j].role = FeatureRole::kHome;
  }
  return Dataset(std::move(specs));
}

}  // namespace

Status ParseRequest(const std::string& line,
                    const std::vector<uint32_t>& domains,
                    std::vector<uint32_t>& codes) {
  codes.clear();
  const char* p = line.c_str();
  while (true) {
    while (*p == ' ' || *p == '\t' || *p == ',') ++p;
    if (*p == '\0') break;
    if (*p < '0' || *p > '9') {
      return Status::InvalidArgument(
          "expected an unsigned integer code, got \"" + line + "\"");
    }
    char* end = nullptr;
    const unsigned long long v = std::strtoull(p, &end, 10);
    const size_t j = codes.size();
    if (j >= domains.size()) {
      return Status::InvalidArgument("more than " +
                                     std::to_string(domains.size()) +
                                     " fields");
    }
    if (v >= domains[j]) {
      // Out-of-domain codes would index past learner tables (NB
      // likelihoods, logreg weights); reject at the door.
      return Status::OutOfRange(
          "code " + std::to_string(v) + " outside feature " +
          std::to_string(j) + "'s domain [0, " +
          std::to_string(domains[j]) + ")");
    }
    codes.push_back(static_cast<uint32_t>(v));
    p = end;
  }
  if (codes.size() != domains.size()) {
    return Status::InvalidArgument(
        "got " + std::to_string(codes.size()) + " fields, model expects " +
        std::to_string(domains.size()));
  }
  return Status::OK();
}

bool IsIgnorableRequestLine(const std::string& line) {
  const size_t first = line.find_first_not_of(" \t");
  return first == std::string::npos || line[first] == '#';
}

size_t ConfiguredBatchSize() {
  const char* env = std::getenv("HAMLET_SERVE_BATCH");
  if (env == nullptr || *env == '\0') return kDefaultBatchSize;
  char* end = nullptr;
  const long parsed = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || parsed < 1 || parsed > 10000000) {
    if (FirstOccurrence(std::string("serve_batch:") + env)) {
      std::fprintf(stderr,
                   "hamlet: invalid HAMLET_SERVE_BATCH=\"%s\" (want an "
                   "integer in [1, 1e7]); using the default (%zu)\n",
                   env, kDefaultBatchSize);
    }
    return kDefaultBatchSize;
  }
  return static_cast<size_t>(parsed);
}

OnError ConfiguredOnError() {
  const char* env = std::getenv("HAMLET_SERVE_ON_ERROR");
  if (env == nullptr || *env == '\0') return OnError::kAbort;
  const std::string value = env;
  if (value == "abort") return OnError::kAbort;
  if (value == "skip") return OnError::kSkip;
  if (FirstOccurrence(std::string("serve_on_error:") + value)) {
    std::fprintf(stderr,
                 "hamlet: invalid HAMLET_SERVE_ON_ERROR=\"%s\" (want "
                 "\"abort\" or \"skip\"); using abort\n",
                 env);
  }
  return OnError::kAbort;
}

size_t ConfiguredMaxErrors() {
  const char* env = std::getenv("HAMLET_SERVE_MAX_ERRORS");
  if (env == nullptr || *env == '\0') return kUnlimitedErrors;
  char* end = nullptr;
  const long parsed = std::strtol(env, &end, 10);
  // 0 is a real budget ("tolerate no errors"); only non-numeric or
  // negative values are invalid.
  if (end == env || *end != '\0' || parsed < 0) {
    if (FirstOccurrence(std::string("serve_max_errors:") + env)) {
      std::fprintf(stderr,
                   "hamlet: invalid HAMLET_SERVE_MAX_ERRORS=\"%s\" (want a "
                   "non-negative integer); errors are unlimited\n",
                   env);
    }
    return kUnlimitedErrors;
  }
  return static_cast<size_t>(parsed);
}

Status ValidateReloadedModel(const ml::Classifier& current,
                             const ml::Classifier& candidate) {
  if (candidate.train_domain_sizes().empty()) {
    return Status::FailedPrecondition(
        "reloaded model carries no train-domain metadata");
  }
  if (candidate.train_domain_sizes() != current.train_domain_sizes()) {
    return Status::FailedPrecondition(
        "reloaded model's feature domains disagree with the serving "
        "model's (" +
        std::to_string(candidate.train_domain_sizes().size()) + " vs " +
        std::to_string(current.train_domain_sizes().size()) +
        " features, or differing domain sizes); keeping the old model");
  }
  return Status::OK();
}

const ml::Classifier* ModelSlot::Swap(
    std::unique_ptr<ml::Classifier> fresh) {
  // The two-swaps-old model must be destroyed outside the lock: its
  // destructor can be arbitrary learner code, and holding mu_ across it
  // would stall every concurrent current() poll.
  std::unique_ptr<ml::Classifier> doomed;
  const ml::Classifier* installed = nullptr;
  {
    MutexLock lock(mu_);
    doomed = std::move(retired_);
    retired_ = std::move(current_);
    current_ = std::move(fresh);
    installed = current_.get();
  }
  return installed;
}

RequestBatcher::RequestBatcher(
    const ml::Classifier& model, std::vector<uint32_t> domains,
    size_t batch_size, std::function<const ml::Classifier*()> model_poll,
    LatencyStats& stats, Emit emit, AfterBatch after_batch)
    : domains_(std::move(domains)),
      batch_size_(batch_size > 0 ? batch_size : ConfiguredBatchSize()),
      model_poll_(std::move(model_poll)),
      stats_(stats),
      emit_(std::move(emit)),
      after_batch_(std::move(after_batch)),
      active_(&model),
      batch_(MakeRequestDataset(domains_)) {
  batch_.Reserve(batch_size_);
  tags_.reserve(batch_size_);
}

void RequestBatcher::ResetBatch() {
  // Rebuild the skeleton rather than clearing rows: Dataset has no row
  // erase, and the per-batch allocation is trivial next to PredictAll.
  batch_ = MakeRequestDataset(domains_);
  batch_.Reserve(batch_size_);
  tags_.clear();
  pending_rows_ = 0;
}

Status RequestBatcher::Add(const std::vector<uint32_t>& codes,
                           uint64_t tag) {
  HAMLET_RETURN_IF_ERROR(batch_.AppendRow(codes, 0));
  tags_.push_back(tag);
  if (++pending_rows_ >= batch_size_) return Flush();
  return Status::OK();
}

Status RequestBatcher::Flush() {
  if (pending_rows_ == 0) return Status::OK();
  if (model_poll_) {
    if (const ml::Classifier* fresh = model_poll_()) active_ = fresh;
  }
  const DataView view(&batch_);
  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<uint8_t> preds = active_->PredictAll(view);
  const std::chrono::duration<double> dt =
      std::chrono::steady_clock::now() - t0;
  stats_.RecordBatch(preds.size(), dt.count());
  for (size_t i = 0; i < preds.size(); ++i) {
    HAMLET_RETURN_IF_ERROR(emit_(tags_[i], preds[i]));
  }
  if (after_batch_) after_batch_();
  ResetBatch();
  return Status::OK();
}

Result<StatsSummary> ServeStream(const ml::Classifier& model,
                                 std::istream& in, std::ostream& out,
                                 std::ostream& err,
                                 const ServeConfig& config) {
  // By value: hot reload may destroy the original model at a batch
  // boundary, and the parser keeps validating against these domains for
  // the whole stream (the swap validator guarantees they are identical
  // on the replacement).
  const std::vector<uint32_t> domains = model.train_domain_sizes();
  if (domains.empty()) {
    return Status::FailedPrecondition(
        "model carries no train-domain metadata; load it via io::LoadModel "
        "or Fit it before serving");
  }
  const OnError on_error = config.on_error == OnError::kEnv
                               ? ConfiguredOnError()
                               : config.on_error;
  const size_t max_errors =
      config.max_errors.has_value() ? *config.max_errors
                                    : ConfiguredMaxErrors();

  LatencyStats stats;
  LiveTicker ticker(err, config.live_stats);

  RequestBatcher batcher(
      model, domains, config.batch_size, config.model_poll, stats,
      [&out](uint64_t, uint8_t p) -> Status {
        out << static_cast<int>(p) << '\n';
        if (!out) {
          return Status::Internal("serve: write error on output stream");
        }
        return Status::OK();
      },
      [&ticker, &stats]() { ticker.MaybeTick(stats); });

  std::string line;
  std::vector<uint32_t> codes;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    // Skip blanks and comments without emitting an output line.
    if (IsIgnorableRequestLine(line)) continue;
    const Status parsed = ParseRequest(line, domains, codes);
    if (!parsed.ok()) {
      if (on_error == OnError::kAbort) {
        return Status::FromCode(parsed.code(),
                                "request line " + std::to_string(line_no) +
                                    ": " + parsed.message());
      }
      // Resilient mode: flush what came before so the ERR line lands in
      // request order, then keep serving.
      HAMLET_RETURN_IF_ERROR(batcher.Flush());
      out << "ERR " << line_no << ": " << parsed.message() << '\n';
      if (!out) {
        return Status::Internal("serve: write error on output stream");
      }
      stats.RecordError();
      if (stats.errors() > max_errors) {
        return Status::OutOfRange(
            "request line " + std::to_string(line_no) + ": error budget "
            "exceeded (" + std::to_string(max_errors) + " rejected lines, "
            "HAMLET_SERVE_MAX_ERRORS); last error: " + parsed.message());
      }
      continue;
    }
    HAMLET_RETURN_IF_ERROR(batcher.Add(codes, 0));
  }
  HAMLET_RETURN_IF_ERROR(batcher.Flush());
  ticker.Finish();
  out.flush();
  return Result<StatsSummary>(stats.Summarize());
}

}  // namespace serve
}  // namespace hamlet
