#include "hamlet/serve/server.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "hamlet/common/logging.h"
#include "hamlet/data/dataset.h"
#include "hamlet/data/view.h"

namespace hamlet {
namespace serve {

namespace {

constexpr size_t kDefaultBatchSize = 2048;

/// Builds the request-decoding Dataset skeleton from the model header's
/// domain metadata: one kHome feature per training feature, same domain
/// sizes, so a view over appended request rows is learner-compatible
/// with the training view by construction.
Dataset MakeRequestDataset(const std::vector<uint32_t>& domains) {
  std::vector<FeatureSpec> specs(domains.size());
  for (size_t j = 0; j < domains.size(); ++j) {
    specs[j].name = "f" + std::to_string(j);
    specs[j].domain_size = domains[j];
    specs[j].role = FeatureRole::kHome;
  }
  return Dataset(std::move(specs));
}

/// Parses one request line into `codes`, validating field count and
/// domain membership. `line_no` is 1-based for error messages.
Status ParseRequestLine(const std::string& line, size_t line_no,
                        const std::vector<uint32_t>& domains,
                        std::vector<uint32_t>& codes) {
  codes.clear();
  const char* p = line.c_str();
  while (true) {
    while (*p == ' ' || *p == '\t' || *p == ',') ++p;
    if (*p == '\0') break;
    if (*p < '0' || *p > '9') {
      return Status::InvalidArgument(
          "request line " + std::to_string(line_no) +
          ": expected an unsigned integer code, got \"" + line + "\"");
    }
    char* end = nullptr;
    const unsigned long long v = std::strtoull(p, &end, 10);
    const size_t j = codes.size();
    if (j >= domains.size()) {
      return Status::InvalidArgument(
          "request line " + std::to_string(line_no) + ": more than " +
          std::to_string(domains.size()) + " fields");
    }
    if (v >= domains[j]) {
      // Out-of-domain codes would index past learner tables (NB
      // likelihoods, logreg weights); reject at the door.
      return Status::OutOfRange(
          "request line " + std::to_string(line_no) + ": code " +
          std::to_string(v) + " outside feature " + std::to_string(j) +
          "'s domain [0, " + std::to_string(domains[j]) + ")");
    }
    codes.push_back(static_cast<uint32_t>(v));
    p = end;
  }
  if (codes.size() != domains.size()) {
    return Status::InvalidArgument(
        "request line " + std::to_string(line_no) + ": got " +
        std::to_string(codes.size()) + " fields, model expects " +
        std::to_string(domains.size()));
  }
  return Status::OK();
}

}  // namespace

size_t ConfiguredBatchSize() {
  const char* env = std::getenv("HAMLET_SERVE_BATCH");
  if (env == nullptr || *env == '\0') return kDefaultBatchSize;
  char* end = nullptr;
  const long parsed = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || parsed < 1 || parsed > 10000000) {
    if (FirstOccurrence(std::string("serve_batch:") + env)) {
      std::fprintf(stderr,
                   "hamlet: invalid HAMLET_SERVE_BATCH=\"%s\" (want an "
                   "integer in [1, 1e7]); using the default (%zu)\n",
                   env, kDefaultBatchSize);
    }
    return kDefaultBatchSize;
  }
  return static_cast<size_t>(parsed);
}

Result<StatsSummary> ServeStream(const ml::Classifier& model,
                                 std::istream& in, std::ostream& out,
                                 std::ostream& err,
                                 const ServeConfig& config) {
  const std::vector<uint32_t>& domains = model.train_domain_sizes();
  if (domains.empty()) {
    return Status::FailedPrecondition(
        "model carries no train-domain metadata; load it via io::LoadModel "
        "or Fit it before serving");
  }
  const size_t batch_size =
      config.batch_size > 0 ? config.batch_size : ConfiguredBatchSize();

  LatencyStats stats;
  LiveTicker ticker(err, config.live_stats);

  Dataset batch = MakeRequestDataset(domains);
  batch.Reserve(batch_size);
  size_t batch_rows = 0;

  auto flush_batch = [&]() -> Status {
    if (batch_rows == 0) return Status::OK();
    const DataView view(&batch);
    const auto t0 = std::chrono::steady_clock::now();
    const std::vector<uint8_t> preds = model.PredictAll(view);
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t0;
    stats.RecordBatch(preds.size(), dt.count());
    for (uint8_t p : preds) out << static_cast<int>(p) << '\n';
    if (!out) return Status::Internal("serve: write error on output stream");
    ticker.MaybeTick(stats);
    // Rebuild the skeleton rather than clearing rows: Dataset has no row
    // erase, and the per-batch allocation is trivial next to PredictAll.
    batch = MakeRequestDataset(domains);
    batch.Reserve(batch_size);
    batch_rows = 0;
    return Status::OK();
  };

  std::string line;
  std::vector<uint32_t> codes;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    // Skip blanks and comments without emitting a prediction line.
    const size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') continue;
    HAMLET_RETURN_IF_ERROR(ParseRequestLine(line, line_no, domains, codes));
    HAMLET_RETURN_IF_ERROR(batch.AppendRow(codes, 0));
    if (++batch_rows >= batch_size) HAMLET_RETURN_IF_ERROR(flush_batch());
  }
  HAMLET_RETURN_IF_ERROR(flush_batch());
  ticker.Finish();
  out.flush();
  return Result<StatsSummary>(stats.Summarize());
}

}  // namespace serve
}  // namespace hamlet
