// hamlet_serve: batched prediction service over a saved hamlet model.
//
//   hamlet_serve <model-file> [requests-file]
//       Load the model, serve request lines from the file (or stdin),
//       stream one prediction per line to stdout. A machine-parseable
//       "[serve] ..." summary goes to stderr when done; while stderr is
//       a terminal, a LiveOps-style in-place throughput line updates
//       during the run.
//
//       HAMLET_SERVE_ON_ERROR=skip turns on resilient mode: malformed
//       request lines become in-order "ERR <line>: <reason>" output
//       lines (bounded by HAMLET_SERVE_MAX_ERRORS; 0 = tolerate none)
//       instead of aborting.
//
//       SIGHUP hot-reloads the model: the file is re-read into a fresh
//       slot and swapped in at the next batch boundary only if it loads
//       cleanly and its feature domains match; on any failure the old
//       model keeps serving (a line on stderr says which happened).
//
//   hamlet_serve --listen <port> <model-file>
//       TCP front-end on 127.0.0.1:<port> (0 = OS-assigned; the bound
//       port is announced on stderr as "listening on port N").
//       Concurrent connections speak the same line protocol and are
//       multiplexed onto shared HAMLET_SERVE_BATCH batches; each
//       connection gets per-connection error isolation (skip
//       semantics, budget HAMLET_SERVE_MAX_ERRORS) and "/healthz"
//       answers a one-line status. SIGHUP hot-reloads as above;
//       SIGINT/SIGTERM shut down gracefully: drain received requests,
//       answer them, print the "[serve]" summary, exit 0.
//
//   hamlet_serve --client <host>:<port> [requests-file]
//       Minimal line-protocol client: stream the request file (or
//       stdin) to the server, print response lines to stdout until the
//       server's EOF. Output is bit-identical to serving the same file
//       through the stdin path.
//
//   hamlet_serve --train-demo <model-file> [family]
//       Fit a small deterministic synthetic model of the given family
//       (dt, nb, logreg, svm-linear, svm-rbf, 1nn, mlp, majority;
//       default dt) and save it — a fixture generator for smoke tests
//       and quick experiments.
//
//   hamlet_serve --emit-requests <model-file> <n> [seed]
//       Print n random request lines valid for the model's domains.
//
// Exit status: 0 on success, 1 on any error (message on stderr).

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

#include "hamlet/common/rng.h"
#include "hamlet/common/status.h"
#include "hamlet/common/stringx.h"
#include "hamlet/data/dataset.h"
#include "hamlet/data/view.h"
#include "hamlet/io/serialize.h"
#include "hamlet/ml/ann/mlp.h"
#include "hamlet/ml/classifier.h"
#include "hamlet/ml/knn/one_nn.h"
#include "hamlet/ml/linear/logistic_regression.h"
#include "hamlet/ml/majority.h"
#include "hamlet/ml/nb/naive_bayes.h"
#include "hamlet/ml/svm/svm.h"
#include "hamlet/ml/tree/decision_tree.h"
#include "hamlet/serve/net/net_server.h"
#include "hamlet/serve/net/socket.h"
#include "hamlet/serve/server.h"

namespace {

using hamlet::DataView;
using hamlet::Dataset;
using hamlet::FeatureRole;
using hamlet::FeatureSpec;
using hamlet::ParseUnsigned;
using hamlet::Result;
using hamlet::Rng;
using hamlet::Status;

int Fail(const Status& st) {
  std::fprintf(stderr, "hamlet_serve: %s\n", st.ToString().c_str());
  return 1;
}

/// SIGHUP = hot-reload request, consumed at the next batch boundary.
volatile std::sig_atomic_t g_reload_requested = 0;
/// SIGINT/SIGTERM = graceful shutdown request (socket mode).
volatile std::sig_atomic_t g_shutdown_requested = 0;

extern "C" void OnSighup(int) { g_reload_requested = 1; }
extern "C" void OnShutdownSignal(int) { g_shutdown_requested = 1; }

void InstallHandler(int signum, void (*handler)(int)) {
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = handler;
  sigemptyset(&sa.sa_mask);
  // SA_RESTART: a signal must not error out a blocking read; the
  // serving loops notice the flag at their next poll instead.
  sa.sa_flags = SA_RESTART;
  sigaction(signum, &sa, nullptr);
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: hamlet_serve <model-file> [requests-file]\n"
      "       hamlet_serve --listen <port> <model-file>\n"
      "       hamlet_serve --client <host>:<port> [requests-file]\n"
      "       hamlet_serve --train-demo <model-file> [family]\n"
      "       hamlet_serve --emit-requests <model-file> <n> [seed]\n"
      "families: dt nb logreg svm-linear svm-rbf 1nn mlp majority\n");
  return 1;
}

/// Small deterministic labeled dataset: 4 categorical features, label a
/// noisy threshold rule over two of them. Enough structure that every
/// demo family fits a non-trivial model, small enough that --train-demo
/// finishes instantly (the MLP included).
Dataset MakeDemoDataset(uint64_t seed) {
  const std::vector<uint32_t> domains = {8, 6, 5, 7};
  std::vector<FeatureSpec> specs(domains.size());
  for (size_t j = 0; j < domains.size(); ++j) {
    specs[j].name = "f" + std::to_string(j);
    specs[j].domain_size = domains[j];
    specs[j].role = FeatureRole::kHome;
  }
  Dataset data(std::move(specs));
  Rng rng(seed);
  std::vector<uint32_t> row(domains.size());
  const size_t n = 400;
  data.Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < domains.size(); ++j) {
      row[j] = static_cast<uint32_t>(rng.UniformInt(domains[j]));
    }
    const bool signal = row[0] >= 4 || (row[1] <= 1 && row[2] >= 3);
    const bool flip = rng.Bernoulli(0.1);
    data.AppendRowUnchecked(row, (signal != flip) ? 1 : 0);
  }
  return data;
}

Result<std::unique_ptr<hamlet::ml::Classifier>> MakeDemoLearner(
    const std::string& family) {
  using namespace hamlet::ml;  // NOLINT: local alias for the roster
  if (family == "dt") {
    return std::unique_ptr<Classifier>(std::make_unique<DecisionTree>());
  }
  if (family == "nb") {
    return std::unique_ptr<Classifier>(std::make_unique<NaiveBayes>());
  }
  if (family == "logreg") {
    return std::unique_ptr<Classifier>(
        std::make_unique<LogisticRegressionL1>());
  }
  if (family == "svm-linear" || family == "svm-rbf") {
    SvmConfig config;
    config.kernel.type =
        family == "svm-rbf" ? KernelType::kRbf : KernelType::kLinear;
    if (family == "svm-rbf") config.kernel.gamma = 0.25;
    return std::unique_ptr<Classifier>(std::make_unique<KernelSvm>(config));
  }
  if (family == "1nn") {
    return std::unique_ptr<Classifier>(std::make_unique<OneNearestNeighbor>());
  }
  if (family == "mlp") {
    MlpConfig config;
    config.hidden_sizes = {16, 8};
    config.epochs = 4;
    return std::unique_ptr<Classifier>(std::make_unique<Mlp>(config));
  }
  if (family == "majority") {
    return std::unique_ptr<Classifier>(std::make_unique<MajorityClassifier>());
  }
  return Status::InvalidArgument("unknown demo family \"" + family + "\"");
}

int TrainDemo(const std::string& path, const std::string& family) {
  Result<std::unique_ptr<hamlet::ml::Classifier>> learner =
      MakeDemoLearner(family);
  if (!learner.ok()) return Fail(learner.status());
  const Dataset data = MakeDemoDataset(7);
  const DataView train(&data);
  Status st = learner.value()->Fit(train);
  if (!st.ok()) return Fail(st);
  st = hamlet::io::SaveModelToFile(*learner.value(), path);
  if (!st.ok()) return Fail(st);
  std::fprintf(stderr, "hamlet_serve: saved %s model to %s\n",
               learner.value()->name().c_str(), path.c_str());
  return 0;
}

int EmitRequests(const std::string& path, const std::string& count_arg,
                 const std::string& seed_arg) {
  const Result<uint64_t> n = ParseUnsigned(count_arg);
  if (!n.ok() || n.value() < 1) {
    return Fail(Status::InvalidArgument(
        "bad request count \"" + count_arg + "\" (want a positive integer)"));
  }
  // The seed gets the same strict parse as the count: strtoull's old
  // nullptr-endptr call silently turned "banana" into 0, which makes a
  // typo reproduce the wrong stream instead of failing.
  uint64_t seed = 1234;
  if (!seed_arg.empty()) {
    const Result<uint64_t> parsed_seed = ParseUnsigned(seed_arg);
    if (!parsed_seed.ok()) {
      return Fail(Status::InvalidArgument(
          "bad request seed \"" + seed_arg +
          "\" (want an unsigned integer): " +
          parsed_seed.status().message()));
    }
    seed = parsed_seed.value();
  }
  Result<std::unique_ptr<hamlet::ml::Classifier>> model =
      hamlet::io::LoadModelFromFile(path);
  if (!model.ok()) return Fail(model.status());
  const std::vector<uint32_t>& domains =
      model.value()->train_domain_sizes();
  Rng rng(seed);
  for (uint64_t i = 0; i < n.value(); ++i) {
    for (size_t j = 0; j < domains.size(); ++j) {
      if (j > 0) std::fputc(' ', stdout);
      std::fprintf(stdout, "%llu",
                   static_cast<unsigned long long>(
                       rng.UniformInt(domains[j])));
    }
    std::fputc('\n', stdout);
  }
  return 0;
}

/// The SIGHUP hot-reload hook shared by the stdin and socket servers:
/// re-read the model file, validate it against the serving model, and
/// swap through the ModelSlot — which keeps the displaced model alive
/// until the *next* swap, honouring the model_poll lifetime contract
/// (the serving loop's previous model must stay valid until the poll
/// call returns).
std::function<const hamlet::ml::Classifier*()> MakeReloadPoll(
    hamlet::serve::ModelSlot& slot, const std::string& model_path) {
  return [&slot, model_path]() -> const hamlet::ml::Classifier* {
    if (g_reload_requested == 0) return nullptr;
    g_reload_requested = 0;
    auto fresh = hamlet::io::LoadModelFromFileWithRetry(model_path);
    if (!fresh.ok()) {
      std::fprintf(stderr,
                   "hamlet_serve: reload failed (%s); keeping the current "
                   "model\n",
                   fresh.status().ToString().c_str());
      return nullptr;
    }
    const Status valid =
        hamlet::serve::ValidateReloadedModel(*slot.current(), *fresh.value());
    if (!valid.ok()) {
      std::fprintf(stderr,
                   "hamlet_serve: reload rejected (%s); keeping the current "
                   "model\n",
                   valid.ToString().c_str());
      return nullptr;
    }
    const hamlet::ml::Classifier* swapped =
        slot.Swap(std::move(fresh).value());
    std::fprintf(stderr, "hamlet_serve: reloaded model %s from %s\n",
                 swapped->name().c_str(), model_path.c_str());
    return swapped;
  };
}

void PrintServeSummary(const hamlet::serve::StatsSummary& s,
                       const std::string& model_name) {
  // Machine-parseable run summary; keep key=value, space-separated
  // (bench/run_all.py-style contract, asserted by the serve smoke test).
  std::fprintf(stderr,
               "[serve] model=%s rows=%llu batches=%llu errors=%llu "
               "model_seconds=%.6f preds_per_sec=%.1f p50_us=%.1f "
               "p99_us=%.1f\n",
               model_name.c_str(),
               static_cast<unsigned long long>(s.rows),
               static_cast<unsigned long long>(s.batches),
               static_cast<unsigned long long>(s.errors), s.model_seconds,
               s.preds_per_sec, s.p50_us, s.p99_us);
}

int Serve(const std::string& model_path, const std::string& requests_path) {
  Result<std::unique_ptr<hamlet::ml::Classifier>> loaded =
      hamlet::io::LoadModelFromFileWithRetry(model_path);
  if (!loaded.ok()) return Fail(loaded.status());
  // The serving slot: hot reload swaps a validated fresh model in here;
  // ServeStream picks the new pointer up at the next batch boundary.
  hamlet::serve::ModelSlot slot(std::move(loaded).value());

  std::ifstream file;
  if (!requests_path.empty()) {
    file.open(requests_path);
    if (!file) {
      return Fail(Status::NotFound("cannot open requests file: " +
                                   requests_path));
    }
  }
  std::istream& in = requests_path.empty() ? std::cin : file;

  InstallHandler(SIGHUP, OnSighup);

  hamlet::serve::ServeConfig config;
  config.live_stats = isatty(2) != 0;
  config.model_poll = MakeReloadPoll(slot, model_path);

  Result<hamlet::serve::StatsSummary> summary = hamlet::serve::ServeStream(
      *slot.current(), in, std::cout, std::cerr, config);
  if (!summary.ok()) return Fail(summary.status());
  PrintServeSummary(summary.value(), slot.current()->name());
  return 0;
}

int Listen(const std::string& port_arg, const std::string& model_path) {
  const Result<uint64_t> port = ParseUnsigned(port_arg);
  if (!port.ok() || port.value() > 65535) {
    return Fail(Status::InvalidArgument("bad port \"" + port_arg +
                                        "\" (want an integer in "
                                        "[0, 65535]; 0 = OS-assigned)"));
  }
  Result<std::unique_ptr<hamlet::ml::Classifier>> loaded =
      hamlet::io::LoadModelFromFileWithRetry(model_path);
  if (!loaded.ok()) return Fail(loaded.status());
  hamlet::serve::ModelSlot slot(std::move(loaded).value());

  InstallHandler(SIGHUP, OnSighup);
  InstallHandler(SIGINT, OnShutdownSignal);
  InstallHandler(SIGTERM, OnShutdownSignal);

  hamlet::serve::net::NetServeConfig config;
  config.port = static_cast<uint16_t>(port.value());
  config.live_stats = isatty(2) != 0;
  config.model_poll = MakeReloadPoll(slot, model_path);
  config.stop_poll = [] { return g_shutdown_requested != 0; };

  hamlet::serve::net::NetServer server(*slot.current(), config);
  const Status started = server.Start();
  if (!started.ok()) return Fail(started);
  std::fprintf(stderr, "hamlet_serve: listening on port %u (model %s)\n",
               static_cast<unsigned>(server.port()),
               slot.current()->name().c_str());

  Result<hamlet::serve::StatsSummary> summary = server.Run(std::cerr);
  if (!summary.ok()) return Fail(summary.status());
  PrintServeSummary(summary.value(), slot.current()->name());
  return 0;
}

int Client(const std::string& target, const std::string& requests_path) {
  const size_t colon = target.rfind(':');
  if (colon == std::string::npos) {
    return Fail(Status::InvalidArgument("bad target \"" + target +
                                        "\" (want <host>:<port>)"));
  }
  const std::string host = target.substr(0, colon);
  const Result<uint64_t> port = ParseUnsigned(target.substr(colon + 1));
  if (!port.ok() || port.value() < 1 || port.value() > 65535) {
    return Fail(Status::InvalidArgument("bad port in \"" + target + "\""));
  }

  std::ifstream file;
  if (!requests_path.empty()) {
    file.open(requests_path);
    if (!file) {
      return Fail(Status::NotFound("cannot open requests file: " +
                                   requests_path));
    }
  }
  std::istream& in = requests_path.empty() ? std::cin : file;

  Result<hamlet::serve::net::Socket> sock = hamlet::serve::net::ConnectTcp(
      host, static_cast<uint16_t>(port.value()));
  if (!sock.ok()) return Fail(sock.status());

  // Writer thread streams requests while the main thread reads
  // responses: both kernel buffers can fill on large streams, so
  // send-all-then-read-all would deadlock against a batching server.
  const int fd = sock.value().fd();
  std::thread writer([&in, fd] {
    std::string line;
    while (std::getline(in, line)) {
      line += '\n';
      if (!hamlet::serve::net::SendAll(fd, line.data(), line.size()).ok()) {
        // Server closed early (e.g. error budget); its final ERR lines
        // are still in flight for the reader below.
        break;
      }
    }
    ::shutdown(fd, SHUT_WR);
  });

  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) {
    std::fwrite(buf, 1, static_cast<size_t>(n), stdout);
  }
  writer.join();
  std::fflush(stdout);
  if (n < 0) return Fail(Status::Unavailable("read: connection error"));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) return Usage();
  if (args[0] == "--train-demo") {
    if (args.size() < 2 || args.size() > 3) return Usage();
    return TrainDemo(args[1], args.size() == 3 ? args[2] : "dt");
  }
  if (args[0] == "--emit-requests") {
    if (args.size() < 3 || args.size() > 4) return Usage();
    return EmitRequests(args[1], args[2], args.size() == 4 ? args[3] : "");
  }
  if (args[0] == "--listen") {
    if (args.size() != 3) return Usage();
    return Listen(args[1], args[2]);
  }
  if (args[0] == "--client") {
    if (args.size() < 2 || args.size() > 3) return Usage();
    return Client(args[1], args.size() == 3 ? args[2] : "");
  }
  if (args.size() > 2) return Usage();
  return Serve(args[0], args.size() == 2 ? args[1] : "");
}
