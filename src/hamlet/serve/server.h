// Batched prediction serving over a loaded model.
//
// ServeStream reads prediction requests (one tuple of categorical codes
// per line), validates each code against the model's train-domain
// metadata (restored from the model file header — the server never sees
// the training Dataset), batches rows, and scores each batch through
// the model's dense PredictAll so prediction fans out across the
// HAMLET_THREADS pool exactly like the experiment paths. Predictions
// stream to `out` one per line in request order; per-batch model time
// feeds the LatencyStats summary the caller prints.
//
// Request line format: num_features() unsigned integers separated by
// spaces, tabs or commas. Blank lines and lines starting with '#' are
// skipped (and produce no output line). Any malformed or out-of-domain
// line aborts the run with a Status naming the line number — a serving
// process must never feed a learner codes outside the domains its
// tables were sized for.

#ifndef HAMLET_SERVE_SERVER_H_
#define HAMLET_SERVE_SERVER_H_

#include <cstddef>
#include <iosfwd>

#include "hamlet/common/status.h"
#include "hamlet/ml/classifier.h"
#include "hamlet/serve/stats.h"

namespace hamlet {
namespace serve {

/// Batch size requested via HAMLET_SERVE_BATCH: a positive integer, or
/// unset for the default (2048). Invalid values (non-numeric, < 1,
/// > 1e7) warn on stderr once per distinct value and fall back to the
/// default.
size_t ConfiguredBatchSize();

struct ServeConfig {
  /// Rows per PredictAll call; 0 = ConfiguredBatchSize().
  size_t batch_size = 0;
  /// Paint the in-place LiveTicker line on stderr while serving.
  bool live_stats = false;
};

/// Serves every request line of `in` against `model`, writing one
/// prediction per line to `out`. Returns the latency summary on success.
/// The model must carry train-domain metadata (any model loaded through
/// io::LoadModel does; a freshly Fit model does too).
Result<StatsSummary> ServeStream(const ml::Classifier& model,
                                 std::istream& in, std::ostream& out,
                                 std::ostream& err,
                                 const ServeConfig& config = {});

}  // namespace serve
}  // namespace hamlet

#endif  // HAMLET_SERVE_SERVER_H_
