// Batched prediction serving over a loaded model.
//
// ServeStream reads prediction requests (one tuple of categorical codes
// per line), validates each code against the model's train-domain
// metadata (restored from the model file header — the server never sees
// the training Dataset), batches rows, and scores each batch through
// the model's dense PredictAll so prediction fans out across the
// HAMLET_THREADS pool exactly like the experiment paths. Predictions
// stream to `out` one per line in request order; per-batch model time
// feeds the LatencyStats summary the caller prints.
//
// The batching core is factored out as RequestBatcher so other request
// sources can share it: the TCP front-end (serve/net/) multiplexes
// concurrent client connections onto one RequestBatcher, which is how
// concurrent connections end up sharing HAMLET_SERVE_BATCH batches
// across the HAMLET_THREADS pool.
//
// Request line format: num_features() unsigned integers separated by
// spaces, tabs or commas. Blank lines and lines starting with '#' are
// skipped (and produce no output line).
//
// Error isolation contract: what a malformed or out-of-domain line does
// depends on ServeConfig::on_error.
//   kAbort (strict, the default): the run stops with a Status naming
//     the line number — bit-identical behaviour to the original server.
//   kSkip (resilient): the line produces an in-order
//     "ERR <line>: <reason>" output line instead of a prediction, the
//     error counter in StatsSummary increments, and serving continues.
//     One output line per request either way, so callers can still zip
//     requests with responses. max_errors bounds the tolerance: one
//     more rejected line aborts the run (a stream that is all garbage
//     is a caller bug, not load).
// Either way a serving process never feeds a learner codes outside the
// domains its tables were sized for.
//
// Hot reload: model_poll (when set) is called at every batch boundary;
// a non-null return swaps the model used for subsequent batches. The
// caller is responsible for only returning models that pass
// ValidateReloadedModel — hamlet_serve wires SIGHUP -> load into a
// fresh slot -> validate -> swap, keeping the old model on any failure.
// ModelSlot implements the required lifetime discipline: the displaced
// model stays alive until the *following* swap, so a poll call never
// destroys the model the serving loop was using when it invoked it.

#ifndef HAMLET_SERVE_SERVER_H_
#define HAMLET_SERVE_SERVER_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <optional>
#include <vector>

#include "hamlet/common/status.h"
#include "hamlet/common/attributes.h"
#include "hamlet/common/mutex.h"
#include "hamlet/common/thread_annotations.h"
#include "hamlet/data/dataset.h"
#include "hamlet/ml/classifier.h"
#include "hamlet/serve/stats.h"

namespace hamlet {
namespace serve {

/// Batch size requested via HAMLET_SERVE_BATCH: a positive integer, or
/// unset for the default (2048). Invalid values (non-numeric, < 1,
/// > 1e7) warn on stderr once per distinct value and fall back to the
/// default.
size_t ConfiguredBatchSize();

/// What ServeStream does with a malformed or out-of-domain request line.
enum class OnError {
  kEnv,    ///< resolve from HAMLET_SERVE_ON_ERROR (default kAbort)
  kAbort,  ///< stop the run with a Status naming the line (strict)
  kSkip,   ///< emit "ERR <line>: <reason>", count it, keep serving
};

/// Unbounded error tolerance for ServeConfig::max_errors.
inline constexpr size_t kUnlimitedErrors = static_cast<size_t>(-1);

/// Error policy requested via HAMLET_SERVE_ON_ERROR: "abort" or "skip",
/// unset for the default (kAbort). Unrecognised values warn on stderr
/// once per distinct value and fall back to kAbort.
OnError ConfiguredOnError();

/// Error cap requested via HAMLET_SERVE_MAX_ERRORS: a non-negative
/// integer (0 = tolerate no errors: the first rejected line aborts), or
/// unset for unlimited. Invalid values warn once and mean unlimited.
size_t ConfiguredMaxErrors();

struct ServeConfig {
  /// Rows per PredictAll call; 0 = ConfiguredBatchSize().
  size_t batch_size = 0;
  /// Paint the in-place LiveTicker line on stderr while serving.
  bool live_stats = false;
  /// Malformed-line policy; kEnv = ConfiguredOnError().
  OnError on_error = OnError::kEnv;
  /// Rejected-line budget in kSkip mode; exceeding it aborts the run.
  /// nullopt = ConfiguredMaxErrors() (unlimited when the env is unset
  /// too). 0 is a real budget: the first rejected line aborts.
  std::optional<size_t> max_errors;
  /// Hot-reload hook, called at every batch boundary. A non-null return
  /// replaces the model for subsequent batches (the previous model must
  /// stay valid until the call returns). Null = keep serving as-is.
  std::function<const ml::Classifier*()> model_poll;
};

/// Parses one request line into `codes`, validating field count and
/// domain membership against `domains`. The returned message carries no
/// line prefix; callers add "request line N: " so the strict Status and
/// the resilient ERR output line share the reason text. Shared by
/// ServeStream and the socket front-end so both speak the same grammar.
HAMLET_NODISCARD Status ParseRequest(const std::string& line,
                    const std::vector<uint32_t>& domains,
                    std::vector<uint32_t>& codes);

/// True for request lines that produce no output at all: blank lines
/// and '#' comments. The caller strips a trailing '\r' first.
bool IsIgnorableRequestLine(const std::string& line);

/// The shared batching core: accumulates parsed request rows, scores a
/// full batch through the active model's dense PredictAll (timed into
/// `stats`), and hands each prediction back through `emit` tagged with
/// the caller-supplied token, in row order. One owner drives it from a
/// single thread; sources that read from many threads (the socket
/// front-end) funnel into it through a queue.
class RequestBatcher {
 public:
  /// Receives one prediction per Add'ed row, in batch order.
  using Emit = std::function<Status(uint64_t tag, uint8_t prediction)>;
  /// Invoked after every successfully flushed batch (ticker repaints,
  /// connection output drains).
  using AfterBatch = std::function<void()>;

  /// `domains` is copied: hot reload may destroy the model the sizes
  /// came from, and ValidateReloadedModel guarantees the replacement's
  /// domains are identical.
  RequestBatcher(const ml::Classifier& model, std::vector<uint32_t> domains,
                 size_t batch_size,
                 std::function<const ml::Classifier*()> model_poll,
                 LatencyStats& stats, Emit emit,
                 AfterBatch after_batch = nullptr);

  const std::vector<uint32_t>& domains() const { return domains_; }

  /// Queues one validated row; flushes automatically at capacity.
  HAMLET_NODISCARD Status Add(const std::vector<uint32_t>& codes, uint64_t tag);

  /// Scores and emits everything pending. No-op when empty; the
  /// model_poll hook fires only when there are rows to serve, keeping
  /// the poll cadence identical to the original single-stream loop.
  HAMLET_NODISCARD Status Flush();

  size_t pending() const { return pending_rows_; }
  const ml::Classifier& active_model() const { return *active_; }

 private:
  void ResetBatch();

  std::vector<uint32_t> domains_;
  size_t batch_size_;
  std::function<const ml::Classifier*()> model_poll_;
  LatencyStats& stats_;
  Emit emit_;
  AfterBatch after_batch_;
  const ml::Classifier* active_;
  Dataset batch_;
  std::vector<uint64_t> tags_;
  size_t pending_rows_ = 0;
};

/// Owns the serving model plus the one it most recently replaced.
/// Swap() keeps the displaced model alive until the *next* Swap (or the
/// slot's destruction): ServeStream's model_poll contract says the
/// previous model must stay valid until the poll call returns, so the
/// hook must not destroy it mid-call — parking it here defers the
/// destruction past the swap that retired it.
///
/// Thread safety: current() and Swap() synchronize on an internal
/// mutex, so a reload thread may Swap while the serving loop polls
/// current() — the poll observes either the old or the new pointer,
/// never a torn one, and the retirement rule above keeps whichever it
/// observes alive for the duration of the batch.
class ModelSlot {
 public:
  explicit ModelSlot(std::unique_ptr<ml::Classifier> model)
      : current_(std::move(model)) {}

  const ml::Classifier* current() const {
    MutexLock lock(mu_);
    return current_.get();
  }
  ml::Classifier* current() {
    MutexLock lock(mu_);
    return current_.get();
  }

  /// Installs `fresh` as the serving model and returns it. The previous
  /// model is retired, not destroyed: it lives until the next Swap.
  const ml::Classifier* Swap(std::unique_ptr<ml::Classifier> fresh);

 private:
  mutable Mutex mu_;
  std::unique_ptr<ml::Classifier> current_ HAMLET_GUARDED_BY(mu_);
  std::unique_ptr<ml::Classifier> retired_ HAMLET_GUARDED_BY(mu_);
};

/// Serves every request line of `in` against `model`, writing one
/// output line per request (prediction, or ERR in kSkip mode) to `out`.
/// Returns the latency/error summary on success. The model must carry
/// train-domain metadata (any model loaded through io::LoadModel does;
/// a freshly Fit model does too).
HAMLET_NODISCARD Result<StatsSummary> ServeStream(const ml::Classifier& model,
                                 std::istream& in, std::ostream& out,
                                 std::ostream& err,
                                 const ServeConfig& config = {});

/// Validate-before-swap check for hot reload: the candidate must carry
/// train-domain metadata and its domains must match the serving model's
/// exactly (requests already validated against the old header must stay
/// valid, and learner tables must match the domain the parser enforces).
/// OK = safe to swap.
HAMLET_NODISCARD Status ValidateReloadedModel(const ml::Classifier& current,
                             const ml::Classifier& candidate);

}  // namespace serve
}  // namespace hamlet

#endif  // HAMLET_SERVE_SERVER_H_
