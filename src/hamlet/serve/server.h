// Batched prediction serving over a loaded model.
//
// ServeStream reads prediction requests (one tuple of categorical codes
// per line), validates each code against the model's train-domain
// metadata (restored from the model file header — the server never sees
// the training Dataset), batches rows, and scores each batch through
// the model's dense PredictAll so prediction fans out across the
// HAMLET_THREADS pool exactly like the experiment paths. Predictions
// stream to `out` one per line in request order; per-batch model time
// feeds the LatencyStats summary the caller prints.
//
// Request line format: num_features() unsigned integers separated by
// spaces, tabs or commas. Blank lines and lines starting with '#' are
// skipped (and produce no output line).
//
// Error isolation contract: what a malformed or out-of-domain line does
// depends on ServeConfig::on_error.
//   kAbort (strict, the default): the run stops with a Status naming
//     the line number — bit-identical behaviour to the original server.
//   kSkip (resilient): the line produces an in-order
//     "ERR <line>: <reason>" output line instead of a prediction, the
//     error counter in StatsSummary increments, and serving continues.
//     One output line per request either way, so callers can still zip
//     requests with responses. max_errors bounds the tolerance: one
//     more rejected line aborts the run (a stream that is all garbage
//     is a caller bug, not load).
// Either way a serving process never feeds a learner codes outside the
// domains its tables were sized for.
//
// Hot reload: model_poll (when set) is called at every batch boundary;
// a non-null return swaps the model used for subsequent batches. The
// caller is responsible for only returning models that pass
// ValidateReloadedModel — hamlet_serve wires SIGHUP -> load into a
// fresh slot -> validate -> swap, keeping the old model on any failure.

#ifndef HAMLET_SERVE_SERVER_H_
#define HAMLET_SERVE_SERVER_H_

#include <cstddef>
#include <functional>
#include <iosfwd>

#include "hamlet/common/status.h"
#include "hamlet/ml/classifier.h"
#include "hamlet/serve/stats.h"

namespace hamlet {
namespace serve {

/// Batch size requested via HAMLET_SERVE_BATCH: a positive integer, or
/// unset for the default (2048). Invalid values (non-numeric, < 1,
/// > 1e7) warn on stderr once per distinct value and fall back to the
/// default.
size_t ConfiguredBatchSize();

/// What ServeStream does with a malformed or out-of-domain request line.
enum class OnError {
  kEnv,    ///< resolve from HAMLET_SERVE_ON_ERROR (default kAbort)
  kAbort,  ///< stop the run with a Status naming the line (strict)
  kSkip,   ///< emit "ERR <line>: <reason>", count it, keep serving
};

/// Unbounded error tolerance for ServeConfig::max_errors.
inline constexpr size_t kUnlimitedErrors = static_cast<size_t>(-1);

/// Error policy requested via HAMLET_SERVE_ON_ERROR: "abort" or "skip",
/// unset for the default (kAbort). Unrecognised values warn on stderr
/// once per distinct value and fall back to kAbort.
OnError ConfiguredOnError();

/// Error cap requested via HAMLET_SERVE_MAX_ERRORS: a positive integer,
/// or unset for unlimited. Invalid values warn once and mean unlimited.
size_t ConfiguredMaxErrors();

struct ServeConfig {
  /// Rows per PredictAll call; 0 = ConfiguredBatchSize().
  size_t batch_size = 0;
  /// Paint the in-place LiveTicker line on stderr while serving.
  bool live_stats = false;
  /// Malformed-line policy; kEnv = ConfiguredOnError().
  OnError on_error = OnError::kEnv;
  /// Rejected-line budget in kSkip mode; exceeding it aborts the run.
  /// 0 = ConfiguredMaxErrors() (unlimited when the env is unset too).
  size_t max_errors = 0;
  /// Hot-reload hook, called at every batch boundary. A non-null return
  /// replaces the model for subsequent batches (the previous model must
  /// stay valid until the call returns). Null = keep serving as-is.
  std::function<const ml::Classifier*()> model_poll;
};

/// Serves every request line of `in` against `model`, writing one
/// output line per request (prediction, or ERR in kSkip mode) to `out`.
/// Returns the latency/error summary on success. The model must carry
/// train-domain metadata (any model loaded through io::LoadModel does;
/// a freshly Fit model does too).
Result<StatsSummary> ServeStream(const ml::Classifier& model,
                                 std::istream& in, std::ostream& out,
                                 std::ostream& err,
                                 const ServeConfig& config = {});

/// Validate-before-swap check for hot reload: the candidate must carry
/// train-domain metadata and its domains must match the serving model's
/// exactly (requests already validated against the old header must stay
/// valid, and learner tables must match the domain the parser enforces).
/// OK = safe to swap.
Status ValidateReloadedModel(const ml::Classifier& current,
                             const ml::Classifier& candidate);

}  // namespace serve
}  // namespace hamlet

#endif  // HAMLET_SERVE_SERVER_H_
