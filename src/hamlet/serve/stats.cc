#include "hamlet/serve/stats.h"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <string>

namespace hamlet {
namespace serve {

namespace {

/// Nearest-rank percentile of an ascending-sorted sample vector.
double PercentileSorted(const std::vector<double>& sorted, double pct) {
  if (sorted.empty()) return 0.0;
  const double rank = pct / 100.0 * static_cast<double>(sorted.size());
  size_t idx = static_cast<size_t>(rank);
  if (static_cast<double>(idx) < rank) ++idx;  // ceil
  if (idx > 0) --idx;                          // 1-based rank -> 0-based
  if (idx >= sorted.size()) idx = sorted.size() - 1;
  return sorted[idx];
}

}  // namespace

void LatencyStats::RecordBatch(size_t rows, double seconds) {
  rows_ += rows;
  model_seconds_ += seconds;
  batch_us_.push_back(seconds * 1e6);
}

StatsSummary LatencyStats::Summarize() const {
  StatsSummary s;
  s.rows = rows_;
  s.batches = batch_us_.size();
  s.errors = errors_;
  s.model_seconds = model_seconds_;
  if (model_seconds_ > 0.0) {
    s.preds_per_sec = static_cast<double>(rows_) / model_seconds_;
  }
  // Zero served batches (all-comment or all-error input): the defaulted
  // zeros are the summary; don't touch the empty sample vector.
  if (batch_us_.empty()) return s;
  std::vector<double> sorted = batch_us_;
  std::sort(sorted.begin(), sorted.end());
  s.p50_us = PercentileSorted(sorted, 50.0);
  s.p99_us = PercentileSorted(sorted, 99.0);
  return s;
}

LiveTicker::LiveTicker(std::ostream& os, bool enabled,
                       std::chrono::milliseconds interval)
    : os_(os),
      enabled_(enabled),
      interval_(interval),
      last_(std::chrono::steady_clock::now()) {}

void LiveTicker::MaybeTick(const LatencyStats& stats) {
  if (!enabled_) return;
  const auto now = std::chrono::steady_clock::now();
  if (painted_ && now - last_ < interval_) return;
  last_ = now;
  painted_ = true;
  const StatsSummary s = stats.Summarize();
  char line[160];
  const int n = std::snprintf(
      line, sizeof(line),
      "\rserving: rows=%llu batches=%llu errs=%llu ops/s=%.0f "
      "p50=%.0fus p99=%.0fus   ",
      static_cast<unsigned long long>(s.rows),
      static_cast<unsigned long long>(s.batches),
      static_cast<unsigned long long>(s.errors), s.preds_per_sec,
      s.p50_us, s.p99_us);
  if (n > 0) {
    // Track the widest line actually painted (minus the leading '\r',
    // capped by the buffer) so Finish can blank exactly that many
    // columns — a constant-width blank leaves residue from wide lines.
    const size_t width = std::min(static_cast<size_t>(n), sizeof(line)) - 1;
    painted_width_ = std::max(painted_width_, width);
  }
  os_ << line << std::flush;
}

void LiveTicker::Finish() {
  if (!enabled_ || !painted_) return;
  // Blank the widest line we painted, then return the cursor.
  os_ << '\r' << std::string(painted_width_, ' ') << '\r' << std::flush;
  painted_ = false;
}

}  // namespace serve
}  // namespace hamlet
