// Serving-side latency/throughput accounting.
//
// LatencyStats collects one sample per served batch (rows + seconds of
// model time) and summarises them as sustained predictions/sec plus
// nearest-rank p50/p99 batch latencies. LiveTicker paints a single
// in-place progress line (elbencho "LiveOps" style: carriage return, no
// newline) at a bounded repaint rate so interactive runs see throughput
// without the stats polluting piped output — the caller only attaches it
// to a terminal stderr.

#ifndef HAMLET_SERVE_STATS_H_
#define HAMLET_SERVE_STATS_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <vector>

namespace hamlet {
namespace serve {

/// Point-in-time summary of a serving run. With zero successfully
/// served batches (all-comment or all-error input) every rate and
/// percentile field is 0.0 — never a divide or an index into an empty
/// sample vector.
struct StatsSummary {
  uint64_t rows = 0;
  uint64_t batches = 0;
  uint64_t errors = 0;         ///< skipped request lines (resilient mode)
  double model_seconds = 0.0;  ///< time inside PredictAll, summed
  double preds_per_sec = 0.0;  ///< rows / model_seconds (0 when no time)
  double p50_us = 0.0;         ///< nearest-rank median batch latency
  double p99_us = 0.0;         ///< nearest-rank 99th percentile
};

/// Accumulates per-batch samples; cheap to record, summarises on demand.
class LatencyStats {
 public:
  void RecordBatch(size_t rows, double seconds);
  /// Counts one rejected request line (resilient serving mode).
  void RecordError() { ++errors_; }

  uint64_t rows() const { return rows_; }
  uint64_t batches() const { return batch_us_.size(); }
  uint64_t errors() const { return errors_; }

  /// Sorts a copy of the samples; call at ticks and at the end, not per
  /// batch.
  StatsSummary Summarize() const;

 private:
  uint64_t rows_ = 0;
  uint64_t errors_ = 0;
  double model_seconds_ = 0.0;
  std::vector<double> batch_us_;
};

/// Repaints "rows=... ops/s=... p50=... p99=..." in place on `os` at most
/// every `interval`; Finish() erases the line so real output never shares
/// it. No-op entirely when constructed disabled.
class LiveTicker {
 public:
  LiveTicker(std::ostream& os, bool enabled,
             std::chrono::milliseconds interval = std::chrono::milliseconds(
                 500));

  /// Called after each batch; repaints when the interval elapsed.
  void MaybeTick(const LatencyStats& stats);
  /// Clears the in-place line (call before printing final summaries).
  void Finish();

  /// Widest line painted so far (excluding the leading '\r'); Finish
  /// blanks exactly this many columns. Exposed for the width-tracking
  /// regression test.
  size_t painted_width() const { return painted_width_; }

 private:
  std::ostream& os_;
  bool enabled_;
  std::chrono::milliseconds interval_;
  std::chrono::steady_clock::time_point last_;
  bool painted_ = false;
  size_t painted_width_ = 0;
};

}  // namespace serve
}  // namespace hamlet

#endif  // HAMLET_SERVE_STATS_H_
