#include "hamlet/serve/net/socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace hamlet {
namespace serve {
namespace net {

namespace {

std::string ErrnoText(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::ShutdownRead() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RD);
}

void Socket::ShutdownWrite() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void Socket::ShutdownBoth() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

Result<Socket> ListenTcp(uint16_t port, int backlog) {
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) return Status::Internal(ErrnoText("socket"));
  const int one = 1;
  // Fast restart: a served-and-closed port lingers in TIME_WAIT.
  ::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(sock.fd(), reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return Status::Unavailable(
        ErrnoText(("bind 127.0.0.1:" + std::to_string(port)).c_str()));
  }
  if (::listen(sock.fd(), backlog) != 0) {
    return Status::Internal(ErrnoText("listen"));
  }
  return sock;
}

Result<uint16_t> LocalPort(const Socket& sock) {
  sockaddr_in addr;
  socklen_t len = sizeof(addr);
  if (::getsockname(sock.fd(), reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    return Status::Internal(ErrnoText("getsockname"));
  }
  return static_cast<uint16_t>(ntohs(addr.sin_port));
}

Result<Socket> AcceptConnection(const Socket& listener) {
  while (true) {
    const int fd = ::accept(listener.fd(), nullptr, nullptr);
    if (fd >= 0) return Socket(fd);
    if (errno == EINTR) continue;
    return Status::Unavailable(ErrnoText("accept"));
  }
}

Result<Socket> ConnectTcp(const std::string& host, uint16_t port) {
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) return Status::Internal(ErrnoText("socket"));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad IPv4 address \"" + host + "\"");
  }
  while (::connect(sock.fd(), reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr)) != 0) {
    if (errno == EINTR) continue;
    return Status::Unavailable(
        ErrnoText(("connect " + host + ":" + std::to_string(port)).c_str()));
  }
  return sock;
}

Status SendAll(int fd, const char* data, size_t len) {
  size_t sent = 0;
  while (sent < len) {
    const ssize_t n =
        ::send(fd, data + sent, len - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable(ErrnoText("send"));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<bool> LineReader::ReadLine(std::string& line) {
  while (true) {
    const size_t nl = buffer_.find('\n', pos_);
    if (nl != std::string::npos) {
      line.assign(buffer_, pos_, nl - pos_);
      pos_ = nl + 1;
      // Compact once the consumed prefix dominates, keeping the buffer
      // bounded without copying on every line.
      if (pos_ > buffer_.size() / 2 && pos_ > 4096) {
        buffer_.erase(0, pos_);
        pos_ = 0;
      }
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return true;
    }
    if (eof_) {
      if (pos_ >= buffer_.size()) return false;
      // std::getline semantics: the trailing unterminated fragment is
      // still a line.
      line.assign(buffer_, pos_, buffer_.size() - pos_);
      pos_ = buffer_.size();
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return true;
    }
    if (buffer_.size() - pos_ > max_line_bytes_) {
      return Status::InvalidArgument(
          "request line exceeds " + std::to_string(max_line_bytes_) +
          " bytes");
    }
    char chunk[4096];
    // read(2), not recv(2): the framing tests drive a LineReader over a
    // pipe, and sockets read identically through it.
    const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable(
          std::string("read: ") + std::strerror(errno));
    }
    if (n == 0) {
      eof_ = true;
      continue;
    }
    buffer_.append(chunk, static_cast<size_t>(n));
  }
}

}  // namespace net
}  // namespace serve
}  // namespace hamlet
