// Minimal dependency-free TCP building blocks for the serving
// front-end (elbencho BasicSocket shape: a thin RAII fd plus the few
// blocking helpers a line-protocol service needs — no event library,
// no framework).
//
// Everything here is blocking; concurrency comes from the caller's
// threads (NetServer runs one reader thread per connection plus an
// acceptor). All helpers report failures through Status with errno
// text, never exceptions.

#ifndef HAMLET_SERVE_NET_SOCKET_H_
#define HAMLET_SERVE_NET_SOCKET_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "hamlet/common/status.h"
#include "hamlet/common/attributes.h"

namespace hamlet {
namespace serve {
namespace net {

/// Owning file-descriptor wrapper (sockets here, but any fd works —
/// the framing tests run LineReader over a pipe). Move-only; closes on
/// destruction.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void Close();

  /// shutdown(2) the read side: wakes a reader blocked in recv with a
  /// clean EOF. Used to stop per-connection readers on server shutdown
  /// without closing the fd out from under an in-flight writer.
  void ShutdownRead();
  /// shutdown(2) the write side: signals EOF to the peer's reader while
  /// keeping our read side open (client "send all, then read all").
  void ShutdownWrite();
  /// shutdown(2) both sides. On Linux this also wakes a thread blocked
  /// in accept(2) on a listening socket, which close(2) does not
  /// reliably do — the server's shutdown path relies on it.
  void ShutdownBoth();

 private:
  int fd_ = -1;
};

/// Binds and listens on 127.0.0.1:`port` (port 0 = OS-assigned
/// ephemeral port, read it back with LocalPort). Loopback only: the
/// front-end is a single-host rung, not an exposure surface.
HAMLET_NODISCARD Result<Socket> ListenTcp(uint16_t port, int backlog = 64);

/// The locally bound port of a listening/connected socket.
HAMLET_NODISCARD Result<uint16_t> LocalPort(const Socket& sock);

/// Blocking accept. An error after the listener was closed is the
/// normal shutdown path; callers treat it as "stop accepting".
HAMLET_NODISCARD Result<Socket> AcceptConnection(const Socket& listener);

/// Blocking connect to `host`:`port` (numeric IPv4 dotted quad).
HAMLET_NODISCARD Result<Socket> ConnectTcp(const std::string& host,
                                           uint16_t port);

/// Writes all `len` bytes, retrying short writes and EINTR. SIGPIPE is
/// suppressed (MSG_NOSIGNAL): a vanished peer is a Status, not a
/// process kill.
HAMLET_NODISCARD Status SendAll(int fd, const char* data, size_t len);

/// Longest accepted request line, including the newline. Longer lines
/// poison the connection: an unbounded line is either a protocol
/// violation or an attack, and buffering it unboundedly is the worse
/// failure.
inline constexpr size_t kMaxLineBytes = 1 << 16;

/// Buffered newline framing over a blocking fd, std::getline
/// semantics: returns lines without their '\n', strips a trailing
/// '\r', and yields a final unterminated partial line before EOF.
class LineReader {
 public:
  explicit LineReader(int fd, size_t max_line_bytes = kMaxLineBytes)
      : fd_(fd), max_line_bytes_(max_line_bytes) {}

  /// True with `line` filled, false on clean EOF. Oversized lines and
  /// read errors return a Status.
  HAMLET_NODISCARD Result<bool> ReadLine(std::string& line);

 private:
  int fd_;
  size_t max_line_bytes_;
  std::string buffer_;
  size_t pos_ = 0;
  bool eof_ = false;
};

}  // namespace net
}  // namespace serve
}  // namespace hamlet

#endif  // HAMLET_SERVE_NET_SOCKET_H_
