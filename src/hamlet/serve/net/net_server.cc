#include "hamlet/serve/net/net_server.h"

#include <algorithm>
#include <ostream>
#include <utility>

#include "hamlet/common/stringx.h"

namespace hamlet {
namespace serve {
namespace net {

namespace {

/// How long the batch loop waits for a request before checking the
/// shutdown flag and flushing a partial batch: bounds both signal
/// latency and the tail latency of a quiet stream.
constexpr std::chrono::milliseconds kPollInterval(50);

}  // namespace

// ---------------------------------------------------------------------
// RequestQueue

void NetServer::RequestQueue::Push(Request req) {
  MutexLock lock(mu_);
  // EOF/error markers always fit: a reader must be able to announce its
  // exit even at capacity, or shutdown could deadlock against a full
  // queue.
  if (req.kind == Request::Kind::kLine) {
    while (items_.size() >= capacity_) not_full_.Wait(mu_);
  }
  items_.push_back(std::move(req));
  not_empty_.NotifyOne();
}

bool NetServer::RequestQueue::PopWithTimeout(
    Request& req, std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  MutexLock lock(mu_);
  while (items_.empty()) {
    if (!not_empty_.WaitUntil(mu_, deadline) && items_.empty()) {
      return false;
    }
  }
  req = std::move(items_.front());
  items_.pop_front();
  not_full_.NotifyOne();
  return true;
}

bool NetServer::RequestQueue::TryPop(Request& req) {
  MutexLock lock(mu_);
  if (items_.empty()) return false;
  req = std::move(items_.front());
  items_.pop_front();
  not_full_.NotifyOne();
  return true;
}

bool NetServer::RequestQueue::Empty() {
  MutexLock lock(mu_);
  return items_.empty();
}

// ---------------------------------------------------------------------
// Lifecycle

NetServer::NetServer(const ml::Classifier& model, NetServeConfig config)
    : model_(model),
      config_(std::move(config)),
      domains_(model.train_domain_sizes()),
      // Enough queued lines to fill a couple of batches; beyond that,
      // readers block and TCP back-pressures the clients.
      queue_(std::max<size_t>(
          1024, 2 * (config_.batch_size > 0 ? config_.batch_size
                                            : ConfiguredBatchSize()))) {}

NetServer::~NetServer() {
  // Defensive: a server that was Start()ed but never Run() (or whose
  // Run() already returned) still owns threads to stop.
  stop_.store(true);
  listener_.ShutdownBoth();
  {
    MutexLock lock(conns_mu_);
    for (auto& entry : conns_) entry.second->sock.ShutdownBoth();
  }
  if (acceptor_.joinable()) acceptor_.join();
  // With the acceptor joined no new connection can appear; swap the
  // survivors out and join their readers OUTSIDE conns_mu_ — a reader
  // blocked pushing into a full queue needs the drain loop below to
  // make progress, and holding a lock across join is the discipline
  // the thread-safety annotations exist to forbid.
  std::vector<ConnPtr> to_join;
  {
    MutexLock lock(conns_mu_);
    to_join.reserve(conns_.size());
    for (auto& entry : conns_) {
      // Latecomers accepted just before the listener died still need
      // their sockets shut down to wake their readers.
      entry.second->sock.ShutdownBoth();
      to_join.push_back(entry.second);
    }
    conns_.clear();
  }
  for (const ConnPtr& conn : to_join) {
    // Drain any reader blocked on a full queue, then join.
    Request dropped;
    while (!conn->reader_done.load() && queue_.TryPop(dropped)) {
    }
    if (conn->reader.joinable()) conn->reader.join();
  }
  for (const ConnPtr& conn : retired_) {
    if (conn->reader.joinable()) conn->reader.join();
  }
}

Status NetServer::Start() {
  if (domains_.empty()) {
    return Status::FailedPrecondition(
        "model carries no train-domain metadata; load it via io::LoadModel "
        "or Fit it before serving");
  }
  Result<Socket> listener = ListenTcp(config_.port);
  if (!listener.ok()) return listener.status();
  listener_ = std::move(listener).value();
  Result<uint16_t> port = LocalPort(listener_);
  if (!port.ok()) return port.status();
  port_ = port.value();
  acceptor_ = std::thread([this] { AcceptLoop(); });
  started_.store(true);
  return Status::OK();
}

void NetServer::RequestShutdown() { stop_.store(true); }

bool NetServer::ShouldStop() {
  if (stop_.load()) return true;
  if (config_.stop_poll && config_.stop_poll()) {
    stop_.store(true);
    return true;
  }
  return false;
}

// ---------------------------------------------------------------------
// Acceptor + readers

void NetServer::AcceptLoop() {
  while (true) {
    Result<Socket> accepted = AcceptConnection(listener_);
    // Errors here are the shutdown path (listener shut down) or a
    // transient accept failure; either way stop_ decides.
    if (stop_.load()) return;
    if (!accepted.ok()) return;
    ConnPtr conn = std::make_shared<Connection>();
    conn->id = next_conn_id_.fetch_add(1);
    conn->sock = std::move(accepted).value();
    {
      // Insert and reader-thread assignment share one critical section:
      // everyone else reaches a connection through conns_ (under this
      // mutex), so they observe `reader` fully assigned. Publishing the
      // conn first opens a race where a fast reader finishes, the Run()
      // thread reaps it while joinable() is still false, and the
      // assignment then lands a never-joined thread in the struct.
      MutexLock lock(conns_mu_);
      conns_[conn->id] = conn;
      conn->reader = std::thread([this, conn] { ReaderLoop(conn); });
    }
  }
}

void NetServer::ReaderLoop(ConnPtr conn) {
  LineReader reader(conn->sock.fd());
  uint64_t line_no = 0;
  std::string line;
  while (true) {
    Result<bool> got = reader.ReadLine(line);
    if (!got.ok()) {
      Request req;
      req.conn_id = conn->id;
      req.line_no = ++line_no;
      req.kind = Request::Kind::kReadError;
      req.text = got.status().message();
      queue_.Push(std::move(req));
      break;
    }
    if (!got.value()) break;  // clean EOF
    Request req;
    req.conn_id = conn->id;
    req.line_no = ++line_no;
    req.kind = Request::Kind::kLine;
    req.text = std::move(line);
    queue_.Push(std::move(req));
    line.clear();
  }
  Request eof;
  eof.conn_id = conn->id;
  eof.kind = Request::Kind::kEof;
  queue_.Push(std::move(eof));
  conn->reader_done.store(true);
}

// ---------------------------------------------------------------------
// Run()-thread request handling

NetServer::ConnPtr NetServer::FindConn(uint64_t id) {
  MutexLock lock(conns_mu_);
  auto it = conns_.find(id);
  return it == conns_.end() ? nullptr : it->second;
}

std::string NetServer::HealthzResponse() const {
  const ml::Classifier& active =
      batcher_ != nullptr ? batcher_->active_model() : model_;
  return "OK model=" + active.name() +
         " rows=" + std::to_string(stats_.rows()) +
         " errors=" + std::to_string(stats_.errors());
}

void NetServer::AssignImmediate(const ConnPtr& conn, std::string response) {
  conn->ready[conn->next_slot++] = std::move(response);
  DrainConn(conn);
}

void NetServer::RecordConnError(const ConnPtr& conn, uint64_t line_no,
                                const std::string& reason) {
  stats_.RecordError();
  ++conn->errors;
  AssignImmediate(conn,
                  "ERR " + std::to_string(line_no) + ": " + reason);
  if (conn->errors > max_errors_) {
    // Per-connection isolation: only this client is cut off; the final
    // ERR tells it why before the FIN.
    AssignImmediate(conn, "ERR " + std::to_string(line_no) +
                              ": error budget exceeded (" +
                              std::to_string(max_errors_) +
                              " rejected lines); closing connection");
    conn->poisoned = true;
    conn->sock.ShutdownRead();
  }
}

void NetServer::HandleLine(const ConnPtr& conn, uint64_t line_no,
                           const std::string& line) {
  if (conn->poisoned) return;
  if (IsIgnorableRequestLine(line)) return;
  const std::string trimmed = TrimString(line);
  if (!trimmed.empty() && trimmed[0] == '/') {
    if (trimmed == "/healthz") {
      AssignImmediate(conn, HealthzResponse());
      return;
    }
    RecordConnError(conn, line_no,
                    "unknown command \"" + trimmed + "\"");
    return;
  }
  std::vector<uint32_t> codes;
  const Status parsed = ParseRequest(line, domains_, codes);
  if (!parsed.ok()) {
    RecordConnError(conn, line_no, parsed.message());
    return;
  }
  const uint64_t slot = conn->next_slot++;
  const uint64_t tag = inflight_.size();
  inflight_.emplace_back(conn, slot);
  // Add can only fail on a malformed row, which ParseRequest just
  // excluded; a failure here is a programming error worth surfacing,
  // but it must not tear down the other connections — record it
  // against this one.
  const Status added = batcher_->Add(codes, tag);
  if (!added.ok()) {
    conn->ready[slot] = "ERR " + std::to_string(line_no) + ": " +
                        added.message();
    DrainConn(conn);
  }
}

void NetServer::DrainConn(const ConnPtr& conn) {
  auto it = conn->ready.find(conn->next_emit);
  while (it != conn->ready.end()) {
    if (!conn->write_failed) {
      std::string out = it->second + "\n";
      if (!SendAll(conn->sock.fd(), out.data(), out.size()).ok()) {
        // The client vanished: stop writing and reading, but let any
        // rows already in the batch complete (their slots just drop).
        conn->write_failed = true;
        conn->poisoned = true;
        conn->sock.ShutdownRead();
      }
    }
    conn->ready.erase(it);
    it = conn->ready.find(++conn->next_emit);
  }
}

void NetServer::MaybeRetire(const ConnPtr& conn) {
  if (conn->retired || !conn->input_done) return;
  if (conn->next_emit != conn->next_slot || !conn->ready.empty()) return;
  conn->retired = true;
  // Every response is out: half-close so the client's read loop ends.
  conn->sock.ShutdownWrite();
  {
    MutexLock lock(conns_mu_);
    conns_.erase(conn->id);
  }
  retired_.push_back(conn);
}

void NetServer::ReapRetired() {
  auto done = [](const ConnPtr& conn) {
    if (!conn->reader_done.load()) return false;
    if (conn->reader.joinable()) conn->reader.join();
    return true;
  };
  retired_.erase(std::remove_if(retired_.begin(), retired_.end(), done),
                 retired_.end());
}

void NetServer::Process(const Request& req, std::ostream& err) {
  ConnPtr conn = FindConn(req.conn_id);
  if (conn == nullptr) return;  // already retired
  switch (req.kind) {
    case Request::Kind::kEof:
      conn->input_done = true;
      MaybeRetire(conn);
      break;
    case Request::Kind::kReadError:
      err << "hamlet_serve: connection " << req.conn_id
          << " read error: " << req.text << "\n";
      RecordConnError(conn, req.line_no, req.text);
      conn->poisoned = true;
      break;
    case Request::Kind::kLine:
      HandleLine(conn, req.line_no, req.text);
      break;
  }
}

// ---------------------------------------------------------------------
// The batch/write loop

Result<StatsSummary> NetServer::Run(std::ostream& err) {
  if (!started_.load()) {
    return Status::FailedPrecondition("NetServer::Run before Start");
  }
  max_errors_ = config_.max_errors.has_value() ? *config_.max_errors
                                               : ConfiguredMaxErrors();
  LiveTicker ticker(err, config_.live_stats);
  RequestBatcher batcher(
      model_, domains_, config_.batch_size, config_.model_poll, stats_,
      [this](uint64_t tag, uint8_t pred) -> Status {
        const auto& [conn, slot] = inflight_[tag];
        conn->ready[slot] = std::to_string(static_cast<int>(pred));
        return Status::OK();
      },
      [this, &ticker]() {
        for (const auto& [conn, slot] : inflight_) {
          (void)slot;
          DrainConn(conn);
          MaybeRetire(conn);
        }
        inflight_.clear();
        ticker.MaybeTick(stats_);
      });
  batcher_ = &batcher;
  Status loop_status = Status::OK();

  while (!ShouldStop()) {
    Request req;
    if (queue_.PopWithTimeout(req, kPollInterval)) {
      Process(req, err);
      // Opportunistic batching: drain whatever already arrived, then
      // flush as soon as the queue goes idle so a quiet stream still
      // answers promptly. Sustained load fills batches to batch_size
      // inside Add.
      Request more;
      while (queue_.TryPop(more)) Process(more, err);
    }
    if (batcher.pending() > 0) {
      loop_status = batcher.Flush();
      if (!loop_status.ok()) break;
    }
    ReapRetired();
  }

  // Graceful shutdown: stop accepting, wake every reader, serve what
  // already arrived, write the remaining responses, close.
  stop_.store(true);
  listener_.ShutdownBoth();
  while (true) {
    std::vector<ConnPtr> live;
    {
      MutexLock lock(conns_mu_);
      // Latecomer-safe: re-shutdown every pass; a connection accepted
      // just before the listener died still gets woken.
      for (auto& entry : conns_) {
        entry.second->sock.ShutdownRead();
        live.push_back(entry.second);
      }
      if (conns_.empty() && queue_.Empty()) break;
    }
    if (!loop_status.ok()) {
      // The batch loop itself failed: responses for queued rows will
      // never materialise, so abandon them or the drain never ends.
      for (const ConnPtr& conn : live) {
        conn->write_failed = true;
        conn->poisoned = true;
        conn->ready.clear();
        conn->next_emit = conn->next_slot;
        MaybeRetire(conn);
      }
    }
    Request req;
    if (queue_.PopWithTimeout(req, std::chrono::milliseconds(10))) {
      Process(req, err);
      Request more;
      while (queue_.TryPop(more)) Process(more, err);
    }
    if (loop_status.ok() && batcher.pending() > 0) {
      loop_status = batcher.Flush();
    }
    ReapRetired();
  }
  if (acceptor_.joinable()) acceptor_.join();
  ReapRetired();
  for (const ConnPtr& conn : retired_) {
    if (conn->reader.joinable()) conn->reader.join();
  }
  retired_.clear();
  batcher_ = nullptr;
  ticker.Finish();

  if (!loop_status.ok()) return loop_status;
  return Result<StatsSummary>(stats_.Summarize());
}

}  // namespace net
}  // namespace serve
}  // namespace hamlet
