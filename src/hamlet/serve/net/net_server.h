// TCP front-end for the serving stack: a line-protocol socket service
// multiplexing concurrent client connections onto one shared
// RequestBatcher, so every connection's rows ride the same
// HAMLET_SERVE_BATCH batches across the HAMLET_THREADS pool.
//
// Wire protocol (newline-framed, same request grammar as the stdin
// path — see serve/server.h):
//   - Each request line yields exactly one response line, in
//     per-connection request order: the prediction ("0"/"1"), or
//     "ERR <line>: <reason>" for a malformed/out-of-domain line, where
//     <line> is the 1-based line number within that connection
//     (blank/'#' lines count but produce no response, exactly like the
//     stdin path — so piping the same file through `--client` and
//     through stdin yields bit-identical output).
//   - Lines starting with '/' are commands. "/healthz" answers
//     "OK model=<name> rows=<served> errors=<rejected>" immediately
//     (in order with the connection's other responses); unknown
//     commands are errors.
//   - Error isolation is per connection (OnError::kSkip semantics):
//     a bad line produces an ERR response and counts against that
//     connection's budget (NetServeConfig::max_errors, default
//     HAMLET_SERVE_MAX_ERRORS); exceeding the budget sends a final
//     "ERR <line>: error budget exceeded..." and closes only that
//     connection. Other connections never notice.
//   - The server half-closes (FIN) a connection once the client's EOF
//     arrived and every response was written, so "send all, shut down
//     write, read until EOF" is a complete client.
//
// Threading: one acceptor thread, one reader thread per connection,
// and the caller's Run() thread as the single batch/write loop. All
// parsing, batching, stats, and socket writes happen on the Run()
// thread; readers only frame lines into a bounded queue (back-pressure
// lands on the sockets, not on memory). A stalled client can therefore
// stall the write loop — acceptable at this rung, noted in
// docs/ARCHITECTURE.md.
//
// Shutdown: RequestShutdown() (or a true stop_poll, wired to
// SIGINT/SIGTERM by hamlet_serve) stops accepting, wakes every reader,
// drains already-received requests through a final batch, writes the
// remaining responses, and returns the run's StatsSummary — the caller
// prints the usual "[serve]" line.

#ifndef HAMLET_SERVE_NET_NET_SERVER_H_
#define HAMLET_SERVE_NET_NET_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "hamlet/common/status.h"
#include "hamlet/common/attributes.h"
#include "hamlet/common/mutex.h"
#include "hamlet/common/thread_annotations.h"
#include "hamlet/ml/classifier.h"
#include "hamlet/serve/net/socket.h"
#include "hamlet/serve/server.h"
#include "hamlet/serve/stats.h"

namespace hamlet {
namespace serve {
namespace net {

struct NetServeConfig {
  /// Port to listen on (loopback); 0 = OS-assigned, read via port().
  uint16_t port = 0;
  /// Rows per PredictAll call; 0 = ConfiguredBatchSize().
  size_t batch_size = 0;
  /// Per-connection rejected-line budget; nullopt = ConfiguredMaxErrors().
  std::optional<size_t> max_errors;
  /// Paint the in-place LiveTicker line on the Run() err stream.
  bool live_stats = false;
  /// Hot-reload hook, same contract as ServeConfig::model_poll.
  std::function<const ml::Classifier*()> model_poll;
  /// Checked between batches; returning true triggers graceful
  /// shutdown (hamlet_serve wires the SIGINT/SIGTERM flag here).
  std::function<bool()> stop_poll;
};

class NetServer {
 public:
  /// The model must carry train-domain metadata and outlive the server
  /// (hot reload via model_poll follows the ServeStream contract).
  NetServer(const ml::Classifier& model, NetServeConfig config);
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Binds, listens, and starts accepting. Fails without serving if
  /// the port is taken or the model carries no domain metadata.
  HAMLET_NODISCARD Status Start();

  /// The bound port (valid after a successful Start).
  uint16_t port() const { return port_; }

  /// The batch/write loop: serves until RequestShutdown() or a true
  /// stop_poll, then drains and returns the aggregate summary.
  /// `err` receives the live ticker and per-event log lines.
  HAMLET_NODISCARD Result<StatsSummary> Run(std::ostream& err);

  /// Thread-safe, idempotent; Run() notices within its poll interval.
  void RequestShutdown();

 private:
  struct Request {
    enum class Kind : uint8_t { kLine, kEof, kReadError };
    uint64_t conn_id = 0;
    uint64_t line_no = 0;  ///< 1-based within the connection
    Kind kind = Kind::kLine;
    std::string text;      ///< the line, or the read-error reason
  };

  /// Bounded MPSC queue: readers push (blocking at capacity), the Run()
  /// thread pops. Back-pressure reaches clients through TCP.
  class RequestQueue {
   public:
    explicit RequestQueue(size_t capacity) : capacity_(capacity) {}
    void Push(Request req);
    bool PopWithTimeout(Request& req, std::chrono::milliseconds timeout);
    bool TryPop(Request& req);
    bool Empty();

   private:
    Mutex mu_;
    CondVar not_full_;
    CondVar not_empty_;
    std::deque<Request> items_ HAMLET_GUARDED_BY(mu_);
    const size_t capacity_;
  };

  /// Per-connection state. The socket is shared between its reader
  /// thread (reads) and the Run() thread (writes, shutdown); all other
  /// fields below `reader_done` are Run()-thread-only.
  struct Connection {
    uint64_t id = 0;
    Socket sock;
    std::thread reader;
    std::atomic<bool> reader_done{false};

    uint64_t next_slot = 0;  ///< next response slot to assign
    uint64_t next_emit = 0;  ///< next response slot to write
    std::map<uint64_t, std::string> ready;  ///< completed out-of-order
    uint64_t errors = 0;     ///< rejected lines on this connection
    bool input_done = false; ///< EOF marker consumed
    bool poisoned = false;   ///< budget/write failure: drop further input
    bool write_failed = false;  ///< peer vanished: discard responses
    bool retired = false;    ///< already moved to the retired list
  };
  using ConnPtr = std::shared_ptr<Connection>;

  void AcceptLoop();
  void ReaderLoop(ConnPtr conn);

  // Run()-thread helpers.
  void Process(const Request& req, std::ostream& err);
  void HandleLine(const ConnPtr& conn, uint64_t line_no,
                  const std::string& line);
  void AssignImmediate(const ConnPtr& conn, std::string response);
  void RecordConnError(const ConnPtr& conn, uint64_t line_no,
                       const std::string& reason);
  void DrainConn(const ConnPtr& conn);
  void MaybeRetire(const ConnPtr& conn);
  void ReapRetired();
  bool ShouldStop();
  ConnPtr FindConn(uint64_t id);
  std::string HealthzResponse() const;

  const ml::Classifier& model_;
  NetServeConfig config_;
  std::vector<uint32_t> domains_;
  size_t max_errors_ = kUnlimitedErrors;

  Socket listener_;
  uint16_t port_ = 0;
  std::thread acceptor_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> started_{false};

  RequestQueue queue_;
  Mutex conns_mu_;
  std::map<uint64_t, ConnPtr> conns_ HAMLET_GUARDED_BY(conns_mu_);
  std::atomic<uint64_t> next_conn_id_{1};
  /// Closed connections awaiting their reader join. Not guarded:
  /// touched only by the Run() thread and the destructor, which runs
  /// strictly after Run() returns.
  std::vector<ConnPtr> retired_;

  // Batch state, only valid inside Run().
  LatencyStats stats_;
  RequestBatcher* batcher_ = nullptr;
  /// tag -> (connection, slot) for rows in the current batch.
  std::vector<std::pair<ConnPtr, uint64_t>> inflight_;
};

}  // namespace net
}  // namespace serve
}  // namespace hamlet

#endif  // HAMLET_SERVE_NET_NET_SERVER_H_
