// Internal interface between the backend dispatcher (simd.cc) and the
// hardware-popcount translation unit (simd_native.cc). The native word
// math is identical to the SWAR backend's — only the popcount differs —
// so the counts are bit-identical by construction. Not part of the
// public simd API; include hamlet/simd/simd.h instead.

#ifndef HAMLET_SIMD_SIMD_NATIVE_H_
#define HAMLET_SIMD_SIMD_NATIVE_H_

#include <cstddef>
#include <cstdint>

namespace hamlet {
namespace simd {

struct PackedLayout;

namespace detail {

/// True when this host can run the hardware-popcount path (POPCNT on
/// x86-64, unconditional on aarch64, false elsewhere). Cached after the
/// first call.
bool NativeSupported();

/// Mismatch count over packed rows using hardware popcount; only called
/// when NativeSupported(). Long rows take an AVX2 block path where the
/// CPU has it.
size_t MismatchNative(const PackedLayout& layout, const uint64_t* a,
                      const uint64_t* b);

/// Early-exit variant: stops once the running count reaches `limit`.
size_t MismatchNativeBounded(const PackedLayout& layout, const uint64_t* a,
                             const uint64_t* b, size_t limit);

}  // namespace detail
}  // namespace simd
}  // namespace hamlet

#endif  // HAMLET_SIMD_SIMD_NATIVE_H_
