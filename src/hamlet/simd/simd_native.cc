// Hardware-popcount backend. Isolated in its own translation unit so the
// x86-64 functions can carry __attribute__((target(...))) — the rest of
// the library still compiles for the baseline ISA and the dispatcher
// only routes here after __builtin_cpu_supports confirms the feature.

#include "hamlet/simd/simd_native.h"

#include "hamlet/simd/simd.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define HAMLET_SIMD_X86_NATIVE 1
#include <immintrin.h>
#endif

namespace hamlet {
namespace simd {
namespace detail {

namespace {

/// Same guard-bit carry trick as the SWAR backend (see simd.cc): the
/// word math is shared verbatim, only the popcount differs, so the two
/// backends agree bit for bit.
inline uint64_t MismatchGuardBits(uint64_t x, const PackedLayout& layout) {
  return (x + layout.add_mask) & layout.guard_mask;
}

#if !defined(HAMLET_SIMD_X86_NATIVE) && !defined(__aarch64__)
/// Bit-twiddling popcount for the defensive fallback on hosts with no
/// native path (the dispatcher normally resolves kNative away first).
inline uint32_t PopcountSwar(uint64_t x) {
  x = x - ((x >> 1) & 0x5555555555555555ull);
  x = (x & 0x3333333333333333ull) + ((x >> 2) & 0x3333333333333333ull);
  x = (x + (x >> 4)) & 0x0f0f0f0f0f0f0f0full;
  return static_cast<uint32_t>((x * 0x0101010101010101ull) >> 56);
}
#endif

#ifdef HAMLET_SIMD_X86_NATIVE

__attribute__((target("popcnt"))) size_t MismatchPopcnt(
    const PackedLayout& layout, const uint64_t* a, const uint64_t* b) {
  size_t mismatches = 0;
  for (size_t w = 0; w < layout.words_per_row; ++w) {
    mismatches += static_cast<size_t>(
        _mm_popcnt_u64(MismatchGuardBits(a[w] ^ b[w], layout)));
  }
  return mismatches;
}

__attribute__((target("popcnt"))) size_t MismatchPopcntBounded(
    const PackedLayout& layout, const uint64_t* a, const uint64_t* b,
    size_t limit) {
  size_t mismatches = 0;
  for (size_t w = 0; w < layout.words_per_row; ++w) {
    mismatches += static_cast<size_t>(
        _mm_popcnt_u64(MismatchGuardBits(a[w] ^ b[w], layout)));
    if (mismatches >= limit) return mismatches;
  }
  return mismatches;
}

/// Block path for long rows: four words per iteration through AVX2
/// XOR/add/and, popcounted from a spilled register. Only worth the lane
/// shuffling once rows span several cache lines.
__attribute__((target("avx2,popcnt"))) size_t MismatchAvx2(
    const PackedLayout& layout, const uint64_t* a, const uint64_t* b) {
  const __m256i add =
      _mm256_set1_epi64x(static_cast<long long>(layout.add_mask));
  const __m256i guard =
      _mm256_set1_epi64x(static_cast<long long>(layout.guard_mask));
  size_t mismatches = 0;
  size_t w = 0;
  for (; w + 4 <= layout.words_per_row; w += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + w));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + w));
    const __m256i guarded = _mm256_and_si256(
        _mm256_add_epi64(_mm256_xor_si256(va, vb), add), guard);
    alignas(32) uint64_t lanes[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), guarded);
    mismatches += static_cast<size_t>(
        _mm_popcnt_u64(lanes[0]) + _mm_popcnt_u64(lanes[1]) +
        _mm_popcnt_u64(lanes[2]) + _mm_popcnt_u64(lanes[3]));
  }
  for (; w < layout.words_per_row; ++w) {
    mismatches += static_cast<size_t>(
        _mm_popcnt_u64(MismatchGuardBits(a[w] ^ b[w], layout)));
  }
  return mismatches;
}

bool HasAvx2() {
  static const bool supported = __builtin_cpu_supports("avx2");
  return supported;
}

#endif  // HAMLET_SIMD_X86_NATIVE

}  // namespace

#ifdef HAMLET_SIMD_X86_NATIVE

bool NativeSupported() {
  static const bool supported = __builtin_cpu_supports("popcnt");
  return supported;
}

size_t MismatchNative(const PackedLayout& layout, const uint64_t* a,
                      const uint64_t* b) {
  if (layout.words_per_row >= 8 && HasAvx2()) {
    return MismatchAvx2(layout, a, b);
  }
  return MismatchPopcnt(layout, a, b);
}

size_t MismatchNativeBounded(const PackedLayout& layout, const uint64_t* a,
                             const uint64_t* b, size_t limit) {
  return MismatchPopcntBounded(layout, a, b, limit);
}

#elif defined(__aarch64__)

// aarch64 has no runtime feature question: __builtin_popcountll lowers
// to the NEON cnt/addv sequence on every ARMv8 core.
bool NativeSupported() { return true; }

size_t MismatchNative(const PackedLayout& layout, const uint64_t* a,
                      const uint64_t* b) {
  size_t mismatches = 0;
  for (size_t w = 0; w < layout.words_per_row; ++w) {
    mismatches += static_cast<size_t>(
        __builtin_popcountll(MismatchGuardBits(a[w] ^ b[w], layout)));
  }
  return mismatches;
}

size_t MismatchNativeBounded(const PackedLayout& layout, const uint64_t* a,
                             const uint64_t* b, size_t limit) {
  size_t mismatches = 0;
  for (size_t w = 0; w < layout.words_per_row; ++w) {
    mismatches += static_cast<size_t>(
        __builtin_popcountll(MismatchGuardBits(a[w] ^ b[w], layout)));
    if (mismatches >= limit) return mismatches;
  }
  return mismatches;
}

#else

bool NativeSupported() { return false; }

size_t MismatchNative(const PackedLayout& layout, const uint64_t* a,
                      const uint64_t* b) {
  size_t mismatches = 0;
  for (size_t w = 0; w < layout.words_per_row; ++w) {
    mismatches += PopcountSwar(MismatchGuardBits(a[w] ^ b[w], layout));
  }
  return mismatches;
}

size_t MismatchNativeBounded(const PackedLayout& layout, const uint64_t* a,
                             const uint64_t* b, size_t limit) {
  size_t mismatches = 0;
  for (size_t w = 0; w < layout.words_per_row; ++w) {
    mismatches += PopcountSwar(MismatchGuardBits(a[w] ^ b[w], layout));
    if (mismatches >= limit) return mismatches;
  }
  return mismatches;
}

#endif

}  // namespace detail
}  // namespace simd
}  // namespace hamlet
