#include "hamlet/simd/simd.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "hamlet/common/logging.h"
#include "hamlet/simd/simd_native.h"

namespace hamlet {
namespace simd {

namespace {

/// Process-wide packed-path totals (relaxed atomics; concurrent fits each
/// accumulate locally and flush sums, readers run after the fits).
std::atomic<uint64_t> g_packed_builds{0};
std::atomic<uint64_t> g_packed_rows{0};
std::atomic<uint64_t> g_packed_build_words{0};
std::atomic<uint64_t> g_packed_evals{0};
std::atomic<uint64_t> g_packed_eval_words{0};

/// Bit-twiddling population count (Hacker's Delight); the kSwar backend
/// and the fallback for hosts without a hardware popcount.
inline uint32_t PopcountSwar(uint64_t x) {
  x = x - ((x >> 1) & 0x5555555555555555ull);
  x = (x & 0x3333333333333333ull) + ((x >> 2) & 0x3333333333333333ull);
  x = (x + (x >> 4)) & 0x0f0f0f0f0f0f0f0full;
  return static_cast<uint32_t>((x * 0x0101010101010101ull) >> 56);
}

/// Mismatched fields of one XOR word, counted one field at a time (the
/// reference the other backends must agree with bit for bit).
inline size_t WordMismatchScalar(uint64_t x, uint32_t field_bits,
                                 size_t fields_per_word) {
  const uint64_t field_mask = (uint64_t{1} << field_bits) - 1;
  size_t mismatches = 0;
  for (size_t f = 0; f < fields_per_word; ++f) {
    mismatches += ((x >> (f * field_bits)) & field_mask) != 0;
  }
  return mismatches;
}

/// Mismatched fields of one XOR word via the guard-bit carry trick: a
/// field of x + add_mask carries into its guard bit iff the field of x is
/// non-zero, and the carry cannot cross fields (max field sum is
/// 2^field_bits - 2). Padding fields are zero in both rows, so they never
/// carry.
inline uint64_t MismatchGuardBits(uint64_t x, const PackedLayout& layout) {
  return (x + layout.add_mask) & layout.guard_mask;
}

size_t MismatchScalar(const PackedLayout& layout, const uint64_t* a,
                      const uint64_t* b) {
  size_t mismatches = 0;
  for (size_t w = 0; w < layout.words_per_row; ++w) {
    mismatches += WordMismatchScalar(a[w] ^ b[w], layout.field_bits,
                                     layout.fields_per_word);
  }
  return mismatches;
}

size_t MismatchSwar(const PackedLayout& layout, const uint64_t* a,
                    const uint64_t* b) {
  size_t mismatches = 0;
  for (size_t w = 0; w < layout.words_per_row; ++w) {
    mismatches += PopcountSwar(MismatchGuardBits(a[w] ^ b[w], layout));
  }
  return mismatches;
}

size_t MismatchScalarBounded(const PackedLayout& layout, const uint64_t* a,
                             const uint64_t* b, size_t limit) {
  size_t mismatches = 0;
  for (size_t w = 0; w < layout.words_per_row; ++w) {
    mismatches += WordMismatchScalar(a[w] ^ b[w], layout.field_bits,
                                     layout.fields_per_word);
    if (mismatches >= limit) return mismatches;
  }
  return mismatches;
}

size_t MismatchSwarBounded(const PackedLayout& layout, const uint64_t* a,
                           const uint64_t* b, size_t limit) {
  size_t mismatches = 0;
  for (size_t w = 0; w < layout.words_per_row; ++w) {
    mismatches += PopcountSwar(MismatchGuardBits(a[w] ^ b[w], layout));
    if (mismatches >= limit) return mismatches;
  }
  return mismatches;
}

/// kNative on a host without hardware popcount runs the SWAR word math;
/// resolving here keeps every entry point (including tests that force
/// each enum value) safe on any machine.
inline Backend ResolveNative(Backend backend) {
  if (backend == Backend::kNative && !detail::NativeSupported()) {
    return Backend::kSwar;
  }
  return backend;
}

Backend DefaultBackend() {
  return NativeAvailable() ? Backend::kNative : Backend::kSwar;
}

/// One (row, feature) pass of the NB counting loop; shared by every lane.
inline void CountOneRow(const uint32_t* row, uint8_t label, size_t d,
                        const size_t* offsets, uint32_t* counts) {
  for (size_t j = 0; j < d; ++j) {
    counts[offsets[j] + static_cast<size_t>(row[j]) * 2 + label] += 1;
  }
}

}  // namespace

const char* BackendName(Backend backend) {
  switch (backend) {
    case Backend::kScalar:
      return "scalar";
    case Backend::kSwar:
      return "swar";
    case Backend::kNative:
      return "native";
  }
  return "unknown";
}

bool NativeAvailable() { return detail::NativeSupported(); }

Backend ActiveBackend() {
  const char* value = std::getenv("HAMLET_SIMD");
  if (value == nullptr || *value == '\0') return DefaultBackend();
  const std::string v(value);
  if (v == "scalar") return Backend::kScalar;
  if (v == "swar") return Backend::kSwar;
  if (v == "native") {
    if (!NativeAvailable()) {
      if (FirstOccurrence("simd:native-unavailable")) {
        std::fprintf(stderr,
                     "hamlet: HAMLET_SIMD=native requested but this host "
                     "has no hardware popcount; using swar\n");
      }
      return Backend::kSwar;
    }
    return Backend::kNative;
  }
  if (v == "auto") return DefaultBackend();
  if (FirstOccurrence(std::string("simd:") + v)) {
    std::fprintf(stderr,
                 "hamlet: unrecognized HAMLET_SIMD=\"%s\" (expected scalar, "
                 "swar, native or auto); using auto\n",
                 value);
  }
  return DefaultBackend();
}

PackedLayout PackedLayout::ForMaxCode(uint32_t max_code, size_t d) {
  uint32_t value_bits = 1;
  while (value_bits < 32 && (max_code >> value_bits) != 0) ++value_bits;
  PackedLayout layout;
  layout.num_features = d;
  layout.field_bits = value_bits + 1;
  layout.fields_per_word = 64 / layout.field_bits;
  layout.words_per_row =
      d == 0 ? 0
             : (d + layout.fields_per_word - 1) / layout.fields_per_word;
  for (size_t f = 0; f < layout.fields_per_word; ++f) {
    const size_t base = f * layout.field_bits;
    layout.guard_mask |= uint64_t{1} << (base + layout.field_bits - 1);
    layout.add_mask |= ((uint64_t{1} << (layout.field_bits - 1)) - 1)
                       << base;
  }
  return layout;
}

PackedLayout PackedLayout::ForDomains(const uint32_t* domains, size_t d) {
  uint32_t max_code = 0;
  for (size_t j = 0; j < d; ++j) {
    if (domains[j] > 0) max_code = std::max(max_code, domains[j] - 1);
  }
  return ForMaxCode(max_code, d);
}

void PackedLayout::PackRow(const uint32_t* codes, uint64_t* out) const {
#ifndef NDEBUG
  const uint64_t value_mask = (uint64_t{1} << (field_bits - 1)) - 1;
#endif
  size_t j = 0;
  for (size_t w = 0; w < words_per_row; ++w) {
    uint64_t word = 0;
    const size_t in_word = std::min(num_features - j, fields_per_word);
    for (size_t f = 0; f < in_word; ++f, ++j) {
      assert(static_cast<uint64_t>(codes[j]) <= value_mask);
      word |= static_cast<uint64_t>(codes[j]) << (f * field_bits);
    }
    out[w] = word;
  }
}

uint32_t PackedLayout::UnpackCode(const uint64_t* row, size_t j) const {
  assert(j < num_features);
  const size_t w = j / fields_per_word;
  const size_t f = j % fields_per_word;
  const uint64_t value_mask = (uint64_t{1} << (field_bits - 1)) - 1;
  return static_cast<uint32_t>((row[w] >> (f * field_bits)) & value_mask);
}

size_t PackedMismatchCount(Backend backend, const PackedLayout& layout,
                           const uint64_t* a, const uint64_t* b) {
  switch (ResolveNative(backend)) {
    case Backend::kScalar:
      return MismatchScalar(layout, a, b);
    case Backend::kSwar:
      return MismatchSwar(layout, a, b);
    case Backend::kNative:
      return detail::MismatchNative(layout, a, b);
  }
  return MismatchScalar(layout, a, b);
}

size_t PackedMismatchCountBounded(Backend backend, const PackedLayout& layout,
                                  const uint64_t* a, const uint64_t* b,
                                  size_t limit) {
  switch (ResolveNative(backend)) {
    case Backend::kScalar:
      return MismatchScalarBounded(layout, a, b, limit);
    case Backend::kSwar:
      return MismatchSwarBounded(layout, a, b, limit);
    case Backend::kNative:
      return detail::MismatchNativeBounded(layout, a, b, limit);
  }
  return MismatchScalarBounded(layout, a, b, limit);
}

void CountCodeLabelPairs(Backend backend, const uint32_t* codes,
                         const uint8_t* labels, size_t n, size_t d,
                         const size_t* offsets, uint32_t* counts) {
  // Lane splitting breaks the store-to-load dependency between adjacent
  // rows hitting the same histogram cell; the lane sums are integers, so
  // any lane count gives bit-identical totals.
  const Backend effective = ResolveNative(backend);
  const size_t lanes = effective == Backend::kScalar ? 1
                       : effective == Backend::kSwar ? 2
                                                     : 4;
  const size_t total = offsets[d];
  if (lanes == 1 || d == 0 || n < lanes * 4) {
    for (size_t i = 0; i < n; ++i) {
      CountOneRow(codes + i * d, labels[i], d, offsets, counts);
    }
    return;
  }
  std::vector<uint32_t> extra((lanes - 1) * total, 0);
  size_t i = 0;
  for (; i + lanes <= n; i += lanes) {
    CountOneRow(codes + i * d, labels[i], d, offsets, counts);
    for (size_t l = 1; l < lanes; ++l) {
      CountOneRow(codes + (i + l) * d, labels[i + l], d, offsets,
                  extra.data() + (l - 1) * total);
    }
  }
  for (; i < n; ++i) {
    CountOneRow(codes + i * d, labels[i], d, offsets, counts);
  }
  for (size_t l = 1; l < lanes; ++l) {
    const uint32_t* lane = extra.data() + (l - 1) * total;
    for (size_t k = 0; k < total; ++k) counts[k] += lane[k];
  }
}

void SplitStatsScan(Backend backend, const uint32_t* codes,
                    size_t num_features, const uint8_t* labels,
                    const uint32_t* row_ids, size_t n, size_t feature,
                    uint32_t* count, uint32_t* pos_count,
                    std::vector<uint32_t>& touched) {
  // The gathers (row id -> code, label) are unrolled so several loads are
  // in flight; the stat updates stay in row order, which keeps `touched`
  // (first-seen order) and all counts identical to the scalar loop.
  const Backend effective = ResolveNative(backend);
  const size_t unroll = effective == Backend::kScalar ? 1
                        : effective == Backend::kSwar ? 2
                                                      : 4;
  const auto update = [&](uint32_t c, uint8_t label) {
    if (count[c] == 0) touched.push_back(c);
    ++count[c];
    pos_count[c] += label;
  };
  size_t i = 0;
  if (unroll > 1) {
    uint32_t c[4];
    uint8_t l[4];
    for (; i + unroll <= n; i += unroll) {
      for (size_t u = 0; u < unroll; ++u) {
        const size_t r = row_ids[i + u];
        c[u] = codes[r * num_features + feature];
        l[u] = labels[r];
      }
      for (size_t u = 0; u < unroll; ++u) update(c[u], l[u]);
    }
  }
  for (; i < n; ++i) {
    const size_t r = row_ids[i];
    update(codes[r * num_features + feature], labels[r]);
  }
}

PackedStats GlobalPackedStats() {
  PackedStats stats;
  stats.builds = g_packed_builds.load(std::memory_order_relaxed);
  stats.rows = g_packed_rows.load(std::memory_order_relaxed);
  stats.build_words = g_packed_build_words.load(std::memory_order_relaxed);
  stats.evals = g_packed_evals.load(std::memory_order_relaxed);
  stats.eval_words = g_packed_eval_words.load(std::memory_order_relaxed);
  return stats;
}

void ResetGlobalPackedStats() {
  g_packed_builds.store(0, std::memory_order_relaxed);
  g_packed_rows.store(0, std::memory_order_relaxed);
  g_packed_build_words.store(0, std::memory_order_relaxed);
  g_packed_evals.store(0, std::memory_order_relaxed);
  g_packed_eval_words.store(0, std::memory_order_relaxed);
}

void AccumulatePackedBuild(uint64_t rows, uint64_t words) {
  g_packed_builds.fetch_add(1, std::memory_order_relaxed);
  g_packed_rows.fetch_add(rows, std::memory_order_relaxed);
  g_packed_build_words.fetch_add(words, std::memory_order_relaxed);
}

void AccumulatePackedEvals(uint64_t evals, uint64_t words) {
  g_packed_evals.fetch_add(evals, std::memory_order_relaxed);
  g_packed_eval_words.fetch_add(words, std::memory_order_relaxed);
}

}  // namespace simd
}  // namespace hamlet
