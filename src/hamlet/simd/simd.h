// Runtime-dispatched vector backends for the packed-code hot loops.
//
// Every inner loop the paper's experiments live in — 1-NN Hamming
// distance, the linear/overlap SVM kernels, NB counting, tree split
// scans — is a scan over uint32_t categorical codes. Packing the codes
// into fixed-width bit fields (see PackedLayout) turns match counting
// into XOR + carry-trick + popcount over uint64_t words: 16-64 codes per
// cache line instead of one per 4 bytes. Three interchangeable backends
// implement the word-level counting:
//
//   kScalar  per-field shift/mask test; the portable reference.
//   kSwar    guard-bit carry trick + bit-twiddling popcount (any 64-bit
//            host, no intrinsics).
//   kNative  same word math with hardware popcount (x86-64 POPCNT with
//            an AVX2 block path for long rows; on aarch64 the compiler
//            lowers __builtin_popcountll to NEON cnt).
//
// All three return exactly the same integer counts for every input, so
// every downstream float computation consumes identical integers and the
// repo's bit-identical determinism contract holds across backends — the
// parity suite (tests/packed_parity_test.cc) enforces this.
//
// Selection: HAMLET_SIMD=scalar|swar|native|auto (unset/auto picks the
// best available; unknown values warn once and fall back to auto;
// "native" on hardware without popcount warns once and runs swar).
// Callers resolve ActiveBackend() once per fit/batch and pass the enum
// down; the per-pair dispatch is a branch on that enum.
//
// The word-level helpers here are layout math on raw pointers only; the
// owning container is data/packed_code_matrix.h.

#ifndef HAMLET_SIMD_SIMD_H_
#define HAMLET_SIMD_SIMD_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hamlet {
namespace simd {

enum class Backend {
  kScalar,
  kSwar,
  kNative,
};

const char* BackendName(Backend backend);

/// True when the hardware-popcount backend is usable on this host (POPCNT
/// on x86-64, always on aarch64). When false, requests for kNative run
/// the SWAR path instead.
bool NativeAvailable();

/// Backend selected by HAMLET_SIMD (warn-once grammar, see file comment).
/// Unset or "auto" resolves to kNative when available, else kSwar. Cheap
/// enough to call per fit/batch; not meant for per-pair calls.
Backend ActiveBackend();

/// Bit-field layout shared by every packed row that must be comparable.
///
/// Each code occupies a field of `field_bits` = (bits needed for the
/// largest code) + 1 bits; the extra top bit is a guard that is always
/// stored as 0. For x = a XOR b, adding (2^(field_bits-1) - 1) to every
/// field (`add_mask`) carries into the guard bit exactly when the field
/// is non-zero, and the carry cannot escape the field — so
/// popcount((x + add_mask) & guard_mask) is the mismatch count of one
/// word. Unused tail fields of the last word are zero in every row and
/// contribute no mismatches.
struct PackedLayout {
  size_t num_features = 0;
  uint32_t field_bits = 2;      ///< value bits + 1 guard bit
  size_t fields_per_word = 32;  ///< 64 / field_bits
  size_t words_per_row = 0;     ///< ceil(num_features / fields_per_word)
  uint64_t guard_mask = 0;      ///< guard bit of every field in a word
  uint64_t add_mask = 0;        ///< (2^(field_bits-1) - 1) in every field

  /// Layout wide enough for `d` features whose codes come from the given
  /// per-feature domain sizes (codes are < domain). The layout depends
  /// only on the largest domain, so matrices with equal domains share it.
  static PackedLayout ForDomains(const uint32_t* domains, size_t d);

  /// Layout wide enough for codes up to and including `max_code`.
  static PackedLayout ForMaxCode(uint32_t max_code, size_t d);

  /// Packs one row of num_features codes into out[0 .. words_per_row).
  /// Every code must fit the layout (checked via assert).
  void PackRow(const uint32_t* codes, uint64_t* out) const;

  /// Unpacks feature j from a packed row (tests and debug checks).
  uint32_t UnpackCode(const uint64_t* row, size_t j) const;

  /// Two layouts produce interchangeable packed rows iff all field
  /// parameters agree.
  bool Compatible(const PackedLayout& other) const {
    return num_features == other.num_features &&
           field_bits == other.field_bits;
  }
};

/// Number of mismatching features between two packed rows of the same
/// layout. All backends return the same count for every input.
size_t PackedMismatchCount(Backend backend, const PackedLayout& layout,
                           const uint64_t* a, const uint64_t* b);

/// Early-exit variant for 1-NN: stops scanning words once the running
/// mismatch count reaches `limit` and returns a value >= limit. For
/// results < limit the count is exact; callers must treat any returned
/// value >= limit as "not better".
size_t PackedMismatchCountBounded(Backend backend, const PackedLayout& layout,
                                  const uint64_t* a, const uint64_t* b,
                                  size_t limit);

/// Matching features between two packed rows (num_features - mismatches);
/// the quantity the linear/poly kernels consume directly.
inline size_t PackedMatchCount(Backend backend, const PackedLayout& layout,
                               const uint64_t* a, const uint64_t* b) {
  return layout.num_features -
         PackedMismatchCount(backend, layout, a, b);
}

/// NB fit counting: for every (row i, feature j) increments
/// counts[offsets[j] + codes[i*d + j] * 2 + labels[i]]. `offsets` has
/// d + 1 entries (prefix sums of 2 * domain_size); `counts` has
/// offsets[d] entries. Backends differ only in how many interleaved
/// accumulator lanes they use (1/2/4); lane sums are integers, so every
/// backend produces identical counts in any order.
void CountCodeLabelPairs(Backend backend, const uint32_t* codes,
                         const uint8_t* labels, size_t n, size_t d,
                         const size_t* offsets, uint32_t* counts);

/// Tree split scan: per-code stats of `feature` over the node's rows
/// (row_ids[0..n)). Increments count[c] / pos_count[c] and appends each
/// code to `touched` the first time it is seen (count[c] == 0 before the
/// increment), exactly like the scalar loop in DecisionTree::BuildNode.
/// Backends unroll the row loads differently but apply the updates in
/// row order, so `touched` order and all counts are identical.
void SplitStatsScan(Backend backend, const uint32_t* codes,
                    size_t num_features, const uint8_t* labels,
                    const uint32_t* row_ids, size_t n, size_t feature,
                    uint32_t* count, uint32_t* pos_count,
                    std::vector<uint32_t>& touched);

/// Process-wide packed-path counters for bench reporting, summed with
/// relaxed atomics (same pattern as GlobalKernelCacheTotals): matrix
/// builds, rows packed and the words holding them (build_words / rows =
/// average words per row), pairwise evaluations routed through a packed
/// backend, and the words those evaluations scanned (an upper bound
/// where early exit applies).
struct PackedStats {
  uint64_t builds = 0;
  uint64_t rows = 0;
  uint64_t build_words = 0;
  uint64_t evals = 0;
  uint64_t eval_words = 0;
};

/// Snapshot of the totals accumulated so far; monotone, never reset
/// implicitly. Benches scope them by subtracting two snapshots
/// (bench::PackedStatsScope).
PackedStats GlobalPackedStats();

/// Zeroes the process-wide totals (test isolation).
void ResetGlobalPackedStats();

/// Accumulates one packed-matrix build of `rows` rows / `words` words.
void AccumulatePackedBuild(uint64_t rows, uint64_t words);

/// Accumulates `evals` pairwise evaluations spanning `words` words.
void AccumulatePackedEvals(uint64_t evals, uint64_t words);

}  // namespace simd
}  // namespace hamlet

#endif  // HAMLET_SIMD_SIMD_H_
