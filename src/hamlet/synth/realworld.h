// Simulators for the paper's seven real-world datasets (Table 1).
//
// The original data (Kaggle / GroupLens / last.fm / openflights /
// BookCrossing) is not available offline, so each dataset is replaced by a
// star-schema generator that reproduces the properties the paper's analysis
// depends on:
//   * the schema shape: q, d_S, d_R per dimension (Table 1),
//   * the per-dimension tuple ratio n_S / n_R (the paper's key statistic),
//   * a planted "true" distribution whose signal placement recreates each
//     dataset's qualitative behaviour in Tables 2-6 (e.g. Yelp's users
//     table with tuple ratio 2.5 is the one join that is NOT safe to
//     avoid; LastFM/Flights/Books lose accuracy under NoFK because part of
//     the signal is per-RID and only the FK carries it).
//
// n_S is scaled down (default ~6000 labeled rows vs. the paper's 10^5-10^6)
// so that all ten classifiers with grid search finish in minutes; tuple
// ratios are preserved under scaling. See DESIGN.md §2 and EXPERIMENTS.md.

#ifndef HAMLET_SYNTH_REALWORLD_H_
#define HAMLET_SYNTH_REALWORLD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "hamlet/relational/join.h"
#include "hamlet/relational/star_schema.h"

namespace hamlet {
namespace synth {

/// Signal/shape parameters for one dimension table of a simulated dataset.
struct DimSpec {
  std::string name;
  size_t nr = 0;  ///< dimension cardinality |D_FK|
  size_t dr = 0;  ///< number of foreign features
  /// Weight of the signal carried by the foreign features X_R (recoverable
  /// by JoinAll and NoFK; recoverable by NoJoin only through FK).
  double xr_weight = 0.0;
  /// Weight of the per-RID idiosyncratic signal (carried by FK but NOT by
  /// X_R; this is what makes NoFK lose accuracy).
  double rid_weight = 0.0;
  /// FK column has an open domain (Expedia's search id): it is excluded
  /// from the joined feature set, but its foreign features are joined in.
  bool open_domain_fk = false;
  /// Zipf exponent for the FK popularity distribution (0 = uniform).
  double fk_zipf = 0.0;
  /// When > 0, dimension rows are copies of this many distinct X_R
  /// prototype patterns. Real dimension tables repeat attribute patterns
  /// heavily; without this, a small table with many columns has unique
  /// X_R rows and X_R would identify the RID, letting NoFK recover
  /// per-RID signal it should not see. 0 = fully random rows.
  size_t xr_prototypes = 0;
};

/// Full generator spec for one simulated dataset.
struct RealWorldSpec {
  std::string name;
  size_t ns = 0;  ///< labeled fact rows
  size_t ds = 0;  ///< home features
  /// Weight of the home-feature signal.
  double home_weight = 0.0;
  /// Logistic sharpness for P(Y=1 | score); smaller = noisier labels.
  double beta = 1.0;
  std::vector<DimSpec> dims;
  uint64_t seed = 7;
};

/// Samples a star schema from the spec's planted distribution.
StarSchema GenerateRealWorld(const RealWorldSpec& spec);

/// Join options matching the spec (excludes open-domain FKs).
JoinOptions RealWorldJoinOptions(const RealWorldSpec& spec);

/// The seven dataset specs in paper order: Expedia, Movies, Yelp, Walmart,
/// LastFM, Books, Flights. `scale` multiplies n_S (and n_R with it, fixed
/// tuple ratio); scale = 1.0 gives the quick default of ~6000 fact rows.
std::vector<RealWorldSpec> AllRealWorldSpecs(double scale = 1.0);

/// Lookup by (case-insensitive) dataset name.
Result<RealWorldSpec> RealWorldSpecByName(const std::string& name,
                                          double scale = 1.0);

}  // namespace synth
}  // namespace hamlet

#endif  // HAMLET_SYNTH_REALWORLD_H_
