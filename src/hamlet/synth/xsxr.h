// Scenario XSXR generator (paper §4.2).
//
// A noise-free "true probability table" (TPT) over all [X_S, X_R]
// combinations determines Y deterministically (H(Y|X) = 0). The dimension
// table is sampled from the marginal P(X_R); fact rows then pick an FK
// uniformly among the RIDs whose X_R matches the example (an implicit
// join), so the FD FK -> X_R holds by construction.

#ifndef HAMLET_SYNTH_XSXR_H_
#define HAMLET_SYNTH_XSXR_H_

#include <cstdint>

#include "hamlet/relational/star_schema.h"

namespace hamlet {
namespace synth {

/// Parameters for Scenario XSXR. All features are boolean, as in the paper.
/// Defaults follow Figure 6's fixed values.
struct XsxrConfig {
  size_t ns = 1000;   ///< labeled fact rows
  size_t nr = 40;     ///< dimension cardinality |D_FK|
  size_t ds = 4;      ///< home features
  size_t dr = 4;      ///< foreign features
  /// Fact-row sampling seed (vary per Monte-Carlo run).
  uint64_t seed = 1;
  /// Seeds the TPT, the deterministic Y assignment, and the dimension
  /// sample — the whole "true distribution". Fixed across runs.
  uint64_t dim_seed = 42;
};

/// Samples one star schema from the XSXR distribution.
StarSchema GenerateXsxr(const XsxrConfig& config);

}  // namespace synth
}  // namespace hamlet

#endif  // HAMLET_SYNTH_XSXR_H_
