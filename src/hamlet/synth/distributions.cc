#include "hamlet/synth/distributions.h"

#include <cassert>
#include <cmath>
#include <deque>

namespace hamlet {
namespace synth {

Discrete::Discrete(const std::vector<double>& weights) {
  const size_t n = weights.size();
  assert(n > 0);
  double total = 0.0;
  for (double w : weights) {
    assert(w >= 0.0);
    total += w;
  }
  assert(total > 0.0);

  normalized_.resize(n);
  for (size_t i = 0; i < n; ++i) normalized_[i] = weights[i] / total;

  // Vose's alias method.
  prob_.assign(n, 0.0);
  alias_.assign(n, 0);
  std::deque<size_t> small, large;
  std::vector<double> scaled(n);
  for (size_t i = 0; i < n; ++i) {
    scaled[i] = normalized_[i] * static_cast<double>(n);
    (scaled[i] < 1.0 ? small : large).push_back(i);
  }
  while (!small.empty() && !large.empty()) {
    const size_t s = small.front();
    small.pop_front();
    const size_t l = large.front();
    large.pop_front();
    prob_[s] = scaled[s];
    alias_[s] = static_cast<uint32_t>(l);
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  while (!large.empty()) {
    prob_[large.front()] = 1.0;
    large.pop_front();
  }
  while (!small.empty()) {
    prob_[small.front()] = 1.0;
    small.pop_front();
  }
}

uint32_t Discrete::Sample(Rng& rng) const {
  const size_t i = static_cast<size_t>(rng.UniformInt(prob_.size()));
  return rng.UniformDouble() < prob_[i] ? static_cast<uint32_t>(i)
                                        : alias_[i];
}

Discrete MakeUniform(size_t n) {
  return Discrete(std::vector<double>(n, 1.0));
}

Discrete MakeZipf(size_t n, double s) {
  std::vector<double> w(n);
  for (size_t i = 0; i < n; ++i) {
    w[i] = 1.0 / std::pow(static_cast<double>(i + 1), s);
  }
  return Discrete(w);
}

Discrete MakeNeedleAndThread(size_t n, double needle_mass) {
  assert(needle_mass >= 0.0 && needle_mass <= 1.0);
  assert(n >= 2 || needle_mass == 1.0);
  std::vector<double> w(n, 0.0);
  w[0] = needle_mass;
  if (n > 1) {
    const double rest = (1.0 - needle_mass) / static_cast<double>(n - 1);
    for (size_t i = 1; i < n; ++i) w[i] = rest;
  }
  return Discrete(w);
}

}  // namespace synth
}  // namespace hamlet
