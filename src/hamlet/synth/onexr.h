// Scenario OneXr generator (paper §4.1).
//
// Two-table star schema where a single foreign feature Xr in X_R
// (probabilistically) determines the target: P(Y=0|Xr=0) = P(Y=1|Xr=1) = p.
// All other features in X_R and all of X_S are random noise, but FK is not
// noise because it functionally determines Xr. This is the known worst case
// for avoiding the join with linear models. FK values may be drawn
// uniformly, with Zipfian skew, or with needle-and-thread skew, and some FK
// values can be withheld from training (γ, for the smoothing study §6.2).

#ifndef HAMLET_SYNTH_ONEXR_H_
#define HAMLET_SYNTH_ONEXR_H_

#include <cstdint>

#include "hamlet/relational/star_schema.h"

namespace hamlet {
namespace synth {

/// FK sampling skew model for OneXr.
enum class FkSkew {
  kUniform,
  kZipf,            ///< P(FK=i) ~ 1/(i+1)^s, s = skew_param
  kNeedleThread,    ///< P(FK=0) = skew_param, rest uniform
};

/// Parameters for Scenario OneXr. Defaults follow Figure 2's fixed values:
/// (n_S, n_R, d_S, d_R) = (1000, 40, 4, 4), p = 0.1.
struct OneXrConfig {
  size_t ns = 1000;         ///< number of labeled fact rows
  size_t nr = 40;           ///< |D_FK| = dimension cardinality
  size_t ds = 4;            ///< number of home features X_S
  size_t dr = 4;            ///< number of foreign features X_R (incl. Xr)
  uint32_t xr_domain = 2;   ///< |D_Xr| (Figure 2(F) varies this)
  uint32_t noise_domain = 2;///< domain of the noise features
  double p = 0.1;           ///< P(Y=0|Xr=0) = P(Y=1|Xr=1); Bayes err=min(p,1-p)
  FkSkew skew = FkSkew::kUniform;
  double skew_param = 0.0;
  /// Seeds the fact-row sampling. Vary this per Monte-Carlo run.
  uint64_t seed = 1;
  /// Seeds the dimension-table content (the FK -> Xr mapping). The
  /// dimension table is part of the "true distribution": the paper's
  /// simulation draws 100 *training sets* from one distribution, so R must
  /// stay fixed across runs while `seed` varies.
  uint64_t dim_seed = 42;
};

/// Samples one star schema from the OneXr distribution. Xr is the first
/// column of the dimension table ("r.xr"); noise columns follow.
StarSchema GenerateOneXr(const OneXrConfig& config);

/// The scenario's irreducible (Bayes) error, min(p, 1-p).
double OneXrBayesError(const OneXrConfig& config);

}  // namespace synth
}  // namespace hamlet

#endif  // HAMLET_SYNTH_ONEXR_H_
