// Sampling distributions used by the data generators.
//
// Covers the paper's foreign-key skew models (§4.1 "Foreign Key Skew"):
// uniform, Zipfian (parameterised by the exponent), and needle-and-thread
// (one "needle" value takes probability mass p; the rest is spread
// uniformly over the remaining "thread" values).

#ifndef HAMLET_SYNTH_DISTRIBUTIONS_H_
#define HAMLET_SYNTH_DISTRIBUTIONS_H_

#include <cstdint>
#include <vector>

#include "hamlet/common/rng.h"

namespace hamlet {
namespace synth {

/// Discrete distribution over {0..n-1} with O(1) sampling via the alias
/// method (built once, sampled n_S times by the generators).
class Discrete {
 public:
  /// `weights` are unnormalised and non-negative, with a positive sum.
  explicit Discrete(const std::vector<double>& weights);

  size_t size() const { return prob_.size(); }
  uint32_t Sample(Rng& rng) const;

  /// Normalised probability of value i (for tests).
  double probability(size_t i) const { return normalized_[i]; }

 private:
  std::vector<double> prob_;       // alias-method cell probability
  std::vector<uint32_t> alias_;
  std::vector<double> normalized_;
};

/// Uniform over {0..n-1}.
Discrete MakeUniform(size_t n);

/// Zipfian: P(i) proportional to 1/(i+1)^s. s = 0 degenerates to uniform.
Discrete MakeZipf(size_t n, double s);

/// Needle-and-thread: P(0) = needle_mass, remaining mass uniform over the
/// other n-1 values. Requires n >= 2 unless needle_mass == 1.
Discrete MakeNeedleAndThread(size_t n, double needle_mass);

}  // namespace synth
}  // namespace hamlet

#endif  // HAMLET_SYNTH_DISTRIBUTIONS_H_
