#include "hamlet/synth/reponexr.h"

#include <cassert>
#include <string>

#include "hamlet/common/rng.h"

namespace hamlet {
namespace synth {

StarSchema GenerateRepOneXr(const RepOneXrConfig& cfg) {
  assert(cfg.dr >= 1);
  Rng rng(cfg.seed);

  // Dimension: dr replicas of Xr per row; content seeded independently of
  // the fact rows (fixed "true distribution" across Monte-Carlo runs).
  Rng dim_rng(cfg.dim_seed);
  TableSchema dim_schema;
  for (size_t j = 0; j < cfg.dr; ++j) {
    (void)dim_schema.AddColumn(
        ColumnSpec{"xr_rep" + std::to_string(j), cfg.xr_domain});
  }
  Table dim(dim_schema);
  dim.Reserve(cfg.nr);
  std::vector<uint32_t> dim_row(cfg.dr);
  for (size_t r = 0; r < cfg.nr; ++r) {
    const uint32_t xr =
        static_cast<uint32_t>(dim_rng.UniformInt(cfg.xr_domain));
    for (size_t j = 0; j < cfg.dr; ++j) dim_row[j] = xr;
    dim.AppendRowUnchecked(dim_row);
  }

  TableSchema fact_schema;
  for (size_t j = 0; j < cfg.ds; ++j) {
    (void)fact_schema.AddColumn(
        ColumnSpec{"xs" + std::to_string(j), cfg.noise_domain});
  }
  StarSchema star{Table(fact_schema)};
  star.AddDimension("r", std::move(dim));
  star.ReserveFacts(cfg.ns);

  std::vector<uint32_t> home(cfg.ds);
  std::vector<uint32_t> fks(1);
  for (size_t i = 0; i < cfg.ns; ++i) {
    for (size_t j = 0; j < cfg.ds; ++j) {
      home[j] = static_cast<uint32_t>(rng.UniformInt(cfg.noise_domain));
    }
    const uint32_t fk = static_cast<uint32_t>(rng.UniformInt(cfg.nr));
    fks[0] = fk;
    const uint32_t xr = star.dimension(0).table.at(fk, 0);
    const uint8_t agree = static_cast<uint8_t>(xr % 2);
    const uint8_t label =
        rng.Bernoulli(cfg.p) ? agree : static_cast<uint8_t>(1 - agree);
    Status st = star.AppendFact(home, fks, label);
    assert(st.ok());
    (void)st;
  }
  return star;
}

}  // namespace synth
}  // namespace hamlet
