// Scenario RepOneXr generator (paper §4.3).
//
// Like OneXr, a lone feature Xr determines Y — but every column of X_R is a
// replica of Xr. The FD FK -> X_R then guarantees at least as many distinct
// FK values as Xr values; raising |D_FK| relative to |D_Xr| raises the
// chance of a NoJoin model getting "confused", which is exactly the stress
// the paper applies in Figures 7-9.

#ifndef HAMLET_SYNTH_REPONEXR_H_
#define HAMLET_SYNTH_REPONEXR_H_

#include <cstdint>

#include "hamlet/relational/star_schema.h"

namespace hamlet {
namespace synth {

/// Parameters for Scenario RepOneXr. Defaults follow Figure 7(A).
struct RepOneXrConfig {
  size_t ns = 1000;
  size_t nr = 40;
  size_t ds = 4;
  size_t dr = 4;            ///< all dr columns replicate Xr
  uint32_t xr_domain = 2;
  uint32_t noise_domain = 2;
  double p = 0.1;           ///< same label noise convention as OneXr
  /// Fact-row sampling seed (vary per Monte-Carlo run).
  uint64_t seed = 1;
  /// Dimension-content seed (fixed across runs; see OneXrConfig::dim_seed).
  uint64_t dim_seed = 42;
};

/// Samples one star schema from the RepOneXr distribution.
StarSchema GenerateRepOneXr(const RepOneXrConfig& config);

}  // namespace synth
}  // namespace hamlet

#endif  // HAMLET_SYNTH_REPONEXR_H_
