#include "hamlet/synth/realworld.h"

#include <algorithm>
#include <cassert>
#include <cctype>
#include <cmath>

#include "hamlet/common/rng.h"
#include "hamlet/synth/distributions.h"

namespace hamlet {
namespace synth {

namespace {

/// Mixed categorical domain sizes, deterministic per column index. Real
/// schemas mix binary flags with wider categories; cycling a fixed palette
/// reproduces that without per-dataset hand-tuning.
uint32_t DomainFor(size_t column_index) {
  static constexpr uint32_t kPalette[] = {2, 3, 4, 6, 8, 5, 2, 12};
  return kPalette[column_index % (sizeof(kPalette) / sizeof(kPalette[0]))];
}

/// Per-code ±1 sign table over a single column's domain. The planted
/// signal must have *marginal* split gain (greedy CART cannot discover a
/// pure interaction like hash(x0, x1) — its first split would see zero
/// gain), so each signal reads one column through a random sign lookup.
/// Codes 0 and 1 are forced to opposite signs so small domains never
/// degenerate to a constant.
std::vector<double> MakeSignTable(uint32_t domain, uint64_t salt) {
  std::vector<double> signs(domain);
  uint64_t state = salt;
  for (uint32_t c = 0; c < domain; ++c) {
    signs[c] = (SplitMix64(state) & 1) ? 1.0 : -1.0;
  }
  if (domain >= 2) {
    signs[0] = 1.0;
    signs[1] = -1.0;
  }
  return signs;
}

double Sigmoid(double z) { return 1.0 / (1.0 + std::exp(-z)); }

}  // namespace

StarSchema GenerateRealWorld(const RealWorldSpec& spec) {
  Rng rng(spec.seed);

  // --- Dimension tables, their per-RID signals, FK distributions. ---
  std::vector<Table> dim_tables;
  std::vector<std::vector<double>> xr_signal;   // g_i(rid), from X_R content
  std::vector<std::vector<double>> rid_signal;  // u_i(rid), FK-only signal
  std::vector<Discrete> fk_dists;
  for (size_t i = 0; i < spec.dims.size(); ++i) {
    const DimSpec& d = spec.dims[i];
    assert(d.nr >= 1);
    Rng dim_rng = rng.Fork(1000 + i);

    TableSchema schema;
    for (size_t c = 0; c < d.dr; ++c) {
      (void)schema.AddColumn(
          ColumnSpec{"x" + std::to_string(c), DomainFor(c)});
    }
    Table table(schema);
    table.Reserve(d.nr);
    // X_R signal reads the first foreign column through a sign lookup
    // (marginally learnable); per-RID signal is an independent coin so
    // only FK carries it.
    const std::vector<double> signs =
        MakeSignTable(DomainFor(0), spec.seed ^ (0xabcd + i));
    // Optional prototype pool (see DimSpec::xr_prototypes).
    std::vector<std::vector<uint32_t>> prototypes;
    for (size_t pr = 0; pr < d.xr_prototypes; ++pr) {
      std::vector<uint32_t> proto(d.dr);
      for (size_t c = 0; c < d.dr; ++c) {
        proto[c] = static_cast<uint32_t>(dim_rng.UniformInt(DomainFor(c)));
      }
      prototypes.push_back(std::move(proto));
    }
    std::vector<double> g(d.nr), u(d.nr);
    std::vector<uint32_t> row(d.dr);
    for (size_t r = 0; r < d.nr; ++r) {
      if (prototypes.empty()) {
        for (size_t c = 0; c < d.dr; ++c) {
          row[c] =
              static_cast<uint32_t>(dim_rng.UniformInt(DomainFor(c)));
        }
      } else {
        row = prototypes[dim_rng.UniformInt(prototypes.size())];
      }
      table.AppendRowUnchecked(row);
      g[r] = d.dr > 0 ? signs[row[0]] : 0.0;
      u[r] = dim_rng.Bernoulli(0.5) ? 1.0 : -1.0;
    }
    dim_tables.push_back(std::move(table));
    xr_signal.push_back(std::move(g));
    rid_signal.push_back(std::move(u));
    fk_dists.push_back(d.fk_zipf > 0.0 ? MakeZipf(d.nr, d.fk_zipf)
                                       : MakeUniform(d.nr));
  }

  // --- Fact table schema. ---
  TableSchema fact_schema;
  for (size_t c = 0; c < spec.ds; ++c) {
    (void)fact_schema.AddColumn(
        ColumnSpec{"xs" + std::to_string(c), DomainFor(c)});
  }
  StarSchema star{Table(fact_schema)};
  for (size_t i = 0; i < spec.dims.size(); ++i) {
    star.AddDimension(spec.dims[i].name, std::move(dim_tables[i]));
  }
  star.ReserveFacts(spec.ns);

  // --- Sample facts; label via logistic over the planted score. ---
  const std::vector<double> home_signs =
      MakeSignTable(DomainFor(0), spec.seed ^ 0x5151);
  std::vector<uint32_t> home(spec.ds);
  std::vector<uint32_t> fks(spec.dims.size());
  Rng fact_rng = rng.Fork(77);
  for (size_t n = 0; n < spec.ns; ++n) {
    double score = 0.0;
    for (size_t c = 0; c < spec.ds; ++c) {
      home[c] = static_cast<uint32_t>(fact_rng.UniformInt(DomainFor(c)));
    }
    if (spec.ds > 0 && spec.home_weight != 0.0) {
      score += spec.home_weight * home_signs[home[0]];
    }
    for (size_t i = 0; i < spec.dims.size(); ++i) {
      const uint32_t rid = fk_dists[i].Sample(fact_rng);
      fks[i] = rid;
      score += spec.dims[i].xr_weight * xr_signal[i][rid];
      score += spec.dims[i].rid_weight * rid_signal[i][rid];
    }
    const uint8_t label =
        fact_rng.Bernoulli(Sigmoid(spec.beta * score)) ? 1 : 0;
    Status st = star.AppendFact(home, fks, label);
    assert(st.ok());
    (void)st;
  }
  return star;
}

JoinOptions RealWorldJoinOptions(const RealWorldSpec& spec) {
  JoinOptions opts;
  for (size_t i = 0; i < spec.dims.size(); ++i) {
    if (spec.dims[i].open_domain_fk) opts.open_domain_fks.push_back(i);
  }
  return opts;
}

std::vector<RealWorldSpec> AllRealWorldSpecs(double scale) {
  // Base n_S ~ 6000 labeled rows at scale 1. n_R per dimension is derived
  // from the paper's Table 1 tuple ratios (which are computed against the
  // 50% training split: ratio = 0.5 * n_S / n_R).
  auto nr_for = [](size_t ns, double table1_ratio) -> size_t {
    return std::max<size_t>(
        2, static_cast<size_t>(0.5 * static_cast<double>(ns) / table1_ratio));
  };

  std::vector<RealWorldSpec> specs;
  const auto S = [&](double base) {
    return static_cast<size_t>(base * scale);
  };

  // Expedia: hotels table joinable (TR 39.5); search-events table has an
  // open-domain FK (never usable as a feature). Signal: hotels X_R plus a
  // modest per-hotel effect; searches contribute X_R signal only.
  {
    RealWorldSpec s;
    s.name = "Expedia";
    s.ns = S(6000);
    s.ds = 1;
    s.home_weight = 0.3;
    s.beta = 1.6;
    s.dims = {
        DimSpec{"hotels", nr_for(s.ns, 39.5), 8, 0.7, 0.6, false, 0.7, 10},
        DimSpec{"searches", nr_for(s.ns, 10.0), 14, 0.5, 0.0, true, 0.0},
    };
    s.seed = 101;
    specs.push_back(std::move(s));
  }
  // Movies: users (TR 82.8) and movies (TR 135); both high tuple ratio, so
  // every join is safe. Per-RID taste effects make NoFK lose ~2%.
  {
    RealWorldSpec s;
    s.name = "Movies";
    s.ns = S(6000);
    s.ds = 0;
    s.home_weight = 0.0;
    s.beta = 2.2;
    s.dims = {
        DimSpec{"users", nr_for(s.ns, 82.8), 4, 0.5, 0.8, false, 0.5, 8},
        DimSpec{"movies", nr_for(s.ns, 135.0), 21, 0.6, 0.7, false, 0.8, 16},
    };
    s.seed = 102;
    specs.push_back(std::move(s));
  }
  // Yelp: businesses (TR 9.4) and users (TR 2.5). The users join is the one
  // join in the study that is NOT safe to avoid: its signal lives in X_R
  // and 2.5 training examples per FK value are too few for FK to act as a
  // representative. No per-RID signal, so NoFK actually wins here.
  {
    RealWorldSpec s;
    s.name = "Yelp";
    s.ns = S(6000);
    s.ds = 0;
    s.home_weight = 0.0;
    s.beta = 2.0;
    s.dims = {
        DimSpec{"businesses", nr_for(s.ns, 9.4), 32, 0.8, 0.0, false, 0.4},
        DimSpec{"users", nr_for(s.ns, 2.5), 6, 0.7, 0.0, false, 0.0},
    };
    s.seed = 103;
    specs.push_back(std::move(s));
  }
  // Walmart: stores/indicators (TR 90.1) and the tiny 45-row table (Table 1
  // lists TR 4684; we keep n_R = 45, so the scaled ratio stays enormous and
  // safe). Strong clean signal -> the paper's ~0.93 accuracy band.
  {
    RealWorldSpec s;
    s.name = "Walmart";
    s.ns = S(6000);
    s.ds = 1;
    s.home_weight = 0.5;
    s.beta = 3.4;
    s.dims = {
        DimSpec{"indicators", nr_for(s.ns, 90.1), 9, 0.9, 0.15, false, 0.0},
        DimSpec{"stores", 45, 2, 0.9, 0.0, false, 0.3},
    };
    s.seed = 104;
    specs.push_back(std::move(s));
  }
  // LastFM: users (TR 42) and artists (TR 3.5). Dominant per-user/artist
  // idiosyncratic signal: NoFK collapses (paper: 0.82 -> 0.69) while NoJoin
  // is safe even at TR 3.5.
  {
    RealWorldSpec s;
    s.name = "LastFM";
    s.ns = S(6000);
    s.ds = 0;
    s.home_weight = 0.0;
    s.beta = 2.0;
    s.dims = {
        DimSpec{"users", nr_for(s.ns, 42.0), 7, 0.2, 1.4, false, 0.6, 8},
        DimSpec{"artists", nr_for(s.ns, 3.5), 4, 0.15, 0.7, false, 0.9, 8},
    };
    s.seed = 105;
    specs.push_back(std::move(s));
  }
  // Books: readers (TR 4.6) and books (TR 2.6). Noisy domain (paper
  // accuracy ~0.64); despite the 2.6 ratio, X_R signal is weak, so NoJoin
  // does not lose — the paper's example of the tuple ratio being a
  // conservative indicator.
  {
    RealWorldSpec s;
    s.name = "Books";
    s.ns = S(6000);
    s.ds = 0;
    s.home_weight = 0.0;
    s.beta = 0.75;
    s.dims = {
        DimSpec{"readers", nr_for(s.ns, 4.6), 2, 0.2, 0.8, false, 0.5, 4},
        DimSpec{"books", nr_for(s.ns, 2.6), 4, 0.15, 0.7, false, 0.7, 6},
    };
    s.seed = 106;
    specs.push_back(std::move(s));
  }
  // Flights: airlines (TR 61.6), source (TR 10.5) and destination (TR 10.5)
  // airports; 20 informative home features. Strong per-airline codeshare
  // effect: NoFK loses ~5%.
  {
    RealWorldSpec s;
    s.name = "Flights";
    s.ns = S(6000);
    s.ds = 20;
    s.home_weight = 0.8;
    s.beta = 2.4;
    s.dims = {
        DimSpec{"airlines", nr_for(s.ns, 61.6), 5, 0.4, 1.4, false, 0.8, 6},
        DimSpec{"src_airports", nr_for(s.ns, 10.5), 6, 0.5, 0.15, false, 0.6},
        DimSpec{"dst_airports", nr_for(s.ns, 10.5), 6, 0.5, 0.15, false, 0.6},
    };
    s.seed = 107;
    specs.push_back(std::move(s));
  }
  return specs;
}

Result<RealWorldSpec> RealWorldSpecByName(const std::string& name,
                                          double scale) {
  auto lower = [](std::string s) {
    std::transform(s.begin(), s.end(), s.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    return s;
  };
  const std::string want = lower(name);
  for (auto& spec : AllRealWorldSpecs(scale)) {
    if (lower(spec.name) == want) return spec;
  }
  return Status::NotFound("no simulated dataset named '" + name + "'");
}

}  // namespace synth
}  // namespace hamlet
