#include "hamlet/synth/xsxr.h"

#include <cassert>
#include <string>
#include <unordered_map>
#include <vector>

#include "hamlet/common/rng.h"
#include "hamlet/synth/distributions.h"

namespace hamlet {
namespace synth {

namespace {

/// Unpacks bit i of `mask` (TPT entries index [X_S, X_R] as bit vectors).
inline uint32_t Bit(uint64_t mask, size_t i) {
  return static_cast<uint32_t>((mask >> i) & 1u);
}

}  // namespace

StarSchema GenerateXsxr(const XsxrConfig& cfg) {
  assert(cfg.ds + cfg.dr <= 24 && "TPT is dense; ds+dr must stay small");
  // dim_rng drives everything that defines the true distribution (TPT, Y
  // table, dimension sample); rng drives only the per-run fact sampling.
  Rng dim_rng(cfg.dim_seed);
  Rng rng(cfg.seed);

  const size_t total_bits = cfg.ds + cfg.dr;
  const size_t tpt_size = size_t{1} << total_bits;
  const size_t xr_size = size_t{1} << cfg.dr;

  // Step 1: random TPT over [X_S, X_R]. Layout: low ds bits = X_S, next dr
  // bits = X_R.
  std::vector<double> tpt(tpt_size);
  for (auto& v : tpt) v = dim_rng.UniformDouble();

  // Step 2: deterministic Y per TPT entry (H(Y|X) = 0).
  std::vector<uint8_t> y_of(tpt_size);
  for (auto& y : y_of) y = static_cast<uint8_t>(dim_rng.UniformInt(2));

  // Step 3: marginalise to P(X_R) and sample n_R dimension rows.
  std::vector<double> xr_marginal(xr_size, 0.0);
  for (size_t e = 0; e < tpt_size; ++e) {
    xr_marginal[e >> cfg.ds] += tpt[e];
  }
  Discrete xr_dist(xr_marginal);

  TableSchema dim_schema;
  for (size_t j = 0; j < cfg.dr; ++j) {
    (void)dim_schema.AddColumn(ColumnSpec{"xr" + std::to_string(j), 2});
  }
  Table dim(dim_schema);
  dim.Reserve(cfg.nr);
  // RIDs grouped by their X_R pattern for the implicit join in step 6.
  std::unordered_map<uint64_t, std::vector<uint32_t>> rids_of_xr;
  std::vector<uint32_t> dim_row(cfg.dr);
  for (size_t r = 0; r < cfg.nr; ++r) {
    const uint64_t xr_mask = xr_dist.Sample(dim_rng);
    for (size_t j = 0; j < cfg.dr; ++j) dim_row[j] = Bit(xr_mask, j);
    dim.AppendRowUnchecked(dim_row);
    rids_of_xr[xr_mask].push_back(static_cast<uint32_t>(r));
  }

  // Step 4-5: zero out TPT entries whose X_R never made it into R, then
  // renormalise (Discrete renormalises internally) and sample fact rows.
  std::vector<double> fact_weights(tpt_size, 0.0);
  double remaining = 0.0;
  for (size_t e = 0; e < tpt_size; ++e) {
    if (rids_of_xr.count(e >> cfg.ds) > 0) {
      fact_weights[e] = tpt[e];
      remaining += tpt[e];
    }
  }
  assert(remaining > 0.0 && "every X_R pattern missed the dimension sample");
  Discrete fact_dist(fact_weights);

  TableSchema fact_schema;
  for (size_t j = 0; j < cfg.ds; ++j) {
    (void)fact_schema.AddColumn(ColumnSpec{"xs" + std::to_string(j), 2});
  }
  StarSchema star{Table(fact_schema)};
  star.AddDimension("r", std::move(dim));
  star.ReserveFacts(cfg.ns);

  // Step 6: FK chosen uniformly among RIDs matching the example's X_R.
  std::vector<uint32_t> home(cfg.ds);
  std::vector<uint32_t> fks(1);
  for (size_t i = 0; i < cfg.ns; ++i) {
    const uint64_t entry = fact_dist.Sample(rng);
    for (size_t j = 0; j < cfg.ds; ++j) home[j] = Bit(entry, j);
    const auto& rids = rids_of_xr.at(entry >> cfg.ds);
    fks[0] = rids[rng.UniformInt(rids.size())];
    Status st = star.AppendFact(home, fks, y_of[entry]);
    assert(st.ok());
    (void)st;
  }
  return star;
}

}  // namespace synth
}  // namespace hamlet
