#include "hamlet/synth/onexr.h"

#include <algorithm>
#include <cassert>
#include <string>

#include "hamlet/common/rng.h"
#include "hamlet/synth/distributions.h"

namespace hamlet {
namespace synth {

namespace {

/// Builds the dimension table: Xr first, then dr-1 noise features.
Table MakeDimension(const OneXrConfig& cfg, Rng& rng) {
  TableSchema schema;
  assert(cfg.dr >= 1);
  (void)schema.AddColumn(ColumnSpec{"xr", cfg.xr_domain});
  for (size_t j = 1; j < cfg.dr; ++j) {
    (void)schema.AddColumn(
        ColumnSpec{"noise" + std::to_string(j), cfg.noise_domain});
  }
  Table dim(schema);
  dim.Reserve(cfg.nr);
  std::vector<uint32_t> row(cfg.dr);
  for (size_t r = 0; r < cfg.nr; ++r) {
    row[0] = static_cast<uint32_t>(rng.UniformInt(cfg.xr_domain));
    for (size_t j = 1; j < cfg.dr; ++j) {
      row[j] = static_cast<uint32_t>(rng.UniformInt(cfg.noise_domain));
    }
    dim.AppendRowUnchecked(row);
  }
  return dim;
}

Discrete MakeFkDistribution(const OneXrConfig& cfg) {
  switch (cfg.skew) {
    case FkSkew::kUniform:
      return MakeUniform(cfg.nr);
    case FkSkew::kZipf:
      return MakeZipf(cfg.nr, cfg.skew_param);
    case FkSkew::kNeedleThread:
      return MakeNeedleAndThread(cfg.nr, cfg.skew_param);
  }
  return MakeUniform(cfg.nr);
}

}  // namespace

StarSchema GenerateOneXr(const OneXrConfig& cfg) {
  Rng rng(cfg.seed);

  // Step 1: dimension table with random X_R (Xr = column 0). Seeded
  // independently of the fact rows so Monte-Carlo runs share one
  // distribution (see OneXrConfig::dim_seed).
  Rng dim_rng(cfg.dim_seed);
  Table dim = MakeDimension(cfg, dim_rng);

  // Fact-table schema: ds noise home features.
  TableSchema fact_schema;
  for (size_t j = 0; j < cfg.ds; ++j) {
    (void)fact_schema.AddColumn(
        ColumnSpec{"xs" + std::to_string(j), cfg.noise_domain});
  }
  StarSchema star{Table(fact_schema)};
  const Table& dim_ref = dim;
  star.AddDimension("r", std::move(dim));
  star.ReserveFacts(cfg.ns);

  // Steps 2-4: sample facts; Y depends on Xr via the implicit join.
  const Discrete fk_dist = MakeFkDistribution(cfg);
  std::vector<uint32_t> home(cfg.ds);
  std::vector<uint32_t> fks(1);
  for (size_t r = 0; r < cfg.ns; ++r) {
    for (size_t j = 0; j < cfg.ds; ++j) {
      home[j] = static_cast<uint32_t>(rng.UniformInt(cfg.noise_domain));
    }
    const uint32_t fk = fk_dist.Sample(rng);
    fks[0] = fk;
    const uint32_t xr = star.dimension(0).table.at(fk, 0);
    // P(Y=1|Xr=1)=p and P(Y=0|Xr=0)=p generalised to |D_Xr|>2: Y agrees
    // with (xr mod 2) with probability 1-p.
    const uint8_t agree = static_cast<uint8_t>(xr % 2);
    const uint8_t label =
        rng.Bernoulli(cfg.p) ? agree : static_cast<uint8_t>(1 - agree);
    Status st = star.AppendFact(home, fks, label);
    assert(st.ok());
    (void)st;
  }
  (void)dim_ref;
  return star;
}

double OneXrBayesError(const OneXrConfig& cfg) {
  return std::min(cfg.p, 1.0 - cfg.p);
}

}  // namespace synth
}  // namespace hamlet
