#include "hamlet/data/view.h"

#include <cassert>
#include <numeric>

namespace hamlet {

DataView::DataView(const Dataset* data) : data_(data) {
  rows_.resize(data->num_rows());
  std::iota(rows_.begin(), rows_.end(), 0u);
  features_.resize(data->num_features());
  std::iota(features_.begin(), features_.end(), 0u);
}

DataView::DataView(const Dataset* data, std::vector<uint32_t> rows,
                   std::vector<uint32_t> features)
    : data_(data), rows_(std::move(rows)), features_(std::move(features)) {
#ifndef NDEBUG
  for (uint32_t r : rows_) assert(r < data_->num_rows());
  for (uint32_t f : features_) assert(f < data_->num_features());
#endif
}

DataView DataView::SelectRows(const std::vector<uint32_t>& view_rows) const {
  std::vector<uint32_t> rows;
  rows.reserve(view_rows.size());
  for (uint32_t i : view_rows) {
    assert(i < rows_.size());
    rows.push_back(rows_[i]);
  }
  return DataView(data_, std::move(rows), features_);
}

DataView DataView::WithFeatures(std::vector<uint32_t> feature_ids) const {
  return DataView(data_, rows_, std::move(feature_ids));
}

std::vector<uint32_t> DataView::RowCodes(size_t i) const {
  std::vector<uint32_t> out(features_.size());
  RowCodesInto(i, out.data());
  return out;
}

void DataView::RowCodesInto(size_t i, uint32_t* out) const {
  for (size_t j = 0; j < features_.size(); ++j) out[j] = feature(i, j);
}

const uint32_t* DataView::ScratchRowCodes(size_t i) const {
  static thread_local std::vector<uint32_t> codes;
  codes.resize(features_.size());
  RowCodesInto(i, codes.data());
  return codes.data();
}

size_t DataView::OneHotDimension() const {
  size_t d = 0;
  for (size_t j = 0; j < features_.size(); ++j) d += domain_size(j);
  return d;
}

double DataView::PositiveRate() const {
  if (rows_.empty()) return 0.0;
  size_t pos = 0;
  for (size_t i = 0; i < rows_.size(); ++i) pos += label(i);
  return static_cast<double>(pos) / static_cast<double>(rows_.size());
}

}  // namespace hamlet
