#include "hamlet/data/packed_code_matrix.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>

namespace hamlet {

namespace detail {

void PackedCodeMatrixIndexAbort(size_t i, size_t j, size_t num_rows,
                                size_t num_features) {
  std::fprintf(stderr,
               "hamlet: PackedCodeMatrix access (%zu, %zu) out of bounds "
               "for %zu x %zu matrix\n",
               i, j, num_rows, num_features);
  std::abort();
}

}  // namespace detail

PackedCodeMatrix::PackedCodeMatrix(const simd::PackedLayout& layout,
                                   const uint32_t* codes, size_t num_rows)
    : layout_(layout), num_rows_(num_rows) {
  words_.assign(num_rows_ * layout_.words_per_row, 0);
  for (size_t i = 0; i < num_rows_; ++i) {
    layout_.PackRow(codes + i * layout_.num_features,
                    words_.data() + i * layout_.words_per_row);
  }
  simd::AccumulatePackedBuild(num_rows_, words_.size());
}

PackedCodeMatrix::PackedCodeMatrix(const simd::PackedLayout& layout,
                                   const CodeMatrix& m)
    : PackedCodeMatrix(layout, m.codes().data(), m.num_rows()) {
  assert(layout.num_features == m.num_features());
}

PackedCodeMatrix::PackedCodeMatrix(const CodeMatrix& m)
    : PackedCodeMatrix(simd::PackedLayout::ForDomains(m.domain_sizes().data(),
                                                      m.num_features()),
                       m) {}

uint64_t* ThreadLocalPackScratch(size_t words) {
  thread_local std::vector<uint64_t> scratch;
  if (scratch.size() < words) scratch.resize(words);
  return scratch.data();
}

}  // namespace hamlet
