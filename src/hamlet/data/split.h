// Train/validation/test splitting.
//
// The paper pre-splits every dataset 50%:25%:25% for training, validation
// (feature selection + hyper-parameter tuning) and holdout testing (§3.2).

#ifndef HAMLET_DATA_SPLIT_H_
#define HAMLET_DATA_SPLIT_H_

#include <cstdint>
#include <vector>

#include "hamlet/data/view.h"

namespace hamlet {

/// Row-id partition of a dataset.
struct TrainValTest {
  std::vector<uint32_t> train;
  std::vector<uint32_t> val;
  std::vector<uint32_t> test;
};

/// Randomly partitions [0, n) with the given fractions (test gets the
/// remainder). Deterministic in `seed`.
TrainValTest SplitRows(size_t n, double train_frac, double val_frac,
                       uint64_t seed);

/// The paper's 50/25/25 split.
inline TrainValTest SplitPaper(size_t n, uint64_t seed) {
  return SplitRows(n, 0.5, 0.25, seed);
}

/// Bundles the three views over one dataset and feature subset.
struct SplitViews {
  DataView train;
  DataView val;
  DataView test;
};

/// Builds the three DataViews for `split` over `data` restricted to
/// `feature_ids`.
SplitViews MakeSplitViews(const Dataset& data, const TrainValTest& split,
                          const std::vector<uint32_t>& feature_ids);

}  // namespace hamlet

#endif  // HAMLET_DATA_SPLIT_H_
