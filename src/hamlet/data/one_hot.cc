#include "hamlet/data/one_hot.h"

#include <cassert>

namespace hamlet {

OneHotMap::OneHotMap(const DataView& view) {
  offsets_.resize(view.num_features());
  uint32_t offset = 0;
  for (size_t j = 0; j < view.num_features(); ++j) {
    offsets_[j] = offset;
    offset += view.domain_size(j);
  }
  dimension_ = offset;
}

OneHotMap::OneHotMap(const std::vector<uint32_t>& domain_sizes) {
  offsets_.resize(domain_sizes.size());
  uint32_t offset = 0;
  for (size_t j = 0; j < domain_sizes.size(); ++j) {
    offsets_[j] = offset;
    offset += domain_sizes[j];
  }
  dimension_ = offset;
}

void OneHotMap::ActiveUnits(const DataView& view, size_t i,
                            std::vector<uint32_t>& out) const {
  assert(view.num_features() == offsets_.size());
  out.resize(offsets_.size());
  for (size_t j = 0; j < offsets_.size(); ++j) {
    out[j] = offsets_[j] + view.feature(i, j);
  }
}

void OneHotMap::ActiveUnitsFromCodes(const uint32_t* codes,
                                     std::vector<uint32_t>& out) const {
  out.resize(offsets_.size());
  for (size_t j = 0; j < offsets_.size(); ++j) {
    out[j] = offsets_[j] + codes[j];
  }
}

}  // namespace hamlet
