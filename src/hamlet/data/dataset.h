// Learning-ready dataset: the output of the KFK join with role-tagged
// feature columns.
//
// Each column carries a FeatureRole so that the JoinAll / NoJoin / NoFK
// variants of the paper are pure feature-subset selections (core/variants.h)
// over one materialised table — NoJoin never touches foreign-feature bytes.

#ifndef HAMLET_DATA_DATASET_H_
#define HAMLET_DATA_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "hamlet/common/status.h"

namespace hamlet {

/// Provenance of a feature column in the joined table.
enum class FeatureRole : uint8_t {
  kHome = 0,        ///< from the fact table (X_S)
  kForeignKey = 1,  ///< an FK_i column
  kForeign = 2,     ///< from a dimension table (X_Ri)
};

const char* FeatureRoleName(FeatureRole role);

/// Metadata for one feature column of a Dataset.
struct FeatureSpec {
  std::string name;
  uint32_t domain_size = 0;
  FeatureRole role = FeatureRole::kHome;
  /// Dimension-table index the column came from; -1 for home features.
  int dim_index = -1;
};

/// Column-major labeled dataset of categorical codes.
class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(std::vector<FeatureSpec> features);

  size_t num_rows() const { return labels_.size(); }
  size_t num_features() const { return features_.size(); }

  const FeatureSpec& feature_spec(size_t col) const { return features_[col]; }
  const std::vector<FeatureSpec>& feature_specs() const { return features_; }

  uint32_t feature(size_t row, size_t col) const {
    return columns_[col][row];
  }
  uint8_t label(size_t row) const { return labels_[row]; }
  const std::vector<uint32_t>& column(size_t col) const {
    return columns_[col];
  }
  const std::vector<uint8_t>& labels() const { return labels_; }

  /// Appends a validated labeled row.
  Status AppendRow(const std::vector<uint32_t>& codes, uint8_t label);

  /// Hot-path append for generators/join (assert-only validation).
  void AppendRowUnchecked(const std::vector<uint32_t>& codes, uint8_t label);

  /// Index of the feature named `name`, or -1.
  int IndexOf(const std::string& name) const;

  /// Sum of feature domain sizes == dimensionality of the one-hot encoding.
  size_t OneHotDimension() const;

  void Reserve(size_t rows);

  /// Overwrites column `col` (same length) with codes over a (possibly)
  /// different domain. Used by FK domain compression.
  Status ReplaceColumn(size_t col, std::vector<uint32_t> codes,
                       uint32_t new_domain_size);

 private:
  std::vector<FeatureSpec> features_;
  std::vector<std::vector<uint32_t>> columns_;
  std::vector<uint8_t> labels_;
};

}  // namespace hamlet

#endif  // HAMLET_DATA_DATASET_H_
