#include "hamlet/data/split.h"

#include <cassert>
#include <numeric>

#include "hamlet/common/rng.h"

namespace hamlet {

TrainValTest SplitRows(size_t n, double train_frac, double val_frac,
                       uint64_t seed) {
  assert(train_frac >= 0.0 && val_frac >= 0.0 &&
         train_frac + val_frac <= 1.0);
  std::vector<uint32_t> ids(n);
  std::iota(ids.begin(), ids.end(), 0u);
  Rng rng(seed);
  rng.Shuffle(ids);

  const size_t n_train = static_cast<size_t>(train_frac * n);
  const size_t n_val = static_cast<size_t>(val_frac * n);

  TrainValTest out;
  out.train.assign(ids.begin(), ids.begin() + n_train);
  out.val.assign(ids.begin() + n_train, ids.begin() + n_train + n_val);
  out.test.assign(ids.begin() + n_train + n_val, ids.end());
  return out;
}

SplitViews MakeSplitViews(const Dataset& data, const TrainValTest& split,
                          const std::vector<uint32_t>& feature_ids) {
  return SplitViews{
      DataView(&data, split.train, feature_ids),
      DataView(&data, split.val, feature_ids),
      DataView(&data, split.test, feature_ids),
  };
}

}  // namespace hamlet
