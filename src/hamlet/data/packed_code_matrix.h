// Bit-packed companion of CodeMatrix for the popcount hot loops.
//
// A CodeMatrix spends a full 4-byte lane per categorical code; the
// match-counting loops (1-NN Hamming distance, the linear/overlap SVM
// kernels) only ever ask "equal or not", so the codes compress into
// fixed-width bit fields — 16-64 codes per cache line — and the
// comparisons become XOR + carry trick + popcount over uint64_t words
// (simd/simd.h has the field layout and the backend implementations).
//
// A PackedCodeMatrix is built once per Fit/PredictAll next to the dense
// matrix it mirrors and is immutable afterwards. Rows are comparable only
// under the same PackedLayout; the layout from
// simd::PackedLayout::ForDomains over the training domain sizes is the
// canonical choice, and query rows are packed into that same layout via
// ThreadLocalPackScratch at prediction time.

#ifndef HAMLET_DATA_PACKED_CODE_MATRIX_H_
#define HAMLET_DATA_PACKED_CODE_MATRIX_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "hamlet/data/code_matrix.h"
#include "hamlet/simd/simd.h"

namespace hamlet {

namespace detail {
/// Reports an out-of-bounds PackedCodeMatrix access and aborts. Out of
/// line so the checked branch stays tiny in the caller.
[[noreturn]] void PackedCodeMatrixIndexAbort(size_t i, size_t j,
                                             size_t num_rows,
                                             size_t num_features);
}  // namespace detail

/// Immutable bit-slab snapshot of a CodeMatrix's codes (labels and domain
/// sizes stay with the source matrix). Word-aligned rows of
/// layout().words_per_row uint64_t words each.
class PackedCodeMatrix {
 public:
  PackedCodeMatrix() = default;

  /// Packs every row of `m` under the canonical layout for its domain
  /// sizes (rows packed this way are comparable with any other matrix or
  /// query packed from the same domains).
  explicit PackedCodeMatrix(const CodeMatrix& m);

  /// Packs every row of `m` under a caller-chosen layout (must cover the
  /// matrix's codes and match its feature count).
  PackedCodeMatrix(const simd::PackedLayout& layout, const CodeMatrix& m);

  /// Packs `num_rows` rows of layout.num_features codes each from a flat
  /// row-major buffer.
  PackedCodeMatrix(const simd::PackedLayout& layout, const uint32_t* codes,
                   size_t num_rows);

  const simd::PackedLayout& layout() const { return layout_; }
  size_t num_rows() const { return num_rows_; }
  /// Total words across all rows (num_rows * layout().words_per_row).
  size_t num_words() const { return words_.size(); }

  /// Packed words of row i (layout().words_per_row entries). Like
  /// CodeMatrix::at, the bounds check is active in debug builds and under
  /// HAMLET_CHECK_BOUNDS and compiles away otherwise.
  const uint64_t* row(size_t i) const {
#if !defined(NDEBUG) || defined(HAMLET_CHECK_BOUNDS)
    if (i >= num_rows_) {
      detail::PackedCodeMatrixIndexAbort(i, 0, num_rows_,
                                         layout_.num_features);
    }
#endif
    return words_.data() + i * layout_.words_per_row;
  }

  /// Unpacks the code of (row i, feature j) — round-trip checks and
  /// debugging; hot loops compare whole rows instead.
  uint32_t code_at(size_t i, size_t j) const {
#if !defined(NDEBUG) || defined(HAMLET_CHECK_BOUNDS)
    if (i >= num_rows_ || j >= layout_.num_features) {
      detail::PackedCodeMatrixIndexAbort(i, j, num_rows_,
                                         layout_.num_features);
    }
#endif
    return layout_.UnpackCode(row(i), j);
  }

 private:
  simd::PackedLayout layout_;
  size_t num_rows_ = 0;
  std::vector<uint64_t> words_;
};

/// Per-thread scratch buffer of at least `words` uint64_t entries for
/// packing one query row at prediction time (the batch path hands each
/// worker thread CodeMatrix rows one at a time, so the packed query never
/// outlives the call that packed it). The buffer is reused across calls
/// on the same thread; a second call invalidates the previous pointer.
uint64_t* ThreadLocalPackScratch(size_t words);

}  // namespace hamlet

#endif  // HAMLET_DATA_PACKED_CODE_MATRIX_H_
