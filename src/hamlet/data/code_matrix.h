// Dense row-major materialisation of a DataView.
//
// DataView::feature(i, j) pays a double indirection on every access (view
// row-id vector -> view feature-id vector -> column storage), and the hot
// learner loops — 1-NN distances, SMO kernel evaluations, tree split
// scans, NB counting — touch every (row, feature) pair many times per
// fit/score. A CodeMatrix is materialised once at a learner's entry point
// (Fit / PredictAll) and gives those inner loops a contiguous uint32_t
// buffer with row(i) span access, plus the labels and per-feature domain
// sizes the learners need alongside the codes. This mirrors how Hamlet
// (Kumar et al., SIGMOD 2016) and the source paper operate on dense
// encoded matrices.

#ifndef HAMLET_DATA_CODE_MATRIX_H_
#define HAMLET_DATA_CODE_MATRIX_H_

#include <cassert>
#include <cstdint>
#include <vector>

#include "hamlet/common/status.h"
#include "hamlet/data/view.h"

namespace hamlet {

namespace detail {
/// Reports an out-of-bounds CodeMatrix access and aborts. Out of line so
/// the checked branch stays tiny in the caller.
[[noreturn]] void CodeMatrixIndexAbort(size_t i, size_t j, size_t num_rows,
                                       size_t num_features);
}  // namespace detail

/// Owning dense snapshot of a view's codes, labels and domain sizes.
/// Unlike DataView it does not reference the Dataset after construction,
/// so it stays valid independently of the view that produced it.
class CodeMatrix {
 public:
  CodeMatrix() = default;

  /// Materialises every row of `view` (codes in view row/feature order).
  explicit CodeMatrix(const DataView& view) : CodeMatrix(view, 0) {}

  /// Materialises the first min(max_rows, view.num_rows()) rows; 0 keeps
  /// every row. Used by learners with a training-row cap (KernelSvm).
  CodeMatrix(const DataView& view, size_t max_rows);

  /// Reassembles a matrix from its raw buffers — the deserialization
  /// entry point (io::ModelReader). Row count derives from labels;
  /// validates codes.size() == labels.size() * num_features,
  /// domains.size() == num_features, and every code < its domain, so a
  /// corrupt model file cannot produce an out-of-contract matrix.
  static Result<CodeMatrix> FromParts(size_t num_features,
                                      std::vector<uint32_t> codes,
                                      std::vector<uint8_t> labels,
                                      std::vector<uint32_t> domain_sizes);

  size_t num_rows() const { return num_rows_; }
  size_t num_features() const { return num_features_; }

  /// Contiguous codes of row i (num_features() entries).
  const uint32_t* row(size_t i) const {
    assert(i < num_rows_);
    return codes_.data() + i * num_features_;
  }

  /// Bounds-checked element access. The check is active in debug builds
  /// and under the sanitizer configurations (HAMLET_CHECK_BOUNDS, see
  /// cmake/HamletFlags.cmake) and compiles to a raw load otherwise, so hot
  /// loops can use at() unconditionally: a row-internal overrun would land
  /// inside the allocation where ASan alone cannot see it.
  uint32_t at(size_t i, size_t j) const {
#if !defined(NDEBUG) || defined(HAMLET_CHECK_BOUNDS)
    if (i >= num_rows_ || j >= num_features_) {
      detail::CodeMatrixIndexAbort(i, j, num_rows_, num_features_);
    }
#endif
    return codes_[i * num_features_ + j];
  }

  uint8_t label(size_t i) const {
    assert(i < num_rows_);
    return labels_[i];
  }

  uint32_t domain_size(size_t j) const {
    assert(j < num_features_);
    return domain_sizes_[j];
  }

  /// Flat row-major code buffer (num_rows * num_features entries); the
  /// layout the kernel-row cache and the distance kernels consume
  /// directly.
  const std::vector<uint32_t>& codes() const { return codes_; }
  const std::vector<uint8_t>& labels() const { return labels_; }
  const std::vector<uint32_t>& domain_sizes() const { return domain_sizes_; }

 private:
  size_t num_rows_ = 0;
  size_t num_features_ = 0;
  std::vector<uint32_t> codes_;
  std::vector<uint8_t> labels_;
  std::vector<uint32_t> domain_sizes_;
};

}  // namespace hamlet

#endif  // HAMLET_DATA_CODE_MATRIX_H_
