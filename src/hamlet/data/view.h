// Zero-copy row/feature-subset view over a Dataset.
//
// A DataView is the universal learner input: (dataset, row ids, feature
// ids). Train/validation/test splits are row subsets; JoinAll / NoJoin /
// NoFK are feature subsets; both compose without copying data.

#ifndef HAMLET_DATA_VIEW_H_
#define HAMLET_DATA_VIEW_H_

#include <cstdint>
#include <vector>

#include "hamlet/data/dataset.h"

namespace hamlet {

/// Lightweight (pointer + index vectors) view; copyable, non-owning. The
/// underlying Dataset must outlive the view.
class DataView {
 public:
  DataView() = default;

  /// View of all rows and all features.
  explicit DataView(const Dataset* data);

  DataView(const Dataset* data, std::vector<uint32_t> rows,
           std::vector<uint32_t> features);

  size_t num_rows() const { return rows_.size(); }
  size_t num_features() const { return features_.size(); }

  /// Code of view-row i, view-feature j.
  uint32_t feature(size_t i, size_t j) const {
    return data_->feature(rows_[i], features_[j]);
  }
  uint8_t label(size_t i) const { return data_->label(rows_[i]); }

  uint32_t domain_size(size_t j) const {
    return data_->feature_spec(features_[j]).domain_size;
  }
  const FeatureSpec& feature_spec(size_t j) const {
    return data_->feature_spec(features_[j]);
  }

  /// Underlying dataset row id for view-row i.
  uint32_t row_id(size_t i) const { return rows_[i]; }
  /// Underlying dataset column id for view-feature j.
  uint32_t feature_id(size_t j) const { return features_[j]; }

  const Dataset* dataset() const { return data_; }
  const std::vector<uint32_t>& rows() const { return rows_; }
  const std::vector<uint32_t>& features() const { return features_; }

  /// Same features, different row subset (indices into *this view's* rows).
  DataView SelectRows(const std::vector<uint32_t>& view_rows) const;

  /// Same rows, different feature subset (underlying dataset column ids).
  DataView WithFeatures(std::vector<uint32_t> feature_ids) const;

  /// Materialises view-row i's codes (in view-feature order).
  std::vector<uint32_t> RowCodes(size_t i) const;

  /// Writes view-row i's codes into `out`, which must hold num_features()
  /// entries. Lets callers reuse one buffer across rows instead of
  /// allocating a fresh vector per row.
  void RowCodesInto(size_t i, uint32_t* out) const;

  /// Materialises view-row i's codes into a thread-local scratch buffer
  /// and returns a pointer to it. The pointer stays valid until the next
  /// ScratchRowCodes call on the same thread — consume it immediately.
  /// Backs the per-row predict paths, which need one materialised row
  /// with no per-call allocation.
  const uint32_t* ScratchRowCodes(size_t i) const;

  /// Sum of selected features' domain sizes.
  size_t OneHotDimension() const;

  /// Fraction of rows labeled 1.
  double PositiveRate() const;

 private:
  const Dataset* data_ = nullptr;
  std::vector<uint32_t> rows_;
  std::vector<uint32_t> features_;
};

}  // namespace hamlet

#endif  // HAMLET_DATA_VIEW_H_
