#include "hamlet/data/dataset.h"

#include <cassert>

namespace hamlet {

const char* FeatureRoleName(FeatureRole role) {
  switch (role) {
    case FeatureRole::kHome:
      return "home";
    case FeatureRole::kForeignKey:
      return "foreign_key";
    case FeatureRole::kForeign:
      return "foreign";
  }
  return "unknown";
}

Dataset::Dataset(std::vector<FeatureSpec> features)
    : features_(std::move(features)) {
  columns_.resize(features_.size());
}

Status Dataset::AppendRow(const std::vector<uint32_t>& codes, uint8_t label) {
  if (codes.size() != features_.size()) {
    return Status::InvalidArgument("row arity mismatch");
  }
  if (label > 1) {
    return Status::InvalidArgument("binary target required");
  }
  for (size_t i = 0; i < codes.size(); ++i) {
    if (codes[i] >= features_[i].domain_size) {
      return Status::OutOfRange("code out of domain for feature '" +
                                features_[i].name + "'");
    }
  }
  AppendRowUnchecked(codes, label);
  return Status::OK();
}

void Dataset::AppendRowUnchecked(const std::vector<uint32_t>& codes,
                                 uint8_t label) {
  assert(codes.size() == features_.size());
  for (size_t i = 0; i < codes.size(); ++i) {
    assert(codes[i] < features_[i].domain_size);
    columns_[i].push_back(codes[i]);
  }
  labels_.push_back(label);
}

int Dataset::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < features_.size(); ++i) {
    if (features_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

size_t Dataset::OneHotDimension() const {
  size_t d = 0;
  for (const auto& f : features_) d += f.domain_size;
  return d;
}

void Dataset::Reserve(size_t rows) {
  for (auto& col : columns_) col.reserve(rows);
  labels_.reserve(rows);
}

Status Dataset::ReplaceColumn(size_t col, std::vector<uint32_t> codes,
                              uint32_t new_domain_size) {
  if (col >= features_.size()) {
    return Status::OutOfRange("no such column");
  }
  if (codes.size() != labels_.size()) {
    return Status::InvalidArgument("replacement column length mismatch");
  }
  for (uint32_t c : codes) {
    if (c >= new_domain_size) {
      return Status::OutOfRange("replacement code exceeds new domain");
    }
  }
  columns_[col] = std::move(codes);
  features_[col].domain_size = new_domain_size;
  return Status::OK();
}

}  // namespace hamlet
