// One-hot index mapping for categorical feature vectors.
//
// SVM kernels and 1-NN distances never materialise one-hot vectors (the dot
// product over one-hot encodings equals the number of matching features).
// The MLP and logistic regression, however, need dense unit indices; this
// map assigns each (feature j, code c) pair the global one-hot index
// offset[j] + c.

#ifndef HAMLET_DATA_ONE_HOT_H_
#define HAMLET_DATA_ONE_HOT_H_

#include <cstdint>
#include <vector>

#include "hamlet/data/view.h"

namespace hamlet {

/// Precomputed offsets for the one-hot embedding of a feature subset.
class OneHotMap {
 public:
  OneHotMap() = default;

  /// Builds the map from a view's feature subset (domain sizes only; does
  /// not scan rows).
  explicit OneHotMap(const DataView& view);

  /// Builds the map from bare per-feature domain sizes — the same layout
  /// a view with those domains would produce. Deserialized models
  /// (io/serialize.cc) rebuild their maps from the model header's domain
  /// metadata through this constructor, so the embedding is guaranteed
  /// consistent with the header.
  explicit OneHotMap(const std::vector<uint32_t>& domain_sizes);

  /// Total number of one-hot units.
  size_t dimension() const { return dimension_; }
  size_t num_features() const { return offsets_.size(); }

  /// Global unit index of (view-feature j, code c).
  uint32_t UnitIndex(size_t j, uint32_t code) const {
    return offsets_[j] + code;
  }

  /// Fills `out` with the active unit index per feature for view-row i.
  /// `out` is resized to num_features(); the encoding has exactly one
  /// active unit per feature.
  void ActiveUnits(const DataView& view, size_t i,
                   std::vector<uint32_t>& out) const;

  /// Same, from an already-materialised row of num_features() codes (a
  /// CodeMatrix row); produces the unit indices in the same order as
  /// ActiveUnits on the originating view.
  void ActiveUnitsFromCodes(const uint32_t* codes,
                            std::vector<uint32_t>& out) const;

 private:
  std::vector<uint32_t> offsets_;
  size_t dimension_ = 0;
};

}  // namespace hamlet

#endif  // HAMLET_DATA_ONE_HOT_H_
