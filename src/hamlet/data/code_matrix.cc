#include "hamlet/data/code_matrix.h"

#include <cstdio>
#include <cstdlib>
#include <utility>

namespace hamlet {

namespace detail {

void CodeMatrixIndexAbort(size_t i, size_t j, size_t num_rows,
                          size_t num_features) {
  std::fprintf(stderr,
               "hamlet: CodeMatrix::at(%zu, %zu) out of bounds for %zu x %zu "
               "matrix\n",
               i, j, num_rows, num_features);
  std::abort();
}

}  // namespace detail

Result<CodeMatrix> CodeMatrix::FromParts(size_t num_features,
                                         std::vector<uint32_t> codes,
                                         std::vector<uint8_t> labels,
                                         std::vector<uint32_t> domain_sizes) {
  const size_t num_rows = labels.size();
  if (domain_sizes.size() != num_features) {
    return Status::InvalidArgument(
        "CodeMatrix::FromParts: domain_sizes size does not match "
        "num_features");
  }
  if (codes.size() != num_rows * num_features) {
    return Status::InvalidArgument(
        "CodeMatrix::FromParts: codes size does not match rows x features");
  }
  for (size_t i = 0; i < num_rows; ++i) {
    for (size_t j = 0; j < num_features; ++j) {
      if (codes[i * num_features + j] >= domain_sizes[j]) {
        return Status::OutOfRange(
            "CodeMatrix::FromParts: code exceeds its feature domain");
      }
    }
  }
  CodeMatrix m;
  m.num_rows_ = num_rows;
  m.num_features_ = num_features;
  m.codes_ = std::move(codes);
  m.labels_ = std::move(labels);
  m.domain_sizes_ = std::move(domain_sizes);
  return m;
}

CodeMatrix::CodeMatrix(const DataView& view, size_t max_rows) {
  num_rows_ = view.num_rows();
  if (max_rows > 0 && num_rows_ > max_rows) num_rows_ = max_rows;
  num_features_ = view.num_features();
  domain_sizes_.resize(num_features_);
  for (size_t j = 0; j < num_features_; ++j) {
    domain_sizes_[j] = view.domain_size(j);
  }
  codes_.resize(num_rows_ * num_features_);
  labels_.resize(num_rows_);
  for (size_t i = 0; i < num_rows_; ++i) {
    view.RowCodesInto(i, codes_.data() + i * num_features_);
    labels_[i] = view.label(i);
  }
}

}  // namespace hamlet
