#include "hamlet/data/code_matrix.h"

#include <cstdio>
#include <cstdlib>

namespace hamlet {

namespace detail {

void CodeMatrixIndexAbort(size_t i, size_t j, size_t num_rows,
                          size_t num_features) {
  std::fprintf(stderr,
               "hamlet: CodeMatrix::at(%zu, %zu) out of bounds for %zu x %zu "
               "matrix\n",
               i, j, num_rows, num_features);
  std::abort();
}

}  // namespace detail

CodeMatrix::CodeMatrix(const DataView& view, size_t max_rows) {
  num_rows_ = view.num_rows();
  if (max_rows > 0 && num_rows_ > max_rows) num_rows_ = max_rows;
  num_features_ = view.num_features();
  domain_sizes_.resize(num_features_);
  for (size_t j = 0; j < num_features_; ++j) {
    domain_sizes_[j] = view.domain_size(j);
  }
  codes_.resize(num_rows_ * num_features_);
  labels_.resize(num_rows_);
  for (size_t i = 0; i < num_rows_; ++i) {
    view.RowCodesInto(i, codes_.data() + i * num_features_);
    labels_[i] = view.label(i);
  }
}

}  // namespace hamlet
