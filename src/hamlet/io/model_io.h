// Endian-pinned binary primitives for the hamlet model format.
//
// ModelWriter/ModelReader are the byte layer under io::SaveModel /
// io::LoadModel (serialize.h): fixed-width little-endian integers
// (assembled byte-by-byte, so the on-disk format is identical on any
// host), IEEE-754 doubles round-tripped through their bit pattern (the
// loaded model predicts bit-identically to the saved one), and
// length-prefixed vectors with plausibility caps so a corrupt length
// field produces a Status instead of a giant allocation. All reader
// failures — truncation, stream errors, implausible lengths — surface as
// Status; nothing in this layer throws or aborts on malformed input.

#ifndef HAMLET_IO_MODEL_IO_H_
#define HAMLET_IO_MODEL_IO_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "hamlet/common/status.h"
#include "hamlet/common/attributes.h"
#include "hamlet/data/code_matrix.h"

namespace hamlet {
namespace io {

/// First bytes of every hamlet model file ("HMLM" = HaMLet Model).
inline constexpr char kModelMagic[4] = {'H', 'M', 'L', 'M'};
/// Last bytes of every model file; catches silent truncation after an
/// otherwise-complete body.
inline constexpr char kModelFooter[4] = {'M', 'L', 'M', 'H'};
/// Container format version written by SaveModel. Bump on any layout
/// change; LoadModel rejects versions outside
/// [kMinModelFormatVersion, kModelFormatVersion] with an InvalidArgument
/// Status naming both versions. v2 added the CRC-32 body checksum (a u32
/// between body and footer, covering family tag + domain header + body);
/// v1 files (no checksum) still load.
inline constexpr uint32_t kModelFormatVersion = 2;
inline constexpr uint32_t kMinModelFormatVersion = 1;

/// Upper bound on any single serialized vector (element count). Far
/// above any real model section, low enough that a corrupt length field
/// fails cleanly instead of attempting a multi-GiB resize.
inline constexpr uint64_t kMaxVectorElements = uint64_t{1} << 28;

/// Little-endian serializer over an ostream. Write failures latch into
/// status(); callers can write a whole section and check once.
class ModelWriter {
 public:
  explicit ModelWriter(std::ostream& os) : os_(os) {}

  void WriteU8(uint8_t v);
  void WriteU32(uint32_t v);
  void WriteU64(uint64_t v);
  void WriteI32(int32_t v);
  /// IEEE-754 bit pattern as a u64; exact round trip.
  void WriteF64(double v);
  /// u64 length + raw bytes.
  void WriteString(const std::string& s);
  /// u64 length + elements.
  void WriteU8Vec(const std::vector<uint8_t>& v);
  void WriteU32Vec(const std::vector<uint32_t>& v);
  void WriteF64Vec(const std::vector<double>& v);
  /// num_rows, num_features, codes, labels, domain sizes — the full
  /// standalone snapshot (1-NN's train matrix, SVM support-vector slices).
  void WriteCodeMatrix(const CodeMatrix& m);
  /// Raw bytes, no length prefix (magic/footer markers).
  void WriteRaw(const void* data, size_t n);

  /// Starts folding every subsequently written byte into a CRC-32.
  /// TakeChecksum() finalizes and stops accumulating, so the checksum
  /// field itself (written right after) is not part of its own coverage.
  void BeginChecksum();
  uint32_t TakeChecksum();

  const Status& status() const { return status_; }

 private:
  void WriteBytes(const void* data, size_t n);

  std::ostream& os_;
  Status status_;
  bool checksumming_ = false;
  uint32_t crc_state_ = 0;
};

/// Little-endian deserializer over an istream. Every Read* returns
/// Status; a short read reports OutOfRange ("truncated model stream").
class ModelReader {
 public:
  explicit ModelReader(std::istream& is) : is_(is) {}

  HAMLET_NODISCARD Status ReadU8(uint8_t* out);
  HAMLET_NODISCARD Status ReadU32(uint32_t* out);
  HAMLET_NODISCARD Status ReadU64(uint64_t* out);
  HAMLET_NODISCARD Status ReadI32(int32_t* out);
  HAMLET_NODISCARD Status ReadF64(double* out);
  HAMLET_NODISCARD Status ReadString(std::string* out);
  HAMLET_NODISCARD Status ReadU8Vec(std::vector<uint8_t>* out);
  HAMLET_NODISCARD Status ReadU32Vec(std::vector<uint32_t>* out);
  HAMLET_NODISCARD Status ReadF64Vec(std::vector<double>* out);
  HAMLET_NODISCARD Status ReadCodeMatrix(CodeMatrix* out);

  /// Reads `n` bytes and fails unless they equal `expected` (magic /
  /// footer checks); `what` names the field in the error message. A
  /// short read keeps its underlying code (OutOfRange), so retry logic
  /// can tell truncation from a byte mismatch (InvalidArgument).
  HAMLET_NODISCARD Status ExpectBytes(const char* expected, size_t n,
                                      const char* what);

  /// Mirror of the writer's checksum window: BeginChecksum() starts
  /// folding every subsequently read byte into a CRC-32; TakeChecksum()
  /// finalizes and stops, leaving the stored checksum field (read next)
  /// outside its own coverage.
  void BeginChecksum();
  uint32_t TakeChecksum();

 private:
  HAMLET_NODISCARD Status ReadBytes(void* data, size_t n);
  /// Reads a u64 length field and validates it against kMaxVectorElements.
  HAMLET_NODISCARD Status ReadLength(uint64_t* out, const char* what);

  std::istream& is_;
  bool checksumming_ = false;
  uint32_t crc_state_ = 0;
};

}  // namespace io
}  // namespace hamlet

#endif  // HAMLET_IO_MODEL_IO_H_
