#include "hamlet/io/model_io.h"

#include <cstring>
#include <istream>
#include <ostream>

#include "hamlet/common/crc32.h"

namespace hamlet {
namespace io {

namespace {

/// Assembles the low `n` bytes of `v` least-significant-first. The
/// on-disk byte order is a property of this loop, not of the host.
void PackLe(uint64_t v, unsigned char* out, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = static_cast<unsigned char>((v >> (8 * i)) & 0xffu);
  }
}

uint64_t UnpackLe(const unsigned char* in, size_t n) {
  uint64_t v = 0;
  for (size_t i = 0; i < n; ++i) {
    v |= static_cast<uint64_t>(in[i]) << (8 * i);
  }
  return v;
}

}  // namespace

void ModelWriter::WriteBytes(const void* data, size_t n) {
  if (!status_.ok()) return;
  os_.write(static_cast<const char*>(data), static_cast<std::streamsize>(n));
  if (!os_.good()) {
    status_ = Status::Internal("model stream write failed");
    return;
  }
  if (checksumming_) crc_state_ = Crc32Feed(crc_state_, data, n);
}

void ModelWriter::BeginChecksum() {
  checksumming_ = true;
  crc_state_ = kCrc32Init;
}

uint32_t ModelWriter::TakeChecksum() {
  checksumming_ = false;
  return Crc32Finalize(crc_state_);
}

void ModelWriter::WriteRaw(const void* data, size_t n) {
  WriteBytes(data, n);
}

void ModelWriter::WriteU8(uint8_t v) { WriteBytes(&v, 1); }

void ModelWriter::WriteU32(uint32_t v) {
  unsigned char b[4];
  PackLe(v, b, 4);
  WriteBytes(b, 4);
}

void ModelWriter::WriteU64(uint64_t v) {
  unsigned char b[8];
  PackLe(v, b, 8);
  WriteBytes(b, 8);
}

void ModelWriter::WriteI32(int32_t v) {
  WriteU32(static_cast<uint32_t>(v));
}

void ModelWriter::WriteF64(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v), "IEEE-754 double expected");
  std::memcpy(&bits, &v, sizeof(bits));
  WriteU64(bits);
}

void ModelWriter::WriteString(const std::string& s) {
  WriteU64(s.size());
  WriteBytes(s.data(), s.size());
}

void ModelWriter::WriteU8Vec(const std::vector<uint8_t>& v) {
  WriteU64(v.size());
  WriteBytes(v.data(), v.size());
}

void ModelWriter::WriteU32Vec(const std::vector<uint32_t>& v) {
  WriteU64(v.size());
  for (uint32_t x : v) WriteU32(x);
}

void ModelWriter::WriteF64Vec(const std::vector<double>& v) {
  WriteU64(v.size());
  for (double x : v) WriteF64(x);
}

void ModelWriter::WriteCodeMatrix(const CodeMatrix& m) {
  WriteU64(m.num_rows());
  WriteU64(m.num_features());
  WriteU32Vec(m.codes());
  WriteU8Vec(m.labels());
  WriteU32Vec(m.domain_sizes());
}

Status ModelReader::ReadBytes(void* data, size_t n) {
  is_.read(static_cast<char*>(data), static_cast<std::streamsize>(n));
  if (static_cast<size_t>(is_.gcount()) != n) {
    return Status::OutOfRange("truncated model stream");
  }
  if (checksumming_) crc_state_ = Crc32Feed(crc_state_, data, n);
  return Status::OK();
}

void ModelReader::BeginChecksum() {
  checksumming_ = true;
  crc_state_ = kCrc32Init;
}

uint32_t ModelReader::TakeChecksum() {
  checksumming_ = false;
  return Crc32Finalize(crc_state_);
}

Status ModelReader::ReadLength(uint64_t* out, const char* what) {
  HAMLET_RETURN_IF_ERROR(ReadU64(out));
  if (*out > kMaxVectorElements) {
    return Status::InvalidArgument(
        std::string("corrupt model: implausible ") + what + " length " +
        std::to_string(*out));
  }
  return Status::OK();
}

Status ModelReader::ReadU8(uint8_t* out) { return ReadBytes(out, 1); }

Status ModelReader::ReadU32(uint32_t* out) {
  unsigned char b[4];
  HAMLET_RETURN_IF_ERROR(ReadBytes(b, 4));
  *out = static_cast<uint32_t>(UnpackLe(b, 4));
  return Status::OK();
}

Status ModelReader::ReadU64(uint64_t* out) {
  unsigned char b[8];
  HAMLET_RETURN_IF_ERROR(ReadBytes(b, 8));
  *out = UnpackLe(b, 8);
  return Status::OK();
}

Status ModelReader::ReadI32(int32_t* out) {
  uint32_t u;
  HAMLET_RETURN_IF_ERROR(ReadU32(&u));
  *out = static_cast<int32_t>(u);
  return Status::OK();
}

Status ModelReader::ReadF64(double* out) {
  uint64_t bits;
  HAMLET_RETURN_IF_ERROR(ReadU64(&bits));
  std::memcpy(out, &bits, sizeof(bits));
  return Status::OK();
}

Status ModelReader::ReadString(std::string* out) {
  uint64_t n;
  HAMLET_RETURN_IF_ERROR(ReadLength(&n, "string"));
  out->resize(static_cast<size_t>(n));
  return n == 0 ? Status::OK() : ReadBytes(&(*out)[0], static_cast<size_t>(n));
}

Status ModelReader::ReadU8Vec(std::vector<uint8_t>* out) {
  uint64_t n;
  HAMLET_RETURN_IF_ERROR(ReadLength(&n, "u8 vector"));
  out->resize(static_cast<size_t>(n));
  return n == 0 ? Status::OK() : ReadBytes(out->data(),
                                           static_cast<size_t>(n));
}

Status ModelReader::ReadU32Vec(std::vector<uint32_t>* out) {
  uint64_t n;
  HAMLET_RETURN_IF_ERROR(ReadLength(&n, "u32 vector"));
  out->resize(static_cast<size_t>(n));
  for (uint32_t& x : *out) HAMLET_RETURN_IF_ERROR(ReadU32(&x));
  return Status::OK();
}

Status ModelReader::ReadF64Vec(std::vector<double>* out) {
  uint64_t n;
  HAMLET_RETURN_IF_ERROR(ReadLength(&n, "f64 vector"));
  out->resize(static_cast<size_t>(n));
  for (double& x : *out) HAMLET_RETURN_IF_ERROR(ReadF64(&x));
  return Status::OK();
}

Status ModelReader::ReadCodeMatrix(CodeMatrix* out) {
  uint64_t rows, features;
  HAMLET_RETURN_IF_ERROR(ReadLength(&rows, "CodeMatrix rows"));
  HAMLET_RETURN_IF_ERROR(ReadLength(&features, "CodeMatrix features"));
  std::vector<uint32_t> codes;
  std::vector<uint8_t> labels;
  std::vector<uint32_t> domains;
  HAMLET_RETURN_IF_ERROR(ReadU32Vec(&codes));
  HAMLET_RETURN_IF_ERROR(ReadU8Vec(&labels));
  HAMLET_RETURN_IF_ERROR(ReadU32Vec(&domains));
  if (labels.size() != rows || domains.size() != features) {
    return Status::InvalidArgument(
        "corrupt model: CodeMatrix section sizes disagree with its header");
  }
  Result<CodeMatrix> m = CodeMatrix::FromParts(
      static_cast<size_t>(features), std::move(codes), std::move(labels),
      std::move(domains));
  if (!m.ok()) return m.status();
  *out = std::move(m).value();
  return Status::OK();
}

Status ModelReader::ExpectBytes(const char* expected, size_t n,
                                const char* what) {
  std::vector<char> got(n);
  Status st = ReadBytes(got.data(), n);
  if (!st.ok()) {
    // Keep the short-read code (OutOfRange): a truncated stream is a
    // different failure class from a present-but-wrong marker, and the
    // load retry wrapper treats only the former as possibly transient.
    return Status::FromCode(st.code(), std::string("not a hamlet model: ") +
                                           what + " missing (" +
                                           st.message() + ")");
  }
  if (std::memcmp(got.data(), expected, n) != 0) {
    return Status::InvalidArgument(std::string("not a hamlet model: bad ") +
                                   what);
  }
  return Status::OK();
}

}  // namespace io
}  // namespace hamlet
