// Versioned container format for fitted hamlet models.
//
// Layout, format v2 (all integers little-endian; see model_io.h for the
// byte layer):
//
//   magic    "HMLM"                       4 bytes
//   version  u32 (kModelFormatVersion)
//   family   u32 (ml::ModelFamily tag)        ─┐
//   domains  u32 num_features + u32[] sizes    │ CRC-32 coverage
//   body     learner-specific section         ─┘
//   checksum u32 CRC-32 of the covered bytes (v2+ only)
//   footer   "MLMH"                       4 bytes
//
// v1 files (PR 6) lack the checksum field and still load. Structural
// checks catch truncation and implausible lengths; the checksum catches
// bit flips inside otherwise well-formed payload bytes, surfacing them
// as DataLoss instead of depending on structural luck.
//
// The header's domain metadata is the serving contract: a server decodes
// and validates raw request tuples against it without ever seeing the
// training Dataset. LoadModel re-attaches it to the deserialized model
// via Classifier::RestoreTrainDomains.
//
// Durability: SaveModelToFile never leaves a partial file at the target
// path. It writes a temp sibling, flushes and fsyncs it, then renames it
// over the target (and fsyncs the directory), deleting the temp on any
// failure — a crash or injected fault mid-save leaves either the old
// file or nothing. File-level error Statuses carry the path and errno
// text. All of it is exercised by the fault-injection sites in
// common/fault.h (io.save.*, io.load.*).
//
// Every malformed-input path — bad magic/footer, unknown version or
// family, truncated stream, checksum mismatch, body/header disagreement
// — returns a Status; loading never crashes on corrupt bytes
// (tests/model_io_test.cc sweeps truncations and bit flips,
// tests/fault_test.cc sweeps the injection sites).

#ifndef HAMLET_IO_SERIALIZE_H_
#define HAMLET_IO_SERIALIZE_H_

#include <chrono>
#include <iosfwd>
#include <memory>
#include <string>

#include "hamlet/common/status.h"
#include "hamlet/common/attributes.h"
#include "hamlet/ml/classifier.h"

namespace hamlet {
namespace io {

/// Writes `model` in the container format. Fails with FailedPrecondition
/// if the model is unfitted or its family has no serialized form
/// (ModelFamily::kUnsupported, e.g. the backward-selection wrapper).
HAMLET_NODISCARD Status SaveModel(const ml::Classifier& model,
                                  std::ostream& os);

/// Reads a model written by SaveModel (format v1 or v2), dispatching on
/// the family tag. The concrete learner is reconstructed behind the
/// Classifier interface with its train-domain metadata restored, ready
/// for PredictAll. A v2 body whose checksum does not match is DataLoss.
HAMLET_NODISCARD Result<std::unique_ptr<ml::Classifier>> LoadModel(
    std::istream& is);

/// Atomic + durable file save: temp sibling -> flush/fsync -> rename,
/// so no partial file is ever observable at `path`. On failure the temp
/// file is removed and the Status names the path and errno.
HAMLET_NODISCARD Status SaveModelToFile(const ml::Classifier& model,
                                        const std::string& path);

/// File load with I/O error mapping (open failure -> NotFound with path
/// + errno text).
HAMLET_NODISCARD Result<std::unique_ptr<ml::Classifier>> LoadModelFromFile(
    const std::string& path);

/// Bounded retry-with-backoff policy for LoadModelFromFileWithRetry.
struct LoadRetryConfig {
  int max_attempts = 3;
  std::chrono::milliseconds initial_backoff{1};
  std::chrono::milliseconds max_backoff{50};
};

/// LoadModelFromFile wrapped in bounded retries for transient failures
/// (Unavailable — e.g. injected faults — plus Internal and OutOfRange,
/// the codes a mid-flight I/O error surfaces as). Permanent failures
/// (NotFound, InvalidArgument, DataLoss) return immediately; the last
/// attempt's Status is returned when retries are exhausted. Backoff
/// doubles from initial_backoff up to max_backoff between attempts.
HAMLET_NODISCARD Result<std::unique_ptr<ml::Classifier>>
LoadModelFromFileWithRetry(const std::string& path,
                           const LoadRetryConfig& config = {});

}  // namespace io
}  // namespace hamlet

#endif  // HAMLET_IO_SERIALIZE_H_
