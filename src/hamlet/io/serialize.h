// Versioned container format for fitted hamlet models.
//
// Layout (all integers little-endian; see model_io.h for the byte layer):
//
//   magic   "HMLM"                       4 bytes
//   version u32 (kModelFormatVersion)
//   family  u32 (ml::ModelFamily tag)
//   domains u32 num_features + u32[num_features] per-feature domain sizes
//   body    learner-specific section (the learner's SaveBody/LoadBody pair)
//   footer  "MLMH"                       4 bytes
//
// The header's domain metadata is the serving contract: a server decodes
// and validates raw request tuples against it without ever seeing the
// training Dataset. LoadModel re-attaches it to the deserialized model
// via Classifier::RestoreTrainDomains.
//
// Every malformed-input path — bad magic/footer, unknown version or
// family, truncated stream, body/header disagreement — returns a Status;
// loading never crashes on corrupt bytes (tests/model_io_test.cc sweeps
// truncations and bit flips).

#ifndef HAMLET_IO_SERIALIZE_H_
#define HAMLET_IO_SERIALIZE_H_

#include <iosfwd>
#include <memory>
#include <string>

#include "hamlet/common/status.h"
#include "hamlet/ml/classifier.h"

namespace hamlet {
namespace io {

/// Writes `model` in the container format. Fails with FailedPrecondition
/// if the model is unfitted or its family has no serialized form
/// (ModelFamily::kUnsupported, e.g. the backward-selection wrapper).
Status SaveModel(const ml::Classifier& model, std::ostream& os);

/// Reads a model written by SaveModel, dispatching on the family tag.
/// The concrete learner is reconstructed behind the Classifier interface
/// with its train-domain metadata restored, ready for PredictAll.
Result<std::unique_ptr<ml::Classifier>> LoadModel(std::istream& is);

/// File conveniences: binary-mode streams over `path` plus I/O error
/// mapping (open failure -> NotFound / InvalidArgument).
Status SaveModelToFile(const ml::Classifier& model, const std::string& path);
Result<std::unique_ptr<ml::Classifier>> LoadModelFromFile(
    const std::string& path);

}  // namespace io
}  // namespace hamlet

#endif  // HAMLET_IO_SERIALIZE_H_
