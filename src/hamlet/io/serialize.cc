#include "hamlet/io/serialize.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <fstream>
#include <system_error>
#include <thread>
#include <utility>

#include <fcntl.h>
#include <unistd.h>

#include "hamlet/common/fault.h"
#include "hamlet/io/model_io.h"
#include "hamlet/ml/ann/mlp.h"
#include "hamlet/ml/knn/one_nn.h"
#include "hamlet/ml/linear/logistic_regression.h"
#include "hamlet/ml/majority.h"
#include "hamlet/ml/nb/naive_bayes.h"
#include "hamlet/ml/svm/svm.h"
#include "hamlet/ml/tree/decision_tree.h"

namespace hamlet {
namespace io {

namespace {

/// Narrows a loaded concrete learner into the Classifier-typed Result,
/// restoring the header's domain metadata on the way.
template <typename T>
Result<std::unique_ptr<ml::Classifier>> Finish(
    Result<std::unique_ptr<T>> loaded, std::vector<uint32_t> domains) {
  if (!loaded.ok()) return loaded.status();
  std::unique_ptr<ml::Classifier> model = std::move(loaded.value());
  model->RestoreTrainDomains(std::move(domains));
  return Result<std::unique_ptr<ml::Classifier>>(std::move(model));
}

/// Thread-safe errno -> "No such file or directory"-style text.
std::string ErrnoText(int err) {
  return std::error_code(err, std::generic_category()).message();
}

/// fsyncs `path` (a file or directory) through a fresh descriptor. The
/// injected io.save.fsync fault models an fsync that returns EIO.
Status FsyncPath(const std::string& path) {
  HAMLET_RETURN_IF_ERROR(fault::Inject(fault::kSiteSaveFsync, path));
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::Internal("cannot open " + path +
                            " for fsync (" + ErrnoText(errno) + ")");
  }
  const int rc = ::fsync(fd);
  const int err = errno;
  ::close(fd);
  if (rc != 0) {
    return Status::Internal("fsync failed on " + path + " (" +
                            ErrnoText(err) + ")");
  }
  return Status::OK();
}

/// Directory part of `path` ("." when it has none), for the post-rename
/// directory fsync that makes the new entry durable.
std::string DirOf(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

/// The save pipeline up to (not including) the rename, writing into
/// `tmp`. Split out so the caller owns temp-file cleanup on any failure.
Status SaveToTemp(const ml::Classifier& model, const std::string& tmp) {
  HAMLET_RETURN_IF_ERROR(fault::Inject(fault::kSiteSaveOpen, tmp));
  std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
  if (!os) {
    return Status::InvalidArgument("cannot open temp model file for writing: " +
                                   tmp + " (" + ErrnoText(errno) + ")");
  }
  Status st;
  if (fault::Enabled()) {
    // Interpose the fault adapter so io.save.write can fail any write.
    fault::FaultInjectingStreambuf buf(os.rdbuf(), fault::kSiteSaveWrite,
                                       nullptr);
    std::ostream faulty(&buf);
    st = SaveModel(model, faulty);
    faulty.flush();
    if (st.ok() && !faulty.good()) {
      st = Status::Internal("model stream write failed");
    }
  } else {
    st = SaveModel(model, os);
  }
  if (!st.ok()) {
    return Status::FromCode(st.code(),
                            st.message() + " (writing " + tmp + ")");
  }
  os.flush();
  if (!os) {
    return Status::Internal("write error on temp model file: " + tmp + " (" +
                            ErrnoText(errno) + ")");
  }
  os.close();
  if (os.fail()) {
    return Status::Internal("close failed on temp model file: " + tmp + " (" +
                            ErrnoText(errno) + ")");
  }
  // File durable before the rename publishes it: a crash between rename
  // and data reaching disk must not leave a loadable-but-hollow file.
  return FsyncPath(tmp);
}

bool RetryableLoadFailure(StatusCode code) {
  return code == StatusCode::kUnavailable || code == StatusCode::kInternal ||
         code == StatusCode::kOutOfRange;
}

}  // namespace

Status SaveModel(const ml::Classifier& model, std::ostream& os) {
  if (model.family() == ml::ModelFamily::kUnsupported) {
    return Status::FailedPrecondition(
        model.name() + ": model family has no serialized form");
  }
  if (model.train_domain_sizes().empty()) {
    return Status::FailedPrecondition(model.name() +
                                      ": Save before Fit (no train domains)");
  }
  ModelWriter writer(os);
  writer.WriteRaw(kModelMagic, sizeof(kModelMagic));
  writer.WriteU32(kModelFormatVersion);
  // Everything from the family tag through the body is checksummed; the
  // checksum itself and the footer are outside the window.
  writer.BeginChecksum();
  writer.WriteU32(static_cast<uint32_t>(model.family()));
  writer.WriteU32Vec(model.train_domain_sizes());
  HAMLET_RETURN_IF_ERROR(writer.status());
  HAMLET_RETURN_IF_ERROR(model.SaveBody(writer));
  writer.WriteU32(writer.TakeChecksum());
  writer.WriteRaw(kModelFooter, sizeof(kModelFooter));
  return writer.status();
}

Result<std::unique_ptr<ml::Classifier>> LoadModel(std::istream& is) {
  ModelReader reader(is);
  HAMLET_RETURN_IF_ERROR(
      reader.ExpectBytes(kModelMagic, sizeof(kModelMagic), "magic"));
  uint32_t version, family_tag;
  HAMLET_RETURN_IF_ERROR(reader.ReadU32(&version));
  if (version < kMinModelFormatVersion || version > kModelFormatVersion) {
    return Status::InvalidArgument(
        "unsupported model format version " + std::to_string(version) +
        " (this build reads versions " +
        std::to_string(kMinModelFormatVersion) + " to " +
        std::to_string(kModelFormatVersion) + ")");
  }
  const bool has_checksum = version >= 2;
  if (has_checksum) reader.BeginChecksum();
  HAMLET_RETURN_IF_ERROR(reader.ReadU32(&family_tag));
  std::vector<uint32_t> domains;
  HAMLET_RETURN_IF_ERROR(reader.ReadU32Vec(&domains));
  if (domains.empty()) {
    return Status::InvalidArgument(
        "corrupt model: header has no feature domains");
  }

  Result<std::unique_ptr<ml::Classifier>> loaded =
      Status::Internal("unreachable");
  switch (static_cast<ml::ModelFamily>(family_tag)) {
    case ml::ModelFamily::kDecisionTree:
      loaded = Finish(ml::DecisionTree::LoadBody(reader, domains), domains);
      break;
    case ml::ModelFamily::kNaiveBayes:
      loaded = Finish(ml::NaiveBayes::LoadBody(reader, domains), domains);
      break;
    case ml::ModelFamily::kLogRegL1:
      loaded = Finish(ml::LogisticRegressionL1::LoadBody(reader, domains),
                      domains);
      break;
    case ml::ModelFamily::kKernelSvm:
      loaded = Finish(ml::KernelSvm::LoadBody(reader, domains), domains);
      break;
    case ml::ModelFamily::kOneNn:
      loaded =
          Finish(ml::OneNearestNeighbor::LoadBody(reader, domains), domains);
      break;
    case ml::ModelFamily::kMlp:
      loaded = Finish(ml::Mlp::LoadBody(reader, domains), domains);
      break;
    case ml::ModelFamily::kMajority:
      loaded =
          Finish(ml::MajorityClassifier::LoadBody(reader, domains), domains);
      break;
    case ml::ModelFamily::kUnsupported:
    default:
      return Status::InvalidArgument(
          "corrupt model: unknown model family tag " +
          std::to_string(family_tag));
  }
  if (!loaded.ok()) return loaded.status();
  if (has_checksum) {
    const uint32_t computed = reader.TakeChecksum();
    uint32_t stored;
    HAMLET_RETURN_IF_ERROR(reader.ReadU32(&stored));
    if (stored != computed) {
      return Status::DataLoss(
          "model body checksum mismatch: stored " + std::to_string(stored) +
          ", computed " + std::to_string(computed) +
          " (the file is corrupt)");
    }
  }
  HAMLET_RETURN_IF_ERROR(
      reader.ExpectBytes(kModelFooter, sizeof(kModelFooter), "footer"));
  return loaded;
}

Status SaveModelToFile(const ml::Classifier& model, const std::string& path) {
  // Temp sibling in the same directory, so the final rename is atomic
  // (same filesystem) and a crash leaves at worst a recognisable .tmp.
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  Status st = SaveToTemp(model, tmp);
  if (st.ok()) {
    st = fault::Inject(fault::kSiteSaveRename, path);
    if (st.ok() && std::rename(tmp.c_str(), path.c_str()) != 0) {
      st = Status::Internal("cannot rename " + tmp + " to " + path + " (" +
                            ErrnoText(errno) + ")");
    }
  }
  if (!st.ok()) {
    std::remove(tmp.c_str());  // never leave a partial temp behind
    return st;
  }
  // Make the directory entry durable. Failure here means the data is
  // safe but the rename may not survive a power cut — report it.
  return FsyncPath(DirOf(path));
}

Result<std::unique_ptr<ml::Classifier>> LoadModelFromFile(
    const std::string& path) {
  {
    const Status st = fault::Inject(fault::kSiteLoadOpen, path);
    if (!st.ok()) return st;
  }
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    return Status::NotFound("cannot open model file: " + path + " (" +
                            ErrnoText(errno) + ")");
  }
  if (fault::Enabled()) {
    // Interpose the fault adapter so io.load.read can fail any read.
    fault::FaultInjectingStreambuf buf(is.rdbuf(), nullptr,
                                       fault::kSiteLoadRead);
    std::istream faulty(&buf);
    return LoadModel(faulty);
  }
  return LoadModel(is);
}

Result<std::unique_ptr<ml::Classifier>> LoadModelFromFileWithRetry(
    const std::string& path, const LoadRetryConfig& config) {
  const int attempts = config.max_attempts < 1 ? 1 : config.max_attempts;
  std::chrono::milliseconds backoff = config.initial_backoff;
  Status last = Status::Internal("unreachable");
  for (int attempt = 1; attempt <= attempts; ++attempt) {
    Result<std::unique_ptr<ml::Classifier>> loaded = LoadModelFromFile(path);
    if (loaded.ok() || !RetryableLoadFailure(loaded.status().code())) {
      return loaded;
    }
    last = loaded.status();
    if (attempt < attempts && backoff.count() > 0) {
      std::this_thread::sleep_for(backoff);
      backoff = std::min(backoff * 2, config.max_backoff);
    }
  }
  return Status::FromCode(last.code(),
                          last.message() + " (after " +
                              std::to_string(attempts) + " attempts)");
}

}  // namespace io
}  // namespace hamlet
