#include "hamlet/io/serialize.h"

#include <fstream>
#include <utility>

#include "hamlet/io/model_io.h"
#include "hamlet/ml/ann/mlp.h"
#include "hamlet/ml/knn/one_nn.h"
#include "hamlet/ml/linear/logistic_regression.h"
#include "hamlet/ml/majority.h"
#include "hamlet/ml/nb/naive_bayes.h"
#include "hamlet/ml/svm/svm.h"
#include "hamlet/ml/tree/decision_tree.h"

namespace hamlet {
namespace io {

namespace {

/// Narrows a loaded concrete learner into the Classifier-typed Result,
/// restoring the header's domain metadata on the way.
template <typename T>
Result<std::unique_ptr<ml::Classifier>> Finish(
    Result<std::unique_ptr<T>> loaded, std::vector<uint32_t> domains) {
  if (!loaded.ok()) return loaded.status();
  std::unique_ptr<ml::Classifier> model = std::move(loaded.value());
  model->RestoreTrainDomains(std::move(domains));
  return Result<std::unique_ptr<ml::Classifier>>(std::move(model));
}

}  // namespace

Status SaveModel(const ml::Classifier& model, std::ostream& os) {
  if (model.family() == ml::ModelFamily::kUnsupported) {
    return Status::FailedPrecondition(
        model.name() + ": model family has no serialized form");
  }
  if (model.train_domain_sizes().empty()) {
    return Status::FailedPrecondition(model.name() +
                                      ": Save before Fit (no train domains)");
  }
  ModelWriter writer(os);
  writer.WriteRaw(kModelMagic, sizeof(kModelMagic));
  writer.WriteU32(kModelFormatVersion);
  writer.WriteU32(static_cast<uint32_t>(model.family()));
  writer.WriteU32Vec(model.train_domain_sizes());
  HAMLET_RETURN_IF_ERROR(writer.status());
  HAMLET_RETURN_IF_ERROR(model.SaveBody(writer));
  writer.WriteRaw(kModelFooter, sizeof(kModelFooter));
  return writer.status();
}

Result<std::unique_ptr<ml::Classifier>> LoadModel(std::istream& is) {
  ModelReader reader(is);
  HAMLET_RETURN_IF_ERROR(
      reader.ExpectBytes(kModelMagic, sizeof(kModelMagic), "magic"));
  uint32_t version, family_tag;
  HAMLET_RETURN_IF_ERROR(reader.ReadU32(&version));
  if (version != kModelFormatVersion) {
    return Status::InvalidArgument(
        "unsupported model format version " + std::to_string(version) +
        " (this build reads version " +
        std::to_string(kModelFormatVersion) + ")");
  }
  HAMLET_RETURN_IF_ERROR(reader.ReadU32(&family_tag));
  std::vector<uint32_t> domains;
  HAMLET_RETURN_IF_ERROR(reader.ReadU32Vec(&domains));
  if (domains.empty()) {
    return Status::InvalidArgument(
        "corrupt model: header has no feature domains");
  }

  Result<std::unique_ptr<ml::Classifier>> loaded =
      Status::Internal("unreachable");
  switch (static_cast<ml::ModelFamily>(family_tag)) {
    case ml::ModelFamily::kDecisionTree:
      loaded = Finish(ml::DecisionTree::LoadBody(reader, domains), domains);
      break;
    case ml::ModelFamily::kNaiveBayes:
      loaded = Finish(ml::NaiveBayes::LoadBody(reader, domains), domains);
      break;
    case ml::ModelFamily::kLogRegL1:
      loaded = Finish(ml::LogisticRegressionL1::LoadBody(reader, domains),
                      domains);
      break;
    case ml::ModelFamily::kKernelSvm:
      loaded = Finish(ml::KernelSvm::LoadBody(reader, domains), domains);
      break;
    case ml::ModelFamily::kOneNn:
      loaded =
          Finish(ml::OneNearestNeighbor::LoadBody(reader, domains), domains);
      break;
    case ml::ModelFamily::kMlp:
      loaded = Finish(ml::Mlp::LoadBody(reader, domains), domains);
      break;
    case ml::ModelFamily::kMajority:
      loaded =
          Finish(ml::MajorityClassifier::LoadBody(reader, domains), domains);
      break;
    case ml::ModelFamily::kUnsupported:
    default:
      return Status::InvalidArgument(
          "corrupt model: unknown model family tag " +
          std::to_string(family_tag));
  }
  if (!loaded.ok()) return loaded.status();
  HAMLET_RETURN_IF_ERROR(
      reader.ExpectBytes(kModelFooter, sizeof(kModelFooter), "footer"));
  return loaded;
}

Status SaveModelToFile(const ml::Classifier& model, const std::string& path) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) {
    return Status::InvalidArgument("cannot open model file for writing: " +
                                   path);
  }
  HAMLET_RETURN_IF_ERROR(SaveModel(model, os));
  os.flush();
  if (!os) return Status::Internal("write error on model file: " + path);
  return Status::OK();
}

Result<std::unique_ptr<ml::Classifier>> LoadModelFromFile(
    const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return Status::NotFound("cannot open model file: " + path);
  return LoadModel(is);
}

}  // namespace io
}  // namespace hamlet
