#include "hamlet/core/partial_avoidance.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

#include "hamlet/common/stringx.h"
#include "hamlet/core/variants.h"

namespace hamlet {
namespace core {

double MutualInformationWithLabel(const DataView& view,
                                  size_t view_feature) {
  const size_t n = view.num_rows();
  if (n == 0) return 0.0;
  const uint32_t domain = view.domain_size(view_feature);
  std::vector<double> joint(static_cast<size_t>(domain) * 2, 0.0);
  double pos = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const uint32_t c = view.feature(i, view_feature);
    joint[static_cast<size_t>(c) * 2 + view.label(i)] += 1.0;
    pos += view.label(i);
  }
  const double inv_n = 1.0 / static_cast<double>(n);
  const double py1 = pos * inv_n;
  const double py0 = 1.0 - py1;
  double mi = 0.0;
  for (uint32_t c = 0; c < domain; ++c) {
    const double n0 = joint[static_cast<size_t>(c) * 2 + 0] * inv_n;
    const double n1 = joint[static_cast<size_t>(c) * 2 + 1] * inv_n;
    const double px = n0 + n1;
    if (px <= 0.0) continue;
    // I = sum p(x,y) log( p(x,y) / (p(x)p(y)) )
    if (n0 > 0.0) mi += n0 * std::log(n0 / (px * py0));
    if (n1 > 0.0) mi += n1 * std::log(n1 / (px * py1));
  }
  // Guard against tiny negative values from rounding.
  return mi > 0.0 ? mi : 0.0;
}

std::vector<RankedFeature> RankForeignFeatures(const Dataset& data,
                                               const DataView& train) {
  std::vector<RankedFeature> out;
  for (uint32_t c = 0; c < data.num_features(); ++c) {
    const FeatureSpec& spec = data.feature_spec(c);
    if (spec.role != FeatureRole::kForeign) continue;
    // Locate this dataset column inside the training view.
    size_t view_j = train.num_features();
    for (size_t j = 0; j < train.num_features(); ++j) {
      if (train.feature_id(j) == c) {
        view_j = j;
        break;
      }
    }
    if (view_j == train.num_features()) continue;  // not in the view
    out.push_back(RankedFeature{
        c, spec.dim_index, MutualInformationWithLabel(train, view_j)});
  }
  std::sort(out.begin(), out.end(),
            [](const RankedFeature& a, const RankedFeature& b) {
              if (a.mutual_information != b.mutual_information) {
                return a.mutual_information > b.mutual_information;
              }
              return a.column < b.column;
            });
  return out;
}

std::vector<uint32_t> SelectPartialAvoidance(const Dataset& data,
                                             const DataView& train,
                                             size_t keep_per_dim) {
  // Start from NoJoin (home + FKs + open-domain dims' foreign features).
  std::vector<uint32_t> cols = SelectVariant(data, FeatureVariant::kNoJoin);
  std::vector<bool> selected(data.num_features(), false);
  for (uint32_t c : cols) selected[c] = true;

  // Add the top-k foreign features per closed-domain dimension.
  std::map<int, size_t> taken;
  for (const RankedFeature& rf : RankForeignFeatures(data, train)) {
    if (selected[rf.column]) continue;  // already kept (open-domain dim)
    if (taken[rf.dim_index] >= keep_per_dim) continue;
    selected[rf.column] = true;
    ++taken[rf.dim_index];
  }

  std::vector<uint32_t> out;
  for (uint32_t c = 0; c < data.num_features(); ++c) {
    if (selected[c]) out.push_back(c);
  }
  return out;
}

std::string FormatRanking(const Dataset& data,
                          const std::vector<RankedFeature>& ranking) {
  std::ostringstream out;
  out << PadRight("feature", 28) << PadLeft("dim", 5)
      << PadLeft("I(Y;X) nats", 14) << "\n";
  for (const RankedFeature& rf : ranking) {
    out << PadRight(data.feature_spec(rf.column).name, 28)
        << PadLeft(std::to_string(rf.dim_index), 5)
        << PadLeft(FormatDouble(rf.mutual_information, 5), 14) << "\n";
  }
  return out.str();
}

}  // namespace core
}  // namespace hamlet
