#include "hamlet/core/advisor.h"

#include <algorithm>
#include <sstream>

#include "hamlet/common/stringx.h"

namespace hamlet {
namespace core {

const char* ModelFamilyName(ModelFamily family) {
  switch (family) {
    case ModelFamily::kLinear:
      return "linear";
    case ModelFamily::kRbfSvm:
      return "rbf-svm";
    case ModelFamily::kDecisionTree:
      return "decision-tree";
    case ModelFamily::kAnn:
      return "ann";
    case ModelFamily::kOneNn:
      return "1nn";
  }
  return "unknown";
}

double SafetyThreshold(ModelFamily family) {
  switch (family) {
    case ModelFamily::kLinear:
      return 20.0;  // Kumar et al. (SIGMOD 2016), confirmed in §3.3
    case ModelFamily::kRbfSvm:
      return 6.0;   // §3.3: 11 of 14 tables safely discarded at ~6x
    case ModelFamily::kDecisionTree:
    case ModelFamily::kAnn:
      return 3.0;   // §3.3: 13 of 14 tables safely discarded at ~3x
    case ModelFamily::kOneNn:
      return 100.0;  // §4.1: deviation starts even at 100x
  }
  return 20.0;
}

const char* JoinAdviceName(JoinAdvice advice) {
  switch (advice) {
    case JoinAdvice::kSafeToAvoid:
      return "safe-to-avoid";
    case JoinAdvice::kBorderline:
      return "borderline";
    case JoinAdvice::kKeepJoin:
      return "keep-join";
    case JoinAdvice::kNeverAvoid:
      return "never-avoid";
  }
  return "unknown";
}

std::vector<DimensionAdvice> AdviseJoins(
    const StarSchema& star, ModelFamily family, double train_fraction,
    const std::vector<size_t>& open_domain_fks) {
  std::vector<DimensionAdvice> out;
  const double threshold = SafetyThreshold(family);
  for (size_t i = 0; i < star.num_dimensions(); ++i) {
    DimensionAdvice advice;
    advice.dimension_name = star.dimension(i).name;
    advice.tuple_ratio = train_fraction * star.TupleRatio(i);
    advice.threshold = threshold;

    const bool open_domain =
        std::find(open_domain_fks.begin(), open_domain_fks.end(), i) !=
        open_domain_fks.end();
    std::ostringstream why;
    if (open_domain) {
      advice.advice = JoinAdvice::kNeverAvoid;
      why << "FK domain is open (future values unseen in training); FK "
             "cannot be a feature, so the dimension's features must be "
             "joined in if wanted";
    } else if (advice.tuple_ratio >= 1.5 * threshold) {
      advice.advice = JoinAdvice::kSafeToAvoid;
      why << "tuple ratio " << FormatDouble(advice.tuple_ratio, 1)
          << " clears the " << ModelFamilyName(family) << " threshold of "
          << FormatDouble(threshold, 0)
          << "x with margin; FK can represent the foreign features";
    } else if (advice.tuple_ratio >= threshold) {
      advice.advice = JoinAdvice::kBorderline;
      why << "tuple ratio " << FormatDouble(advice.tuple_ratio, 1)
          << " is just above the " << ModelFamilyName(family)
          << " threshold of " << FormatDouble(threshold, 0)
          << "x; expected safe, but validate on holdout data";
    } else {
      advice.advice = JoinAdvice::kKeepJoin;
      why << "tuple ratio " << FormatDouble(advice.tuple_ratio, 1)
          << " is below the " << ModelFamilyName(family) << " threshold of "
          << FormatDouble(threshold, 0)
          << "x; avoiding this join risks extra overfitting (note: the "
             "ratio is a conservative indicator — the error may not "
             "actually rise)";
    }
    advice.rationale = why.str();
    out.push_back(std::move(advice));
  }
  return out;
}

std::string FormatAdvice(const std::vector<DimensionAdvice>& advice) {
  std::ostringstream out;
  out << PadRight("dimension", 16) << PadLeft("tuple-ratio", 12)
      << PadLeft("threshold", 11) << "  " << PadRight("advice", 15)
      << "rationale\n";
  for (const auto& a : advice) {
    out << PadRight(a.dimension_name, 16)
        << PadLeft(FormatDouble(a.tuple_ratio, 1), 12)
        << PadLeft(FormatDouble(a.threshold, 0), 11) << "  "
        << PadRight(JoinAdviceName(a.advice), 15) << a.rationale << "\n";
  }
  return out.str();
}

}  // namespace core
}  // namespace hamlet
