// Foreign-key domain compression (paper §6.1).
//
// Large FK domains make trees unreadable. Given a budget l << |D_FK|, build
// a mapping f: [m] -> [l] and relearn on the compressed column. Two
// methods from the paper:
//   * Random  — the feature-hashing trick: f(v) = hash(v) mod l.
//   * Sorted  — supervised: sort codes by H(Y | FK = v) estimated on the
//     training rows, take the l-1 largest adjacent differences as bucket
//     boundaries; groups codes with similar conditional entropy so
//     H(Y | f(FK)) stays close to H(Y | FK).

#ifndef HAMLET_CORE_FK_COMPRESSION_H_
#define HAMLET_CORE_FK_COMPRESSION_H_

#include <cstdint>
#include <vector>

#include "hamlet/common/status.h"
#include "hamlet/data/dataset.h"
#include "hamlet/data/view.h"

namespace hamlet {
namespace core {

/// Compression method.
enum class CompressionMethod {
  kRandomHash,
  kSortedEntropy,
};

const char* CompressionMethodName(CompressionMethod method);

/// A code mapping old-domain -> new-domain.
struct DomainMapping {
  std::vector<uint32_t> map;  ///< size = old domain
  uint32_t new_domain = 0;
};

/// Builds a random-hash mapping from domain `m` to `budget` buckets.
DomainMapping BuildRandomHashMapping(uint32_t m, uint32_t budget,
                                     uint64_t seed);

/// Builds the supervised sort-based mapping for column `col` using only
/// the rows of `train` (labels included). Codes never seen in training are
/// assigned to bucket 0.
Result<DomainMapping> BuildSortedEntropyMapping(const DataView& train,
                                                size_t view_feature,
                                                uint32_t budget);

/// Applies `mapping` to column `col` of `data` in place (all rows: the
/// paper compresses the whole dataset after fitting f on the train split).
Status ApplyMapping(Dataset& data, size_t col, const DomainMapping& mapping);

/// H(Y | f(FK)) on the given view for a compressed column (diagnostic used
/// in tests: sorted-entropy compression should not raise it much).
double ConditionalEntropy(const DataView& view, size_t view_feature);

}  // namespace core
}  // namespace hamlet

#endif  // HAMLET_CORE_FK_COMPRESSION_H_
