#include "hamlet/core/fk_smoothing.h"

#include <cassert>
#include <limits>

#include "hamlet/common/rng.h"

namespace hamlet {
namespace core {

const char* SmoothingMethodName(SmoothingMethod method) {
  switch (method) {
    case SmoothingMethod::kRandom:
      return "random";
    case SmoothingMethod::kXrBased:
      return "xr-based";
  }
  return "unknown";
}

std::vector<uint8_t> SeenCodes(const DataView& train, size_t view_feature) {
  std::vector<uint8_t> seen(train.domain_size(view_feature), 0);
  for (size_t i = 0; i < train.num_rows(); ++i) {
    seen[train.feature(i, view_feature)] = 1;
  }
  return seen;
}

Result<SmoothingMap> BuildRandomSmoothing(const std::vector<uint8_t>& seen,
                                          uint64_t seed) {
  std::vector<uint32_t> seen_codes;
  for (uint32_t v = 0; v < seen.size(); ++v) {
    if (seen[v]) seen_codes.push_back(v);
  }
  if (seen_codes.empty()) {
    return Status::FailedPrecondition("no codes seen in training");
  }
  Rng rng(seed);
  SmoothingMap out;
  out.map.resize(seen.size());
  for (uint32_t v = 0; v < seen.size(); ++v) {
    if (seen[v]) {
      out.map[v] = v;
    } else {
      out.map[v] = seen_codes[rng.UniformInt(seen_codes.size())];
      ++out.num_unseen;
    }
  }
  return out;
}

Result<SmoothingMap> BuildXrSmoothing(const std::vector<uint8_t>& seen,
                                      const Table& dimension) {
  if (seen.size() != dimension.num_rows()) {
    return Status::InvalidArgument(
        "seen bitmap size must equal the dimension cardinality");
  }
  std::vector<uint32_t> seen_codes;
  for (uint32_t v = 0; v < seen.size(); ++v) {
    if (seen[v]) seen_codes.push_back(v);
  }
  if (seen_codes.empty()) {
    return Status::FailedPrecondition("no codes seen in training");
  }

  const size_t dr = dimension.num_columns();
  SmoothingMap out;
  out.map.resize(seen.size());
  for (uint32_t v = 0; v < seen.size(); ++v) {
    if (seen[v]) {
      out.map[v] = v;
      continue;
    }
    ++out.num_unseen;
    // Minimum l0 distance between X_R rows; ties -> smallest code (the
    // seen_codes scan is in increasing order, strict < keeps the first).
    size_t best_dist = std::numeric_limits<size_t>::max();
    uint32_t best_code = seen_codes[0];
    for (uint32_t s : seen_codes) {
      size_t dist = 0;
      for (size_t c = 0; c < dr; ++c) {
        dist += dimension.at(v, c) != dimension.at(s, c);
        if (dist >= best_dist) break;
      }
      if (dist < best_dist) {
        best_dist = dist;
        best_code = s;
        if (dist == 0) break;
      }
    }
    out.map[v] = best_code;
  }
  return out;
}

Status ApplySmoothing(Dataset& data, size_t col, const SmoothingMap& map) {
  if (col >= data.num_features()) return Status::OutOfRange("no such column");
  const uint32_t domain = data.feature_spec(col).domain_size;
  if (map.map.size() != domain) {
    return Status::InvalidArgument("smoothing map/domain size mismatch");
  }
  std::vector<uint32_t> codes = data.column(col);
  for (uint32_t& c : codes) c = map.map[c];
  return data.ReplaceColumn(col, std::move(codes), domain);
}

}  // namespace core
}  // namespace hamlet
