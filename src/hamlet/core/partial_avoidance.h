// Partial join avoidance — the paper's §5.2 open question, implemented.
//
// "The axioms of FDs imply that foreign features can be divided into
// arbitrary subsets before being avoided, which opens up a new trade-off
// space between fully avoiding a foreign table and fully using it."
//
// This module ranks a dimension's foreign features by their estimated
// mutual information with the target on the training split and builds
// feature sets that keep only the top-k foreign features per dimension
// (plus FKs and home features). k = 0 degenerates to NoJoin; k = d_R to
// JoinAll. The bench `bench_ext_partial_avoidance` sweeps k and shows the
// trade-off curve.

#ifndef HAMLET_CORE_PARTIAL_AVOIDANCE_H_
#define HAMLET_CORE_PARTIAL_AVOIDANCE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "hamlet/common/status.h"
#include "hamlet/data/view.h"

namespace hamlet {
namespace core {

/// Mutual information I(Y; X_c) in nats, estimated from the view's rows by
/// plug-in frequencies. 0 <= I <= min(H(Y), log |domain|).
double MutualInformationWithLabel(const DataView& view, size_t view_feature);

/// One foreign feature's usefulness estimate.
struct RankedFeature {
  uint32_t column = 0;   ///< dataset column id
  int dim_index = -1;
  double mutual_information = 0.0;
};

/// Ranks all foreign features of `data` by I(Y; X) computed on `train`
/// (which must view all columns of `data`), descending; ties broken by
/// column id for determinism.
std::vector<RankedFeature> RankForeignFeatures(const Dataset& data,
                                               const DataView& train);

/// Feature subset keeping home features, FKs, foreign features of
/// open-domain dimensions (which NoJoin cannot drop either), and the
/// `keep_per_dim` highest-MI foreign features of every other dimension.
std::vector<uint32_t> SelectPartialAvoidance(
    const Dataset& data, const DataView& train, size_t keep_per_dim);

/// Formats the ranking as a table (diagnostics for the examples/bench).
std::string FormatRanking(const Dataset& data,
                          const std::vector<RankedFeature>& ranking);

}  // namespace core
}  // namespace hamlet

#endif  // HAMLET_CORE_PARTIAL_AVOIDANCE_H_
