#include "hamlet/core/experiment.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "hamlet/common/logging.h"

#include "hamlet/ml/ann/mlp.h"
#include "hamlet/ml/knn/one_nn.h"
#include "hamlet/ml/linear/logistic_regression.h"
#include "hamlet/ml/metrics.h"
#include "hamlet/ml/nb/backward_selection.h"
#include "hamlet/ml/nb/naive_bayes.h"
#include "hamlet/ml/svm/svm.h"
#include "hamlet/ml/tree/decision_tree.h"

namespace hamlet {
namespace core {

const char* ModelKindName(ModelKind kind) {
  switch (kind) {
    case ModelKind::kTreeGini:
      return "dt-gini";
    case ModelKind::kTreeInfoGain:
      return "dt-infogain";
    case ModelKind::kTreeGainRatio:
      return "dt-gainratio";
    case ModelKind::kOneNn:
      return "1nn";
    case ModelKind::kSvmLinear:
      return "svm-linear";
    case ModelKind::kSvmPoly:
      return "svm-poly";
    case ModelKind::kSvmRbf:
      return "svm-rbf";
    case ModelKind::kAnnMlp:
      return "ann";
    case ModelKind::kNaiveBayesBackward:
      return "nb-bfs";
    case ModelKind::kLogRegL1:
      return "logreg-l1";
  }
  return "unknown";
}

BenchMode BenchModeFromEnv() {
  const char* mode = std::getenv("HAMLET_BENCH_MODE");
  if (mode == nullptr || *mode == '\0') return BenchMode::kQuick;
  const std::string value(mode);
  if (value == "full") return BenchMode::kFull;
  if (value == "smoke") return BenchMode::kSmoke;
  if (value == "quick") return BenchMode::kQuick;
  // A typo like "fulll" used to silently run quick mode; make the fallback
  // explicit. Warn once per distinct value — this parser runs on every
  // bench helper call and must not flood stderr.
  if (FirstOccurrence("bench_mode:" + value)) {
    std::fprintf(stderr,
                 "hamlet: unrecognized HAMLET_BENCH_MODE=\"%s\" (expected "
                 "smoke|quick|full); falling back to quick mode\n",
                 value.c_str());
  }
  return BenchMode::kQuick;
}

Effort EffortFromEnv() {
  return BenchModeFromEnv() == BenchMode::kFull ? Effort::kFull
                                                : Effort::kQuick;
}

Result<PreparedData> Prepare(const StarSchema& star, uint64_t split_seed,
                             const JoinOptions& join_options) {
  Result<Dataset> joined = JoinAllTables(star, join_options);
  if (!joined.ok()) return joined.status();
  PreparedData out{std::move(joined).value(), {}};
  out.split = SplitPaper(out.data.num_rows(), split_seed);
  return out;
}

ml::ParamGrid GridFor(ModelKind kind, Effort effort) {
  ml::ParamGrid grid;
  const bool full = effort == Effort::kFull;
  switch (kind) {
    case ModelKind::kTreeGini:
    case ModelKind::kTreeInfoGain:
    case ModelKind::kTreeGainRatio:
      // Paper: minsplit in {1,10,100,1000}, cp in {1e-4,1e-3,0.01,0.1,0}.
      if (full) {
        grid.Add("minsplit", {1, 10, 100, 1000})
            .Add("cp", {1e-4, 1e-3, 0.01, 0.1, 0.0});
      } else {
        grid.Add("minsplit", {10, 100}).Add("cp", {1e-4, 1e-3, 0.0});
      }
      break;
    case ModelKind::kOneNn:
      break;  // no hyper-parameters (RWeka IB1)
    case ModelKind::kSvmLinear:
      // Paper: C in {0.1, 1, 10, 100, 1000}.
      // Quick mode keeps the small-C half of the axis: large C on noisy
      // one-hot data needs an SMO budget quick mode does not have.
      grid.Add("C", full ? std::vector<double>{0.1, 1, 10, 100, 1000}
                         : std::vector<double>{0.1, 1});
      break;
    case ModelKind::kSvmPoly:
    case ModelKind::kSvmRbf:
      // Paper: C as above, gamma in {1e-4,...,10}.
      if (full) {
        grid.Add("C", {0.1, 1, 10, 100, 1000})
            .Add("gamma", {1e-4, 1e-3, 0.01, 0.1, 1, 10});
      } else {
        grid.Add("C", {1, 100}).Add("gamma", {0.01, 0.1, 1});
      }
      break;
    case ModelKind::kAnnMlp:
      // Paper: L2 in {1e-4,1e-3,1e-2}, lr in {1e-3,1e-2,1e-1}.
      if (full) {
        grid.Add("l2", {1e-4, 1e-3, 1e-2}).Add("lr", {1e-3, 1e-2, 1e-1});
      } else {
        grid.Add("l2", {1e-3}).Add("lr", {1e-2, 1e-1});
      }
      break;
    case ModelKind::kNaiveBayesBackward:
      break;  // no hyper-parameters (selection happens inside Fit)
    case ModelKind::kLogRegL1:
      break;  // glmnet-style internal lambda path
  }
  return grid;
}

ml::ModelFactory FactoryFor(ModelKind kind, const PreparedData& prepared,
                            const std::vector<uint32_t>& features,
                            Effort effort) {
  using ml::ParamOr;
  const DataView val(&prepared.data, prepared.split.val, features);
  const bool full = effort == Effort::kFull;

  switch (kind) {
    case ModelKind::kTreeGini:
    case ModelKind::kTreeInfoGain:
    case ModelKind::kTreeGainRatio: {
      ml::SplitCriterion crit = ml::SplitCriterion::kGini;
      if (kind == ModelKind::kTreeInfoGain) {
        crit = ml::SplitCriterion::kInfoGain;
      } else if (kind == ModelKind::kTreeGainRatio) {
        crit = ml::SplitCriterion::kGainRatio;
      }
      return [crit](const ml::ParamMap& p) {
        ml::DecisionTreeConfig cfg;
        cfg.criterion = crit;
        cfg.minsplit = static_cast<size_t>(ParamOr(p, "minsplit", 10));
        cfg.cp = ParamOr(p, "cp", 0.001);
        return std::make_unique<ml::DecisionTree>(cfg);
      };
    }
    case ModelKind::kOneNn:
      return [](const ml::ParamMap&) {
        return std::make_unique<ml::OneNearestNeighbor>();
      };
    case ModelKind::kSvmLinear:
    case ModelKind::kSvmPoly:
    case ModelKind::kSvmRbf: {
      ml::KernelType kt = ml::KernelType::kRbf;
      if (kind == ModelKind::kSvmLinear) kt = ml::KernelType::kLinear;
      if (kind == ModelKind::kSvmPoly) kt = ml::KernelType::kPoly;
      const size_t cap = full ? 3000 : 1200;
      // SMO needs an update budget that scales with n; starving it makes
      // large-C fits return garbage mid-optimisation.
      const size_t iters = full ? 400000 : 200000;
      return [kt, cap, iters](const ml::ParamMap& p) {
        ml::SvmConfig cfg;
        cfg.kernel.type = kt;
        cfg.kernel.gamma = ParamOr(p, "gamma", 0.1);
        cfg.kernel.degree = 2;
        cfg.C = ParamOr(p, "C", 1.0);
        cfg.max_train_rows = cap;
        cfg.max_iterations = iters;
        return std::make_unique<ml::KernelSvm>(cfg);
      };
    }
    case ModelKind::kAnnMlp: {
      const size_t epochs = full ? 20 : 8;
      return [epochs](const ml::ParamMap& p) {
        ml::MlpConfig cfg;
        cfg.hidden_sizes = {256, 64};
        cfg.learning_rate = ParamOr(p, "lr", 1e-2);
        cfg.l2 = ParamOr(p, "l2", 1e-3);
        cfg.epochs = epochs;
        return std::make_unique<ml::Mlp>(cfg);
      };
    }
    case ModelKind::kNaiveBayesBackward:
      return [val](const ml::ParamMap&) {
        return std::make_unique<ml::BackwardSelectionClassifier>(
            [] { return std::make_unique<ml::NaiveBayes>(); }, val);
      };
    case ModelKind::kLogRegL1: {
      const size_t nlambda = full ? 100 : 15;
      return [val, nlambda, full](const ml::ParamMap&) {
        ml::LogisticRegressionConfig cfg;
        cfg.nlambda = nlambda;
        // The paper sets glmnet's thresh=1e-3, but glmnet measures
        // per-coordinate movement; our proximal objective needs a tighter
        // stop (and a deeper path) to reach comparable fits.
        // glmnet's n > d default: lambda_min = 1e-4 * lambda_max. The
        // joined feature sets mix frequent (X_R prototype) and rare (FK
        // code) one-hot units, so the path must reach far enough down for
        // the rare units' weights to activate.
        cfg.lambda_min_ratio = 1e-4;
        cfg.maxit = full ? 10000 : 3000;
        cfg.thresh = 1e-5;
        cfg.has_validation = true;
        cfg.validation = val;
        return std::make_unique<ml::LogisticRegressionL1>(cfg);
      };
    }
  }
  return nullptr;
}

Result<VariantResult> RunOnFeatures(const PreparedData& prepared,
                                    ModelKind kind,
                                    const std::vector<uint32_t>& features,
                                    const std::string& variant_name,
                                    Effort effort) {
  const SplitViews views =
      MakeSplitViews(prepared.data, prepared.split, features);

  const auto t0 = std::chrono::steady_clock::now();
  Result<ml::GridSearchResult> search =
      ml::GridSearch(FactoryFor(kind, prepared, features, effort),
                     GridFor(kind, effort), views.train, views.val);
  if (!search.ok()) return search.status();
  const auto t1 = std::chrono::steady_clock::now();

  VariantResult out;
  out.variant_name = variant_name;
  out.best_params = search.value().best_params;
  out.val_accuracy = search.value().best_val_accuracy;
  const ml::Classifier& model = *search.value().best_model;
  out.test_accuracy = ml::Accuracy(model, views.test);
  out.train_accuracy = ml::Accuracy(model, views.train);
  out.seconds = std::chrono::duration<double>(t1 - t0).count();
  return out;
}

Result<VariantResult> RunVariant(const PreparedData& prepared, ModelKind kind,
                                 FeatureVariant variant, Effort effort) {
  return RunOnFeatures(prepared, kind, SelectVariant(prepared.data, variant),
                       FeatureVariantName(variant), effort);
}

}  // namespace core
}  // namespace hamlet
