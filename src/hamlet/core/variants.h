// Feature-variant construction: JoinAll / NoJoin / NoFK and the Table-4
// drop-one-dimension subsets.
//
// All variants are feature-id subsets over the single materialised join
// output, selected purely by FeatureRole/dim tags — NoJoin provably never
// reads a foreign-feature column.

#ifndef HAMLET_CORE_VARIANTS_H_
#define HAMLET_CORE_VARIANTS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "hamlet/data/dataset.h"

namespace hamlet {
namespace core {

/// The three approaches the paper compares (§3.2).
enum class FeatureVariant {
  kJoinAll,  ///< X_S + FKs + all X_R (current widespread practice)
  kNoJoin,   ///< X_S + FKs only (avoid all joins a priori)
  kNoFK,     ///< X_S + all X_R, FKs dropped
};

const char* FeatureVariantName(FeatureVariant v);

/// Column ids of `data` matching the variant.
std::vector<uint32_t> SelectVariant(const Dataset& data, FeatureVariant v);

/// JoinAll minus the foreign features of the dimensions in `dims_to_drop`
/// (their FK columns are kept — the Table 4 "NoR_i" robustness study).
std::vector<uint32_t> SelectDroppingDimensions(
    const Dataset& data, const std::vector<int>& dims_to_drop);

/// Column ids of all FK columns (helper for compression/smoothing).
std::vector<uint32_t> ForeignKeyColumns(const Dataset& data);

/// Column ids of dimension `dim`'s foreign features.
std::vector<uint32_t> ForeignFeatureColumns(const Dataset& data, int dim);

}  // namespace core
}  // namespace hamlet

#endif  // HAMLET_CORE_VARIANTS_H_
