#include "hamlet/core/variants.h"

#include <algorithm>

namespace hamlet {
namespace core {

const char* FeatureVariantName(FeatureVariant v) {
  switch (v) {
    case FeatureVariant::kJoinAll:
      return "JoinAll";
    case FeatureVariant::kNoJoin:
      return "NoJoin";
    case FeatureVariant::kNoFK:
      return "NoFK";
  }
  return "unknown";
}

std::vector<uint32_t> SelectVariant(const Dataset& data, FeatureVariant v) {
  // Dimensions with an FK column in the joined output. A dimension without
  // one has an open-domain FK (e.g. Expedia's search id): the paper notes
  // such a table "can never be discarded" — its FK cannot act as a
  // representative — so NoJoin must keep its foreign features.
  std::vector<bool> has_fk;
  for (uint32_t c = 0; c < data.num_features(); ++c) {
    const FeatureSpec& spec = data.feature_spec(c);
    if (spec.dim_index >= 0 &&
        static_cast<size_t>(spec.dim_index) >= has_fk.size()) {
      has_fk.resize(static_cast<size_t>(spec.dim_index) + 1, false);
    }
    if (spec.role == FeatureRole::kForeignKey) {
      has_fk[static_cast<size_t>(spec.dim_index)] = true;
    }
  }

  std::vector<uint32_t> cols;
  for (uint32_t c = 0; c < data.num_features(); ++c) {
    const FeatureSpec& spec = data.feature_spec(c);
    bool keep = false;
    switch (spec.role) {
      case FeatureRole::kHome:
        keep = true;
        break;
      case FeatureRole::kForeignKey:
        keep = v != FeatureVariant::kNoFK;
        break;
      case FeatureRole::kForeign:
        keep = v != FeatureVariant::kNoJoin ||
               !has_fk[static_cast<size_t>(spec.dim_index)];
        break;
    }
    if (keep) cols.push_back(c);
  }
  return cols;
}

std::vector<uint32_t> SelectDroppingDimensions(
    const Dataset& data, const std::vector<int>& dims_to_drop) {
  std::vector<uint32_t> cols;
  for (uint32_t c = 0; c < data.num_features(); ++c) {
    const FeatureSpec& spec = data.feature_spec(c);
    const bool dropped_dim =
        std::find(dims_to_drop.begin(), dims_to_drop.end(),
                  spec.dim_index) != dims_to_drop.end();
    if (spec.role == FeatureRole::kForeign && dropped_dim) continue;
    cols.push_back(c);
  }
  return cols;
}

std::vector<uint32_t> ForeignKeyColumns(const Dataset& data) {
  std::vector<uint32_t> cols;
  for (uint32_t c = 0; c < data.num_features(); ++c) {
    if (data.feature_spec(c).role == FeatureRole::kForeignKey) {
      cols.push_back(c);
    }
  }
  return cols;
}

std::vector<uint32_t> ForeignFeatureColumns(const Dataset& data, int dim) {
  std::vector<uint32_t> cols;
  for (uint32_t c = 0; c < data.num_features(); ++c) {
    const FeatureSpec& spec = data.feature_spec(c);
    if (spec.role == FeatureRole::kForeign && spec.dim_index == dim) {
      cols.push_back(c);
    }
  }
  return cols;
}

}  // namespace core
}  // namespace hamlet
