// Experiment runner: the paper's §3.2 methodology as a reusable harness.
//
// For a star schema (real-world simulator output or a synthetic scenario),
// the runner materialises the join once, builds the 50/25/25 split, and for
// each requested feature variant runs validation-set grid search for a
// model family, reporting holdout-test and training accuracy plus wall
// time. Tables 2-6 and Figure 1 are thin wrappers over this.

#ifndef HAMLET_CORE_EXPERIMENT_H_
#define HAMLET_CORE_EXPERIMENT_H_

#include <memory>
#include <string>
#include <vector>

#include "hamlet/common/status.h"
#include "hamlet/core/variants.h"
#include "hamlet/data/split.h"
#include "hamlet/ml/grid_search.h"
#include "hamlet/relational/join.h"
#include "hamlet/relational/star_schema.h"

namespace hamlet {
namespace core {

/// Which classifier to run, with its paper grid.
enum class ModelKind {
  kTreeGini,
  kTreeInfoGain,
  kTreeGainRatio,
  kOneNn,
  kSvmLinear,
  kSvmPoly,
  kSvmRbf,
  kAnnMlp,
  kNaiveBayesBackward,
  kLogRegL1,
};

const char* ModelKindName(ModelKind kind);

/// Effort level for grids and training budgets. kQuick shrinks the grids
/// to keep the full bench suite in minutes; kFull uses the paper's grids.
enum class Effort { kQuick, kFull };

/// The three bench tiers selected by HAMLET_BENCH_MODE: "smoke", "quick"
/// and "full" are recognised; unset/empty means kQuick, and any other
/// value falls back to kQuick with a one-time stderr warning.
/// Grids only distinguish kQuick/kFull (see EffortFromEnv); the bench
/// layer additionally uses kSmoke to shrink run counts and data sizes.
enum class BenchMode { kSmoke, kQuick, kFull };

/// The single parser of HAMLET_BENCH_MODE.
BenchMode BenchModeFromEnv();

/// Grid effort implied by BenchModeFromEnv() (kFull -> kFull, else
/// kQuick).
Effort EffortFromEnv();

/// A joined dataset with its split, ready for variant experiments.
struct PreparedData {
  Dataset data;
  TrainValTest split;
};

/// Joins `star` and builds the 50/25/25 split.
Result<PreparedData> Prepare(const StarSchema& star, uint64_t split_seed,
                             const JoinOptions& join_options = {});

/// Result of one (model, feature subset) experiment.
struct VariantResult {
  std::string variant_name;
  double test_accuracy = 0.0;
  double train_accuracy = 0.0;
  double val_accuracy = 0.0;
  double seconds = 0.0;
  ml::ParamMap best_params;
};

/// Grid-searches `kind` on an explicit feature subset.
Result<VariantResult> RunOnFeatures(const PreparedData& prepared,
                                    ModelKind kind,
                                    const std::vector<uint32_t>& features,
                                    const std::string& variant_name,
                                    Effort effort);

/// Grid-searches `kind` on a named variant (JoinAll / NoJoin / NoFK).
Result<VariantResult> RunVariant(const PreparedData& prepared, ModelKind kind,
                                 FeatureVariant variant, Effort effort);

/// The paper's hyper-parameter grid for `kind` (scaled down for kQuick).
ml::ParamGrid GridFor(ModelKind kind, Effort effort);

/// Model factory honouring the grid's parameter names. `prepared` supplies
/// the validation view needed by backward selection and the glmnet-style
/// lambda-path selection; `features` is the active feature subset.
ml::ModelFactory FactoryFor(ModelKind kind, const PreparedData& prepared,
                            const std::vector<uint32_t>& features,
                            Effort effort);

}  // namespace core
}  // namespace hamlet

#endif  // HAMLET_CORE_EXPERIMENT_H_
