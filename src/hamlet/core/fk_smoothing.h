// Foreign-key smoothing for FK values unseen in training (paper §6.2).
//
// With a large |D_FK|, some FK values in D_FK never occur among the
// training rows but do occur at test time (not cold start: the domain is
// known). Popular tree packages crash on such values. Smoothing reassigns
// an unseen FK value to a seen one:
//   * Random — uniformly among the seen values.
//   * XrBased — to the seen value whose dimension-row X_R is closest in
//     l0 (count of mismatching foreign features); uses the dimension
//     table as side information even when its features are not learned
//     over (the "best of both worlds" observation).

#ifndef HAMLET_CORE_FK_SMOOTHING_H_
#define HAMLET_CORE_FK_SMOOTHING_H_

#include <cstdint>
#include <vector>

#include "hamlet/common/status.h"
#include "hamlet/data/dataset.h"
#include "hamlet/data/view.h"
#include "hamlet/relational/table.h"

namespace hamlet {
namespace core {

/// Reassignment strategy for unseen FK values.
enum class SmoothingMethod {
  kRandom,
  kXrBased,
};

const char* SmoothingMethodName(SmoothingMethod method);

/// A full-domain FK rewrite: seen codes map to themselves, unseen codes map
/// to some seen code.
struct SmoothingMap {
  std::vector<uint32_t> map;  ///< size = |D_FK|
  size_t num_unseen = 0;
};

/// Codes of `view_feature` occurring in `train` (bitmap of size domain).
std::vector<uint8_t> SeenCodes(const DataView& train, size_t view_feature);

/// Random reassignment of unseen codes to seen ones.
Result<SmoothingMap> BuildRandomSmoothing(const std::vector<uint8_t>& seen,
                                          uint64_t seed);

/// X_R-based reassignment: unseen code u maps to the seen code whose row in
/// `dimension` has minimal l0 distance to u's row (ties: smallest code).
Result<SmoothingMap> BuildXrSmoothing(const std::vector<uint8_t>& seen,
                                      const Table& dimension);

/// Rewrites column `col` of `data` through the smoothing map (domain size
/// is unchanged; only unseen codes move).
Status ApplySmoothing(Dataset& data, size_t col, const SmoothingMap& map);

}  // namespace core
}  // namespace hamlet

#endif  // HAMLET_CORE_FK_SMOOTHING_H_
