#include "hamlet/core/fk_compression.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "hamlet/common/rng.h"

namespace hamlet {
namespace core {

namespace {

/// Binary entropy in nats from (pos, total); 0 for empty/pure.
double BinaryEntropy(double pos, double total) {
  if (total <= 0.0 || pos <= 0.0 || pos >= total) return 0.0;
  const double p = pos / total;
  return -p * std::log(p) - (1.0 - p) * std::log(1.0 - p);
}

}  // namespace

const char* CompressionMethodName(CompressionMethod method) {
  switch (method) {
    case CompressionMethod::kRandomHash:
      return "random-hash";
    case CompressionMethod::kSortedEntropy:
      return "sorted-entropy";
  }
  return "unknown";
}

DomainMapping BuildRandomHashMapping(uint32_t m, uint32_t budget,
                                     uint64_t seed) {
  assert(budget >= 1);
  DomainMapping out;
  out.new_domain = std::min(m, budget);
  out.map.resize(m);
  for (uint32_t v = 0; v < m; ++v) {
    // SplitMix64 as the hash; seed acts as the hash-family selector.
    uint64_t state = seed ^ (0x9e3779b97f4a7c15ULL * (v + 1));
    out.map[v] = static_cast<uint32_t>(SplitMix64(state) % out.new_domain);
  }
  return out;
}

Result<DomainMapping> BuildSortedEntropyMapping(const DataView& train,
                                                size_t view_feature,
                                                uint32_t budget) {
  if (view_feature >= train.num_features()) {
    return Status::OutOfRange("no such view feature");
  }
  if (budget < 1) return Status::InvalidArgument("budget must be >= 1");
  const uint32_t m = train.domain_size(view_feature);

  // Per-code label stats on the training rows.
  std::vector<double> pos(m, 0.0), total(m, 0.0);
  for (size_t i = 0; i < train.num_rows(); ++i) {
    const uint32_t c = train.feature(i, view_feature);
    total[c] += 1.0;
    pos[c] += train.label(i);
  }

  // Codes seen in training, sorted by the conditional positive rate
  // P(Y=1 | FK = v) (ties by code for determinism). The paper describes
  // sorting by H(Y | FK = z); we sort by the signed conditional instead
  // because the entropy is symmetric in the class direction — a pure-
  // positive and a pure-negative code both have H = 0 and would be merged,
  // destroying exactly the information the method tries to preserve.
  // Grouping by similar P(Y=1|FK) subsumes the stated intuition: codes in
  // one bucket have comparable conditionals, so H(Y | f(FK)) stays close
  // to H(Y | FK).
  std::vector<uint32_t> seen;
  seen.reserve(m);
  std::vector<double> phat(m, 0.0);
  for (uint32_t v = 0; v < m; ++v) {
    if (total[v] > 0.0) {
      phat[v] = pos[v] / total[v];
      seen.push_back(v);
    }
  }
  if (seen.empty()) {
    return Status::FailedPrecondition("feature has no training rows");
  }
  std::sort(seen.begin(), seen.end(), [&](uint32_t a, uint32_t b) {
    if (phat[a] != phat[b]) return phat[a] < phat[b];
    return a < b;
  });

  // Adjacent differences in the sorted order; the budget-1 largest become
  // bucket boundaries (the paper's greedy l-partition of D_FK).
  const uint32_t buckets =
      std::min<uint32_t>(budget, static_cast<uint32_t>(seen.size()));
  std::vector<size_t> boundary_positions;
  if (buckets > 1) {
    std::vector<std::pair<double, size_t>> diffs;  // (gap, position)
    diffs.reserve(seen.size() - 1);
    for (size_t k = 0; k + 1 < seen.size(); ++k) {
      diffs.emplace_back(phat[seen[k + 1]] - phat[seen[k]], k + 1);
    }
    std::sort(diffs.begin(), diffs.end(), [](const auto& a, const auto& b) {
      if (a.first != b.first) return a.first > b.first;
      return a.second < b.second;  // deterministic tie-break
    });
    for (uint32_t k = 0; k < buckets - 1 && k < diffs.size(); ++k) {
      boundary_positions.push_back(diffs[k].second);
    }
    std::sort(boundary_positions.begin(), boundary_positions.end());
  }

  DomainMapping out;
  out.new_domain = buckets;
  out.map.assign(m, 0);  // unseen codes -> bucket 0
  uint32_t bucket = 0;
  size_t next_boundary = 0;
  for (size_t k = 0; k < seen.size(); ++k) {
    if (next_boundary < boundary_positions.size() &&
        k == boundary_positions[next_boundary]) {
      ++bucket;
      ++next_boundary;
    }
    out.map[seen[k]] = bucket;
  }
  return out;
}

Status ApplyMapping(Dataset& data, size_t col, const DomainMapping& mapping) {
  if (col >= data.num_features()) return Status::OutOfRange("no such column");
  if (mapping.map.size() != data.feature_spec(col).domain_size) {
    return Status::InvalidArgument("mapping/domain size mismatch");
  }
  std::vector<uint32_t> codes = data.column(col);
  for (uint32_t& c : codes) c = mapping.map[c];
  return data.ReplaceColumn(col, std::move(codes), mapping.new_domain);
}

double ConditionalEntropy(const DataView& view, size_t view_feature) {
  const uint32_t m = view.domain_size(view_feature);
  std::vector<double> pos(m, 0.0), total(m, 0.0);
  const double n = static_cast<double>(view.num_rows());
  if (n == 0.0) return 0.0;
  for (size_t i = 0; i < view.num_rows(); ++i) {
    const uint32_t c = view.feature(i, view_feature);
    total[c] += 1.0;
    pos[c] += view.label(i);
  }
  double h = 0.0;
  for (uint32_t v = 0; v < m; ++v) {
    if (total[v] > 0.0) {
      h += (total[v] / n) * BinaryEntropy(pos[v], total[v]);
    }
  }
  return h;
}

}  // namespace core
}  // namespace hamlet
