// The join-safety advisor: the paper's decision rule as a library.
//
// Given only the schema-level tuple ratio n_S / n_R (no dimension-table
// bytes needed) and the model family, the advisor says whether the join
// bringing in that dimension's features can be avoided safely. Thresholds
// come from the paper's findings: ~20x for linear models (Kumar et al.),
// ~6x for RBF-SVMs, and ~3x for decision trees and ANNs (§3.3); 1-NN is
// far less stable (~100x, §4.1).

#ifndef HAMLET_CORE_ADVISOR_H_
#define HAMLET_CORE_ADVISOR_H_

#include <string>
#include <vector>

#include "hamlet/relational/star_schema.h"

namespace hamlet {
namespace core {

/// Model families with distinct safety thresholds.
enum class ModelFamily {
  kLinear,       ///< Naive Bayes, logistic regression, linear SVM
  kRbfSvm,
  kDecisionTree,
  kAnn,
  kOneNn,
};

const char* ModelFamilyName(ModelFamily family);

/// Tuple-ratio threshold above which avoiding the join is predicted safe.
double SafetyThreshold(ModelFamily family);

/// Advisor verdict for one dimension table.
enum class JoinAdvice {
  kSafeToAvoid,    ///< tuple ratio clears the family threshold
  kBorderline,     ///< within 1.5x of the threshold: measure before trusting
  kKeepJoin,       ///< below threshold: avoiding risks extra overfitting
  kNeverAvoid,     ///< FK has an open domain; FK cannot act as a feature
};

const char* JoinAdviceName(JoinAdvice advice);

/// One row of the advisor report.
struct DimensionAdvice {
  std::string dimension_name;
  double tuple_ratio = 0.0;      ///< against training rows
  double threshold = 0.0;
  JoinAdvice advice = JoinAdvice::kKeepJoin;
  std::string rationale;
};

/// Computes per-dimension advice from schema-level statistics only.
/// `train_fraction` scales n_S to the number of training rows (the paper's
/// Table 1 convention uses 0.5). `open_domain_fks` lists dimensions whose
/// FK can never be a feature.
std::vector<DimensionAdvice> AdviseJoins(
    const StarSchema& star, ModelFamily family, double train_fraction = 0.5,
    const std::vector<size_t>& open_domain_fks = {});

/// Formats a report table.
std::string FormatAdvice(const std::vector<DimensionAdvice>& advice);

}  // namespace core
}  // namespace hamlet

#endif  // HAMLET_CORE_ADVISOR_H_
