// Constant-majority classifier.
//
// Predicts the training set's majority label for every row (ties toward
// 1, matching the KernelSvm degenerate single-class fallback). It is the
// floor every real learner must beat, the fallback the serving path uses
// when a model family cannot fit (e.g. zero features after variant
// selection), and the smallest member of the serialization roster — its
// model file is a header plus three bytes of body.

#ifndef HAMLET_ML_MAJORITY_H_
#define HAMLET_ML_MAJORITY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "hamlet/ml/classifier.h"

namespace hamlet {
namespace ml {

/// Fit counts labels; Predict returns the majority constant.
class MajorityClassifier : public Classifier {
 public:
  MajorityClassifier() = default;

  Status Fit(const DataView& train) override;
  uint8_t Predict(const DataView& view, size_t i) const override;
  /// Constant output: fills without touching the view's features.
  std::vector<uint8_t> PredictAll(const DataView& view) const override;
  std::string name() const override { return "majority"; }

  ModelFamily family() const override { return ModelFamily::kMajority; }
  Status SaveBody(io::ModelWriter& writer) const override;
  static Result<std::unique_ptr<MajorityClassifier>> LoadBody(
      io::ModelReader& reader, const std::vector<uint32_t>& domains);

  uint8_t majority_label() const { return prediction_; }
  /// Fraction of training rows labeled 1 (serialized for introspection).
  double positive_rate() const { return positive_rate_; }

 private:
  bool fitted_ = false;
  uint8_t prediction_ = 0;
  double positive_rate_ = 0.0;
};

}  // namespace ml
}  // namespace hamlet

#endif  // HAMLET_ML_MAJORITY_H_
