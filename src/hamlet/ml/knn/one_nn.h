// 1-nearest-neighbour classifier over categorical features.
//
// The paper's "braindead" baseline (§3, §5): with one-hot encoding the
// squared Euclidean distance between two rows is 2 × (#mismatching
// features), so 1-NN reduces to Hamming distance over the code vectors.
// Ties break toward the earliest training row, keeping results
// deterministic. No hyper-parameters (as in RWeka's IB1).

#ifndef HAMLET_ML_KNN_ONE_NN_H_
#define HAMLET_ML_KNN_ONE_NN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "hamlet/data/code_matrix.h"
#include "hamlet/data/packed_code_matrix.h"
#include "hamlet/ml/classifier.h"

namespace hamlet {
namespace ml {

/// Brute-force 1-NN with early-exit Hamming distance.
class OneNearestNeighbor : public Classifier {
 public:
  OneNearestNeighbor() = default;

  Status Fit(const DataView& train) override;
  uint8_t Predict(const DataView& view, size_t i) const override;
  /// Dense batch path: materialises `view` into a CodeMatrix once and
  /// scans contiguous query rows; bit-identical to per-row Predict.
  std::vector<uint8_t> PredictAll(const DataView& view) const override;
  std::string name() const override { return "1nn"; }

  ModelFamily family() const override { return ModelFamily::kOneNn; }
  /// 1-NN's "model" is its training matrix; the whole CodeMatrix is the
  /// serialized body.
  Status SaveBody(io::ModelWriter& writer) const override;
  static Result<std::unique_ptr<OneNearestNeighbor>> LoadBody(
      io::ModelReader& reader, const std::vector<uint32_t>& domains);

  /// Index (into the training view's rows) of the nearest neighbour of
  /// row i of `view`; exposed for the §5 analysis of FK-driven matching.
  size_t NearestIndex(const DataView& view, size_t i) const;

  /// Same, for an already-materialised query of num_features codes.
  size_t NearestIndexOfCodes(const uint32_t* query) const;

 private:
  /// The scan itself, over a query packed under packed_train_'s layout.
  /// Word-granular early exit: a row is abandoned once its running
  /// mismatch count reaches the best distance so far. Because the
  /// per-word counts accumulate monotonically — exactly like the scalar
  /// per-feature loop — the surviving (best, best_dist) pair is
  /// bit-identical to the scalar scan, including ties breaking toward
  /// the earliest training row.
  size_t NearestIndexOfPacked(simd::Backend backend,
                              const uint64_t* query) const;

  // Training data is materialised row-major for scan locality, with a
  // bit-packed mirror (built at Fit/LoadBody) for the distance scan.
  CodeMatrix train_;
  PackedCodeMatrix packed_train_;
};

}  // namespace ml
}  // namespace hamlet

#endif  // HAMLET_ML_KNN_ONE_NN_H_
