#include "hamlet/ml/knn/one_nn.h"

#include <cassert>

namespace hamlet {
namespace ml {

Status OneNearestNeighbor::Fit(const DataView& train) {
  if (train.num_rows() == 0) {
    return Status::InvalidArgument("empty training view");
  }
  d_ = train.num_features();
  const size_t n = train.num_rows();
  rows_.resize(n * d_);
  labels_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d_; ++j) rows_[i * d_ + j] = train.feature(i, j);
    labels_[i] = train.label(i);
  }
  return Status::OK();
}

size_t OneNearestNeighbor::NearestIndex(const DataView& view,
                                        size_t i) const {
  assert(!labels_.empty() && view.num_features() == d_);
  // Materialise the query once; the inner loop then runs on contiguous
  // arrays with an early exit once the running distance exceeds the best.
  std::vector<uint32_t> query(d_);
  for (size_t j = 0; j < d_; ++j) query[j] = view.feature(i, j);

  size_t best = 0;
  size_t best_dist = d_ + 1;
  const size_t n = labels_.size();
  for (size_t r = 0; r < n; ++r) {
    const uint32_t* row = &rows_[r * d_];
    size_t dist = 0;
    for (size_t j = 0; j < d_; ++j) {
      dist += row[j] != query[j];
      if (dist >= best_dist) break;
    }
    if (dist < best_dist) {
      best_dist = dist;
      best = r;
      if (dist == 0) break;
    }
  }
  return best;
}

uint8_t OneNearestNeighbor::Predict(const DataView& view, size_t i) const {
  return labels_[NearestIndex(view, i)];
}

}  // namespace ml
}  // namespace hamlet
