#include "hamlet/ml/knn/one_nn.h"

#include <cassert>
#include <memory>
#include <utility>

#include "hamlet/io/model_io.h"

namespace hamlet {
namespace ml {

Status OneNearestNeighbor::Fit(const DataView& train) {
  if (train.num_rows() == 0) {
    return Status::InvalidArgument("empty training view");
  }
  train_ = CodeMatrix(train);
  packed_train_ = PackedCodeMatrix(train_);
  RecordTrainDomains(train);
  return Status::OK();
}

Status OneNearestNeighbor::SaveBody(io::ModelWriter& writer) const {
  if (train_.num_rows() == 0) {
    return Status::FailedPrecondition("1nn: Save before Fit");
  }
  writer.WriteCodeMatrix(train_);
  return writer.status();
}

Result<std::unique_ptr<OneNearestNeighbor>> OneNearestNeighbor::LoadBody(
    io::ModelReader& reader, const std::vector<uint32_t>& domains) {
  auto model = std::make_unique<OneNearestNeighbor>();
  HAMLET_RETURN_IF_ERROR(reader.ReadCodeMatrix(&model->train_));
  if (model->train_.num_features() != domains.size()) {
    return Status::InvalidArgument(
        "corrupt model: 1nn matrix feature count disagrees with the header");
  }
  if (model->train_.num_rows() == 0) {
    return Status::InvalidArgument("corrupt model: 1nn matrix has no rows");
  }
  for (size_t j = 0; j < domains.size(); ++j) {
    // The matrix carries its own domain sizes; the header is the serving
    // contract, so the two must agree for request validation to hold.
    if (model->train_.domain_size(j) != domains[j]) {
      return Status::InvalidArgument(
          "corrupt model: 1nn matrix domains disagree with the header");
    }
  }
  // Pack only after validation: every code is proven < its domain, so the
  // canonical layout covers the matrix.
  model->packed_train_ = PackedCodeMatrix(model->train_);
  return Result<std::unique_ptr<OneNearestNeighbor>>(std::move(model));
}

size_t OneNearestNeighbor::NearestIndexOfPacked(simd::Backend backend,
                                                const uint64_t* query) const {
  assert(train_.num_rows() > 0);
  const simd::PackedLayout& layout = packed_train_.layout();
  size_t best = 0;
  size_t best_dist = layout.num_features + 1;
  const size_t n = train_.num_rows();
  // Packed scan with a word-granular early exit once the running distance
  // reaches the best; ties break toward the earliest training row. Any
  // returned value >= best_dist means "not better" (the true distance is
  // at least that), so the (best, best_dist) updates are exactly those of
  // the scalar per-feature scan.
  for (size_t r = 0; r < n; ++r) {
    const size_t dist = simd::PackedMismatchCountBounded(
        backend, layout, packed_train_.row(r), query, best_dist);
    if (dist < best_dist) {
      best_dist = dist;
      best = r;
      if (dist == 0) break;
    }
  }
  simd::AccumulatePackedEvals(
      n, static_cast<uint64_t>(n) * layout.words_per_row);
  return best;
}

size_t OneNearestNeighbor::NearestIndexOfCodes(const uint32_t* query) const {
  const simd::PackedLayout& layout = packed_train_.layout();
  uint64_t* packed_query = ThreadLocalPackScratch(layout.words_per_row);
  layout.PackRow(query, packed_query);
  return NearestIndexOfPacked(simd::ActiveBackend(), packed_query);
}

size_t OneNearestNeighbor::NearestIndex(const DataView& view,
                                        size_t i) const {
  assert(view.num_features() == train_.num_features());
  // Materialise the query once; the scan then runs on contiguous arrays.
  return NearestIndexOfCodes(view.ScratchRowCodes(i));
}

uint8_t OneNearestNeighbor::Predict(const DataView& view, size_t i) const {
  return train_.label(NearestIndex(view, i));
}

std::vector<uint8_t> OneNearestNeighbor::PredictAll(
    const DataView& view) const {
  assert(view.num_features() == train_.num_features());
  // Backend resolved once for the batch; each worker thread packs its
  // query row into its own scratch slab.
  const simd::Backend backend = simd::ActiveBackend();
  const simd::PackedLayout& layout = packed_train_.layout();
  return DensePredictAll(view, [&, backend](const CodeMatrix& queries,
                                            size_t i) {
    uint64_t* packed_query = ThreadLocalPackScratch(layout.words_per_row);
    layout.PackRow(queries.row(i), packed_query);
    return train_.label(NearestIndexOfPacked(backend, packed_query));
  });
}

}  // namespace ml
}  // namespace hamlet
