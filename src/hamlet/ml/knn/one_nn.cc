#include "hamlet/ml/knn/one_nn.h"

#include <cassert>
#include <memory>
#include <utility>

#include "hamlet/io/model_io.h"

namespace hamlet {
namespace ml {

Status OneNearestNeighbor::Fit(const DataView& train) {
  if (train.num_rows() == 0) {
    return Status::InvalidArgument("empty training view");
  }
  train_ = CodeMatrix(train);
  RecordTrainDomains(train);
  return Status::OK();
}

Status OneNearestNeighbor::SaveBody(io::ModelWriter& writer) const {
  if (train_.num_rows() == 0) {
    return Status::FailedPrecondition("1nn: Save before Fit");
  }
  writer.WriteCodeMatrix(train_);
  return writer.status();
}

Result<std::unique_ptr<OneNearestNeighbor>> OneNearestNeighbor::LoadBody(
    io::ModelReader& reader, const std::vector<uint32_t>& domains) {
  auto model = std::make_unique<OneNearestNeighbor>();
  HAMLET_RETURN_IF_ERROR(reader.ReadCodeMatrix(&model->train_));
  if (model->train_.num_features() != domains.size()) {
    return Status::InvalidArgument(
        "corrupt model: 1nn matrix feature count disagrees with the header");
  }
  if (model->train_.num_rows() == 0) {
    return Status::InvalidArgument("corrupt model: 1nn matrix has no rows");
  }
  for (size_t j = 0; j < domains.size(); ++j) {
    // The matrix carries its own domain sizes; the header is the serving
    // contract, so the two must agree for request validation to hold.
    if (model->train_.domain_size(j) != domains[j]) {
      return Status::InvalidArgument(
          "corrupt model: 1nn matrix domains disagree with the header");
    }
  }
  return Result<std::unique_ptr<OneNearestNeighbor>>(std::move(model));
}

size_t OneNearestNeighbor::NearestIndexOfCodes(const uint32_t* query) const {
  assert(train_.num_rows() > 0);
  const size_t d = train_.num_features();
  size_t best = 0;
  size_t best_dist = d + 1;
  const size_t n = train_.num_rows();
  // Contiguous scan with an early exit once the running distance exceeds
  // the best; ties break toward the earliest training row.
  for (size_t r = 0; r < n; ++r) {
    const uint32_t* row = train_.row(r);
    size_t dist = 0;
    for (size_t j = 0; j < d; ++j) {
      dist += row[j] != query[j];
      if (dist >= best_dist) break;
    }
    if (dist < best_dist) {
      best_dist = dist;
      best = r;
      if (dist == 0) break;
    }
  }
  return best;
}

size_t OneNearestNeighbor::NearestIndex(const DataView& view,
                                        size_t i) const {
  assert(view.num_features() == train_.num_features());
  // Materialise the query once; the scan then runs on contiguous arrays.
  return NearestIndexOfCodes(view.ScratchRowCodes(i));
}

uint8_t OneNearestNeighbor::Predict(const DataView& view, size_t i) const {
  return train_.label(NearestIndex(view, i));
}

std::vector<uint8_t> OneNearestNeighbor::PredictAll(
    const DataView& view) const {
  assert(view.num_features() == train_.num_features());
  return DensePredictAll(view, [&](const CodeMatrix& queries, size_t i) {
    return train_.label(NearestIndexOfCodes(queries.row(i)));
  });
}

}  // namespace ml
}  // namespace hamlet
