#include "hamlet/ml/classifier.h"

namespace hamlet {
namespace ml {

const char* ModelFamilyName(ModelFamily family) {
  switch (family) {
    case ModelFamily::kUnsupported:
      return "unsupported";
    case ModelFamily::kDecisionTree:
      return "decision-tree";
    case ModelFamily::kNaiveBayes:
      return "naive-bayes";
    case ModelFamily::kLogRegL1:
      return "logreg-l1";
    case ModelFamily::kKernelSvm:
      return "kernel-svm";
    case ModelFamily::kOneNn:
      return "1nn";
    case ModelFamily::kMlp:
      return "mlp";
    case ModelFamily::kMajority:
      return "majority";
  }
  return "?";
}

Status Classifier::SaveBody(io::ModelWriter& /*writer*/) const {
  return Status::FailedPrecondition(
      name() + ": model family has no serialized form");
}

void Classifier::RecordTrainDomains(const DataView& train) {
  train_domain_sizes_.resize(train.num_features());
  for (size_t j = 0; j < train.num_features(); ++j) {
    train_domain_sizes_[j] = train.domain_size(j);
  }
}

}  // namespace ml
}  // namespace hamlet
