// Kernel SVM classifier (C-SVC) built on the SMO solver.
//
// Covers the paper's three SVM variants: linear, quadratic polynomial and
// Gaussian RBF. Prediction uses only the support vectors. Labels {0,1} map
// to {-1,+1} internally.

#ifndef HAMLET_ML_SVM_SVM_H_
#define HAMLET_ML_SVM_SVM_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "hamlet/data/code_matrix.h"
#include "hamlet/data/packed_code_matrix.h"
#include "hamlet/ml/classifier.h"
#include "hamlet/ml/svm/kernel.h"
#include "hamlet/ml/svm/smo.h"

namespace hamlet {
namespace ml {

/// Hyper-parameters; defaults match the paper's grid midpoints.
struct SvmConfig {
  KernelConfig kernel;
  double C = 1.0;
  double tolerance = 1e-3;
  size_t max_iterations = 20000;
  /// Optional cap on training rows (0 = use all). When set, a
  /// deterministic stratified-ish prefix subsample keeps the quadratic
  /// SMO solve affordable on the larger simulated datasets; the paper's
  /// qualitative comparisons are unaffected because every variant
  /// (JoinAll/NoJoin/NoFK) sees the same subsample.
  size_t max_train_rows = 0;
  /// Kernel-row cache budget in bytes for the SMO solve (see
  /// SmoConfig::cache_bytes). 0 = HAMLET_SMO_CACHE_MB or the 64 MiB
  /// default. The solve is bit-identical at any budget; only speed and
  /// memory change. Tests pin tiny budgets through this knob.
  size_t smo_cache_bytes = 0;
  /// Solver accelerations (see SmoConfig): second-order working-set
  /// selection and shrinking, both defaulting to the environment
  /// (HAMLET_SMO_WSS2 / HAMLET_SMO_SHRINK, on unless disabled). Tests
  /// pin kOn/kOff to compare the paths.
  SmoToggle smo_wss2 = SmoToggle::kEnv;
  SmoToggle smo_shrinking = SmoToggle::kEnv;
};

/// C-SVC with categorical-native kernels.
class KernelSvm : public Classifier {
 public:
  explicit KernelSvm(SvmConfig config = {});

  Status Fit(const DataView& train) override;
  uint8_t Predict(const DataView& view, size_t i) const override;
  /// Dense batch path: materialises `view` into a CodeMatrix once and
  /// evaluates kernels on contiguous rows; bit-identical to per-row
  /// Predict.
  std::vector<uint8_t> PredictAll(const DataView& view) const override;
  std::string name() const override;

  ModelFamily family() const override { return ModelFamily::kKernelSvm; }
  /// Serializes the kernel config plus the fitted decision function
  /// (support-vector codes, alpha*y coefficients, bias); solver-only
  /// knobs (C, tolerance, cache budget) are not part of the model.
  Status SaveBody(io::ModelWriter& writer) const override;
  static Result<std::unique_ptr<KernelSvm>> LoadBody(
      io::ModelReader& reader, const std::vector<uint32_t>& domains);

  /// Signed decision value f(x) for row i of `view`.
  double DecisionValue(const DataView& view, size_t i) const;

  /// Same, for an already-materialised query of num_features codes.
  double DecisionValueOfCodes(const uint32_t* query) const;

  size_t num_support_vectors() const { return sv_rows_.size() / (d_ ? d_ : 1); }
  bool converged() const { return converged_; }

  /// Kernel-row cache counters of the most recent Fit (0 before any fit
  /// and for the degenerate constant-classifier path).
  uint64_t last_cache_hits() const { return last_cache_hits_; }
  uint64_t last_cache_misses() const { return last_cache_misses_; }

  /// SMO solver counters of the most recent Fit (0 before any fit and
  /// for the degenerate constant-classifier path): pairwise-update
  /// iterations, shrink passes that deactivated points, and full
  /// gradient reconstructions.
  size_t last_iterations() const { return last_iterations_; }
  size_t last_shrink_events() const { return last_shrink_events_; }
  size_t last_unshrink_events() const { return last_unshrink_events_; }

 private:
  /// Rebuilds the packed support-vector slab (sv_layout_ / sv_packed_)
  /// from sv_rows_ under the canonical layout for `domains`; called at
  /// the end of Fit and LoadBody. Queries are packed into the same
  /// layout at prediction time.
  void PackSupportVectors(const std::vector<uint32_t>& domains);
  /// Decision value for a query already packed under sv_layout_; the
  /// shared kernel-sum loop of Predict/PredictAll/DecisionValue.
  double DecisionValueOfPacked(simd::Backend backend,
                               const uint64_t* query) const;

  SvmConfig config_;
  bool fitted_ = false;
  size_t d_ = 0;
  std::vector<uint32_t> sv_rows_;    // support vectors, row-major codes
  std::vector<double> sv_coeff_;     // alpha_i * y_i per support vector
  simd::PackedLayout sv_layout_;     // packing layout shared with queries
  std::vector<uint64_t> sv_packed_;  // sv_rows_ packed, words_per_row each
  double bias_ = 0.0;
  uint8_t constant_prediction_ = 0;  // used when training was single-class
  bool is_constant_ = false;
  bool converged_ = false;
  uint64_t last_cache_hits_ = 0;
  uint64_t last_cache_misses_ = 0;
  size_t last_iterations_ = 0;
  size_t last_shrink_events_ = 0;
  size_t last_unshrink_events_ = 0;
};

}  // namespace ml
}  // namespace hamlet

#endif  // HAMLET_ML_SVM_SVM_H_
