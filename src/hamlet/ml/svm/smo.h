// Sequential Minimal Optimization solver for the C-SVC dual.
//
// Solves   min_a  1/2 sum_ij a_i a_j y_i y_j K_ij - sum_i a_i
//          s.t.   0 <= a_i <= C,  sum_i a_i y_i = 0
// using Platt-style pairwise updates with a full error cache and
// maximal-violating-pair working-set selection. Kernel rows are supplied
// by a KernelRowSource: either the lazy LRU KernelCache (the production
// path, see kernel_cache.h) or a precomputed full Gram matrix wrapped in
// FullGramRowSource. A source whose row pointers cannot survive one
// subsequent fetch (CanServeTwoRows() == false, e.g. a 1-row cache) has
// row i staged through a solver-side scratch copy; either way the
// arithmetic consumes identical float values in identical order, so the
// solution is bit-identical for any row source and any cache size.

#ifndef HAMLET_ML_SVM_SMO_H_
#define HAMLET_ML_SVM_SMO_H_

#include <cstdint>
#include <vector>

#include "hamlet/common/status.h"

namespace hamlet {
namespace ml {

/// Solver parameters.
struct SmoConfig {
  double C = 1.0;
  double tolerance = 1e-3;      ///< KKT violation tolerance
  size_t max_iterations = 20000;  ///< pairwise-update budget
  /// Kernel-row cache budget in bytes for callers that build a
  /// KernelCache (KernelSvm::Fit). 0 = resolve via HAMLET_SMO_CACHE_MB /
  /// the 64 MiB default (KernelCacheBytesFromEnv). The solver itself is
  /// agnostic: it uses whatever KernelRowSource it is handed.
  size_t cache_bytes = 0;
};

/// Solver output: dual coefficients and intercept.
///
/// Field contract: every OK return from SolveSmo sets every field
/// deterministically — including the degenerate single-class early
/// return (zero alpha, bias at the majority label, iterations = 0,
/// converged = true, num_support_vectors = 0, zero cache counters).
struct SmoSolution {
  std::vector<double> alpha;
  double bias = 0.0;
  size_t iterations = 0;
  bool converged = false;
  size_t num_support_vectors = 0;
  /// Row-source counters (KernelCache hits/misses; a FullGramRowSource
  /// counts every access as a hit). hits + misses = total row fetches.
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
};

/// Supplier of kernel matrix rows to the solver. Row(i) returns n floats
/// K(x_i, x_t); the pointer is only guaranteed valid until the next
/// Row() call (a bounded cache may evict the backing storage).
class KernelRowSource {
 public:
  virtual ~KernelRowSource() = default;
  virtual const float* Row(size_t i) = 0;
  /// Single entry K(x_i, x_j), bit-identical to Row(i)[j], without
  /// fetching (or evicting) whole rows and without touching the
  /// hit/miss counters. The solver probes kii/kjj/kij through this
  /// before committing to the two full-row fetches an update needs, so
  /// no-progress probes (box-clipped pairs, the stuck-pair fallback
  /// scan) stay O(d) instead of recomputing rows under a tight cache.
  virtual float At(size_t i, size_t j) const = 0;
  /// Problem size n (rows are n floats).
  virtual size_t size() const = 0;
  /// True when a returned row pointer additionally survives ONE
  /// subsequent Row() call for a different index (the source can hold
  /// two rows at once). The solver then reads the pair (i, j) directly
  /// instead of staging row i through a scratch copy; the float values
  /// are identical either way, so solutions stay bit-identical.
  virtual bool CanServeTwoRows() const { return true; }
  virtual uint64_t hits() const { return 0; }
  virtual uint64_t misses() const { return 0; }
};

/// Thin adapter presenting a precomputed n x n row-major Gram matrix as a
/// row source. Keeps the historical SolveSmo(gram, ...) entry point and
/// the tests' hand-crafted Gram matrices working; every access counts as
/// a hit (the matrix is fully materialised).
class FullGramRowSource : public KernelRowSource {
 public:
  /// `gram` must outlive the adapter and hold n*n floats.
  FullGramRowSource(const std::vector<float>& gram, size_t n)
      : gram_(gram), n_(n) {}

  const float* Row(size_t i) override {
    ++hits_;
    return gram_.data() + i * n_;
  }
  float At(size_t i, size_t j) const override { return gram_[i * n_ + j]; }
  size_t size() const override { return n_; }
  uint64_t hits() const override { return hits_; }

 private:
  const std::vector<float>& gram_;
  size_t n_;
  uint64_t hits_ = 0;
};

/// Platt's endpoint-objective rule for a degenerate-curvature pair
/// (eta = kii + kjj - 2*kij <= 0): evaluates the pair-restricted dual
/// objective at both clipped box ends and returns the aj value of the
/// lower one — lo, hi, or aj_old when the two ends tie (no progress).
/// The gradient-sign heuristic this replaces can pick the worse end when
/// eta < 0 (near-duplicate rows under float rounding): the local descent
/// direction of a concave parabola need not point at the lower endpoint.
/// Exposed for direct unit testing.
double DegenerateEndpointAj(double lo, double hi, double ai_old,
                            double aj_old, double yi, double yj,
                            double error_i, double error_j, double bias,
                            double kii, double kjj, double kij);

/// Runs SMO against `rows` (n x n kernel values served row by row);
/// `y` holds labels in {-1, +1} and y.size() must equal rows.size().
Result<SmoSolution> SolveSmo(KernelRowSource& rows,
                             const std::vector<int8_t>& y,
                             const SmoConfig& config);

/// Historical entry point: `gram` is the full n x n kernel matrix
/// (row-major float). Wraps it in FullGramRowSource and solves.
Result<SmoSolution> SolveSmo(const std::vector<float>& gram,
                             const std::vector<int8_t>& y,
                             const SmoConfig& config);

}  // namespace ml
}  // namespace hamlet

#endif  // HAMLET_ML_SVM_SMO_H_
