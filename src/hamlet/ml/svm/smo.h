// Sequential Minimal Optimization solver for the C-SVC dual.
//
// Solves   min_a  1/2 sum_ij a_i a_j y_i y_j K_ij - sum_i a_i
//          s.t.   0 <= a_i <= C,  sum_i a_i y_i = 0
// using Platt-style pairwise updates with a full error cache and
// maximal-violating-pair working-set selection. The Gram matrix is
// precomputed (training sizes in this study stay in the low thousands).

#ifndef HAMLET_ML_SVM_SMO_H_
#define HAMLET_ML_SVM_SMO_H_

#include <cstdint>
#include <vector>

#include "hamlet/common/status.h"

namespace hamlet {
namespace ml {

/// Solver parameters.
struct SmoConfig {
  double C = 1.0;
  double tolerance = 1e-3;      ///< KKT violation tolerance
  size_t max_iterations = 20000;  ///< pairwise-update budget
};

/// Solver output: dual coefficients and intercept.
struct SmoSolution {
  std::vector<double> alpha;
  double bias = 0.0;
  size_t iterations = 0;
  bool converged = false;
  size_t num_support_vectors = 0;
};

/// Runs SMO. `gram` is the n x n kernel matrix (row-major float),
/// `y` holds labels in {-1, +1}.
Result<SmoSolution> SolveSmo(const std::vector<float>& gram,
                             const std::vector<int8_t>& y,
                             const SmoConfig& config);

}  // namespace ml
}  // namespace hamlet

#endif  // HAMLET_ML_SVM_SMO_H_
