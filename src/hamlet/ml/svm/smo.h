// Sequential Minimal Optimization solver for the C-SVC dual.
//
// Solves   min_a  1/2 sum_ij a_i a_j y_i y_j K_ij - sum_i a_i
//          s.t.   0 <= a_i <= C,  sum_i a_i y_i = 0
// using Platt-style pairwise updates with an error cache maintained over
// an active set. Working-set selection is LIBSVM-style second-order
// (WSS2) by default: i maximises the gradient violation over I_up, j
// maximises the quadratic gain (G_i - G_j)^2 / max(eta, tau) over the
// violating I_low candidates, using the cached kernel diagonal plus the
// single kernel row for i. Shrinking periodically deactivates
// bound-pinned points whose gradients cannot re-enter the working set;
// before convergence is declared the solver reconstructs the full
// gradient and unshrinks, so the returned solution is tolerance-exact on
// the full problem. Both accelerations can be disabled
// (SmoConfig::use_wss2 / use_shrinking, env HAMLET_SMO_WSS2 /
// HAMLET_SMO_SHRINK); with both off the solver runs the historical
// first-order max-violating-pair loop bit-identically.
//
// Kernel rows are supplied by a KernelRowSource: either the lazy LRU
// KernelCache (the production path, see kernel_cache.h) or a precomputed
// full Gram matrix wrapped in FullGramRowSource. A source whose row
// pointers cannot survive one subsequent fetch (CanServeTwoRows() ==
// false, e.g. a 1-row cache) has row i staged through a solver-side
// scratch copy; either way the arithmetic consumes identical float
// values in identical order, so the solution is bit-identical for any
// row source and any cache size.

#ifndef HAMLET_ML_SVM_SMO_H_
#define HAMLET_ML_SVM_SMO_H_

#include <cstdint>
#include <vector>

#include "hamlet/common/status.h"

namespace hamlet {
namespace ml {

/// Tri-state switch for solver accelerations that default to an
/// environment lookup. kEnv resolves HAMLET_SMO_WSS2 /
/// HAMLET_SMO_SHRINK at solve time (both default ON when unset); tests
/// and callers that must pin a path use kOn/kOff, which ignore the
/// environment entirely.
enum class SmoToggle : uint8_t {
  kEnv = 0,
  kOn,
  kOff,
};

/// HAMLET_SMO_WSS2 resolved to a bool: unset/empty/1/on/true/yes = true,
/// 0/off/false/no = false; anything else warns on stderr once per
/// distinct value and falls back to true (the default).
bool SmoWss2FromEnv();

/// HAMLET_SMO_SHRINK with the same grammar and default as SmoWss2FromEnv.
bool SmoShrinkFromEnv();

/// Solver parameters.
struct SmoConfig {
  double C = 1.0;
  double tolerance = 1e-3;      ///< KKT violation tolerance
  size_t max_iterations = 20000;  ///< pairwise-update budget
  /// Kernel-row cache budget in bytes for callers that build a
  /// KernelCache (KernelSvm::Fit). 0 = resolve via HAMLET_SMO_CACHE_MB /
  /// the 64 MiB default (KernelCacheBytesFromEnv). The solver itself is
  /// agnostic: it uses whatever KernelRowSource it is handed.
  size_t cache_bytes = 0;
  /// Second-order working-set selection. kOff restores the historical
  /// first-order max-violating-pair loop (bit-identical when
  /// use_shrinking is also off).
  SmoToggle use_wss2 = SmoToggle::kEnv;
  /// Periodic deactivation of bound-pinned points (LIBSVM shrinking).
  /// The solver always reconstructs the full gradient and unshrinks
  /// before declaring convergence, so the solution is tolerance-exact on
  /// the full problem either way.
  SmoToggle use_shrinking = SmoToggle::kEnv;
};

/// Solver output: dual coefficients and intercept.
///
/// Field contract: every OK return from SolveSmo sets every field
/// deterministically — including the degenerate single-class early
/// return (zero alpha, bias at the majority label, iterations = 0,
/// converged = true, num_support_vectors = 0, zero cache and shrink
/// counters).
struct SmoSolution {
  std::vector<double> alpha;
  double bias = 0.0;
  size_t iterations = 0;
  bool converged = false;
  size_t num_support_vectors = 0;
  /// Row-source counters (KernelCache hits/misses; a FullGramRowSource
  /// counts every access as a hit). hits + misses = total row fetches.
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  /// Shrink passes that deactivated at least one point.
  size_t shrink_events = 0;
  /// Full-gradient reconstructions (the aggressive 10x-tolerance
  /// unshrink, the final pre-convergence check, and stuck-pair rescues).
  size_t unshrink_events = 0;
};

/// Process-wide SMO counters summed over completed solves; the SVM-heavy
/// benches report deltas of these per bench run (see
/// bench::SvmStatsScope). fits counts solves that entered the pairwise
/// loop (single-class early returns are excluded).
struct SmoTotals {
  uint64_t fits = 0;
  uint64_t iterations = 0;
  uint64_t shrink_events = 0;
  uint64_t unshrink_events = 0;
};

/// Snapshot of the totals accumulated so far (all solves in this
/// process). Pair with ResetGlobalSmoTotals or subtract two snapshots to
/// scope the counters to one fit batch.
SmoTotals GlobalSmoTotals();

/// Zeroes the process-wide SMO totals (test isolation).
void ResetGlobalSmoTotals();

/// Supplier of kernel matrix rows to the solver. Row(i) returns n floats
/// K(x_i, x_t); the pointer is only guaranteed valid until the next
/// Row() call (a bounded cache may evict the backing storage).
class KernelRowSource {
 public:
  virtual ~KernelRowSource() = default;
  virtual const float* Row(size_t i) = 0;
  /// Single entry K(x_i, x_j), bit-identical to Row(i)[j], without
  /// fetching (or evicting) whole rows and without touching the
  /// hit/miss counters. The solver probes kii/kjj/kij through this
  /// before committing to the two full-row fetches an update needs, so
  /// no-progress probes (box-clipped pairs, the stuck-pair fallback
  /// scan) stay O(d) instead of recomputing rows under a tight cache.
  /// While an active restriction is installed, both i and j must be
  /// restricted indices.
  virtual float At(size_t i, size_t j) const = 0;
  /// The n diagonal entries K(x_t, x_t), bit-identical to Row(t)[t].
  /// Stable for the lifetime of the source; WSS2 reads eta candidates
  /// from here without fetching rows.
  virtual const float* Diag() const = 0;
  /// Problem size n (rows are n floats).
  virtual size_t size() const = 0;
  /// Narrows subsequent Row() computations to the given ascending
  /// original indices (the solver's shrunk active set). Implementations
  /// may leave non-restricted entries of returned rows unspecified, so
  /// callers must only read restricted entries while a restriction is
  /// installed. Successive calls must pass subsets of the previous
  /// restriction (the active set only shrinks between
  /// ClearActiveRestriction calls). Default: ignored — a source that
  /// always serves full rows is trivially correct.
  virtual void RestrictActive(const int32_t* indices, size_t count) {
    (void)indices;
    (void)count;
  }
  /// Lifts the restriction: subsequent Row() calls serve fully valid
  /// rows again (gradient reconstruction needs the dead columns).
  virtual void ClearActiveRestriction() {}
  /// True when a returned row pointer additionally survives ONE
  /// subsequent Row() call for a different index (the source can hold
  /// two rows at once). The solver then reads the pair (i, j) directly
  /// instead of staging row i through a scratch copy; the float values
  /// are identical either way, so solutions stay bit-identical.
  virtual bool CanServeTwoRows() const { return true; }
  virtual uint64_t hits() const { return 0; }
  virtual uint64_t misses() const { return 0; }
};

/// Thin adapter presenting a precomputed n x n row-major Gram matrix as a
/// row source. Keeps the historical SolveSmo(gram, ...) entry point and
/// the tests' hand-crafted Gram matrices working; every access counts as
/// a hit (the matrix is fully materialised) and active restrictions are
/// no-ops (full rows are always valid).
class FullGramRowSource : public KernelRowSource {
 public:
  /// `gram` must outlive the adapter and hold n*n floats.
  FullGramRowSource(const std::vector<float>& gram, size_t n)
      : gram_(gram), n_(n), diag_(n) {
    for (size_t i = 0; i < n; ++i) diag_[i] = gram[i * n + i];
  }

  const float* Row(size_t i) override {
    ++hits_;
    return gram_.data() + i * n_;
  }
  float At(size_t i, size_t j) const override { return gram_[i * n_ + j]; }
  const float* Diag() const override { return diag_.data(); }
  size_t size() const override { return n_; }
  uint64_t hits() const override { return hits_; }

 private:
  const std::vector<float>& gram_;
  size_t n_;
  std::vector<float> diag_;
  uint64_t hits_ = 0;
};

/// Platt's endpoint-objective rule for a degenerate-curvature pair
/// (eta = kii + kjj - 2*kij <= 0): evaluates the pair-restricted dual
/// objective at both clipped box ends and returns the aj value of the
/// lower one — lo, hi, or aj_old when the two ends tie (no progress).
/// The gradient-sign heuristic this replaces can pick the worse end when
/// eta < 0 (near-duplicate rows under float rounding): the local descent
/// direction of a concave parabola need not point at the lower endpoint.
/// Exposed for direct unit testing.
double DegenerateEndpointAj(double lo, double hi, double ai_old,
                            double aj_old, double yi, double yj,
                            double error_i, double error_j, double bias,
                            double kii, double kjj, double kij);

/// Second-order (WSS2) j-step: given i's kernel row and up-score
/// `up_best` (= -error_i), returns the original index of the I_low
/// candidate maximising the quadratic gain
///   (up_best - score_t)^2 / max(kii + K_tt - 2*K_it, tau),  tau = 1e-12,
/// over the `active_count` ascending original indices in `active`, or
/// SIZE_MAX when no candidate violates (up_best - score_t <= 0 for all).
/// Ties in gain break to the LOWEST original index (the scan keeps the
/// first maximum), which pins the iterate sequence deterministically.
/// Exposed for direct tie-break testing; the solver calls it with the
/// row it fetched for i during selection.
size_t SelectWss2J(const float* row_i, const float* diag,
                   const double* error, const int8_t* y,
                   const double* alpha, double C, const int32_t* active,
                   size_t active_count, double kii, double up_best);

/// Runs SMO against `rows` (n x n kernel values served row by row);
/// `y` holds labels in {-1, +1} and y.size() must equal rows.size().
Result<SmoSolution> SolveSmo(KernelRowSource& rows,
                             const std::vector<int8_t>& y,
                             const SmoConfig& config);

/// Historical entry point: `gram` is the full n x n kernel matrix
/// (row-major float). Wraps it in FullGramRowSource and solves.
Result<SmoSolution> SolveSmo(const std::vector<float>& gram,
                             const std::vector<int8_t>& y,
                             const SmoConfig& config);

}  // namespace ml
}  // namespace hamlet

#endif  // HAMLET_ML_SVM_SMO_H_
