#include "hamlet/ml/svm/svm.h"

#include <cassert>
#include <memory>
#include <utility>

#include "hamlet/io/model_io.h"
#include "hamlet/ml/svm/kernel_cache.h"

namespace hamlet {
namespace ml {

KernelSvm::KernelSvm(SvmConfig config) : config_(config) {}

std::string KernelSvm::name() const {
  return std::string("svm-") + KernelTypeName(config_.kernel.type);
}

Status KernelSvm::Fit(const DataView& train) {
  if (train.num_rows() == 0) {
    return Status::InvalidArgument("empty training view");
  }
  // Materialise once (prefix subsample when capped; the view's row order
  // is already a shuffle of the original data); the kernel-row cache and
  // support-vector extraction below run on the dense buffer.
  CodeMatrix m(train, config_.max_train_rows);
  d_ = m.num_features();
  const size_t n = m.num_rows();

  size_t pos = 0;
  for (size_t i = 0; i < n; ++i) pos += m.label(i);
  if (pos == 0 || pos == n || d_ == 0) {
    // Single-class data, or no features to separate on: fall back to a
    // constant prediction at the majority label (ties go to 1).
    is_constant_ = true;
    constant_prediction_ = (2 * pos >= n) ? 1 : 0;
    converged_ = true;
    sv_rows_.clear();
    sv_coeff_.clear();
    sv_packed_.clear();
    last_cache_hits_ = 0;
    last_cache_misses_ = 0;
    last_iterations_ = 0;
    last_shrink_events_ = 0;
    last_unshrink_events_ = 0;
    fitted_ = true;
    RecordTrainDomains(train);
    return Status::OK();
  }
  is_constant_ = false;

  std::vector<int8_t> y(n);
  for (size_t i = 0; i < n; ++i) y[i] = m.label(i) == 1 ? 1 : -1;

  // Lazy kernel rows instead of the old upfront O(n^2) Gram: SMO only
  // touches the rows its working sets select, so peak memory is bounded
  // by the cache budget and early-converging grid cells skip most of the
  // matrix. The cache owns the code matrix from here on.
  SmoConfig smo_cfg;
  smo_cfg.C = config_.C;
  smo_cfg.tolerance = config_.tolerance;
  smo_cfg.max_iterations = config_.max_iterations;
  smo_cfg.cache_bytes = config_.smo_cache_bytes;
  smo_cfg.use_wss2 = config_.smo_wss2;
  smo_cfg.use_shrinking = config_.smo_shrinking;
  KernelCache cache(std::move(m), config_.kernel, smo_cfg.cache_bytes);
  Result<SmoSolution> sol = SolveSmo(cache, y, smo_cfg);
  if (!sol.ok()) return sol.status();

  converged_ = sol.value().converged;
  bias_ = sol.value().bias;
  last_cache_hits_ = sol.value().cache_hits;
  last_cache_misses_ = sol.value().cache_misses;
  last_iterations_ = sol.value().iterations;
  last_shrink_events_ = sol.value().shrink_events;
  last_unshrink_events_ = sol.value().unshrink_events;
  sv_rows_.clear();
  sv_coeff_.clear();
  const std::vector<uint32_t>& rows = cache.matrix().codes();
  for (size_t i = 0; i < n; ++i) {
    const double a = sol.value().alpha[i];
    if (a > 1e-10) {
      sv_coeff_.push_back(a * static_cast<double>(y[i]));
      sv_rows_.insert(sv_rows_.end(), rows.begin() + static_cast<long>(i * d_),
                      rows.begin() + static_cast<long>((i + 1) * d_));
    }
  }
  PackSupportVectors(cache.matrix().domain_sizes());
  fitted_ = true;
  RecordTrainDomains(train);
  return Status::OK();
}

void KernelSvm::PackSupportVectors(const std::vector<uint32_t>& domains) {
  sv_layout_ = simd::PackedLayout::ForDomains(domains.data(), d_);
  const size_t num_sv = sv_coeff_.size();
  const size_t words_per_row = sv_layout_.words_per_row;
  sv_packed_.assign(num_sv * words_per_row, 0);
  for (size_t s = 0; s < num_sv; ++s) {
    sv_layout_.PackRow(sv_rows_.data() + s * d_,
                       sv_packed_.data() + s * words_per_row);
  }
  simd::AccumulatePackedBuild(num_sv, sv_packed_.size());
}

Status KernelSvm::SaveBody(io::ModelWriter& writer) const {
  if (!fitted_) {
    return Status::FailedPrecondition("svm: Save before Fit");
  }
  writer.WriteU32(static_cast<uint32_t>(config_.kernel.type));
  writer.WriteF64(config_.kernel.gamma);
  writer.WriteI32(config_.kernel.degree);
  writer.WriteU64(d_);
  writer.WriteU8(is_constant_ ? 1 : 0);
  writer.WriteU8(constant_prediction_);
  writer.WriteU8(converged_ ? 1 : 0);
  writer.WriteF64(bias_);
  writer.WriteF64Vec(sv_coeff_);
  writer.WriteU32Vec(sv_rows_);
  return writer.status();
}

Result<std::unique_ptr<KernelSvm>> KernelSvm::LoadBody(
    io::ModelReader& reader, const std::vector<uint32_t>& domains) {
  SvmConfig config;
  uint32_t kernel_type;
  HAMLET_RETURN_IF_ERROR(reader.ReadU32(&kernel_type));
  if (kernel_type > static_cast<uint32_t>(KernelType::kRbf)) {
    return Status::InvalidArgument("corrupt model: unknown svm kernel type");
  }
  config.kernel.type = static_cast<KernelType>(kernel_type);
  HAMLET_RETURN_IF_ERROR(reader.ReadF64(&config.kernel.gamma));
  HAMLET_RETURN_IF_ERROR(reader.ReadI32(&config.kernel.degree));
  auto model = std::make_unique<KernelSvm>(config);
  uint64_t d;
  uint8_t is_constant, converged;
  HAMLET_RETURN_IF_ERROR(reader.ReadU64(&d));
  if (d != domains.size()) {
    return Status::InvalidArgument(
        "corrupt model: svm feature count disagrees with the header");
  }
  model->d_ = static_cast<size_t>(d);
  HAMLET_RETURN_IF_ERROR(reader.ReadU8(&is_constant));
  HAMLET_RETURN_IF_ERROR(reader.ReadU8(&model->constant_prediction_));
  HAMLET_RETURN_IF_ERROR(reader.ReadU8(&converged));
  model->is_constant_ = is_constant != 0;
  model->converged_ = converged != 0;
  HAMLET_RETURN_IF_ERROR(reader.ReadF64(&model->bias_));
  HAMLET_RETURN_IF_ERROR(reader.ReadF64Vec(&model->sv_coeff_));
  HAMLET_RETURN_IF_ERROR(reader.ReadU32Vec(&model->sv_rows_));
  if (model->sv_rows_.size() != model->sv_coeff_.size() * model->d_) {
    return Status::InvalidArgument(
        "corrupt model: svm support-vector rows do not match coefficients");
  }
  for (size_t s = 0; s < model->sv_coeff_.size(); ++s) {
    const uint32_t* row = model->sv_rows_.data() + s * model->d_;
    for (size_t j = 0; j < model->d_; ++j) {
      if (row[j] >= domains[j]) {
        return Status::OutOfRange(
            "corrupt model: svm support-vector code outside its domain");
      }
    }
  }
  if (model->constant_prediction_ > 1) {
    return Status::InvalidArgument(
        "corrupt model: svm constant prediction not a binary label");
  }
  model->PackSupportVectors(domains);
  model->fitted_ = true;
  return Result<std::unique_ptr<KernelSvm>>(std::move(model));
}

double KernelSvm::DecisionValueOfPacked(simd::Backend backend,
                                        const uint64_t* query) const {
  double f = bias_;
  const size_t num_sv = sv_coeff_.size();
  const size_t words_per_row = sv_layout_.words_per_row;
  for (size_t s = 0; s < num_sv; ++s) {
    f += sv_coeff_[s] *
         PackedKernelEval(config_.kernel, backend, sv_layout_,
                          sv_packed_.data() + s * words_per_row, query);
  }
  simd::AccumulatePackedEvals(
      num_sv, static_cast<uint64_t>(num_sv) * words_per_row);
  return f;
}

double KernelSvm::DecisionValueOfCodes(const uint32_t* query) const {
  uint64_t* packed_query = ThreadLocalPackScratch(sv_layout_.words_per_row);
  sv_layout_.PackRow(query, packed_query);
  return DecisionValueOfPacked(simd::ActiveBackend(), packed_query);
}

double KernelSvm::DecisionValue(const DataView& view, size_t i) const {
  assert(view.num_features() == d_);
  return DecisionValueOfCodes(view.ScratchRowCodes(i));
}

uint8_t KernelSvm::Predict(const DataView& view, size_t i) const {
  if (is_constant_) return constant_prediction_;
  return DecisionValue(view, i) >= 0.0 ? 1 : 0;
}

std::vector<uint8_t> KernelSvm::PredictAll(const DataView& view) const {
  if (is_constant_) {
    return std::vector<uint8_t>(view.num_rows(), constant_prediction_);
  }
  assert(view.num_features() == d_);
  // Backend resolved once for the batch; each worker thread packs its
  // query row into its own scratch slab.
  const simd::Backend backend = simd::ActiveBackend();
  return DensePredictAll(view, [&, backend](const CodeMatrix& queries,
                                            size_t i) {
    uint64_t* packed_query = ThreadLocalPackScratch(sv_layout_.words_per_row);
    sv_layout_.PackRow(queries.row(i), packed_query);
    return DecisionValueOfPacked(backend, packed_query) >= 0.0 ? uint8_t{1}
                                                               : uint8_t{0};
  });
}

}  // namespace ml
}  // namespace hamlet
