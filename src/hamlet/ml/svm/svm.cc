#include "hamlet/ml/svm/svm.h"

#include <cassert>
#include <utility>

#include "hamlet/ml/svm/kernel_cache.h"

namespace hamlet {
namespace ml {

KernelSvm::KernelSvm(SvmConfig config) : config_(config) {}

std::string KernelSvm::name() const {
  return std::string("svm-") + KernelTypeName(config_.kernel.type);
}

Status KernelSvm::Fit(const DataView& train) {
  if (train.num_rows() == 0) {
    return Status::InvalidArgument("empty training view");
  }
  // Materialise once (prefix subsample when capped; the view's row order
  // is already a shuffle of the original data); the kernel-row cache and
  // support-vector extraction below run on the dense buffer.
  CodeMatrix m(train, config_.max_train_rows);
  d_ = m.num_features();
  const size_t n = m.num_rows();

  size_t pos = 0;
  for (size_t i = 0; i < n; ++i) pos += m.label(i);
  if (pos == 0 || pos == n || d_ == 0) {
    // Single-class data, or no features to separate on: fall back to a
    // constant prediction at the majority label (ties go to 1).
    is_constant_ = true;
    constant_prediction_ = (2 * pos >= n) ? 1 : 0;
    converged_ = true;
    sv_rows_.clear();
    sv_coeff_.clear();
    last_cache_hits_ = 0;
    last_cache_misses_ = 0;
    last_iterations_ = 0;
    last_shrink_events_ = 0;
    last_unshrink_events_ = 0;
    return Status::OK();
  }
  is_constant_ = false;

  std::vector<int8_t> y(n);
  for (size_t i = 0; i < n; ++i) y[i] = m.label(i) == 1 ? 1 : -1;

  // Lazy kernel rows instead of the old upfront O(n^2) Gram: SMO only
  // touches the rows its working sets select, so peak memory is bounded
  // by the cache budget and early-converging grid cells skip most of the
  // matrix. The cache owns the code matrix from here on.
  SmoConfig smo_cfg;
  smo_cfg.C = config_.C;
  smo_cfg.tolerance = config_.tolerance;
  smo_cfg.max_iterations = config_.max_iterations;
  smo_cfg.cache_bytes = config_.smo_cache_bytes;
  smo_cfg.use_wss2 = config_.smo_wss2;
  smo_cfg.use_shrinking = config_.smo_shrinking;
  KernelCache cache(std::move(m), config_.kernel, smo_cfg.cache_bytes);
  Result<SmoSolution> sol = SolveSmo(cache, y, smo_cfg);
  if (!sol.ok()) return sol.status();

  converged_ = sol.value().converged;
  bias_ = sol.value().bias;
  last_cache_hits_ = sol.value().cache_hits;
  last_cache_misses_ = sol.value().cache_misses;
  last_iterations_ = sol.value().iterations;
  last_shrink_events_ = sol.value().shrink_events;
  last_unshrink_events_ = sol.value().unshrink_events;
  sv_rows_.clear();
  sv_coeff_.clear();
  const std::vector<uint32_t>& rows = cache.matrix().codes();
  for (size_t i = 0; i < n; ++i) {
    const double a = sol.value().alpha[i];
    if (a > 1e-10) {
      sv_coeff_.push_back(a * static_cast<double>(y[i]));
      sv_rows_.insert(sv_rows_.end(), rows.begin() + static_cast<long>(i * d_),
                      rows.begin() + static_cast<long>((i + 1) * d_));
    }
  }
  return Status::OK();
}

double KernelSvm::DecisionValueOfCodes(const uint32_t* query) const {
  double f = bias_;
  const size_t num_sv = sv_coeff_.size();
  for (size_t s = 0; s < num_sv; ++s) {
    f += sv_coeff_[s] *
         KernelEval(config_.kernel, &sv_rows_[s * d_], query, d_);
  }
  return f;
}

double KernelSvm::DecisionValue(const DataView& view, size_t i) const {
  assert(view.num_features() == d_);
  return DecisionValueOfCodes(view.ScratchRowCodes(i));
}

uint8_t KernelSvm::Predict(const DataView& view, size_t i) const {
  if (is_constant_) return constant_prediction_;
  return DecisionValue(view, i) >= 0.0 ? 1 : 0;
}

std::vector<uint8_t> KernelSvm::PredictAll(const DataView& view) const {
  if (is_constant_) {
    return std::vector<uint8_t>(view.num_rows(), constant_prediction_);
  }
  assert(view.num_features() == d_);
  return DensePredictAll(view, [&](const CodeMatrix& queries, size_t i) {
    return DecisionValueOfCodes(queries.row(i)) >= 0.0 ? uint8_t{1}
                                                       : uint8_t{0};
  });
}

}  // namespace ml
}  // namespace hamlet
