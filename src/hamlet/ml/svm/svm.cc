#include "hamlet/ml/svm/svm.h"

#include <cassert>

namespace hamlet {
namespace ml {

KernelSvm::KernelSvm(SvmConfig config) : config_(config) {}

std::string KernelSvm::name() const {
  return std::string("svm-") + KernelTypeName(config_.kernel.type);
}

Status KernelSvm::Fit(const DataView& train) {
  if (train.num_rows() == 0) {
    return Status::InvalidArgument("empty training view");
  }
  d_ = train.num_features();
  size_t n = train.num_rows();
  if (config_.max_train_rows > 0 && n > config_.max_train_rows) {
    n = config_.max_train_rows;
  }

  // Copy training rows row-major (prefix subsample when capped; the view's
  // row order is already a shuffle of the original data).
  std::vector<uint32_t> rows(n * d_);
  std::vector<int8_t> y(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d_; ++j) rows[i * d_ + j] = train.feature(i, j);
    y[i] = train.label(i) == 1 ? 1 : -1;
  }

  bool has_pos = false, has_neg = false;
  for (int8_t v : y) (v == 1 ? has_pos : has_neg) = true;
  if (!has_pos || !has_neg) {
    is_constant_ = true;
    constant_prediction_ = has_pos ? 1 : 0;
    converged_ = true;
    sv_rows_.clear();
    sv_coeff_.clear();
    return Status::OK();
  }
  is_constant_ = false;

  const std::vector<float> gram = ComputeGram(config_.kernel, rows, n, d_);
  SmoConfig smo_cfg;
  smo_cfg.C = config_.C;
  smo_cfg.tolerance = config_.tolerance;
  smo_cfg.max_iterations = config_.max_iterations;
  Result<SmoSolution> sol = SolveSmo(gram, y, smo_cfg);
  if (!sol.ok()) return sol.status();

  converged_ = sol.value().converged;
  bias_ = sol.value().bias;
  sv_rows_.clear();
  sv_coeff_.clear();
  for (size_t i = 0; i < n; ++i) {
    const double a = sol.value().alpha[i];
    if (a > 1e-10) {
      sv_coeff_.push_back(a * static_cast<double>(y[i]));
      sv_rows_.insert(sv_rows_.end(), rows.begin() + static_cast<long>(i * d_),
                      rows.begin() + static_cast<long>((i + 1) * d_));
    }
  }
  return Status::OK();
}

double KernelSvm::DecisionValue(const DataView& view, size_t i) const {
  assert(view.num_features() == d_);
  std::vector<uint32_t> query(d_);
  for (size_t j = 0; j < d_; ++j) query[j] = view.feature(i, j);
  double f = bias_;
  const size_t num_sv = sv_coeff_.size();
  for (size_t s = 0; s < num_sv; ++s) {
    f += sv_coeff_[s] *
         KernelEval(config_.kernel, &sv_rows_[s * d_], query.data(), d_);
  }
  return f;
}

uint8_t KernelSvm::Predict(const DataView& view, size_t i) const {
  if (is_constant_) return constant_prediction_;
  return DecisionValue(view, i) >= 0.0 ? 1 : 0;
}

}  // namespace ml
}  // namespace hamlet
