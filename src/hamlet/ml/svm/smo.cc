#include "hamlet/ml/svm/smo.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <numeric>
#include <string>

#include "hamlet/common/logging.h"

namespace hamlet {
namespace ml {

namespace {

/// Process-wide SMO totals, accumulated when solves finish. Relaxed
/// atomics: concurrent grid-search fits only share the sums; readers
/// (bench reporting) run after the fits.
std::atomic<uint64_t> g_smo_fits{0};
std::atomic<uint64_t> g_smo_iterations{0};
std::atomic<uint64_t> g_smo_shrink_events{0};
std::atomic<uint64_t> g_smo_unshrink_events{0};

/// Shared parser for the HAMLET_SMO_WSS2 / HAMLET_SMO_SHRINK booleans:
/// unset/empty and the usual truthy spellings mean ON; falsy spellings
/// mean OFF; garbage warns once per distinct value and stays ON.
bool SmoBoolFromEnv(const char* name, const char* warn_key) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return true;
  const std::string v(value);
  if (v == "1" || v == "on" || v == "true" || v == "yes") return true;
  if (v == "0" || v == "off" || v == "false" || v == "no") return false;
  if (FirstOccurrence(std::string(warn_key) + v)) {
    std::fprintf(stderr,
                 "hamlet: unrecognized %s=\"%s\" (expected 0/1, on/off, "
                 "true/false); leaving it enabled\n",
                 name, value);
  }
  return true;
}

bool ResolveToggle(SmoToggle toggle, bool (*env_fn)()) {
  switch (toggle) {
    case SmoToggle::kOn:
      return true;
    case SmoToggle::kOff:
      return false;
    case SmoToggle::kEnv:
      break;
  }
  return env_fn();
}

}  // namespace

bool SmoWss2FromEnv() {
  return SmoBoolFromEnv("HAMLET_SMO_WSS2", "smo_wss2:");
}

bool SmoShrinkFromEnv() {
  return SmoBoolFromEnv("HAMLET_SMO_SHRINK", "smo_shrink:");
}

SmoTotals GlobalSmoTotals() {
  SmoTotals totals;
  totals.fits = g_smo_fits.load(std::memory_order_relaxed);
  totals.iterations = g_smo_iterations.load(std::memory_order_relaxed);
  totals.shrink_events =
      g_smo_shrink_events.load(std::memory_order_relaxed);
  totals.unshrink_events =
      g_smo_unshrink_events.load(std::memory_order_relaxed);
  return totals;
}

void ResetGlobalSmoTotals() {
  g_smo_fits.store(0, std::memory_order_relaxed);
  g_smo_iterations.store(0, std::memory_order_relaxed);
  g_smo_shrink_events.store(0, std::memory_order_relaxed);
  g_smo_unshrink_events.store(0, std::memory_order_relaxed);
}

double DegenerateEndpointAj(double lo, double hi, double ai_old,
                            double aj_old, double yi, double yj,
                            double error_i, double error_j, double bias,
                            double kii, double kjj, double kij) {
  // Pair-restricted dual objective (others fixed, constants dropped):
  //   psi(a1, a2) = 1/2 kii a1^2 + 1/2 kjj a2^2 + s kij a1 a2
  //                 + f1 a1 + f2 a2
  // with a1 tied to a2 by the equality constraint. f1/f2 follow Platt's
  // pseudocode (§12.2.1) with the bias sign flipped for our f = sum + b
  // convention (Platt uses u = w.x - b).
  const double s = yi * yj;
  const double f1 = yi * (error_i - bias) - ai_old * kii - s * aj_old * kij;
  const double f2 = yj * (error_j - bias) - s * ai_old * kij - aj_old * kjj;
  const double l1 = ai_old + s * (aj_old - lo);
  const double h1 = ai_old + s * (aj_old - hi);
  const double lobj = 0.5 * l1 * l1 * kii + 0.5 * lo * lo * kjj +
                      s * lo * l1 * kij + l1 * f1 + lo * f2;
  const double hobj = 0.5 * h1 * h1 * kii + 0.5 * hi * hi * kjj +
                      s * hi * h1 * kij + h1 * f1 + hi * f2;
  // Minimise; a tie within rounding noise means no progress at either
  // end, so stay put (the caller's no-movement check then returns false
  // instead of shuffling mass between equivalent iterates).
  const double eps =
      1e-12 * (std::abs(lobj) + std::abs(hobj) + 1.0);
  if (lobj < hobj - eps) return lo;
  if (hobj < lobj - eps) return hi;
  return aj_old;
}

size_t SelectWss2J(const float* row_i, const float* diag,
                   const double* error, const int8_t* y,
                   const double* alpha, double C, const int32_t* active,
                   size_t active_count, double kii, double up_best) {
  // LIBSVM WSS2: among violating I_low candidates, maximise
  //   (b_t)^2 / a_t,  b_t = up_best - score_t > 0,
  //   a_t = kii + K_tt - 2 K_it clamped below by tau
  // (the constant factor 2 in the paper's gain is argmax-invariant).
  // Strict > keeps the first maximum, so equal-gain candidates resolve
  // to the lowest original index.
  constexpr double kTau = 1e-12;
  double best_gain = -std::numeric_limits<double>::infinity();
  size_t best = std::numeric_limits<size_t>::max();
  for (size_t k = 0; k < active_count; ++k) {
    const size_t t = static_cast<size_t>(active[k]);
    const bool in_low = (y[t] > 0 && alpha[t] > 0.0) ||
                        (y[t] < 0 && alpha[t] < C);
    if (!in_low) continue;
    const double diff = up_best + error[t];  // up_best - (-error_t)
    if (diff <= 0.0) continue;
    double eta = kii + static_cast<double>(diag[t]) -
                 2.0 * static_cast<double>(row_i[t]);
    if (eta < kTau) eta = kTau;
    const double gain = diff * diff / eta;
    if (gain > best_gain) {
      best_gain = gain;
      best = t;
    }
  }
  return best;
}

namespace {

/// SMO state: alpha, the error cache (f(x_i) - y_i) and the active set.
/// With shrinking off the active set is permanently [0, n) and every
/// loop below visits t = 0..n-1 in order, reproducing the historical
/// full-scan solver arithmetic exactly.
struct Solver {
  KernelRowSource& rows;
  const std::vector<int8_t>& y;
  const SmoConfig& cfg;
  size_t n;
  bool wss2;
  bool shrinking;
  std::vector<double> alpha;
  std::vector<double> error;  // f(x_i) - y_i; with alpha = 0, f = bias = 0
  std::vector<float> row_i;   // scratch copy of kernel row i (see below)
  std::vector<int32_t> active;    // ascending original indices
  std::vector<uint8_t> in_active;  // n flags mirroring `active`
  bool shrunk = false;             // active.size() < n
  bool aggressive_unshrunk = false;  // one-time 10x-tolerance unshrink
  size_t shrink_events = 0;
  size_t unshrink_events = 0;
  double bias = 0.0;

  Solver(KernelRowSource& kernel_rows, const std::vector<int8_t>& labels,
         const SmoConfig& config, bool use_wss2, bool use_shrinking)
      : rows(kernel_rows), y(labels), cfg(config), n(labels.size()),
        wss2(use_wss2), shrinking(use_shrinking), alpha(n, 0.0), error(n),
        row_i(n), active(n), in_active(n, 1) {
    for (size_t i = 0; i < n; ++i) error[i] = -static_cast<double>(y[i]);
    std::iota(active.begin(), active.end(), 0);
  }

  bool InUp(size_t t) const {
    return (y[t] > 0 && alpha[t] < cfg.C) || (y[t] < 0 && alpha[t] > 0.0);
  }
  bool InLow(size_t t) const {
    return (y[t] > 0 && alpha[t] > 0.0) || (y[t] < 0 && alpha[t] < cfg.C);
  }

  /// Max up-score / min low-score over the active set (the violation
  /// m - M drives both the stopping rule and the shrink thresholds).
  void ScanScores(double& up_best, size_t& up_idx, double& low_best,
                  size_t& low_idx) const {
    up_best = -std::numeric_limits<double>::infinity();
    low_best = std::numeric_limits<double>::infinity();
    up_idx = n;
    low_idx = n;
    for (size_t k = 0; k < active.size(); ++k) {
      const size_t t = static_cast<size_t>(active[k]);
      const double score = -error[t];
      if (InUp(t) && score > up_best) {
        up_best = score;
        up_idx = t;
      }
      if (InLow(t) && score < low_best) {
        low_best = score;
        low_idx = t;
      }
    }
  }

  /// Selects the working pair over the active set; returns false at the
  /// active-set optimum (caller decides whether that is global). With
  /// error_t = f(x_t) - y_t, the LIBSVM selection score -y_t grad_t
  /// equals -error_t up to a constant bias shift that cancels in every
  /// comparison.
  bool SelectPair(size_t& out_i, size_t& out_j) {
    double up_best, low_best;
    size_t up_idx, low_idx;
    ScanScores(up_best, up_idx, low_best, low_idx);
    if (up_idx == n || low_idx == n) return false;
    if (up_best - low_best < cfg.tolerance) return false;
    if (!wss2) {
      // First-order WSS1: the maximal violating pair itself.
      out_i = up_idx;
      out_j = low_idx;
      return true;
    }
    // WSS2: fetch i's kernel row once and pick j by quadratic gain. The
    // row is read in place (no need to survive a second fetch here);
    // UpdatePair re-fetches it, which is a cache hit for any source
    // that can hold a row.
    const float* gi = rows.Row(up_idx);
    const size_t j = SelectWss2J(gi, rows.Diag(), error.data(), y.data(),
                                 alpha.data(), cfg.C, active.data(),
                                 active.size(),
                                 static_cast<double>(rows.Diag()[up_idx]),
                                 up_best);
    if (j == std::numeric_limits<size_t>::max()) {
      // No candidate violates STRICTLY (diff > 0). With tolerance > 0
      // the check above guarantees one, but a caller-supplied
      // tolerance <= 0 reaches here at an exact active-set optimum —
      // report optimality rather than indexing with the sentinel.
      return false;
    }
    out_i = up_idx;
    out_j = j;
    return true;
  }

  /// Analytic two-variable update (Platt). Returns false if no progress.
  bool UpdatePair(size_t i, size_t j) {
    if (i == j) return false;
    const double yi = y[i], yj = y[j];
    const double ai_old = alpha[i], aj_old = alpha[j];
    double lo, hi;
    if (yi != yj) {
      lo = std::max(0.0, aj_old - ai_old);
      hi = std::min(cfg.C, cfg.C + aj_old - ai_old);
    } else {
      lo = std::max(0.0, ai_old + aj_old - cfg.C);
      hi = std::min(cfg.C, ai_old + aj_old);
    }
    if (lo >= hi) return false;

    // Probe the three kernel entries the step-size computation needs as
    // single O(d) evaluations (bit-identical to the row entries) so a
    // no-progress probe — a box-clipped pair here, or the stuck-pair
    // fallback scan below — never pays for full row fetches.
    const double kii = rows.At(i, i), kjj = rows.At(j, j),
                 kij = rows.At(i, j);
    const double eta = kii + kjj - 2.0 * kij;
    double aj_new;
    if (eta > 1e-12) {
      aj_new = aj_old + yj * (error[i] - error[j]) / eta;
      aj_new = std::clamp(aj_new, lo, hi);
    } else {
      // Degenerate curvature (duplicate or near-duplicate rows): the
      // pair objective is linear or concave along the constraint line,
      // so evaluate it at both clipped ends and take the lower (Platt).
      aj_new = DegenerateEndpointAj(lo, hi, ai_old, aj_old, yi, yj,
                                    error[i], error[j], bias, kii, kjj,
                                    kij);
    }
    if (std::abs(aj_new - aj_old) < 1e-12 * (aj_new + aj_old + 1e-12)) {
      return false;
    }

    // Committed: fetch both kernel rows for the error-cache refresh. A
    // source that cannot hold two rows at once (a 1-row cache reuses
    // its storage immediately) has row i staged through a scratch copy
    // first. Either way the arithmetic below reads the same float
    // values in the same order as the full-Gram solver, keeping the
    // iterate sequence bit-identical for any row source and cache size.
    const float* gi = rows.Row(i);
    if (!rows.CanServeTwoRows()) {
      std::copy_n(gi, n, row_i.begin());
      gi = row_i.data();
    }
    const float* gj = rows.Row(j);

    const double ai_new = ai_old + yi * yj * (aj_old - aj_new);
    alpha[i] = ai_new;
    alpha[j] = aj_new;

    // Intercept update (standard SMO bookkeeping).
    const double b1 = bias - error[i] - yi * (ai_new - ai_old) * kii -
                      yj * (aj_new - aj_old) * kij;
    const double b2 = bias - error[j] - yi * (ai_new - ai_old) * kij -
                      yj * (aj_new - aj_old) * kjj;
    double new_bias;
    if (ai_new > 0.0 && ai_new < cfg.C) {
      new_bias = b1;
    } else if (aj_new > 0.0 && aj_new < cfg.C) {
      new_bias = b2;
    } else {
      new_bias = 0.5 * (b1 + b2);
    }
    const double delta_b = new_bias - bias;
    bias = new_bias;

    // Refresh the error cache over the active set: O(active) with the
    // two fetched rows. Inactive errors go stale by design; Unshrink
    // reconstructs them from scratch before they are ever read again.
    const double di = yi * (ai_new - ai_old);
    const double dj = yj * (aj_new - aj_old);
    for (size_t k = 0; k < active.size(); ++k) {
      const size_t t = static_cast<size_t>(active[k]);
      error[t] += di * gi[t] + dj * gj[t] + delta_b;
    }
    return true;
  }

  /// Reconstructs the full error cache and reactivates every point.
  /// Stale inactive errors are recomputed from scratch —
  ///   error[t] = sum_s alpha_s y_s K_st + bias - y_t
  /// accumulated in ascending s over full kernel rows — so the values
  /// (and everything downstream) are independent of the cache budget.
  /// Active errors keep their incrementally maintained values.
  void Unshrink() {
    if (!shrunk) return;
    rows.ClearActiveRestriction();
    for (size_t t = 0; t < n; ++t) {
      if (!in_active[t]) error[t] = bias - static_cast<double>(y[t]);
    }
    for (size_t s = 0; s < n; ++s) {
      if (alpha[s] == 0.0) continue;
      const float* gs = rows.Row(s);
      const double c = alpha[s] * static_cast<double>(y[s]);
      for (size_t t = 0; t < n; ++t) {
        if (!in_active[t]) error[t] += c * static_cast<double>(gs[t]);
      }
    }
    active.resize(n);
    std::iota(active.begin(), active.end(), 0);
    std::fill(in_active.begin(), in_active.end(), uint8_t{1});
    shrunk = false;
    ++unshrink_events;
  }

  /// Periodic shrink pass (LIBSVM do_shrinking): once the active
  /// violation falls within 10x tolerance, reconstruct and unshrink
  /// aggressively (one time), then deactivate bound-pinned points whose
  /// score can no longer enter the working set — an I_up-only point
  /// with score below the min low-score, or an I_low-only point with
  /// score above the max up-score.
  void DoShrink() {
    double up_best, low_best;
    size_t up_idx, low_idx;
    ScanScores(up_best, up_idx, low_best, low_idx);
    if (up_idx == n || low_idx == n) return;  // SelectPair handles this
    if (!aggressive_unshrunk && up_best - low_best <= cfg.tolerance * 10) {
      aggressive_unshrunk = true;
      Unshrink();
      ScanScores(up_best, up_idx, low_best, low_idx);
      if (up_idx == n || low_idx == n) return;
    }
    size_t kept = 0;
    for (size_t k = 0; k < active.size(); ++k) {
      const size_t t = static_cast<size_t>(active[k]);
      const bool up = InUp(t), low = InLow(t);
      const double score = -error[t];
      bool drop = false;
      if (up && !low) {
        drop = score < low_best;
      } else if (low && !up) {
        drop = score > up_best;
      }
      if (drop) {
        in_active[t] = 0;
      } else {
        active[kept++] = active[k];
      }
    }
    if (kept < active.size()) {
      active.resize(kept);
      shrunk = active.size() < n;
      ++shrink_events;
      rows.RestrictActive(active.data(), active.size());
    }
  }

  /// The legacy rescue for a blocked maximal pair: try other partners
  /// for each end over the active set before giving up.
  bool FallbackScan(size_t i, size_t j) {
    bool progressed = false;
    for (size_t k = 0; k < active.size() && !progressed; ++k) {
      const size_t t = static_cast<size_t>(active[k]);
      if (t != i && t != j) progressed = UpdatePair(i, t);
    }
    for (size_t k = 0; k < active.size() && !progressed; ++k) {
      const size_t t = static_cast<size_t>(active[k]);
      if (t != i && t != j) progressed = UpdatePair(t, j);
    }
    return progressed;
  }
};

}  // namespace

Result<SmoSolution> SolveSmo(KernelRowSource& rows,
                             const std::vector<int8_t>& y,
                             const SmoConfig& config) {
  const size_t n = y.size();
  if (n == 0) return Status::InvalidArgument("empty problem");
  if (rows.size() != n) {
    return Status::InvalidArgument("kernel row source size != n");
  }
  bool has_pos = false, has_neg = false;
  for (int8_t v : y) {
    if (v == 1) has_pos = true;
    else if (v == -1) has_neg = true;
    else return Status::InvalidArgument("labels must be -1/+1");
  }

  SmoSolution sol;
  sol.alpha.assign(n, 0.0);
  if (!has_pos || !has_neg) {
    // Single-class training data: the zero solution with a bias at the
    // majority label is the natural degenerate answer. Pin every field:
    // no pairwise updates ran and no kernel row was ever fetched.
    sol.bias = has_pos ? 1.0 : -1.0;
    sol.iterations = 0;
    sol.converged = true;
    sol.num_support_vectors = 0;
    sol.cache_hits = 0;
    sol.cache_misses = 0;
    sol.shrink_events = 0;
    sol.unshrink_events = 0;
    return sol;
  }

  const bool use_wss2 = ResolveToggle(config.use_wss2, &SmoWss2FromEnv);
  const bool use_shrinking =
      ResolveToggle(config.use_shrinking, &SmoShrinkFromEnv);
  Solver solver(rows, y, config, use_wss2, use_shrinking);
  const size_t shrink_period = std::min(n, size_t{1000});
  size_t shrink_counter = shrink_period;
  size_t it = 0;
  for (; it < config.max_iterations; ++it) {
    if (use_shrinking && --shrink_counter == 0) {
      solver.DoShrink();
      shrink_counter = shrink_period;
    }
    size_t i = 0, j = 0;
    if (!solver.SelectPair(i, j)) {
      // Optimal on the active set. If shrunk, that is only a candidate
      // optimum: reconstruct the full gradient, unshrink, and re-check
      // before declaring convergence (LIBSVM's exactness rule).
      if (solver.shrunk) {
        solver.Unshrink();
        shrink_counter = 1;  // re-shrink at the next opportunity
        if (!solver.SelectPair(i, j)) {
          sol.converged = true;
          break;
        }
      } else {
        sol.converged = true;
        break;
      }
    }
    if (!solver.UpdatePair(i, j)) {
      // The selected pair can be blocked by box clipping under float
      // rounding. Try other partners before giving up (LIBSVM shrinks
      // instead; a linear fallback scan is enough at our problem sizes).
      if (!solver.FallbackScan(i, j)) {
        if (solver.shrunk) {
          // Points outside the active set may unblock the pair. Delay
          // the next shrink by a full period — an immediate re-shrink
          // would deterministically re-drop the same points before the
          // full set was ever scanned, looping unshrink/shrink until
          // the iteration budget burned out.
          solver.Unshrink();
          shrink_counter = shrink_period;
          continue;
        }
        // Numerically stuck: accept the current iterate.
        break;
      }
    }
  }
  // A shrunk final iterate (iteration budget exhausted) still reports
  // authoritative alpha/bias, but the caller-owned row source must not
  // be handed back with the restriction still installed — a later solve
  // over the same source would read stale non-restricted columns.
  if (solver.shrunk) rows.ClearActiveRestriction();
  sol.alpha = std::move(solver.alpha);
  sol.bias = solver.bias;
  sol.iterations = it;
  sol.num_support_vectors = 0;
  for (double a : sol.alpha) sol.num_support_vectors += a > 1e-10;
  sol.cache_hits = rows.hits();
  sol.cache_misses = rows.misses();
  sol.shrink_events = solver.shrink_events;
  sol.unshrink_events = solver.unshrink_events;
  g_smo_fits.fetch_add(1, std::memory_order_relaxed);
  g_smo_iterations.fetch_add(it, std::memory_order_relaxed);
  g_smo_shrink_events.fetch_add(solver.shrink_events,
                                std::memory_order_relaxed);
  g_smo_unshrink_events.fetch_add(solver.unshrink_events,
                                  std::memory_order_relaxed);
  return sol;
}

Result<SmoSolution> SolveSmo(const std::vector<float>& gram,
                             const std::vector<int8_t>& y,
                             const SmoConfig& config) {
  const size_t n = y.size();
  if (n == 0) return Status::InvalidArgument("empty problem");
  if (gram.size() != n * n) {
    return Status::InvalidArgument("gram size != n*n");
  }
  FullGramRowSource rows(gram, n);
  return SolveSmo(rows, y, config);
}

}  // namespace ml
}  // namespace hamlet
