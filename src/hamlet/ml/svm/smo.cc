#include "hamlet/ml/svm/smo.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace hamlet {
namespace ml {

double DegenerateEndpointAj(double lo, double hi, double ai_old,
                            double aj_old, double yi, double yj,
                            double error_i, double error_j, double bias,
                            double kii, double kjj, double kij) {
  // Pair-restricted dual objective (others fixed, constants dropped):
  //   psi(a1, a2) = 1/2 kii a1^2 + 1/2 kjj a2^2 + s kij a1 a2
  //                 + f1 a1 + f2 a2
  // with a1 tied to a2 by the equality constraint. f1/f2 follow Platt's
  // pseudocode (§12.2.1) with the bias sign flipped for our f = sum + b
  // convention (Platt uses u = w.x - b).
  const double s = yi * yj;
  const double f1 = yi * (error_i - bias) - ai_old * kii - s * aj_old * kij;
  const double f2 = yj * (error_j - bias) - s * ai_old * kij - aj_old * kjj;
  const double l1 = ai_old + s * (aj_old - lo);
  const double h1 = ai_old + s * (aj_old - hi);
  const double lobj = 0.5 * l1 * l1 * kii + 0.5 * lo * lo * kjj +
                      s * lo * l1 * kij + l1 * f1 + lo * f2;
  const double hobj = 0.5 * h1 * h1 * kii + 0.5 * hi * hi * kjj +
                      s * hi * h1 * kij + h1 * f1 + hi * f2;
  // Minimise; a tie within rounding noise means no progress at either
  // end, so stay put (the caller's no-movement check then returns false
  // instead of shuffling mass between equivalent iterates).
  const double eps =
      1e-12 * (std::abs(lobj) + std::abs(hobj) + 1.0);
  if (lobj < hobj - eps) return lo;
  if (hobj < lobj - eps) return hi;
  return aj_old;
}

namespace {

/// f(x_i) - y_i maintained for every point (the SMO error cache).
struct Solver {
  KernelRowSource& rows;
  const std::vector<int8_t>& y;
  const SmoConfig& cfg;
  size_t n;
  std::vector<double> alpha;
  std::vector<double> error;  // f(x_i) - y_i; with alpha = 0, f = bias = 0
  std::vector<float> row_i;   // scratch copy of kernel row i (see below)
  double bias = 0.0;

  Solver(KernelRowSource& kernel_rows, const std::vector<int8_t>& labels,
         const SmoConfig& config)
      : rows(kernel_rows), y(labels), cfg(config), n(labels.size()),
        alpha(n, 0.0), error(n), row_i(n) {
    for (size_t i = 0; i < n; ++i) error[i] = -static_cast<double>(y[i]);
  }

  /// Selects the maximal violating pair (i, j); returns false at optimum.
  bool SelectPair(size_t& out_i, size_t& out_j) const {
    // LIBSVM WSS1: i maximises -y_t grad_t over I_up, j minimises it over
    // I_low. With error_t = f(x_t) - y_t, -y_t grad_t equals -error_t up
    // to a constant bias shift that cancels in the comparison, so the
    // selection score is simply -error_t.
    double up_best = -std::numeric_limits<double>::infinity();
    double low_best = std::numeric_limits<double>::infinity();
    size_t up_idx = n, low_idx = n;
    for (size_t t = 0; t < n; ++t) {
      const bool in_up = (y[t] > 0 && alpha[t] < cfg.C) ||
                         (y[t] < 0 && alpha[t] > 0.0);
      const bool in_low = (y[t] > 0 && alpha[t] > 0.0) ||
                          (y[t] < 0 && alpha[t] < cfg.C);
      const double score = -error[t];
      if (in_up && score > up_best) {
        up_best = score;
        up_idx = t;
      }
      if (in_low && score < low_best) {
        low_best = score;
        low_idx = t;
      }
    }
    if (up_idx == n || low_idx == n) return false;
    if (up_best - low_best < cfg.tolerance) return false;
    out_i = up_idx;
    out_j = low_idx;
    return true;
  }

  /// Analytic two-variable update (Platt). Returns false if no progress.
  bool UpdatePair(size_t i, size_t j) {
    if (i == j) return false;
    const double yi = y[i], yj = y[j];
    const double ai_old = alpha[i], aj_old = alpha[j];
    double lo, hi;
    if (yi != yj) {
      lo = std::max(0.0, aj_old - ai_old);
      hi = std::min(cfg.C, cfg.C + aj_old - ai_old);
    } else {
      lo = std::max(0.0, ai_old + aj_old - cfg.C);
      hi = std::min(cfg.C, ai_old + aj_old);
    }
    if (lo >= hi) return false;

    // Probe the three kernel entries the step-size computation needs as
    // single O(d) evaluations (bit-identical to the row entries) so a
    // no-progress probe — a box-clipped pair here, or the stuck-pair
    // fallback scan below — never pays for full row fetches.
    const double kii = rows.At(i, i), kjj = rows.At(j, j),
                 kij = rows.At(i, j);
    const double eta = kii + kjj - 2.0 * kij;
    double aj_new;
    if (eta > 1e-12) {
      aj_new = aj_old + yj * (error[i] - error[j]) / eta;
      aj_new = std::clamp(aj_new, lo, hi);
    } else {
      // Degenerate curvature (duplicate or near-duplicate rows): the
      // pair objective is linear or concave along the constraint line,
      // so evaluate it at both clipped ends and take the lower (Platt).
      aj_new = DegenerateEndpointAj(lo, hi, ai_old, aj_old, yi, yj,
                                    error[i], error[j], bias, kii, kjj,
                                    kij);
    }
    if (std::abs(aj_new - aj_old) < 1e-12 * (aj_new + aj_old + 1e-12)) {
      return false;
    }

    // Committed: fetch both kernel rows for the error-cache refresh. A
    // source that cannot hold two rows at once (a 1-row cache reuses
    // its storage immediately) has row i staged through a scratch copy
    // first. Either way the arithmetic below reads the same float
    // values in the same order as the full-Gram solver, keeping the
    // iterate sequence bit-identical for any row source and cache size.
    const float* gi = rows.Row(i);
    if (!rows.CanServeTwoRows()) {
      std::copy_n(gi, n, row_i.begin());
      gi = row_i.data();
    }
    const float* gj = rows.Row(j);

    const double ai_new = ai_old + yi * yj * (aj_old - aj_new);
    alpha[i] = ai_new;
    alpha[j] = aj_new;

    // Intercept update (standard SMO bookkeeping).
    const double b1 = bias - error[i] - yi * (ai_new - ai_old) * kii -
                      yj * (aj_new - aj_old) * kij;
    const double b2 = bias - error[j] - yi * (ai_new - ai_old) * kij -
                      yj * (aj_new - aj_old) * kjj;
    double new_bias;
    if (ai_new > 0.0 && ai_new < cfg.C) {
      new_bias = b1;
    } else if (aj_new > 0.0 && aj_new < cfg.C) {
      new_bias = b2;
    } else {
      new_bias = 0.5 * (b1 + b2);
    }
    const double delta_b = new_bias - bias;
    bias = new_bias;

    // Refresh the error cache: O(n) with the two fetched rows.
    const double di = yi * (ai_new - ai_old);
    const double dj = yj * (aj_new - aj_old);
    for (size_t t = 0; t < n; ++t) {
      error[t] += di * gi[t] + dj * gj[t] + delta_b;
    }
    return true;
  }
};

}  // namespace

Result<SmoSolution> SolveSmo(KernelRowSource& rows,
                             const std::vector<int8_t>& y,
                             const SmoConfig& config) {
  const size_t n = y.size();
  if (n == 0) return Status::InvalidArgument("empty problem");
  if (rows.size() != n) {
    return Status::InvalidArgument("kernel row source size != n");
  }
  bool has_pos = false, has_neg = false;
  for (int8_t v : y) {
    if (v == 1) has_pos = true;
    else if (v == -1) has_neg = true;
    else return Status::InvalidArgument("labels must be -1/+1");
  }

  SmoSolution sol;
  sol.alpha.assign(n, 0.0);
  if (!has_pos || !has_neg) {
    // Single-class training data: the zero solution with a bias at the
    // majority label is the natural degenerate answer. Pin every field:
    // no pairwise updates ran and no kernel row was ever fetched.
    sol.bias = has_pos ? 1.0 : -1.0;
    sol.iterations = 0;
    sol.converged = true;
    sol.num_support_vectors = 0;
    sol.cache_hits = 0;
    sol.cache_misses = 0;
    return sol;
  }

  Solver solver(rows, y, config);
  size_t it = 0;
  for (; it < config.max_iterations; ++it) {
    size_t i = 0, j = 0;
    if (!solver.SelectPair(i, j)) {
      sol.converged = true;
      break;
    }
    if (!solver.UpdatePair(i, j)) {
      // The max-violating pair can be blocked by box clipping. Try other
      // partners for the top violator before giving up (LIBSVM shrinks
      // instead; a linear fallback scan is enough at our problem sizes).
      bool progressed = false;
      for (size_t t = 0; t < n && !progressed; ++t) {
        if (t != i && t != j) progressed = solver.UpdatePair(i, t);
      }
      for (size_t t = 0; t < n && !progressed; ++t) {
        if (t != i && t != j) progressed = solver.UpdatePair(t, j);
      }
      if (!progressed) {
        // Numerically stuck: accept the current iterate.
        break;
      }
    }
  }
  sol.alpha = std::move(solver.alpha);
  sol.bias = solver.bias;
  sol.iterations = it;
  sol.num_support_vectors = 0;
  for (double a : sol.alpha) sol.num_support_vectors += a > 1e-10;
  sol.cache_hits = rows.hits();
  sol.cache_misses = rows.misses();
  return sol;
}

Result<SmoSolution> SolveSmo(const std::vector<float>& gram,
                             const std::vector<int8_t>& y,
                             const SmoConfig& config) {
  const size_t n = y.size();
  if (n == 0) return Status::InvalidArgument("empty problem");
  if (gram.size() != n * n) {
    return Status::InvalidArgument("gram size != n*n");
  }
  FullGramRowSource rows(gram, n);
  return SolveSmo(rows, y, config);
}

}  // namespace ml
}  // namespace hamlet
