// SVM kernels evaluated directly on categorical code vectors.
//
// All features are categorical and conceptually one-hot encoded (§2.2 of
// the paper). For one-hot vectors u(x), u(z):
//   u(x)·u(z)       = #matching features           (linear kernel)
//   ||u(x)-u(z)||^2 = 2 × #mismatching features    (RBF exponent)
// so kernels run in O(d) per pair without materialising the encoding.
// The paper's grid kernels: linear, quadratic polynomial, Gaussian RBF.

#ifndef HAMLET_ML_SVM_KERNEL_H_
#define HAMLET_ML_SVM_KERNEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "hamlet/simd/simd.h"

namespace hamlet {
namespace ml {

enum class KernelType {
  /// k(x,z) = u(x)·u(z) / d (match fraction). Normalising by the feature
  /// count keeps the kernel scale — and therefore the meaning of C —
  /// independent of how many columns the feature variant selects;
  /// without it, JoinAll's wider feature sets need far more SMO
  /// iterations than NoJoin's for the same C.
  kLinear,
  kPoly,    ///< k(x,z) = (gamma · u(x)·u(z))^degree  (paper: degree 2)
  kRbf,     ///< k(x,z) = exp(-gamma · ||u(x)-u(z)||^2)
};

const char* KernelTypeName(KernelType type);

/// Kernel configuration; `gamma` is ignored by kLinear.
struct KernelConfig {
  KernelType type = KernelType::kRbf;
  double gamma = 0.1;
  int degree = 2;
};

/// Number of matching positions between two code vectors of length d.
size_t MatchCount(const uint32_t* a, const uint32_t* b, size_t d);

/// Kernel value from a precomputed match count (0 <= matches <= d). The
/// single site of the kernel float math: the scalar and packed paths both
/// route through it, so equal match counts give bit-identical values.
double KernelFromMatches(const KernelConfig& config, size_t matches,
                         size_t d);

/// Kernel value for two code vectors of length d.
double KernelEval(const KernelConfig& config, const uint32_t* a,
                  const uint32_t* b, size_t d);

/// Kernel value for two rows packed under `layout` (see
/// data/packed_code_matrix.h). Bit-identical to KernelEval on the
/// unpacked codes: the backends produce exact match counts and the float
/// math is shared via KernelFromMatches.
double PackedKernelEval(const KernelConfig& config, simd::Backend backend,
                        const simd::PackedLayout& layout, const uint64_t* a,
                        const uint64_t* b);

/// Dense symmetric Gram matrix over `rows` (n rows of length d, row-major),
/// stored row-major as n*n floats. The production fit path computes rows
/// lazily instead (ml::KernelCache); this full materialisation remains
/// for the FullGramRowSource adapter, parity tests and ad-hoc analysis.
std::vector<float> ComputeGram(const KernelConfig& config,
                               const std::vector<uint32_t>& rows, size_t n,
                               size_t d);

}  // namespace ml
}  // namespace hamlet

#endif  // HAMLET_ML_SVM_KERNEL_H_
