#include "hamlet/ml/svm/kernel_cache.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <string>

#include "hamlet/common/logging.h"

namespace hamlet {
namespace ml {

namespace {

/// Process-wide totals, accumulated when caches are destroyed. Relaxed
/// atomics: concurrent grid-search fits each own a private cache and only
/// the sums are shared; readers (bench reporting) run after the fits.
std::atomic<uint64_t> g_total_hits{0};
std::atomic<uint64_t> g_total_misses{0};

}  // namespace

KernelCacheTotals GlobalKernelCacheTotals() {
  KernelCacheTotals totals;
  totals.hits = g_total_hits.load(std::memory_order_relaxed);
  totals.misses = g_total_misses.load(std::memory_order_relaxed);
  return totals;
}

void ResetGlobalKernelCacheTotals() {
  g_total_hits.store(0, std::memory_order_relaxed);
  g_total_misses.store(0, std::memory_order_relaxed);
}

size_t KernelCacheBytesFromEnv() {
  const char* value = std::getenv("HAMLET_SMO_CACHE_MB");
  if (value == nullptr || *value == '\0') return kDefaultKernelCacheBytes;
  char* end = nullptr;
  const unsigned long long mb = std::strtoull(value, &end, 10);
  // Positive integer MiB only; the cap is 1 TiB or whatever keeps the
  // byte product representable in size_t (4095 MiB on 32-bit hosts),
  // whichever is smaller.
  constexpr unsigned long long kMaxMb =
      std::min(1ull << 20,
               static_cast<unsigned long long>(
                   std::numeric_limits<size_t>::max() >> 20));
  if (end == value || *end != '\0' || mb == 0 || mb > kMaxMb) {
    if (FirstOccurrence(std::string("smo_cache_mb:") + value)) {
      std::fprintf(stderr,
                   "hamlet: unrecognized HAMLET_SMO_CACHE_MB=\"%s\" "
                   "(expected a positive integer number of MiB); using "
                   "the default %zu MiB\n",
                   value, kDefaultKernelCacheBytes >> 20);
    }
    return kDefaultKernelCacheBytes;
  }
  return static_cast<size_t>(mb) << 20;
}

KernelCache::KernelCache(CodeMatrix matrix, const KernelConfig& kernel,
                         size_t cache_bytes)
    : matrix_(std::move(matrix)),
      packed_(matrix_),
      backend_(simd::ActiveBackend()),
      kernel_(kernel) {
  const size_t n = matrix_.num_rows();
  if (cache_bytes == 0) cache_bytes = KernelCacheBytesFromEnv();
  const size_t row_bytes = (n == 0 ? 1 : n) * sizeof(float);
  // Clamp to [1, max(n, 1)] rows: always one cacheable row, never more
  // slots than the problem has rows (an empty matrix keeps a single
  // dummy slot instead of budget/4 phantom ones).
  size_t rows = cache_bytes / row_bytes;
  if (rows < 1) rows = 1;
  const size_t max_rows = n > 0 ? n : 1;
  if (rows > max_rows) rows = max_rows;
  capacity_rows_ = rows;
  diag_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const uint64_t* ri = packed_.row(i);
    diag_[i] = static_cast<float>(
        PackedKernelEval(kernel_, backend_, packed_.layout(), ri, ri));
  }
  packed_evals_ += n;
  packed_words_ += static_cast<uint64_t>(n) * packed_.layout().words_per_row;
  slot_of_row_.assign(n, -1);
  row_of_slot_.assign(capacity_rows_, -1);
  prev_.assign(capacity_rows_, -1);
  next_.assign(capacity_rows_, -1);
  slots_.reserve(capacity_rows_ < 64 ? capacity_rows_ : 64);
  member_mark_.assign(n, 0);
  slot_era_.assign(capacity_rows_, 0);
  slot_full_.assign(capacity_rows_, 1);
}

KernelCache::~KernelCache() {
  g_total_hits.fetch_add(hits_, std::memory_order_relaxed);
  g_total_misses.fetch_add(misses_, std::memory_order_relaxed);
  simd::AccumulatePackedEvals(packed_evals_, packed_words_);
}

bool KernelCache::Cached(size_t i) const {
  assert(i < slot_of_row_.size());
  return slot_of_row_[i] >= 0;
}

void KernelCache::ComputeRow(size_t i, float* out) const {
  const simd::PackedLayout& layout = packed_.layout();
  const uint64_t* ri = packed_.row(i);
  // Same double->float narrowing as ComputeGram, so a cached row entry is
  // bit-identical to the corresponding full-Gram entry. Under an active
  // restriction only the restricted columns are computed; the others stay
  // whatever the slot held before (callers must not read them).
  size_t cols;
  if (restrict_idx_.empty()) {
    const size_t n = matrix_.num_rows();
    for (size_t t = 0; t < n; ++t) {
      out[t] = static_cast<float>(
          PackedKernelEval(kernel_, backend_, layout, ri, packed_.row(t)));
    }
    cols = n;
  } else {
    for (const int32_t col : restrict_idx_) {
      const size_t t = static_cast<size_t>(col);
      out[t] = static_cast<float>(
          PackedKernelEval(kernel_, backend_, layout, ri, packed_.row(t)));
    }
    cols = restrict_idx_.size();
  }
  packed_evals_ += cols;
  packed_words_ += static_cast<uint64_t>(cols) * layout.words_per_row;
}

void KernelCache::RestrictActive(const int32_t* indices, size_t count) {
  restrict_idx_.assign(indices, indices + count);
  ++restrict_serial_;
  for (size_t k = 0; k < count; ++k) {
    member_mark_[static_cast<size_t>(indices[k])] = restrict_serial_;
  }
}

void KernelCache::ClearActiveRestriction() {
  if (restrict_idx_.empty()) return;
  restrict_idx_.clear();
  // Close the era: partial rows computed under the lifted restriction
  // recompute on their next fetch; full rows stay valid.
  ++era_;
}

void KernelCache::Detach(int32_t slot) {
  const int32_t p = prev_[slot], nx = next_[slot];
  if (p >= 0) next_[p] = nx;
  else head_ = nx;
  if (nx >= 0) prev_[nx] = p;
  else tail_ = p;
  prev_[slot] = next_[slot] = -1;
}

void KernelCache::PushFront(int32_t slot) {
  prev_[slot] = -1;
  next_[slot] = head_;
  if (head_ >= 0) prev_[head_] = slot;
  head_ = slot;
  if (tail_ < 0) tail_ = slot;
}

void KernelCache::MoveToFront(int32_t slot) {
  if (head_ == slot) return;
  Detach(slot);
  PushFront(slot);
}

float KernelCache::At(size_t i, size_t j) const {
  assert(i < matrix_.num_rows() && j < matrix_.num_rows());
  if (i == j) return diag_[i];
  // While restricted, only restricted indices may be probed (a partial
  // resident row holds valid entries exactly at the restriction).
  assert(InRestriction(i) && InRestriction(j));
  const int32_t si = slot_of_row_[i];
  if (si >= 0 && SlotUsable(si)) return slots_[static_cast<size_t>(si)][j];
  const int32_t sj = slot_of_row_[j];
  if (sj >= 0 && SlotUsable(sj)) return slots_[static_cast<size_t>(sj)][i];
  ++packed_evals_;
  packed_words_ += packed_.layout().words_per_row;
  return static_cast<float>(PackedKernelEval(
      kernel_, backend_, packed_.layout(), packed_.row(i), packed_.row(j)));
}

const float* KernelCache::Row(size_t i) {
  assert(i < matrix_.num_rows());
  assert(InRestriction(i));
  int32_t slot = slot_of_row_[i];
  if (slot >= 0 && SlotUsable(slot)) {
    ++hits_;
    MoveToFront(slot);
    return slots_[static_cast<size_t>(slot)].data();
  }
  ++misses_;
  if (slot >= 0) {
    // Resident but computed under a restriction that has since been
    // lifted: its dead columns are stale, so recompute in place (the
    // slot keeps its storage and becomes most recently used).
    MoveToFront(slot);
  } else if (used_slots_ < capacity_rows_) {
    slot = static_cast<int32_t>(used_slots_++);
    slots_.emplace_back(matrix_.num_rows());
    row_of_slot_[slot] = static_cast<int32_t>(i);
    slot_of_row_[i] = slot;
    PushFront(slot);
  } else {
    // Evict the least-recently-used row and reuse its storage.
    slot = tail_;
    assert(slot >= 0);
    slot_of_row_[static_cast<size_t>(row_of_slot_[slot])] = -1;
    Detach(slot);
    row_of_slot_[slot] = static_cast<int32_t>(i);
    slot_of_row_[i] = slot;
    PushFront(slot);
  }
  ComputeRow(i, slots_[static_cast<size_t>(slot)].data());
  slot_era_[static_cast<size_t>(slot)] = era_;
  slot_full_[static_cast<size_t>(slot)] =
      restrict_idx_.empty() ? uint8_t{1} : uint8_t{0};
  return slots_[static_cast<size_t>(slot)].data();
}

}  // namespace ml
}  // namespace hamlet
