// Lazy kernel-row LRU cache for the SMO solver (libsvm-style).
//
// The previous SVM fit path materialised the full n x n Gram matrix
// upfront even though SMO only touches a handful of rows per working-set
// pass. KernelCache owns the dense CodeMatrix snapshot of the training
// view and computes kernel rows on demand via KernelEval, keeping the
// most-recently-used rows resident under a byte budget. Peak memory drops
// from O(n^2) to O(min(n, budget/row)) and early-converging grid cells
// skip most of the Gram entirely; because grid search fits many (C,
// gamma) cells concurrently over the same training view, the saving
// multiplies across the whole grid.
//
// Not thread-safe: one cache belongs to one fit, matching the solver's
// serial inner loop. Process-wide hit/miss totals (for bench reporting
// across concurrent grid fits) are aggregated atomically when a cache is
// destroyed — see GlobalKernelCacheTotals().

#ifndef HAMLET_ML_SVM_KERNEL_CACHE_H_
#define HAMLET_ML_SVM_KERNEL_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "hamlet/data/code_matrix.h"
#include "hamlet/data/packed_code_matrix.h"
#include "hamlet/ml/svm/kernel.h"
#include "hamlet/ml/svm/smo.h"

namespace hamlet {
namespace ml {

/// Default kernel-row cache budget: 64 MiB holds every row the paper's
/// training caps produce (n <= 3000 -> 12 KiB/row, ~36 MiB total), so the
/// default never recomputes a row while large ad-hoc problems stay capped.
inline constexpr size_t kDefaultKernelCacheBytes = 64u << 20;

/// Resolves the cache budget from HAMLET_SMO_CACHE_MB: a positive integer
/// number of MiB, or unset/empty for kDefaultKernelCacheBytes. Anything
/// unparseable (non-numeric, zero, > 1 TiB) warns on stderr once per
/// distinct value and falls back to the default, mirroring
/// core::BenchModeFromEnv.
size_t KernelCacheBytesFromEnv();

/// Process-wide kernel-cache counters, summed over destroyed caches.
struct KernelCacheTotals {
  uint64_t hits = 0;
  uint64_t misses = 0;
};

/// Snapshot of the totals accumulated so far (all fits in this process).
/// The totals are monotone and never reset implicitly, so multi-fit
/// callers that want per-batch numbers must scope them: subtract two
/// snapshots (bench::SvmStatsScope does this) or call
/// ResetGlobalKernelCacheTotals between batches.
KernelCacheTotals GlobalKernelCacheTotals();

/// Zeroes the process-wide totals (test isolation; benches prefer the
/// snapshot-delta pattern, which also works with concurrent fits).
void ResetGlobalKernelCacheTotals();

/// LRU cache of kernel rows over an owned CodeMatrix.
class KernelCache : public KernelRowSource {
 public:
  /// Takes ownership of `matrix` (the training snapshot) and computes
  /// rows with `kernel`. `cache_bytes` is the resident-row budget in
  /// bytes; 0 means KernelCacheBytesFromEnv(). At least one row is always
  /// cacheable, and the budget is clamped to n rows (a full cache).
  KernelCache(CodeMatrix matrix, const KernelConfig& kernel,
              size_t cache_bytes = 0);
  ~KernelCache() override;

  KernelCache(const KernelCache&) = delete;
  KernelCache& operator=(const KernelCache&) = delete;

  /// Kernel row i (n floats, identical bit pattern to ComputeGram's row).
  /// The pointer is valid until the next Row() call on this cache —
  /// until the next call for a DIFFERENT row when CanServeTwoRows().
  /// While an active restriction is installed (RestrictActive), only the
  /// restricted entries of the returned row are valid: a miss computes
  /// just those columns, so shrunk SMO sweeps never fault in dead ones.
  const float* Row(size_t i) override;

  /// Serves diagonal entries from a precomputed per-fit array (libsvm's
  /// QD — the diagonal never changes), reads a resident row when either
  /// i's or j's row is cached (the matrix is symmetric) and falls back
  /// to a single O(d) KernelEval otherwise. Never computes or evicts a
  /// row and never counts as a hit or miss.
  float At(size_t i, size_t j) const override;

  /// The per-fit diagonal K(x_t, x_t) (libsvm's QD), computed once in
  /// the constructor; WSS2 reads eta candidates straight from it.
  const float* Diag() const override { return diag_.data(); }

  /// Narrows Row() computation to the given ascending subset of original
  /// indices. Rows computed under a restriction are valid for every
  /// LATER (smaller) restriction in the same era, because the solver's
  /// active set only shrinks between unshrinks; ClearActiveRestriction
  /// closes the era, after which partial rows recompute on next fetch
  /// (full rows stay valid forever).
  void RestrictActive(const int32_t* indices, size_t count) override;
  void ClearActiveRestriction() override;

  size_t size() const override { return matrix_.num_rows(); }
  /// With capacity >= 2 the most-recently-used row is never the eviction
  /// victim, so a fetched row survives one subsequent fetch.
  bool CanServeTwoRows() const override { return capacity_rows_ >= 2; }
  uint64_t hits() const override { return hits_; }
  uint64_t misses() const override { return misses_; }

  /// The owned training snapshot (support-vector extraction reads codes
  /// from here after the solve).
  const CodeMatrix& matrix() const { return matrix_; }

  /// Maximum number of rows resident at once under the byte budget.
  size_t capacity_rows() const { return capacity_rows_; }
  /// Number of rows currently resident.
  size_t resident_rows() const { return used_slots_; }
  /// True if row i is resident (test hook for eviction-order checks).
  bool Cached(size_t i) const;

 private:
  void ComputeRow(size_t i, float* out) const;
  void MoveToFront(int32_t slot);
  void PushFront(int32_t slot);
  void Detach(int32_t slot);
  /// A resident slot serves hits iff it was computed full (every column)
  /// or within the current restriction era (its columns are a superset
  /// of the current active set).
  bool SlotUsable(int32_t slot) const {
    return slot_full_[static_cast<size_t>(slot)] != 0 ||
           slot_era_[static_cast<size_t>(slot)] == era_;
  }
  /// Debug contract check: while restricted, callers may only touch
  /// restricted indices.
  bool InRestriction(size_t i) const {
    return restrict_idx_.empty() || member_mark_[i] == restrict_serial_;
  }

  CodeMatrix matrix_;
  // Bit-packed mirror of matrix_ plus the backend resolved once at
  // construction: every kernel evaluation this cache performs runs
  // popcount-over-words instead of the scalar code scan (bit-identical;
  // see simd/simd.h). Eval counters accumulate locally (ComputeRow/At are
  // const, hence mutable) and flush to the process-wide packed totals in
  // the destructor, like hits_/misses_.
  PackedCodeMatrix packed_;
  simd::Backend backend_ = simd::Backend::kSwar;
  mutable uint64_t packed_evals_ = 0;
  mutable uint64_t packed_words_ = 0;
  KernelConfig kernel_;
  std::vector<float> diag_;  // K(x_i, x_i), fixed per fit
  size_t capacity_rows_ = 1;
  std::vector<std::vector<float>> slots_;  // grown lazily up to capacity
  std::vector<int32_t> slot_of_row_;       // n entries, -1 = not resident
  std::vector<int32_t> row_of_slot_;
  std::vector<int32_t> prev_;  // LRU list over slots; head = MRU
  std::vector<int32_t> next_;
  int32_t head_ = -1;
  int32_t tail_ = -1;
  size_t used_slots_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  // Active-restriction state (see RestrictActive): the restricted column
  // set, an era counter bumped when a restriction is lifted, and per-slot
  // tags recording how each resident row was computed.
  std::vector<int32_t> restrict_idx_;  // empty = no restriction
  uint64_t era_ = 0;
  uint64_t restrict_serial_ = 0;
  std::vector<uint64_t> member_mark_;  // n; == restrict_serial_ if member
  std::vector<uint64_t> slot_era_;
  std::vector<uint8_t> slot_full_;
};

}  // namespace ml
}  // namespace hamlet

#endif  // HAMLET_ML_SVM_KERNEL_CACHE_H_
