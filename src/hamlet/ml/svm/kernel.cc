#include "hamlet/ml/svm/kernel.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "hamlet/data/packed_code_matrix.h"

namespace hamlet {
namespace ml {

const char* KernelTypeName(KernelType type) {
  switch (type) {
    case KernelType::kLinear:
      return "linear";
    case KernelType::kPoly:
      return "poly";
    case KernelType::kRbf:
      return "rbf";
  }
  return "unknown";
}

size_t MatchCount(const uint32_t* a, const uint32_t* b, size_t d) {
  size_t matches = 0;
  for (size_t j = 0; j < d; ++j) matches += a[j] == b[j];
  return matches;
}

double KernelFromMatches(const KernelConfig& config, size_t matches,
                         size_t d) {
  switch (config.type) {
    case KernelType::kLinear:
      return static_cast<double>(matches) / static_cast<double>(d);
    case KernelType::kPoly: {
      const double base = config.gamma * static_cast<double>(matches);
      double out = 1.0;
      for (int k = 0; k < config.degree; ++k) out *= base;
      return out;
    }
    case KernelType::kRbf: {
      const double sq_dist = 2.0 * static_cast<double>(d - matches);
      return std::exp(-config.gamma * sq_dist);
    }
  }
  return 0.0;
}

double KernelEval(const KernelConfig& config, const uint32_t* a,
                  const uint32_t* b, size_t d) {
  return KernelFromMatches(config, MatchCount(a, b, d), d);
}

double PackedKernelEval(const KernelConfig& config, simd::Backend backend,
                        const simd::PackedLayout& layout, const uint64_t* a,
                        const uint64_t* b) {
  const size_t matches = simd::PackedMatchCount(backend, layout, a, b);
  return KernelFromMatches(config, matches, layout.num_features);
}

std::vector<float> ComputeGram(const KernelConfig& config,
                               const std::vector<uint32_t>& rows, size_t n,
                               size_t d) {
  assert(rows.size() == n * d);
  // This path has no domain metadata, so the layout derives from the
  // largest code actually present; the match counts (and therefore every
  // Gram entry) do not depend on the layout choice.
  uint32_t max_code = 0;
  for (const uint32_t c : rows) max_code = std::max(max_code, c);
  const simd::PackedLayout layout = simd::PackedLayout::ForMaxCode(max_code, d);
  const PackedCodeMatrix packed(layout, rows.data(), n);
  const simd::Backend backend = simd::ActiveBackend();
  std::vector<float> gram(n * n);
  for (size_t i = 0; i < n; ++i) {
    const uint64_t* ri = packed.row(i);
    for (size_t j = i; j < n; ++j) {
      const float v = static_cast<float>(
          PackedKernelEval(config, backend, layout, ri, packed.row(j)));
      gram[i * n + j] = v;
      gram[j * n + i] = v;
    }
  }
  const uint64_t evals = static_cast<uint64_t>(n) * (n + 1) / 2;
  simd::AccumulatePackedEvals(evals, evals * layout.words_per_row);
  return gram;
}

}  // namespace ml
}  // namespace hamlet
