#include "hamlet/ml/svm/kernel.h"

#include <cassert>
#include <cmath>

namespace hamlet {
namespace ml {

const char* KernelTypeName(KernelType type) {
  switch (type) {
    case KernelType::kLinear:
      return "linear";
    case KernelType::kPoly:
      return "poly";
    case KernelType::kRbf:
      return "rbf";
  }
  return "unknown";
}

size_t MatchCount(const uint32_t* a, const uint32_t* b, size_t d) {
  size_t matches = 0;
  for (size_t j = 0; j < d; ++j) matches += a[j] == b[j];
  return matches;
}

double KernelEval(const KernelConfig& config, const uint32_t* a,
                  const uint32_t* b, size_t d) {
  const size_t matches = MatchCount(a, b, d);
  switch (config.type) {
    case KernelType::kLinear:
      return static_cast<double>(matches) / static_cast<double>(d);
    case KernelType::kPoly: {
      const double base = config.gamma * static_cast<double>(matches);
      double out = 1.0;
      for (int k = 0; k < config.degree; ++k) out *= base;
      return out;
    }
    case KernelType::kRbf: {
      const double sq_dist = 2.0 * static_cast<double>(d - matches);
      return std::exp(-config.gamma * sq_dist);
    }
  }
  return 0.0;
}

std::vector<float> ComputeGram(const KernelConfig& config,
                               const std::vector<uint32_t>& rows, size_t n,
                               size_t d) {
  assert(rows.size() == n * d);
  std::vector<float> gram(n * n);
  for (size_t i = 0; i < n; ++i) {
    const uint32_t* ri = &rows[i * d];
    for (size_t j = i; j < n; ++j) {
      const float v = static_cast<float>(
          KernelEval(config, ri, &rows[j * d], d));
      gram[i * n + j] = v;
      gram[j * n + i] = v;
    }
  }
  return gram;
}

}  // namespace ml
}  // namespace hamlet
