#include "hamlet/ml/grid_search.h"

#include "hamlet/ml/metrics.h"

namespace hamlet {
namespace ml {

ParamGrid& ParamGrid::Add(std::string name, std::vector<double> values) {
  axes_.emplace_back(std::move(name), std::move(values));
  return *this;
}

std::vector<ParamMap> ParamGrid::Enumerate() const {
  std::vector<ParamMap> out;
  out.emplace_back();  // start from the empty assignment
  for (const auto& [name, values] : axes_) {
    std::vector<ParamMap> next;
    next.reserve(out.size() * values.size());
    for (const auto& partial : out) {
      for (double v : values) {
        ParamMap m = partial;
        m[name] = v;
        next.push_back(std::move(m));
      }
    }
    out = std::move(next);
  }
  return out;
}

Result<GridSearchResult> GridSearch(const ModelFactory& factory,
                                    const ParamGrid& grid,
                                    const DataView& train,
                                    const DataView& val) {
  if (train.num_rows() == 0) {
    return Status::InvalidArgument("empty training view");
  }
  GridSearchResult result;
  result.best_val_accuracy = -1.0;
  for (const ParamMap& params : grid.Enumerate()) {
    std::unique_ptr<Classifier> model = factory(params);
    if (model == nullptr) {
      return Status::Internal("model factory returned null");
    }
    HAMLET_RETURN_IF_ERROR(model->Fit(train));
    const double val_acc =
        val.num_rows() > 0 ? Accuracy(*model, val) : 0.0;
    ++result.configurations_tried;
    if (val_acc > result.best_val_accuracy) {
      result.best_val_accuracy = val_acc;
      result.best_params = params;
      result.best_model = std::move(model);
    }
  }
  return result;
}

double ParamOr(const ParamMap& params, const std::string& key,
               double fallback) {
  auto it = params.find(key);
  return it == params.end() ? fallback : it->second;
}

}  // namespace ml
}  // namespace hamlet
