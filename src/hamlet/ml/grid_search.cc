#include "hamlet/ml/grid_search.h"

#include "hamlet/common/parallel.h"
#include "hamlet/ml/metrics.h"

namespace hamlet {
namespace ml {

ParamGrid& ParamGrid::Add(std::string name, std::vector<double> values) {
  axes_.emplace_back(std::move(name), std::move(values));
  return *this;
}

std::vector<ParamMap> ParamGrid::Enumerate() const {
  size_t total = 1;
  for (const auto& [name, values] : axes_) total *= values.size();
  std::vector<ParamMap> out;
  out.reserve(total);
  if (total == 0) return out;  // an empty axis annihilates the product
  // Odometer over the axes (last axis fastest) builds each assignment
  // exactly once instead of re-copying partial maps level by level.
  std::vector<size_t> digits(axes_.size(), 0);
  for (size_t a = 0; a < total; ++a) {
    ParamMap m;
    for (size_t k = 0; k < axes_.size(); ++k) {
      m.emplace(axes_[k].first, axes_[k].second[digits[k]]);
    }
    out.push_back(std::move(m));
    for (size_t k = axes_.size(); k-- > 0;) {
      if (++digits[k] < axes_[k].second.size()) break;
      digits[k] = 0;
    }
  }
  return out;
}

Result<GridSearchResult> GridSearch(const ModelFactory& factory,
                                    const ParamGrid& grid,
                                    const DataView& train,
                                    const DataView& val) {
  if (train.num_rows() == 0) {
    return Status::InvalidArgument("empty training view");
  }
  const std::vector<ParamMap> points = grid.Enumerate();

  // Every grid point fits and scores independently on the pool; the winner
  // is selected afterwards in enumeration order, so the outcome is
  // bit-identical at any thread count (ties go to the lowest index).
  // Workers keep only the score — holding all fitted models alive at once
  // would multiply peak memory by the grid size — except for single-point
  // grids, where keeping the model skips a pointless refit. Multi-point
  // grids pay one extra deterministic fit of the winning point instead.
  const bool keep_model = points.size() == 1;
  std::vector<double> val_accuracy(points.size(), -1.0);
  std::unique_ptr<Classifier> only_model;
  Status fit_status = parallel::ParallelForStatus(
      points.size(), [&](size_t i) -> Status {
        std::unique_ptr<Classifier> model = factory(points[i]);
        if (model == nullptr) {
          return Status::Internal("model factory returned null");
        }
        HAMLET_RETURN_IF_ERROR(model->Fit(train));
        val_accuracy[i] = val.num_rows() > 0 ? Accuracy(*model, val) : 0.0;
        if (keep_model) only_model = std::move(model);
        return Status::OK();
      });
  if (!fit_status.ok()) return fit_status;

  GridSearchResult result;
  result.best_val_accuracy = -1.0;
  result.configurations_tried = points.size();
  size_t best_index = points.size();
  for (size_t i = 0; i < points.size(); ++i) {
    if (val_accuracy[i] > result.best_val_accuracy) {
      result.best_val_accuracy = val_accuracy[i];
      best_index = i;
    }
  }
  if (best_index == points.size()) return result;  // empty axis, no points
  result.best_params = points[best_index];
  if (keep_model) {
    result.best_model = std::move(only_model);
  } else {
    // Refitting the winner on the same training view is deterministic, so
    // this reproduces the exact model the worker scored.
    result.best_model = factory(points[best_index]);
    if (result.best_model == nullptr) {
      return Status::Internal("model factory returned null");
    }
    HAMLET_RETURN_IF_ERROR(result.best_model->Fit(train));
  }
  return result;
}

double ParamOr(const ParamMap& params, const std::string& key,
               double fallback) {
  auto it = params.find(key);
  return it == params.end() ? fallback : it->second;
}

}  // namespace ml
}  // namespace hamlet
