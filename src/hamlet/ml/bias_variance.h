// Domingos (2000) bias-variance decomposition for 0/1 loss.
//
// The paper's simulation study reports "average test error and average net
// variance (as defined in [9])" over 100 training sets drawn from the same
// true distribution. For 0/1 loss:
//   main prediction  ym(x) = majority vote of the runs' predictions at x
//   bias(x)          = 1 if ym(x) != y*(x) else 0
//   variance(x)      = fraction of runs disagreeing with ym(x)
//   net variance     = E_x[variance | unbiased] - E_x[variance | biased]
// where y*(x) is the optimal (Bayes) prediction; callers that do not know
// it may pass the observed test labels as a proxy.

#ifndef HAMLET_ML_BIAS_VARIANCE_H_
#define HAMLET_ML_BIAS_VARIANCE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "hamlet/common/status.h"

namespace hamlet {
namespace ml {

/// Decomposition outputs, all averaged over the test points.
struct BiasVariance {
  double mean_error = 0.0;     ///< avg over runs of test error vs labels
  double bias = 0.0;           ///< E_x[ main prediction != y* ]
  double variance = 0.0;       ///< E_x[ P_runs(pred != main) ]
  double variance_unbiased = 0.0;
  double variance_biased = 0.0;
  double net_variance = 0.0;   ///< variance_unbiased - variance_biased
  size_t num_runs = 0;
};

/// Decomposes fixed per-run predictions. `run_predictions[r][i]` is run r's
/// prediction at test point i; `test_labels` are the observed labels used
/// for mean_error; `optimal` is y* (pass `test_labels` again when the Bayes
/// prediction is unknown). Majority-vote ties break toward label 1.
Result<BiasVariance> DecomposePredictions(
    const std::vector<std::vector<uint8_t>>& run_predictions,
    const std::vector<uint8_t>& test_labels,
    const std::vector<uint8_t>& optimal);

/// Monte-Carlo driver: calls `run(r)` for r in [0, num_runs); each call
/// trains a fresh model on a freshly sampled training set and returns its
/// predictions on a fixed test set. Runs execute concurrently on the
/// parallel pool (HAMLET_THREADS), so the callback must be thread-safe:
/// derive all randomness from the run index r (per-run seeds) instead of
/// sharing a generator across runs.
Result<BiasVariance> MonteCarloBiasVariance(
    size_t num_runs,
    const std::function<std::vector<uint8_t>(size_t run)>& run,
    const std::vector<uint8_t>& test_labels,
    const std::vector<uint8_t>& optimal);

}  // namespace ml
}  // namespace hamlet

#endif  // HAMLET_ML_BIAS_VARIANCE_H_
