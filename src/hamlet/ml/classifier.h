// Common interface for all classifiers in hamlet.
//
// All models consume DataViews of categorical codes. A model trained on a
// view with feature subset F must be evaluated on views with the *same*
// feature subset (same underlying column ids, same order); this is how the
// JoinAll / NoJoin / NoFK variants stay comparable.

#ifndef HAMLET_ML_CLASSIFIER_H_
#define HAMLET_ML_CLASSIFIER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "hamlet/common/parallel.h"
#include "hamlet/common/status.h"
#include "hamlet/data/view.h"

namespace hamlet {
namespace ml {

/// Abstract binary classifier over categorical feature vectors.
class Classifier {
 public:
  virtual ~Classifier() = default;

  /// Trains on `train`. Must be called before Predict.
  virtual Status Fit(const DataView& train) = 0;

  /// Predicts the label of row `i` of `view`. `view` must select the same
  /// feature columns as the training view.
  virtual uint8_t Predict(const DataView& view, size_t i) const = 0;

  /// Short human-readable model name ("dt-gini", "svm-rbf", ...).
  virtual std::string name() const = 0;

  /// Predicts every row of `view`. Rows are scored concurrently on the
  /// parallel pool (Predict is const); out[i] is keyed by row index, so
  /// the result is identical at any thread count.
  std::vector<uint8_t> PredictAll(const DataView& view) const {
    std::vector<uint8_t> out(view.num_rows());
    parallel::ParallelFor(out.size(),
                          [&](size_t i) { out[i] = Predict(view, i); });
    return out;
  }
};

}  // namespace ml
}  // namespace hamlet

#endif  // HAMLET_ML_CLASSIFIER_H_
