// Common interface for all classifiers in hamlet.
//
// All models consume DataViews of categorical codes. A model trained on a
// view with feature subset F must be evaluated on views with the *same*
// feature subset (same underlying column ids, same order); this is how the
// JoinAll / NoJoin / NoFK variants stay comparable.

#ifndef HAMLET_ML_CLASSIFIER_H_
#define HAMLET_ML_CLASSIFIER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "hamlet/common/parallel.h"
#include "hamlet/common/status.h"
#include "hamlet/common/attributes.h"
#include "hamlet/data/code_matrix.h"
#include "hamlet/data/view.h"

namespace hamlet {

namespace io {
class ModelWriter;
class ModelReader;
}  // namespace io

namespace ml {

/// Stable on-disk tag of a serializable learner family. The numeric
/// values are part of the model file format (io/serialize.cc keys its
/// Load dispatch on them): never renumber, only append.
enum class ModelFamily : uint32_t {
  kUnsupported = 0,   ///< wrapper/meta models with no on-disk format
  kDecisionTree = 1,
  kNaiveBayes = 2,
  kLogRegL1 = 3,
  kKernelSvm = 4,
  kOneNn = 5,
  kMlp = 6,
  kMajority = 7,
};

/// Human-readable name for a ModelFamily ("decision-tree", ...).
const char* ModelFamilyName(ModelFamily family);

/// Runs body(i) for every row index in [0, n): serially below a threshold
/// where the pool's dispatch overhead dominates per-row prediction cost,
/// on the parallel pool above it. Results must be keyed by index, so the
/// output is identical either way. Row scoring belongs here rather than on
/// a ThreadPool-level cutoff: the pool cannot know per-index cost, and
/// loops with few-but-huge indices (grid points) must still fan out.
/// Templated on the callable so the serial path dispatches the concrete
/// lambda directly; the std::function type erasure is paid only once at
/// the ParallelFor boundary.
template <typename Body>
void ForEachPredictRow(size_t n, Body&& body) {
  constexpr size_t kSerialRowThreshold = 512;
  if (n < kSerialRowThreshold) {
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }
  parallel::ParallelFor(n, body);
}

/// The shared shape of every dense batch-predict override: materialise
/// the view into a CodeMatrix once, then score each contiguous row with
/// `predict_row(matrix, i)` (must return uint8_t and be bit-identical to
/// the learner's per-row Predict at any thread count).
template <typename RowPredictor>
std::vector<uint8_t> DensePredictAll(const DataView& view,
                                     RowPredictor&& predict_row) {
  const CodeMatrix queries(view);
  std::vector<uint8_t> out(queries.num_rows());
  ForEachPredictRow(out.size(), [&](size_t i) {
    out[i] = predict_row(queries, i);
  });
  return out;
}

/// Abstract binary classifier over categorical feature vectors.
class Classifier {
 public:
  virtual ~Classifier() = default;

  /// Trains on `train`. Must be called before Predict.
  HAMLET_NODISCARD virtual Status Fit(const DataView& train) = 0;

  /// Predicts the label of row `i` of `view`. `view` must select the same
  /// feature columns as the training view.
  virtual uint8_t Predict(const DataView& view, size_t i) const = 0;

  /// Short human-readable model name ("dt-gini", "svm-rbf", ...).
  virtual std::string name() const = 0;

  /// Predicts every row of `view`. Rows are scored concurrently on the
  /// parallel pool (Predict is const); out[i] is keyed by row index, so
  /// the result is identical at any thread count.
  ///
  /// Hot learners override this to materialise the view into a dense
  /// CodeMatrix once and run the per-row predictions on the contiguous
  /// buffer. Overrides must stay bit-identical to the per-row Predict
  /// path at any thread count (tests/code_matrix_test.cc enforces this).
  virtual std::vector<uint8_t> PredictAll(const DataView& view) const {
    std::vector<uint8_t> out(view.num_rows());
    ForEachPredictRow(out.size(),
                      [&](size_t i) { out[i] = Predict(view, i); });
    return out;
  }

  // --- Serialization (io/serialize.h wraps these in the versioned
  // container format; see docs/ARCHITECTURE.md, "The model format") ---

  /// On-disk family tag. kUnsupported (the default) means the model has
  /// no serialized form and SaveBody fails with FailedPrecondition;
  /// every concrete learner family overrides both.
  virtual ModelFamily family() const { return ModelFamily::kUnsupported; }

  /// Writes the fitted learner's body section (everything Predict needs,
  /// nothing the container header already carries). Called by
  /// io::SaveModel after the header; must only be called on a fitted
  /// model. The matching deserializer is the learner's static
  /// LoadBody(io::ModelReader&, const std::vector<uint32_t>& domains),
  /// which validates the body against the header's domain metadata.
  HAMLET_NODISCARD virtual Status SaveBody(io::ModelWriter& writer) const;

  /// Per-feature domain sizes of the training view, captured by every
  /// Fit via RecordTrainDomains. Serialized in the model header so a
  /// server can decode and validate raw request tuples without the
  /// training Dataset; empty before the first Fit.
  const std::vector<uint32_t>& train_domain_sizes() const {
    return train_domain_sizes_;
  }

  /// Restores the Fit-time domain metadata on a deserialized model
  /// (io::LoadModel reads it from the container header).
  void RestoreTrainDomains(std::vector<uint32_t> domain_sizes) {
    train_domain_sizes_ = std::move(domain_sizes);
  }

 protected:
  /// Snapshots `train`'s per-feature domain sizes; every learner's Fit
  /// calls this before returning OK.
  void RecordTrainDomains(const DataView& train);

 private:
  std::vector<uint32_t> train_domain_sizes_;
};

}  // namespace ml
}  // namespace hamlet

#endif  // HAMLET_ML_CLASSIFIER_H_
