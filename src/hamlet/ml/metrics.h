// Evaluation metrics for binary classifiers.

#ifndef HAMLET_ML_METRICS_H_
#define HAMLET_ML_METRICS_H_

#include <cstdint>
#include <vector>

#include "hamlet/data/view.h"
#include "hamlet/ml/classifier.h"

namespace hamlet {
namespace ml {

/// 2x2 confusion counts.
struct ConfusionMatrix {
  size_t tp = 0, tn = 0, fp = 0, fn = 0;

  size_t total() const { return tp + tn + fp + fn; }
  double accuracy() const;
  double error_rate() const { return 1.0 - accuracy(); }
  double precision() const;
  double recall() const;
  double f1() const;
};

/// Confusion matrix of `model` on `view`.
ConfusionMatrix Evaluate(const Classifier& model, const DataView& view);

/// Fraction of rows where `model` predicts the view's label.
double Accuracy(const Classifier& model, const DataView& view);

/// 1 - Accuracy.
double ErrorRate(const Classifier& model, const DataView& view);

/// Accuracy of fixed predictions against labels (sizes must match).
double PredictionAccuracy(const std::vector<uint8_t>& predictions,
                          const std::vector<uint8_t>& labels);

}  // namespace ml
}  // namespace hamlet

#endif  // HAMLET_ML_METRICS_H_
