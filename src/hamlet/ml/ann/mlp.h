// Multi-layer perceptron for binary classification over one-hot inputs.
//
// Matches the paper's ANN (§3.2): two hidden layers of 256 and 64 ReLU
// units, sigmoid output, L2 weight penalty, trained with Adam. The input
// is the one-hot encoding of the categorical row; because exactly one unit
// per feature is active, the first layer runs sparsely (sum of active
// columns) and its gradient/Adam state updates lazily per active column.

#ifndef HAMLET_ML_ANN_MLP_H_
#define HAMLET_ML_ANN_MLP_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "hamlet/data/one_hot.h"
#include "hamlet/ml/classifier.h"

namespace hamlet {
namespace ml {

/// Hyper-parameters; defaults follow the paper's architecture and the
/// midpoints of its tuning grids.
struct MlpConfig {
  std::vector<size_t> hidden_sizes = {256, 64};
  double learning_rate = 1e-2;  ///< Adam step size (grid: 1e-3..1e-1)
  double l2 = 1e-3;             ///< L2 penalty (grid: 1e-4..1e-2)
  size_t epochs = 12;
  size_t batch_size = 32;
  /// Adam moment decay (paper: library defaults).
  double beta1 = 0.9;
  double beta2 = 0.999;
  double epsilon = 1e-8;
  uint64_t seed = 1;
};

/// Feed-forward network with a sparse first layer.
class Mlp : public Classifier {
 public:
  explicit Mlp(MlpConfig config = {});

  Status Fit(const DataView& train) override;
  uint8_t Predict(const DataView& view, size_t i) const override;
  std::string name() const override { return "ann-mlp"; }

  ModelFamily family() const override { return ModelFamily::kMlp; }
  /// Serializes the inference state only (first-layer columns, biases,
  /// dense layers); Adam moments are training state and zero-fill on load.
  Status SaveBody(io::ModelWriter& writer) const override;
  static Result<std::unique_ptr<Mlp>> LoadBody(
      io::ModelReader& reader, const std::vector<uint32_t>& domains);

  /// P(y = 1 | x) for row i of `view`.
  double PredictProbability(const DataView& view, size_t i) const;

 private:
  struct DenseLayer {
    size_t in = 0, out = 0;
    std::vector<double> w;  // out x in, row-major
    std::vector<double> b;
    // Adam state.
    std::vector<double> mw, vw, mb, vb;
  };

  /// Forward pass from the active one-hot units; fills per-layer
  /// activations (post-ReLU) and returns the output probability.
  double Forward(const std::vector<uint32_t>& active,
                 std::vector<std::vector<double>>& acts) const;

  MlpConfig config_;
  OneHotMap one_hot_;
  bool fitted_ = false;
  // First layer stored column-major over one-hot units for sparse access:
  // col_w_[u] is the h1-sized column for unit u.
  std::vector<std::vector<double>> col_w_;
  std::vector<std::vector<double>> col_m_, col_v_;  // Adam state per column
  std::vector<double> b1_, m_b1_, v_b1_;
  std::vector<DenseLayer> layers_;  // hidden2..output
  size_t h1_ = 0;
  size_t adam_t_ = 0;
};

}  // namespace ml
}  // namespace hamlet

#endif  // HAMLET_ML_ANN_MLP_H_
