#include "hamlet/ml/ann/mlp.h"

#include <cassert>
#include <cmath>
#include <memory>
#include <numeric>
#include <utility>

#include "hamlet/common/rng.h"
#include "hamlet/io/model_io.h"

namespace hamlet {
namespace ml {

namespace {

double Sigmoid(double z) {
  if (z >= 0) {
    const double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(z);
  return e / (1.0 + e);
}

/// One Adam step on a single parameter.
inline void AdamStep(double& param, double grad, double& m, double& v,
                     double lr, double beta1, double beta2, double eps,
                     double bias1, double bias2) {
  m = beta1 * m + (1.0 - beta1) * grad;
  v = beta2 * v + (1.0 - beta2) * grad * grad;
  const double mhat = m / bias1;
  const double vhat = v / bias2;
  param -= lr * mhat / (std::sqrt(vhat) + eps);
}

}  // namespace

Mlp::Mlp(MlpConfig config) : config_(std::move(config)) {}

double Mlp::Forward(const std::vector<uint32_t>& active,
                    std::vector<std::vector<double>>& acts) const {
  // Layer 1 (sparse): h1 = ReLU(b1 + sum of active columns).
  acts.resize(layers_.size() + 1);
  std::vector<double>& h1 = acts[0];
  h1 = b1_;
  for (uint32_t u : active) {
    const std::vector<double>& col = col_w_[u];
    for (size_t k = 0; k < h1_; ++k) h1[k] += col[k];
  }
  for (double& v : h1) v = v > 0.0 ? v : 0.0;

  // Dense layers; all but the last use ReLU.
  for (size_t l = 0; l < layers_.size(); ++l) {
    const DenseLayer& layer = layers_[l];
    const std::vector<double>& in = acts[l];
    std::vector<double>& out = acts[l + 1];
    out.assign(layer.out, 0.0);
    for (size_t o = 0; o < layer.out; ++o) {
      const double* wrow = &layer.w[o * layer.in];
      double z = layer.b[o];
      for (size_t k = 0; k < layer.in; ++k) z += wrow[k] * in[k];
      out[o] = z;
    }
    if (l + 1 < layers_.size()) {
      for (double& v : out) v = v > 0.0 ? v : 0.0;
    }
  }
  return Sigmoid(acts.back()[0]);
}

Status Mlp::Fit(const DataView& train) {
  if (train.num_rows() == 0) {
    return Status::InvalidArgument("empty training view");
  }
  one_hot_ = OneHotMap(train);
  const size_t input_dim = one_hot_.dimension();
  if (config_.hidden_sizes.empty()) {
    return Status::InvalidArgument("need at least one hidden layer");
  }
  h1_ = config_.hidden_sizes[0];

  Rng rng(config_.seed);
  auto init = [&](size_t fan_in) {
    // He initialisation for ReLU layers.
    return rng.Normal() * std::sqrt(2.0 / static_cast<double>(fan_in));
  };

  // First (sparse) layer: one column per one-hot unit. Fan-in for a row of
  // the first layer is the number of features (active units per row).
  const size_t active_per_row = train.num_features();
  col_w_.assign(input_dim, std::vector<double>(h1_));
  col_m_.assign(input_dim, std::vector<double>(h1_, 0.0));
  col_v_.assign(input_dim, std::vector<double>(h1_, 0.0));
  for (auto& col : col_w_) {
    for (double& w : col) w = init(active_per_row);
  }
  b1_.assign(h1_, 0.0);
  m_b1_.assign(h1_, 0.0);
  v_b1_.assign(h1_, 0.0);

  // Dense layers: hidden[1..] then the single output unit.
  layers_.clear();
  size_t prev = h1_;
  std::vector<size_t> dense_sizes(config_.hidden_sizes.begin() + 1,
                                  config_.hidden_sizes.end());
  dense_sizes.push_back(1);
  for (size_t size : dense_sizes) {
    DenseLayer layer;
    layer.in = prev;
    layer.out = size;
    layer.w.resize(size * prev);
    for (double& w : layer.w) w = init(prev);
    layer.b.assign(size, 0.0);
    layer.mw.assign(size * prev, 0.0);
    layer.vw.assign(size * prev, 0.0);
    layer.mb.assign(size, 0.0);
    layer.vb.assign(size, 0.0);
    layers_.push_back(std::move(layer));
    prev = size;
  }
  adam_t_ = 0;

  const size_t n = train.num_rows();
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);

  std::vector<uint32_t> active;
  std::vector<std::vector<double>> acts;
  std::vector<std::vector<double>> deltas(layers_.size() + 1);

  // Minibatch gradient accumulators.
  const size_t batch = std::max<size_t>(1, config_.batch_size);
  std::vector<std::vector<double>> gw(layers_.size());
  std::vector<std::vector<double>> gb(layers_.size());
  for (size_t l = 0; l < layers_.size(); ++l) {
    gw[l].assign(layers_[l].w.size(), 0.0);
    gb[l].assign(layers_[l].b.size(), 0.0);
  }
  std::vector<double> g_b1(h1_, 0.0);
  // Sparse first-layer gradient: unit id -> h1-sized gradient column.
  std::vector<std::vector<double>> g_cols;
  std::vector<uint32_t> g_units;
  std::vector<int> unit_slot(input_dim, -1);

  const double lr = config_.learning_rate;
  const double lambda = config_.l2;

  for (size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.Shuffle(order);
    for (size_t start = 0; start < n; start += batch) {
      const size_t stop = std::min(n, start + batch);
      const double inv_bs = 1.0 / static_cast<double>(stop - start);

      // Zero accumulators (sparse part resets only touched units).
      for (size_t l = 0; l < layers_.size(); ++l) {
        std::fill(gw[l].begin(), gw[l].end(), 0.0);
        std::fill(gb[l].begin(), gb[l].end(), 0.0);
      }
      std::fill(g_b1.begin(), g_b1.end(), 0.0);
      for (uint32_t u : g_units) unit_slot[u] = -1;
      g_units.clear();
      g_cols.clear();

      for (size_t idx = start; idx < stop; ++idx) {
        const size_t i = order[idx];
        one_hot_.ActiveUnits(train, i, active);
        const double p = Forward(active, acts);
        const double y = static_cast<double>(train.label(i));

        // Output delta for sigmoid + cross-entropy.
        deltas[layers_.size()].assign(1, p - y);

        // Backprop through dense layers.
        for (size_t l = layers_.size(); l-- > 0;) {
          const DenseLayer& layer = layers_[l];
          const std::vector<double>& in =
              acts[l];  // post-activation input to this layer
          const std::vector<double>& dout = deltas[l + 1];
          std::vector<double>& din = deltas[l];
          din.assign(layer.in, 0.0);
          for (size_t o = 0; o < layer.out; ++o) {
            const double d = dout[o];
            if (d == 0.0) continue;
            double* gw_row = &gw[l][o * layer.in];
            const double* w_row = &layer.w[o * layer.in];
            for (size_t k = 0; k < layer.in; ++k) {
              gw_row[k] += d * in[k];
              din[k] += d * w_row[k];
            }
            gb[l][o] += d;
          }
          // ReLU derivative on the layer input (which is acts[l], already
          // rectified: derivative is 1 where act > 0).
          for (size_t k = 0; k < layer.in; ++k) {
            if (in[k] <= 0.0) din[k] = 0.0;
          }
        }

        // Sparse first layer gradient: d(h1)/d(col_u) = 1 for active u.
        const std::vector<double>& d1 = deltas[0];
        for (size_t k = 0; k < h1_; ++k) g_b1[k] += d1[k];
        for (uint32_t u : active) {
          int slot = unit_slot[u];
          if (slot < 0) {
            slot = static_cast<int>(g_cols.size());
            unit_slot[u] = slot;
            g_units.push_back(u);
            g_cols.emplace_back(h1_, 0.0);
          }
          std::vector<double>& gcol = g_cols[static_cast<size_t>(slot)];
          for (size_t k = 0; k < h1_; ++k) gcol[k] += d1[k];
        }
      }

      // Adam updates (L2 added as decoupled-style gradient term).
      ++adam_t_;
      const double bias1 = 1.0 - std::pow(config_.beta1,
                                          static_cast<double>(adam_t_));
      const double bias2 = 1.0 - std::pow(config_.beta2,
                                          static_cast<double>(adam_t_));
      for (size_t l = 0; l < layers_.size(); ++l) {
        DenseLayer& layer = layers_[l];
        for (size_t t = 0; t < layer.w.size(); ++t) {
          const double g = gw[l][t] * inv_bs + lambda * layer.w[t];
          AdamStep(layer.w[t], g, layer.mw[t], layer.vw[t], lr,
                   config_.beta1, config_.beta2, config_.epsilon, bias1,
                   bias2);
        }
        for (size_t t = 0; t < layer.b.size(); ++t) {
          AdamStep(layer.b[t], gb[l][t] * inv_bs, layer.mb[t], layer.vb[t],
                   lr, config_.beta1, config_.beta2, config_.epsilon, bias1,
                   bias2);
        }
      }
      for (size_t k = 0; k < h1_; ++k) {
        AdamStep(b1_[k], g_b1[k] * inv_bs, m_b1_[k], v_b1_[k], lr,
                 config_.beta1, config_.beta2, config_.epsilon, bias1,
                 bias2);
      }
      // Lazy per-column update: only columns touched by this batch move
      // (their Adam moments update with the current timestep correction).
      for (size_t s = 0; s < g_units.size(); ++s) {
        const uint32_t u = g_units[s];
        std::vector<double>& col = col_w_[u];
        std::vector<double>& m = col_m_[u];
        std::vector<double>& v = col_v_[u];
        const std::vector<double>& gcol = g_cols[s];
        for (size_t k = 0; k < h1_; ++k) {
          const double g = gcol[k] * inv_bs + lambda * col[k];
          AdamStep(col[k], g, m[k], v[k], lr, config_.beta1, config_.beta2,
                   config_.epsilon, bias1, bias2);
        }
      }
    }
  }
  fitted_ = true;
  RecordTrainDomains(train);
  return Status::OK();
}

Status Mlp::SaveBody(io::ModelWriter& writer) const {
  if (!fitted_) return Status::FailedPrecondition("ann-mlp: Save before Fit");
  writer.WriteU64(h1_);
  writer.WriteU64(col_w_.size());
  for (const std::vector<double>& col : col_w_) {
    // Fixed-size columns (h1_ each); lengths are implied, not repeated.
    for (double w : col) writer.WriteF64(w);
  }
  writer.WriteF64Vec(b1_);
  writer.WriteU64(layers_.size());
  for (const DenseLayer& layer : layers_) {
    writer.WriteU64(layer.in);
    writer.WriteU64(layer.out);
    writer.WriteF64Vec(layer.w);
    writer.WriteF64Vec(layer.b);
  }
  return writer.status();
}

Result<std::unique_ptr<Mlp>> Mlp::LoadBody(
    io::ModelReader& reader, const std::vector<uint32_t>& domains) {
  auto model = std::make_unique<Mlp>();
  model->one_hot_ = OneHotMap(domains);
  uint64_t h1, num_cols;
  HAMLET_RETURN_IF_ERROR(reader.ReadU64(&h1));
  HAMLET_RETURN_IF_ERROR(reader.ReadU64(&num_cols));
  if (h1 == 0 || h1 > io::kMaxVectorElements) {
    return Status::InvalidArgument("corrupt model: mlp hidden width");
  }
  if (num_cols != model->one_hot_.dimension()) {
    return Status::InvalidArgument(
        "corrupt model: mlp first-layer columns do not match the one-hot "
        "dimension of the header domains");
  }
  model->h1_ = static_cast<size_t>(h1);
  model->col_w_.assign(static_cast<size_t>(num_cols),
                       std::vector<double>(model->h1_));
  for (std::vector<double>& col : model->col_w_) {
    for (double& w : col) HAMLET_RETURN_IF_ERROR(reader.ReadF64(&w));
  }
  HAMLET_RETURN_IF_ERROR(reader.ReadF64Vec(&model->b1_));
  if (model->b1_.size() != model->h1_) {
    return Status::InvalidArgument(
        "corrupt model: mlp first-layer bias does not match hidden width");
  }
  uint64_t num_layers;
  HAMLET_RETURN_IF_ERROR(reader.ReadU64(&num_layers));
  if (num_layers == 0 || num_layers > 64) {
    return Status::InvalidArgument("corrupt model: mlp layer count");
  }
  size_t prev = model->h1_;
  for (uint64_t l = 0; l < num_layers; ++l) {
    DenseLayer layer;
    uint64_t in, out;
    HAMLET_RETURN_IF_ERROR(reader.ReadU64(&in));
    HAMLET_RETURN_IF_ERROR(reader.ReadU64(&out));
    HAMLET_RETURN_IF_ERROR(reader.ReadF64Vec(&layer.w));
    HAMLET_RETURN_IF_ERROR(reader.ReadF64Vec(&layer.b));
    layer.in = static_cast<size_t>(in);
    layer.out = static_cast<size_t>(out);
    // Forward indexes w[o * in + k] for o < out, k < in, and chains each
    // layer's input to the previous output — enforce the full shape.
    if (layer.in != prev || layer.out == 0 ||
        layer.w.size() != layer.in * layer.out ||
        layer.b.size() != layer.out) {
      return Status::InvalidArgument(
          "corrupt model: mlp dense-layer shape mismatch");
    }
    prev = layer.out;
    model->layers_.push_back(std::move(layer));
  }
  if (prev != 1) {
    return Status::InvalidArgument(
        "corrupt model: mlp output layer is not a single unit");
  }
  // Restore the architecture knob so config introspection matches; all
  // Adam state belongs to training and stays empty until a refit.
  model->config_.hidden_sizes.assign(1, model->h1_);
  for (size_t l = 0; l + 1 < model->layers_.size(); ++l) {
    model->config_.hidden_sizes.push_back(model->layers_[l].out);
  }
  model->fitted_ = true;
  return Result<std::unique_ptr<Mlp>>(std::move(model));
}

double Mlp::PredictProbability(const DataView& view, size_t i) const {
  assert(one_hot_.num_features() == view.num_features());
  std::vector<uint32_t> active;
  one_hot_.ActiveUnits(view, i, active);
  // Codes can exceed the training domain only if the caller bypassed the
  // dataset's domain bookkeeping; guard anyway.
  for (uint32_t& u : active) {
    if (u >= col_w_.size()) u = static_cast<uint32_t>(col_w_.size() - 1);
  }
  std::vector<std::vector<double>> acts;
  return Forward(active, acts);
}

uint8_t Mlp::Predict(const DataView& view, size_t i) const {
  return PredictProbability(view, i) >= 0.5 ? 1 : 0;
}

}  // namespace ml
}  // namespace hamlet
