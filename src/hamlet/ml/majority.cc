#include "hamlet/ml/majority.h"

#include "hamlet/io/model_io.h"

namespace hamlet {
namespace ml {

Status MajorityClassifier::Fit(const DataView& train) {
  if (train.num_rows() == 0) {
    return Status::InvalidArgument("empty training view");
  }
  size_t pos = 0;
  for (size_t i = 0; i < train.num_rows(); ++i) pos += train.label(i);
  positive_rate_ =
      static_cast<double>(pos) / static_cast<double>(train.num_rows());
  prediction_ = (2 * pos >= train.num_rows()) ? 1 : 0;
  fitted_ = true;
  RecordTrainDomains(train);
  return Status::OK();
}

uint8_t MajorityClassifier::Predict(const DataView& /*view*/,
                                    size_t /*i*/) const {
  return prediction_;
}

std::vector<uint8_t> MajorityClassifier::PredictAll(
    const DataView& view) const {
  return std::vector<uint8_t>(view.num_rows(), prediction_);
}

Status MajorityClassifier::SaveBody(io::ModelWriter& writer) const {
  if (!fitted_) {
    return Status::FailedPrecondition("majority: Save before Fit");
  }
  writer.WriteU8(prediction_);
  writer.WriteF64(positive_rate_);
  return writer.status();
}

Result<std::unique_ptr<MajorityClassifier>> MajorityClassifier::LoadBody(
    io::ModelReader& reader, const std::vector<uint32_t>& /*domains*/) {
  auto model = std::make_unique<MajorityClassifier>();
  HAMLET_RETURN_IF_ERROR(reader.ReadU8(&model->prediction_));
  HAMLET_RETURN_IF_ERROR(reader.ReadF64(&model->positive_rate_));
  if (model->prediction_ > 1) {
    return Status::InvalidArgument(
        "corrupt model: majority prediction not a binary label");
  }
  model->fitted_ = true;
  return Result<std::unique_ptr<MajorityClassifier>>(std::move(model));
}

}  // namespace ml
}  // namespace hamlet
