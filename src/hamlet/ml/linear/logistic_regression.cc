#include "hamlet/ml/linear/logistic_regression.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <memory>
#include <utility>

#include "hamlet/io/model_io.h"
#include "hamlet/ml/metrics.h"

namespace hamlet {
namespace ml {

namespace {

double Sigmoid(double z) {
  if (z >= 0) {
    const double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(z);
  return e / (1.0 + e);
}

double SoftThreshold(double x, double t) {
  if (x > t) return x - t;
  if (x < -t) return x + t;
  return 0.0;
}

}  // namespace

LogisticRegressionL1::LogisticRegressionL1(LogisticRegressionConfig config)
    : config_(std::move(config)) {}

double LogisticRegressionL1::MarginOfCodes(const uint32_t* codes) const {
  double z = intercept_;
  for (size_t j = 0; j < one_hot_.num_features(); ++j) {
    const uint32_t u = one_hot_.UnitIndex(j, codes[j]);
    if (u < weights_.size()) z += weights_[u];
  }
  return z;
}

Status LogisticRegressionL1::Fit(const DataView& train) {
  if (train.num_rows() == 0) {
    return Status::InvalidArgument("empty training view");
  }
  // Materialise the training view once; the per-row one-hot unit lists
  // below then come from contiguous code rows instead of double-indirect
  // view accesses.
  const CodeMatrix m(train);
  const size_t n = m.num_rows();
  one_hot_ = OneHotMap(train);
  const size_t dim = one_hot_.dimension();
  const size_t d_active = m.num_features();

  // Precompute active unit lists (n rows x d_active units).
  std::vector<uint32_t> units(n * d_active);
  std::vector<uint32_t> row_units;
  for (size_t i = 0; i < n; ++i) {
    one_hot_.ActiveUnitsFromCodes(m.row(i), row_units);
    std::copy(row_units.begin(), row_units.end(),
              units.begin() + static_cast<long>(i * d_active));
  }
  std::vector<double> y(n);
  double ybar = 0.0;
  for (size_t i = 0; i < n; ++i) {
    y[i] = static_cast<double>(m.label(i));
    ybar += y[i];
  }
  ybar /= static_cast<double>(n);

  // lambda_max: smallest lambda with an all-zero penalised solution,
  // max_u |grad_u| at w=0 (with the intercept at the base rate).
  std::vector<double> grad0(dim, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const double r = ybar - y[i];
    // data() arithmetic, not &units[...]: with zero features the vector
    // is empty and forming a reference to units[0] is UB.
    const uint32_t* ru = units.data() + i * d_active;
    for (size_t j = 0; j < d_active; ++j) grad0[ru[j]] += r;
  }
  double lambda_max = 0.0;
  for (double g : grad0) {
    lambda_max = std::max(lambda_max, std::abs(g) / static_cast<double>(n));
  }
  if (lambda_max <= 0.0) lambda_max = 1e-3;
  // The argmax unit sits exactly on the soft-threshold boundary at
  // lambda_max; nudge upward so the path start is genuinely all-zero.
  lambda_max *= 1.001;

  // Lipschitz bound for the logistic loss over one-hot rows: each unit
  // appears in at most n rows with value 1, curvature <= 1/4.
  const double step = 4.0 / (static_cast<double>(d_active) + 1.0);

  // Geometric path, warm-started.
  const size_t nlambda = std::max<size_t>(1, config_.nlambda);
  std::vector<double> lambdas(nlambda);
  const double lmin = lambda_max * config_.lambda_min_ratio;
  for (size_t k = 0; k < nlambda; ++k) {
    // Path starts at lambda_max (all-zero penalised solution) and decays
    // geometrically to lambda_min; a single-point path stays at lambda_max.
    const double t = nlambda == 1
                         ? 0.0
                         : static_cast<double>(k) /
                               static_cast<double>(nlambda - 1);
    lambdas[k] = lambda_max * std::pow(lmin / lambda_max, t);
  }

  std::vector<double> w(dim, 0.0);
  double b = std::log((ybar + 1e-9) / (1.0 - ybar + 1e-9));
  std::vector<double> grad(dim, 0.0);

  double best_acc = -1.0;
  std::vector<double> best_w = w;
  double best_b = b;
  double best_lambda = lambdas.front();

  // FISTA extrapolation state (plain ISTA crawls on the correlated
  // one-hot columns a KFK join produces; Nesterov momentum restores
  // glmnet-comparable convergence).
  std::vector<double> w_prev = w;
  double b_prev = b;

  // Materialise the validation view once; every path point scores on it.
  // The validation view must select the training feature subset, or the
  // dense margin below would read misaligned codes.
  const bool use_validation =
      config_.has_validation && config_.validation.num_rows() > 0;
  assert(!use_validation ||
         config_.validation.num_features() == d_active);
  const CodeMatrix val_m =
      use_validation ? CodeMatrix(config_.validation) : CodeMatrix();

  for (size_t k = 0; k < nlambda; ++k) {
    const double lambda = lambdas[k];
    double prev_obj = std::numeric_limits<double>::infinity();
    double t_momentum = 1.0;
    w_prev = w;
    b_prev = b;
    for (size_t it = 0; it < config_.maxit; ++it) {
      // Extrapolated point y = w + beta (w - w_prev).
      const double t_next =
          0.5 * (1.0 + std::sqrt(1.0 + 4.0 * t_momentum * t_momentum));
      const double beta = (t_momentum - 1.0) / t_next;

      // Forward at the extrapolated point: margins and loss gradient.
      std::fill(grad.begin(), grad.end(), 0.0);
      double grad_b = 0.0;
      double loss = 0.0;
      const double b_y = b + beta * (b - b_prev);
      for (size_t i = 0; i < n; ++i) {
        const uint32_t* ru = units.data() + i * d_active;
        double z = b_y;
        for (size_t j = 0; j < d_active; ++j) {
          const uint32_t u = ru[j];
          z += w[u] + beta * (w[u] - w_prev[u]);
        }
        const double p = Sigmoid(z);
        const double r = p - y[i];
        grad_b += r;
        for (size_t j = 0; j < d_active; ++j) grad[ru[j]] += r;
        // Numerically-stable log loss.
        loss += z >= 0 ? std::log1p(std::exp(-z)) + (1.0 - y[i]) * z
                       : std::log1p(std::exp(z)) - y[i] * z;
      }
      const double inv_n = 1.0 / static_cast<double>(n);
      double l1 = 0.0;
      // Proximal step from the extrapolated point.
      const double new_b = b_y - step * grad_b * inv_n;
      b_prev = b;
      b = new_b;
      for (size_t u = 0; u < dim; ++u) {
        const double y_u = w[u] + beta * (w[u] - w_prev[u]);
        const double cand = y_u - step * grad[u] * inv_n;
        w_prev[u] = w[u];
        w[u] = SoftThreshold(cand, step * lambda);
        l1 += std::abs(w[u]);
      }
      t_momentum = t_next;
      const double obj = loss * inv_n + lambda * l1;
      if (std::abs(prev_obj - obj) <=
          config_.thresh * std::max(1.0, std::abs(prev_obj))) {
        break;
      }
      prev_obj = obj;
    }

    // Score this path point.
    double acc;
    if (use_validation) {
      weights_ = w;
      intercept_ = b;
      size_t hits = 0;
      for (size_t i = 0; i < val_m.num_rows(); ++i) {
        const uint8_t pred = MarginOfCodes(val_m.row(i)) >= 0.0 ? 1 : 0;
        hits += pred == val_m.label(i);
      }
      acc = static_cast<double>(hits) /
            static_cast<double>(val_m.num_rows());
    } else {
      // No validation: prefer the densest (smallest-lambda) fit.
      acc = static_cast<double>(k);
    }
    if (acc > best_acc) {
      best_acc = acc;
      best_w = w;
      best_b = b;
      best_lambda = lambda;
    }
  }

  weights_ = std::move(best_w);
  intercept_ = best_b;
  selected_lambda_ = best_lambda;
  fitted_ = true;
  RecordTrainDomains(train);
  return Status::OK();
}

Status LogisticRegressionL1::SaveBody(io::ModelWriter& writer) const {
  if (!fitted_) {
    return Status::FailedPrecondition("logreg-l1: Save before Fit");
  }
  writer.WriteF64Vec(weights_);
  writer.WriteF64(intercept_);
  writer.WriteF64(selected_lambda_);
  return writer.status();
}

Result<std::unique_ptr<LogisticRegressionL1>> LogisticRegressionL1::LoadBody(
    io::ModelReader& reader, const std::vector<uint32_t>& domains) {
  auto model = std::make_unique<LogisticRegressionL1>();
  HAMLET_RETURN_IF_ERROR(reader.ReadF64Vec(&model->weights_));
  HAMLET_RETURN_IF_ERROR(reader.ReadF64(&model->intercept_));
  HAMLET_RETURN_IF_ERROR(reader.ReadF64(&model->selected_lambda_));
  model->one_hot_ = OneHotMap(domains);
  // MarginOfCodes guards each unit index, but a mismatched weight vector
  // would silently drop units rather than score them — reject outright.
  if (model->weights_.size() != model->one_hot_.dimension()) {
    return Status::InvalidArgument(
        "corrupt model: logreg weight vector does not match the one-hot "
        "dimension of the header domains");
  }
  model->fitted_ = true;
  return Result<std::unique_ptr<LogisticRegressionL1>>(std::move(model));
}

double LogisticRegressionL1::PredictProbability(const DataView& view,
                                                size_t i) const {
  assert(view.num_features() == one_hot_.num_features());
  // Materialise the row once and share the margin summation with the
  // dense batch path.
  return Sigmoid(MarginOfCodes(view.ScratchRowCodes(i)));
}

uint8_t LogisticRegressionL1::Predict(const DataView& view, size_t i) const {
  return PredictProbability(view, i) >= 0.5 ? 1 : 0;
}

std::vector<uint8_t> LogisticRegressionL1::PredictAll(
    const DataView& view) const {
  assert(view.num_features() == one_hot_.num_features());
  return DensePredictAll(view, [&](const CodeMatrix& queries, size_t i) {
    // Same unit/summation order and the same Sigmoid(margin) >= 0.5
    // comparison as PredictProbability, so rounding is identical.
    return Sigmoid(MarginOfCodes(queries.row(i))) >= 0.5 ? uint8_t{1}
                                                         : uint8_t{0};
  });
}

size_t LogisticRegressionL1::NumNonzeroWeights() const {
  size_t nz = 0;
  for (double w : weights_) nz += w != 0.0;
  return nz;
}

}  // namespace ml
}  // namespace hamlet
