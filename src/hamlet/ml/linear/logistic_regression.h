// L1-regularised logistic regression over one-hot features.
//
// The paper's strongest linear baseline (§3.2: glmnet with L1). Training
// follows glmnet's recipe: proximal (ISTA-style) full-batch updates with
// soft-thresholding, warm-started along a geometric lambda path from
// lambda_max (where all penalised weights are zero) downward; the path
// point with the best validation accuracy wins. The intercept is never
// penalised.

#ifndef HAMLET_ML_LINEAR_LOGISTIC_REGRESSION_H_
#define HAMLET_ML_LINEAR_LOGISTIC_REGRESSION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "hamlet/data/code_matrix.h"
#include "hamlet/data/one_hot.h"
#include "hamlet/ml/classifier.h"

namespace hamlet {
namespace ml {

/// Hyper-parameters; names follow glmnet's (nlambda, thresh, maxit).
struct LogisticRegressionConfig {
  size_t nlambda = 20;          ///< path length (paper sets 100 in glmnet)
  double lambda_min_ratio = 0.01;  ///< lambda_min = ratio * lambda_max
  double thresh = 1e-3;         ///< relative objective change to stop
  size_t maxit = 500;           ///< proximal iterations per path point
  /// Validation view used to pick the path point. If unset (empty view),
  /// the smallest lambda is used.
  bool has_validation = false;
  DataView validation;
};

/// Sparse-input L1 logistic regression.
class LogisticRegressionL1 : public Classifier {
 public:
  explicit LogisticRegressionL1(LogisticRegressionConfig config = {});

  Status Fit(const DataView& train) override;
  uint8_t Predict(const DataView& view, size_t i) const override;
  /// Dense batch path: materialises `view` into a CodeMatrix once;
  /// bit-identical to per-row Predict.
  std::vector<uint8_t> PredictAll(const DataView& view) const override;
  std::string name() const override { return "logreg-l1"; }

  ModelFamily family() const override { return ModelFamily::kLogRegL1; }
  Status SaveBody(io::ModelWriter& writer) const override;
  /// Rebuilds the one-hot map from the header's domain metadata, so the
  /// restored embedding matches any view with the training domains.
  static Result<std::unique_ptr<LogisticRegressionL1>> LoadBody(
      io::ModelReader& reader, const std::vector<uint32_t>& domains);

  /// P(y=1|x) for row i of `view`.
  double PredictProbability(const DataView& view, size_t i) const;

  /// Number of nonzero (penalised) weights in the selected model.
  size_t NumNonzeroWeights() const;
  double selected_lambda() const { return selected_lambda_; }

 private:
  /// intercept + sum of active-unit weights for a materialised row of
  /// codes — the single margin implementation behind fit-time validation
  /// scoring, PredictProbability, and the dense PredictAll path.
  double MarginOfCodes(const uint32_t* codes) const;

  LogisticRegressionConfig config_;
  OneHotMap one_hot_;
  bool fitted_ = false;
  std::vector<double> weights_;
  double intercept_ = 0.0;
  double selected_lambda_ = 0.0;
};

}  // namespace ml
}  // namespace hamlet

#endif  // HAMLET_ML_LINEAR_LOGISTIC_REGRESSION_H_
