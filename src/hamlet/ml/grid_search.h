// Validation-set grid search over hyper-parameters (paper §3.2).
//
// Every model family in the study is tuned by exhaustive grid search on the
// 25% validation split; the winning configuration is refit on the training
// split and evaluated on the holdout.

#ifndef HAMLET_ML_GRID_SEARCH_H_
#define HAMLET_ML_GRID_SEARCH_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "hamlet/common/status.h"
#include "hamlet/data/view.h"
#include "hamlet/ml/classifier.h"

namespace hamlet {
namespace ml {

/// One hyper-parameter assignment, by name.
using ParamMap = std::map<std::string, double>;

/// Cartesian product of named axes.
class ParamGrid {
 public:
  ParamGrid() = default;

  /// Adds an axis; returns *this for chaining.
  ParamGrid& Add(std::string name, std::vector<double> values);

  /// All assignments in deterministic (row-major) order. An empty grid
  /// yields exactly one empty assignment.
  std::vector<ParamMap> Enumerate() const;

  size_t num_axes() const { return axes_.size(); }

 private:
  std::vector<std::pair<std::string, std::vector<double>>> axes_;
};

/// Builds a model for a hyper-parameter assignment.
using ModelFactory =
    std::function<std::unique_ptr<Classifier>(const ParamMap&)>;

/// Outcome of a grid search.
struct GridSearchResult {
  ParamMap best_params;
  double best_val_accuracy = 0.0;
  std::unique_ptr<Classifier> best_model;  // fit on the training view
  size_t configurations_tried = 0;
};

/// Fits one model per grid point on `train`, scores on `val`, returns the
/// best (ties: first in enumeration order, keeping results deterministic).
/// Grid points fit and score concurrently on the parallel pool
/// (HAMLET_THREADS); the winner and any error (lowest-index failure) are
/// bit-identical at every thread count.
Result<GridSearchResult> GridSearch(const ModelFactory& factory,
                                    const ParamGrid& grid,
                                    const DataView& train,
                                    const DataView& val);

/// Convenience: value of `key` in `params`, or `fallback` when absent.
double ParamOr(const ParamMap& params, const std::string& key,
               double fallback);

}  // namespace ml
}  // namespace hamlet

#endif  // HAMLET_ML_GRID_SEARCH_H_
