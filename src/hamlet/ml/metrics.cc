#include "hamlet/ml/metrics.h"

#include <algorithm>
#include <cassert>

#include "hamlet/common/parallel.h"

namespace hamlet {
namespace ml {

double ConfusionMatrix::accuracy() const {
  const size_t n = total();
  if (n == 0) return 0.0;
  return static_cast<double>(tp + tn) / static_cast<double>(n);
}

double ConfusionMatrix::precision() const {
  const size_t denom = tp + fp;
  return denom == 0 ? 0.0 : static_cast<double>(tp) / denom;
}

double ConfusionMatrix::recall() const {
  const size_t denom = tp + fn;
  return denom == 0 ? 0.0 : static_cast<double>(tp) / denom;
}

double ConfusionMatrix::f1() const {
  const double p = precision();
  const double r = recall();
  return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

namespace {

/// Confusion counts for view rows [begin, end).
ConfusionMatrix EvaluateRange(const Classifier& model, const DataView& view,
                              size_t begin, size_t end) {
  ConfusionMatrix cm;
  for (size_t i = begin; i < end; ++i) {
    const uint8_t pred = model.Predict(view, i);
    const uint8_t truth = view.label(i);
    if (pred == 1 && truth == 1) {
      ++cm.tp;
    } else if (pred == 0 && truth == 0) {
      ++cm.tn;
    } else if (pred == 1) {
      ++cm.fp;
    } else {
      ++cm.fn;
    }
  }
  return cm;
}

}  // namespace

ConfusionMatrix Evaluate(const Classifier& model, const DataView& view) {
  const size_t n = view.num_rows();
  // Rows score independently (Predict is const); chunks of rows run on the
  // parallel pool and the integer counts sum identically in any order, so
  // the result matches the serial path bit for bit. Small views skip the
  // fan-out overhead.
  constexpr size_t kRowsPerChunk = 256;
  if (n < 2 * kRowsPerChunk) return EvaluateRange(model, view, 0, n);

  const size_t num_chunks = (n + kRowsPerChunk - 1) / kRowsPerChunk;
  std::vector<ConfusionMatrix> partial(num_chunks);
  parallel::ParallelFor(num_chunks, [&](size_t c) {
    const size_t begin = c * kRowsPerChunk;
    partial[c] =
        EvaluateRange(model, view, begin, std::min(n, begin + kRowsPerChunk));
  });
  ConfusionMatrix cm;
  for (const ConfusionMatrix& p : partial) {
    cm.tp += p.tp;
    cm.tn += p.tn;
    cm.fp += p.fp;
    cm.fn += p.fn;
  }
  return cm;
}

double Accuracy(const Classifier& model, const DataView& view) {
  return Evaluate(model, view).accuracy();
}

double ErrorRate(const Classifier& model, const DataView& view) {
  return 1.0 - Accuracy(model, view);
}

double PredictionAccuracy(const std::vector<uint8_t>& predictions,
                          const std::vector<uint8_t>& labels) {
  assert(predictions.size() == labels.size());
  if (predictions.empty()) return 0.0;
  size_t hits = 0;
  for (size_t i = 0; i < predictions.size(); ++i) {
    hits += predictions[i] == labels[i];
  }
  return static_cast<double>(hits) / static_cast<double>(predictions.size());
}

}  // namespace ml
}  // namespace hamlet
