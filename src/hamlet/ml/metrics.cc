#include "hamlet/ml/metrics.h"

#include <cassert>

namespace hamlet {
namespace ml {

double ConfusionMatrix::accuracy() const {
  const size_t n = total();
  if (n == 0) return 0.0;
  return static_cast<double>(tp + tn) / static_cast<double>(n);
}

double ConfusionMatrix::precision() const {
  const size_t denom = tp + fp;
  return denom == 0 ? 0.0 : static_cast<double>(tp) / denom;
}

double ConfusionMatrix::recall() const {
  const size_t denom = tp + fn;
  return denom == 0 ? 0.0 : static_cast<double>(tp) / denom;
}

double ConfusionMatrix::f1() const {
  const double p = precision();
  const double r = recall();
  return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

ConfusionMatrix Evaluate(const Classifier& model, const DataView& view) {
  // PredictAll scores rows concurrently on the parallel pool, and the hot
  // learners override it with a dense CodeMatrix path; the integer counts
  // below then accumulate in row order regardless of thread count, so the
  // result matches the serial path bit for bit.
  const std::vector<uint8_t> preds = model.PredictAll(view);
  ConfusionMatrix cm;
  for (size_t i = 0; i < preds.size(); ++i) {
    const uint8_t pred = preds[i];
    const uint8_t truth = view.label(i);
    if (pred == 1 && truth == 1) {
      ++cm.tp;
    } else if (pred == 0 && truth == 0) {
      ++cm.tn;
    } else if (pred == 1) {
      ++cm.fp;
    } else {
      ++cm.fn;
    }
  }
  return cm;
}

double Accuracy(const Classifier& model, const DataView& view) {
  return Evaluate(model, view).accuracy();
}

double ErrorRate(const Classifier& model, const DataView& view) {
  return 1.0 - Accuracy(model, view);
}

double PredictionAccuracy(const std::vector<uint8_t>& predictions,
                          const std::vector<uint8_t>& labels) {
  assert(predictions.size() == labels.size());
  if (predictions.empty()) return 0.0;
  size_t hits = 0;
  for (size_t i = 0; i < predictions.size(); ++i) {
    hits += predictions[i] == labels[i];
  }
  return static_cast<double>(hits) / static_cast<double>(predictions.size());
}

}  // namespace ml
}  // namespace hamlet
