#include "hamlet/ml/bias_variance.h"

#include "hamlet/common/parallel.h"

namespace hamlet {
namespace ml {

Result<BiasVariance> DecomposePredictions(
    const std::vector<std::vector<uint8_t>>& run_predictions,
    const std::vector<uint8_t>& test_labels,
    const std::vector<uint8_t>& optimal) {
  if (run_predictions.empty()) {
    return Status::InvalidArgument("need at least one run");
  }
  const size_t n = test_labels.size();
  if (optimal.size() != n) {
    return Status::InvalidArgument("optimal/label size mismatch");
  }
  for (const auto& preds : run_predictions) {
    if (preds.size() != n) {
      return Status::InvalidArgument("prediction vector size mismatch");
    }
  }

  const size_t runs = run_predictions.size();
  BiasVariance out;
  out.num_runs = runs;

  // Mean error across runs.
  double err_sum = 0.0;
  for (const auto& preds : run_predictions) {
    size_t wrong = 0;
    for (size_t i = 0; i < n; ++i) wrong += preds[i] != test_labels[i];
    err_sum += static_cast<double>(wrong) / static_cast<double>(n);
  }
  out.mean_error = err_sum / static_cast<double>(runs);

  // Pointwise decomposition.
  size_t biased_points = 0;
  double var_sum = 0.0, var_unbiased_sum = 0.0, var_biased_sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    size_t ones = 0;
    for (const auto& preds : run_predictions) ones += preds[i];
    const uint8_t main_pred = (2 * ones >= runs) ? 1 : 0;  // ties -> 1
    size_t disagree = 0;
    for (const auto& preds : run_predictions) {
      disagree += preds[i] != main_pred;
    }
    const double var_i =
        static_cast<double>(disagree) / static_cast<double>(runs);
    var_sum += var_i;
    if (main_pred != optimal[i]) {
      ++biased_points;
      var_biased_sum += var_i;
    } else {
      var_unbiased_sum += var_i;
    }
  }
  out.bias = static_cast<double>(biased_points) / static_cast<double>(n);
  out.variance = var_sum / static_cast<double>(n);
  out.variance_unbiased = var_unbiased_sum / static_cast<double>(n);
  out.variance_biased = var_biased_sum / static_cast<double>(n);
  out.net_variance = out.variance_unbiased - out.variance_biased;
  return out;
}

Result<BiasVariance> MonteCarloBiasVariance(
    size_t num_runs,
    const std::function<std::vector<uint8_t>(size_t run)>& run,
    const std::vector<uint8_t>& test_labels,
    const std::vector<uint8_t>& optimal) {
  if (num_runs == 0) return Status::InvalidArgument("num_runs must be > 0");
  // Runs are independent by contract (per-run seeds derived from r), so
  // they execute concurrently; predictions land in run order regardless of
  // completion order, keeping the decomposition bit-identical at any
  // thread count.
  std::vector<std::vector<uint8_t>> preds =
      parallel::ParallelMap<std::vector<uint8_t>>(num_runs, run);
  return DecomposePredictions(preds, test_labels, optimal);
}

}  // namespace ml
}  // namespace hamlet
