#include "hamlet/ml/nb/backward_selection.h"

#include <algorithm>
#include <numeric>

#include "hamlet/ml/metrics.h"

namespace hamlet {
namespace ml {

BackwardSelectionClassifier::BackwardSelectionClassifier(
    BaseModelFactory factory, DataView val)
    : factory_(std::move(factory)), val_(std::move(val)) {}

std::string BackwardSelectionClassifier::name() const {
  return "backward-selection";
}

Status BackwardSelectionClassifier::Fit(const DataView& train) {
  if (train.num_rows() == 0) {
    return Status::InvalidArgument("empty training view");
  }
  const size_t d = train.num_features();

  // Helper: fit + validate the base model on a view-feature subset.
  auto evaluate = [&](const std::vector<uint32_t>& subset,
                      std::unique_ptr<Classifier>& out_model,
                      double& out_acc) -> Status {
    std::vector<uint32_t> train_cols, val_cols;
    train_cols.reserve(subset.size());
    val_cols.reserve(subset.size());
    for (uint32_t j : subset) {
      train_cols.push_back(train.feature_id(j));
      val_cols.push_back(val_.feature_id(j));
    }
    DataView sub_train = train.WithFeatures(train_cols);
    DataView sub_val = val_.WithFeatures(val_cols);
    out_model = factory_();
    HAMLET_RETURN_IF_ERROR(out_model->Fit(sub_train));
    out_acc = Accuracy(*out_model, sub_val);
    return Status::OK();
  };

  std::vector<uint32_t> current(d);
  std::iota(current.begin(), current.end(), 0u);
  std::unique_ptr<Classifier> best_model;
  double best_acc = 0.0;
  HAMLET_RETURN_IF_ERROR(evaluate(current, best_model, best_acc));

  // Greedy eliminations; keep at least one feature.
  bool improved = true;
  while (improved && current.size() > 1) {
    improved = false;
    size_t drop_pos = current.size();
    std::unique_ptr<Classifier> round_model;
    double round_acc = best_acc;
    for (size_t k = 0; k < current.size(); ++k) {
      std::vector<uint32_t> candidate = current;
      candidate.erase(candidate.begin() + static_cast<long>(k));
      std::unique_ptr<Classifier> model;
      double acc = 0.0;
      HAMLET_RETURN_IF_ERROR(evaluate(candidate, model, acc));
      if (acc > round_acc) {
        round_acc = acc;
        round_model = std::move(model);
        drop_pos = k;
      }
    }
    if (drop_pos < current.size()) {
      current.erase(current.begin() + static_cast<long>(drop_pos));
      best_model = std::move(round_model);
      best_acc = round_acc;
      improved = true;
    }
  }

  selected_ = std::move(current);
  model_ = std::move(best_model);
  val_accuracy_ = best_acc;
  // Recorded for interface uniformity; the wrapper itself has no
  // serialized form (SaveBody stays the unsupported default) because its
  // inner model scores a feature *subset*, not raw header-domain tuples.
  RecordTrainDomains(train);
  return Status::OK();
}

uint8_t BackwardSelectionClassifier::Predict(const DataView& view,
                                             size_t i) const {
  // Project the prediction view onto the selected subset. View-feature
  // order must match the training view's (the standard contract).
  std::vector<uint32_t> cols;
  cols.reserve(selected_.size());
  for (uint32_t j : selected_) cols.push_back(view.feature_id(j));
  DataView sub(view.dataset(), {view.row_id(i)}, std::move(cols));
  return model_->Predict(sub, 0);
}

std::vector<uint8_t> BackwardSelectionClassifier::PredictAll(
    const DataView& view) const {
  // One projection for the whole batch instead of a one-row view per
  // prediction; the base model's PredictAll then materialises the
  // projected view densely.
  std::vector<uint32_t> cols;
  cols.reserve(selected_.size());
  for (uint32_t j : selected_) cols.push_back(view.feature_id(j));
  return model_->PredictAll(view.WithFeatures(std::move(cols)));
}

}  // namespace ml
}  // namespace hamlet
