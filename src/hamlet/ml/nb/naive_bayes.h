// Categorical Naive Bayes with Laplace smoothing.
//
// One of the paper's linear-capacity baselines (§3). Class-conditional
// probabilities per (feature, code) pair are estimated with add-one
// smoothing (§6.2 references the same smoothing idea for counts), so FK
// values unseen in training still get a nonzero likelihood.

#ifndef HAMLET_ML_NB_NAIVE_BAYES_H_
#define HAMLET_ML_NB_NAIVE_BAYES_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "hamlet/data/code_matrix.h"
#include "hamlet/ml/classifier.h"

namespace hamlet {
namespace ml {

/// Hyper-parameters (Naive Bayes has none to tune in the paper; the
/// pseudocount is exposed for the smoothing tests).
struct NaiveBayesConfig {
  double pseudocount = 1.0;
};

/// Multinomial NB over categorical codes.
class NaiveBayes : public Classifier {
 public:
  explicit NaiveBayes(NaiveBayesConfig config = {});

  Status Fit(const DataView& train) override;
  uint8_t Predict(const DataView& view, size_t i) const override;
  /// Dense batch path: materialises `view` into a CodeMatrix once;
  /// bit-identical to per-row Predict.
  std::vector<uint8_t> PredictAll(const DataView& view) const override;
  std::string name() const override { return "naive-bayes"; }

  /// Log P(y=1|x) - log P(y=0|x) for row i of `view`.
  double LogOdds(const DataView& view, size_t i) const;

  /// Same, for an already-materialised row of num_features codes.
  double LogOddsOfCodes(const uint32_t* codes) const;

  ModelFamily family() const override { return ModelFamily::kNaiveBayes; }
  /// Serializes the count tables (as log likelihoods) + priors.
  Status SaveBody(io::ModelWriter& writer) const override;
  static Result<std::unique_ptr<NaiveBayes>> LoadBody(
      io::ModelReader& reader, const std::vector<uint32_t>& domains);

 private:
  NaiveBayesConfig config_;
  bool fitted_ = false;
  size_t d_ = 0;
  double log_prior_[2] = {0.0, 0.0};
  // log_likelihood_[j][code][y]; flattened per feature as code*2 + y.
  std::vector<std::vector<double>> log_likelihood_;
};

}  // namespace ml
}  // namespace hamlet

#endif  // HAMLET_ML_NB_NAIVE_BAYES_H_
