// Greedy backward feature selection wrapper (the paper's "Naive Bayes with
// backward selection", §3).
//
// Starting from all features, repeatedly drops the single feature whose
// removal most improves validation accuracy; stops when no removal helps.
// Works for any base classifier factory, though the study applies it to
// Naive Bayes only.

#ifndef HAMLET_ML_NB_BACKWARD_SELECTION_H_
#define HAMLET_ML_NB_BACKWARD_SELECTION_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "hamlet/ml/classifier.h"

namespace hamlet {
namespace ml {

/// Builds a fresh, unfitted base model.
using BaseModelFactory = std::function<std::unique_ptr<Classifier>()>;

/// Wrapper model: selects a feature subset on (train, val) during Fit, then
/// behaves as the base model restricted to that subset.
class BackwardSelectionClassifier : public Classifier {
 public:
  /// `val` must view the same dataset columns as the training view passed
  /// to Fit (it supplies the selection signal).
  BackwardSelectionClassifier(BaseModelFactory factory, DataView val);

  Status Fit(const DataView& train) override;
  uint8_t Predict(const DataView& view, size_t i) const override;
  /// Projects the view onto the selected subset once and delegates to the
  /// base model's batch path (dense for NaiveBayes); bit-identical to
  /// per-row Predict.
  std::vector<uint8_t> PredictAll(const DataView& view) const override;
  std::string name() const override;

  /// Selected *view-feature* indices (into the training view's features).
  const std::vector<uint32_t>& selected_features() const {
    return selected_;
  }
  double validation_accuracy() const { return val_accuracy_; }

 private:
  BaseModelFactory factory_;
  DataView val_;
  std::vector<uint32_t> selected_;
  std::unique_ptr<Classifier> model_;
  double val_accuracy_ = 0.0;
};

}  // namespace ml
}  // namespace hamlet

#endif  // HAMLET_ML_NB_BACKWARD_SELECTION_H_
