#include "hamlet/ml/nb/naive_bayes.h"

#include <cassert>
#include <cmath>

#include "hamlet/io/model_io.h"
#include "hamlet/simd/simd.h"

namespace hamlet {
namespace ml {

NaiveBayes::NaiveBayes(NaiveBayesConfig config) : config_(config) {}

Status NaiveBayes::Fit(const DataView& train) {
  if (train.num_rows() == 0) {
    return Status::InvalidArgument("empty training view");
  }
  const CodeMatrix m(train);
  const size_t n = m.num_rows();
  d_ = m.num_features();

  size_t pos = 0;
  for (size_t i = 0; i < n; ++i) pos += m.label(i);
  const size_t neg = n - pos;
  // Priors with the same pseudocount to stay defined for one-class data.
  const double a = config_.pseudocount;
  log_prior_[1] = std::log((static_cast<double>(pos) + a) /
                           (static_cast<double>(n) + 2.0 * a));
  log_prior_[0] = std::log((static_cast<double>(neg) + a) /
                           (static_cast<double>(n) + 2.0 * a));

  // One row-major pass over the dense matrix fills every feature's
  // (code, label) counts in a single flat buffer (prefix offsets of
  // 2 * domain_size per feature), so the hot loop has no per-feature
  // pointer chase. The counts are integers accumulated through the
  // simd backend helper (multi-lane histograms; the lane split breaks
  // the store-to-load dependency between adjacent rows). Integer sums
  // are order-independent and every count is far below 2^53, so the
  // double conversion below is exact and the log tables stay
  // bit-identical across backends, thread counts and the old
  // double-accumulating loop.
  std::vector<size_t> offsets(d_ + 1, 0);
  for (size_t j = 0; j < d_; ++j) {
    offsets[j + 1] = offsets[j] + static_cast<size_t>(m.domain_size(j)) * 2;
  }
  std::vector<uint32_t> counts(offsets[d_], 0);
  simd::CountCodeLabelPairs(simd::ActiveBackend(), m.codes().data(),
                            m.labels().data(), n, d_, offsets.data(),
                            counts.data());

  log_likelihood_.assign(d_, {});
  for (size_t j = 0; j < d_; ++j) {
    const uint32_t domain = m.domain_size(j);
    const double denom_pos =
        static_cast<double>(pos) + a * static_cast<double>(domain);
    const double denom_neg =
        static_cast<double>(neg) + a * static_cast<double>(domain);
    const uint32_t* feature_counts = counts.data() + offsets[j];
    std::vector<double>& ll = log_likelihood_[j];
    ll.resize(static_cast<size_t>(domain) * 2);
    for (uint32_t c = 0; c < domain; ++c) {
      ll[static_cast<size_t>(c) * 2 + 1] = std::log(
          (static_cast<double>(feature_counts[static_cast<size_t>(c) * 2 + 1]) +
           a) /
          denom_pos);
      ll[static_cast<size_t>(c) * 2 + 0] = std::log(
          (static_cast<double>(feature_counts[static_cast<size_t>(c) * 2 + 0]) +
           a) /
          denom_neg);
    }
  }
  fitted_ = true;
  RecordTrainDomains(train);
  return Status::OK();
}

Status NaiveBayes::SaveBody(io::ModelWriter& writer) const {
  if (!fitted_) return Status::FailedPrecondition("nb: Save before Fit");
  writer.WriteF64(config_.pseudocount);
  writer.WriteU64(d_);
  writer.WriteF64(log_prior_[0]);
  writer.WriteF64(log_prior_[1]);
  for (const std::vector<double>& ll : log_likelihood_) {
    writer.WriteF64Vec(ll);
  }
  return writer.status();
}

Result<std::unique_ptr<NaiveBayes>> NaiveBayes::LoadBody(
    io::ModelReader& reader, const std::vector<uint32_t>& domains) {
  NaiveBayesConfig config;
  uint64_t d;
  HAMLET_RETURN_IF_ERROR(reader.ReadF64(&config.pseudocount));
  HAMLET_RETURN_IF_ERROR(reader.ReadU64(&d));
  if (d != domains.size()) {
    return Status::InvalidArgument(
        "corrupt model: nb feature count disagrees with the header");
  }
  auto model = std::make_unique<NaiveBayes>(config);
  model->d_ = static_cast<size_t>(d);
  HAMLET_RETURN_IF_ERROR(reader.ReadF64(&model->log_prior_[0]));
  HAMLET_RETURN_IF_ERROR(reader.ReadF64(&model->log_prior_[1]));
  model->log_likelihood_.assign(model->d_, {});
  for (size_t j = 0; j < model->d_; ++j) {
    std::vector<double>& ll = model->log_likelihood_[j];
    HAMLET_RETURN_IF_ERROR(reader.ReadF64Vec(&ll));
    // LogOddsOfCodes reads the (code*2, code*2+1) pair for any in-domain
    // code, so the table must cover the header's full domain.
    if (ll.size() != static_cast<size_t>(domains[j]) * 2) {
      return Status::InvalidArgument(
          "corrupt model: nb likelihood table does not cover its domain");
    }
  }
  model->fitted_ = true;
  return Result<std::unique_ptr<NaiveBayes>>(std::move(model));
}

double NaiveBayes::LogOddsOfCodes(const uint32_t* codes) const {
  double odds = log_prior_[1] - log_prior_[0];
  for (size_t j = 0; j < d_; ++j) {
    const std::vector<double>& ll = log_likelihood_[j];
    const size_t base = static_cast<size_t>(codes[j]) * 2;
    assert(base + 1 < ll.size());
    odds += ll[base + 1] - ll[base];
  }
  return odds;
}

double NaiveBayes::LogOdds(const DataView& view, size_t i) const {
  assert(view.num_features() == d_);
  // Materialise the row once and share the summation with the dense
  // batch path.
  return LogOddsOfCodes(view.ScratchRowCodes(i));
}

uint8_t NaiveBayes::Predict(const DataView& view, size_t i) const {
  return LogOdds(view, i) >= 0.0 ? 1 : 0;
}

std::vector<uint8_t> NaiveBayes::PredictAll(const DataView& view) const {
  assert(view.num_features() == d_);
  return DensePredictAll(view, [&](const CodeMatrix& queries, size_t i) {
    return LogOddsOfCodes(queries.row(i)) >= 0.0 ? uint8_t{1} : uint8_t{0};
  });
}

}  // namespace ml
}  // namespace hamlet
