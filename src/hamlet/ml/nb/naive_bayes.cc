#include "hamlet/ml/nb/naive_bayes.h"

#include <cassert>
#include <cmath>

namespace hamlet {
namespace ml {

NaiveBayes::NaiveBayes(NaiveBayesConfig config) : config_(config) {}

Status NaiveBayes::Fit(const DataView& train) {
  const size_t n = train.num_rows();
  if (n == 0) return Status::InvalidArgument("empty training view");
  d_ = train.num_features();

  size_t pos = 0;
  for (size_t i = 0; i < n; ++i) pos += train.label(i);
  const size_t neg = n - pos;
  // Priors with the same pseudocount to stay defined for one-class data.
  const double a = config_.pseudocount;
  log_prior_[1] = std::log((static_cast<double>(pos) + a) /
                           (static_cast<double>(n) + 2.0 * a));
  log_prior_[0] = std::log((static_cast<double>(neg) + a) /
                           (static_cast<double>(n) + 2.0 * a));

  log_likelihood_.assign(d_, {});
  for (size_t j = 0; j < d_; ++j) {
    const uint32_t domain = train.domain_size(j);
    std::vector<double> counts(static_cast<size_t>(domain) * 2, 0.0);
    for (size_t i = 0; i < n; ++i) {
      const uint32_t c = train.feature(i, j);
      counts[static_cast<size_t>(c) * 2 + train.label(i)] += 1.0;
    }
    const double denom_pos =
        static_cast<double>(pos) + a * static_cast<double>(domain);
    const double denom_neg =
        static_cast<double>(neg) + a * static_cast<double>(domain);
    std::vector<double>& ll = log_likelihood_[j];
    ll.resize(counts.size());
    for (uint32_t c = 0; c < domain; ++c) {
      ll[static_cast<size_t>(c) * 2 + 1] =
          std::log((counts[static_cast<size_t>(c) * 2 + 1] + a) / denom_pos);
      ll[static_cast<size_t>(c) * 2 + 0] =
          std::log((counts[static_cast<size_t>(c) * 2 + 0] + a) / denom_neg);
    }
  }
  return Status::OK();
}

double NaiveBayes::LogOdds(const DataView& view, size_t i) const {
  assert(view.num_features() == d_);
  double odds = log_prior_[1] - log_prior_[0];
  for (size_t j = 0; j < d_; ++j) {
    const uint32_t c = view.feature(i, j);
    const std::vector<double>& ll = log_likelihood_[j];
    const size_t base = static_cast<size_t>(c) * 2;
    assert(base + 1 < ll.size());
    odds += ll[base + 1] - ll[base];
  }
  return odds;
}

uint8_t NaiveBayes::Predict(const DataView& view, size_t i) const {
  return LogOdds(view, i) >= 0.0 ? 1 : 0;
}

}  // namespace ml
}  // namespace hamlet
