// CART decision tree for categorical features and a binary target.
//
// Splits are binary category-subset splits found with Breiman's
// response-ordering trick: at a node, the categories of a feature are
// sorted by P(Y=1 | category) and only the K-1 ordered prefix partitions
// are scanned — optimal for gini/entropy with a binary target and the only
// tractable scheme for foreign-key features with thousands of values.
//
// Pre-pruning follows rpart semantics (§3.2 of the paper): `minsplit` is
// the minimum node size to attempt a split, and a split must reduce the
// tree's risk by at least `cp` × (root risk) to be kept.
//
// Foreign-key values that never occur in training may still appear at test
// time (§6.2). `UnseenPolicy` picks the behaviour: kError mimics the R
// packages' crash (Predict asserts; use TryPredict for the Status),
// kMajorityBranch routes unseen codes to the branch with more training
// rows. External smoothing (core/fk_smoothing.h) rewrites test codes
// before prediction, making the policy moot.

#ifndef HAMLET_ML_TREE_DECISION_TREE_H_
#define HAMLET_ML_TREE_DECISION_TREE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "hamlet/data/code_matrix.h"
#include "hamlet/ml/classifier.h"
#include "hamlet/ml/tree/criterion.h"
#include "hamlet/simd/simd.h"

namespace hamlet {
namespace ml {

/// What Predict does with a feature code never seen during training.
enum class UnseenPolicy {
  kError,           ///< TryPredict returns an error (R-package behaviour)
  kMajorityBranch,  ///< follow the branch with more training rows
};

/// Hyper-parameters. Defaults match the paper's grid midpoints.
struct DecisionTreeConfig {
  SplitCriterion criterion = SplitCriterion::kGini;
  /// Minimum observations in a node for a split to be attempted (rpart).
  size_t minsplit = 10;
  /// Complexity parameter: required risk improvement as a fraction of the
  /// root risk (rpart). 0 grows the tree until pure/minsplit.
  double cp = 0.01;
  /// Hard depth cap (guards pathological growth on huge FK domains).
  size_t max_depth = 30;
  UnseenPolicy unseen_policy = UnseenPolicy::kMajorityBranch;
};

/// A fitted tree node. Leaves have feature == -1.
struct TreeNode {
  int feature = -1;             ///< view-feature index tested at this node
  std::vector<uint8_t> goes_left;  ///< per-code routing (size = domain)
  std::vector<uint8_t> code_seen;  ///< per-code: occurred at this node
  int left = -1;
  int right = -1;
  int majority_child = -1;      ///< branch holding more training rows
  uint8_t prediction = 0;       ///< majority label of the node
  uint32_t count = 0;           ///< training rows reaching the node
  uint32_t pos_count = 0;       ///< of which labeled 1
  uint32_t depth = 0;
};

/// CART learner/predictor.
class DecisionTree : public Classifier {
 public:
  explicit DecisionTree(DecisionTreeConfig config = {});

  Status Fit(const DataView& train) override;
  uint8_t Predict(const DataView& view, size_t i) const override;
  /// Dense batch path: materialises `view` into a CodeMatrix once and
  /// routes contiguous rows; bit-identical to per-row Predict (including
  /// the root-majority fallback under UnseenPolicy::kError).
  std::vector<uint8_t> PredictAll(const DataView& view) const override;
  std::string name() const override;

  /// Status-returning prediction honouring UnseenPolicy::kError.
  Result<uint8_t> TryPredict(const DataView& view, size_t i) const;

  ModelFamily family() const override { return ModelFamily::kDecisionTree; }
  /// Serializes config + node arcs/leaves (format: docs/ARCHITECTURE.md).
  Status SaveBody(io::ModelWriter& writer) const override;
  /// Rebuilds a fitted tree from `reader`; `domains` is the per-feature
  /// domain metadata from the container header, used to validate the
  /// node routing tables.
  static Result<std::unique_ptr<DecisionTree>> LoadBody(
      io::ModelReader& reader, const std::vector<uint32_t>& domains);

  const DecisionTreeConfig& config() const { return config_; }
  const std::vector<TreeNode>& nodes() const { return nodes_; }
  size_t num_nodes() const { return nodes_.size(); }
  size_t num_leaves() const;
  size_t depth() const;

  /// How many internal nodes test each view-feature — the paper inspects
  /// this to show FK dominates the partitioning in scenario OneXr.
  std::vector<size_t> FeatureUseCounts() const;

 private:
  struct NodeStats;
  int BuildNode(const CodeMatrix& train, std::vector<uint32_t>& rows,
                size_t begin, size_t end, size_t depth, double root_risk);
  /// Walks the tree for (view, i) by materialising the row and delegating
  /// to WalkCodes; returns leaf prediction or error under kError policy.
  Result<uint8_t> Walk(const DataView& view, size_t i) const;
  /// Walks an already-materialised row of codes (the single source of the
  /// routing/unseen-code logic).
  Result<uint8_t> WalkCodes(const uint32_t* codes) const;
  /// Root-majority prediction used when Walk errors under kError.
  uint8_t FallbackPrediction() const;

  DecisionTreeConfig config_;
  std::vector<TreeNode> nodes_;
  int root_ = -1;
  size_t num_features_ = 0;
  // Scratch (valid during Fit only): per-feature per-code counters, and
  // the simd backend resolved once per Fit for the split-scan gathers
  // (BuildNode recurses, so the env knob is read once, not per node).
  std::vector<std::vector<uint32_t>> scratch_count_;
  std::vector<std::vector<uint32_t>> scratch_pos_;
  simd::Backend fit_backend_ = simd::Backend::kSwar;
};

}  // namespace ml
}  // namespace hamlet

#endif  // HAMLET_ML_TREE_DECISION_TREE_H_
