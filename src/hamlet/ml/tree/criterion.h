// Split criteria for binary-target CART: gini, information gain, gain
// ratio (the three variants the paper evaluates, §3).

#ifndef HAMLET_ML_TREE_CRITERION_H_
#define HAMLET_ML_TREE_CRITERION_H_

#include <cstddef>
#include <string>

namespace hamlet {
namespace ml {

/// Which impurity/score function drives split selection.
enum class SplitCriterion {
  kGini,
  kInfoGain,
  kGainRatio,
};

const char* SplitCriterionName(SplitCriterion c);

/// Gini impurity of a binary node: 2 p (1-p), p = pos/total. 0 for empty.
double GiniImpurity(size_t pos, size_t total);

/// Binary entropy in nats. 0 for empty or pure nodes.
double Entropy(size_t pos, size_t total);

/// Node impurity under `c` (gain ratio uses entropy as its impurity).
double NodeImpurity(SplitCriterion c, size_t pos, size_t total);

/// Score of a candidate binary split under criterion `c`, as *absolute*
/// impurity reduction weighted by counts:
///   gain = n*I(parent) - nL*I(left) - nR*I(right)
/// For kGainRatio, the information gain is divided by the split information
/// (entropy of the branch proportions), penalising lopsided splits as in
/// C4.5. Returns 0 for degenerate splits (an empty branch).
double SplitScore(SplitCriterion c, size_t pos_left, size_t n_left,
                  size_t pos_right, size_t n_right);

/// The impurity-reduction part of the score (used for the rpart-style cp
/// test even when selection is by gain ratio).
double SplitGain(SplitCriterion c, size_t pos_left, size_t n_left,
                 size_t pos_right, size_t n_right);

}  // namespace ml
}  // namespace hamlet

#endif  // HAMLET_ML_TREE_CRITERION_H_
