#include "hamlet/ml/tree/criterion.h"

#include <cmath>

namespace hamlet {
namespace ml {

const char* SplitCriterionName(SplitCriterion c) {
  switch (c) {
    case SplitCriterion::kGini:
      return "gini";
    case SplitCriterion::kInfoGain:
      return "info_gain";
    case SplitCriterion::kGainRatio:
      return "gain_ratio";
  }
  return "unknown";
}

double GiniImpurity(size_t pos, size_t total) {
  if (total == 0) return 0.0;
  const double p = static_cast<double>(pos) / static_cast<double>(total);
  return 2.0 * p * (1.0 - p);
}

double Entropy(size_t pos, size_t total) {
  if (total == 0 || pos == 0 || pos == total) return 0.0;
  const double p = static_cast<double>(pos) / static_cast<double>(total);
  return -p * std::log(p) - (1.0 - p) * std::log(1.0 - p);
}

double NodeImpurity(SplitCriterion c, size_t pos, size_t total) {
  switch (c) {
    case SplitCriterion::kGini:
      return GiniImpurity(pos, total);
    case SplitCriterion::kInfoGain:
    case SplitCriterion::kGainRatio:
      return Entropy(pos, total);
  }
  return 0.0;
}

double SplitGain(SplitCriterion c, size_t pos_left, size_t n_left,
                 size_t pos_right, size_t n_right) {
  if (n_left == 0 || n_right == 0) return 0.0;
  const size_t n = n_left + n_right;
  const size_t pos = pos_left + pos_right;
  const double parent =
      static_cast<double>(n) * NodeImpurity(c, pos, n);
  const double children =
      static_cast<double>(n_left) * NodeImpurity(c, pos_left, n_left) +
      static_cast<double>(n_right) * NodeImpurity(c, pos_right, n_right);
  const double gain = parent - children;
  return gain > 0.0 ? gain : 0.0;
}

double SplitScore(SplitCriterion c, size_t pos_left, size_t n_left,
                  size_t pos_right, size_t n_right) {
  const double gain = SplitGain(c, pos_left, n_left, pos_right, n_right);
  if (c != SplitCriterion::kGainRatio || gain == 0.0) return gain;
  // Split information: entropy of the branch proportions (counts-weighted
  // form to stay in the same units as `gain`).
  const size_t n = n_left + n_right;
  const double split_info =
      static_cast<double>(n) * Entropy(n_left, n);
  if (split_info <= 1e-12) return 0.0;
  return gain / split_info * static_cast<double>(n);
}

}  // namespace ml
}  // namespace hamlet
