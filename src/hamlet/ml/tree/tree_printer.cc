#include "hamlet/ml/tree/tree_printer.h"

#include <sstream>

#include "hamlet/common/stringx.h"

namespace hamlet {
namespace ml {

namespace {

void PrintNode(const DecisionTree& tree, const DataView& view, int node_id,
               size_t depth, size_t max_depth, std::ostringstream& out) {
  const TreeNode& node = tree.nodes()[static_cast<size_t>(node_id)];
  const std::string indent(depth * 2, ' ');
  if (node.feature < 0) {
    out << indent << "leaf: predict=" << static_cast<int>(node.prediction)
        << " (n=" << node.count << ", pos=" << node.pos_count << ")\n";
    return;
  }
  size_t left_codes = 0;
  for (uint8_t g : node.goes_left) left_codes += g;
  const std::string& fname =
      view.feature_spec(static_cast<size_t>(node.feature)).name;
  out << indent << fname << ": {" << left_codes << " of "
      << node.goes_left.size() << " codes} -> left (n=" << node.count
      << ")\n";
  if (depth + 1 > max_depth) {
    out << indent << "  ... (truncated at depth " << max_depth << ")\n";
    return;
  }
  PrintNode(tree, view, node.left, depth + 1, max_depth, out);
  PrintNode(tree, view, node.right, depth + 1, max_depth, out);
}

}  // namespace

std::string PrintTree(const DecisionTree& tree, const DataView& view,
                      size_t max_depth) {
  if (tree.nodes().empty()) return "(unfitted tree)\n";
  std::ostringstream out;
  out << "DecisionTree[" << tree.name() << "] nodes=" << tree.num_nodes()
      << " leaves=" << tree.num_leaves() << " depth=" << tree.depth()
      << "\n";
  PrintNode(tree, view, 0, 0, max_depth, out);
  return out.str();
}

std::string PrintFeatureUsage(const DecisionTree& tree,
                              const DataView& view) {
  const std::vector<size_t> counts = tree.FeatureUseCounts();
  size_t internal = 0;
  for (size_t c : counts) internal += c;
  std::ostringstream out;
  out << "feature usage (" << internal << " internal nodes):\n";
  for (size_t j = 0; j < counts.size(); ++j) {
    const double frac =
        internal == 0
            ? 0.0
            : static_cast<double>(counts[j]) / static_cast<double>(internal);
    out << "  " << PadRight(view.feature_spec(j).name, 28) << " "
        << PadLeft(std::to_string(counts[j]), 6) << "  ("
        << FormatDouble(100.0 * frac, 1) << "%)\n";
  }
  return out.str();
}

}  // namespace ml
}  // namespace hamlet
