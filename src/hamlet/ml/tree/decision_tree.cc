#include "hamlet/ml/tree/decision_tree.h"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "hamlet/io/model_io.h"

namespace hamlet {
namespace ml {

namespace {

/// Candidate split for one feature at one node.
struct BestSplit {
  double score = 0.0;   // criterion score (selection)
  double gain = 0.0;    // impurity reduction (cp test)
  int feature = -1;
  // Categories (codes) routed left, in Breiman order.
  std::vector<uint32_t> left_codes;
  size_t n_left = 0;
  size_t n_right = 0;
};

}  // namespace

DecisionTree::DecisionTree(DecisionTreeConfig config)
    : config_(config) {}

std::string DecisionTree::name() const {
  return std::string("dt-") + SplitCriterionName(config_.criterion);
}

Status DecisionTree::Fit(const DataView& train) {
  if (train.num_rows() == 0) {
    return Status::InvalidArgument("empty training view");
  }
  // Materialise once; the split scans and row partitioning below touch
  // every (row, feature) pair at every tree level.
  const CodeMatrix m(train);
  nodes_.clear();
  root_ = -1;
  num_features_ = m.num_features();

  fit_backend_ = simd::ActiveBackend();
  scratch_count_.assign(num_features_, {});
  scratch_pos_.assign(num_features_, {});
  for (size_t j = 0; j < num_features_; ++j) {
    scratch_count_[j].assign(m.domain_size(j), 0);
    scratch_pos_[j].assign(m.domain_size(j), 0);
  }

  std::vector<uint32_t> rows(m.num_rows());
  std::iota(rows.begin(), rows.end(), 0u);

  // Root risk for the cp test: impurity(root) * n.
  size_t pos = 0;
  for (size_t i = 0; i < m.num_rows(); ++i) pos += m.label(i);
  const double root_risk =
      static_cast<double>(m.num_rows()) *
      NodeImpurity(config_.criterion, pos, m.num_rows());

  root_ = BuildNode(m, rows, 0, rows.size(), 0, root_risk);

  scratch_count_.clear();
  scratch_pos_.clear();
  RecordTrainDomains(train);
  return Status::OK();
}

Status DecisionTree::SaveBody(io::ModelWriter& writer) const {
  if (root_ < 0) return Status::FailedPrecondition("dt: Save before Fit");
  writer.WriteU32(static_cast<uint32_t>(config_.criterion));
  writer.WriteU64(config_.minsplit);
  writer.WriteF64(config_.cp);
  writer.WriteU64(config_.max_depth);
  writer.WriteU32(static_cast<uint32_t>(config_.unseen_policy));
  writer.WriteU64(num_features_);
  writer.WriteI32(root_);
  writer.WriteU64(nodes_.size());
  for (const TreeNode& node : nodes_) {
    writer.WriteI32(node.feature);
    writer.WriteU8Vec(node.goes_left);
    writer.WriteU8Vec(node.code_seen);
    writer.WriteI32(node.left);
    writer.WriteI32(node.right);
    writer.WriteI32(node.majority_child);
    writer.WriteU8(node.prediction);
    writer.WriteU32(node.count);
    writer.WriteU32(node.pos_count);
    writer.WriteU32(node.depth);
  }
  return writer.status();
}

Result<std::unique_ptr<DecisionTree>> DecisionTree::LoadBody(
    io::ModelReader& reader, const std::vector<uint32_t>& domains) {
  const size_t num_features = domains.size();
  DecisionTreeConfig config;
  uint32_t criterion, policy;
  uint64_t minsplit, max_depth, d, num_nodes;
  double cp;
  int32_t root;
  HAMLET_RETURN_IF_ERROR(reader.ReadU32(&criterion));
  HAMLET_RETURN_IF_ERROR(reader.ReadU64(&minsplit));
  HAMLET_RETURN_IF_ERROR(reader.ReadF64(&cp));
  HAMLET_RETURN_IF_ERROR(reader.ReadU64(&max_depth));
  HAMLET_RETURN_IF_ERROR(reader.ReadU32(&policy));
  HAMLET_RETURN_IF_ERROR(reader.ReadU64(&d));
  HAMLET_RETURN_IF_ERROR(reader.ReadI32(&root));
  HAMLET_RETURN_IF_ERROR(reader.ReadU64(&num_nodes));
  if (criterion > static_cast<uint32_t>(SplitCriterion::kGainRatio)) {
    return Status::InvalidArgument("corrupt model: unknown tree criterion");
  }
  if (policy > static_cast<uint32_t>(UnseenPolicy::kMajorityBranch)) {
    return Status::InvalidArgument(
        "corrupt model: unknown tree unseen-code policy");
  }
  if (d != num_features) {
    return Status::InvalidArgument(
        "corrupt model: tree feature count disagrees with the header");
  }
  if (num_nodes == 0 || num_nodes > io::kMaxVectorElements ||
      root < 0 || static_cast<uint64_t>(root) >= num_nodes) {
    return Status::InvalidArgument("corrupt model: bad tree root/node count");
  }
  config.criterion = static_cast<SplitCriterion>(criterion);
  config.minsplit = static_cast<size_t>(minsplit);
  config.cp = cp;
  config.max_depth = static_cast<size_t>(max_depth);
  config.unseen_policy = static_cast<UnseenPolicy>(policy);

  auto model = std::make_unique<DecisionTree>(config);
  model->num_features_ = static_cast<size_t>(d);
  model->root_ = root;
  model->nodes_.resize(static_cast<size_t>(num_nodes));
  const auto valid_child = [&](int c) {
    return c >= 0 && static_cast<uint64_t>(c) < num_nodes;
  };
  for (TreeNode& node : model->nodes_) {
    HAMLET_RETURN_IF_ERROR(reader.ReadI32(&node.feature));
    HAMLET_RETURN_IF_ERROR(reader.ReadU8Vec(&node.goes_left));
    HAMLET_RETURN_IF_ERROR(reader.ReadU8Vec(&node.code_seen));
    HAMLET_RETURN_IF_ERROR(reader.ReadI32(&node.left));
    HAMLET_RETURN_IF_ERROR(reader.ReadI32(&node.right));
    HAMLET_RETURN_IF_ERROR(reader.ReadI32(&node.majority_child));
    HAMLET_RETURN_IF_ERROR(reader.ReadU8(&node.prediction));
    HAMLET_RETURN_IF_ERROR(reader.ReadU32(&node.count));
    HAMLET_RETURN_IF_ERROR(reader.ReadU32(&node.pos_count));
    HAMLET_RETURN_IF_ERROR(reader.ReadU32(&node.depth));
    // Internal nodes must route to in-range children through in-range
    // features; WalkCodes trusts these invariants.
    if (node.feature >= 0) {
      if (static_cast<uint64_t>(node.feature) >= d ||
          !valid_child(node.left) || !valid_child(node.right) ||
          !valid_child(node.majority_child) ||
          node.goes_left.size() != node.code_seen.size() ||
          node.goes_left.size() >
              domains[static_cast<size_t>(node.feature)]) {
        return Status::InvalidArgument(
            "corrupt model: tree node routing out of range");
      }
    }
  }
  return Result<std::unique_ptr<DecisionTree>>(std::move(model));
}

int DecisionTree::BuildNode(const CodeMatrix& train,
                            std::vector<uint32_t>& rows, size_t begin,
                            size_t end, size_t depth, double root_risk) {
  const size_t n = end - begin;
  assert(n > 0);

  size_t pos = 0;
  for (size_t i = begin; i < end; ++i) pos += train.label(rows[i]);

  const int node_id = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  {
    TreeNode& node = nodes_.back();
    node.count = static_cast<uint32_t>(n);
    node.pos_count = static_cast<uint32_t>(pos);
    node.depth = static_cast<uint32_t>(depth);
    node.prediction = (2 * pos > n) ? 1 : 0;
  }

  // Stopping: purity, size, depth.
  if (pos == 0 || pos == n || n < config_.minsplit ||
      depth >= config_.max_depth) {
    return node_id;
  }

  // Find the best split across features.
  BestSplit best;
  for (size_t j = 0; j < num_features_; ++j) {
    const uint32_t domain = train.domain_size(j);
    if (domain < 2) continue;
    auto& count = scratch_count_[j];
    auto& pos_count = scratch_pos_[j];

    // Per-code stats for this node; track touched codes for cheap reset.
    // The gather runs through the simd split-scan helper (unrolled row
    // loads, updates in row order), so counts and first-seen order are
    // identical to a plain per-row loop on every backend.
    std::vector<uint32_t> touched;
    touched.reserve(std::min<size_t>(n, domain));
    simd::SplitStatsScan(fit_backend_, train.codes().data(), num_features_,
                         train.labels().data(), rows.data() + begin, n, j,
                         count.data(), pos_count.data(), touched);
    if (touched.size() >= 2) {
      // Breiman ordering: sort codes by positive fraction (ties by code for
      // determinism), then scan the K-1 prefix partitions.
      std::sort(touched.begin(), touched.end(),
                [&](uint32_t a, uint32_t b) {
                  const double fa = static_cast<double>(pos_count[a]) /
                                    static_cast<double>(count[a]);
                  const double fb = static_cast<double>(pos_count[b]) /
                                    static_cast<double>(count[b]);
                  if (fa != fb) return fa < fb;
                  return a < b;
                });
      size_t nl = 0, pl = 0;
      for (size_t k = 0; k + 1 < touched.size(); ++k) {
        nl += count[touched[k]];
        pl += pos_count[touched[k]];
        const size_t nr = n - nl;
        const size_t pr = pos - pl;
        const double score =
            SplitScore(config_.criterion, pl, nl, pr, nr);
        if (score > best.score + 1e-12) {
          best.score = score;
          best.gain = SplitGain(config_.criterion, pl, nl, pr, nr);
          best.feature = static_cast<int>(j);
          best.left_codes.assign(touched.begin(),
                                 touched.begin() + static_cast<long>(k + 1));
          best.n_left = nl;
          best.n_right = nr;
        }
      }
    }
    for (uint32_t c : touched) {
      count[c] = 0;
      pos_count[c] = 0;
    }
  }

  // rpart cp test: the split must improve overall risk by cp * root risk.
  if (best.feature < 0 || best.gain < config_.cp * root_risk ||
      best.n_left == 0 || best.n_right == 0) {
    return node_id;
  }

  // Record routing (and which codes were seen here).
  const size_t j = static_cast<size_t>(best.feature);
  {
    TreeNode& node = nodes_[node_id];
    node.feature = best.feature;
    node.goes_left.assign(train.domain_size(j), 0);
    node.code_seen.assign(train.domain_size(j), 0);
    for (uint32_t c : best.left_codes) node.goes_left[c] = 1;
  }
  for (size_t i = begin; i < end; ++i) {
    nodes_[node_id].code_seen[train.at(rows[i], j)] = 1;
  }

  // Partition rows in place: left block first.
  const auto middle = std::stable_partition(
      rows.begin() + static_cast<long>(begin),
      rows.begin() + static_cast<long>(end), [&](uint32_t r) {
        return nodes_[node_id].goes_left[train.at(r, j)] != 0;
      });
  const size_t mid = static_cast<size_t>(middle - rows.begin());
  assert(mid - begin == best.n_left);

  const int left =
      BuildNode(train, rows, begin, mid, depth + 1, root_risk);
  const int right = BuildNode(train, rows, mid, end, depth + 1, root_risk);
  TreeNode& node = nodes_[node_id];
  node.left = left;
  node.right = right;
  node.majority_child = best.n_left >= best.n_right ? left : right;
  return node_id;
}

Result<uint8_t> DecisionTree::Walk(const DataView& view, size_t i) const {
  // Guard before materialising: an unfitted tree must not touch the view.
  if (root_ < 0) return Status::FailedPrecondition("tree not fitted");
  // WalkCodes indexes the buffer by trained feature id, so the view must
  // select the training feature subset (the Classifier contract).
  assert(view.num_features() == num_features_);
  // Materialise the row once (through the DataView access path) and share
  // the routing logic with the dense batch walker; batch scoring should
  // prefer PredictAll.
  return WalkCodes(view.ScratchRowCodes(i));
}

Result<uint8_t> DecisionTree::WalkCodes(const uint32_t* codes) const {
  if (root_ < 0) return Status::FailedPrecondition("tree not fitted");
  int cur = root_;
  for (;;) {
    const TreeNode& node = nodes_[static_cast<size_t>(cur)];
    if (node.feature < 0) return node.prediction;
    const uint32_t c = codes[static_cast<size_t>(node.feature)];
    const bool in_domain = c < node.goes_left.size();
    const bool seen = in_domain && node.code_seen[c] != 0;
    if (!seen) {
      if (config_.unseen_policy == UnseenPolicy::kError) {
        return Status::NotFound(
            "feature code unseen at a tree node (R packages crash here; "
            "use kMajorityBranch or FK smoothing)");
      }
      cur = node.majority_child;
      continue;
    }
    cur = node.goes_left[c] ? node.left : node.right;
  }
}

Result<uint8_t> DecisionTree::TryPredict(const DataView& view,
                                         size_t i) const {
  return Walk(view, i);
}

uint8_t DecisionTree::FallbackPrediction() const {
  // Under kError the caller should use TryPredict; Predict/PredictAll
  // fall back to the root majority so they stay total.
  return root_ >= 0 ? nodes_[static_cast<size_t>(root_)].prediction : 0;
}

uint8_t DecisionTree::Predict(const DataView& view, size_t i) const {
  Result<uint8_t> r = Walk(view, i);
  return r.ok() ? r.value() : FallbackPrediction();
}

std::vector<uint8_t> DecisionTree::PredictAll(const DataView& view) const {
  // Same rule as Walk: an unfitted tree must not touch the view (and
  // materialising it would be wasted work).
  if (root_ < 0) {
    return std::vector<uint8_t>(view.num_rows(), FallbackPrediction());
  }
  assert(view.num_features() == num_features_);
  return DensePredictAll(view, [&](const CodeMatrix& queries, size_t i) {
    Result<uint8_t> r = WalkCodes(queries.row(i));
    return r.ok() ? r.value() : FallbackPrediction();
  });
}

size_t DecisionTree::num_leaves() const {
  size_t leaves = 0;
  for (const auto& node : nodes_) leaves += node.feature < 0;
  return leaves;
}

size_t DecisionTree::depth() const {
  size_t d = 0;
  for (const auto& node : nodes_) d = std::max<size_t>(d, node.depth);
  return d;
}

std::vector<size_t> DecisionTree::FeatureUseCounts() const {
  std::vector<size_t> counts(num_features_, 0);
  for (const auto& node : nodes_) {
    if (node.feature >= 0) ++counts[static_cast<size_t>(node.feature)];
  }
  return counts;
}

}  // namespace ml
}  // namespace hamlet
