// Textual rendering of a fitted decision tree.
//
// Motivated by the paper's §6: foreign-key features make trees hard to
// interpret because a single node can route thousands of categories. The
// printer summarises category subsets ("{3 of 40 codes} -> left") instead
// of listing them, and reports per-feature usage so the FK-dominance
// observation from §4.1 is visible.

#ifndef HAMLET_ML_TREE_TREE_PRINTER_H_
#define HAMLET_ML_TREE_TREE_PRINTER_H_

#include <string>

#include "hamlet/data/view.h"
#include "hamlet/ml/tree/decision_tree.h"

namespace hamlet {
namespace ml {

/// Multi-line indented rendering of the tree. `view` supplies feature
/// names; it must have the same feature subset the tree was trained on.
std::string PrintTree(const DecisionTree& tree, const DataView& view,
                      size_t max_depth = 6);

/// One line per feature: name, #nodes using it, fraction of internal nodes.
std::string PrintFeatureUsage(const DecisionTree& tree, const DataView& view);

}  // namespace ml
}  // namespace hamlet

#endif  // HAMLET_ML_TREE_TREE_PRINTER_H_
