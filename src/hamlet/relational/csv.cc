#include "hamlet/relational/csv.h"

#include <fstream>
#include <sstream>
#include <unordered_map>

#include "hamlet/common/stringx.h"

namespace hamlet {

Result<CsvTable> ReadCsv(const std::string& text) {
  std::vector<std::string> lines;
  {
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (!TrimString(line).empty()) lines.push_back(line);
    }
  }
  if (lines.empty()) return Status::InvalidArgument("empty CSV input");

  const std::vector<std::string> header = SplitString(lines[0], ',');
  const size_t ncols = header.size();

  // First pass: build per-column dictionaries.
  std::vector<std::vector<std::string>> dicts(ncols);
  std::vector<std::unordered_map<std::string, uint32_t>> code_of(ncols);
  std::vector<std::vector<uint32_t>> rows;
  rows.reserve(lines.size() - 1);
  for (size_t r = 1; r < lines.size(); ++r) {
    const std::vector<std::string> fields = SplitString(lines[r], ',');
    if (fields.size() != ncols) {
      return Status::InvalidArgument("CSV row " + std::to_string(r) +
                                     " has wrong arity");
    }
    std::vector<uint32_t> codes(ncols);
    for (size_t c = 0; c < ncols; ++c) {
      const std::string v = TrimString(fields[c]);
      auto it = code_of[c].find(v);
      if (it == code_of[c].end()) {
        const uint32_t code = static_cast<uint32_t>(dicts[c].size());
        code_of[c].emplace(v, code);
        dicts[c].push_back(v);
        codes[c] = code;
      } else {
        codes[c] = it->second;
      }
    }
    rows.push_back(std::move(codes));
  }

  TableSchema schema;
  for (size_t c = 0; c < ncols; ++c) {
    Status st = schema.AddColumn(ColumnSpec{
        TrimString(header[c]), static_cast<uint32_t>(dicts[c].size())});
    if (!st.ok()) return st;
  }
  Table table(schema);
  table.Reserve(rows.size());
  for (const auto& row : rows) table.AppendRowUnchecked(row);

  return CsvTable{std::move(table), std::move(dicts)};
}

Result<CsvTable> ReadCsvFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return ReadCsv(buf.str());
}

std::string WriteDatasetCsv(const Dataset& data) {
  std::ostringstream out;
  for (size_t c = 0; c < data.num_features(); ++c) {
    out << data.feature_spec(c).name << ',';
  }
  out << "label\n";
  for (size_t r = 0; r < data.num_rows(); ++r) {
    for (size_t c = 0; c < data.num_features(); ++c) {
      out << data.feature(r, c) << ',';
    }
    out << static_cast<int>(data.label(r)) << '\n';
  }
  return out.str();
}

Status WriteFile(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  if (!out) return Status::Internal("cannot write '" + path + "'");
  out << text;
  return out.good() ? Status::OK() : Status::Internal("write failed");
}

}  // namespace hamlet
