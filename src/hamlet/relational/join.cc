#include "hamlet/relational/join.h"

#include <algorithm>

namespace hamlet {

namespace {

bool IsOpenDomain(const JoinOptions& options, size_t dim) {
  return std::find(options.open_domain_fks.begin(),
                   options.open_domain_fks.end(),
                   dim) != options.open_domain_fks.end();
}

}  // namespace

std::vector<FeatureSpec> JoinedSchema(const StarSchema& star,
                                      const JoinOptions& options) {
  std::vector<FeatureSpec> specs;
  // Home features.
  for (size_t c = 0; c < star.fact().num_columns(); ++c) {
    const ColumnSpec& col = star.fact().schema().column(c);
    specs.push_back(FeatureSpec{col.name, col.domain_size,
                                FeatureRole::kHome, -1});
  }
  // Foreign keys.
  if (options.include_fks) {
    for (size_t i = 0; i < star.num_dimensions(); ++i) {
      if (IsOpenDomain(options, i)) continue;
      const DimensionTable& dim = star.dimension(i);
      specs.push_back(FeatureSpec{
          "fk_" + dim.name, static_cast<uint32_t>(dim.table.num_rows()),
          FeatureRole::kForeignKey, static_cast<int>(i)});
    }
  }
  // Foreign features, per dimension.
  for (size_t i = 0; i < star.num_dimensions(); ++i) {
    const DimensionTable& dim = star.dimension(i);
    for (size_t c = 0; c < dim.table.num_columns(); ++c) {
      const ColumnSpec& col = dim.table.schema().column(c);
      specs.push_back(FeatureSpec{dim.name + "." + col.name, col.domain_size,
                                  FeatureRole::kForeign,
                                  static_cast<int>(i)});
    }
  }
  return specs;
}

Result<Dataset> JoinAllTables(const StarSchema& star,
                              const JoinOptions& options) {
  Status st = star.Validate();
  if (!st.ok()) return st;

  Dataset out(JoinedSchema(star, options));
  const size_t n = star.num_facts();
  out.Reserve(n);

  const size_t ds = star.fact().num_columns();
  std::vector<uint32_t> row;
  row.reserve(out.num_features());
  for (size_t r = 0; r < n; ++r) {
    row.clear();
    for (size_t c = 0; c < ds; ++c) row.push_back(star.fact().at(r, c));
    if (options.include_fks) {
      for (size_t i = 0; i < star.num_dimensions(); ++i) {
        if (IsOpenDomain(options, i)) continue;
        row.push_back(star.fk_column(i)[r]);
      }
    }
    for (size_t i = 0; i < star.num_dimensions(); ++i) {
      const uint32_t rid = star.fk_column(i)[r];
      const Table& dim = star.dimension(i).table;
      for (size_t c = 0; c < dim.num_columns(); ++c) {
        row.push_back(dim.at(rid, c));
      }
    }
    out.AppendRowUnchecked(row, star.labels()[r]);
  }
  return out;
}

}  // namespace hamlet
