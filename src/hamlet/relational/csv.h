// CSV import/export for categorical tables and datasets.
//
// Categorical values are stored as integer codes internally; CSV I/O maps
// distinct strings to codes on read (building the domain) and writes codes
// (or the remembered strings) on write. Used by the examples and for
// inspecting generated data.

#ifndef HAMLET_RELATIONAL_CSV_H_
#define HAMLET_RELATIONAL_CSV_H_

#include <string>
#include <vector>

#include "hamlet/common/status.h"
#include "hamlet/data/dataset.h"
#include "hamlet/relational/table.h"

namespace hamlet {

/// A table read from CSV plus the per-column code -> string dictionaries.
struct CsvTable {
  Table table;
  std::vector<std::vector<std::string>> dictionaries;
};

/// Parses CSV text (first line = header) into a categorical table. Every
/// column becomes categorical; the domain is the set of distinct strings in
/// order of first appearance.
Result<CsvTable> ReadCsv(const std::string& text);

/// Loads a CSV file from disk.
Result<CsvTable> ReadCsvFile(const std::string& path);

/// Serialises a Dataset (codes, plus a final "label" column) to CSV text.
std::string WriteDatasetCsv(const Dataset& data);

/// Writes `text` to `path`.
Status WriteFile(const std::string& path, const std::string& text);

}  // namespace hamlet

#endif  // HAMLET_RELATIONAL_CSV_H_
