#include "hamlet/relational/star_schema.h"

#include <cassert>

namespace hamlet {

size_t StarSchema::AddDimension(std::string name, Table table) {
  dims_.push_back(DimensionTable{std::move(name), std::move(table)});
  fk_cols_.emplace_back();
  return dims_.size() - 1;
}

Status StarSchema::AppendFact(const std::vector<uint32_t>& home_codes,
                              const std::vector<uint32_t>& fks,
                              uint8_t label) {
  if (fks.size() != dims_.size()) {
    return Status::InvalidArgument("expected one FK per dimension table");
  }
  if (label > 1) {
    return Status::InvalidArgument("binary target required (label in {0,1})");
  }
  for (size_t i = 0; i < fks.size(); ++i) {
    if (fks[i] >= dims_[i].table.num_rows()) {
      return Status::OutOfRange("FK value exceeds dimension '" +
                                dims_[i].name + "' cardinality");
    }
  }
  HAMLET_RETURN_IF_ERROR(fact_.AppendRow(home_codes));
  for (size_t i = 0; i < fks.size(); ++i) fk_cols_[i].push_back(fks[i]);
  labels_.push_back(label);
  return Status::OK();
}

double StarSchema::TupleRatio(size_t i) const {
  assert(i < dims_.size());
  const size_t nr = dims_[i].table.num_rows();
  if (nr == 0) return 0.0;
  return static_cast<double>(num_facts()) / static_cast<double>(nr);
}

Status StarSchema::Validate() const {
  const size_t n = labels_.size();
  if (fact_.num_rows() != n) {
    return Status::Internal("fact row count != label count");
  }
  for (size_t i = 0; i < dims_.size(); ++i) {
    if (fk_cols_[i].size() != n) {
      return Status::Internal("FK column length mismatch for dimension '" +
                              dims_[i].name + "'");
    }
    const size_t nr = dims_[i].table.num_rows();
    if (nr == 0) {
      return Status::FailedPrecondition("empty dimension table '" +
                                        dims_[i].name + "'");
    }
    for (uint32_t fk : fk_cols_[i]) {
      if (fk >= nr) {
        return Status::OutOfRange("dangling FK into dimension '" +
                                  dims_[i].name + "'");
      }
    }
  }
  return Status::OK();
}

void StarSchema::ReserveFacts(size_t n) {
  fact_.Reserve(n);
  for (auto& col : fk_cols_) col.reserve(n);
  labels_.reserve(n);
}

}  // namespace hamlet
