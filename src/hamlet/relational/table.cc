#include "hamlet/relational/table.h"

#include <cassert>

namespace hamlet {

Table::Table(TableSchema schema) : schema_(std::move(schema)) {
  columns_.resize(schema_.num_columns());
}

Status Table::AppendRow(const std::vector<uint32_t>& codes) {
  HAMLET_RETURN_IF_ERROR(schema_.ValidateRow(codes));
  AppendRowUnchecked(codes);
  return Status::OK();
}

void Table::AppendRowUnchecked(const std::vector<uint32_t>& codes) {
  assert(codes.size() == columns_.size());
  for (size_t i = 0; i < codes.size(); ++i) {
    assert(codes[i] < schema_.column(i).domain_size);
    columns_[i].push_back(codes[i]);
  }
  ++num_rows_;
}

std::vector<uint32_t> Table::Row(size_t row) const {
  assert(row < num_rows_);
  std::vector<uint32_t> out(columns_.size());
  for (size_t i = 0; i < columns_.size(); ++i) out[i] = columns_[i][row];
  return out;
}

void Table::Reserve(size_t rows) {
  for (auto& col : columns_) col.reserve(rows);
}

}  // namespace hamlet
