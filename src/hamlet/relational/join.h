// Key-foreign-key equi-join: StarSchema -> learning-ready Dataset.
//
// Implements T <- pi(R_1 join ... join R_q join S) from the paper (§2.1).
// The output column order is [X_S, FK_1..FK_q, X_R1.., X_Rq..], each column
// tagged with its FeatureRole so downstream variants can subset by role.

#ifndef HAMLET_RELATIONAL_JOIN_H_
#define HAMLET_RELATIONAL_JOIN_H_

#include "hamlet/common/status.h"
#include "hamlet/data/dataset.h"
#include "hamlet/relational/star_schema.h"

namespace hamlet {

/// Options for the join output.
struct JoinOptions {
  /// Include the FK_i columns as features (true in the paper's setting; a
  /// "open-domain" FK such as Expedia's search id would set this false for
  /// that key via `open_domain_fks`).
  bool include_fks = true;
  /// Dimension indices whose FK has an open domain and must not become a
  /// feature (the dimension's foreign features are still joined in).
  std::vector<size_t> open_domain_fks;
};

/// Joins every dimension into the fact table. The result owns its data;
/// foreign-feature columns are de-referenced through the FK (hash-free:
/// RIDs are row indices, so the join is a gather).
Result<Dataset> JoinAllTables(const StarSchema& star,
                              const JoinOptions& options = {});

/// Schema of the joined output without materialising it (used by the
/// advisor: NoJoin decisions must not read dimension bytes).
std::vector<FeatureSpec> JoinedSchema(const StarSchema& star,
                                      const JoinOptions& options = {});

}  // namespace hamlet

#endif  // HAMLET_RELATIONAL_JOIN_H_
