// Relational schema metadata for categorical tables.
//
// hamlet works in the paper's setting (§2.2): every attribute is categorical
// with a known finite domain. A column's values are stored as integer codes
// in [0, domain_size); code -> display-string mapping is optional and only
// used for CSV I/O and tree printing.

#ifndef HAMLET_RELATIONAL_SCHEMA_H_
#define HAMLET_RELATIONAL_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "hamlet/common/status.h"

namespace hamlet {

/// Metadata for one categorical column.
struct ColumnSpec {
  std::string name;
  /// Number of distinct categories; codes are in [0, domain_size).
  uint32_t domain_size = 0;
};

/// Ordered list of columns making up a table.
class TableSchema {
 public:
  TableSchema() = default;
  explicit TableSchema(std::vector<ColumnSpec> columns);

  size_t num_columns() const { return columns_.size(); }
  const ColumnSpec& column(size_t i) const { return columns_[i]; }
  const std::vector<ColumnSpec>& columns() const { return columns_; }

  /// Index of the column called `name`, or -1 when absent.
  int IndexOf(const std::string& name) const;

  /// Appends a column; fails on duplicate name or zero domain.
  Status AddColumn(ColumnSpec spec);

  /// Validates a row of codes against the column domains.
  Status ValidateRow(const std::vector<uint32_t>& codes) const;

  bool operator==(const TableSchema& other) const;

 private:
  std::vector<ColumnSpec> columns_;
};

}  // namespace hamlet

#endif  // HAMLET_RELATIONAL_SCHEMA_H_
