#include "hamlet/relational/schema.h"

namespace hamlet {

TableSchema::TableSchema(std::vector<ColumnSpec> columns)
    : columns_(std::move(columns)) {}

int TableSchema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

Status TableSchema::AddColumn(ColumnSpec spec) {
  if (spec.domain_size == 0) {
    return Status::InvalidArgument("column '" + spec.name +
                                   "' has zero domain size");
  }
  if (IndexOf(spec.name) >= 0) {
    return Status::InvalidArgument("duplicate column name '" + spec.name + "'");
  }
  columns_.push_back(std::move(spec));
  return Status::OK();
}

Status TableSchema::ValidateRow(const std::vector<uint32_t>& codes) const {
  if (codes.size() != columns_.size()) {
    return Status::InvalidArgument("row arity mismatch");
  }
  for (size_t i = 0; i < codes.size(); ++i) {
    if (codes[i] >= columns_[i].domain_size) {
      return Status::OutOfRange("code out of domain for column '" +
                                columns_[i].name + "'");
    }
  }
  return Status::OK();
}

bool TableSchema::operator==(const TableSchema& other) const {
  if (columns_.size() != other.columns_.size()) return false;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name != other.columns_[i].name ||
        columns_[i].domain_size != other.columns_[i].domain_size) {
      return false;
    }
  }
  return true;
}

}  // namespace hamlet
