// Column-major categorical table.
//
// Storage is one contiguous vector of codes per column, which keeps the
// learners cache-friendly: split search in the decision tree and the join
// operator both scan single columns.

#ifndef HAMLET_RELATIONAL_TABLE_H_
#define HAMLET_RELATIONAL_TABLE_H_

#include <cstdint>
#include <vector>

#include "hamlet/common/status.h"
#include "hamlet/relational/schema.h"

namespace hamlet {

/// In-memory table of categorical codes, column-major.
class Table {
 public:
  Table() = default;
  explicit Table(TableSchema schema);

  const TableSchema& schema() const { return schema_; }
  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return schema_.num_columns(); }

  /// Appends a validated row.
  Status AppendRow(const std::vector<uint32_t>& codes);

  /// Appends without domain validation (hot path for generators; asserts in
  /// debug builds only).
  void AppendRowUnchecked(const std::vector<uint32_t>& codes);

  /// Code at (row, col); bounds-checked by assertion.
  uint32_t at(size_t row, size_t col) const {
    return columns_[col][row];
  }

  /// Whole column, for columnar scans.
  const std::vector<uint32_t>& column(size_t col) const {
    return columns_[col];
  }

  /// Materialises one row (for display / CSV export).
  std::vector<uint32_t> Row(size_t row) const;

  /// Pre-allocates capacity in every column.
  void Reserve(size_t rows);

 private:
  TableSchema schema_;
  std::vector<std::vector<uint32_t>> columns_;
  size_t num_rows_ = 0;
};

}  // namespace hamlet

#endif  // HAMLET_RELATIONAL_TABLE_H_
