// Star schema container: one fact table plus q dimension tables.
//
// Mirrors the paper's setting (§2.1): the fact table S(SID, Y, X_S,
// FK_1..FK_q) holds the target and home features; each dimension table
// R_i(RID_i, X_Ri) holds foreign features. RIDs are implicit: row r of
// dimension i *is* RID value r, and FK column i stores those row indices.

#ifndef HAMLET_RELATIONAL_STAR_SCHEMA_H_
#define HAMLET_RELATIONAL_STAR_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "hamlet/common/status.h"
#include "hamlet/relational/table.h"

namespace hamlet {

/// One dimension table plus its name (used to prefix feature names in the
/// joined output, e.g. "users.age_bucket").
struct DimensionTable {
  std::string name;
  Table table;
};

/// Fact table + dimensions + FK columns + labels.
class StarSchema {
 public:
  StarSchema() = default;

  /// `fact` holds only the home features X_S (possibly zero columns).
  explicit StarSchema(Table fact) : fact_(std::move(fact)) {}

  /// Adds a dimension table; returns its index.
  size_t AddDimension(std::string name, Table table);

  /// Appends one labeled fact row. `fks[i]` must be a valid row index into
  /// dimension i.
  Status AppendFact(const std::vector<uint32_t>& home_codes,
                    const std::vector<uint32_t>& fks, uint8_t label);

  const Table& fact() const { return fact_; }
  size_t num_dimensions() const { return dims_.size(); }
  const DimensionTable& dimension(size_t i) const { return dims_[i]; }
  const std::vector<uint32_t>& fk_column(size_t i) const { return fk_cols_[i]; }
  const std::vector<uint8_t>& labels() const { return labels_; }
  size_t num_facts() const { return labels_.size(); }

  /// n_S / n_R for dimension i — the paper's key statistic. The paper's
  /// Table 1 reports it against the *training* rows (50% of n_S); callers
  /// that want that convention scale by their train fraction.
  double TupleRatio(size_t i) const;

  /// Structural validation: FK ranges, equal column lengths, label arity.
  Status Validate() const;

  /// Pre-allocates fact-side capacity.
  void ReserveFacts(size_t n);

 private:
  Table fact_;                                 // home features only
  std::vector<DimensionTable> dims_;
  std::vector<std::vector<uint32_t>> fk_cols_;  // fk_cols_[i][row] = RID
  std::vector<uint8_t> labels_;
};

}  // namespace hamlet

#endif  // HAMLET_RELATIONAL_STAR_SCHEMA_H_
