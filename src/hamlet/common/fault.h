// Seeded, deterministic fault injection for exercising failure paths.
//
// hamlet reports every recoverable failure through Status, but most of
// those paths — a write error mid-save, an fsync that returns EIO, a
// transient open failure — are nearly impossible to hit from a test
// without help. This subsystem plants named injection sites at the
// system-call boundaries (the full roster is in KnownSites(); the table
// lives in docs/ARCHITECTURE.md) and fires them according to a spec:
//
//   HAMLET_FAULT_SPEC = clause (';' clause)*
//   clause            = "seed=" uint64              (default 1)
//                     | site ":" trigger
//   trigger           = "always"                    fire on every call
//                     | "nth=" N                    fire on the Nth call
//                                                   to the site (1-based,
//                                                   exactly once)
//                     | "p=" F                      fire each call with
//                                                   probability F in [0,1]
//
// e.g. HAMLET_FAULT_SPEC="seed=7;io.save.write:nth=3;io.load.open:p=0.5"
//
// The p= trigger hashes (seed, site, per-site call index), so a given
// spec produces the same fire pattern on every run and at any thread
// count — fault schedules are reproducible by construction, the same
// determinism contract the rest of hamlet keeps. Specs are validated
// against the known-site roster; a typo'd site or trigger is an error
// from InstallSpec and a warn-once + ignore from the env path.
//
// When no spec is installed, every check is a single relaxed atomic
// load — the production hot path does not pay for the test machinery.
//
// FaultInjectingStreambuf wraps an iostream buffer so stream-level
// read/write faults can be injected under ModelWriter/ModelReader
// without touching the byte layer itself; io::SaveModelToFile /
// io::LoadModelFromFile interpose it automatically while faults are
// enabled.

#ifndef HAMLET_COMMON_FAULT_H_
#define HAMLET_COMMON_FAULT_H_

#include <cstdint>
#include <streambuf>
#include <string>
#include <vector>

#include "hamlet/common/status.h"
#include "hamlet/common/attributes.h"

namespace hamlet {
namespace fault {

/// Injection-site names (use these constants, not raw strings, so a
/// typo'd site is a compile error at the call site).
inline constexpr char kSiteSaveOpen[] = "io.save.open";
inline constexpr char kSiteSaveWrite[] = "io.save.write";
inline constexpr char kSiteSaveFsync[] = "io.save.fsync";
inline constexpr char kSiteSaveRename[] = "io.save.rename";
inline constexpr char kSiteLoadOpen[] = "io.load.open";
inline constexpr char kSiteLoadRead[] = "io.load.read";

/// True when any spec is installed (programmatically or from
/// HAMLET_FAULT_SPEC). Call sites gate optional wrapping on this; the
/// disabled fast path is one relaxed atomic load.
bool Enabled();

/// True when `site` should fail on this call. Counts the call against
/// the site either way (when enabled), so nth= triggers and the
/// CallCount/FireCount observers see every probe.
bool ShouldFail(const char* site);

/// Status-producing convenience: OK when the site does not fire,
/// Unavailable("injected fault at <site>: <detail>") when it does —
/// Unavailable because injected faults model transient conditions (the
/// retry wrappers key on it).
HAMLET_NODISCARD Status Inject(const char* site,
                               const std::string& detail = "");

/// Installs `spec` (the HAMLET_FAULT_SPEC grammar above), replacing any
/// previous spec and resetting all counters. An empty spec disables
/// injection. Unknown sites and malformed clauses are InvalidArgument
/// and leave injection disabled.
HAMLET_NODISCARD Status InstallSpec(const std::string& spec);

/// Re-reads HAMLET_FAULT_SPEC and installs it (unset/empty disables).
/// The first ShouldFail/Enabled call does this implicitly once; tests
/// that set the variable later call this to pick it up. A malformed env
/// spec warns on stderr once per distinct value and disables injection.
HAMLET_NODISCARD Status LoadSpecFromEnv();

/// Disables injection and resets all counters.
void Clear();

/// The full roster of injection sites, for sweeps and docs.
const std::vector<std::string>& KnownSites();

/// Observability for tests: calls seen / faults fired per site since the
/// last InstallSpec/Clear. Unknown sites report 0.
uint64_t CallCount(const std::string& site);
uint64_t FireCount(const std::string& site);

/// Streambuf decorator that consults a fault site before delegating to
/// the wrapped buffer. A firing write site makes puts fail (the owning
/// ostream goes bad); a firing read site makes gets return short (the
/// owning istream sees a truncated stream). Pass nullptr for a
/// direction that should pass through untouched.
class FaultInjectingStreambuf final : public std::streambuf {
 public:
  FaultInjectingStreambuf(std::streambuf* base, const char* write_site,
                          const char* read_site)
      : base_(base), write_site_(write_site), read_site_(read_site) {}

 protected:
  std::streamsize xsputn(const char* s, std::streamsize n) override;
  int_type overflow(int_type ch) override;
  int sync() override;
  std::streamsize xsgetn(char* s, std::streamsize n) override;
  int_type underflow() override;
  int_type uflow() override;

 private:
  std::streambuf* base_;
  const char* write_site_;
  const char* read_site_;
};

}  // namespace fault
}  // namespace hamlet

#endif  // HAMLET_COMMON_FAULT_H_
