// Shared-memory parallel execution primitives.
//
// Every hot loop in hamlet (grid-search points, Monte-Carlo runs, scoring
// rows) is a fan-out over independent indices; ParallelFor/ParallelMap run
// such loops on a lazily-started std::thread pool sized by HAMLET_THREADS
// (default: hardware_concurrency; 1 = exact serial execution with no pool).
//
// Determinism contract: results are keyed by index, never by completion
// order, so every primitive here produces bit-identical output at any
// thread count. Callers are responsible for making the body itself
// index-deterministic (derive per-index RNG seeds from `i`; never share a
// generator across indices).
//
// Nesting: a ParallelFor issued from inside another ParallelFor body runs
// serially inline on the calling thread. This keeps inner loops (e.g.
// Accuracy inside a grid-search worker) deadlock-free while the outermost
// loop owns the pool.

#ifndef HAMLET_COMMON_PARALLEL_H_
#define HAMLET_COMMON_PARALLEL_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "hamlet/common/status.h"
#include "hamlet/common/attributes.h"

namespace hamlet {
namespace parallel {

/// max(1, std::thread::hardware_concurrency()).
size_t HardwareThreads();

/// Thread count requested via HAMLET_THREADS: a positive integer, or unset
/// for HardwareThreads(). Invalid values (non-numeric, < 1, > 1024) warn on
/// stderr once per distinct value and fall back to HardwareThreads().
size_t ConfiguredThreads();

/// A fixed-size pool of worker threads executing index-range jobs. The
/// `num_threads` budget counts the submitting thread: a pool of size T
/// spawns T-1 workers and the caller participates, so T=1 never spawns a
/// thread and runs everything inline in submission order. Workers start
/// lazily on the first parallel submission.
///
/// One job runs at a time; concurrent submissions from different external
/// threads are serialized. Destroying the pool while a job is in flight is
/// undefined behaviour.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return num_threads_; }

  /// Invokes body(i) for every i in [0, n), distributing chunks of indices
  /// across the pool. Blocks until all indices complete. If any body call
  /// throws, the first exception caught is rethrown on the calling thread
  /// after the loop drains (remaining indices still run).
  void For(size_t n, const std::function<void(size_t)>& body);

  /// Status-aware For: runs body(i) for every i and returns the non-OK
  /// Status with the lowest index, or OK. With num_threads() == 1 this is
  /// the exact serial protocol (stops at the first error, which is the
  /// lowest-index error by construction); at higher thread counts all
  /// indices execute but the returned Status is identical.
  HAMLET_NODISCARD Status ForStatus(
      size_t n, const std::function<Status(size_t)>& body);

  /// Maps fn over [0, n) into a vector ordered by index. T must be
  /// default-constructible and movable.
  template <typename T>
  std::vector<T> Map(size_t n, const std::function<T(size_t)>& fn) {
    std::vector<T> out(n);
    For(n, [&](size_t i) { out[i] = fn(i); });
    return out;
  }

 private:
  struct Impl;
  const size_t num_threads_;
  Impl* impl_;  // pimpl keeps <thread>/<condition_variable> out of the API
};

/// The process-wide pool, created on first use with ConfiguredThreads().
ThreadPool& DefaultPool();

/// ParallelFor/ParallelForStatus/ParallelMap on DefaultPool().
void ParallelFor(size_t n, const std::function<void(size_t)>& body);
HAMLET_NODISCARD Status ParallelForStatus(
    size_t n, const std::function<Status(size_t)>& body);

template <typename T>
std::vector<T> ParallelMap(size_t n, const std::function<T(size_t)>& fn) {
  return DefaultPool().Map<T>(n, fn);
}

/// Drops the default pool so the next use re-reads HAMLET_THREADS. For
/// tests only; must not race with in-flight parallel work.
void ResetDefaultPoolForTesting();

}  // namespace parallel
}  // namespace hamlet

#endif  // HAMLET_COMMON_PARALLEL_H_
