// Portable Clang Thread Safety Analysis annotations.
//
// These macros let lock discipline be stated in the type system and
// proved at compile time: a member declared HAMLET_GUARDED_BY(mu) can
// only be touched while `mu` is held, a function declared
// HAMLET_REQUIRES(mu) can only be called with `mu` held, and clang's
// -Wthread-safety (the HAMLET_THREAD_SAFETY=ON CMake mode, -Werror in
// CI) turns every violation into a build break. Under compilers without
// the attributes (gcc, MSVC) every macro expands to nothing, so the
// annotations are pure documentation there — the same source compiles
// everywhere and the clang CI job is the enforcement point.
//
// The analysis only understands capability-annotated lock types, not
// std::mutex directly, so guarded members must use hamlet::Mutex /
// hamlet::MutexLock / hamlet::CondVar from common/mutex.h. Annotate the
// data, not the code: prefer HAMLET_GUARDED_BY on members plus private
// `...Locked()` helpers marked HAMLET_REQUIRES over sprinkling
// HAMLET_NO_THREAD_SAFETY_ANALYSIS escapes — the escape hatch is for
// the rare function whose discipline the analysis cannot express (and
// each use should say why in a comment).
//
// Naming follows the modern capability-based spelling from the clang
// docs (acquire/release/requires); docs/ARCHITECTURE.md ("Static
// analysis & enforced invariants") has the project-level picture.

#ifndef HAMLET_COMMON_THREAD_ANNOTATIONS_H_
#define HAMLET_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define HAMLET_THREAD_ANNOTATION_(x) __attribute__((x))
#endif
#endif
#ifndef HAMLET_THREAD_ANNOTATION_
#define HAMLET_THREAD_ANNOTATION_(x)  // no-op off clang
#endif

/// Marks a class as a lockable capability ("mutex"); required before
/// GUARDED_BY can name instances of it.
#define HAMLET_CAPABILITY(x) HAMLET_THREAD_ANNOTATION_(capability(x))

/// Marks an RAII class whose constructor acquires and destructor
/// releases a capability (hamlet::MutexLock).
#define HAMLET_SCOPED_CAPABILITY HAMLET_THREAD_ANNOTATION_(scoped_lockable)

/// Data member readable/writable only while the named mutex is held.
#define HAMLET_GUARDED_BY(x) HAMLET_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer member whose *pointee* is guarded by the named mutex (the
/// pointer itself may be read freely).
#define HAMLET_PT_GUARDED_BY(x) HAMLET_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Function callable only while holding the named mutex(es); the body
/// is analyzed as if they are held. The convention for private helpers
/// is a `...Locked()` suffix plus this annotation.
#define HAMLET_REQUIRES(...) \
  HAMLET_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Function callable only while NOT holding the named mutex(es) —
/// catches self-deadlock on non-recursive mutexes.
#define HAMLET_EXCLUDES(...) \
  HAMLET_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Function that acquires the named capability (held on return).
#define HAMLET_ACQUIRE(...) \
  HAMLET_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Function that releases the named capability (no longer held on
/// return).
#define HAMLET_RELEASE(...) \
  HAMLET_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Function that acquires the capability only when it returns the given
/// boolean value.
#define HAMLET_TRY_ACQUIRE(...) \
  HAMLET_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// Function returning a reference to the named capability (lets
/// accessors participate in the analysis).
#define HAMLET_RETURN_CAPABILITY(x) HAMLET_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: turns the analysis off for one function. Every use
/// must carry a comment explaining which invariant the analysis cannot
/// express.
#define HAMLET_NO_THREAD_SAFETY_ANALYSIS \
  HAMLET_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // HAMLET_COMMON_THREAD_ANNOTATIONS_H_
