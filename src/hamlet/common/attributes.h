// Portable function/type attributes used across hamlet.
//
// HAMLET_NODISCARD marks types and functions whose return value is an
// error channel: dropping it on the floor silently swallows a failure
// (the exact bug class the fault-injection suite exists to surface).
// Status, Result<T> and every Status-returning API carry it, so a
// discarded error is a -Werror build break on every supported compiler,
// not a code-review catch. Intentional discards must say so with a
// `(void)` cast — grep-able, and a statement of intent in review.

#ifndef HAMLET_COMMON_ATTRIBUTES_H_
#define HAMLET_COMMON_ATTRIBUTES_H_

// C++17 guarantees [[nodiscard]]; the macro exists so the intent reads
// uniformly at every marked declaration and a future port (pre-17
// embedded toolchain, attribute-hostile tooling) has one knob to turn.
#define HAMLET_NODISCARD [[nodiscard]]

#endif  // HAMLET_COMMON_ATTRIBUTES_H_
