// Small string/formatting helpers shared across the library.

#ifndef HAMLET_COMMON_STRINGX_H_
#define HAMLET_COMMON_STRINGX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "hamlet/common/status.h"
#include "hamlet/common/attributes.h"

namespace hamlet {

/// Joins `parts` with `sep` ("a,b,c").
std::string JoinStrings(const std::vector<std::string>& parts,
                        const std::string& sep);

/// Splits `s` on `sep`; keeps empty fields. Splitting "" yields {""}.
std::vector<std::string> SplitString(const std::string& s, char sep);

/// Strips leading/trailing ASCII whitespace.
std::string TrimString(const std::string& s);

/// Fixed-precision double formatting ("0.8537" for FormatDouble(0.8537, 4)).
std::string FormatDouble(double v, int precision);

/// Left-pads/truncates `s` to exactly `width` columns (for table printing).
std::string PadRight(const std::string& s, size_t width);
std::string PadLeft(const std::string& s, size_t width);

/// Strict base-10 unsigned parse: the whole string must be digits (no
/// sign, whitespace, or suffix — strtoull's silent acceptance of "-1"
/// and "12abc" is exactly what this guards against). Overflow past
/// 2^64-1 is rejected. The error message names the offending string.
HAMLET_NODISCARD Result<uint64_t> ParseUnsigned(const std::string& s);

}  // namespace hamlet

#endif  // HAMLET_COMMON_STRINGX_H_
