// Minimal diagnostics helpers.
//
// hamlet reports recoverable errors through Status; the only logging the
// library does is one-time stderr warnings about suspicious environment
// configuration (HAMLET_BENCH_MODE typos, bad HAMLET_THREADS). This header
// centralises the "warn once per distinct condition" bookkeeping so call
// sites stay a two-liner and never spam hot paths.

#ifndef HAMLET_COMMON_LOGGING_H_
#define HAMLET_COMMON_LOGGING_H_

#include <string>

namespace hamlet {

/// Returns true the first time `key` is observed process-wide, false on
/// every later call with the same key. Thread-safe. Key by condition AND
/// offending value (e.g. "bench_mode:fulll") so each distinct value warns
/// exactly once even when values alternate.
bool FirstOccurrence(const std::string& key);

}  // namespace hamlet

#endif  // HAMLET_COMMON_LOGGING_H_
