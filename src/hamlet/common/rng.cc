#include "hamlet/common/rng.h"

#include <cassert>
#include <cmath>

namespace hamlet {

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
  // Guard against the (astronomically unlikely) all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 0x9e3779b97f4a7c15ULL;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::UniformInt(uint64_t n) {
  assert(n > 0);
  // Lemire-style rejection to avoid modulo bias.
  const uint64_t threshold = (~n + 1) % n;  // == 2^64 mod n
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

double Rng::UniformDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) { return UniformDouble() < p; }

double Rng::Normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = UniformDouble();
  } while (u1 <= 1e-300);
  const double u2 = UniformDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  have_cached_normal_ = true;
  return r * std::cos(theta);
}

Rng Rng::Fork(uint64_t stream) {
  uint64_t mix = Next() ^ (0x6a09e667f3bcc909ULL + stream * 0x9e3779b97f4a7c15ULL);
  return Rng(mix);
}

size_t SampleDiscrete(Rng& rng, const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    assert(w >= 0.0);
    total += w;
  }
  assert(total > 0.0);
  double u = rng.UniformDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (u < acc) return i;
  }
  return weights.size() - 1;  // Guard against rounding at the boundary.
}

}  // namespace hamlet
