// Status / Result error-handling primitives (RocksDB-style).
//
// Recoverable errors in hamlet are reported through Status rather than
// exceptions; Result<T> carries either a value or the Status explaining why
// the value could not be produced.

#ifndef HAMLET_COMMON_STATUS_H_
#define HAMLET_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

#include "hamlet/common/attributes.h"

namespace hamlet {

/// Error category for a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  /// Verified corruption of stored data (e.g. a checksum mismatch on a
  /// model file): retrying will not help, the bytes are wrong.
  kDataLoss,
  /// Transient failure (e.g. an injected I/O fault, a busy resource):
  /// the operation may succeed if retried.
  kUnavailable,
};

/// Human-readable name for a StatusCode ("OK", "InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

/// Outcome of an operation: OK, or an error code plus message. The
/// class-level HAMLET_NODISCARD makes discarding any by-value Status a
/// build break (-Werror); intentional discards use a `(void)` cast.
class HAMLET_NODISCARD Status {
 public:
  /// Default-constructed Status is OK.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  /// Rebuilds a Status with an explicit code — for wrappers that add
  /// context to a message while preserving the original category.
  /// FromCode(kOk, ...) is OK (the message is dropped).
  static Status FromCode(StatusCode code, std::string msg) {
    return code == StatusCode::kOk ? OK() : Status(code, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Value-or-error. Construct from a T or from a non-OK Status. Like
/// Status, discarding a returned Result discards an error: nodiscard.
template <typename T>
class HAMLET_NODISCARD Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Returns the value, or `fallback` when this Result holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

/// Early-return helper: propagates a non-OK Status to the caller.
#define HAMLET_RETURN_IF_ERROR(expr)          \
  do {                                        \
    ::hamlet::Status _st = (expr);            \
    if (!_st.ok()) return _st;                \
  } while (0)

}  // namespace hamlet

#endif  // HAMLET_COMMON_STATUS_H_
