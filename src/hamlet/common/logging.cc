#include "hamlet/common/logging.h"

#include <mutex>
#include <unordered_set>

namespace hamlet {

bool FirstOccurrence(const std::string& key) {
  static std::mutex mu;
  static std::unordered_set<std::string>* seen =
      new std::unordered_set<std::string>();  // leaked: usable at exit
  std::lock_guard<std::mutex> lock(mu);
  return seen->insert(key).second;
}

}  // namespace hamlet
