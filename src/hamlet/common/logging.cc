#include "hamlet/common/logging.h"

#include <unordered_set>

#include "hamlet/common/mutex.h"
#include "hamlet/common/thread_annotations.h"

namespace hamlet {

namespace {

Mutex g_seen_mu;

/// The process-wide set of observed keys. Function-local static (leaked:
/// usable at exit) behind a REQUIRES helper so every access provably
/// happens under g_seen_mu.
std::unordered_set<std::string>& SeenKeysLocked()
    HAMLET_REQUIRES(g_seen_mu) {
  static std::unordered_set<std::string>* seen =
      new std::unordered_set<std::string>();
  return *seen;
}

}  // namespace

bool FirstOccurrence(const std::string& key) {
  MutexLock lock(g_seen_mu);
  return SeenKeysLocked().insert(key).second;
}

}  // namespace hamlet
