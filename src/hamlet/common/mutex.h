// Capability-annotated synchronization primitives.
//
// Clang's thread-safety analysis (common/thread_annotations.h) can only
// reason about lock types marked as capabilities, which std::mutex is
// not. These thin wrappers forward straight to the standard primitives
// — zero behavioural difference, identical TSan instrumentation — while
// carrying the annotations that make HAMLET_GUARDED_BY members
// checkable at compile time.
//
// Idiom:
//   - hamlet::Mutex for any member/global mutex whose guarded data is
//     annotated; hamlet::MutexLock as the scoped guard.
//   - hamlet::CondVar waits take the Mutex itself and are used in
//     explicit `while (!cond) cv.Wait(mu);` loops. There are
//     deliberately no predicate-lambda overloads: the analysis treats a
//     lambda body as a separate unannotated function, so a predicate
//     reading guarded members would need a per-lambda escape hatch —
//     the explicit loop keeps the condition inside the annotated
//     function body where the analysis can see the lock is held.
//   - Raw Lock()/Unlock() exist for the few cross-scope protocols
//     (worker loops that drop the lock around a work chunk); prefer
//     MutexLock everywhere else.

#ifndef HAMLET_COMMON_MUTEX_H_
#define HAMLET_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "hamlet/common/thread_annotations.h"

namespace hamlet {

/// Annotated non-recursive mutex; see the header comment for idiom.
class HAMLET_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() HAMLET_ACQUIRE() { mu_.lock(); }
  void Unlock() HAMLET_RELEASE() { mu_.unlock(); }
  bool TryLock() HAMLET_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  // BasicLockable spelling so std::condition_variable_any (and generic
  // code) can drive this mutex directly.
  void lock() HAMLET_ACQUIRE() { mu_.lock(); }      // NOLINT
  void unlock() HAMLET_RELEASE() { mu_.unlock(); }  // NOLINT

 private:
  std::mutex mu_;
};

/// RAII scoped lock over hamlet::Mutex (std::lock_guard equivalent that
/// the analysis understands).
class HAMLET_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) HAMLET_ACQUIRE(mu) : mu_(&mu) {
    mu_->Lock();
  }
  ~MutexLock() HAMLET_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// Condition variable bound to hamlet::Mutex. Waits atomically release
/// and re-acquire the mutex; the HAMLET_REQUIRES annotation makes
/// calling a wait without the lock a compile error under the analysis.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified; always re-checks the condition in a loop at
  /// the call site (spurious wakeups are allowed).
  void Wait(Mutex& mu) HAMLET_REQUIRES(mu) { cv_.wait(mu); }

  /// Blocks until notified or `deadline`; returns false on timeout.
  /// steady_clock only — the determinism/monotonicity contract bans
  /// wall-clock time in the library (tools/hamlet_lint.py enforces it).
  bool WaitUntil(Mutex& mu,
                 std::chrono::steady_clock::time_point deadline)
      HAMLET_REQUIRES(mu) {
    return cv_.wait_until(mu, deadline) == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace hamlet

#endif  // HAMLET_COMMON_MUTEX_H_
