// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) over byte ranges.
//
// Used by the model container format (io/serialize.h, format v2) to
// detect bit-level corruption of the body: structural checks catch
// truncation and implausible lengths, the checksum catches flips inside
// otherwise well-formed payload bytes. Incremental API so streaming
// writers/readers can fold bytes in as they go: seed with kCrc32Init,
// Crc32Feed each chunk, Crc32Finalize at the end.

#ifndef HAMLET_COMMON_CRC32_H_
#define HAMLET_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace hamlet {

/// Initial state for an incremental CRC-32 computation.
inline constexpr uint32_t kCrc32Init = 0xFFFFFFFFu;

/// Folds `n` bytes into the running state.
uint32_t Crc32Feed(uint32_t state, const void* data, size_t n);

/// Turns a running state into the final checksum value.
inline uint32_t Crc32Finalize(uint32_t state) { return state ^ 0xFFFFFFFFu; }

/// One-shot convenience: CRC-32 of a single buffer.
inline uint32_t Crc32(const void* data, size_t n) {
  return Crc32Finalize(Crc32Feed(kCrc32Init, data, n));
}

}  // namespace hamlet

#endif  // HAMLET_COMMON_CRC32_H_
