// Deterministic pseudo-random number generation.
//
// Every stochastic component in hamlet takes an explicit 64-bit seed so that
// experiments are reproducible run-to-run. The generator is xoshiro256**,
// seeded via SplitMix64 (the recommended pairing); helpers cover the common
// sampling needs of the data generators and learners.

#ifndef HAMLET_COMMON_RNG_H_
#define HAMLET_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace hamlet {

/// SplitMix64 step; used for seeding and cheap hash mixing.
uint64_t SplitMix64(uint64_t& state);

/// xoshiro256** generator. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed);

  static constexpr uint64_t min() { return 0; }
  static constexpr uint64_t max() { return ~0ULL; }

  uint64_t operator()() { return Next(); }
  uint64_t Next();

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p);

  /// Standard normal variate (Box-Muller).
  double Normal();

  /// Derives an independent child generator; `stream` distinguishes children.
  Rng Fork(uint64_t stream);

  /// In-place Fisher-Yates shuffle of `v`.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(i));
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  uint64_t s_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

/// Samples an index from unnormalised non-negative weights.
/// Requires at least one strictly positive weight.
size_t SampleDiscrete(Rng& rng, const std::vector<double>& weights);

}  // namespace hamlet

#endif  // HAMLET_COMMON_RNG_H_
