#include "hamlet/common/stringx.h"

#include <cctype>
#include <cstdio>

namespace hamlet {

std::string JoinStrings(const std::vector<std::string>& parts,
                        const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> SplitString(const std::string& s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string TrimString(const std::string& s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string PadRight(const std::string& s, size_t width) {
  if (s.size() >= width) return s.substr(0, width);
  return s + std::string(width - s.size(), ' ');
}

std::string PadLeft(const std::string& s, size_t width) {
  if (s.size() >= width) return s.substr(0, width);
  return std::string(width - s.size(), ' ') + s;
}

Result<uint64_t> ParseUnsigned(const std::string& s) {
  if (s.empty()) {
    return Status::InvalidArgument("expected an unsigned integer, got \"\"");
  }
  uint64_t value = 0;
  for (char c : s) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument(
          "expected an unsigned integer, got \"" + s + "\"");
    }
    const uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) {
      return Status::OutOfRange("\"" + s + "\" overflows 64 bits");
    }
    value = value * 10 + digit;
  }
  return value;
}

}  // namespace hamlet
