#include "hamlet/common/fault.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>

#include "hamlet/common/logging.h"
#include "hamlet/common/mutex.h"
#include "hamlet/common/stringx.h"
#include "hamlet/common/thread_annotations.h"

namespace hamlet {
namespace fault {

namespace {

/// One parsed site clause plus its runtime counters. Exactly one of
/// {always, nth>0, p>0} is active per rule.
struct SiteRule {
  bool always = false;
  uint64_t nth = 0;
  double p = 0.0;
  uint64_t calls = 0;
  uint64_t fires = 0;
};

struct FaultState {
  Mutex mu;
  uint64_t seed HAMLET_GUARDED_BY(mu) = 1;
  std::map<std::string, SiteRule> rules HAMLET_GUARDED_BY(mu);
  /// Calls observed at sites with no rule installed, so CallCount still
  /// reports probe traffic during sweeps.
  std::map<std::string, uint64_t> passive_calls HAMLET_GUARDED_BY(mu);
};

FaultState& State() {
  static FaultState* state = new FaultState();  // leaked: process lifetime
  return *state;
}

/// Fast-path gate: flipped only under State().mu.
std::atomic<bool> g_enabled{false};

std::once_flag g_env_once;

/// SplitMix64: seeds the per-call fire decision for p= triggers.
uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

uint64_t Fnv1a(const std::string& s) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

/// Uniform double in [0, 1) from (seed, site, call index) — the whole
/// fire schedule is a pure function of the spec.
double FireDraw(uint64_t seed, const std::string& site, uint64_t call) {
  const uint64_t bits = SplitMix64(seed ^ Fnv1a(site) ^ (call * 0x9E37ull));
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

/// Parses one "site:trigger" or "seed=N" clause into `state`.
Status ParseClause(const std::string& clause, FaultState& state)
    HAMLET_REQUIRES(state.mu) {
  if (clause.rfind("seed=", 0) == 0) {
    const std::string value = clause.substr(5);
    char* end = nullptr;
    const unsigned long long seed = std::strtoull(value.c_str(), &end, 10);
    if (value.empty() || end == value.c_str() || *end != '\0') {
      return Status::InvalidArgument("fault spec: bad seed \"" + value +
                                     "\"");
    }
    state.seed = seed;
    return Status::OK();
  }
  const size_t colon = clause.find(':');
  if (colon == std::string::npos) {
    return Status::InvalidArgument(
        "fault spec: clause \"" + clause +
        "\" is neither seed=N nor site:trigger");
  }
  const std::string site = clause.substr(0, colon);
  const std::string trigger = clause.substr(colon + 1);

  bool known = false;
  for (const std::string& s : KnownSites()) known = known || s == site;
  if (!known) {
    std::string roster;
    for (const std::string& s : KnownSites()) {
      if (!roster.empty()) roster += ", ";
      roster += s;
    }
    return Status::InvalidArgument("fault spec: unknown site \"" + site +
                                   "\" (known sites: " + roster + ")");
  }

  SiteRule rule;
  if (trigger == "always") {
    rule.always = true;
  } else if (trigger.rfind("nth=", 0) == 0) {
    const std::string value = trigger.substr(4);
    char* end = nullptr;
    const unsigned long long n = std::strtoull(value.c_str(), &end, 10);
    if (value.empty() || end == value.c_str() || *end != '\0' || n == 0) {
      return Status::InvalidArgument("fault spec: bad nth trigger \"" +
                                     trigger + "\" for site " + site);
    }
    rule.nth = n;
  } else if (trigger.rfind("p=", 0) == 0) {
    const std::string value = trigger.substr(2);
    char* end = nullptr;
    const double p = std::strtod(value.c_str(), &end);
    if (value.empty() || end == value.c_str() || *end != '\0' || p < 0.0 ||
        p > 1.0) {
      return Status::InvalidArgument("fault spec: bad probability \"" +
                                     trigger + "\" for site " + site +
                                     " (want p in [0,1])");
    }
    rule.p = p;
  } else {
    return Status::InvalidArgument("fault spec: unknown trigger \"" +
                                   trigger + "\" for site " + site +
                                   " (want always, nth=N or p=F)");
  }
  state.rules[site] = rule;
  return Status::OK();
}

/// Parses and installs under the caller-held lock.
Status InstallLocked(const std::string& spec, FaultState& state)
    HAMLET_REQUIRES(state.mu) {
  state.seed = 1;
  state.rules.clear();
  state.passive_calls.clear();
  g_enabled.store(false, std::memory_order_relaxed);
  if (spec.empty()) return Status::OK();
  for (const std::string& raw : SplitString(spec, ';')) {
    const std::string clause = TrimString(raw);
    if (clause.empty()) continue;
    const Status st = ParseClause(clause, state);
    if (!st.ok()) {
      state.rules.clear();
      return st;
    }
  }
  g_enabled.store(!state.rules.empty(), std::memory_order_relaxed);
  return Status::OK();
}

Status LoadEnvLocked(FaultState& state) HAMLET_REQUIRES(state.mu) {
  const char* env = std::getenv("HAMLET_FAULT_SPEC");
  const std::string spec = env == nullptr ? "" : env;
  const Status st = InstallLocked(spec, state);
  if (!st.ok() && FirstOccurrence(std::string("fault_spec:") + spec)) {
    std::fprintf(stderr,
                 "hamlet: ignoring HAMLET_FAULT_SPEC=\"%s\": %s\n",
                 spec.c_str(), st.ToString().c_str());
  }
  return st;
}

void EnsureEnvLoaded() {
  std::call_once(g_env_once, [] {
    FaultState& state = State();
    MutexLock lock(state.mu);
    (void)LoadEnvLocked(state);
  });
}

}  // namespace

bool Enabled() {
  EnsureEnvLoaded();
  return g_enabled.load(std::memory_order_relaxed);
}

bool ShouldFail(const char* site) {
  if (!Enabled()) return false;
  FaultState& state = State();
  MutexLock lock(state.mu);
  auto it = state.rules.find(site);
  if (it == state.rules.end()) {
    ++state.passive_calls[site];
    return false;
  }
  SiteRule& rule = it->second;
  const uint64_t call = ++rule.calls;
  bool fire = false;
  if (rule.always) {
    fire = true;
  } else if (rule.nth > 0) {
    fire = call == rule.nth;
  } else if (rule.p > 0.0) {
    fire = FireDraw(state.seed, it->first, call) < rule.p;
  }
  if (fire) ++rule.fires;
  return fire;
}

Status Inject(const char* site, const std::string& detail) {
  if (!ShouldFail(site)) return Status::OK();
  std::string msg = std::string("injected fault at ") + site;
  if (!detail.empty()) msg += ": " + detail;
  return Status::Unavailable(std::move(msg));
}

Status InstallSpec(const std::string& spec) {
  EnsureEnvLoaded();  // consume the env exactly once, before overriding
  FaultState& state = State();
  MutexLock lock(state.mu);
  return InstallLocked(spec, state);
}

Status LoadSpecFromEnv() {
  EnsureEnvLoaded();
  FaultState& state = State();
  MutexLock lock(state.mu);
  return LoadEnvLocked(state);
}

void Clear() {
  EnsureEnvLoaded();
  FaultState& state = State();
  MutexLock lock(state.mu);
  (void)InstallLocked("", state);
}

const std::vector<std::string>& KnownSites() {
  static const std::vector<std::string>* sites = new std::vector<std::string>{
      kSiteSaveOpen,  kSiteSaveWrite, kSiteSaveFsync,
      kSiteSaveRename, kSiteLoadOpen, kSiteLoadRead,
  };
  return *sites;
}

uint64_t CallCount(const std::string& site) {
  FaultState& state = State();
  MutexLock lock(state.mu);
  auto it = state.rules.find(site);
  if (it != state.rules.end()) return it->second.calls;
  auto passive = state.passive_calls.find(site);
  return passive == state.passive_calls.end() ? 0 : passive->second;
}

uint64_t FireCount(const std::string& site) {
  FaultState& state = State();
  MutexLock lock(state.mu);
  auto it = state.rules.find(site);
  return it == state.rules.end() ? 0 : it->second.fires;
}

std::streamsize FaultInjectingStreambuf::xsputn(const char* s,
                                               std::streamsize n) {
  if (write_site_ != nullptr && ShouldFail(write_site_)) return 0;
  return base_->sputn(s, n);
}

FaultInjectingStreambuf::int_type FaultInjectingStreambuf::overflow(
    int_type ch) {
  if (write_site_ != nullptr && ShouldFail(write_site_)) {
    return traits_type::eof();
  }
  if (traits_type::eq_int_type(ch, traits_type::eof())) {
    return base_->pubsync() == 0 ? traits_type::not_eof(ch)
                                 : traits_type::eof();
  }
  return base_->sputc(traits_type::to_char_type(ch));
}

int FaultInjectingStreambuf::sync() { return base_->pubsync(); }

std::streamsize FaultInjectingStreambuf::xsgetn(char* s, std::streamsize n) {
  if (read_site_ != nullptr && ShouldFail(read_site_)) return 0;
  return base_->sgetn(s, n);
}

FaultInjectingStreambuf::int_type FaultInjectingStreambuf::underflow() {
  if (read_site_ != nullptr && ShouldFail(read_site_)) {
    return traits_type::eof();
  }
  return base_->sgetc();
}

FaultInjectingStreambuf::int_type FaultInjectingStreambuf::uflow() {
  if (read_site_ != nullptr && ShouldFail(read_site_)) {
    return traits_type::eof();
  }
  return base_->sbumpc();
}

}  // namespace fault
}  // namespace hamlet
