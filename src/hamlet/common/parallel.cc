#include "hamlet/common/parallel.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "hamlet/common/logging.h"
#include "hamlet/common/mutex.h"
#include "hamlet/common/thread_annotations.h"

namespace hamlet {
namespace parallel {

namespace {

/// True while this thread is executing a ParallelFor body (worker or
/// participating caller); nested submissions then run serially inline.
thread_local bool tls_in_parallel_region = false;

}  // namespace

size_t HardwareThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

size_t ConfiguredThreads() {
  const char* env = std::getenv("HAMLET_THREADS");
  if (env == nullptr || *env == '\0') return HardwareThreads();
  char* end = nullptr;
  const long parsed = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || parsed < 1 || parsed > 1024) {
    // Warn once per distinct bad value; ConfiguredThreads is called on
    // every pool (re)start and must not spam bench output.
    if (FirstOccurrence(std::string("threads:") + env)) {
      std::fprintf(stderr,
                   "hamlet: invalid HAMLET_THREADS=\"%s\" (want an integer "
                   "in [1, 1024]); using hardware concurrency (%zu)\n",
                   env, HardwareThreads());
    }
    return HardwareThreads();
  }
  return static_cast<size_t>(parsed);
}

struct ThreadPool::Impl {
  /// One index-range job. Each submission allocates a fresh Job so a
  /// late-waking worker that picks up an already-drained job holds that
  /// job's own exhausted cursor: it can never claim indices from (or
  /// reset the progress of) a newer submission, and it only dereferences
  /// `body` for indices it actually claimed — which a drained cursor
  /// never hands out — so the caller-stack body outlives every use.
  struct Job {
    size_t n = 0;
    size_t chunk = 1;
    const std::function<void(size_t)>* body = nullptr;
    std::atomic<size_t> next{0};
  };

  explicit Impl(size_t num_threads) : num_threads(num_threads) {}

  ~Impl() {
    // Lock discipline: swap the worker list out under `mu`, join
    // outside it — joining under the mutex would deadlock against
    // workers re-acquiring it to exit their wait.
    std::vector<std::thread> to_join;
    {
      MutexLock lock(mu);
      stop = true;
      to_join.swap(workers);
    }
    work_cv.NotifyAll();
    for (std::thread& t : to_join) t.join();
  }

  /// Spawns the T-1 workers on the first submission.
  void StartWorkersLocked() HAMLET_REQUIRES(mu) {
    started = true;
    workers.reserve(num_threads - 1);
    for (size_t w = 0; w + 1 < num_threads; ++w) {
      workers.emplace_back([this] { WorkerLoop(); });
    }
  }

  void WorkerLoop() {
    tls_in_parallel_region = true;
    uint64_t seen = 0;
    mu.Lock();
    for (;;) {
      // Explicit wait loop (not a predicate lambda): the condition
      // reads guarded members, which the analysis can only verify
      // inside this annotated function body.
      while (!stop && generation == seen) work_cv.Wait(mu);
      if (stop) break;
      seen = generation;
      std::shared_ptr<Job> claimed = job;
      ++active;
      mu.Unlock();
      RunChunks(*claimed);
      mu.Lock();
      if (--active == 0) done_cv.NotifyOne();
    }
    mu.Unlock();
  }

  /// Claims chunks off the job's cursor until its range is exhausted.
  void RunChunks(Job& j) {
    for (;;) {
      const size_t begin = j.next.fetch_add(j.chunk, std::memory_order_relaxed);
      if (begin >= j.n) return;
      const size_t end = std::min(j.n, begin + j.chunk);
      for (size_t i = begin; i < end; ++i) {
        try {
          (*j.body)(i);
        } catch (...) {
          MutexLock lock(error_mu);
          if (!error) error = std::current_exception();
        }
      }
    }
  }

  const size_t num_threads;

  Mutex submit_mu;  // serializes concurrent external submissions

  Mutex mu;
  CondVar work_cv;
  CondVar done_cv;
  std::vector<std::thread> workers HAMLET_GUARDED_BY(mu);
  bool stop HAMLET_GUARDED_BY(mu) = false;
  bool started HAMLET_GUARDED_BY(mu) = false;
  uint64_t generation HAMLET_GUARDED_BY(mu) = 0;
  /// Workers currently inside RunChunks.
  size_t active HAMLET_GUARDED_BY(mu) = 0;
  /// Current submission.
  std::shared_ptr<Job> job HAMLET_GUARDED_BY(mu);

  Mutex error_mu;
  std::exception_ptr error HAMLET_GUARDED_BY(error_mu);
};

ThreadPool::ThreadPool(size_t num_threads)
    : num_threads_(std::max<size_t>(1, num_threads)),
      impl_(new Impl(num_threads_)) {}

ThreadPool::~ThreadPool() { delete impl_; }

void ThreadPool::For(size_t n, const std::function<void(size_t)>& body) {
  if (n == 0) return;
  if (num_threads_ == 1 || n == 1 || tls_in_parallel_region) {
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }

  MutexLock submit(impl_->submit_mu);
  auto job = std::make_shared<Impl::Job>();
  job->n = n;
  // Chunks several times smaller than a fair share keep the tail
  // balanced when per-index costs vary (grid points differ wildly).
  job->chunk = std::max<size_t>(1, n / (num_threads_ * 8));
  job->body = &body;
  {
    MutexLock lock(impl_->mu);
    if (!impl_->started) impl_->StartWorkersLocked();
    impl_->job = job;
    ++impl_->generation;
  }
  impl_->work_cv.NotifyAll();

  tls_in_parallel_region = true;
  impl_->RunChunks(*job);
  tls_in_parallel_region = false;

  std::exception_ptr error;
  {
    // The cursor is exhausted once our RunChunks returns; waiting for
    // `active == 0` under `mu` both drains in-flight workers and
    // publishes their body side effects to this thread.
    MutexLock lock(impl_->mu);
    while (impl_->active != 0) impl_->done_cv.Wait(impl_->mu);
  }
  {
    MutexLock lock(impl_->error_mu);
    std::swap(error, impl_->error);
  }
  if (error) std::rethrow_exception(error);
}

Status ThreadPool::ForStatus(size_t n,
                             const std::function<Status(size_t)>& body) {
  if (num_threads_ == 1 || n <= 1 || tls_in_parallel_region) {
    // Exact serial protocol: stop at the first error, which is also the
    // lowest-index error, so the returned Status matches the parallel path.
    for (size_t i = 0; i < n; ++i) {
      Status st = body(i);
      if (!st.ok()) return st;
    }
    return Status::OK();
  }

  Mutex first_mu;
  size_t first_index = n;
  Status first_status;
  For(n, [&](size_t i) {
    Status st = body(i);
    if (!st.ok()) {
      MutexLock lock(first_mu);
      if (i < first_index) {
        first_index = i;
        first_status = std::move(st);
      }
    }
  });
  return first_index == n ? Status::OK() : first_status;
}

namespace {

Mutex g_default_pool_mu;
std::unique_ptr<ThreadPool> g_default_pool
    HAMLET_GUARDED_BY(g_default_pool_mu);

}  // namespace

ThreadPool& DefaultPool() {
  MutexLock lock(g_default_pool_mu);
  if (g_default_pool == nullptr) {
    g_default_pool = std::make_unique<ThreadPool>(ConfiguredThreads());
  }
  return *g_default_pool;
}

void ParallelFor(size_t n, const std::function<void(size_t)>& body) {
  DefaultPool().For(n, body);
}

Status ParallelForStatus(size_t n,
                         const std::function<Status(size_t)>& body) {
  return DefaultPool().ForStatus(n, body);
}

void ResetDefaultPoolForTesting() {
  MutexLock lock(g_default_pool_mu);
  g_default_pool.reset();
}

}  // namespace parallel
}  // namespace hamlet
