#include "hamlet/common/crc32.h"

#include <array>

namespace hamlet {

namespace {

/// Byte-at-a-time lookup table for the reflected IEEE polynomial, built
/// once at static-init time (256 * 8 shifts; negligible).
std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> table = MakeTable();
  return table;
}

}  // namespace

uint32_t Crc32Feed(uint32_t state, const void* data, size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  const auto& table = Table();
  for (size_t i = 0; i < n; ++i) {
    state = table[(state ^ p[i]) & 0xffu] ^ (state >> 8);
  }
  return state;
}

}  // namespace hamlet
