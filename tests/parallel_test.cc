// Tests for hamlet/common/parallel: index coverage, error propagation,
// HAMLET_THREADS sizing, and the determinism contract of the parallelised
// GridSearch / MonteCarloBiasVariance layers (bit-identical output at any
// thread count).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "hamlet/common/parallel.h"
#include "hamlet/common/rng.h"
#include "hamlet/data/dataset.h"
#include "hamlet/data/split.h"
#include "hamlet/data/view.h"
#include "hamlet/ml/bias_variance.h"
#include "hamlet/ml/grid_search.h"
#include "hamlet/ml/metrics.h"
#include "hamlet/ml/tree/decision_tree.h"
#include "parity_util.h"

namespace hamlet {
namespace parallel {
namespace {

// The HAMLET_THREADS-pinning RAII helper is shared with the CodeMatrix
// parity harness.
using hamlet::test::ScopedThreads;

// ------------------------------------------------------------ primitives --

TEST(ParallelForTest, CoversAllIndicesExactlyOnce) {
  constexpr size_t kN = 1000;
  for (size_t threads : {1u, 2u, 3u, 8u}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.num_threads(), threads);
    std::unique_ptr<std::atomic<int>[]> hits(new std::atomic<int>[kN]);
    for (size_t i = 0; i < kN; ++i) hits[i].store(0);
    pool.For(kN, [&](size_t i) { hits[i].fetch_add(1); });
    for (size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " at " << threads
                                   << " threads";
    }
  }
}

TEST(ParallelForTest, ZeroIterationsIsANoOp) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.For(0, [&](size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
  EXPECT_TRUE(pool.ForStatus(0, [&](size_t) { return Status::OK(); }).ok());
}

TEST(ParallelForTest, ReusableAcrossJobs) {
  ThreadPool pool(4);
  for (int round = 0; round < 20; ++round) {
    std::atomic<size_t> sum{0};
    pool.For(100, [&](size_t i) { sum.fetch_add(i); });
    ASSERT_EQ(sum.load(), 4950u);
  }
}

TEST(ParallelForTest, NestedForRunsInline) {
  ThreadPool pool(4);
  std::atomic<int> inner_calls{0};
  pool.For(8, [&](size_t) {
    pool.For(16, [&](size_t) { inner_calls.fetch_add(1); });
  });
  EXPECT_EQ(inner_calls.load(), 8 * 16);
}

TEST(ParallelForTest, ExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.For(100,
                        [&](size_t i) {
                          if (i == 5) throw std::runtime_error("boom");
                        }),
               std::runtime_error);
  // The pool survives a throwing job.
  std::atomic<int> calls{0};
  pool.For(10, [&](size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 10);
}

TEST(ParallelForStatusTest, PropagatesLowestIndexError) {
  for (size_t threads : {1u, 4u}) {
    ThreadPool pool(threads);
    Status st = pool.ForStatus(200, [&](size_t i) -> Status {
      if (i == 50 || i == 3 || i == 199) {
        return Status::InvalidArgument("failed at " + std::to_string(i));
      }
      return Status::OK();
    });
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.message(), "failed at 3") << threads << " threads";
  }
}

TEST(ParallelForStatusTest, AllOkReturnsOk) {
  ThreadPool pool(4);
  EXPECT_TRUE(
      pool.ForStatus(64, [&](size_t) { return Status::OK(); }).ok());
}

TEST(ParallelMapTest, ResultsLandInIndexOrder) {
  ThreadPool pool(4);
  const std::vector<size_t> out =
      pool.Map<size_t>(500, [](size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 500u);
  for (size_t i = 0; i < out.size(); ++i) ASSERT_EQ(out[i], i * i);
}

// --------------------------------------------------------- env / sizing --

TEST(ConfiguredThreadsTest, ParsesHamletThreads) {
  {
    ScopedThreads env("3");
    EXPECT_EQ(ConfiguredThreads(), 3u);
    EXPECT_EQ(DefaultPool().num_threads(), 3u);
  }
  {
    ScopedThreads env("1");
    EXPECT_EQ(ConfiguredThreads(), 1u);
  }
  {
    ScopedThreads env(nullptr);
    EXPECT_EQ(ConfiguredThreads(), HardwareThreads());
  }
}

TEST(ConfiguredThreadsTest, InvalidValuesFallBackToHardware) {
  for (const char* bad : {"abc", "0", "-2", "4x", "9999", ""}) {
    ScopedThreads env(bad);
    EXPECT_EQ(ConfiguredThreads(), HardwareThreads())
        << "value \"" << bad << "\"";
  }
}

// ---------------------------------------------- determinism across pools --

/// Builds a noisy two-feature dataset where feature 0 carries the label
/// signal with 15% flip noise — enough structure that different tree
/// configurations really score differently on validation.
Dataset MakeNoisySignal(size_t n, uint64_t seed) {
  Rng rng(seed);
  Dataset d({{"sig", 4, FeatureRole::kHome, -1},
             {"junk", 8, FeatureRole::kHome, -1}});
  for (size_t i = 0; i < n; ++i) {
    const uint32_t s = static_cast<uint32_t>(rng.UniformInt(4));
    uint8_t y = s >= 2 ? 1 : 0;
    if (rng.Bernoulli(0.15)) y = 1 - y;
    d.AppendRowUnchecked({s, static_cast<uint32_t>(rng.UniformInt(8))}, y);
  }
  return d;
}

ml::GridSearchResult RunTreeGridSearch(const Dataset& d) {
  TrainValTest split = SplitRows(d.num_rows(), 0.5, 0.25, 17);
  SplitViews views = MakeSplitViews(d, split, {0, 1});
  ml::ParamGrid grid;
  grid.Add("minsplit", {1, 5, 20, 80}).Add("cp", {0.0, 0.001, 0.01, 0.1});
  Result<ml::GridSearchResult> r = ml::GridSearch(
      [](const ml::ParamMap& p) {
        ml::DecisionTreeConfig cfg;
        cfg.minsplit = static_cast<size_t>(p.at("minsplit"));
        cfg.cp = p.at("cp");
        return std::make_unique<ml::DecisionTree>(cfg);
      },
      grid, views.train, views.val);
  EXPECT_TRUE(r.ok());
  return std::move(r).value();
}

TEST(DeterminismTest, GridSearchIsBitIdenticalAcrossThreadCounts) {
  const Dataset d = MakeNoisySignal(600, 42);
  ml::ParamMap params1, params4;
  double acc1 = 0.0, acc4 = 0.0;
  size_t tried1 = 0, tried4 = 0;
  std::vector<uint8_t> preds1, preds4;
  {
    ScopedThreads env("1");
    ml::GridSearchResult r = RunTreeGridSearch(d);
    params1 = r.best_params;
    acc1 = r.best_val_accuracy;
    tried1 = r.configurations_tried;
    preds1 = r.best_model->PredictAll(DataView(&d));
  }
  {
    ScopedThreads env("4");
    ml::GridSearchResult r = RunTreeGridSearch(d);
    params4 = r.best_params;
    acc4 = r.best_val_accuracy;
    tried4 = r.configurations_tried;
    preds4 = r.best_model->PredictAll(DataView(&d));
  }
  EXPECT_EQ(params1, params4);
  EXPECT_EQ(acc1, acc4);  // exact: same fits, same tie-break index
  EXPECT_EQ(tried1, tried4);
  EXPECT_EQ(preds1, preds4);
}

ml::BiasVariance RunMonteCarlo() {
  // Per-run predictions derive only from the run index (per-run Rng), as
  // the MonteCarloBiasVariance contract requires.
  const size_t kPoints = 97;
  std::vector<uint8_t> labels(kPoints);
  Rng label_rng(7);
  for (auto& y : labels) y = static_cast<uint8_t>(label_rng.UniformInt(2));
  Result<ml::BiasVariance> r = ml::MonteCarloBiasVariance(
      24,
      [&](size_t run) {
        Rng rng(1000 + 31 * run);
        std::vector<uint8_t> preds(kPoints);
        for (size_t i = 0; i < kPoints; ++i) {
          preds[i] = rng.Bernoulli(0.3) ? 1 - labels[i] : labels[i];
        }
        return preds;
      },
      labels, labels);
  EXPECT_TRUE(r.ok());
  return r.value_or({});
}

TEST(DeterminismTest, MonteCarloIsBitIdenticalAcrossThreadCounts) {
  ml::BiasVariance serial, parallel4;
  {
    ScopedThreads env("1");
    serial = RunMonteCarlo();
  }
  {
    ScopedThreads env("4");
    parallel4 = RunMonteCarlo();
  }
  EXPECT_EQ(serial.mean_error, parallel4.mean_error);
  EXPECT_EQ(serial.bias, parallel4.bias);
  EXPECT_EQ(serial.variance, parallel4.variance);
  EXPECT_EQ(serial.variance_unbiased, parallel4.variance_unbiased);
  EXPECT_EQ(serial.variance_biased, parallel4.variance_biased);
  EXPECT_EQ(serial.net_variance, parallel4.net_variance);
  EXPECT_EQ(serial.num_runs, parallel4.num_runs);
}

/// Deterministic stand-in classifier: label-parity of a row feature.
class ParityModel : public ml::Classifier {
 public:
  Status Fit(const DataView&) override { return Status::OK(); }
  uint8_t Predict(const DataView& view, size_t i) const override {
    return static_cast<uint8_t>(view.feature(i, 0) % 2);
  }
  std::string name() const override { return "parity"; }
};

TEST(DeterminismTest, AccuracyIsIdenticalAcrossThreadCounts) {
  // Large enough to cross Evaluate's chunked-scoring threshold.
  const Dataset d = MakeNoisySignal(3000, 99);
  const DataView view(&d);
  ParityModel model;
  double acc1 = 0.0, acc4 = 0.0;
  std::vector<uint8_t> preds1, preds4;
  {
    ScopedThreads env("1");
    acc1 = ml::Accuracy(model, view);
    preds1 = model.PredictAll(view);
  }
  {
    ScopedThreads env("4");
    acc4 = ml::Accuracy(model, view);
    preds4 = model.PredictAll(view);
  }
  EXPECT_EQ(acc1, acc4);
  EXPECT_EQ(preds1, preds4);
}

}  // namespace
}  // namespace parallel
}  // namespace hamlet
