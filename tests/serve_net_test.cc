// Socket front-end tests: LineReader framing, the NetServer lifecycle,
// and — the contract that matters — bit-identical parity between
// responses served over TCP and the stdin ServeStream path, including
// under concurrent connections multiplexed onto shared batches.

#include <gtest/gtest.h>

#include <unistd.h>

#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "hamlet/ml/majority.h"
#include "hamlet/ml/tree/decision_tree.h"
#include "hamlet/serve/net/net_server.h"
#include "hamlet/serve/net/socket.h"
#include "hamlet/serve/server.h"
#include "parity_util.h"

namespace hamlet {
namespace {

using serve::net::ConnectTcp;
using serve::net::LineReader;
using serve::net::NetServeConfig;
using serve::net::NetServer;
using serve::net::SendAll;
using serve::net::Socket;
using test::MakeParityDataset;
using test::ScopedThreads;

// ------------------------------------------------------------ framing --

/// A pipe whose write end feeds a LineReader on the read end —
/// deterministic chunk boundaries, no real network.
struct Pipe {
  Socket rd, wr;
  Pipe() {
    int fds[2] = {-1, -1};
    EXPECT_EQ(::pipe(fds), 0);
    rd = Socket(fds[0]);
    wr = Socket(fds[1]);
  }
};

/// write(2)-based feeder for the pipe tests (SendAll is send(2)-only:
/// MSG_NOSIGNAL does not apply to pipes).
bool WriteAll(int fd, const char* data, size_t len) {
  while (len > 0) {
    const ssize_t n = ::write(fd, data, len);
    if (n <= 0) return false;
    data += n;
    len -= static_cast<size_t>(n);
  }
  return true;
}

TEST(LineReaderTest, FramesLinesAcrossArbitraryChunkBoundaries) {
  Pipe p;
  LineReader reader(p.rd.fd());
  // One logical stream delivered in awkward chunks: a line split across
  // writes, CRLF framing, and back-to-back lines in one chunk.
  for (const char* chunk : {"1 ", "2\r\n3 4\n", "5", " 6\n"}) {
    ASSERT_TRUE(WriteAll(p.wr.fd(), chunk, strlen(chunk)));
  }
  p.wr.Close();

  std::string line;
  std::vector<std::string> lines;
  while (true) {
    const auto got = reader.ReadLine(line);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    if (!got.value()) break;
    lines.push_back(line);
  }
  EXPECT_EQ(lines, (std::vector<std::string>{"1 2", "3 4", "5 6"}));
}

TEST(LineReaderTest, YieldsFinalUnterminatedFragment) {
  Pipe p;
  LineReader reader(p.rd.fd());
  const char* data = "complete\npartial";
  ASSERT_TRUE(WriteAll(p.wr.fd(), data, strlen(data)));
  p.wr.Close();

  std::string line;
  ASSERT_TRUE(reader.ReadLine(line).value());
  EXPECT_EQ(line, "complete");
  // std::getline semantics: the trailing fragment is still a line.
  ASSERT_TRUE(reader.ReadLine(line).value());
  EXPECT_EQ(line, "partial");
  EXPECT_FALSE(reader.ReadLine(line).value());  // then clean EOF
  EXPECT_FALSE(reader.ReadLine(line).value());  // and EOF is sticky
}

TEST(LineReaderTest, EmptyAndBlankLinesSurvive) {
  Pipe p;
  LineReader reader(p.rd.fd());
  const char* data = "\n\r\n  \n";
  ASSERT_TRUE(WriteAll(p.wr.fd(), data, strlen(data)));
  p.wr.Close();

  std::string line;
  ASSERT_TRUE(reader.ReadLine(line).value());
  EXPECT_EQ(line, "");
  ASSERT_TRUE(reader.ReadLine(line).value());
  EXPECT_EQ(line, "");  // "\r\n" -> stripped to empty
  ASSERT_TRUE(reader.ReadLine(line).value());
  EXPECT_EQ(line, "  ");
  EXPECT_FALSE(reader.ReadLine(line).value());
}

TEST(LineReaderTest, OversizedLinePoisonsTheStream) {
  Pipe p;
  // Small cap so the test doesn't fight the pipe buffer size.
  LineReader reader(p.rd.fd(), /*max_line_bytes=*/64);
  const std::string big(100, 'x');
  ASSERT_TRUE(WriteAll(p.wr.fd(), big.data(), big.size()));
  p.wr.Close();

  std::string line;
  const auto got = reader.ReadLine(line);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------- NetServer --

/// Fits a model, starts a NetServer on an ephemeral port, and runs the
/// batch loop on a background thread. The destructor (or Stop) shuts
/// down and surfaces the run summary.
class ServerFixture {
 public:
  explicit ServerFixture(const ml::Classifier& model,
                         NetServeConfig config = {})
      : server_(model, config) {
    const Status started = server_.Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
    runner_ = std::thread([this] { summary_ = server_.Run(err_); });
  }

  ~ServerFixture() {
    // Teardown-only path: a test that cares about the summary calls
    // Stop() itself; here the Result is discarded on purpose.
    if (runner_.joinable()) (void)Stop();
  }

  Result<serve::StatsSummary> Stop() {
    server_.RequestShutdown();
    runner_.join();
    return summary_;
  }

  uint16_t port() const { return server_.port(); }
  std::string err_text() const { return err_.str(); }

 private:
  NetServer server_;
  std::thread runner_;
  std::ostringstream err_;
  Result<serve::StatsSummary> summary_ =
      Status::Internal("server never ran");
};

/// One complete client exchange: connect, stream `input`, half-close,
/// read every response byte until the server's FIN.
std::string RoundTrip(uint16_t port, const std::string& input) {
  Result<Socket> sock = ConnectTcp("127.0.0.1", port);
  EXPECT_TRUE(sock.ok()) << sock.status().ToString();
  if (!sock.ok()) return "";
  EXPECT_TRUE(SendAll(sock.value().fd(), input.data(), input.size()).ok());
  sock.value().ShutdownWrite();
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(sock.value().fd(), buf, sizeof(buf))) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  EXPECT_EQ(n, 0) << "connection error mid-read";
  return response;
}

/// Renders `view`'s rows as request lines in the serve wire format.
std::string RequestLines(const DataView& view) {
  std::ostringstream os;
  for (size_t i = 0; i < view.num_rows(); ++i) {
    for (size_t j = 0; j < view.num_features(); ++j) {
      if (j > 0) os << ' ';
      os << view.feature(i, j);
    }
    os << '\n';
  }
  return os.str();
}

TEST(NetServerTest, StartRejectsUnfittedModel) {
  ml::MajorityClassifier unfitted;
  NetServer server(unfitted, {});
  const Status st = server.Start();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
}

TEST(NetServerTest, IdleStartStopYieldsZeroSummary) {
  const Dataset data = MakeParityDataset(80, {5, 4}, 7);
  ml::MajorityClassifier model;
  ASSERT_TRUE(model.Fit(DataView(&data)).ok());

  ServerFixture fixture(model);
  ASSERT_GT(fixture.port(), 0);
  const auto summary = fixture.Stop();
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  EXPECT_EQ(summary.value().rows, 0u);
  EXPECT_EQ(summary.value().errors, 0u);
}

TEST(NetServerTest, ConcurrentClientsMatchTheStdinPathBitForBit) {
  // A real (non-constant) model over multiple batches, so any
  // cross-connection row mixup or reordering flips an output bit.
  const std::vector<uint32_t> domains = {6, 4, 7, 3};
  const Dataset data = MakeParityDataset(400, domains, 41);
  ml::DecisionTree model;
  ASSERT_TRUE(model.Fit(DataView(&data)).ok());

  ScopedThreads scoped("4");

  // Each client streams a DIFFERENT request sequence — identical
  // streams would mask a cross-connection mixup (swapped rows would
  // still produce the right bytes). Ground truth per client is the
  // pinned single-stream path.
  constexpr int kClients = 4;
  std::vector<std::string> requests(kClients);
  std::vector<std::string> expected(kClients);
  uint64_t total_rows = 0;
  for (int i = 0; i < kClients; ++i) {
    const Dataset reqs =
        MakeParityDataset(120 + 17 * i, domains, 100 + i);
    requests[i] = RequestLines(DataView(&reqs));
    total_rows += reqs.num_rows();
    std::istringstream in(requests[i]);
    std::ostringstream out, err;
    serve::ServeConfig config;
    config.batch_size = 32;
    const auto summary = serve::ServeStream(model, in, out, err, config);
    ASSERT_TRUE(summary.ok()) << summary.status().ToString();
    expected[i] = out.str();
    ASSERT_FALSE(expected[i].empty());
  }

  NetServeConfig config;
  config.batch_size = 32;  // interleaves the clients' rows per batch
  ServerFixture fixture(model, config);

  std::vector<std::string> responses(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      responses[i] = RoundTrip(fixture.port(), requests[i]);
    });
  }
  for (std::thread& t : clients) t.join();

  for (int i = 0; i < kClients; ++i) {
    EXPECT_EQ(responses[i], expected[i]) << "client " << i;
  }

  const auto summary = fixture.Stop();
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  EXPECT_EQ(summary.value().rows, total_rows);
  EXPECT_EQ(summary.value().errors, 0u);
}

TEST(NetServerTest, HealthzAnswersWhileAnotherConnectionIsServing) {
  const Dataset data = MakeParityDataset(80, {5, 4}, 7);
  ml::MajorityClassifier model;
  ASSERT_TRUE(model.Fit(DataView(&data)).ok());

  ServerFixture fixture(model);

  // Connection A stays open mid-stream (no EOF, rows possibly parked in
  // a partial batch); the probe must still answer immediately.
  Result<Socket> a = ConnectTcp("127.0.0.1", fixture.port());
  ASSERT_TRUE(a.ok());
  const std::string some = "1 2\n3 1\n";
  ASSERT_TRUE(SendAll(a.value().fd(), some.data(), some.size()).ok());

  const std::string health = RoundTrip(fixture.port(), "/healthz\n");
  EXPECT_EQ(health.rfind("OK model=", 0), 0u) << health;
  EXPECT_NE(health.find(" rows="), std::string::npos);
  EXPECT_NE(health.find(" errors="), std::string::npos);

  // Unknown commands are per-connection errors, not crashes.
  const std::string unknown = RoundTrip(fixture.port(), "/reboot\n");
  EXPECT_EQ(unknown.rfind("ERR 1: ", 0), 0u) << unknown;
  EXPECT_NE(unknown.find("unknown command"), std::string::npos);

  a.value().ShutdownWrite();
  const auto summary = fixture.Stop();
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
}

TEST(NetServerTest, BadLinesAreIsolatedPerConnection) {
  const Dataset data = MakeParityDataset(80, {5, 4}, 7);
  ml::MajorityClassifier model;
  ASSERT_TRUE(model.Fit(DataView(&data)).ok());

  ServerFixture fixture(model);

  // Garbage interleaved with good rows: one response per request line,
  // in order, and the connection survives (server-side skip semantics).
  const std::string mixed = RoundTrip(fixture.port(),
                                      "nope\n1 2\n9 2\n3 1\n");
  std::istringstream is(mixed);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(is, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 4u) << mixed;
  EXPECT_EQ(lines[0].rfind("ERR 1: ", 0), 0u);
  EXPECT_TRUE(lines[1] == "0" || lines[1] == "1");
  EXPECT_EQ(lines[2].rfind("ERR 3: ", 0), 0u);
  EXPECT_NE(lines[2].find("domain"), std::string::npos);
  EXPECT_TRUE(lines[3] == "0" || lines[3] == "1");

  // A clean connection at the same time sees no trace of the errors.
  const std::string clean = RoundTrip(fixture.port(), "1 2\n");
  EXPECT_TRUE(clean == "0\n" || clean == "1\n") << clean;

  const auto summary = fixture.Stop();
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary.value().errors, 2u);
}

TEST(NetServerTest, ErrorBudgetClosesOnlyTheOffendingConnection) {
  const Dataset data = MakeParityDataset(80, {5, 4}, 7);
  ml::MajorityClassifier model;
  ASSERT_TRUE(model.Fit(DataView(&data)).ok());

  NetServeConfig config;
  config.max_errors = 1;  // second rejected line trips the budget
  ServerFixture fixture(model, config);

  const std::string noisy = RoundTrip(fixture.port(),
                                      "bad\nworse\n1 2\n");
  std::istringstream is(noisy);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(is, line)) lines.push_back(line);
  // ERR for each reject, then the final budget notice — and no
  // response for the good line that followed the cutoff.
  ASSERT_EQ(lines.size(), 3u) << noisy;
  EXPECT_EQ(lines[0].rfind("ERR 1: ", 0), 0u);
  EXPECT_EQ(lines[1].rfind("ERR 2: ", 0), 0u);
  EXPECT_NE(lines[2].find("error budget exceeded"), std::string::npos);

  // Unrelated connections keep serving.
  const std::string clean = RoundTrip(fixture.port(), "1 2\n");
  EXPECT_TRUE(clean == "0\n" || clean == "1\n") << clean;

  const auto summary = fixture.Stop();
  ASSERT_TRUE(summary.ok());
}

TEST(NetServerTest, ShutdownClosesStillOpenConnectionsAfterServing) {
  const Dataset data = MakeParityDataset(80, {5, 4}, 7);
  ml::MajorityClassifier model;
  ASSERT_TRUE(model.Fit(DataView(&data)).ok());

  ServerFixture fixture(model);

  // The client never half-closes. Responses must still arrive promptly
  // (the loop flushes a partial batch as soon as the queue goes idle —
  // a quiet stream is not held hostage to batch_size)...
  Result<Socket> sock = ConnectTcp("127.0.0.1", fixture.port());
  ASSERT_TRUE(sock.ok());
  const std::string reqs = "1 2\n3 1\n0 3\n";
  ASSERT_TRUE(SendAll(sock.value().fd(), reqs.data(), reqs.size()).ok());
  std::string response;
  char buf[256];
  ssize_t n;
  while (response.size() < 6 &&
         (n = ::read(sock.value().fd(), buf, sizeof(buf))) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  std::istringstream is(response);
  std::string line;
  size_t preds = 0;
  while (std::getline(is, line)) {
    EXPECT_TRUE(line == "0" || line == "1") << line;
    ++preds;
  }
  EXPECT_EQ(preds, 3u) << response;

  // ...and graceful shutdown must then cut this still-open connection
  // (the drain wakes its reader and half-closes once responses are out)
  // rather than hang waiting for a client EOF that never comes.
  const auto summary = fixture.Stop();  // SIGTERM equivalent
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  EXPECT_EQ(summary.value().rows, 3u);
  EXPECT_EQ(::read(sock.value().fd(), buf, sizeof(buf)), 0)
      << "expected EOF after shutdown";
}

}  // namespace
}  // namespace hamlet
