// Tests for hamlet/data: Dataset, DataView, splits, one-hot map.

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "hamlet/data/dataset.h"
#include "hamlet/data/one_hot.h"
#include "hamlet/data/split.h"
#include "hamlet/data/view.h"

namespace hamlet {
namespace {

Dataset MakeDataset() {
  // home(2), fk(5), foreign(3)
  Dataset d({{"h", 2, FeatureRole::kHome, -1},
             {"fk_r", 5, FeatureRole::kForeignKey, 0},
             {"r.x", 3, FeatureRole::kForeign, 0}});
  EXPECT_TRUE(d.AppendRow({0, 4, 2}, 1).ok());
  EXPECT_TRUE(d.AppendRow({1, 0, 0}, 0).ok());
  EXPECT_TRUE(d.AppendRow({1, 2, 1}, 1).ok());
  EXPECT_TRUE(d.AppendRow({0, 3, 2}, 0).ok());
  return d;
}

// --------------------------------------------------------------- Dataset --

TEST(DatasetTest, BasicAccessors) {
  Dataset d = MakeDataset();
  EXPECT_EQ(d.num_rows(), 4u);
  EXPECT_EQ(d.num_features(), 3u);
  EXPECT_EQ(d.feature(0, 1), 4u);
  EXPECT_EQ(d.label(2), 1);
  EXPECT_EQ(d.IndexOf("r.x"), 2);
  EXPECT_EQ(d.IndexOf("nope"), -1);
  EXPECT_EQ(d.OneHotDimension(), 2u + 5u + 3u);
}

TEST(DatasetTest, AppendValidation) {
  Dataset d = MakeDataset();
  EXPECT_FALSE(d.AppendRow({0, 5, 0}, 1).ok());  // fk out of domain
  EXPECT_FALSE(d.AppendRow({0, 0}, 1).ok());     // arity
  EXPECT_FALSE(d.AppendRow({0, 0, 0}, 2).ok());  // label
  EXPECT_EQ(d.num_rows(), 4u);
}

TEST(DatasetTest, RoleNames) {
  EXPECT_STREQ(FeatureRoleName(FeatureRole::kHome), "home");
  EXPECT_STREQ(FeatureRoleName(FeatureRole::kForeignKey), "foreign_key");
  EXPECT_STREQ(FeatureRoleName(FeatureRole::kForeign), "foreign");
}

TEST(DatasetTest, ReplaceColumnChangesDomain) {
  Dataset d = MakeDataset();
  ASSERT_TRUE(d.ReplaceColumn(1, {1, 0, 1, 0}, 2).ok());
  EXPECT_EQ(d.feature_spec(1).domain_size, 2u);
  EXPECT_EQ(d.feature(0, 1), 1u);
}

TEST(DatasetTest, ReplaceColumnValidates) {
  Dataset d = MakeDataset();
  EXPECT_FALSE(d.ReplaceColumn(9, {0, 0, 0, 0}, 2).ok());   // no column
  EXPECT_FALSE(d.ReplaceColumn(1, {0, 0}, 2).ok());          // length
  EXPECT_FALSE(d.ReplaceColumn(1, {2, 0, 0, 0}, 2).ok());    // code range
}

// -------------------------------------------------------------- DataView --

TEST(DataViewTest, FullViewSeesEverything) {
  Dataset d = MakeDataset();
  DataView v(&d);
  EXPECT_EQ(v.num_rows(), 4u);
  EXPECT_EQ(v.num_features(), 3u);
  EXPECT_EQ(v.feature(3, 2), 2u);
  EXPECT_EQ(v.label(3), 0);
  EXPECT_DOUBLE_EQ(v.PositiveRate(), 0.5);
}

TEST(DataViewTest, RowAndFeatureSubsets) {
  Dataset d = MakeDataset();
  DataView v(&d, {2, 0}, {1, 2});
  EXPECT_EQ(v.num_rows(), 2u);
  EXPECT_EQ(v.num_features(), 2u);
  // View row 0 = dataset row 2: fk=2, r.x=1.
  EXPECT_EQ(v.feature(0, 0), 2u);
  EXPECT_EQ(v.feature(0, 1), 1u);
  EXPECT_EQ(v.label(0), 1);
  EXPECT_EQ(v.row_id(1), 0u);
  EXPECT_EQ(v.feature_id(0), 1u);
  EXPECT_EQ(v.domain_size(0), 5u);
}

TEST(DataViewTest, SelectRowsComposes) {
  Dataset d = MakeDataset();
  DataView v(&d, {3, 2, 1}, {0});
  DataView w = v.SelectRows({2, 0});  // view rows 2,0 -> dataset rows 1,3
  EXPECT_EQ(w.num_rows(), 2u);
  EXPECT_EQ(w.row_id(0), 1u);
  EXPECT_EQ(w.row_id(1), 3u);
}

TEST(DataViewTest, WithFeaturesKeepsRows) {
  Dataset d = MakeDataset();
  DataView v(&d, {1, 2}, {0, 1, 2});
  DataView w = v.WithFeatures({2});
  EXPECT_EQ(w.num_rows(), 2u);
  EXPECT_EQ(w.num_features(), 1u);
  EXPECT_EQ(w.feature(0, 0), 0u);  // dataset row 1, column 2
}

TEST(DataViewTest, RowCodesMaterialises) {
  Dataset d = MakeDataset();
  DataView v(&d, {0}, {2, 0});
  EXPECT_EQ(v.RowCodes(0), (std::vector<uint32_t>{2, 0}));
}

TEST(DataViewTest, RowCodesIntoReusesBuffer) {
  Dataset d = MakeDataset();
  DataView v(&d, {0, 2}, {2, 0});
  std::vector<uint32_t> buffer(v.num_features(), 999);
  v.RowCodesInto(0, buffer.data());
  EXPECT_EQ(buffer, (std::vector<uint32_t>{2, 0}));
  v.RowCodesInto(1, buffer.data());  // same buffer, next row
  EXPECT_EQ(buffer, (std::vector<uint32_t>{1, 1}));
  EXPECT_EQ(buffer, v.RowCodes(1));
}

TEST(DataViewTest, SelectRowsOfSelectRowsRemapsThroughBothLayers) {
  Dataset d = MakeDataset();
  // Layer 1: view rows map to dataset rows {3, 2, 1, 0} (reversed).
  DataView v(&d, {3, 2, 1, 0}, {0, 1, 2});
  // Layer 2: pick view rows {0, 2} -> dataset rows {3, 1}.
  DataView w = v.SelectRows({0, 2});
  // Layer 3: pick w rows {1, 0} -> dataset rows {1, 3}.
  DataView x = w.SelectRows({1, 0});
  ASSERT_EQ(x.num_rows(), 2u);
  EXPECT_EQ(x.row_id(0), 1u);
  EXPECT_EQ(x.row_id(1), 3u);
  // Feature ids survive row selection untouched.
  EXPECT_EQ(x.feature_id(1), 1u);
  // And the codes follow the dataset rows, not the view indices.
  for (size_t j = 0; j < x.num_features(); ++j) {
    EXPECT_EQ(x.feature(0, j), d.feature(1, j));
    EXPECT_EQ(x.feature(1, j), d.feature(3, j));
  }
  EXPECT_EQ(x.label(0), d.label(1));
  EXPECT_EQ(x.label(1), d.label(3));
}

TEST(DataViewTest, WithFeaturesRoundTripRestoresOriginalColumns) {
  Dataset d = MakeDataset();
  DataView v(&d, {2, 0}, {0, 1, 2});
  // Narrow to a permuted subset, then restore the original selection:
  // WithFeatures takes underlying dataset column ids, so the round trip
  // must reproduce the original view exactly.
  DataView narrowed = v.WithFeatures({2, 0});
  ASSERT_EQ(narrowed.num_features(), 2u);
  EXPECT_EQ(narrowed.feature_id(0), 2u);
  EXPECT_EQ(narrowed.feature(0, 0), d.feature(2, 2));
  EXPECT_EQ(narrowed.domain_size(0), 3u);

  DataView restored = narrowed.WithFeatures({0, 1, 2});
  ASSERT_EQ(restored.num_features(), v.num_features());
  ASSERT_EQ(restored.num_rows(), v.num_rows());
  for (size_t i = 0; i < v.num_rows(); ++i) {
    EXPECT_EQ(restored.row_id(i), v.row_id(i));
    for (size_t j = 0; j < v.num_features(); ++j) {
      EXPECT_EQ(restored.feature(i, j), v.feature(i, j));
    }
  }
}

TEST(DataViewTest, SelectRowsComposesWithWithFeatures) {
  Dataset d = MakeDataset();
  // Interleave the two composition directions; the row_id/feature_id
  // remapping is what CodeMatrix materialisation depends on.
  DataView v = DataView(&d).SelectRows({1, 3, 0}).WithFeatures({2, 1});
  DataView w = v.SelectRows({2, 1});
  ASSERT_EQ(w.num_rows(), 2u);
  ASSERT_EQ(w.num_features(), 2u);
  EXPECT_EQ(w.row_id(0), 0u);
  EXPECT_EQ(w.row_id(1), 3u);
  EXPECT_EQ(w.feature_id(0), 2u);
  EXPECT_EQ(w.feature_id(1), 1u);
  EXPECT_EQ(w.feature(0, 0), d.feature(0, 2));
  EXPECT_EQ(w.feature(0, 1), d.feature(0, 1));
  EXPECT_EQ(w.feature(1, 0), d.feature(3, 2));
  EXPECT_EQ(w.feature(1, 1), d.feature(3, 1));
}

TEST(DataViewTest, OneHotDimensionOfSubset) {
  Dataset d = MakeDataset();
  DataView v(&d, {0, 1}, {0, 2});
  EXPECT_EQ(v.OneHotDimension(), 2u + 3u);
}

// ----------------------------------------------------------------- Split --

TEST(SplitTest, PartitionIsDisjointAndComplete) {
  TrainValTest s = SplitRows(100, 0.5, 0.25, 42);
  EXPECT_EQ(s.train.size(), 50u);
  EXPECT_EQ(s.val.size(), 25u);
  EXPECT_EQ(s.test.size(), 25u);
  std::set<uint32_t> all;
  for (auto part : {&s.train, &s.val, &s.test}) {
    for (uint32_t id : *part) {
      EXPECT_TRUE(all.insert(id).second) << "duplicate row id " << id;
      EXPECT_LT(id, 100u);
    }
  }
  EXPECT_EQ(all.size(), 100u);
}

TEST(SplitTest, DeterministicInSeed) {
  TrainValTest a = SplitRows(50, 0.5, 0.25, 7);
  TrainValTest b = SplitRows(50, 0.5, 0.25, 7);
  EXPECT_EQ(a.train, b.train);
  EXPECT_EQ(a.test, b.test);
  TrainValTest c = SplitRows(50, 0.5, 0.25, 8);
  EXPECT_NE(a.train, c.train);
}

TEST(SplitTest, PaperSplitIs502525) {
  TrainValTest s = SplitPaper(1000, 1);
  EXPECT_EQ(s.train.size(), 500u);
  EXPECT_EQ(s.val.size(), 250u);
  EXPECT_EQ(s.test.size(), 250u);
}

TEST(SplitTest, MakeSplitViewsBindsRowsAndFeatures) {
  Dataset d = MakeDataset();
  TrainValTest s;
  s.train = {0, 1};
  s.val = {2};
  s.test = {3};
  SplitViews views = MakeSplitViews(d, s, {0, 2});
  EXPECT_EQ(views.train.num_rows(), 2u);
  EXPECT_EQ(views.val.num_rows(), 1u);
  EXPECT_EQ(views.test.num_rows(), 1u);
  EXPECT_EQ(views.train.num_features(), 2u);
  EXPECT_EQ(views.test.feature(0, 1), 2u);
}

// ---------------------------------------------------------------- OneHot --

TEST(OneHotTest, OffsetsAreCumulative) {
  Dataset d = MakeDataset();
  DataView v(&d);
  OneHotMap map(v);
  EXPECT_EQ(map.dimension(), 10u);
  EXPECT_EQ(map.UnitIndex(0, 1), 1u);
  EXPECT_EQ(map.UnitIndex(1, 0), 2u);
  EXPECT_EQ(map.UnitIndex(2, 2), 9u);
}

TEST(OneHotTest, ActiveUnitsOnePerFeature) {
  Dataset d = MakeDataset();
  DataView v(&d);
  OneHotMap map(v);
  std::vector<uint32_t> active;
  map.ActiveUnits(v, 0, active);  // row 0: h=0, fk=4, r.x=2
  EXPECT_EQ(active, (std::vector<uint32_t>{0, 6, 9}));
}

TEST(OneHotTest, RespectsFeatureSubset) {
  Dataset d = MakeDataset();
  DataView v(&d, {0, 1, 2, 3}, {2});  // only the foreign feature
  OneHotMap map(v);
  EXPECT_EQ(map.dimension(), 3u);
  std::vector<uint32_t> active;
  map.ActiveUnits(v, 2, active);  // row 2: r.x = 1
  EXPECT_EQ(active, (std::vector<uint32_t>{1}));
}

TEST(OneHotTest, DistancePropertyMatchesMismatchCount) {
  // ||u(a)-u(b)||^2 = 2 * #mismatches — the identity the SVM kernels use.
  Dataset d = MakeDataset();
  DataView v(&d);
  OneHotMap map(v);
  std::vector<uint32_t> a, b;
  map.ActiveUnits(v, 0, a);
  map.ActiveUnits(v, 1, b);
  size_t mismatches = 0;
  for (size_t j = 0; j < v.num_features(); ++j) {
    mismatches += v.feature(0, j) != v.feature(1, j);
  }
  // One-hot squared distance: count units active in exactly one row.
  std::set<uint32_t> sa(a.begin(), a.end()), sb(b.begin(), b.end());
  size_t sym_diff = 0;
  for (uint32_t u : sa) sym_diff += sb.count(u) == 0;
  for (uint32_t u : sb) sym_diff += sa.count(u) == 0;
  EXPECT_EQ(sym_diff, 2 * mismatches);
}

}  // namespace
}  // namespace hamlet
