// Tests for hamlet/ml/tree: criteria, CART learner, printer.

#include <gtest/gtest.h>

#include <cmath>

#include "hamlet/common/rng.h"
#include "hamlet/data/dataset.h"
#include "hamlet/data/view.h"
#include "hamlet/ml/metrics.h"
#include "hamlet/ml/tree/criterion.h"
#include "hamlet/ml/tree/decision_tree.h"
#include "hamlet/ml/tree/tree_printer.h"

namespace hamlet {
namespace ml {
namespace {

// -------------------------------------------------------------- criterion --

TEST(CriterionTest, GiniBounds) {
  EXPECT_DOUBLE_EQ(GiniImpurity(0, 10), 0.0);
  EXPECT_DOUBLE_EQ(GiniImpurity(10, 10), 0.0);
  EXPECT_DOUBLE_EQ(GiniImpurity(5, 10), 0.5);  // 2 * 0.5 * 0.5
  EXPECT_DOUBLE_EQ(GiniImpurity(0, 0), 0.0);
}

TEST(CriterionTest, EntropyBounds) {
  EXPECT_DOUBLE_EQ(Entropy(0, 10), 0.0);
  EXPECT_DOUBLE_EQ(Entropy(10, 10), 0.0);
  EXPECT_NEAR(Entropy(5, 10), std::log(2.0), 1e-12);
  EXPECT_GT(Entropy(5, 10), Entropy(1, 10));
}

TEST(CriterionTest, PerfectSplitGainEqualsParentRisk) {
  // Parent: 10 pos, 10 neg. Perfect split -> gain = 20 * I(0.5).
  for (auto c : {SplitCriterion::kGini, SplitCriterion::kInfoGain}) {
    const double gain = SplitGain(c, 10, 10, 0, 10);
    EXPECT_NEAR(gain, 20.0 * NodeImpurity(c, 10, 20), 1e-12);
  }
}

TEST(CriterionTest, UselessSplitHasZeroGain) {
  // Both children have the same class mix as the parent.
  for (auto c : {SplitCriterion::kGini, SplitCriterion::kInfoGain,
                 SplitCriterion::kGainRatio}) {
    EXPECT_NEAR(SplitScore(c, 5, 10, 5, 10), 0.0, 1e-9);
  }
}

TEST(CriterionTest, DegenerateSplitScoresZero) {
  for (auto c : {SplitCriterion::kGini, SplitCriterion::kInfoGain,
                 SplitCriterion::kGainRatio}) {
    EXPECT_DOUBLE_EQ(SplitScore(c, 0, 0, 10, 20), 0.0);
  }
}

TEST(CriterionTest, GainRatioPenalisesLopsidedSplits) {
  // Same information gain structure, but gain ratio divides by the branch
  // entropy, so a 50/50 split scores relatively higher than a 1/99 one.
  const double balanced = SplitScore(SplitCriterion::kGainRatio, 50, 50, 0, 50);
  const double lopsided = SplitScore(SplitCriterion::kGainRatio, 1, 1, 49, 99);
  EXPECT_GT(balanced, lopsided);
}

TEST(CriterionTest, Names) {
  EXPECT_STREQ(SplitCriterionName(SplitCriterion::kGini), "gini");
  EXPECT_STREQ(SplitCriterionName(SplitCriterion::kInfoGain), "info_gain");
  EXPECT_STREQ(SplitCriterionName(SplitCriterion::kGainRatio), "gain_ratio");
}

// ------------------------------------------------------------------ tree --

/// y = x0 (a single perfectly predictive binary feature) + a noise feature.
Dataset MakeSimpleDataset(size_t n, uint64_t seed) {
  Dataset d({{"signal", 2, FeatureRole::kHome, -1},
             {"noise", 4, FeatureRole::kHome, -1}});
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    const uint32_t x = static_cast<uint32_t>(rng.UniformInt(2));
    d.AppendRowUnchecked({x, static_cast<uint32_t>(rng.UniformInt(4))},
                         static_cast<uint8_t>(x));
  }
  return d;
}

/// XOR of two binary features — requires depth >= 2 (not linearly
/// separable), the classic high-capacity sanity check.
Dataset MakeXorDataset(size_t n, uint64_t seed) {
  Dataset d({{"a", 2, FeatureRole::kHome, -1},
             {"b", 2, FeatureRole::kHome, -1}});
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    const uint32_t a = static_cast<uint32_t>(rng.UniformInt(2));
    const uint32_t b = static_cast<uint32_t>(rng.UniformInt(2));
    d.AppendRowUnchecked({a, b}, static_cast<uint8_t>(a ^ b));
  }
  return d;
}

TEST(DecisionTreeTest, FitsPerfectSignal) {
  Dataset data = MakeSimpleDataset(200, 1);
  DataView view(&data);
  DecisionTree tree({.criterion = SplitCriterion::kGini});
  ASSERT_TRUE(tree.Fit(view).ok());
  EXPECT_DOUBLE_EQ(Accuracy(tree, view), 1.0);
  EXPECT_LE(tree.depth(), 2u);
}

TEST(DecisionTreeTest, LearnsXorWithAllCriteria) {
  Dataset data = MakeXorDataset(400, 2);
  DataView view(&data);
  for (auto c : {SplitCriterion::kGini, SplitCriterion::kInfoGain,
                 SplitCriterion::kGainRatio}) {
    DecisionTree tree({.criterion = c, .minsplit = 10, .cp = 0.0});
    ASSERT_TRUE(tree.Fit(view).ok());
    EXPECT_DOUBLE_EQ(Accuracy(tree, view), 1.0)
        << SplitCriterionName(c);
  }
}

TEST(DecisionTreeTest, EmptyTrainingFails) {
  Dataset data = MakeSimpleDataset(10, 1);
  DataView view(&data, {}, {0, 1});
  DecisionTree tree;
  EXPECT_FALSE(tree.Fit(view).ok());
}

TEST(DecisionTreeTest, PureDataYieldsSingleLeaf) {
  Dataset d({{"f", 2, FeatureRole::kHome, -1}});
  for (int i = 0; i < 20; ++i) {
    d.AppendRowUnchecked({static_cast<uint32_t>(i % 2)}, 1);
  }
  DecisionTree tree;
  ASSERT_TRUE(tree.Fit(DataView(&d)).ok());
  EXPECT_EQ(tree.num_nodes(), 1u);
  EXPECT_EQ(tree.num_leaves(), 1u);
  EXPECT_EQ(tree.Predict(DataView(&d), 0), 1);
}

TEST(DecisionTreeTest, MinsplitStopsGrowth) {
  Dataset data = MakeXorDataset(100, 3);
  DataView view(&data);
  DecisionTree big({.minsplit = 1000, .cp = 0.0});
  ASSERT_TRUE(big.Fit(view).ok());
  EXPECT_EQ(big.num_nodes(), 1u);  // can never split
}

TEST(DecisionTreeTest, HighCpPrunesEverything) {
  // XOR's first split has ~zero marginal gain, so a high cp blocks it.
  Dataset data = MakeXorDataset(400, 4);
  DataView view(&data);
  DecisionTree pruned({.minsplit = 10, .cp = 0.5});
  ASSERT_TRUE(pruned.Fit(view).ok());
  EXPECT_EQ(pruned.num_nodes(), 1u);
  DecisionTree grown({.minsplit = 10, .cp = 0.0});
  ASSERT_TRUE(grown.Fit(view).ok());
  EXPECT_GT(grown.num_nodes(), 1u);
}

TEST(DecisionTreeTest, MaxDepthIsRespected) {
  Dataset data = MakeXorDataset(400, 5);
  DataView view(&data);
  DecisionTree tree({.minsplit = 2, .cp = 0.0, .max_depth = 1});
  ASSERT_TRUE(tree.Fit(view).ok());
  EXPECT_LE(tree.depth(), 1u);
}

TEST(DecisionTreeTest, DeterministicAcrossFits) {
  Dataset data = MakeXorDataset(300, 6);
  DataView view(&data);
  DecisionTree a({.cp = 0.0}), b({.cp = 0.0});
  ASSERT_TRUE(a.Fit(view).ok());
  ASSERT_TRUE(b.Fit(view).ok());
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  for (size_t i = 0; i < view.num_rows(); ++i) {
    EXPECT_EQ(a.Predict(view, i), b.Predict(view, i));
  }
}

TEST(DecisionTreeTest, LargeDomainCategoricalSplit) {
  // A 100-value categorical feature where even codes are positive: the
  // Breiman ordering must find a perfect subset split at depth 1.
  Dataset d({{"big", 100, FeatureRole::kForeignKey, 0}});
  Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    const uint32_t v = static_cast<uint32_t>(rng.UniformInt(100));
    d.AppendRowUnchecked({v}, static_cast<uint8_t>(v % 2));
  }
  DataView view(&d);
  DecisionTree tree({.minsplit = 10, .cp = 0.0});
  ASSERT_TRUE(tree.Fit(view).ok());
  EXPECT_DOUBLE_EQ(Accuracy(tree, view), 1.0);
  EXPECT_EQ(tree.depth(), 1u);  // one subset split suffices
}

TEST(DecisionTreeTest, UnseenCodeMajorityBranchFallback) {
  // Train without code 3 in the domain-4 feature; predict on it.
  Dataset train_data({{"f", 4, FeatureRole::kHome, -1},
                      {"g", 2, FeatureRole::kHome, -1}});
  Rng rng(8);
  for (int i = 0; i < 200; ++i) {
    const uint32_t v = static_cast<uint32_t>(rng.UniformInt(3));  // 0..2
    train_data.AppendRowUnchecked(
        {v, static_cast<uint32_t>(rng.UniformInt(2))},
        static_cast<uint8_t>(v == 2));
  }
  DataView train(&train_data);
  DecisionTree tree(
      {.cp = 0.0, .unseen_policy = UnseenPolicy::kMajorityBranch});
  ASSERT_TRUE(tree.Fit(train).ok());

  Dataset test_data({{"f", 4, FeatureRole::kHome, -1},
                     {"g", 2, FeatureRole::kHome, -1}});
  test_data.AppendRowUnchecked({3, 0}, 0);  // unseen code 3
  DataView test(&test_data);
  Result<uint8_t> pred = tree.TryPredict(test, 0);
  ASSERT_TRUE(pred.ok());  // majority-branch policy keeps prediction total
}

TEST(DecisionTreeTest, UnseenCodeErrorPolicyReturnsStatus) {
  Dataset train_data({{"f", 4, FeatureRole::kHome, -1}});
  for (int i = 0; i < 100; ++i) {
    train_data.AppendRowUnchecked({static_cast<uint32_t>(i % 3)},
                                  static_cast<uint8_t>(i % 3 == 0));
  }
  DataView train(&train_data);
  DecisionTree tree({.cp = 0.0, .unseen_policy = UnseenPolicy::kError});
  ASSERT_TRUE(tree.Fit(train).ok());
  Dataset test_data({{"f", 4, FeatureRole::kHome, -1}});
  test_data.AppendRowUnchecked({3}, 0);
  DataView test(&test_data);
  Result<uint8_t> pred = tree.TryPredict(test, 0);
  // Only fails if the tree actually tests the feature; with a single
  // predictive feature it must.
  ASSERT_GT(tree.num_nodes(), 1u);
  EXPECT_FALSE(pred.ok());
  EXPECT_EQ(pred.status().code(), StatusCode::kNotFound);
}

TEST(DecisionTreeTest, FeatureUseCountsTrackSplits) {
  Dataset data = MakeSimpleDataset(500, 9);
  DataView view(&data);
  DecisionTree tree({.cp = 0.0});
  ASSERT_TRUE(tree.Fit(view).ok());
  const std::vector<size_t> counts = tree.FeatureUseCounts();
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_GE(counts[0], 1u);  // the signal feature must be used
}

TEST(DecisionTreeTest, NameReflectsCriterion) {
  EXPECT_EQ(DecisionTree({.criterion = SplitCriterion::kGini}).name(),
            "dt-gini");
  EXPECT_EQ(DecisionTree({.criterion = SplitCriterion::kGainRatio}).name(),
            "dt-gain_ratio");
}

// --------------------------------------------------------------- printer --

TEST(TreePrinterTest, RendersStructure) {
  Dataset data = MakeSimpleDataset(100, 10);
  DataView view(&data);
  DecisionTree tree({.cp = 0.0});
  ASSERT_TRUE(tree.Fit(view).ok());
  const std::string out = PrintTree(tree, view);
  EXPECT_NE(out.find("DecisionTree[dt-gini]"), std::string::npos);
  EXPECT_NE(out.find("signal"), std::string::npos);
  EXPECT_NE(out.find("leaf"), std::string::npos);
}

TEST(TreePrinterTest, UnfittedTree) {
  DecisionTree tree;
  Dataset data = MakeSimpleDataset(10, 1);
  EXPECT_EQ(PrintTree(tree, DataView(&data)), "(unfitted tree)\n");
}

TEST(TreePrinterTest, FeatureUsageTable) {
  Dataset data = MakeSimpleDataset(100, 11);
  DataView view(&data);
  DecisionTree tree({.cp = 0.0});
  ASSERT_TRUE(tree.Fit(view).ok());
  const std::string out = PrintFeatureUsage(tree, view);
  EXPECT_NE(out.find("signal"), std::string::npos);
  EXPECT_NE(out.find("noise"), std::string::npos);
}

// ------------------------------------------- parameterised property sweep --

struct TreeParam {
  SplitCriterion criterion;
  size_t minsplit;
  double cp;
};

class TreePropertyTest : public ::testing::TestWithParam<TreeParam> {};

TEST_P(TreePropertyTest, TrainAccuracyAtLeastMajorityRate) {
  // Property: a fitted tree never does worse on its own training data than
  // predicting the majority class.
  const TreeParam param = GetParam();
  Dataset data = MakeXorDataset(300, 12);
  DataView view(&data);
  DecisionTree tree({.criterion = param.criterion,
                     .minsplit = param.minsplit,
                     .cp = param.cp});
  ASSERT_TRUE(tree.Fit(view).ok());
  const double pos_rate = view.PositiveRate();
  const double majority = std::max(pos_rate, 1.0 - pos_rate);
  EXPECT_GE(Accuracy(tree, view) + 1e-12, majority);
}

TEST_P(TreePropertyTest, LeavesPartitionTrainingRows) {
  const TreeParam param = GetParam();
  Dataset data = MakeXorDataset(300, 13);
  DataView view(&data);
  DecisionTree tree({.criterion = param.criterion,
                     .minsplit = param.minsplit,
                     .cp = param.cp});
  ASSERT_TRUE(tree.Fit(view).ok());
  // Sum of leaf counts == n; each internal node's count == children's sum.
  size_t leaf_total = 0;
  for (const auto& node : tree.nodes()) {
    if (node.feature < 0) {
      leaf_total += node.count;
    } else {
      const auto& l = tree.nodes()[static_cast<size_t>(node.left)];
      const auto& r = tree.nodes()[static_cast<size_t>(node.right)];
      EXPECT_EQ(node.count, l.count + r.count);
      EXPECT_EQ(node.pos_count, l.pos_count + r.pos_count);
    }
  }
  EXPECT_EQ(leaf_total, view.num_rows());
}

INSTANTIATE_TEST_SUITE_P(
    GridSweep, TreePropertyTest,
    ::testing::Values(
        TreeParam{SplitCriterion::kGini, 1, 0.0},
        TreeParam{SplitCriterion::kGini, 10, 0.001},
        TreeParam{SplitCriterion::kGini, 100, 0.01},
        TreeParam{SplitCriterion::kInfoGain, 1, 0.0},
        TreeParam{SplitCriterion::kInfoGain, 10, 0.01},
        TreeParam{SplitCriterion::kInfoGain, 100, 0.1},
        TreeParam{SplitCriterion::kGainRatio, 1, 0.0},
        TreeParam{SplitCriterion::kGainRatio, 10, 0.001},
        TreeParam{SplitCriterion::kGainRatio, 100, 0.0}));

}  // namespace
}  // namespace ml
}  // namespace hamlet
