// Tests for hamlet/ml/nb: Naive Bayes and backward feature selection.

#include <gtest/gtest.h>

#include <cmath>

#include "hamlet/common/rng.h"
#include "hamlet/data/dataset.h"
#include "hamlet/data/view.h"
#include "hamlet/ml/metrics.h"
#include "hamlet/ml/nb/backward_selection.h"
#include "hamlet/ml/nb/naive_bayes.h"

namespace hamlet {
namespace ml {
namespace {

Dataset MakeSignalNoise(size_t n, uint64_t seed) {
  // f0 determines the label; f1 is noise.
  Dataset d({{"sig", 2, FeatureRole::kHome, -1},
             {"noise", 4, FeatureRole::kHome, -1}});
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    const uint32_t s = static_cast<uint32_t>(rng.UniformInt(2));
    d.AppendRowUnchecked({s, static_cast<uint32_t>(rng.UniformInt(4))},
                         static_cast<uint8_t>(s));
  }
  return d;
}

TEST(NaiveBayesTest, LearnsSimpleSignal) {
  Dataset data = MakeSignalNoise(500, 1);
  DataView view(&data);
  NaiveBayes nb;
  ASSERT_TRUE(nb.Fit(view).ok());
  EXPECT_DOUBLE_EQ(Accuracy(nb, view), 1.0);
}

TEST(NaiveBayesTest, PriorDominatesWithUninformativeFeatures) {
  // 80% positive labels, feature independent of the label.
  Dataset d({{"f", 2, FeatureRole::kHome, -1}});
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    d.AppendRowUnchecked({static_cast<uint32_t>(rng.UniformInt(2))},
                         rng.Bernoulli(0.8) ? 1 : 0);
  }
  NaiveBayes nb;
  ASSERT_TRUE(nb.Fit(DataView(&d)).ok());
  // Predicts the majority class everywhere.
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(nb.Predict(DataView(&d), i), 1);
  }
}

TEST(NaiveBayesTest, LaplaceSmoothingHandlesUnseenCode) {
  // Domain has a code never seen in training; log-odds must stay finite.
  Dataset train({{"f", 3, FeatureRole::kHome, -1}});
  for (int i = 0; i < 100; ++i) {
    train.AppendRowUnchecked({static_cast<uint32_t>(i % 2)},
                             static_cast<uint8_t>(i % 2));
  }
  NaiveBayes nb;
  ASSERT_TRUE(nb.Fit(DataView(&train)).ok());
  Dataset test({{"f", 3, FeatureRole::kHome, -1}});
  test.AppendRowUnchecked({2}, 0);
  const double odds = nb.LogOdds(DataView(&test), 0);
  EXPECT_TRUE(std::isfinite(odds));
}

TEST(NaiveBayesTest, LogOddsSignMatchesPrediction) {
  Dataset data = MakeSignalNoise(200, 3);
  DataView view(&data);
  NaiveBayes nb;
  ASSERT_TRUE(nb.Fit(view).ok());
  for (size_t i = 0; i < view.num_rows(); ++i) {
    EXPECT_EQ(nb.Predict(view, i), nb.LogOdds(view, i) >= 0 ? 1 : 0);
  }
}

TEST(NaiveBayesTest, EmptyTrainingFails) {
  Dataset data = MakeSignalNoise(10, 4);
  DataView empty(&data, {}, {0, 1});
  NaiveBayes nb;
  EXPECT_FALSE(nb.Fit(empty).ok());
}

TEST(NaiveBayesTest, SingleClassTraining) {
  Dataset d({{"f", 2, FeatureRole::kHome, -1}});
  for (int i = 0; i < 10; ++i) d.AppendRowUnchecked({0}, 1);
  NaiveBayes nb;
  ASSERT_TRUE(nb.Fit(DataView(&d)).ok());
  EXPECT_EQ(nb.Predict(DataView(&d), 0), 1);
}

// ---------------------------------------------------- backward selection --

TEST(BackwardSelectionTest, DropsAdversarialFeature) {
  // f0 = signal; f1 = "trap": equals the label on train rows but is
  // anti-correlated on validation — backward selection should drop it.
  Dataset data({{"sig", 2, FeatureRole::kHome, -1},
                {"trap", 2, FeatureRole::kHome, -1}});
  Rng rng(5);
  std::vector<uint32_t> train_rows, val_rows;
  for (int i = 0; i < 400; ++i) {
    const uint32_t s = static_cast<uint32_t>(rng.UniformInt(2));
    const bool is_val = i >= 300;
    // Trap agrees with y on train, disagrees on val.
    const uint32_t trap = is_val ? (1 - s) : s;
    data.AppendRowUnchecked({s, trap}, static_cast<uint8_t>(s));
    (is_val ? val_rows : train_rows).push_back(static_cast<uint32_t>(i));
  }
  DataView train(&data, train_rows, {0, 1});
  DataView val(&data, val_rows, {0, 1});
  BackwardSelectionClassifier model(
      [] { return std::make_unique<NaiveBayes>(); }, val);
  ASSERT_TRUE(model.Fit(train).ok());
  // The trap feature must be gone; accuracy on val should be perfect.
  ASSERT_EQ(model.selected_features().size(), 1u);
  EXPECT_EQ(model.selected_features()[0], 0u);
  EXPECT_DOUBLE_EQ(Accuracy(model, val), 1.0);
}

TEST(BackwardSelectionTest, KeepsAllUsefulFeatures) {
  // Two independent half-signals: dropping either hurts, so both stay.
  Dataset data({{"a", 2, FeatureRole::kHome, -1},
                {"b", 2, FeatureRole::kHome, -1}});
  Rng rng(6);
  std::vector<uint32_t> train_rows, val_rows;
  for (int i = 0; i < 600; ++i) {
    const uint32_t a = static_cast<uint32_t>(rng.UniformInt(2));
    const uint32_t b = static_cast<uint32_t>(rng.UniformInt(2));
    // y = a OR b (NB-representable, both features informative).
    data.AppendRowUnchecked({a, b}, static_cast<uint8_t>(a | b));
    (i >= 450 ? val_rows : train_rows).push_back(static_cast<uint32_t>(i));
  }
  DataView train(&data, train_rows, {0, 1});
  DataView val(&data, val_rows, {0, 1});
  BackwardSelectionClassifier model(
      [] { return std::make_unique<NaiveBayes>(); }, val);
  ASSERT_TRUE(model.Fit(train).ok());
  EXPECT_EQ(model.selected_features().size(), 2u);
}

TEST(BackwardSelectionTest, AlwaysKeepsAtLeastOneFeature) {
  // Pure noise everywhere: the selector may drop features but never all.
  Dataset data({{"n1", 2, FeatureRole::kHome, -1},
                {"n2", 2, FeatureRole::kHome, -1}});
  Rng rng(7);
  std::vector<uint32_t> train_rows, val_rows;
  for (int i = 0; i < 200; ++i) {
    data.AppendRowUnchecked({static_cast<uint32_t>(rng.UniformInt(2)),
                             static_cast<uint32_t>(rng.UniformInt(2))},
                            rng.Bernoulli(0.5) ? 1 : 0);
    (i >= 150 ? val_rows : train_rows).push_back(static_cast<uint32_t>(i));
  }
  DataView train(&data, train_rows, {0, 1});
  DataView val(&data, val_rows, {0, 1});
  BackwardSelectionClassifier model(
      [] { return std::make_unique<NaiveBayes>(); }, val);
  ASSERT_TRUE(model.Fit(train).ok());
  EXPECT_GE(model.selected_features().size(), 1u);
}

}  // namespace
}  // namespace ml
}  // namespace hamlet
