// Tests for hamlet/core/fk_compression: random hashing and sort-based
// conditional-entropy domain compression (paper §6.1).

#include <gtest/gtest.h>

#include <set>

#include "hamlet/common/rng.h"
#include "hamlet/core/fk_compression.h"
#include "hamlet/data/split.h"
#include "hamlet/ml/metrics.h"
#include "hamlet/ml/tree/decision_tree.h"

namespace hamlet {
namespace core {
namespace {

/// FK-determined labels over a domain of m values, plus a noise feature.
Dataset MakeFkDataset(uint32_t m, size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint8_t> fk_label(m);
  for (auto& v : fk_label) v = static_cast<uint8_t>(rng.UniformInt(2));
  Dataset d({{"fk", m, FeatureRole::kForeignKey, 0},
             {"noise", 2, FeatureRole::kHome, -1}});
  for (size_t i = 0; i < n; ++i) {
    const uint32_t fk = static_cast<uint32_t>(rng.UniformInt(m));
    d.AppendRowUnchecked({fk, static_cast<uint32_t>(rng.UniformInt(2))},
                         fk_label[fk]);
  }
  return d;
}

TEST(RandomHashTest, MapsIntoBudget) {
  DomainMapping map = BuildRandomHashMapping(1000, 16, 7);
  EXPECT_EQ(map.map.size(), 1000u);
  EXPECT_EQ(map.new_domain, 16u);
  std::set<uint32_t> used;
  for (uint32_t v : map.map) {
    EXPECT_LT(v, 16u);
    used.insert(v);
  }
  EXPECT_GT(used.size(), 8u);  // a reasonable hash spreads values
}

TEST(RandomHashTest, DeterministicPerSeedAndSpreadsAcrossSeeds) {
  DomainMapping a = BuildRandomHashMapping(100, 8, 1);
  DomainMapping b = BuildRandomHashMapping(100, 8, 1);
  EXPECT_EQ(a.map, b.map);
  DomainMapping c = BuildRandomHashMapping(100, 8, 2);
  EXPECT_NE(a.map, c.map);
}

TEST(RandomHashTest, BudgetLargerThanDomainIsIdentitySized) {
  DomainMapping map = BuildRandomHashMapping(5, 100, 3);
  EXPECT_EQ(map.new_domain, 5u);
}

TEST(SortedEntropyTest, SeparatesPureGroups) {
  // Codes 0..4 always positive, 5..9 always negative: with budget 2, the
  // mapping must split them into different buckets.
  Dataset d({{"fk", 10, FeatureRole::kForeignKey, 0}});
  Rng rng(4);
  for (int i = 0; i < 400; ++i) {
    const uint32_t fk = static_cast<uint32_t>(rng.UniformInt(10));
    d.AppendRowUnchecked({fk}, static_cast<uint8_t>(fk < 5));
  }
  DataView train(&d);
  Result<DomainMapping> map = BuildSortedEntropyMapping(train, 0, 2);
  ASSERT_TRUE(map.ok());
  EXPECT_EQ(map.value().new_domain, 2u);
  // All positive codes share a bucket; all negative codes share the other.
  // (Both groups have zero conditional entropy, so the boundary falls at a
  // zero gap; the partition must still respect the two-group structure in
  // the sense that H(Y|f(FK)) stays 0.)
  ASSERT_TRUE(ApplyMapping(d, 0, map.value()).ok());
  const double h = ConditionalEntropy(DataView(&d), 0);
  EXPECT_LT(h, 0.4);  // far below the unconditional entropy log(2)=0.693
}

TEST(SortedEntropyTest, PreservesConditionalEntropyBetterThanRandom) {
  // The design claim behind the Sort-based method (paper §6.1).
  Dataset d = MakeFkDataset(200, 4000, 5);
  DataView train(&d);
  const double h_full = ConditionalEntropy(train, 0);

  Result<DomainMapping> sorted = BuildSortedEntropyMapping(train, 0, 8);
  ASSERT_TRUE(sorted.ok());
  DomainMapping random = BuildRandomHashMapping(200, 8, 6);

  Dataset d_sorted = d;
  ASSERT_TRUE(ApplyMapping(d_sorted, 0, sorted.value()).ok());
  Dataset d_random = d;
  ASSERT_TRUE(ApplyMapping(d_random, 0, random).ok());

  const double h_sorted = ConditionalEntropy(DataView(&d_sorted), 0);
  const double h_random = ConditionalEntropy(DataView(&d_random), 0);
  EXPECT_LE(h_sorted, h_random + 1e-9);
  EXPECT_GE(h_sorted, h_full - 1e-9);  // compression cannot reduce H(Y|FK)
}

TEST(SortedEntropyTest, UnseenCodesGoToBucketZero) {
  Dataset d({{"fk", 10, FeatureRole::kForeignKey, 0}});
  for (int i = 0; i < 50; ++i) {
    d.AppendRowUnchecked({static_cast<uint32_t>(i % 5)},
                         static_cast<uint8_t>(i % 2));
  }
  DataView train(&d);
  Result<DomainMapping> map = BuildSortedEntropyMapping(train, 0, 3);
  ASSERT_TRUE(map.ok());
  for (uint32_t v = 5; v < 10; ++v) {
    EXPECT_EQ(map.value().map[v], 0u);
  }
}

TEST(SortedEntropyTest, ValidatesArguments) {
  Dataset d = MakeFkDataset(10, 50, 7);
  DataView train(&d);
  EXPECT_FALSE(BuildSortedEntropyMapping(train, 5, 2).ok());
  EXPECT_FALSE(BuildSortedEntropyMapping(train, 0, 0).ok());
  DataView empty(&d, {}, {0, 1});
  EXPECT_FALSE(BuildSortedEntropyMapping(empty, 0, 2).ok());
}

TEST(ApplyMappingTest, RewritesColumnAndDomain) {
  Dataset d = MakeFkDataset(20, 100, 8);
  DomainMapping map = BuildRandomHashMapping(20, 4, 9);
  ASSERT_TRUE(ApplyMapping(d, 0, map).ok());
  EXPECT_EQ(d.feature_spec(0).domain_size, 4u);
  for (size_t i = 0; i < d.num_rows(); ++i) {
    EXPECT_LT(d.feature(i, 0), 4u);
  }
}

TEST(ApplyMappingTest, ValidatesSizeMismatch) {
  Dataset d = MakeFkDataset(20, 50, 10);
  DomainMapping map = BuildRandomHashMapping(19, 4, 9);  // wrong old domain
  EXPECT_FALSE(ApplyMapping(d, 0, map).ok());
}

TEST(CompressionEndToEnd, TreeAccuracySurvivesModestCompression) {
  // Compressing a 100-value FK to 25 buckets with the supervised method
  // should retain most of the tree's accuracy (Figure 10's qualitative
  // claim), while budget 1 (constant feature) must hurt.
  Dataset d = MakeFkDataset(100, 3000, 11);
  TrainValTest split = SplitPaper(d.num_rows(), 12);

  auto run = [&](uint32_t budget) {
    Dataset copy = d;
    DataView train_for_map(&copy, split.train, {0, 1});
    Result<DomainMapping> map =
        BuildSortedEntropyMapping(train_for_map, 0, budget);
    EXPECT_TRUE(map.ok());
    EXPECT_TRUE(ApplyMapping(copy, 0, map.value()).ok());
    SplitViews views = MakeSplitViews(copy, split, {0, 1});
    ml::DecisionTree tree({.minsplit = 10, .cp = 0.0});
    EXPECT_TRUE(tree.Fit(views.train).ok());
    return ml::Accuracy(tree, views.test);
  };

  const double acc_25 = run(25);
  const double acc_1 = run(1);
  EXPECT_GT(acc_25, 0.8);
  EXPECT_LT(acc_1, 0.65);
}

TEST(CompressionTest, MethodNames) {
  EXPECT_STREQ(CompressionMethodName(CompressionMethod::kRandomHash),
               "random-hash");
  EXPECT_STREQ(CompressionMethodName(CompressionMethod::kSortedEntropy),
               "sorted-entropy");
}

}  // namespace
}  // namespace core
}  // namespace hamlet
