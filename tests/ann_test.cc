// Tests for hamlet/ml/ann: MLP with Adam and sparse one-hot input.

#include <gtest/gtest.h>

#include <cmath>

#include "hamlet/common/rng.h"
#include "hamlet/data/dataset.h"
#include "hamlet/data/view.h"
#include "hamlet/ml/ann/mlp.h"
#include "hamlet/ml/metrics.h"

namespace hamlet {
namespace ml {
namespace {

Dataset MakeSeparable(size_t n, uint64_t seed) {
  Dataset d({{"sig", 2, FeatureRole::kHome, -1},
             {"noise", 3, FeatureRole::kHome, -1}});
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    const uint32_t s = static_cast<uint32_t>(rng.UniformInt(2));
    d.AppendRowUnchecked({s, static_cast<uint32_t>(rng.UniformInt(3))},
                         static_cast<uint8_t>(s));
  }
  return d;
}

Dataset MakeXor(size_t n, uint64_t seed) {
  Dataset d({{"a", 2, FeatureRole::kHome, -1},
             {"b", 2, FeatureRole::kHome, -1}});
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    const uint32_t a = static_cast<uint32_t>(rng.UniformInt(2));
    const uint32_t b = static_cast<uint32_t>(rng.UniformInt(2));
    d.AppendRowUnchecked({a, b}, static_cast<uint8_t>(a ^ b));
  }
  return d;
}

MlpConfig SmallConfig() {
  MlpConfig cfg;
  cfg.hidden_sizes = {16, 8};  // small nets keep tests fast
  cfg.learning_rate = 0.01;
  cfg.l2 = 1e-4;
  cfg.epochs = 40;
  cfg.seed = 3;
  return cfg;
}

TEST(MlpTest, LearnsLinearSignal) {
  Dataset data = MakeSeparable(300, 1);
  DataView view(&data);
  Mlp mlp(SmallConfig());
  ASSERT_TRUE(mlp.Fit(view).ok());
  EXPECT_GE(Accuracy(mlp, view), 0.98);
}

TEST(MlpTest, LearnsXor) {
  Dataset data = MakeXor(400, 2);
  DataView view(&data);
  Mlp mlp(SmallConfig());
  ASSERT_TRUE(mlp.Fit(view).ok());
  EXPECT_GE(Accuracy(mlp, view), 0.98);
}

TEST(MlpTest, GeneralisesXorOutOfSample) {
  Dataset train = MakeXor(400, 3);
  Dataset test = MakeXor(200, 4);
  Mlp mlp(SmallConfig());
  ASSERT_TRUE(mlp.Fit(DataView(&train)).ok());
  EXPECT_GE(Accuracy(mlp, DataView(&test)), 0.98);
}

TEST(MlpTest, ProbabilitiesAreCalibratedToUnitInterval) {
  Dataset data = MakeXor(200, 5);
  DataView view(&data);
  Mlp mlp(SmallConfig());
  ASSERT_TRUE(mlp.Fit(view).ok());
  for (size_t i = 0; i < view.num_rows(); ++i) {
    const double p = mlp.PredictProbability(view, i);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    EXPECT_EQ(mlp.Predict(view, i), p >= 0.5 ? 1 : 0);
  }
}

TEST(MlpTest, DeterministicInSeed) {
  Dataset data = MakeXor(200, 6);
  DataView view(&data);
  Mlp a(SmallConfig()), b(SmallConfig());
  ASSERT_TRUE(a.Fit(view).ok());
  ASSERT_TRUE(b.Fit(view).ok());
  for (size_t i = 0; i < view.num_rows(); ++i) {
    EXPECT_DOUBLE_EQ(a.PredictProbability(view, i),
                     b.PredictProbability(view, i));
  }
}

TEST(MlpTest, EmptyTrainingFails) {
  Dataset data = MakeXor(10, 7);
  DataView empty(&data, {}, {0, 1});
  Mlp mlp(SmallConfig());
  EXPECT_FALSE(mlp.Fit(empty).ok());
}

TEST(MlpTest, RejectsNoHiddenLayers) {
  MlpConfig cfg = SmallConfig();
  cfg.hidden_sizes = {};
  Mlp mlp(cfg);
  Dataset data = MakeXor(50, 8);
  EXPECT_FALSE(mlp.Fit(DataView(&data)).ok());
}

TEST(MlpTest, StrongL2ShrinksConfidence) {
  Dataset data = MakeSeparable(300, 9);
  DataView view(&data);
  MlpConfig weak = SmallConfig();
  weak.l2 = 1e-5;
  MlpConfig strong = SmallConfig();
  strong.l2 = 1.0;  // heavy penalty keeps weights near zero
  Mlp mw(weak), ms(strong);
  ASSERT_TRUE(mw.Fit(view).ok());
  ASSERT_TRUE(ms.Fit(view).ok());
  double conf_weak = 0.0, conf_strong = 0.0;
  for (size_t i = 0; i < view.num_rows(); ++i) {
    conf_weak += std::abs(mw.PredictProbability(view, i) - 0.5);
    conf_strong += std::abs(ms.PredictProbability(view, i) - 0.5);
  }
  EXPECT_GT(conf_weak, conf_strong);
}

TEST(MlpTest, HandlesLargeFkDomainInput) {
  // One-hot dimension ~500: exercises the sparse first-layer path.
  Rng rng(10);
  Dataset d({{"fk", 500, FeatureRole::kForeignKey, 0}});
  std::vector<uint8_t> fk_label(500);
  for (auto& v : fk_label) v = static_cast<uint8_t>(rng.UniformInt(2));
  for (int i = 0; i < 600; ++i) {
    const uint32_t fk = static_cast<uint32_t>(rng.UniformInt(500));
    d.AppendRowUnchecked({fk}, fk_label[fk]);
  }
  MlpConfig cfg = SmallConfig();
  cfg.epochs = 60;
  Mlp mlp(cfg);
  ASSERT_TRUE(mlp.Fit(DataView(&d)).ok());
  EXPECT_GE(Accuracy(mlp, DataView(&d)), 0.9);
}

// Sweep the paper's tuning grid corners: training must stay stable (no
// NaNs, accuracy above majority) for every (lr, l2) combination.
class MlpGridTest
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(MlpGridTest, StableAcrossTuningGrid) {
  const auto [lr, l2] = GetParam();
  Dataset data = MakeSeparable(200, 11);
  DataView view(&data);
  MlpConfig cfg = SmallConfig();
  cfg.learning_rate = lr;
  cfg.l2 = l2;
  cfg.epochs = 20;
  Mlp mlp(cfg);
  ASSERT_TRUE(mlp.Fit(view).ok());
  const double acc = Accuracy(mlp, view);
  EXPECT_TRUE(std::isfinite(acc));
  EXPECT_GE(acc, 0.45);
}

INSTANTIATE_TEST_SUITE_P(
    PaperGrid, MlpGridTest,
    ::testing::Combine(::testing::Values(1e-3, 1e-2, 1e-1),
                       ::testing::Values(1e-4, 1e-3, 1e-2)));

}  // namespace
}  // namespace ml
}  // namespace hamlet
