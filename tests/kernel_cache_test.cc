// Tests for ml::KernelCache and the cached-row SMO parity contract: the
// lazy LRU row cache must serve rows bit-identical to ComputeGram, evict
// in LRU order under its byte budget, and leave the SMO solution (alpha,
// bias, iterations, predictions) bit-identical to the full-Gram adapter
// at any cache size and thread count.

#include <gtest/gtest.h>

#include <cstdlib>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "hamlet/data/code_matrix.h"
#include "hamlet/ml/metrics.h"
#include "hamlet/ml/svm/kernel.h"
#include "hamlet/ml/svm/kernel_cache.h"
#include "hamlet/ml/svm/smo.h"
#include "hamlet/ml/svm/svm.h"
#include "parity_util.h"

namespace hamlet {
namespace ml {
namespace {

constexpr size_t kUnbounded = std::numeric_limits<size_t>::max() / 2;

/// Cache budget that holds exactly `rows` rows of an n-point problem.
size_t BytesForRows(size_t rows, size_t n) { return rows * n * sizeof(float); }

/// A small two-class problem with enough structure to need real SMO work.
struct SmoProblem {
  Dataset data;
  DataView train;
  DataView test;
  std::vector<int8_t> y;  // train labels in -1/+1

  explicit SmoProblem(uint64_t seed)
      : data(test::MakeParityDataset(72, {4, 3, 5, 2, 3}, seed)) {
    test::ParityViews views = test::MakeParityViews(data, seed + 1);
    train = views.train;
    test = views.test;
    const CodeMatrix m(train);
    y.resize(m.num_rows());
    for (size_t i = 0; i < m.num_rows(); ++i) {
      y[i] = m.label(i) == 1 ? 1 : -1;
    }
  }
};

const std::vector<KernelConfig>& AllKernels() {
  static const std::vector<KernelConfig> kernels = {
      {KernelType::kLinear, 0.0, 2},
      {KernelType::kPoly, 0.4, 2},
      {KernelType::kRbf, 0.3, 2},
  };
  return kernels;
}

// ------------------------------------------------------------ KernelCache --

TEST(KernelCacheTest, RowsBitIdenticalToComputeGram) {
  const SmoProblem p(11);
  for (const KernelConfig& kc : AllKernels()) {
    const CodeMatrix m(p.train);
    const size_t n = m.num_rows();
    const std::vector<float> gram =
        ComputeGram(kc, m.codes(), n, m.num_features());
    // Capacity 1 forces a recompute on every access; recomputed rows must
    // still match the full Gram exactly.
    KernelCache cache(CodeMatrix(p.train), kc, BytesForRows(1, n));
    ASSERT_EQ(cache.size(), n);
    EXPECT_EQ(cache.capacity_rows(), 1u);
    for (size_t i = 0; i < n; ++i) {
      const float* row = cache.Row(i);
      for (size_t t = 0; t < n; ++t) {
        ASSERT_EQ(row[t], gram[i * n + t]) << "kernel " << KernelTypeName(kc.type)
                                           << " row " << i << " col " << t;
      }
    }
    EXPECT_EQ(cache.hits(), 0u);
    EXPECT_EQ(cache.misses(), n);
  }
}

TEST(KernelCacheTest, EvictsLeastRecentlyUsedRow) {
  const SmoProblem p(12);
  const CodeMatrix probe(p.train);
  const size_t n = probe.num_rows();
  KernelCache cache(CodeMatrix(p.train), AllKernels()[2],
                    BytesForRows(2, n));
  ASSERT_EQ(cache.capacity_rows(), 2u);

  cache.Row(0);
  cache.Row(1);
  EXPECT_TRUE(cache.Cached(0));
  EXPECT_TRUE(cache.Cached(1));
  EXPECT_EQ(cache.resident_rows(), 2u);

  cache.Row(2);  // evicts row 0 (least recently used)
  EXPECT_FALSE(cache.Cached(0));
  EXPECT_TRUE(cache.Cached(1));
  EXPECT_TRUE(cache.Cached(2));

  cache.Row(1);  // refresh row 1 so row 2 becomes the LRU victim
  cache.Row(3);
  EXPECT_TRUE(cache.Cached(1));
  EXPECT_FALSE(cache.Cached(2));
  EXPECT_TRUE(cache.Cached(3));

  EXPECT_EQ(cache.hits(), 1u);    // the Row(1) refresh
  EXPECT_EQ(cache.misses(), 4u);  // rows 0, 1, 2, 3
  EXPECT_EQ(cache.resident_rows(), 2u);
}

TEST(KernelCacheTest, UnboundedBudgetCachesEveryRowOnce) {
  const SmoProblem p(13);
  const CodeMatrix probe(p.train);
  const size_t n = probe.num_rows();
  KernelCache cache(CodeMatrix(p.train), AllKernels()[0], kUnbounded);
  EXPECT_EQ(cache.capacity_rows(), n);  // clamped to the problem size
  for (size_t pass = 0; pass < 2; ++pass) {
    for (size_t i = 0; i < n; ++i) cache.Row(i);
  }
  EXPECT_EQ(cache.misses(), n);
  EXPECT_EQ(cache.hits(), n);
  EXPECT_EQ(cache.resident_rows(), n);
}

TEST(KernelCacheTest, TinyBudgetStillHoldsOneRow) {
  const SmoProblem p(14);
  KernelCache cache(CodeMatrix(p.train), AllKernels()[0], 1);
  EXPECT_EQ(cache.capacity_rows(), 1u);
  EXPECT_NE(cache.Row(0), nullptr);
}

TEST(KernelCacheTest, DiagMatchesGramDiagonal) {
  const SmoProblem p(16);
  const CodeMatrix probe(p.train);
  const size_t n = probe.num_rows();
  for (const KernelConfig& kc : AllKernels()) {
    const std::vector<float> gram =
        ComputeGram(kc, probe.codes(), n, probe.num_features());
    KernelCache cache(CodeMatrix(p.train), kc, kUnbounded);
    FullGramRowSource full(gram, n);
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(cache.Diag()[i], gram[i * n + i])
          << KernelTypeName(kc.type) << " i=" << i;
      ASSERT_EQ(full.Diag()[i], gram[i * n + i]);
    }
  }
}

TEST(KernelCacheTest, RestrictActiveComputesOnlyActiveColumns) {
  const SmoProblem p(17);
  const CodeMatrix probe(p.train);
  const size_t n = probe.num_rows();
  ASSERT_GE(n, 12u);
  const KernelConfig kc = AllKernels()[2];
  const std::vector<float> gram =
      ComputeGram(kc, probe.codes(), n, probe.num_features());
  KernelCache cache(CodeMatrix(p.train), kc, kUnbounded);

  // A row computed before any restriction is full and stays valid.
  cache.Row(0);
  EXPECT_EQ(cache.misses(), 1u);

  // Restrict to the even indices: a fresh fetch computes exactly those
  // entries (the gram comparison reads only restricted columns — the
  // rest of the buffer is unspecified by contract).
  std::vector<int32_t> evens;
  for (size_t t = 0; t < n; t += 2) evens.push_back(static_cast<int32_t>(t));
  cache.RestrictActive(evens.data(), evens.size());
  const float* partial = cache.Row(2);
  EXPECT_EQ(cache.misses(), 2u);
  for (const int32_t t : evens) {
    ASSERT_EQ(partial[t], gram[2 * n + static_cast<size_t>(t)]) << t;
  }

  // A narrower restriction in the same era is a subset of the computed
  // columns, so the partial row still serves hits.
  std::vector<int32_t> narrower;
  for (size_t t = 2; t < n; t += 4) {
    narrower.push_back(static_cast<int32_t>(t));
  }
  cache.RestrictActive(narrower.data(), narrower.size());
  cache.Row(2);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 2u);

  // Lifting the restriction closes the era: the full row keeps hitting,
  // the partial row recomputes (now fully) on its next fetch.
  cache.ClearActiveRestriction();
  cache.Row(0);
  EXPECT_EQ(cache.hits(), 2u);
  const float* recomputed = cache.Row(2);
  EXPECT_EQ(cache.misses(), 3u);
  for (size_t t = 0; t < n; ++t) {
    ASSERT_EQ(recomputed[t], gram[2 * n + t]) << t;
  }
}

TEST(KernelCacheTest, ResetGlobalTotalsZeroes) {
  {
    const SmoProblem p(18);
    KernelCache cache(CodeMatrix(p.train), AllKernels()[0], kUnbounded);
    cache.Row(0);
    cache.Row(0);
  }
  const KernelCacheTotals before = GlobalKernelCacheTotals();
  EXPECT_GT(before.hits + before.misses, 0u);
  ResetGlobalKernelCacheTotals();
  const KernelCacheTotals after = GlobalKernelCacheTotals();
  EXPECT_EQ(after.hits, 0u);
  EXPECT_EQ(after.misses, 0u);
}

TEST(KernelCacheTest, GlobalTotalsAccumulateOnDestruction) {
  const SmoProblem p(15);
  const KernelCacheTotals before = GlobalKernelCacheTotals();
  {
    KernelCache cache(CodeMatrix(p.train), AllKernels()[2],
                      BytesForRows(2, CodeMatrix(p.train).num_rows()));
    cache.Row(0);
    cache.Row(0);
    cache.Row(1);
  }
  const KernelCacheTotals after = GlobalKernelCacheTotals();
  EXPECT_EQ(after.hits - before.hits, 1u);
  EXPECT_EQ(after.misses - before.misses, 2u);
}

// --------------------------------------------------- HAMLET_SMO_CACHE_MB --

TEST(KernelCacheEnvTest, UnsetUsesDefault) {
  test::ScopedEnvVar env("HAMLET_SMO_CACHE_MB", nullptr);
  EXPECT_EQ(KernelCacheBytesFromEnv(), kDefaultKernelCacheBytes);
}

TEST(KernelCacheEnvTest, PositiveMibParses) {
  test::ScopedEnvVar env("HAMLET_SMO_CACHE_MB", "8");
  EXPECT_EQ(KernelCacheBytesFromEnv(), size_t{8} << 20);
}

TEST(KernelCacheEnvTest, GarbageAndZeroFallBackToDefault) {
  for (const char* bad : {"abc", "0", "-3", "12MB", ""}) {
    test::ScopedEnvVar env("HAMLET_SMO_CACHE_MB", bad);
    EXPECT_EQ(KernelCacheBytesFromEnv(), kDefaultKernelCacheBytes)
        << "value \"" << bad << "\"";
  }
}

// ------------------------------------------------------------- SMO parity --

/// The cached solver must be bit-identical to the full-Gram adapter:
/// same alpha bits, same bias, same iteration count, same support-vector
/// set, at every cache size — on BOTH solver paths (second-order +
/// shrinking, and the legacy first-order loop) — because the solver
/// stages rows through a scratch copy, never branches on cache
/// residency, and the cache serves ComputeGram-identical floats (partial
/// rows included: the restricted entries are the only ones read).
TEST(SmoCacheParityTest, SolutionBitIdenticalAtAllCacheSizes) {
  const SmoProblem p(21);
  for (const bool modern : {false, true}) {
    SmoConfig cfg;
    cfg.C = 5.0;
    cfg.use_wss2 = modern ? SmoToggle::kOn : SmoToggle::kOff;
    cfg.use_shrinking = modern ? SmoToggle::kOn : SmoToggle::kOff;
    for (const KernelConfig& kc : AllKernels()) {
      const CodeMatrix m(p.train);
      const size_t n = m.num_rows();
      const std::vector<float> gram =
          ComputeGram(kc, m.codes(), n, m.num_features());
      const Result<SmoSolution> base = SolveSmo(gram, p.y, cfg);
      ASSERT_TRUE(base.ok());
      ASSERT_GT(base.value().num_support_vectors, 0u);

      for (size_t cache_bytes :
           {BytesForRows(1, n), BytesForRows(2, n), kUnbounded}) {
        KernelCache cache(CodeMatrix(p.train), kc, cache_bytes);
        const Result<SmoSolution> cached = SolveSmo(cache, p.y, cfg);
        ASSERT_TRUE(cached.ok());
        const SmoSolution& a = base.value();
        const SmoSolution& b = cached.value();
        EXPECT_EQ(a.alpha, b.alpha)
            << KernelTypeName(kc.type) << " modern=" << modern;  // bitwise
        EXPECT_EQ(a.bias, b.bias) << KernelTypeName(kc.type);
        EXPECT_EQ(a.iterations, b.iterations);
        EXPECT_EQ(a.converged, b.converged);
        EXPECT_EQ(a.num_support_vectors, b.num_support_vectors);
        EXPECT_EQ(a.shrink_events, b.shrink_events);
        EXPECT_EQ(a.unshrink_events, b.unshrink_events);
        // Identical iterate sequences fetch identical row sequences: the
        // adapter counts every fetch as a hit, the cache splits the same
        // total into hits + misses.
        EXPECT_EQ(a.cache_hits, b.cache_hits + b.cache_misses);
        EXPECT_GT(b.cache_misses, 0u);
      }
    }
  }
}

/// Exhausting the iteration budget while the active set is shrunk must
/// not hand the caller-owned source back with the restriction still
/// installed: a later solve on the SAME cache has to see fully valid
/// rows again (stale partial slots recompute via the era bump), and so
/// must be bit-identical to a solve on a fresh cache.
TEST(SmoCacheParityTest, BudgetExhaustedWhileShrunkLeavesSourceReusable) {
  const SmoProblem p(24);
  const CodeMatrix probe(p.train);
  const KernelConfig kc = AllKernels()[2];
  SmoConfig starved;
  starved.C = 5.0;
  starved.tolerance = 1e-6;  // prolong the solve past the shrink pass
  starved.max_iterations = probe.num_rows() + 10;
  starved.use_wss2 = SmoToggle::kOn;
  starved.use_shrinking = SmoToggle::kOn;

  KernelCache cache(CodeMatrix(p.train), kc, kUnbounded);
  const Result<SmoSolution> aborted = SolveSmo(cache, p.y, starved);
  ASSERT_TRUE(aborted.ok());
  // Precondition for the scenario: a shrink happened and was never
  // undone, so the abort fired while the active set was restricted.
  ASSERT_GT(aborted.value().shrink_events, 0u);
  ASSERT_EQ(aborted.value().unshrink_events, 0u);
  ASSERT_FALSE(aborted.value().converged);

  SmoConfig full = starved;
  full.max_iterations = 200000;
  const Result<SmoSolution> reused = SolveSmo(cache, p.y, full);
  ASSERT_TRUE(reused.ok());
  KernelCache fresh(CodeMatrix(p.train), kc, kUnbounded);
  const Result<SmoSolution> baseline = SolveSmo(fresh, p.y, full);
  ASSERT_TRUE(baseline.ok());
  EXPECT_EQ(reused.value().alpha, baseline.value().alpha);  // bitwise
  EXPECT_EQ(reused.value().bias, baseline.value().bias);
  EXPECT_EQ(reused.value().iterations, baseline.value().iterations);
}

/// WSS2 + shrinking reach a different (usually much shorter) iterate
/// sequence than the first-order loop, but both stop at a
/// tolerance-exact optimum of the same dual, so the fitted classifiers
/// must agree on every prediction — across all three kernels, a 1-row
/// and an unbounded cache, and HAMLET_THREADS 1 and 4.
TEST(SmoWss2ParityTest, PredictionsMatchFirstOrderAcrossKernelsCachesThreads) {
  const SmoProblem p(23);
  const CodeMatrix m(p.train);
  const size_t n = m.num_rows();
  for (const KernelConfig& kc : AllKernels()) {
    for (const char* threads : {"1", "4"}) {
      test::ScopedThreads scoped(threads);
      for (size_t cache_bytes : {BytesForRows(1, n), kUnbounded}) {
        auto fit = [&](SmoToggle wss2, SmoToggle shrink) {
          SvmConfig cfg;
          cfg.kernel = kc;
          cfg.C = 5.0;
          cfg.smo_cache_bytes = cache_bytes;
          cfg.smo_wss2 = wss2;
          cfg.smo_shrinking = shrink;
          auto svm = std::make_unique<KernelSvm>(cfg);
          EXPECT_TRUE(svm->Fit(p.train).ok());
          EXPECT_TRUE(svm->converged());
          return svm;
        };
        const auto legacy = fit(SmoToggle::kOff, SmoToggle::kOff);
        const auto modern = fit(SmoToggle::kOn, SmoToggle::kOn);
        EXPECT_GT(modern->last_iterations(), 0u);
        EXPECT_EQ(modern->PredictAll(p.train), legacy->PredictAll(p.train))
            << KernelTypeName(kc.type) << " threads=" << threads
            << " cache_bytes=" << cache_bytes;
        EXPECT_EQ(modern->PredictAll(p.test), legacy->PredictAll(p.test))
            << KernelTypeName(kc.type) << " threads=" << threads
            << " cache_bytes=" << cache_bytes;
      }
    }
  }
}

/// End-to-end through KernelSvm: predictions, support-vector count and
/// accuracy must agree bitwise between a 1-row cache, a 2-row cache and
/// the default budget, at HAMLET_THREADS=1 and 4 (PredictAll fans rows
/// out over the pool), for all three kernels.
TEST(SmoCacheParityTest, KernelSvmBitIdenticalAcrossCacheSizesAndThreads) {
  const SmoProblem p(22);
  const CodeMatrix m(p.train);
  const size_t n = m.num_rows();
  for (const KernelConfig& kc : AllKernels()) {
    std::vector<uint8_t> reference_preds;
    double reference_acc = 0.0;
    for (const char* threads : {"1", "4"}) {
      test::ScopedThreads scoped(threads);
      std::vector<std::vector<uint8_t>> all_preds;
      for (size_t cache_bytes :
           {BytesForRows(1, n), BytesForRows(2, n), size_t{0}}) {
        SvmConfig cfg;
        cfg.kernel = kc;
        cfg.C = 5.0;
        cfg.smo_cache_bytes = cache_bytes;
        KernelSvm svm(cfg);
        ASSERT_TRUE(svm.Fit(p.train).ok());
        EXPECT_GT(svm.num_support_vectors(), 0u);
        all_preds.push_back(svm.PredictAll(p.test));
        if (cache_bytes == BytesForRows(1, n)) {
          // The tightest cache recomputes constantly; the looser ones
          // must see strictly fewer misses for the same fetch sequence.
          EXPECT_GT(svm.last_cache_misses(), 0u);
        }
        const double acc = Accuracy(svm, p.test);
        if (reference_preds.empty()) {
          reference_preds = all_preds.back();
          reference_acc = acc;
        } else {
          EXPECT_EQ(all_preds.back(), reference_preds)
              << KernelTypeName(kc.type) << " threads=" << threads
              << " cache_bytes=" << cache_bytes;
          EXPECT_DOUBLE_EQ(acc, reference_acc);
        }
      }
    }
  }
}

}  // namespace
}  // namespace ml
}  // namespace hamlet
