// Fault-injection subsystem tests, and the fault sweeps that exercise
// the crash-safe model lifecycle end to end: every injection site is
// fired in turn across save -> load -> serve, and the contract is the
// same each time — a clean Status (never a crash), no partial or temp
// file left observable, and the pipeline succeeding once the transient
// fault clears.

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "hamlet/common/fault.h"
#include "hamlet/io/serialize.h"
#include "hamlet/ml/majority.h"
#include "hamlet/ml/nb/naive_bayes.h"
#include "hamlet/serve/server.h"
#include "parity_util.h"

namespace hamlet {
namespace {

using test::MakeParityDataset;
using test::MakeParityViews;
using test::ScopedEnvVar;

/// Clears the process-wide fault spec on scope exit, so a failing
/// assertion can't leak an armed spec into later tests.
struct FaultGuard {
  ~FaultGuard() { fault::Clear(); }
};

/// The temp sibling SaveModelToFile writes before the atomic rename.
std::string TempSiblingOf(const std::string& path) {
  return path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
}

bool FileExists(const std::string& path) {
  return std::ifstream(path).good();
}

TEST(FaultSpecTest, EmptySpecDisablesInjection) {
  FaultGuard guard;
  ASSERT_TRUE(fault::InstallSpec("").ok());
  EXPECT_FALSE(fault::Enabled());
  EXPECT_FALSE(fault::ShouldFail(fault::kSiteSaveWrite));
}

TEST(FaultSpecTest, MalformedSpecsAreInvalidArgument) {
  FaultGuard guard;
  const char* bad[] = {
      "io.save.write",            // no trigger
      "io.save.write:often",      // unknown trigger
      "io.save.write:nth=zero",   // non-numeric nth
      "io.save.write:nth=0",      // nth is 1-based
      "io.save.write:p=1.5",      // probability outside [0,1]
      "io.save.write:p=x",        // non-numeric probability
      "seed=donut",               // non-numeric seed
      "io.no.such.site:always",   // unknown site
  };
  for (const char* spec : bad) {
    SCOPED_TRACE(spec);
    const Status st = fault::InstallSpec(spec);
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
    EXPECT_FALSE(fault::Enabled());
  }
  // Unknown-site errors name the roster so the typo is findable.
  const Status st = fault::InstallSpec("io.no.such.site:always");
  EXPECT_NE(st.message().find(fault::kSiteSaveWrite), std::string::npos);
}

TEST(FaultSpecTest, NthFiresExactlyOnce) {
  FaultGuard guard;
  ASSERT_TRUE(fault::InstallSpec("io.save.write:nth=3").ok());
  EXPECT_TRUE(fault::Enabled());
  std::vector<bool> fired;
  for (int i = 0; i < 6; ++i) {
    fired.push_back(fault::ShouldFail(fault::kSiteSaveWrite));
  }
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, false, false,
                                      false}));
  EXPECT_EQ(fault::CallCount(fault::kSiteSaveWrite), 6u);
  EXPECT_EQ(fault::FireCount(fault::kSiteSaveWrite), 1u);
}

TEST(FaultSpecTest, AlwaysAndProbabilityEndpoints) {
  FaultGuard guard;
  ASSERT_TRUE(fault::InstallSpec("io.load.read:always").ok());
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(fault::ShouldFail(fault::kSiteLoadRead));
  }

  ASSERT_TRUE(fault::InstallSpec("io.load.read:p=1").ok());
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(fault::ShouldFail(fault::kSiteLoadRead));
  }

  ASSERT_TRUE(fault::InstallSpec("io.load.read:p=0").ok());
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(fault::ShouldFail(fault::kSiteLoadRead));
  }
}

TEST(FaultSpecTest, ProbabilityScheduleIsSeedDeterministic) {
  FaultGuard guard;
  auto schedule = [](const char* spec) {
    EXPECT_TRUE(fault::InstallSpec(spec).ok());
    std::vector<bool> fires;
    for (int i = 0; i < 200; ++i) {
      fires.push_back(fault::ShouldFail(fault::kSiteLoadRead));
    }
    return fires;
  };
  const auto a = schedule("seed=42;io.load.read:p=0.5");
  const auto b = schedule("seed=42;io.load.read:p=0.5");
  const auto c = schedule("seed=43;io.load.read:p=0.5");
  EXPECT_EQ(a, b);          // same spec, same schedule — reproducible
  EXPECT_NE(a, c);          // the seed actually feeds the draw
  // An unbiased-ish coin: p=0.5 over 200 draws lands well inside 40-160.
  const size_t fires = static_cast<size_t>(
      std::count(a.begin(), a.end(), true));
  EXPECT_GT(fires, 40u);
  EXPECT_LT(fires, 160u);
}

TEST(FaultSpecTest, InjectReturnsUnavailableWithSiteAndDetail) {
  FaultGuard guard;
  ASSERT_TRUE(fault::InstallSpec("io.save.open:always").ok());
  const Status st = fault::Inject(fault::kSiteSaveOpen, "/tmp/x.hmlm");
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kUnavailable);
  EXPECT_NE(st.message().find("io.save.open"), std::string::npos);
  EXPECT_NE(st.message().find("/tmp/x.hmlm"), std::string::npos);
  EXPECT_TRUE(fault::Inject(fault::kSiteSaveRename).ok());
}

TEST(FaultSpecTest, PassiveSitesAreCountedWhileEnabled) {
  FaultGuard guard;
  ASSERT_TRUE(fault::InstallSpec("io.save.open:nth=100").ok());
  EXPECT_FALSE(fault::ShouldFail(fault::kSiteLoadOpen));
  EXPECT_FALSE(fault::ShouldFail(fault::kSiteLoadOpen));
  EXPECT_EQ(fault::CallCount(fault::kSiteLoadOpen), 2u);
  EXPECT_EQ(fault::FireCount(fault::kSiteLoadOpen), 0u);
}

TEST(FaultSpecTest, LoadSpecFromEnv) {
  FaultGuard guard;
  {
    ScopedEnvVar env("HAMLET_FAULT_SPEC", "io.save.open:nth=1");
    ASSERT_TRUE(fault::LoadSpecFromEnv().ok());
    EXPECT_TRUE(fault::Enabled());
    EXPECT_TRUE(fault::ShouldFail(fault::kSiteSaveOpen));
    EXPECT_FALSE(fault::ShouldFail(fault::kSiteSaveOpen));
  }
  {
    ScopedEnvVar env("HAMLET_FAULT_SPEC", nullptr);
    ASSERT_TRUE(fault::LoadSpecFromEnv().ok());
    EXPECT_FALSE(fault::Enabled());
  }
  {
    // A typo'd env spec warns (once) and leaves injection disabled
    // rather than failing the process that inherited the variable.
    ScopedEnvVar env("HAMLET_FAULT_SPEC", "io.typo:always");
    ASSERT_FALSE(fault::LoadSpecFromEnv().ok());
    EXPECT_FALSE(fault::Enabled());
  }
}

TEST(FaultSpecTest, KnownSitesRosterIsComplete) {
  const std::vector<std::string>& sites = fault::KnownSites();
  for (const char* site :
       {fault::kSiteSaveOpen, fault::kSiteSaveWrite, fault::kSiteSaveFsync,
        fault::kSiteSaveRename, fault::kSiteLoadOpen, fault::kSiteLoadRead}) {
    EXPECT_NE(std::find(sites.begin(), sites.end(), site), sites.end())
        << site;
  }
  EXPECT_EQ(sites.size(), 6u);
}

TEST(FaultStreambufTest, WriteSiteFailsThePut) {
  FaultGuard guard;
  ASSERT_TRUE(fault::InstallSpec("io.save.write:nth=2").ok());
  std::ostringstream os;
  fault::FaultInjectingStreambuf buf(os.rdbuf(), fault::kSiteSaveWrite,
                                     nullptr);
  std::ostream faulty(&buf);
  faulty.write("aaaa", 4);
  EXPECT_TRUE(faulty.good());
  faulty.write("bbbb", 4);  // second put: the site fires
  EXPECT_FALSE(faulty.good());
  EXPECT_EQ(os.str(), "aaaa");
}

TEST(FaultStreambufTest, ReadSiteTruncatesTheGet) {
  FaultGuard guard;
  ASSERT_TRUE(fault::InstallSpec("io.load.read:nth=2").ok());
  std::istringstream is("aaaabbbb");
  fault::FaultInjectingStreambuf buf(is.rdbuf(), nullptr,
                                     fault::kSiteLoadRead);
  std::istream faulty(&buf);
  char block[4];
  faulty.read(block, 4);
  EXPECT_TRUE(faulty.good());
  EXPECT_EQ(std::string(block, 4), "aaaa");
  faulty.read(block, 4);  // second get: the site fires, short read
  EXPECT_FALSE(faulty.good());
}

// ------------------------------------------------- lifecycle sweeps --

/// Non-trivial model + expectations for the lifecycle sweeps: naive
/// bayes gives row-dependent predictions, so served output actually
/// checks the loaded model.
struct Lifecycle {
  Lifecycle()
      : data(MakeParityDataset(160, {5, 4, 6}, 77)),
        views(MakeParityViews(data, 78)) {
    EXPECT_TRUE(model.Fit(views.train).ok());
    expected = model.PredictAll(views.test);
  }

  Dataset data;
  test::ParityViews views;
  ml::NaiveBayes model;
  std::vector<uint8_t> expected;
};

/// Serves `views.test` through `served` and returns the predictions.
std::vector<uint8_t> ServePredictions(const ml::Classifier& served,
                                      const DataView& view) {
  std::ostringstream requests;
  for (size_t i = 0; i < view.num_rows(); ++i) {
    for (size_t j = 0; j < view.num_features(); ++j) {
      if (j > 0) requests << ' ';
      requests << view.feature(i, j);
    }
    requests << '\n';
  }
  std::istringstream in(requests.str());
  std::ostringstream out, err;
  serve::ServeConfig config;
  config.batch_size = 32;
  const auto summary = serve::ServeStream(served, in, out, err, config);
  EXPECT_TRUE(summary.ok()) << summary.status().ToString();
  std::vector<uint8_t> preds;
  std::istringstream lines(out.str());
  std::string line;
  while (std::getline(lines, line)) {
    preds.push_back(static_cast<uint8_t>(line == "1" ? 1 : 0));
  }
  return preds;
}

TEST(FaultSweepTest, EverySaveFaultLeavesTheOldModelIntact) {
  FaultGuard guard;
  Lifecycle fx;
  const std::string path =
      testing::TempDir() + "/hamlet_fault_save_sweep.hmlm";
  const std::string tmp = TempSiblingOf(path);

  for (const char* site :
       {fault::kSiteSaveOpen, fault::kSiteSaveWrite, fault::kSiteSaveFsync,
        fault::kSiteSaveRename}) {
    SCOPED_TRACE(site);
    // A good previous model version is on disk.
    fault::Clear();
    ASSERT_TRUE(io::SaveModelToFile(fx.model, path).ok());

    // The new save hits a persistent fault at this site.
    ASSERT_TRUE(fault::InstallSpec(std::string(site) + ":always").ok());
    const Status st = io::SaveModelToFile(fx.model, path);
    ASSERT_FALSE(st.ok());
    EXPECT_GE(fault::FireCount(site), 1u);

    // Clean failure: no temp sibling survives, and the previous file
    // still loads and predicts — a crashed save never corrupts serving.
    fault::Clear();
    EXPECT_FALSE(FileExists(tmp)) << st.ToString();
    auto loaded = io::LoadModelFromFile(path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_EQ(loaded.value()->PredictAll(fx.views.test), fx.expected);
  }
  std::remove(path.c_str());
}

TEST(FaultSweepTest, TransientLoadFaultsAreAbsorbedByRetry) {
  FaultGuard guard;
  Lifecycle fx;
  const std::string path =
      testing::TempDir() + "/hamlet_fault_load_retry.hmlm";
  ASSERT_TRUE(io::SaveModelToFile(fx.model, path).ok());

  for (const char* site : {fault::kSiteLoadOpen, fault::kSiteLoadRead}) {
    SCOPED_TRACE(site);
    ASSERT_TRUE(fault::InstallSpec(std::string(site) + ":nth=1").ok());

    // The plain load surfaces the transient fault as a Status...
    auto direct = io::LoadModelFromFile(path);
    ASSERT_FALSE(direct.ok());

    // ...and with the fault armed again, the retry wrapper absorbs it.
    ASSERT_TRUE(fault::InstallSpec(std::string(site) + ":nth=1").ok());
    auto retried = io::LoadModelFromFileWithRetry(path);
    ASSERT_TRUE(retried.ok()) << retried.status().ToString();
    EXPECT_EQ(fault::FireCount(site), 1u);
    EXPECT_EQ(retried.value()->PredictAll(fx.views.test), fx.expected);
  }
  std::remove(path.c_str());
}

TEST(FaultSweepTest, RetryGivesUpOnPersistentFaults) {
  FaultGuard guard;
  Lifecycle fx;
  const std::string path =
      testing::TempDir() + "/hamlet_fault_retry_exhaust.hmlm";
  ASSERT_TRUE(io::SaveModelToFile(fx.model, path).ok());
  ASSERT_TRUE(fault::InstallSpec("io.load.open:always").ok());

  io::LoadRetryConfig config;
  config.max_attempts = 2;
  config.initial_backoff = std::chrono::milliseconds(0);
  const auto loaded = io::LoadModelFromFileWithRetry(path, config);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(loaded.status().message().find("after 2 attempts"),
            std::string::npos);
  EXPECT_EQ(fault::CallCount(fault::kSiteLoadOpen), 2u);
  fault::Clear();
  std::remove(path.c_str());
}

TEST(FaultSweepTest, PermanentFailuresAreNotRetried) {
  FaultGuard guard;
  Lifecycle fx;
  const std::string path =
      testing::TempDir() + "/hamlet_fault_permanent.hmlm";
  ASSERT_TRUE(io::SaveModelToFile(fx.model, path).ok());

  // Corrupt the stored checksum: the load fails with kDataLoss, which
  // the retry wrapper must treat as permanent — exactly one attempt.
  {
    std::ifstream is(path, std::ios::binary);
    std::stringstream ss;
    ss << is.rdbuf();
    std::string bytes = ss.str();
    bytes[bytes.size() - 8] =
        static_cast<char>(bytes[bytes.size() - 8] ^ 0x10);
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os << bytes;
  }
  // Arm a far-off rule just to enable the passive call counters.
  ASSERT_TRUE(fault::InstallSpec("io.save.open:nth=1000").ok());
  const auto loaded = io::LoadModelFromFileWithRetry(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(fault::CallCount(fault::kSiteLoadOpen), 1u);
  std::remove(path.c_str());
}

TEST(FaultSweepTest, EverySiteClearsThroughTheFullLifecycle) {
  // The headline sweep: for each known site, arm a one-shot fault and
  // run save -> load-with-retry -> serve. The transient fault fires
  // exactly once somewhere in the pipeline; the pipeline's own recovery
  // (re-save after a failed save, retrying load) absorbs it, and the
  // served predictions still match the in-memory model bit for bit.
  FaultGuard guard;
  Lifecycle fx;
  const std::string path =
      testing::TempDir() + "/hamlet_fault_lifecycle.hmlm";
  const std::string tmp = TempSiblingOf(path);

  for (const std::string& site : fault::KnownSites()) {
    SCOPED_TRACE(site);
    std::remove(path.c_str());
    ASSERT_TRUE(fault::InstallSpec(site + ":nth=1").ok());

    Status saved = io::SaveModelToFile(fx.model, path);
    if (!saved.ok()) {
      // A save-site fault: clean failure, then the operator's natural
      // reaction — save again — succeeds with the fault consumed.
      EXPECT_FALSE(FileExists(tmp));
      saved = io::SaveModelToFile(fx.model, path);
    }
    ASSERT_TRUE(saved.ok()) << saved.ToString();

    auto loaded = io::LoadModelFromFileWithRetry(path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_EQ(fault::FireCount(site), 1u) << "site never fired";

    EXPECT_EQ(ServePredictions(*loaded.value(), fx.views.test),
              fx.expected);
    EXPECT_FALSE(FileExists(tmp));
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hamlet
