// Tests for hamlet/core/fk_smoothing: random and X_R-based reassignment of
// FK values unseen in training (paper §6.2).

#include <gtest/gtest.h>

#include "hamlet/common/rng.h"
#include "hamlet/core/fk_smoothing.h"
#include "hamlet/data/split.h"

namespace hamlet {
namespace core {
namespace {

Dataset MakeFkOnly(uint32_t m, const std::vector<uint32_t>& fks) {
  Dataset d({{"fk", m, FeatureRole::kForeignKey, 0}});
  for (uint32_t fk : fks) d.AppendRowUnchecked({fk}, 0);
  return d;
}

TEST(SeenCodesTest, MarksExactlyTrainingCodes) {
  Dataset d = MakeFkOnly(6, {0, 2, 2, 4});
  const std::vector<uint8_t> seen = SeenCodes(DataView(&d), 0);
  EXPECT_EQ(seen, (std::vector<uint8_t>{1, 0, 1, 0, 1, 0}));
}

TEST(RandomSmoothingTest, SeenCodesMapToThemselves) {
  std::vector<uint8_t> seen = {1, 0, 1, 0};
  Result<SmoothingMap> map = BuildRandomSmoothing(seen, 3);
  ASSERT_TRUE(map.ok());
  EXPECT_EQ(map.value().map[0], 0u);
  EXPECT_EQ(map.value().map[2], 2u);
  EXPECT_EQ(map.value().num_unseen, 2u);
  // Unseen codes land on seen ones.
  for (uint32_t v : {1u, 3u}) {
    const uint32_t target = map.value().map[v];
    EXPECT_TRUE(target == 0u || target == 2u);
  }
}

TEST(RandomSmoothingTest, FailsWithNothingSeen) {
  EXPECT_FALSE(BuildRandomSmoothing({0, 0, 0}, 1).ok());
}

TEST(RandomSmoothingTest, NoUnseenIsIdentity) {
  Result<SmoothingMap> map = BuildRandomSmoothing({1, 1, 1}, 1);
  ASSERT_TRUE(map.ok());
  EXPECT_EQ(map.value().num_unseen, 0u);
  for (uint32_t v = 0; v < 3; ++v) EXPECT_EQ(map.value().map[v], v);
}

TEST(XrSmoothingTest, PicksMinimumL0Neighbour) {
  // Dimension rows: 0:(0,0) seen, 1:(5,5) seen, 2:(0,1) unseen.
  // Code 2 is closer to row 0 (distance 1) than row 1 (distance 2).
  Table dim(TableSchema({{"a", 6}, {"b", 6}}));
  dim.AppendRowUnchecked({0, 0});
  dim.AppendRowUnchecked({5, 5});
  dim.AppendRowUnchecked({0, 1});
  Result<SmoothingMap> map = BuildXrSmoothing({1, 1, 0}, dim);
  ASSERT_TRUE(map.ok());
  EXPECT_EQ(map.value().map[2], 0u);
  EXPECT_EQ(map.value().num_unseen, 1u);
}

TEST(XrSmoothingTest, TieBreaksTowardSmallestCode) {
  // Unseen code 2:(1,1) is equidistant (1) from rows 0:(1,0) and 1:(0,1).
  Table dim(TableSchema({{"a", 2}, {"b", 2}}));
  dim.AppendRowUnchecked({1, 0});
  dim.AppendRowUnchecked({0, 1});
  dim.AppendRowUnchecked({1, 1});
  Result<SmoothingMap> map = BuildXrSmoothing({1, 1, 0}, dim);
  ASSERT_TRUE(map.ok());
  EXPECT_EQ(map.value().map[2], 0u);
}

TEST(XrSmoothingTest, ExactXrMatchWins) {
  Table dim(TableSchema({{"a", 4}}));
  dim.AppendRowUnchecked({3});
  dim.AppendRowUnchecked({1});
  dim.AppendRowUnchecked({1});  // unseen, identical X_R to row 1
  Result<SmoothingMap> map = BuildXrSmoothing({1, 1, 0}, dim);
  ASSERT_TRUE(map.ok());
  EXPECT_EQ(map.value().map[2], 1u);
}

TEST(XrSmoothingTest, ValidatesBitmapSize) {
  Table dim(TableSchema({{"a", 2}}));
  dim.AppendRowUnchecked({0});
  EXPECT_FALSE(BuildXrSmoothing({1, 0}, dim).ok());  // 2 codes, 1 row
}

TEST(ApplySmoothingTest, RewritesOnlyUnseenCodes) {
  Dataset d = MakeFkOnly(4, {0, 1, 3, 2});
  SmoothingMap map;
  map.map = {0, 1, 1, 3};  // code 2 -> 1
  map.num_unseen = 1;
  ASSERT_TRUE(ApplySmoothing(d, 0, map).ok());
  EXPECT_EQ(d.feature(0, 0), 0u);
  EXPECT_EQ(d.feature(3, 0), 1u);           // rewritten
  EXPECT_EQ(d.feature_spec(0).domain_size, 4u);  // domain unchanged
}

TEST(ApplySmoothingTest, ValidatesMapSize) {
  Dataset d = MakeFkOnly(4, {0});
  SmoothingMap map;
  map.map = {0, 1};
  EXPECT_FALSE(ApplySmoothing(d, 0, map).ok());
}

TEST(SmoothingEndToEnd, XrBasedBeatsRandomWhenXrCarriesSignal) {
  // OneXr-style setup: label determined by the dimension's Xr column.
  // Withhold a block of FK codes from training; X_R-based smoothing should
  // route those test rows to FK codes with the same Xr, random should not.
  Rng rng(13);
  const uint32_t nr = 60;
  Table dim(TableSchema({{"xr", 2}, {"noise", 2}}));
  std::vector<uint32_t> xr_of(nr);
  for (uint32_t r = 0; r < nr; ++r) {
    xr_of[r] = static_cast<uint32_t>(rng.UniformInt(2));
    dim.AppendRowUnchecked(
        {xr_of[r], static_cast<uint32_t>(rng.UniformInt(2))});
  }
  // Train rows use codes [0, 40); test rows use all codes.
  Dataset data({{"fk", nr, FeatureRole::kForeignKey, 0}});
  std::vector<uint32_t> train_rows, test_rows;
  for (int i = 0; i < 1200; ++i) {
    const bool is_test = i >= 800;
    const uint32_t fk = static_cast<uint32_t>(
        is_test ? rng.UniformInt(nr) : rng.UniformInt(40));
    data.AppendRowUnchecked({fk}, static_cast<uint8_t>(xr_of[fk]));
    (is_test ? test_rows : train_rows).push_back(static_cast<uint32_t>(i));
  }
  DataView train(&data, train_rows, {0});
  const std::vector<uint8_t> seen = SeenCodes(train, 0);

  auto accuracy_with = [&](const SmoothingMap& map) {
    Dataset copy = data;
    EXPECT_TRUE(ApplySmoothing(copy, 0, map).ok());
    // A trivial FK-majority "model": per seen FK code majority label from
    // training rows (isolates the smoothing quality from model details).
    std::vector<int> pos(nr, 0), tot(nr, 0);
    for (uint32_t r : train_rows) {
      ++tot[copy.feature(r, 0)];
      pos[copy.feature(r, 0)] += copy.label(r);
    }
    size_t hits = 0;
    for (uint32_t r : test_rows) {
      const uint32_t fk = copy.feature(r, 0);
      const uint8_t pred = (tot[fk] > 0 && 2 * pos[fk] > tot[fk]) ? 1 : 0;
      hits += pred == copy.label(r);
    }
    return static_cast<double>(hits) / test_rows.size();
  };

  Result<SmoothingMap> xr = BuildXrSmoothing(seen, dim);
  ASSERT_TRUE(xr.ok());
  Result<SmoothingMap> random = BuildRandomSmoothing(seen, 17);
  ASSERT_TRUE(random.ok());
  const double acc_xr = accuracy_with(xr.value());
  const double acc_random = accuracy_with(random.value());
  EXPECT_GT(acc_xr, 0.95);          // Xr determines the label exactly
  EXPECT_GT(acc_xr, acc_random);    // the paper's Figure 11 ordering
}

TEST(SmoothingTest, MethodNames) {
  EXPECT_STREQ(SmoothingMethodName(SmoothingMethod::kRandom), "random");
  EXPECT_STREQ(SmoothingMethodName(SmoothingMethod::kXrBased), "xr-based");
}

}  // namespace
}  // namespace core
}  // namespace hamlet
