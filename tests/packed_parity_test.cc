// Cross-backend parity harness for the packed-code hot loops (PR 10).
//
// The contract under test: the scalar, SWAR and native simd backends
// return bit-identical integer counts for every input, and therefore
// every learner family fits and predicts bit-identically whichever
// backend HAMLET_SIMD selects, at any thread count. Plus the
// PackedCodeMatrix layout/round-trip/bounds edge cases and the pinned
// 1-NN early-exit + tie-break semantics.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "hamlet/common/rng.h"
#include "hamlet/data/code_matrix.h"
#include "hamlet/data/dataset.h"
#include "hamlet/data/packed_code_matrix.h"
#include "hamlet/data/view.h"
#include "hamlet/ml/knn/one_nn.h"
#include "hamlet/ml/svm/kernel.h"
#include "hamlet/simd/simd.h"
#include "parity_util.h"

namespace hamlet {
namespace test {
namespace {

constexpr simd::Backend kAllBackends[] = {
    simd::Backend::kScalar, simd::Backend::kSwar, simd::Backend::kNative};

/// The definitional mismatch count the packed backends must reproduce.
size_t ReferenceMismatch(const uint32_t* a, const uint32_t* b, size_t d) {
  size_t mismatches = 0;
  for (size_t j = 0; j < d; ++j) mismatches += a[j] != b[j];
  return mismatches;
}

/// Random row-major codes for `rows` rows over per-feature domains.
std::vector<uint32_t> RandomCodes(Rng& rng, size_t rows,
                                  const std::vector<uint32_t>& domains) {
  std::vector<uint32_t> codes;
  codes.reserve(rows * domains.size());
  for (size_t i = 0; i < rows; ++i) {
    for (const uint32_t domain : domains) {
      codes.push_back(static_cast<uint32_t>(rng.UniformInt(domain)));
    }
  }
  return codes;
}

/// Dataset with explicit rows, for handcrafted 1-NN fixtures.
Dataset MakeDatasetFromRows(const std::vector<uint32_t>& domains,
                            const std::vector<std::vector<uint32_t>>& rows,
                            const std::vector<uint8_t>& labels) {
  std::vector<FeatureSpec> specs;
  specs.reserve(domains.size());
  for (size_t j = 0; j < domains.size(); ++j) {
    FeatureSpec spec;
    spec.name = "f" + std::to_string(j);
    spec.domain_size = domains[j];
    spec.role = FeatureRole::kHome;
    spec.dim_index = -1;
    specs.push_back(std::move(spec));
  }
  Dataset data(std::move(specs));
  for (size_t i = 0; i < rows.size(); ++i) {
    data.AppendRowUnchecked(rows[i], labels[i]);
  }
  return data;
}

// ---------------------------------------------------------------------
// PackedLayout shape math.

TEST(PackedLayoutTest, FieldGeometryAcrossDomainWidths) {
  // domain 2 -> 1 value bit + guard = 2-bit fields, 32 per word.
  const simd::PackedLayout two = simd::PackedLayout::ForMaxCode(1, 64);
  EXPECT_EQ(two.field_bits, 2u);
  EXPECT_EQ(two.fields_per_word, 32u);
  EXPECT_EQ(two.words_per_row, 2u);

  // domain 9 (max code 8) -> 4 value bits + guard = 5-bit fields.
  const simd::PackedLayout nine = simd::PackedLayout::ForMaxCode(8, 13);
  EXPECT_EQ(nine.field_bits, 5u);
  EXPECT_EQ(nine.fields_per_word, 12u);
  EXPECT_EQ(nine.words_per_row, 2u);

  // Max 32-bit code -> 32 value bits + guard = 33-bit fields, one per
  // word.
  const simd::PackedLayout huge =
      simd::PackedLayout::ForMaxCode(0xFFFFFFFEu, 3);
  EXPECT_EQ(huge.field_bits, 33u);
  EXPECT_EQ(huge.fields_per_word, 1u);
  EXPECT_EQ(huge.words_per_row, 3u);

  // Zero features pack to zero words.
  const simd::PackedLayout empty = simd::PackedLayout::ForMaxCode(5, 0);
  EXPECT_EQ(empty.words_per_row, 0u);

  // Every guard bit sits above its field's value bits.
  for (const auto& layout : {two, nine, huge}) {
    EXPECT_EQ(layout.guard_mask & layout.add_mask, 0u);
    EXPECT_EQ(static_cast<size_t>(64 / layout.field_bits),
              layout.fields_per_word);
  }
}

TEST(PackedLayoutTest, ForDomainsUsesLargestDomain) {
  const std::vector<uint32_t> domains = {2, 17, 3, 9};
  const simd::PackedLayout layout =
      simd::PackedLayout::ForDomains(domains.data(), domains.size());
  // Max code 16 -> 5 value bits + guard.
  EXPECT_EQ(layout.field_bits, 6u);
  EXPECT_EQ(layout.num_features, 4u);
}

// ---------------------------------------------------------------------
// PackedCodeMatrix round trip and edges.

TEST(PackedCodeMatrixTest, RoundTripMatchesCodeMatrix) {
  Rng rng(2024);
  const std::vector<uint32_t> domains = {4, 2, 33, 7, 2, 1000, 3};
  const Dataset data = MakeParityDataset(57, domains, 11);
  const CodeMatrix m((DataView(&data)));
  const PackedCodeMatrix packed(m);
  ASSERT_EQ(packed.num_rows(), m.num_rows());
  for (size_t i = 0; i < m.num_rows(); ++i) {
    for (size_t j = 0; j < m.num_features(); ++j) {
      EXPECT_EQ(packed.code_at(i, j), m.at(i, j)) << i << "," << j;
    }
  }
}

TEST(PackedCodeMatrixTest, ZeroRowAndZeroFeatureBuilds) {
  const simd::PackedLayout layout = simd::PackedLayout::ForMaxCode(3, 5);
  const PackedCodeMatrix no_rows(layout, nullptr, 0);
  EXPECT_EQ(no_rows.num_rows(), 0u);
  EXPECT_EQ(no_rows.num_words(), 0u);

  // Zero features: rows exist but span zero words, and comparisons see
  // zero mismatches.
  const simd::PackedLayout no_features = simd::PackedLayout::ForMaxCode(0, 0);
  const PackedCodeMatrix empty_rows(no_features, nullptr, 2);
  EXPECT_EQ(empty_rows.num_rows(), 2u);
  EXPECT_EQ(empty_rows.num_words(), 0u);
  for (const simd::Backend backend : kAllBackends) {
    EXPECT_EQ(simd::PackedMismatchCount(backend, no_features,
                                        empty_rows.row(0), empty_rows.row(1)),
              0u);
  }
}

#if !defined(NDEBUG) || defined(HAMLET_CHECK_BOUNDS)
TEST(PackedCodeMatrixDeathTest, OutOfBoundsAborts) {
  // Threadsafe style re-executes the binary for the death assertion, so
  // any pool threads other tests spawned don't confuse the forked child.
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  const std::vector<uint32_t> domains = {4, 4};
  const Dataset data = MakeParityDataset(3, domains, 5);
  const CodeMatrix m((DataView(&data)));
  const PackedCodeMatrix packed(m);
  EXPECT_DEATH((void)packed.row(3), "out of bounds");
  EXPECT_DEATH((void)packed.code_at(0, 2), "out of bounds");
}
#else
TEST(PackedCodeMatrixDeathTest, OutOfBoundsAborts) {
  GTEST_SKIP() << "bounds checks compiled out (NDEBUG without "
                  "HAMLET_CHECK_BOUNDS)";
}
#endif

// ---------------------------------------------------------------------
// Backend agreement on the counting primitives.

TEST(PackedPrimitiveParity, MismatchCountsAgreeAcrossShapes) {
  Rng rng(77);
  // Shapes stress the layout edges: no features, one feature, feature
  // counts that are not a multiple of the word lane count, a single row,
  // max-domain codes (one field per word), and long rows (words_per_row
  // >= 8 drives the native AVX2 block path where the host has it).
  const std::vector<std::pair<size_t, std::vector<uint32_t>>> shapes = {
      {3, {}},
      {6, std::vector<uint32_t>(1, 2)},
      {9, {2, 3, 5, 2, 9, 4, 2}},
      {1, {17, 3, 3, 8, 2}},
      {5, {4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4}},
      {4, {0xFFFFFFFFu, 0xFFFFFFFFu, 7}},
      {3, std::vector<uint32_t>(300, 2)},
      {3, std::vector<uint32_t>(517, 23)},
  };
  for (const auto& [rows, domains] : shapes) {
    const size_t d = domains.size();
    std::vector<uint32_t> codes = RandomCodes(rng, rows, domains);
    const simd::PackedLayout layout =
        simd::PackedLayout::ForDomains(domains.data(), d);
    const PackedCodeMatrix packed(layout, codes.data(), rows);
    for (size_t i = 0; i < rows; ++i) {
      for (size_t j = 0; j < rows; ++j) {
        const size_t ref =
            ReferenceMismatch(codes.data() + i * d, codes.data() + j * d, d);
        for (const simd::Backend backend : kAllBackends) {
          EXPECT_EQ(simd::PackedMismatchCount(backend, layout, packed.row(i),
                                              packed.row(j)),
                    ref)
              << "d=" << d << " backend=" << simd::BackendName(backend);
          EXPECT_EQ(simd::PackedMatchCount(backend, layout, packed.row(i),
                                           packed.row(j)),
                    d - ref);
        }
      }
    }
  }
}

TEST(PackedPrimitiveParity, AllEqualRowsHaveZeroMismatches) {
  const std::vector<uint32_t> domains = {5, 9, 2, 1000};
  std::vector<uint32_t> codes;
  for (size_t i = 0; i < 4; ++i) {
    codes.insert(codes.end(), {4, 8, 1, 999});
  }
  const simd::PackedLayout layout =
      simd::PackedLayout::ForDomains(domains.data(), domains.size());
  const PackedCodeMatrix packed(layout, codes.data(), 4);
  for (const simd::Backend backend : kAllBackends) {
    for (size_t i = 0; i < 4; ++i) {
      EXPECT_EQ(simd::PackedMismatchCount(backend, layout, packed.row(0),
                                          packed.row(i)),
                0u);
    }
  }
}

TEST(PackedPrimitiveParity, BoundedCountHonoursItsContract) {
  Rng rng(31);
  const std::vector<uint32_t> domains(41, 6);  // 41 features, 3-bit fields
  const size_t d = domains.size();
  const std::vector<uint32_t> codes = RandomCodes(rng, 8, domains);
  const simd::PackedLayout layout =
      simd::PackedLayout::ForDomains(domains.data(), d);
  const PackedCodeMatrix packed(layout, codes.data(), 8);
  for (size_t i = 0; i < 8; ++i) {
    for (size_t j = 0; j < 8; ++j) {
      const size_t ref = ReferenceMismatch(codes.data() + i * d, codes.data() + j * d, d);
      for (const size_t limit : {size_t{0}, size_t{1}, ref, ref + 1, d + 1}) {
        for (const simd::Backend backend : kAllBackends) {
          const size_t bounded = simd::PackedMismatchCountBounded(
              backend, layout, packed.row(i), packed.row(j), limit);
          // Partial sums never exceed the true count; a result below the
          // limit must be exact, and an abandoned scan must prove the
          // true count reached the limit too.
          EXPECT_LE(bounded, ref);
          if (bounded < limit) {
            EXPECT_EQ(bounded, ref);
          } else {
            EXPECT_GE(ref, limit);
          }
        }
      }
    }
  }
}

TEST(PackedPrimitiveParity, KernelValuesBitIdentical) {
  Rng rng(404);
  const std::vector<uint32_t> domains = {4, 23, 2, 7, 9, 2, 61, 3};
  const size_t d = domains.size();
  const size_t rows = 12;
  const std::vector<uint32_t> codes = RandomCodes(rng, rows, domains);
  const simd::PackedLayout layout =
      simd::PackedLayout::ForDomains(domains.data(), d);
  const PackedCodeMatrix packed(layout, codes.data(), rows);

  std::vector<ml::KernelConfig> configs(3);
  configs[0].type = ml::KernelType::kLinear;
  configs[1].type = ml::KernelType::kPoly;
  configs[1].gamma = 0.3;
  configs[1].degree = 2;
  configs[2].type = ml::KernelType::kRbf;
  configs[2].gamma = 0.07;

  for (const ml::KernelConfig& config : configs) {
    for (size_t i = 0; i < rows; ++i) {
      for (size_t j = 0; j < rows; ++j) {
        const double scalar_value =
            ml::KernelEval(config, codes.data() + i * d, codes.data() + j * d, d);
        for (const simd::Backend backend : kAllBackends) {
          // EXPECT_EQ, not NEAR: equal match counts through the shared
          // KernelFromMatches must give the same bits.
          EXPECT_EQ(ml::PackedKernelEval(config, backend, layout,
                                         packed.row(i), packed.row(j)),
                    scalar_value)
              << ml::KernelTypeName(config.type) << " backend="
              << simd::BackendName(backend);
        }
      }
    }
  }
}

// ---------------------------------------------------------------------
// Pinned 1-NN semantics under packing.

TEST(PackedOneNnSemantics, TieBreaksToLowestIndex) {
  // Rows 1 and 3 are identical; both are nearest to the query. The scan
  // must return index 1 on every backend.
  const std::vector<uint32_t> domains = {4, 4, 4};
  const Dataset data = MakeDatasetFromRows(
      domains,
      {{0, 0, 0}, {2, 1, 3}, {3, 3, 3}, {2, 1, 3}, {2, 1, 0}},
      {0, 1, 0, 1, 0});
  for (const char* backend : {"scalar", "swar", "native"}) {
    ScopedEnvVar simd_env("HAMLET_SIMD", backend);
    ml::OneNearestNeighbor model;
    ASSERT_TRUE(model.Fit(DataView(&data)).ok());
    const uint32_t query[] = {2, 1, 3};
    EXPECT_EQ(model.NearestIndexOfCodes(query), 1u) << backend;
    // A query matching row 0 exactly must short-circuit to index 0 even
    // though later rows tie at distance 0.
    const uint32_t zero_query[] = {0, 0, 0};
    EXPECT_EQ(model.NearestIndexOfCodes(zero_query), 0u) << backend;
  }
}

TEST(PackedOneNnSemantics, EarlyExitMatchesBruteForceScan) {
  // The packed scan abandons rows at word granularity once the running
  // distance reaches the incumbent best; the winner (and its tie-break)
  // must still match an exhaustive argmin on every backend.
  Rng rng(909);
  const std::vector<uint32_t> domains = {6, 6, 3, 9, 2, 17, 4, 6, 2, 5,
                                         3, 7, 2};
  const size_t d = domains.size();
  const size_t n = 64;
  std::vector<std::vector<uint32_t>> rows(n);
  std::vector<uint8_t> labels(n);
  for (size_t i = 0; i < n; ++i) {
    rows[i].resize(d);
    for (size_t j = 0; j < d; ++j) {
      rows[i][j] = static_cast<uint32_t>(rng.UniformInt(domains[j]));
    }
    labels[i] = static_cast<uint8_t>(rng.Bernoulli(0.5));
  }
  // Clone a row to guarantee at least one duplicate-distance tie.
  rows[40] = rows[7];
  const Dataset data = MakeDatasetFromRows(domains, rows, labels);

  for (const char* backend : {"scalar", "swar", "native"}) {
    ScopedEnvVar simd_env("HAMLET_SIMD", backend);
    ml::OneNearestNeighbor model;
    ASSERT_TRUE(model.Fit(DataView(&data)).ok());
    Rng query_rng(4242);
    for (size_t q = 0; q < 48; ++q) {
      std::vector<uint32_t> query(d);
      for (size_t j = 0; j < d; ++j) {
        query[j] = static_cast<uint32_t>(query_rng.UniformInt(domains[j]));
      }
      // Some queries coincide with training rows (distance 0 paths).
      if (q % 8 == 0) query = rows[q % n];
      size_t best = 0;
      size_t best_dist = d + 1;
      for (size_t r = 0; r < n; ++r) {
        const size_t dist =
            ReferenceMismatch(rows[r].data(), query.data(), d);
        if (dist < best_dist) {
          best_dist = dist;
          best = r;
        }
      }
      EXPECT_EQ(model.NearestIndexOfCodes(query.data()), best)
          << "backend=" << backend << " query=" << q;
    }
  }
}

// ---------------------------------------------------------------------
// Env grammar and backend availability.

TEST(SimdEnvTest, BackendGrammar) {
  const simd::Backend auto_backend = simd::NativeAvailable()
                                         ? simd::Backend::kNative
                                         : simd::Backend::kSwar;
  {
    ScopedEnvVar env("HAMLET_SIMD", "scalar");
    EXPECT_EQ(simd::ActiveBackend(), simd::Backend::kScalar);
  }
  {
    ScopedEnvVar env("HAMLET_SIMD", "swar");
    EXPECT_EQ(simd::ActiveBackend(), simd::Backend::kSwar);
  }
  {
    ScopedEnvVar env("HAMLET_SIMD", "native");
    // On hosts without hardware popcount the request degrades (with a
    // one-time warning) to swar.
    EXPECT_EQ(simd::ActiveBackend(), auto_backend);
  }
  for (const char* value : {"auto", "", "SCALAR", "avx512", "0"}) {
    ScopedEnvVar env("HAMLET_SIMD", value);
    EXPECT_EQ(simd::ActiveBackend(), auto_backend) << "\"" << value << "\"";
  }
  {
    ScopedEnvVar env("HAMLET_SIMD", nullptr);
    EXPECT_EQ(simd::ActiveBackend(), auto_backend);
  }
}

// ---------------------------------------------------------------------
// Packed stats plumbing.

TEST(PackedStatsTest, CountersAccumulateAndReset) {
  const std::vector<uint32_t> domains = {4, 9, 3};
  const Dataset data = MakeParityDataset(40, domains, 21);
  const ParityViews views = MakeParityViews(data, 3);

  simd::ResetGlobalPackedStats();
  ml::OneNearestNeighbor model;
  ASSERT_TRUE(model.Fit(views.train).ok());
  (void)model.PredictAll(views.test);
  const simd::PackedStats stats = simd::GlobalPackedStats();
  EXPECT_GE(stats.builds, 1u);
  EXPECT_GE(stats.rows, views.train.num_rows());
  EXPECT_GT(stats.build_words, 0u);
  // Every test query scanned the packed training rows.
  EXPECT_GE(stats.evals,
            views.test.num_rows() * views.train.num_rows());
  EXPECT_GT(stats.eval_words, 0u);

  simd::ResetGlobalPackedStats();
  const simd::PackedStats zeroed = simd::GlobalPackedStats();
  EXPECT_EQ(zeroed.builds, 0u);
  EXPECT_EQ(zeroed.rows, 0u);
  EXPECT_EQ(zeroed.build_words, 0u);
  EXPECT_EQ(zeroed.evals, 0u);
  EXPECT_EQ(zeroed.eval_words, 0u);
}

// ---------------------------------------------------------------------
// Every learner family, every backend, multiple thread counts.

TEST(PackedBackendParity, LearnersBitIdenticalAcrossBackendsAndThreads) {
  const std::vector<uint32_t> domains = {4, 9, 3, 17, 2, 33, 5};
  const Dataset data = MakeParityDataset(180, domains, 0xBADC0DE);
  const ParityViews views = MakeParityViews(data, 99);

  for (const ParityLearner& learner : ParityLearners()) {
    std::vector<uint8_t> baseline;
    bool have_baseline = false;
    for (const char* backend : {"scalar", "swar", "native"}) {
      for (const char* threads : {"1", "4"}) {
        ScopedEnvVar simd_env("HAMLET_SIMD", backend);
        ScopedThreads threads_env(threads);
        auto model = learner.make();
        ASSERT_TRUE(model->Fit(views.train).ok()) << learner.name;
        const std::vector<uint8_t> predictions =
            ExpectPredictParity(*model, views.test);
        if (!have_baseline) {
          baseline = predictions;
          have_baseline = true;
        } else {
          EXPECT_EQ(predictions, baseline)
              << learner.name << " diverges at backend=" << backend
              << " threads=" << threads;
        }
      }
    }
  }
}

}  // namespace
}  // namespace test
}  // namespace hamlet
