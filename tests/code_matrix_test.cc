// Tests for hamlet/data/code_matrix and the learner parity harness: the
// dense CodeMatrix batch path must be bit-identical to the per-row
// DataView access path for every classifier family, at 1 and 4 threads
// (PR 2's determinism contract), including view round-trips and the
// empty-view edge cases the dense layout makes easy to get wrong.

#include "hamlet/data/code_matrix.h"

#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "hamlet/ml/tree/tree_printer.h"
#include "parity_util.h"

namespace hamlet {
namespace {

using test::ExpectPredictParity;
using test::MakeParityDataset;
using test::MakeParityViews;
using test::ParityLearner;
using test::ParityLearners;
using test::ParityViews;
using test::RoundTripDataset;
using test::ScopedThreads;

// ------------------------------------------------------------ CodeMatrix --

TEST(CodeMatrixTest, MaterialisesScrambledView) {
  const Dataset data = MakeParityDataset(40, {4, 6, 3}, 7);
  // Non-identity row and feature selections.
  DataView view(&data, {5, 0, 17, 3, 9}, {2, 0});
  const CodeMatrix m(view);
  ASSERT_EQ(m.num_rows(), 5u);
  ASSERT_EQ(m.num_features(), 2u);
  for (size_t i = 0; i < m.num_rows(); ++i) {
    EXPECT_EQ(m.label(i), view.label(i));
    const uint32_t* row = m.row(i);
    for (size_t j = 0; j < m.num_features(); ++j) {
      EXPECT_EQ(m.at(i, j), view.feature(i, j)) << i << "," << j;
      EXPECT_EQ(row[j], view.feature(i, j)) << i << "," << j;
    }
  }
  EXPECT_EQ(m.domain_size(0), 3u);  // view feature 0 = dataset column 2
  EXPECT_EQ(m.domain_size(1), 4u);
  EXPECT_EQ(m.codes().size(), 10u);
  EXPECT_EQ(m.labels().size(), 5u);
}

TEST(CodeMatrixTest, MaxRowsCapKeepsPrefix) {
  const Dataset data = MakeParityDataset(30, {5, 2}, 11);
  DataView view(&data);
  const CodeMatrix full(view);
  const CodeMatrix capped(view, 8);
  ASSERT_EQ(capped.num_rows(), 8u);
  EXPECT_EQ(capped.num_features(), full.num_features());
  for (size_t i = 0; i < capped.num_rows(); ++i) {
    EXPECT_EQ(capped.label(i), full.label(i));
    for (size_t j = 0; j < capped.num_features(); ++j) {
      EXPECT_EQ(capped.at(i, j), full.at(i, j));
    }
  }
  // Cap of 0 (and any cap >= num_rows) keeps every row.
  EXPECT_EQ(CodeMatrix(view, 0).num_rows(), 30u);
  EXPECT_EQ(CodeMatrix(view, 1000).num_rows(), 30u);
}

TEST(CodeMatrixTest, EmptyViews) {
  const Dataset data = MakeParityDataset(10, {3, 4}, 3);
  const DataView no_rows(&data, {}, {0, 1});
  const CodeMatrix m0(no_rows);
  EXPECT_EQ(m0.num_rows(), 0u);
  EXPECT_EQ(m0.num_features(), 2u);
  EXPECT_TRUE(m0.codes().empty());
  EXPECT_EQ(m0.domain_size(1), 4u);

  const DataView no_features(&data, {0, 1, 2}, {});
  const CodeMatrix m1(no_features);
  EXPECT_EQ(m1.num_rows(), 3u);
  EXPECT_EQ(m1.num_features(), 0u);
  EXPECT_TRUE(m1.codes().empty());
  EXPECT_EQ(m1.label(2), no_features.label(2));
}

TEST(CodeMatrixTest, RoundTripDatasetPreservesEverything) {
  const Dataset data = MakeParityDataset(25, {4, 3, 5}, 13);
  const ParityViews views = MakeParityViews(data, 99);
  const Dataset round = RoundTripDataset(views.train);
  ASSERT_EQ(round.num_rows(), views.train.num_rows());
  ASSERT_EQ(round.num_features(), views.train.num_features());
  for (size_t j = 0; j < round.num_features(); ++j) {
    const FeatureSpec& a = round.feature_spec(j);
    const FeatureSpec& b = views.train.feature_spec(j);
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.domain_size, b.domain_size);
    EXPECT_EQ(a.role, b.role);
  }
  for (size_t i = 0; i < round.num_rows(); ++i) {
    EXPECT_EQ(round.label(i), views.train.label(i));
    for (size_t j = 0; j < round.num_features(); ++j) {
      EXPECT_EQ(round.feature(i, j), views.train.feature(i, j));
    }
  }
}

TEST(CodeMatrixTest, UnfittedTreePredictIsSafe) {
  // Predict on an unfitted tree must not touch the view (regression: the
  // shared walker used to materialise the row before the fitted check).
  const Dataset data = MakeParityDataset(5, {3, 2}, 9);
  const DataView view(&data);
  ml::DecisionTree tree;
  EXPECT_FALSE(tree.TryPredict(view, 0).ok());
  EXPECT_EQ(tree.Predict(view, 0), 0);
  EXPECT_EQ(tree.PredictAll(view), std::vector<uint8_t>(5, 0));
}

// -------------------------------------------------------- parity harness --

/// Parameterised over the HAMLET_THREADS value; every parity property must
/// hold both serially and with real pool parallelism.
class CodeMatrixParityTest : public ::testing::TestWithParam<const char*> {};

TEST_P(CodeMatrixParityTest, PredictPathsAreBitIdentical) {
  ScopedThreads env(GetParam());
  const Dataset data = MakeParityDataset(150, {4, 7, 3, 5}, 21);
  const ParityViews views = MakeParityViews(data, 5);
  for (const ParityLearner& learner : ParityLearners()) {
    SCOPED_TRACE(learner.name);
    std::unique_ptr<ml::Classifier> model = learner.make();
    ASSERT_TRUE(model->Fit(views.train).ok());
    ExpectPredictParity(*model, views.test);
    // The training view itself must also agree (train accuracy paths).
    ExpectPredictParity(*model, views.train);
  }
}

TEST_P(CodeMatrixParityTest, LargeViewParityExercisesParallelBatchPath) {
  ScopedThreads env(GetParam());
  // The dense batch path only fans out on the pool above
  // ForEachPredictRow's 512-row serial threshold; a small train view
  // keeps the fits cheap while the 1650-row test view forces every
  // learner's PredictAll through the parallel branch.
  const Dataset data = MakeParityDataset(1800, {4, 6, 3}, 83);
  Rng rng(12);
  std::vector<uint32_t> order(data.num_rows());
  std::iota(order.begin(), order.end(), 0u);
  rng.Shuffle(order);
  const DataView shuffled(&data, order,
                          std::vector<uint32_t>{2, 0, 1});
  std::vector<uint32_t> train_ids(150);
  std::iota(train_ids.begin(), train_ids.end(), 0u);
  std::vector<uint32_t> test_ids(data.num_rows() - train_ids.size());
  std::iota(test_ids.begin(), test_ids.end(),
            static_cast<uint32_t>(train_ids.size()));
  const DataView train = shuffled.SelectRows(train_ids);
  const DataView test = shuffled.SelectRows(test_ids);
  ASSERT_GE(test.num_rows(), 512u);
  for (const ParityLearner& learner : ParityLearners()) {
    SCOPED_TRACE(learner.name);
    std::unique_ptr<ml::Classifier> model = learner.make();
    ASSERT_TRUE(model->Fit(train).ok());
    ExpectPredictParity(*model, test);
  }
}

TEST_P(CodeMatrixParityTest, RoundTripFitMatchesDirectFit) {
  ScopedThreads env(GetParam());
  const Dataset data = MakeParityDataset(120, {5, 4, 6}, 31);
  const ParityViews views = MakeParityViews(data, 17);
  const Dataset round = RoundTripDataset(views.train);
  const DataView round_view(&round);
  for (const ParityLearner& learner : ParityLearners()) {
    SCOPED_TRACE(learner.name);
    std::unique_ptr<ml::Classifier> direct = learner.make();
    std::unique_ptr<ml::Classifier> through_matrix = learner.make();
    ASSERT_TRUE(direct->Fit(views.train).ok());
    ASSERT_TRUE(through_matrix->Fit(round_view).ok());
    EXPECT_EQ(direct->PredictAll(views.test),
              through_matrix->PredictAll(views.test));
  }
}

TEST_P(CodeMatrixParityTest, TreePrintedStructureSurvivesRoundTrip) {
  ScopedThreads env(GetParam());
  const Dataset data = MakeParityDataset(200, {6, 8, 4}, 43);
  const ParityViews views = MakeParityViews(data, 3);
  const Dataset round = RoundTripDataset(views.train);
  const DataView round_view(&round);

  ml::DecisionTree direct;
  ml::DecisionTree through_matrix;
  ASSERT_TRUE(direct.Fit(views.train).ok());
  ASSERT_TRUE(through_matrix.Fit(round_view).ok());
  EXPECT_GT(direct.num_nodes(), 1u);
  EXPECT_EQ(ml::PrintTree(direct, views.train),
            ml::PrintTree(through_matrix, round_view));
  EXPECT_EQ(ml::PrintFeatureUsage(direct, views.train),
            ml::PrintFeatureUsage(through_matrix, round_view));
}

TEST_P(CodeMatrixParityTest, ZeroFeatureViewsFitAndPredict) {
  ScopedThreads env(GetParam());
  const Dataset data = MakeParityDataset(60, {4, 3}, 57);
  std::vector<uint32_t> rows(data.num_rows());
  std::iota(rows.begin(), rows.end(), 0u);
  const DataView no_features(&data, rows, {});
  for (const ParityLearner& learner : ParityLearners()) {
    SCOPED_TRACE(learner.name);
    std::unique_ptr<ml::Classifier> model = learner.make();
    ASSERT_TRUE(model->Fit(no_features).ok());
    const std::vector<uint8_t> preds =
        ExpectPredictParity(*model, no_features);
    // With no features every row is indistinguishable: the prediction
    // must be constant across rows.
    for (uint8_t p : preds) EXPECT_EQ(p, preds[0]);
  }
}

TEST_P(CodeMatrixParityTest, EmptyTrainingViewIsRejected) {
  ScopedThreads env(GetParam());
  const Dataset data = MakeParityDataset(10, {3, 2}, 5);
  const DataView empty(&data, {}, {0, 1});
  for (const ParityLearner& learner : ParityLearners()) {
    SCOPED_TRACE(learner.name);
    std::unique_ptr<ml::Classifier> model = learner.make();
    const Status status = model->Fit(empty);
    EXPECT_FALSE(status.ok());
  }
}

TEST_P(CodeMatrixParityTest, PredictAllOnEmptyTestViewIsEmpty) {
  ScopedThreads env(GetParam());
  const Dataset data = MakeParityDataset(50, {4, 5}, 71);
  const ParityViews views = MakeParityViews(data, 2);
  const DataView no_rows(&data, {}, views.test.features());
  for (const ParityLearner& learner : ParityLearners()) {
    SCOPED_TRACE(learner.name);
    std::unique_ptr<ml::Classifier> model = learner.make();
    ASSERT_TRUE(model->Fit(views.train).ok());
    EXPECT_TRUE(model->PredictAll(no_rows).empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, CodeMatrixParityTest,
                         ::testing::Values("1", "4"),
                         [](const ::testing::TestParamInfo<const char*>& p) {
                           return std::string("threads_") + p.param;
                         });

// Predictions (and therefore accuracies) must be identical when the whole
// fit + score pipeline runs at different thread counts.
TEST(CodeMatrixParityThreadsTest, PredictionsIdenticalAcrossThreadCounts) {
  const Dataset data = MakeParityDataset(150, {4, 7, 3, 5}, 77);
  const ParityViews views = MakeParityViews(data, 29);
  for (const ParityLearner& learner : ParityLearners()) {
    SCOPED_TRACE(learner.name);
    std::vector<uint8_t> serial, parallel_preds;
    double serial_acc = 0.0, parallel_acc = 0.0;
    {
      ScopedThreads env("1");
      std::unique_ptr<ml::Classifier> model = learner.make();
      ASSERT_TRUE(model->Fit(views.train).ok());
      serial = model->PredictAll(views.test);
      serial_acc = ml::Accuracy(*model, views.test);
    }
    {
      ScopedThreads env("4");
      std::unique_ptr<ml::Classifier> model = learner.make();
      ASSERT_TRUE(model->Fit(views.train).ok());
      parallel_preds = model->PredictAll(views.test);
      parallel_acc = ml::Accuracy(*model, views.test);
    }
    EXPECT_EQ(serial, parallel_preds);
    EXPECT_DOUBLE_EQ(serial_acc, parallel_acc);
  }
}

}  // namespace
}  // namespace hamlet
