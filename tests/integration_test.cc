// Cross-cutting integration and property tests: kernel/one-hot identities,
// SMO KKT conditions, open-domain FK variant rules, CSV-to-model pipeline,
// and full-effort grid smoke.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "hamlet/common/rng.h"
#include "hamlet/core/experiment.h"
#include "hamlet/core/variants.h"
#include "hamlet/data/one_hot.h"
#include "hamlet/ml/metrics.h"
#include "hamlet/ml/svm/kernel.h"
#include "hamlet/ml/svm/smo.h"
#include "hamlet/ml/tree/decision_tree.h"
#include "hamlet/relational/csv.h"
#include "hamlet/relational/join.h"
#include "hamlet/synth/onexr.h"

namespace hamlet {
namespace {

// ------------------------------------------ kernel / one-hot identities --

TEST(KernelIdentityTest, LinearKernelEqualsOneHotDotOverD) {
  // Property: KernelEval(linear) == <u(a), u(b)> / d where u is the
  // explicit one-hot embedding. Checked on random rows.
  Rng rng(1);
  const size_t d = 6;
  std::vector<FeatureSpec> specs;
  for (size_t j = 0; j < d; ++j) {
    specs.push_back({"f" + std::to_string(j),
                     static_cast<uint32_t>(2 + j), FeatureRole::kHome, -1});
  }
  Dataset data(specs);
  for (int i = 0; i < 30; ++i) {
    std::vector<uint32_t> row(d);
    for (size_t j = 0; j < d; ++j) {
      row[j] = static_cast<uint32_t>(rng.UniformInt(2 + j));
    }
    data.AppendRowUnchecked(row, 0);
  }
  DataView view(&data);
  OneHotMap map(view);
  ml::KernelConfig lin{ml::KernelType::kLinear, 0.0, 2};
  ml::KernelConfig rbf{ml::KernelType::kRbf, 0.37, 2};

  std::vector<uint32_t> ua, ub;
  for (size_t a = 0; a < view.num_rows(); ++a) {
    for (size_t b = 0; b < view.num_rows(); ++b) {
      const std::vector<uint32_t> ra = view.RowCodes(a);
      const std::vector<uint32_t> rb = view.RowCodes(b);
      // Explicit one-hot dot product: count shared active units.
      map.ActiveUnits(view, a, ua);
      map.ActiveUnits(view, b, ub);
      size_t dot = 0;
      for (size_t j = 0; j < d; ++j) dot += ua[j] == ub[j];
      EXPECT_DOUBLE_EQ(ml::KernelEval(lin, ra.data(), rb.data(), d),
                       static_cast<double>(dot) / static_cast<double>(d));
      // RBF exponent: squared distance = 2 * (d - dot).
      const double expected =
          std::exp(-0.37 * 2.0 * static_cast<double>(d - dot));
      EXPECT_NEAR(ml::KernelEval(rbf, ra.data(), rb.data(), d), expected,
                  1e-12);
    }
  }
}

// --------------------------------------------------- SMO KKT conditions --

TEST(SmoKktTest, ConvergedSolutionSatisfiesKkt) {
  // Property: at convergence, every point satisfies the C-SVC KKT
  // conditions within tolerance:
  //   alpha=0   -> y f(x) >= 1 - tol
  //   0<alpha<C -> |y f(x) - 1| <= tol
  //   alpha=C   -> y f(x) <= 1 + tol
  Rng rng(7);
  const size_t n = 80, d = 5;
  std::vector<uint32_t> rows(n * d);
  for (auto& v : rows) v = static_cast<uint32_t>(rng.UniformInt(3));
  std::vector<int8_t> y(n);
  for (auto& v : y) v = rng.Bernoulli(0.5) ? 1 : -1;
  ml::KernelConfig kc{ml::KernelType::kRbf, 0.4, 2};
  const std::vector<float> gram = ml::ComputeGram(kc, rows, n, d);

  ml::SmoConfig cfg;
  cfg.C = 3.0;
  cfg.tolerance = 1e-3;
  cfg.max_iterations = 200000;
  Result<ml::SmoSolution> sol = ml::SolveSmo(gram, y, cfg);
  ASSERT_TRUE(sol.ok());
  ASSERT_TRUE(sol.value().converged);

  const double kkt_slack = 10 * cfg.tolerance;  // selection tol != KKT tol
  for (size_t i = 0; i < n; ++i) {
    double f = sol.value().bias;
    for (size_t j = 0; j < n; ++j) {
      f += sol.value().alpha[j] * y[j] * gram[i * n + j];
    }
    const double margin = y[i] * f;
    const double a = sol.value().alpha[i];
    if (a <= 1e-9) {
      EXPECT_GE(margin, 1.0 - kkt_slack) << "free point " << i;
    } else if (a >= cfg.C - 1e-9) {
      EXPECT_LE(margin, 1.0 + kkt_slack) << "bound point " << i;
    } else {
      EXPECT_NEAR(margin, 1.0, kkt_slack) << "sv " << i;
    }
  }
}

// ------------------------------------------- open-domain FK variant rule --

TEST(OpenDomainVariantTest, NoJoinKeepsUnavoidableForeignFeatures) {
  // A dimension whose FK is open-domain has no FK column in the join
  // output; the paper says such a table "can never be discarded", so
  // NoJoin must keep its foreign features while dropping the others'.
  Table d0(TableSchema({{"a", 2}}));
  d0.AppendRowUnchecked({0});
  Table d1(TableSchema({{"b", 2}, {"c", 3}}));
  d1.AppendRowUnchecked({0, 2});
  StarSchema star{Table(TableSchema({{"h", 2}}))};
  star.AddDimension("closed", std::move(d0));
  star.AddDimension("open", std::move(d1));
  ASSERT_TRUE(star.AppendFact({1}, {0, 0}, 1).ok());

  JoinOptions opts;
  opts.open_domain_fks = {1};
  Result<Dataset> joined = JoinAllTables(star, opts);
  ASSERT_TRUE(joined.ok());
  const Dataset& t = joined.value();

  const auto nojoin = core::SelectVariant(t, core::FeatureVariant::kNoJoin);
  // Expected: h, fk_closed, open.b, open.c — but NOT closed.a.
  std::vector<std::string> names;
  for (uint32_t c : nojoin) names.push_back(t.feature_spec(c).name);
  EXPECT_EQ(names, (std::vector<std::string>{"h", "fk_closed", "open.b",
                                             "open.c"}));

  // NoFK still keeps every foreign feature and no FK.
  const auto nofk = core::SelectVariant(t, core::FeatureVariant::kNoFK);
  names.clear();
  for (uint32_t c : nofk) names.push_back(t.feature_spec(c).name);
  EXPECT_EQ(names, (std::vector<std::string>{"h", "closed.a", "open.b",
                                             "open.c"}));
}

// ----------------------------------------------- CSV -> model pipeline --

TEST(PipelineTest, CsvToTreeEndToEnd) {
  // Ingest a labeled fact CSV, build the dataset by hand, train, predict.
  const std::string csv_text =
      "color,size,label\n"
      "red,small,1\n"
      "red,big,1\n"
      "blue,small,0\n"
      "blue,big,0\n"
      "red,small,1\n"
      "blue,big,0\n";
  Result<CsvTable> csv = ReadCsv(csv_text);
  ASSERT_TRUE(csv.ok());
  const Table& table = csv.value().table;
  const int label_col = table.schema().IndexOf("label");
  ASSERT_GE(label_col, 0);

  std::vector<FeatureSpec> specs;
  std::vector<size_t> feature_cols;
  for (size_t c = 0; c < table.num_columns(); ++c) {
    if (static_cast<int>(c) == label_col) continue;
    specs.push_back({table.schema().column(c).name,
                     table.schema().column(c).domain_size,
                     FeatureRole::kHome, -1});
    feature_cols.push_back(c);
  }
  Dataset data(specs);
  for (size_t r = 0; r < table.num_rows(); ++r) {
    std::vector<uint32_t> row;
    for (size_t c : feature_cols) row.push_back(table.at(r, c));
    // The CSV dictionary maps "1" and "0" to codes in first-seen order.
    const std::string& label_str =
        csv.value().dictionaries[static_cast<size_t>(label_col)]
                                [table.at(r, static_cast<size_t>(label_col))];
    data.AppendRowUnchecked(row, label_str == "1" ? 1 : 0);
  }

  ml::DecisionTree tree({.minsplit = 1, .cp = 0.0});
  ASSERT_TRUE(tree.Fit(DataView(&data)).ok());
  EXPECT_DOUBLE_EQ(ml::Accuracy(tree, DataView(&data)), 1.0);
}

TEST(PipelineTest, WriteFileRoundTrip) {
  const std::string path = testing::TempDir() + "/hamlet_roundtrip.csv";
  Dataset d({{"f", 2, FeatureRole::kHome, -1}});
  d.AppendRowUnchecked({1}, 1);
  d.AppendRowUnchecked({0}, 0);
  ASSERT_TRUE(WriteFile(path, WriteDatasetCsv(d)).ok());
  Result<CsvTable> read = ReadCsvFile(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value().table.num_rows(), 2u);
  std::remove(path.c_str());
}

// ------------------------------------------------- full-effort grid smoke --

TEST(FullEffortTest, TreeGridRunsEndToEnd) {
  synth::OneXrConfig cfg;
  cfg.ns = 300;
  cfg.nr = 15;
  cfg.seed = 5;
  StarSchema star = synth::GenerateOneXr(cfg);
  Result<core::PreparedData> prepared = core::Prepare(star, 6);
  ASSERT_TRUE(prepared.ok());
  // Full effort = the paper's 4x5 grid; on 300 rows this stays fast.
  Result<core::VariantResult> r =
      core::RunVariant(prepared.value(), core::ModelKind::kTreeGini,
                       core::FeatureVariant::kNoJoin, core::Effort::kFull);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r.value().test_accuracy, 0.6);
}

}  // namespace
}  // namespace hamlet
