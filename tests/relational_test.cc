// Tests for hamlet/relational: schema, table, star schema, KFK join, CSV.

#include <gtest/gtest.h>

#include <set>

#include "hamlet/common/rng.h"
#include "hamlet/relational/csv.h"
#include "hamlet/relational/join.h"
#include "hamlet/relational/schema.h"
#include "hamlet/relational/star_schema.h"
#include "hamlet/relational/table.h"

namespace hamlet {
namespace {

// ---------------------------------------------------------------- Schema --

TEST(SchemaTest, AddAndLookup) {
  TableSchema schema;
  ASSERT_TRUE(schema.AddColumn({"a", 4}).ok());
  ASSERT_TRUE(schema.AddColumn({"b", 2}).ok());
  EXPECT_EQ(schema.num_columns(), 2u);
  EXPECT_EQ(schema.IndexOf("a"), 0);
  EXPECT_EQ(schema.IndexOf("b"), 1);
  EXPECT_EQ(schema.IndexOf("c"), -1);
}

TEST(SchemaTest, RejectsDuplicateName) {
  TableSchema schema;
  ASSERT_TRUE(schema.AddColumn({"a", 4}).ok());
  EXPECT_FALSE(schema.AddColumn({"a", 2}).ok());
}

TEST(SchemaTest, RejectsZeroDomain) {
  TableSchema schema;
  EXPECT_FALSE(schema.AddColumn({"z", 0}).ok());
}

TEST(SchemaTest, ValidateRowChecksArityAndDomain) {
  TableSchema schema({{"a", 4}, {"b", 2}});
  EXPECT_TRUE(schema.ValidateRow({3, 1}).ok());
  EXPECT_FALSE(schema.ValidateRow({3}).ok());
  EXPECT_FALSE(schema.ValidateRow({4, 0}).ok());
  EXPECT_EQ(schema.ValidateRow({4, 0}).code(), StatusCode::kOutOfRange);
}

TEST(SchemaTest, Equality) {
  TableSchema a({{"x", 2}});
  TableSchema b({{"x", 2}});
  TableSchema c({{"x", 3}});
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

// ----------------------------------------------------------------- Table --

TEST(TableTest, AppendAndRead) {
  Table t(TableSchema({{"a", 4}, {"b", 2}}));
  ASSERT_TRUE(t.AppendRow({1, 0}).ok());
  ASSERT_TRUE(t.AppendRow({3, 1}).ok());
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.at(0, 0), 1u);
  EXPECT_EQ(t.at(1, 1), 1u);
  EXPECT_EQ(t.Row(1), (std::vector<uint32_t>{3, 1}));
  EXPECT_EQ(t.column(0), (std::vector<uint32_t>{1, 3}));
}

TEST(TableTest, AppendRejectsOutOfDomain) {
  Table t(TableSchema({{"a", 2}}));
  EXPECT_FALSE(t.AppendRow({2}).ok());
  EXPECT_EQ(t.num_rows(), 0u);
}

// ------------------------------------------------------------ StarSchema --

StarSchema MakeTinyStar() {
  // Fact: 1 home feature; one dimension "emp" with 2 foreign features.
  Table emp(TableSchema({{"state", 3}, {"rich", 2}}));
  emp.AppendRowUnchecked({0, 1});
  emp.AppendRowUnchecked({1, 0});
  emp.AppendRowUnchecked({2, 1});

  StarSchema star{Table(TableSchema({{"gender", 2}}))};
  star.AddDimension("emp", std::move(emp));
  EXPECT_TRUE(star.AppendFact({0}, {2}, 1).ok());
  EXPECT_TRUE(star.AppendFact({1}, {0}, 0).ok());
  EXPECT_TRUE(star.AppendFact({1}, {2}, 1).ok());
  EXPECT_TRUE(star.AppendFact({0}, {1}, 0).ok());
  return star;
}

TEST(StarSchemaTest, BasicAccounting) {
  StarSchema star = MakeTinyStar();
  EXPECT_EQ(star.num_facts(), 4u);
  EXPECT_EQ(star.num_dimensions(), 1u);
  EXPECT_TRUE(star.Validate().ok());
  EXPECT_DOUBLE_EQ(star.TupleRatio(0), 4.0 / 3.0);
}

TEST(StarSchemaTest, RejectsDanglingFk) {
  StarSchema star = MakeTinyStar();
  EXPECT_FALSE(star.AppendFact({0}, {3}, 1).ok());
}

TEST(StarSchemaTest, RejectsNonBinaryLabel) {
  StarSchema star = MakeTinyStar();
  EXPECT_FALSE(star.AppendFact({0}, {0}, 2).ok());
}

TEST(StarSchemaTest, RejectsWrongFkArity) {
  StarSchema star = MakeTinyStar();
  EXPECT_FALSE(star.AppendFact({0}, {}, 1).ok());
  EXPECT_FALSE(star.AppendFact({0}, {0, 0}, 1).ok());
}

// ------------------------------------------------------------------ Join --

TEST(JoinTest, SchemaOrderAndRoles) {
  StarSchema star = MakeTinyStar();
  const std::vector<FeatureSpec> specs = JoinedSchema(star);
  ASSERT_EQ(specs.size(), 4u);  // gender, fk_emp, emp.state, emp.rich
  EXPECT_EQ(specs[0].name, "gender");
  EXPECT_EQ(specs[0].role, FeatureRole::kHome);
  EXPECT_EQ(specs[1].name, "fk_emp");
  EXPECT_EQ(specs[1].role, FeatureRole::kForeignKey);
  EXPECT_EQ(specs[1].domain_size, 3u);  // |D_FK| = n_R
  EXPECT_EQ(specs[2].name, "emp.state");
  EXPECT_EQ(specs[2].role, FeatureRole::kForeign);
  EXPECT_EQ(specs[2].dim_index, 0);
  EXPECT_EQ(specs[3].name, "emp.rich");
}

TEST(JoinTest, GathersForeignFeaturesByFk) {
  StarSchema star = MakeTinyStar();
  Result<Dataset> joined = JoinAllTables(star);
  ASSERT_TRUE(joined.ok());
  const Dataset& t = joined.value();
  ASSERT_EQ(t.num_rows(), 4u);
  // Row 0: fk=2 -> emp row 2 = (state=2, rich=1).
  EXPECT_EQ(t.feature(0, 1), 2u);
  EXPECT_EQ(t.feature(0, 2), 2u);
  EXPECT_EQ(t.feature(0, 3), 1u);
  // Row 1: fk=0 -> (0, 1).
  EXPECT_EQ(t.feature(1, 2), 0u);
  EXPECT_EQ(t.feature(1, 3), 1u);
  EXPECT_EQ(t.label(0), 1);
  EXPECT_EQ(t.label(1), 0);
}

TEST(JoinTest, JoinPreservesFunctionalDependencyFkToXr) {
  // Property: in the joined output, rows agreeing on FK agree on all of
  // that dimension's foreign features (the FD the paper exploits).
  Rng rng(99);
  Table dim(TableSchema({{"x0", 4}, {"x1", 3}}));
  for (int r = 0; r < 10; ++r) {
    dim.AppendRowUnchecked({static_cast<uint32_t>(rng.UniformInt(4)),
                            static_cast<uint32_t>(rng.UniformInt(3))});
  }
  StarSchema star{Table(TableSchema({{"h", 2}}))};
  star.AddDimension("d", std::move(dim));
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(star.AppendFact({static_cast<uint32_t>(rng.UniformInt(2))},
                                {static_cast<uint32_t>(rng.UniformInt(10))},
                                static_cast<uint8_t>(rng.UniformInt(2)))
                    .ok());
  }
  Result<Dataset> joined = JoinAllTables(star);
  ASSERT_TRUE(joined.ok());
  const Dataset& t = joined.value();
  // fk column = 1; foreign columns = 2, 3.
  std::vector<int> seen_x0(10, -1), seen_x1(10, -1);
  for (size_t r = 0; r < t.num_rows(); ++r) {
    const uint32_t fk = t.feature(r, 1);
    if (seen_x0[fk] < 0) {
      seen_x0[fk] = static_cast<int>(t.feature(r, 2));
      seen_x1[fk] = static_cast<int>(t.feature(r, 3));
    } else {
      EXPECT_EQ(seen_x0[fk], static_cast<int>(t.feature(r, 2)));
      EXPECT_EQ(seen_x1[fk], static_cast<int>(t.feature(r, 3)));
    }
  }
}

TEST(JoinTest, OpenDomainFkIsExcludedButFeaturesJoined) {
  StarSchema star = MakeTinyStar();
  JoinOptions opts;
  opts.open_domain_fks = {0};
  Result<Dataset> joined = JoinAllTables(star, opts);
  ASSERT_TRUE(joined.ok());
  const Dataset& t = joined.value();
  ASSERT_EQ(t.num_features(), 3u);  // gender, emp.state, emp.rich
  EXPECT_EQ(t.IndexOf("fk_emp"), -1);
  EXPECT_GE(t.IndexOf("emp.state"), 0);
}

TEST(JoinTest, IncludeFksFalseDropsAllFks) {
  StarSchema star = MakeTinyStar();
  JoinOptions opts;
  opts.include_fks = false;
  Result<Dataset> joined = JoinAllTables(star, opts);
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(joined.value().IndexOf("fk_emp"), -1);
}

TEST(JoinTest, FailsOnEmptyDimension) {
  StarSchema star{Table(TableSchema({{"h", 2}}))};
  star.AddDimension("empty", Table(TableSchema({{"x", 2}})));
  Result<Dataset> joined = JoinAllTables(star);
  EXPECT_FALSE(joined.ok());
}

// ------------------------------------------------------------------- CSV --

TEST(CsvTest, ReadBuildsDictionaries) {
  const std::string text =
      "city,size\n"
      "sd,small\n"
      "la,big\n"
      "sd,big\n";
  Result<CsvTable> r = ReadCsv(text);
  ASSERT_TRUE(r.ok());
  const CsvTable& csv = r.value();
  EXPECT_EQ(csv.table.num_rows(), 3u);
  EXPECT_EQ(csv.table.schema().column(0).name, "city");
  EXPECT_EQ(csv.table.schema().column(0).domain_size, 2u);
  EXPECT_EQ(csv.dictionaries[0][0], "sd");
  EXPECT_EQ(csv.dictionaries[0][1], "la");
  EXPECT_EQ(csv.table.at(2, 0), 0u);  // third row city = "sd" -> code 0
  EXPECT_EQ(csv.table.at(2, 1), 1u);  // "big" -> code 1
}

TEST(CsvTest, ReadRejectsRaggedRows) {
  EXPECT_FALSE(ReadCsv("a,b\n1\n").ok());
}

TEST(CsvTest, ReadRejectsEmpty) {
  EXPECT_FALSE(ReadCsv("").ok());
}

TEST(CsvTest, WriteDatasetRoundTripsCodes) {
  Dataset d({{"f", 3, FeatureRole::kHome, -1}});
  ASSERT_TRUE(d.AppendRow({2}, 1).ok());
  ASSERT_TRUE(d.AppendRow({0}, 0).ok());
  const std::string text = WriteDatasetCsv(d);
  EXPECT_NE(text.find("f,label"), std::string::npos);
  EXPECT_NE(text.find("2,1"), std::string::npos);
  EXPECT_NE(text.find("0,0"), std::string::npos);
}

TEST(CsvTest, MissingFileIsNotFound) {
  Result<CsvTable> r = ReadCsvFile("/nonexistent/path.csv");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace hamlet
