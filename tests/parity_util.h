// Shared helpers for the CodeMatrix parity harness (code_matrix_test.cc):
// a deterministic synthetic dataset, scrambled composed views, a dataset
// round-trip through CodeMatrix, the classifier roster, and the
// per-classifier parity assertions between the per-row DataView predict
// path and the dense CodeMatrix batch path.

#ifndef HAMLET_TESTS_PARITY_UTIL_H_
#define HAMLET_TESTS_PARITY_UTIL_H_

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <functional>
#include <memory>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "hamlet/common/parallel.h"
#include "hamlet/common/rng.h"
#include "hamlet/data/code_matrix.h"
#include "hamlet/data/dataset.h"
#include "hamlet/data/view.h"
#include "hamlet/ml/ann/mlp.h"
#include "hamlet/ml/classifier.h"
#include "hamlet/ml/knn/one_nn.h"
#include "hamlet/ml/linear/logistic_regression.h"
#include "hamlet/ml/metrics.h"
#include "hamlet/ml/nb/naive_bayes.h"
#include "hamlet/ml/svm/svm.h"
#include "hamlet/ml/tree/decision_tree.h"

namespace hamlet {
namespace test {

/// Sets (or, with nullptr, unsets) an environment variable and restores
/// the prior state on destruction. Base guard for every HAMLET_* knob
/// the tests pin (thread counts, SMO cache budget, ...).
class ScopedEnvVar {
 public:
  ScopedEnvVar(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    if (value == nullptr) {
      unsetenv(name);
    } else {
      setenv(name, value, 1);
    }
  }
  ~ScopedEnvVar() {
    if (had_old_) {
      setenv(name_.c_str(), old_.c_str(), 1);
    } else {
      unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  bool had_old_ = false;
  std::string old_;
};

/// Sets HAMLET_THREADS and rebuilds the default pool; restores the prior
/// value (and rebuilds again) on destruction. Shared by this harness and
/// parallel_test.cc: the PR 2 determinism tests and the parity tests both
/// pin results at explicit thread counts.
class ScopedThreads {
 public:
  explicit ScopedThreads(const char* value)
      : env_("HAMLET_THREADS", value) {
    parallel::ResetDefaultPoolForTesting();
  }
  ~ScopedThreads() { parallel::ResetDefaultPoolForTesting(); }

 private:
  ScopedEnvVar env_;
};

/// Deterministic synthetic dataset: one column per entry of `domains`
/// (roles cycling home / foreign-key / foreign), codes drawn uniformly
/// from the seeded RNG, and labels correlated with feature 0 plus 10%
/// noise so every learner has signal to fit.
inline Dataset MakeParityDataset(size_t num_rows,
                                 const std::vector<uint32_t>& domains,
                                 uint64_t seed) {
  std::vector<FeatureSpec> specs;
  specs.reserve(domains.size());
  for (size_t j = 0; j < domains.size(); ++j) {
    FeatureSpec spec;
    spec.name = "f" + std::to_string(j);
    spec.domain_size = domains[j];
    spec.role = j % 3 == 0   ? FeatureRole::kHome
                : j % 3 == 1 ? FeatureRole::kForeignKey
                             : FeatureRole::kForeign;
    spec.dim_index = spec.role == FeatureRole::kHome ? -1 : 0;
    specs.push_back(std::move(spec));
  }
  Dataset data(std::move(specs));
  Rng rng(seed);
  std::vector<uint32_t> codes(domains.size());
  for (size_t i = 0; i < num_rows; ++i) {
    for (size_t j = 0; j < domains.size(); ++j) {
      codes[j] = static_cast<uint32_t>(rng.UniformInt(domains[j]));
    }
    uint8_t label = domains.empty()
                        ? static_cast<uint8_t>(rng.Bernoulli(0.5))
                        : static_cast<uint8_t>(2 * codes[0] >= domains[0]);
    if (rng.Bernoulli(0.1)) label = 1 - label;
    data.AppendRowUnchecked(codes, label);
  }
  return data;
}

/// Train/test views over `data` that exercise the view composition the
/// CodeMatrix materialisation depends on: a shuffled full view, narrowed
/// twice via SelectRows-of-SelectRows, with a non-identity feature order.
struct ParityViews {
  DataView train;
  DataView test;
};

inline ParityViews MakeParityViews(const Dataset& data, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint32_t> order(data.num_rows());
  std::iota(order.begin(), order.end(), 0u);
  rng.Shuffle(order);

  // Reversed feature order: parity must hold for any column permutation.
  std::vector<uint32_t> features(data.num_features());
  std::iota(features.begin(), features.end(), 0u);
  std::reverse(features.begin(), features.end());

  const DataView shuffled(&data, order, features);
  const size_t n_train = (data.num_rows() * 2) / 3;

  std::vector<uint32_t> train_ids(n_train);
  std::iota(train_ids.begin(), train_ids.end(), 0u);
  std::vector<uint32_t> test_ids(data.num_rows() - n_train);
  std::iota(test_ids.begin(), test_ids.end(),
            static_cast<uint32_t>(n_train));

  // Second SelectRows layer (an identity-but-recomposed selection) pins
  // the row-id remapping of nested views.
  std::vector<uint32_t> all_train(n_train);
  std::iota(all_train.begin(), all_train.end(), 0u);
  ParityViews views;
  views.train = shuffled.SelectRows(train_ids).SelectRows(all_train);
  views.test = shuffled.SelectRows(test_ids);
  return views;
}

/// Rebuilds a standalone Dataset from a view's CodeMatrix snapshot,
/// preserving feature specs (names, domains, roles). A model fit on the
/// round-trip dataset must behave exactly like one fit on the view.
inline Dataset RoundTripDataset(const DataView& view) {
  const CodeMatrix m(view);
  std::vector<FeatureSpec> specs;
  specs.reserve(view.num_features());
  for (size_t j = 0; j < view.num_features(); ++j) {
    specs.push_back(view.feature_spec(j));
  }
  Dataset data(std::move(specs));
  data.Reserve(m.num_rows());
  std::vector<uint32_t> codes(m.num_features());
  for (size_t i = 0; i < m.num_rows(); ++i) {
    for (size_t j = 0; j < m.num_features(); ++j) codes[j] = m.at(i, j);
    data.AppendRowUnchecked(codes, m.label(i));
  }
  return data;
}

/// One classifier family in the parity roster. The factory builds a fresh
/// (unfitted) instance; configurations are small enough for test speed.
struct ParityLearner {
  std::string name;
  std::function<std::unique_ptr<ml::Classifier>()> make;
};

inline std::vector<ParityLearner> ParityLearners() {
  std::vector<ParityLearner> learners;
  learners.push_back({"dt-gini", [] {
                        return std::make_unique<ml::DecisionTree>();
                      }});
  learners.push_back({"1nn", [] {
                        return std::make_unique<ml::OneNearestNeighbor>();
                      }});
  learners.push_back({"svm-linear", [] {
                        ml::SvmConfig config;
                        config.kernel.type = ml::KernelType::kLinear;
                        return std::make_unique<ml::KernelSvm>(config);
                      }});
  learners.push_back({"svm-rbf", [] {
                        ml::SvmConfig config;
                        config.kernel.type = ml::KernelType::kRbf;
                        config.kernel.gamma = 0.1;
                        return std::make_unique<ml::KernelSvm>(config);
                      }});
  learners.push_back({"naive-bayes", [] {
                        return std::make_unique<ml::NaiveBayes>();
                      }});
  learners.push_back({"logreg-l1", [] {
                        ml::LogisticRegressionConfig config;
                        config.nlambda = 5;
                        config.maxit = 50;
                        return std::make_unique<ml::LogisticRegressionL1>(
                            config);
                      }});
  learners.push_back({"ann-mlp", [] {
                        ml::MlpConfig config;
                        config.hidden_sizes = {8, 4};
                        config.epochs = 2;
                        return std::make_unique<ml::Mlp>(config);
                      }});
  return learners;
}

/// Asserts the dense batch path (PredictAll, CodeMatrix inside the hot
/// learners) is bit-identical to the per-row DataView path (Predict), and
/// that Evaluate's accuracy matches the per-row confusion. Returns the
/// predictions for cross-thread-count comparisons.
inline std::vector<uint8_t> ExpectPredictParity(const ml::Classifier& model,
                                                const DataView& view) {
  const std::vector<uint8_t> batch = model.PredictAll(view);
  EXPECT_EQ(batch.size(), view.num_rows());
  std::vector<uint8_t> per_row(view.num_rows());
  size_t hits = 0;
  for (size_t i = 0; i < view.num_rows(); ++i) {
    per_row[i] = model.Predict(view, i);
    hits += per_row[i] == view.label(i);
  }
  EXPECT_EQ(batch, per_row) << model.name();
  if (view.num_rows() > 0) {
    const double expected_acc =
        static_cast<double>(hits) / static_cast<double>(view.num_rows());
    EXPECT_DOUBLE_EQ(ml::Accuracy(model, view), expected_acc)
        << model.name();
  }
  return batch;
}

}  // namespace test
}  // namespace hamlet

#endif  // HAMLET_TESTS_PARITY_UTIL_H_
