// Tests for hamlet/core/partial_avoidance: MI estimation and the top-k
// partial join-avoidance feature sets (paper §5.2's trade-off space).

#include <gtest/gtest.h>

#include <cmath>

#include "hamlet/common/rng.h"
#include "hamlet/core/partial_avoidance.h"
#include "hamlet/core/variants.h"
#include "hamlet/data/split.h"

namespace hamlet {
namespace core {
namespace {

// ------------------------------------------------------------------- MI --

TEST(MutualInformationTest, PerfectPredictorHasLabelEntropy) {
  // X == Y: I(Y;X) = H(Y) = log 2 for balanced labels.
  Dataset d({{"x", 2, FeatureRole::kHome, -1}});
  for (int i = 0; i < 100; ++i) {
    d.AppendRowUnchecked({static_cast<uint32_t>(i % 2)},
                         static_cast<uint8_t>(i % 2));
  }
  EXPECT_NEAR(MutualInformationWithLabel(DataView(&d), 0), std::log(2.0),
              1e-9);
}

TEST(MutualInformationTest, IndependentFeatureHasNearZeroMi) {
  Rng rng(3);
  Dataset d({{"x", 4, FeatureRole::kHome, -1}});
  for (int i = 0; i < 4000; ++i) {
    d.AppendRowUnchecked({static_cast<uint32_t>(rng.UniformInt(4))},
                         rng.Bernoulli(0.5) ? 1 : 0);
  }
  EXPECT_LT(MutualInformationWithLabel(DataView(&d), 0), 0.005);
}

TEST(MutualInformationTest, MonotoneInSignalStrength) {
  auto mi_for = [](double flip) {
    Rng rng(5);
    Dataset d({{"x", 2, FeatureRole::kHome, -1}});
    for (int i = 0; i < 3000; ++i) {
      const uint32_t x = static_cast<uint32_t>(rng.UniformInt(2));
      const uint8_t y = rng.Bernoulli(flip)
                            ? static_cast<uint8_t>(1 - x)
                            : static_cast<uint8_t>(x);
      d.AppendRowUnchecked({x}, y);
    }
    return MutualInformationWithLabel(DataView(&d), 0);
  };
  EXPECT_GT(mi_for(0.05), mi_for(0.2));
  EXPECT_GT(mi_for(0.2), mi_for(0.45));
}

TEST(MutualInformationTest, EmptyViewIsZero) {
  Dataset d({{"x", 2, FeatureRole::kHome, -1}});
  d.AppendRowUnchecked({0}, 0);
  DataView empty(&d, {}, {0});
  EXPECT_DOUBLE_EQ(MutualInformationWithLabel(empty, 0), 0.0);
}

// ------------------------------------------------------------- ranking --

Dataset MakeJoinedWithSignal(uint64_t seed) {
  // Two dims; dim 0's "good" column determines Y, everything else noise.
  Dataset d({{"h", 2, FeatureRole::kHome, -1},
             {"fk_a", 10, FeatureRole::kForeignKey, 0},
             {"fk_b", 10, FeatureRole::kForeignKey, 1},
             {"a.good", 2, FeatureRole::kForeign, 0},
             {"a.noise", 4, FeatureRole::kForeign, 0},
             {"b.noise1", 3, FeatureRole::kForeign, 1},
             {"b.noise2", 3, FeatureRole::kForeign, 1}});
  Rng rng(seed);
  for (int i = 0; i < 1200; ++i) {
    const uint32_t good = static_cast<uint32_t>(rng.UniformInt(2));
    d.AppendRowUnchecked({static_cast<uint32_t>(rng.UniformInt(2)),
                          static_cast<uint32_t>(rng.UniformInt(10)),
                          static_cast<uint32_t>(rng.UniformInt(10)), good,
                          static_cast<uint32_t>(rng.UniformInt(4)),
                          static_cast<uint32_t>(rng.UniformInt(3)),
                          static_cast<uint32_t>(rng.UniformInt(3))},
                         static_cast<uint8_t>(good));
  }
  return d;
}

TEST(RankingTest, SignalColumnRanksFirst) {
  Dataset d = MakeJoinedWithSignal(7);
  DataView train(&d);
  const auto ranking = RankForeignFeatures(d, train);
  ASSERT_EQ(ranking.size(), 4u);  // only kForeign columns
  EXPECT_EQ(d.feature_spec(ranking[0].column).name, "a.good");
  EXPECT_GT(ranking[0].mutual_information,
            5 * ranking[1].mutual_information);
  // Descending order throughout.
  for (size_t k = 1; k < ranking.size(); ++k) {
    EXPECT_GE(ranking[k - 1].mutual_information,
              ranking[k].mutual_information);
  }
}

TEST(RankingTest, FormatContainsAllRows) {
  Dataset d = MakeJoinedWithSignal(8);
  DataView train(&d);
  const std::string text = FormatRanking(d, RankForeignFeatures(d, train));
  EXPECT_NE(text.find("a.good"), std::string::npos);
  EXPECT_NE(text.find("b.noise2"), std::string::npos);
}

// --------------------------------------------------- partial avoidance --

TEST(PartialAvoidanceTest, KZeroIsNoJoin) {
  Dataset d = MakeJoinedWithSignal(9);
  DataView train(&d);
  EXPECT_EQ(SelectPartialAvoidance(d, train, 0),
            SelectVariant(d, FeatureVariant::kNoJoin));
}

TEST(PartialAvoidanceTest, KLargeIsJoinAll) {
  Dataset d = MakeJoinedWithSignal(10);
  DataView train(&d);
  EXPECT_EQ(SelectPartialAvoidance(d, train, 100),
            SelectVariant(d, FeatureVariant::kJoinAll));
}

TEST(PartialAvoidanceTest, KOneKeepsTopFeaturePerDimension) {
  Dataset d = MakeJoinedWithSignal(11);
  DataView train(&d);
  const auto cols = SelectPartialAvoidance(d, train, 1);
  // home + 2 fks + 1 foreign per dim = 5 columns.
  ASSERT_EQ(cols.size(), 5u);
  bool has_good = false;
  size_t dim1_foreign = 0;
  for (uint32_t c : cols) {
    if (d.feature_spec(c).name == "a.good") has_good = true;
    if (d.feature_spec(c).role == FeatureRole::kForeign &&
        d.feature_spec(c).dim_index == 1) {
      ++dim1_foreign;
    }
  }
  EXPECT_TRUE(has_good);  // the signal column must be the dim-0 pick
  EXPECT_EQ(dim1_foreign, 1u);
}

TEST(PartialAvoidanceTest, SubsetMonotoneInK) {
  // Property: the k-subset is contained in the (k+1)-subset.
  Dataset d = MakeJoinedWithSignal(12);
  DataView train(&d);
  std::vector<uint32_t> prev = SelectPartialAvoidance(d, train, 0);
  for (size_t k = 1; k <= 3; ++k) {
    const std::vector<uint32_t> cur = SelectPartialAvoidance(d, train, k);
    for (uint32_t c : prev) {
      EXPECT_NE(std::find(cur.begin(), cur.end(), c), cur.end())
          << "column " << c << " dropped when k grew to " << k;
    }
    prev = cur;
  }
}

}  // namespace
}  // namespace core
}  // namespace hamlet
