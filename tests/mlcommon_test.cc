// Tests for hamlet/ml common infrastructure: metrics, grid search,
// bias-variance decomposition.

#include <gtest/gtest.h>

#include <atomic>

#include "hamlet/common/rng.h"
#include "hamlet/data/dataset.h"
#include "hamlet/data/split.h"
#include "hamlet/data/view.h"
#include "hamlet/ml/bias_variance.h"
#include "hamlet/ml/grid_search.h"
#include "hamlet/ml/metrics.h"
#include "hamlet/ml/tree/decision_tree.h"

namespace hamlet {
namespace ml {
namespace {

// --------------------------------------------------------------- metrics --

/// Constant classifier used to exercise the metric plumbing.
class ConstantModel : public Classifier {
 public:
  explicit ConstantModel(uint8_t value) : value_(value) {}
  Status Fit(const DataView&) override { return Status::OK(); }
  uint8_t Predict(const DataView&, size_t) const override { return value_; }
  std::string name() const override { return "const"; }

 private:
  uint8_t value_;
};

Dataset MakeLabeled(const std::vector<uint8_t>& labels) {
  Dataset d({{"f", 2, FeatureRole::kHome, -1}});
  for (uint8_t y : labels) d.AppendRowUnchecked({0}, y);
  return d;
}

TEST(MetricsTest, ConfusionCounts) {
  Dataset d = MakeLabeled({1, 1, 0, 0, 1});
  ConstantModel ones(1);
  ConfusionMatrix cm = Evaluate(ones, DataView(&d));
  EXPECT_EQ(cm.tp, 3u);
  EXPECT_EQ(cm.fp, 2u);
  EXPECT_EQ(cm.tn, 0u);
  EXPECT_EQ(cm.fn, 0u);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 0.6);
  EXPECT_DOUBLE_EQ(cm.error_rate(), 0.4);
  EXPECT_DOUBLE_EQ(cm.precision(), 0.6);
  EXPECT_DOUBLE_EQ(cm.recall(), 1.0);
  EXPECT_NEAR(cm.f1(), 0.75, 1e-12);
}

TEST(MetricsTest, EmptyViewDegenerates) {
  Dataset d = MakeLabeled({1});
  DataView empty(&d, {}, {0});
  ConstantModel ones(1);
  EXPECT_DOUBLE_EQ(Accuracy(ones, empty), 0.0);
}

TEST(MetricsTest, PredictionAccuracy) {
  EXPECT_DOUBLE_EQ(PredictionAccuracy({1, 0, 1}, {1, 1, 1}), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(PredictionAccuracy({}, {}), 0.0);
}

// ----------------------------------------------------------- grid search --

TEST(ParamGridTest, EnumeratesCartesianProduct) {
  ParamGrid grid;
  grid.Add("a", {1, 2}).Add("b", {10, 20, 30});
  const auto all = grid.Enumerate();
  ASSERT_EQ(all.size(), 6u);
  EXPECT_DOUBLE_EQ(all[0].at("a"), 1);
  EXPECT_DOUBLE_EQ(all[0].at("b"), 10);
  EXPECT_DOUBLE_EQ(all[5].at("a"), 2);
  EXPECT_DOUBLE_EQ(all[5].at("b"), 30);
}

TEST(ParamGridTest, EmptyGridYieldsOneAssignment) {
  EXPECT_EQ(ParamGrid().Enumerate().size(), 1u);
}

TEST(ParamGridTest, EnumerationOrderIsPinnedRowMajor) {
  // The full enumeration order is a contract: parallel grid search breaks
  // ties by enumeration index, so this order must never change. First
  // axis varies slowest, last axis fastest.
  ParamGrid grid;
  grid.Add("a", {1, 2}).Add("b", {10, 20, 30});
  const auto all = grid.Enumerate();
  const std::vector<std::pair<double, double>> expected = {
      {1, 10}, {1, 20}, {1, 30}, {2, 10}, {2, 20}, {2, 30}};
  ASSERT_EQ(all.size(), expected.size());
  for (size_t i = 0; i < all.size(); ++i) {
    EXPECT_DOUBLE_EQ(all[i].at("a"), expected[i].first) << "index " << i;
    EXPECT_DOUBLE_EQ(all[i].at("b"), expected[i].second) << "index " << i;
  }
}

TEST(ParamGridTest, EmptyAxisAnnihilatesTheProduct) {
  ParamGrid grid;
  grid.Add("a", {1, 2}).Add("empty", {});
  EXPECT_EQ(grid.Enumerate().size(), 0u);
}

TEST(ParamGridTest, ParamOrFallback) {
  ParamMap m{{"x", 2.0}};
  EXPECT_DOUBLE_EQ(ParamOr(m, "x", 9.0), 2.0);
  EXPECT_DOUBLE_EQ(ParamOr(m, "y", 9.0), 9.0);
}

/// Model whose validation accuracy is directly controlled by a parameter:
/// accuracy = 1 when p == target else fraction p/10. Lets the test verify
/// the search picks the argmax.
class TunableModel : public Classifier {
 public:
  explicit TunableModel(double p) : p_(p) {}
  Status Fit(const DataView&) override { return Status::OK(); }
  uint8_t Predict(const DataView& view, size_t i) const override {
    // Correct prediction iff p_ == 3 (the "good" setting); else constant 0.
    return p_ == 3.0 ? view.label(i) : 0;
  }
  std::string name() const override { return "tunable"; }

 private:
  double p_;
};

TEST(GridSearchTest, PicksBestValidationConfig) {
  Dataset d = MakeLabeled({1, 1, 1, 0});
  DataView train(&d, {0, 1}, {0});
  DataView val(&d, {2, 3}, {0});
  ParamGrid grid;
  grid.Add("p", {1, 2, 3, 4});
  Result<GridSearchResult> r = GridSearch(
      [](const ParamMap& p) {
        return std::make_unique<TunableModel>(p.at("p"));
      },
      grid, train, val);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value().best_params.at("p"), 3.0);
  EXPECT_DOUBLE_EQ(r.value().best_val_accuracy, 1.0);
  EXPECT_EQ(r.value().configurations_tried, 4u);
}

TEST(GridSearchTest, EmptyTrainFails) {
  Dataset d = MakeLabeled({1});
  DataView train(&d, {}, {0});
  DataView val(&d, {0}, {0});
  Result<GridSearchResult> r = GridSearch(
      [](const ParamMap&) { return std::make_unique<ConstantModel>(1); },
      ParamGrid(), train, val);
  EXPECT_FALSE(r.ok());
}

TEST(GridSearchTest, TiesGoToFirstEnumerated) {
  Dataset d = MakeLabeled({1, 1});
  DataView train(&d, {0}, {0});
  DataView val(&d, {1}, {0});
  ParamGrid grid;
  grid.Add("p", {7, 8});
  Result<GridSearchResult> r = GridSearch(
      [](const ParamMap&) { return std::make_unique<ConstantModel>(1); },
      grid, train, val);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value().best_params.at("p"), 7.0);
}

TEST(GridSearchTest, WorksWithRealTree) {
  Rng rng(1);
  Dataset d({{"sig", 2, FeatureRole::kHome, -1}});
  for (int i = 0; i < 200; ++i) {
    const uint32_t s = static_cast<uint32_t>(rng.UniformInt(2));
    d.AppendRowUnchecked({s}, static_cast<uint8_t>(s));
  }
  TrainValTest split = SplitRows(200, 0.5, 0.25, 2);
  SplitViews views = MakeSplitViews(d, split, {0});
  ParamGrid grid;
  grid.Add("minsplit", {1, 10}).Add("cp", {0.0, 0.01});
  Result<GridSearchResult> r = GridSearch(
      [](const ParamMap& p) {
        DecisionTreeConfig cfg;
        cfg.minsplit = static_cast<size_t>(p.at("minsplit"));
        cfg.cp = p.at("cp");
        return std::make_unique<DecisionTree>(cfg);
      },
      grid, views.train, views.val);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value().best_val_accuracy, 1.0);
  EXPECT_DOUBLE_EQ(Accuracy(*r.value().best_model, views.test), 1.0);
}

// --------------------------------------------------------- bias-variance --

TEST(BiasVarianceTest, ZeroVarianceWhenRunsAgree) {
  std::vector<std::vector<uint8_t>> runs = {{1, 0, 1}, {1, 0, 1}};
  std::vector<uint8_t> labels = {1, 0, 0};
  Result<BiasVariance> r = DecomposePredictions(runs, labels, labels);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value().variance, 0.0);
  EXPECT_DOUBLE_EQ(r.value().net_variance, 0.0);
  // One of three points is mispredicted by the (stable) main prediction.
  EXPECT_NEAR(r.value().bias, 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(r.value().mean_error, 1.0 / 3.0, 1e-12);
}

TEST(BiasVarianceTest, UnbiasedVarianceIsPositiveNetVariance) {
  // Point 0: main = 1 (3 of 4 runs), optimal = 1 -> unbiased, var = 0.25.
  std::vector<std::vector<uint8_t>> runs = {{1}, {1}, {1}, {0}};
  std::vector<uint8_t> labels = {1};
  Result<BiasVariance> r = DecomposePredictions(runs, labels, labels);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value().bias, 0.0);
  EXPECT_DOUBLE_EQ(r.value().variance_unbiased, 0.25);
  EXPECT_DOUBLE_EQ(r.value().net_variance, 0.25);
}

TEST(BiasVarianceTest, BiasedVarianceReducesNetVariance) {
  // Main = 0 (3 of 4 runs) but optimal = 1 -> biased point; its variance
  // contributes negatively (disagreeing runs are actually right).
  std::vector<std::vector<uint8_t>> runs = {{0}, {0}, {0}, {1}};
  std::vector<uint8_t> labels = {1};
  Result<BiasVariance> r = DecomposePredictions(runs, labels, labels);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value().bias, 1.0);
  EXPECT_DOUBLE_EQ(r.value().variance_biased, 0.25);
  EXPECT_DOUBLE_EQ(r.value().net_variance, -0.25);
}

TEST(BiasVarianceTest, DomingosIdentityHoldsWithoutNoise) {
  // With y* == labels (no Bayes noise), E[error] = bias + net variance.
  Rng rng(11);
  const size_t points = 50, runs = 9;
  std::vector<uint8_t> labels(points);
  for (auto& y : labels) y = static_cast<uint8_t>(rng.UniformInt(2));
  std::vector<std::vector<uint8_t>> preds(runs,
                                          std::vector<uint8_t>(points));
  for (auto& run : preds) {
    for (size_t i = 0; i < points; ++i) {
      run[i] = rng.Bernoulli(0.3) ? static_cast<uint8_t>(1 - labels[i])
                                  : labels[i];
    }
  }
  Result<BiasVariance> r = DecomposePredictions(preds, labels, labels);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.value().mean_error,
              r.value().bias + r.value().net_variance, 1e-9);
}

TEST(BiasVarianceTest, ValidatesInput) {
  EXPECT_FALSE(DecomposePredictions({}, {1}, {1}).ok());
  EXPECT_FALSE(DecomposePredictions({{1, 0}}, {1}, {1}).ok());
  EXPECT_FALSE(DecomposePredictions({{1}}, {1}, {1, 0}).ok());
}

TEST(BiasVarianceTest, MonteCarloDriverRunsCallback) {
  std::vector<uint8_t> labels = {1, 0};
  std::atomic<size_t> calls{0};  // runs may execute on pool workers
  Result<BiasVariance> r = MonteCarloBiasVariance(
      5,
      [&](size_t) {
        calls.fetch_add(1);
        return std::vector<uint8_t>{1, 0};
      },
      labels, labels);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(calls.load(), 5u);
  EXPECT_DOUBLE_EQ(r.value().mean_error, 0.0);
  EXPECT_EQ(r.value().num_runs, 5u);
}

}  // namespace
}  // namespace ml
}  // namespace hamlet
