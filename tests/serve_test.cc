// Serving-layer tests: request parsing/validation, batching, stats, and
// parity between served predictions and the in-process PredictAll path
// (including through a Save/Load round trip, which is how hamlet_serve
// actually gets its model).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "hamlet/io/serialize.h"
#include "hamlet/ml/majority.h"
#include "hamlet/serve/server.h"
#include "hamlet/serve/stats.h"
#include "parity_util.h"

namespace hamlet {
namespace {

using test::MakeParityDataset;
using test::MakeParityViews;
using test::ParityLearner;
using test::ParityLearners;
using test::ScopedEnvVar;
using test::ScopedThreads;

/// Renders `view`'s rows as request lines in the serve wire format.
std::string RequestLines(const DataView& view) {
  std::ostringstream os;
  for (size_t i = 0; i < view.num_rows(); ++i) {
    for (size_t j = 0; j < view.num_features(); ++j) {
      if (j > 0) os << ' ';
      os << view.feature(i, j);
    }
    os << '\n';
  }
  return os.str();
}

/// Parses serve output ("0\n1\n...") back into a label vector.
std::vector<uint8_t> ParsePredictions(const std::string& out) {
  std::vector<uint8_t> preds;
  for (char c : out) {
    if (c == '0' || c == '1') preds.push_back(c == '1' ? 1 : 0);
  }
  return preds;
}

TEST(ServeTest, ServedPredictionsMatchPredictAllThroughSaveLoad) {
  const Dataset data = MakeParityDataset(200, {6, 4, 7, 3}, 41);
  const auto views = MakeParityViews(data, 42);
  const std::string requests = RequestLines(views.test);

  for (const ParityLearner& learner : ParityLearners()) {
    SCOPED_TRACE(learner.name);
    auto model = learner.make();
    ASSERT_TRUE(model->Fit(views.train).ok());
    const std::vector<uint8_t> expected = model->PredictAll(views.test);

    // Round-trip through the model format, as hamlet_serve does.
    std::ostringstream saved(std::ios::binary);
    ASSERT_TRUE(io::SaveModel(*model, saved).ok());
    std::istringstream loaded_is(saved.str(), std::ios::binary);
    auto loaded = io::LoadModel(loaded_is);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

    for (const char* threads : {"1", "4"}) {
      ScopedThreads scoped(threads);
      std::istringstream in(requests);
      std::ostringstream out, err;
      serve::ServeConfig config;
      config.batch_size = 64;  // multiple batches over 67 test rows
      const auto summary =
          serve::ServeStream(*loaded.value(), in, out, err, config);
      ASSERT_TRUE(summary.ok()) << summary.status().ToString();
      EXPECT_EQ(ParsePredictions(out.str()), expected)
          << "threads=" << threads;
      EXPECT_EQ(summary.value().rows, views.test.num_rows());
      EXPECT_EQ(summary.value().batches,
                (views.test.num_rows() + 63) / 64);
      EXPECT_GE(summary.value().p99_us, summary.value().p50_us);
    }
  }
}

TEST(ServeTest, SkipsBlanksAndCommentsAndAcceptsSeparators) {
  const Dataset data = MakeParityDataset(80, {5, 4}, 7);
  ml::MajorityClassifier model;
  ASSERT_TRUE(model.Fit(DataView(&data)).ok());

  std::istringstream in(
      "# header comment\n"
      "\n"
      "1 2\n"
      "  \t\n"
      "3,1\r\n"
      "0\t3\n");
  std::ostringstream out, err;
  const auto summary = serve::ServeStream(model, in, out, err);
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  EXPECT_EQ(summary.value().rows, 3u);
  EXPECT_EQ(ParsePredictions(out.str()).size(), 3u);
}

TEST(ServeTest, MalformedRequestsFailWithLineNumbers) {
  const Dataset data = MakeParityDataset(80, {5, 4}, 7);
  ml::MajorityClassifier model;
  ASSERT_TRUE(model.Fit(DataView(&data)).ok());

  struct Case {
    const char* request;
    StatusCode code;
  };
  const Case cases[] = {
      {"1 2\nnope 3\n", StatusCode::kInvalidArgument},  // non-numeric
      {"1\n", StatusCode::kInvalidArgument},            // too few fields
      {"1 2 3\n", StatusCode::kInvalidArgument},        // too many fields
      {"9 2\n", StatusCode::kOutOfRange},               // out of domain
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.request);
    std::istringstream in(c.request);
    std::ostringstream out, err;
    const auto summary = serve::ServeStream(model, in, out, err);
    ASSERT_FALSE(summary.ok());
    EXPECT_EQ(summary.status().code(), c.code);
    EXPECT_NE(summary.status().message().find("line"), std::string::npos);
  }
}

TEST(ServeTest, UnfittedModelIsRejected) {
  ml::MajorityClassifier model;
  std::istringstream in("1 2\n");
  std::ostringstream out, err;
  const auto summary = serve::ServeStream(model, in, out, err);
  ASSERT_FALSE(summary.ok());
  EXPECT_EQ(summary.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ServeTest, BatchSizeEnvKnob) {
  {
    ScopedEnvVar env("HAMLET_SERVE_BATCH", "2");
    EXPECT_EQ(serve::ConfiguredBatchSize(), 2u);
  }
  {
    ScopedEnvVar env("HAMLET_SERVE_BATCH", nullptr);
    EXPECT_EQ(serve::ConfiguredBatchSize(), 2048u);
  }
  {
    // Invalid values warn (once) and fall back to the default.
    ScopedEnvVar env("HAMLET_SERVE_BATCH", "zero");
    EXPECT_EQ(serve::ConfiguredBatchSize(), 2048u);
  }

  // The knob drives batching end to end.
  const Dataset data = MakeParityDataset(80, {5, 4}, 7);
  ml::MajorityClassifier model;
  ASSERT_TRUE(model.Fit(DataView(&data)).ok());
  ScopedEnvVar env("HAMLET_SERVE_BATCH", "2");
  std::istringstream in("1 2\n3 1\n0 3\n");
  std::ostringstream out, err;
  const auto summary = serve::ServeStream(model, in, out, err);
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary.value().batches, 2u);
}

TEST(ServeTest, StatsSummaryPercentilesAreNearestRank) {
  serve::LatencyStats stats;
  // 100 batches at 1..100 us (recorded in seconds).
  for (int us = 1; us <= 100; ++us) {
    stats.RecordBatch(10, static_cast<double>(us) * 1e-6);
  }
  const serve::StatsSummary s = stats.Summarize();
  EXPECT_EQ(s.rows, 1000u);
  EXPECT_EQ(s.batches, 100u);
  EXPECT_NEAR(s.p50_us, 50.0, 1e-6);
  EXPECT_NEAR(s.p99_us, 99.0, 1e-6);
  EXPECT_GT(s.preds_per_sec, 0.0);
}

TEST(ServeTest, ZeroBatchSummaryIsAllZeros) {
  // No served batches (empty stream, all-comment stream, all-error
  // stream): every summary field must be a plain zero — no NaN from
  // 0/0, no garbage percentile from an empty sample vector.
  serve::LatencyStats stats;
  stats.RecordError();
  const serve::StatsSummary s = stats.Summarize();
  EXPECT_EQ(s.rows, 0u);
  EXPECT_EQ(s.batches, 0u);
  EXPECT_EQ(s.errors, 1u);
  EXPECT_EQ(s.model_seconds, 0.0);
  EXPECT_EQ(s.preds_per_sec, 0.0);
  EXPECT_EQ(s.p50_us, 0.0);
  EXPECT_EQ(s.p99_us, 0.0);
}

/// Splits serve output into its lines (predictions and ERR lines).
std::vector<std::string> OutputLines(const std::string& out) {
  std::vector<std::string> lines;
  std::istringstream is(out);
  std::string line;
  while (std::getline(is, line)) lines.push_back(line);
  return lines;
}

TEST(ServeTest, ResilientModeEmitsErrLinesInRequestOrder) {
  const Dataset data = MakeParityDataset(80, {5, 4}, 7);
  ml::MajorityClassifier model;
  ASSERT_TRUE(model.Fit(DataView(&data)).ok());

  // Good and bad lines interleaved; one output line per request, in
  // request order, even though predictions flush in batches.
  std::istringstream in(
      "1 2\n"
      "oops\n"   // line 2: non-numeric
      "3 1\n"
      "9 2\n"    // line 4: out of domain
      "0 3\n");
  std::ostringstream out, err;
  serve::ServeConfig config;
  config.batch_size = 64;  // all valid rows would fit one batch
  config.on_error = serve::OnError::kSkip;
  const auto summary = serve::ServeStream(model, in, out, err, config);
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  EXPECT_EQ(summary.value().rows, 3u);
  EXPECT_EQ(summary.value().errors, 2u);

  const std::vector<std::string> lines = OutputLines(out.str());
  ASSERT_EQ(lines.size(), 5u);
  EXPECT_TRUE(lines[0] == "0" || lines[0] == "1");
  EXPECT_EQ(lines[1].rfind("ERR 2: ", 0), 0u) << lines[1];
  EXPECT_NE(lines[1].find("unsigned integer"), std::string::npos);
  EXPECT_TRUE(lines[2] == "0" || lines[2] == "1");
  EXPECT_EQ(lines[3].rfind("ERR 4: ", 0), 0u) << lines[3];
  EXPECT_NE(lines[3].find("domain"), std::string::npos);
  EXPECT_TRUE(lines[4] == "0" || lines[4] == "1");
}

TEST(ServeTest, ResilientModeAllErrorStreamServesZeroRows) {
  const Dataset data = MakeParityDataset(80, {5, 4}, 7);
  ml::MajorityClassifier model;
  ASSERT_TRUE(model.Fit(DataView(&data)).ok());

  std::istringstream in("bad\nalso bad\n");
  std::ostringstream out, err;
  serve::ServeConfig config;
  config.on_error = serve::OnError::kSkip;
  const auto summary = serve::ServeStream(model, in, out, err, config);
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  EXPECT_EQ(summary.value().rows, 0u);
  EXPECT_EQ(summary.value().batches, 0u);
  EXPECT_EQ(summary.value().errors, 2u);
  EXPECT_EQ(summary.value().preds_per_sec, 0.0);
  const std::vector<std::string> lines = OutputLines(out.str());
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].rfind("ERR 1: ", 0), 0u);
  EXPECT_EQ(lines[1].rfind("ERR 2: ", 0), 0u);
}

TEST(ServeTest, ErrorBudgetAbortsTheRun) {
  const Dataset data = MakeParityDataset(80, {5, 4}, 7);
  ml::MajorityClassifier model;
  ASSERT_TRUE(model.Fit(DataView(&data)).ok());

  std::istringstream in("bad1\n1 2\nbad2\nbad3\n2 3\n");
  std::ostringstream out, err;
  serve::ServeConfig config;
  config.on_error = serve::OnError::kSkip;
  config.max_errors = 2;
  const auto summary = serve::ServeStream(model, in, out, err, config);
  ASSERT_FALSE(summary.ok());
  EXPECT_EQ(summary.status().code(), StatusCode::kOutOfRange);
  EXPECT_NE(summary.status().message().find("error budget exceeded"),
            std::string::npos);
  // The first two rejects still produced ERR lines before the abort.
  const std::vector<std::string> lines = OutputLines(out.str());
  ASSERT_GE(lines.size(), 2u);
  EXPECT_EQ(lines[0].rfind("ERR 1: ", 0), 0u);
}

TEST(ServeTest, OnErrorEnvKnobs) {
  {
    ScopedEnvVar env("HAMLET_SERVE_ON_ERROR", "skip");
    EXPECT_EQ(serve::ConfiguredOnError(), serve::OnError::kSkip);
  }
  {
    ScopedEnvVar env("HAMLET_SERVE_ON_ERROR", "abort");
    EXPECT_EQ(serve::ConfiguredOnError(), serve::OnError::kAbort);
  }
  {
    ScopedEnvVar env("HAMLET_SERVE_ON_ERROR", nullptr);
    EXPECT_EQ(serve::ConfiguredOnError(), serve::OnError::kAbort);
  }
  {
    // Invalid values warn (once) and fall back to strict.
    ScopedEnvVar env("HAMLET_SERVE_ON_ERROR", "retry");
    EXPECT_EQ(serve::ConfiguredOnError(), serve::OnError::kAbort);
  }
  {
    ScopedEnvVar env("HAMLET_SERVE_MAX_ERRORS", "3");
    EXPECT_EQ(serve::ConfiguredMaxErrors(), 3u);
  }
  {
    ScopedEnvVar env("HAMLET_SERVE_MAX_ERRORS", nullptr);
    EXPECT_EQ(serve::ConfiguredMaxErrors(), serve::kUnlimitedErrors);
  }
  {
    ScopedEnvVar env("HAMLET_SERVE_MAX_ERRORS", "-1");
    EXPECT_EQ(serve::ConfiguredMaxErrors(), serve::kUnlimitedErrors);
  }
  {
    // 0 is a real budget (tolerate no errors), not the old "invalid,
    // fall back to unlimited" — a zero-tolerance deployment must be
    // expressible.
    ScopedEnvVar env("HAMLET_SERVE_MAX_ERRORS", "0");
    EXPECT_EQ(serve::ConfiguredMaxErrors(), 0u);
  }

  // The env drives ServeStream end to end when the config says kEnv.
  const Dataset data = MakeParityDataset(80, {5, 4}, 7);
  ml::MajorityClassifier model;
  ASSERT_TRUE(model.Fit(DataView(&data)).ok());
  ScopedEnvVar env("HAMLET_SERVE_ON_ERROR", "skip");
  std::istringstream in("nope\n1 2\n");
  std::ostringstream out, err;
  const auto summary = serve::ServeStream(model, in, out, err);
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  EXPECT_EQ(summary.value().errors, 1u);
  EXPECT_EQ(summary.value().rows, 1u);
}

/// Fits a MajorityClassifier over domains {5, 4} whose constant
/// prediction is `label`.
std::unique_ptr<ml::MajorityClassifier> MakeConstantModel(uint8_t label) {
  std::vector<FeatureSpec> specs(2);
  specs[0] = {"f0", 5, FeatureRole::kHome};
  specs[1] = {"f1", 4, FeatureRole::kHome};
  Dataset data(std::move(specs));
  data.Reserve(8);
  for (size_t i = 0; i < 8; ++i) {
    data.AppendRowUnchecked({static_cast<uint32_t>(i % 5),
                             static_cast<uint32_t>(i % 4)},
                            label);
  }
  auto model = std::make_unique<ml::MajorityClassifier>();
  EXPECT_TRUE(model->Fit(DataView(&data)).ok());
  return model;
}

TEST(ServeTest, ZeroErrorBudgetAbortsOnFirstRejectedLine) {
  const Dataset data = MakeParityDataset(80, {5, 4}, 7);
  ml::MajorityClassifier model;
  ASSERT_TRUE(model.Fit(DataView(&data)).ok());

  std::istringstream in("1 2\nbad\n3 1\n");
  std::ostringstream out, err;
  serve::ServeConfig config;
  config.on_error = serve::OnError::kSkip;
  config.max_errors = 0;  // explicitly zero, not "unset"
  const auto summary = serve::ServeStream(model, in, out, err, config);
  ASSERT_FALSE(summary.ok());
  EXPECT_EQ(summary.status().code(), StatusCode::kOutOfRange);
  EXPECT_NE(summary.status().message().find("error budget exceeded"),
            std::string::npos);
}

TEST(ServeTest, LiveTickerFinishBlanksTheWidestPaintedLine) {
  std::ostringstream os;
  serve::LiveTicker ticker(os, /*enabled=*/true,
                           std::chrono::milliseconds(0));
  serve::LatencyStats stats;
  // A huge rows count and a tiny batch time make ops/s astronomically
  // wide: the painted line overflows the 100 columns the old Finish
  // blanked, which left stale ticker text on screen after the summary.
  stats.RecordBatch(static_cast<size_t>(1) << 60, 1e-12);
  ticker.MaybeTick(stats);
  const size_t width = ticker.painted_width();
  EXPECT_GT(width, 100u);
  const size_t before = os.str().size();
  ticker.Finish();
  // Finish must blank exactly the widest painted line, no more, no less.
  EXPECT_EQ(os.str().substr(before),
            "\r" + std::string(width, ' ') + "\r");
}

/// MajorityClassifier that reports its destruction: the probe for the
/// hot-reload lifetime contract (a displaced model must outlive the
/// poll call that displaced it).
class DestructionProbe : public ml::MajorityClassifier {
 public:
  explicit DestructionProbe(bool* destroyed) : destroyed_(destroyed) {}
  ~DestructionProbe() override { *destroyed_ = true; }

 private:
  bool* destroyed_;
};

/// Fits a DestructionProbe over domains {5, 4} predicting `label`.
std::unique_ptr<DestructionProbe> MakeConstantProbe(uint8_t label,
                                                    bool* destroyed) {
  std::vector<FeatureSpec> specs(2);
  specs[0] = {"f0", 5, FeatureRole::kHome};
  specs[1] = {"f1", 4, FeatureRole::kHome};
  Dataset data(std::move(specs));
  data.Reserve(8);
  for (size_t i = 0; i < 8; ++i) {
    data.AppendRowUnchecked({static_cast<uint32_t>(i % 5),
                             static_cast<uint32_t>(i % 4)},
                            label);
  }
  auto model = std::make_unique<DestructionProbe>(destroyed);
  EXPECT_TRUE(model->Fit(DataView(&data)).ok());
  return model;
}

TEST(ServeTest, ModelSlotKeepsDisplacedModelAliveUntilNextSwap) {
  bool a_destroyed = false, b_destroyed = false, c_destroyed = false;
  serve::ModelSlot slot(MakeConstantProbe(0, &a_destroyed));
  const ml::Classifier* a = slot.current();

  const ml::Classifier* b =
      slot.Swap(MakeConstantProbe(1, &b_destroyed));
  EXPECT_EQ(slot.current(), b);
  EXPECT_NE(a, b);
  // The regression: the old reload hook did `current = move(fresh)`,
  // destroying A inside the poll call while ServeStream still held the
  // raw pointer it polled with. The slot must park A instead.
  EXPECT_FALSE(a_destroyed);

  slot.Swap(MakeConstantProbe(0, &c_destroyed));
  EXPECT_TRUE(a_destroyed);   // retired by the *following* swap only
  EXPECT_FALSE(b_destroyed);  // now parked in the retired slot
  EXPECT_FALSE(c_destroyed);
}

TEST(ServeTest, ModelSlotSwapAndCurrentAreThreadSafeUnderTsan) {
  // Regression (TSan-visible): ModelSlot::current()/Swap() used to
  // touch the unique_ptr members with no synchronization, so a reload
  // thread swapping while the serving loop polled current() raced on
  // the pointer itself. ModelSlot now locks internally; under
  // -DHAMLET_TSAN=ON this test drives that exact interleaving and must
  // come up clean. The poller only compares pointers — dereferencing
  // is governed by the separate park-until-next-swap contract covered
  // by the two tests around this one.
  bool scratch = false;  // outlives the slot; every probe dtor hits it
  serve::ModelSlot slot(MakeConstantProbe(0, &scratch));
  // Poll through const — the overload the serving loop uses.
  const serve::ModelSlot& reader_view = slot;
  std::atomic<bool> done{false};
  size_t null_polls = 0;
  std::thread poller([&] {
    while (!done.load()) {
      if (reader_view.current() == nullptr) ++null_polls;
    }
  });
  for (int i = 0; i < 500; ++i) {
    slot.Swap(MakeConstantProbe(static_cast<uint8_t>(i % 2), &scratch));
  }
  done.store(true);
  poller.join();
  EXPECT_EQ(null_polls, 0u);
}

TEST(ServeTest, ModelSlotReloadPollKeepsServingModelValidMidCall) {
  bool a_destroyed = false, b_destroyed = false;
  serve::ModelSlot slot(MakeConstantProbe(0, &a_destroyed));

  std::istringstream in("1 2\n3 1\n0 3\n2 0\n");
  std::ostringstream out, err;
  serve::ServeConfig config;
  config.batch_size = 2;
  size_t polls = 0;
  config.model_poll = [&]() -> const ml::Classifier* {
    if (++polls != 2) return nullptr;
    // Swap mid-call, the way hamlet_serve's SIGHUP hook does. Under
    // ASan this is also a use-after-free canary: ServeStream's `active`
    // pointer (model A) must still be alive right now.
    const ml::Classifier* fresh =
        slot.Swap(MakeConstantProbe(1, &b_destroyed));
    EXPECT_FALSE(a_destroyed);
    return fresh;
  };
  const auto summary = serve::ServeStream(*slot.current(), in, out, err,
                                          config);
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  EXPECT_EQ(polls, 2u);
  // Batch 1 served by A (label 0), batch 2 by the swapped-in B.
  EXPECT_EQ(OutputLines(out.str()),
            (std::vector<std::string>{"0", "0", "1", "1"}));
  EXPECT_FALSE(a_destroyed);  // still parked in the slot
  EXPECT_FALSE(b_destroyed);
}

TEST(ServeTest, ModelPollHotSwapsAtBatchBoundary) {
  auto model_a = MakeConstantModel(0);
  auto model_b = MakeConstantModel(1);

  // Six requests, batch size 2: poll fires at each of the three batch
  // boundaries; the second poll swaps in model B mid-stream.
  std::istringstream in("1 2\n3 1\n0 3\n2 0\n4 1\n1 1\n");
  std::ostringstream out, err;
  serve::ServeConfig config;
  config.batch_size = 2;
  size_t polls = 0;
  config.model_poll = [&]() -> const ml::Classifier* {
    ++polls;
    return polls == 2 ? model_b.get() : nullptr;
  };
  const auto summary = serve::ServeStream(*model_a, in, out, err, config);
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  EXPECT_EQ(polls, 3u);
  EXPECT_EQ(summary.value().rows, 6u);
  // Batch 1 served by A (label 0), batches 2 and 3 by B (label 1).
  EXPECT_EQ(OutputLines(out.str()),
            (std::vector<std::string>{"0", "0", "1", "1", "1", "1"}));
}

TEST(ServeTest, ValidateReloadedModelChecksDomains) {
  auto current = MakeConstantModel(0);

  // Identical domains: safe to swap.
  EXPECT_TRUE(
      serve::ValidateReloadedModel(*current, *MakeConstantModel(1)).ok());

  // Unfitted candidate: no metadata, rejected.
  ml::MajorityClassifier unfitted;
  const Status no_meta = serve::ValidateReloadedModel(*current, unfitted);
  ASSERT_FALSE(no_meta.ok());
  EXPECT_EQ(no_meta.code(), StatusCode::kFailedPrecondition);

  // Differently-shaped candidate: rejected, old model kept.
  const Dataset other = MakeParityDataset(60, {3, 2, 6}, 11);
  ml::MajorityClassifier mismatched;
  ASSERT_TRUE(mismatched.Fit(DataView(&other)).ok());
  const Status st = serve::ValidateReloadedModel(*current, mismatched);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(st.message().find("keeping the old model"), std::string::npos);
}

}  // namespace
}  // namespace hamlet
