// Serving-layer tests: request parsing/validation, batching, stats, and
// parity between served predictions and the in-process PredictAll path
// (including through a Save/Load round trip, which is how hamlet_serve
// actually gets its model).

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "hamlet/io/serialize.h"
#include "hamlet/ml/majority.h"
#include "hamlet/serve/server.h"
#include "hamlet/serve/stats.h"
#include "parity_util.h"

namespace hamlet {
namespace {

using test::MakeParityDataset;
using test::MakeParityViews;
using test::ParityLearner;
using test::ParityLearners;
using test::ScopedEnvVar;
using test::ScopedThreads;

/// Renders `view`'s rows as request lines in the serve wire format.
std::string RequestLines(const DataView& view) {
  std::ostringstream os;
  for (size_t i = 0; i < view.num_rows(); ++i) {
    for (size_t j = 0; j < view.num_features(); ++j) {
      if (j > 0) os << ' ';
      os << view.feature(i, j);
    }
    os << '\n';
  }
  return os.str();
}

/// Parses serve output ("0\n1\n...") back into a label vector.
std::vector<uint8_t> ParsePredictions(const std::string& out) {
  std::vector<uint8_t> preds;
  for (char c : out) {
    if (c == '0' || c == '1') preds.push_back(c == '1' ? 1 : 0);
  }
  return preds;
}

TEST(ServeTest, ServedPredictionsMatchPredictAllThroughSaveLoad) {
  const Dataset data = MakeParityDataset(200, {6, 4, 7, 3}, 41);
  const auto views = MakeParityViews(data, 42);
  const std::string requests = RequestLines(views.test);

  for (const ParityLearner& learner : ParityLearners()) {
    SCOPED_TRACE(learner.name);
    auto model = learner.make();
    ASSERT_TRUE(model->Fit(views.train).ok());
    const std::vector<uint8_t> expected = model->PredictAll(views.test);

    // Round-trip through the model format, as hamlet_serve does.
    std::ostringstream saved(std::ios::binary);
    ASSERT_TRUE(io::SaveModel(*model, saved).ok());
    std::istringstream loaded_is(saved.str(), std::ios::binary);
    auto loaded = io::LoadModel(loaded_is);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

    for (const char* threads : {"1", "4"}) {
      ScopedThreads scoped(threads);
      std::istringstream in(requests);
      std::ostringstream out, err;
      serve::ServeConfig config;
      config.batch_size = 64;  // multiple batches over 67 test rows
      const auto summary =
          serve::ServeStream(*loaded.value(), in, out, err, config);
      ASSERT_TRUE(summary.ok()) << summary.status().ToString();
      EXPECT_EQ(ParsePredictions(out.str()), expected)
          << "threads=" << threads;
      EXPECT_EQ(summary.value().rows, views.test.num_rows());
      EXPECT_EQ(summary.value().batches,
                (views.test.num_rows() + 63) / 64);
      EXPECT_GE(summary.value().p99_us, summary.value().p50_us);
    }
  }
}

TEST(ServeTest, SkipsBlanksAndCommentsAndAcceptsSeparators) {
  const Dataset data = MakeParityDataset(80, {5, 4}, 7);
  ml::MajorityClassifier model;
  ASSERT_TRUE(model.Fit(DataView(&data)).ok());

  std::istringstream in(
      "# header comment\n"
      "\n"
      "1 2\n"
      "  \t\n"
      "3,1\r\n"
      "0\t3\n");
  std::ostringstream out, err;
  const auto summary = serve::ServeStream(model, in, out, err);
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  EXPECT_EQ(summary.value().rows, 3u);
  EXPECT_EQ(ParsePredictions(out.str()).size(), 3u);
}

TEST(ServeTest, MalformedRequestsFailWithLineNumbers) {
  const Dataset data = MakeParityDataset(80, {5, 4}, 7);
  ml::MajorityClassifier model;
  ASSERT_TRUE(model.Fit(DataView(&data)).ok());

  struct Case {
    const char* request;
    StatusCode code;
  };
  const Case cases[] = {
      {"1 2\nnope 3\n", StatusCode::kInvalidArgument},  // non-numeric
      {"1\n", StatusCode::kInvalidArgument},            // too few fields
      {"1 2 3\n", StatusCode::kInvalidArgument},        // too many fields
      {"9 2\n", StatusCode::kOutOfRange},               // out of domain
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.request);
    std::istringstream in(c.request);
    std::ostringstream out, err;
    const auto summary = serve::ServeStream(model, in, out, err);
    ASSERT_FALSE(summary.ok());
    EXPECT_EQ(summary.status().code(), c.code);
    EXPECT_NE(summary.status().message().find("line"), std::string::npos);
  }
}

TEST(ServeTest, UnfittedModelIsRejected) {
  ml::MajorityClassifier model;
  std::istringstream in("1 2\n");
  std::ostringstream out, err;
  const auto summary = serve::ServeStream(model, in, out, err);
  ASSERT_FALSE(summary.ok());
  EXPECT_EQ(summary.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ServeTest, BatchSizeEnvKnob) {
  {
    ScopedEnvVar env("HAMLET_SERVE_BATCH", "2");
    EXPECT_EQ(serve::ConfiguredBatchSize(), 2u);
  }
  {
    ScopedEnvVar env("HAMLET_SERVE_BATCH", nullptr);
    EXPECT_EQ(serve::ConfiguredBatchSize(), 2048u);
  }
  {
    // Invalid values warn (once) and fall back to the default.
    ScopedEnvVar env("HAMLET_SERVE_BATCH", "zero");
    EXPECT_EQ(serve::ConfiguredBatchSize(), 2048u);
  }

  // The knob drives batching end to end.
  const Dataset data = MakeParityDataset(80, {5, 4}, 7);
  ml::MajorityClassifier model;
  ASSERT_TRUE(model.Fit(DataView(&data)).ok());
  ScopedEnvVar env("HAMLET_SERVE_BATCH", "2");
  std::istringstream in("1 2\n3 1\n0 3\n");
  std::ostringstream out, err;
  const auto summary = serve::ServeStream(model, in, out, err);
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary.value().batches, 2u);
}

TEST(ServeTest, StatsSummaryPercentilesAreNearestRank) {
  serve::LatencyStats stats;
  // 100 batches at 1..100 us (recorded in seconds).
  for (int us = 1; us <= 100; ++us) {
    stats.RecordBatch(10, static_cast<double>(us) * 1e-6);
  }
  const serve::StatsSummary s = stats.Summarize();
  EXPECT_EQ(s.rows, 1000u);
  EXPECT_EQ(s.batches, 100u);
  EXPECT_NEAR(s.p50_us, 50.0, 1e-6);
  EXPECT_NEAR(s.p99_us, 99.0, 1e-6);
  EXPECT_GT(s.preds_per_sec, 0.0);
}

}  // namespace
}  // namespace hamlet
