// Tests for hamlet/core/variants: JoinAll/NoJoin/NoFK feature selection.

#include <gtest/gtest.h>

#include "hamlet/core/variants.h"
#include "hamlet/data/dataset.h"

namespace hamlet {
namespace core {
namespace {

Dataset MakeJoined() {
  // Layout mirrors JoinAllTables output for q=2:
  // [home, fk0, fk1, dim0 foreign x2, dim1 foreign x1]
  return Dataset({{"h", 2, FeatureRole::kHome, -1},
                  {"fk_a", 10, FeatureRole::kForeignKey, 0},
                  {"fk_b", 20, FeatureRole::kForeignKey, 1},
                  {"a.x", 3, FeatureRole::kForeign, 0},
                  {"a.y", 3, FeatureRole::kForeign, 0},
                  {"b.z", 4, FeatureRole::kForeign, 1}});
}

TEST(VariantsTest, JoinAllKeepsEverything) {
  Dataset d = MakeJoined();
  EXPECT_EQ(SelectVariant(d, FeatureVariant::kJoinAll),
            (std::vector<uint32_t>{0, 1, 2, 3, 4, 5}));
}

TEST(VariantsTest, NoJoinDropsAllForeignFeatures) {
  Dataset d = MakeJoined();
  EXPECT_EQ(SelectVariant(d, FeatureVariant::kNoJoin),
            (std::vector<uint32_t>{0, 1, 2}));
}

TEST(VariantsTest, NoFkDropsAllForeignKeys) {
  Dataset d = MakeJoined();
  EXPECT_EQ(SelectVariant(d, FeatureVariant::kNoFK),
            (std::vector<uint32_t>{0, 3, 4, 5}));
}

TEST(VariantsTest, DropSingleDimensionKeepsItsFk) {
  Dataset d = MakeJoined();
  // NoR1 (drop dim 0's foreign features): the Table 4 variant.
  EXPECT_EQ(SelectDroppingDimensions(d, {0}),
            (std::vector<uint32_t>{0, 1, 2, 5}));
  // NoR2.
  EXPECT_EQ(SelectDroppingDimensions(d, {1}),
            (std::vector<uint32_t>{0, 1, 2, 3, 4}));
  // Dropping both == NoJoin.
  EXPECT_EQ(SelectDroppingDimensions(d, {0, 1}),
            SelectVariant(d, FeatureVariant::kNoJoin));
  // Dropping none == JoinAll.
  EXPECT_EQ(SelectDroppingDimensions(d, {}),
            SelectVariant(d, FeatureVariant::kJoinAll));
}

TEST(VariantsTest, HelperColumnSelectors) {
  Dataset d = MakeJoined();
  EXPECT_EQ(ForeignKeyColumns(d), (std::vector<uint32_t>{1, 2}));
  EXPECT_EQ(ForeignFeatureColumns(d, 0), (std::vector<uint32_t>{3, 4}));
  EXPECT_EQ(ForeignFeatureColumns(d, 1), (std::vector<uint32_t>{5}));
  EXPECT_TRUE(ForeignFeatureColumns(d, 7).empty());
}

TEST(VariantsTest, Names) {
  EXPECT_STREQ(FeatureVariantName(FeatureVariant::kJoinAll), "JoinAll");
  EXPECT_STREQ(FeatureVariantName(FeatureVariant::kNoJoin), "NoJoin");
  EXPECT_STREQ(FeatureVariantName(FeatureVariant::kNoFK), "NoFK");
}

TEST(VariantsTest, NoJoinNeverSelectsForeignRole) {
  // Property over all three variants: selected roles must honour the
  // variant's contract.
  Dataset d = MakeJoined();
  for (uint32_t c : SelectVariant(d, FeatureVariant::kNoJoin)) {
    EXPECT_NE(d.feature_spec(c).role, FeatureRole::kForeign);
  }
  for (uint32_t c : SelectVariant(d, FeatureVariant::kNoFK)) {
    EXPECT_NE(d.feature_spec(c).role, FeatureRole::kForeignKey);
  }
}

}  // namespace
}  // namespace core
}  // namespace hamlet
