// Tests for hamlet/ml/linear: L1 logistic regression.

#include <gtest/gtest.h>

#include <cmath>

#include "hamlet/common/rng.h"
#include "hamlet/data/dataset.h"
#include "hamlet/data/split.h"
#include "hamlet/data/view.h"
#include "hamlet/ml/linear/logistic_regression.h"
#include "hamlet/ml/metrics.h"

namespace hamlet {
namespace ml {
namespace {

Dataset MakeSignalNoise(size_t n, uint64_t seed, size_t noise_features) {
  std::vector<FeatureSpec> specs = {{"sig", 2, FeatureRole::kHome, -1}};
  for (size_t j = 0; j < noise_features; ++j) {
    specs.push_back(
        {"n" + std::to_string(j), 3, FeatureRole::kHome, -1});
  }
  Dataset d(specs);
  Rng rng(seed);
  std::vector<uint32_t> row(1 + noise_features);
  for (size_t i = 0; i < n; ++i) {
    row[0] = static_cast<uint32_t>(rng.UniformInt(2));
    for (size_t j = 0; j < noise_features; ++j) {
      row[1 + j] = static_cast<uint32_t>(rng.UniformInt(3));
    }
    d.AppendRowUnchecked(row, static_cast<uint8_t>(row[0]));
  }
  return d;
}

LogisticRegressionConfig SmallConfig() {
  LogisticRegressionConfig cfg;
  cfg.nlambda = 10;
  cfg.maxit = 300;
  return cfg;
}

TEST(LogRegTest, LearnsSeparableData) {
  Dataset data = MakeSignalNoise(400, 1, 2);
  DataView view(&data);
  LogisticRegressionL1 lr(SmallConfig());
  ASSERT_TRUE(lr.Fit(view).ok());
  EXPECT_GE(Accuracy(lr, view), 0.99);
}

TEST(LogRegTest, ProbabilityAndPredictionAgree) {
  Dataset data = MakeSignalNoise(200, 2, 1);
  DataView view(&data);
  LogisticRegressionL1 lr(SmallConfig());
  ASSERT_TRUE(lr.Fit(view).ok());
  for (size_t i = 0; i < view.num_rows(); ++i) {
    const double p = lr.PredictProbability(view, i);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    EXPECT_EQ(lr.Predict(view, i), p >= 0.5 ? 1 : 0);
  }
}

TEST(LogRegTest, ValidationPicksLambda) {
  Dataset data = MakeSignalNoise(600, 3, 3);
  TrainValTest split = SplitRows(600, 0.6, 0.4, 4);
  DataView train(&data, split.train,
                 {0, 1, 2, 3});
  DataView val(&data, split.val, {0, 1, 2, 3});
  LogisticRegressionConfig cfg = SmallConfig();
  cfg.has_validation = true;
  cfg.validation = val;
  LogisticRegressionL1 lr(cfg);
  ASSERT_TRUE(lr.Fit(train).ok());
  EXPECT_GT(lr.selected_lambda(), 0.0);
  EXPECT_GE(Accuracy(lr, val), 0.95);
}

TEST(LogRegTest, L1SparsifiesNoiseWeights) {
  // With many noise features, the selected model should have far fewer
  // nonzero weights than the full one-hot dimension.
  Dataset data = MakeSignalNoise(500, 5, 10);
  DataView view(&data);
  LogisticRegressionL1 lr(SmallConfig());
  ASSERT_TRUE(lr.Fit(view).ok());
  EXPECT_GE(Accuracy(lr, view), 0.95);
  EXPECT_LT(lr.NumNonzeroWeights(), view.OneHotDimension());
}

TEST(LogRegTest, HighLambdaOnlyPathIsMajorityLike) {
  // A single path point at lambda_max keeps all penalised weights at zero;
  // prediction falls back to the intercept (majority class).
  Dataset d({{"f", 2, FeatureRole::kHome, -1}});
  Rng rng(6);
  for (int i = 0; i < 300; ++i) {
    d.AppendRowUnchecked({static_cast<uint32_t>(rng.UniformInt(2))},
                         rng.Bernoulli(0.7) ? 1 : 0);
  }
  LogisticRegressionConfig cfg;
  cfg.nlambda = 1;  // path = {lambda_max}
  cfg.maxit = 100;
  LogisticRegressionL1 lr(cfg);
  ASSERT_TRUE(lr.Fit(DataView(&d)).ok());
  EXPECT_EQ(lr.NumNonzeroWeights(), 0u);
  EXPECT_EQ(lr.Predict(DataView(&d), 0), 1);
}

TEST(LogRegTest, EmptyTrainingFails) {
  Dataset data = MakeSignalNoise(10, 7, 1);
  DataView empty(&data, {}, {0, 1});
  LogisticRegressionL1 lr(SmallConfig());
  EXPECT_FALSE(lr.Fit(empty).ok());
}

TEST(LogRegTest, DeterministicFit) {
  Dataset data = MakeSignalNoise(300, 8, 2);
  DataView view(&data);
  LogisticRegressionL1 a(SmallConfig()), b(SmallConfig());
  ASSERT_TRUE(a.Fit(view).ok());
  ASSERT_TRUE(b.Fit(view).ok());
  for (size_t i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(a.PredictProbability(view, i),
                     b.PredictProbability(view, i));
  }
}

// Path-length sweep: more path points never hurt badly and always produce
// a finite, usable model.
class LogRegPathTest : public ::testing::TestWithParam<size_t> {};

TEST_P(LogRegPathTest, StableForPathLength) {
  Dataset data = MakeSignalNoise(300, 9, 3);
  DataView view(&data);
  LogisticRegressionConfig cfg = SmallConfig();
  cfg.nlambda = GetParam();
  LogisticRegressionL1 lr(cfg);
  ASSERT_TRUE(lr.Fit(view).ok());
  const double acc = Accuracy(lr, view);
  EXPECT_TRUE(std::isfinite(acc));
  EXPECT_GE(acc, 0.45);
}

INSTANTIATE_TEST_SUITE_P(PathLengths, LogRegPathTest,
                         ::testing::Values(1, 2, 5, 10, 25));

}  // namespace
}  // namespace ml
}  // namespace hamlet
