// Tests for hamlet/common: Status/Result, RNG, string helpers.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

#include "hamlet/common/crc32.h"
#include "hamlet/common/logging.h"
#include "hamlet/common/rng.h"
#include "hamlet/common/status.h"
#include "hamlet/common/stringx.h"

namespace hamlet {
namespace {

// --------------------------------------------------------------- logging --

TEST(LoggingTest, FirstOccurrenceIsTrueExactlyOnce) {
  // Keys are process-wide, so use ones no other test touches. Distinct
  // keys stay independent even when observations alternate.
  EXPECT_TRUE(FirstOccurrence("common_test:a"));
  EXPECT_TRUE(FirstOccurrence("common_test:b"));
  EXPECT_FALSE(FirstOccurrence("common_test:a"));
  EXPECT_FALSE(FirstOccurrence("common_test:b"));
  EXPECT_FALSE(FirstOccurrence("common_test:a"));
}

// ---------------------------------------------------------------- Status --

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad row");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad row");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad row");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  std::set<StatusCode> codes = {
      Status::InvalidArgument("").code(), Status::NotFound("").code(),
      Status::OutOfRange("").code(), Status::FailedPrecondition("").code(),
      Status::Internal("").code()};
  EXPECT_EQ(codes.size(), 5u);
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "Internal");
  EXPECT_STREQ(StatusCodeName(StatusCode::kDataLoss), "DataLoss");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnavailable), "Unavailable");
}

TEST(StatusTest, FromCodePreservesTheCode) {
  const Status st = Status::FromCode(StatusCode::kDataLoss, "bits rotted");
  EXPECT_EQ(st.code(), StatusCode::kDataLoss);
  EXPECT_EQ(st.message(), "bits rotted");
  EXPECT_TRUE(Status::FromCode(StatusCode::kOk, "ignored").ok());
  EXPECT_EQ(Status::Unavailable("later").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::DataLoss("gone").code(), StatusCode::kDataLoss);
}

// ----------------------------------------------------------------- crc32 --

TEST(Crc32Test, MatchesTheIeeeCheckValue) {
  // The canonical CRC-32 check value: crc32("123456789") = 0xCBF43926.
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
}

TEST(Crc32Test, IncrementalFeedMatchesOneShot) {
  const char data[] = "hamlet model bytes";
  const size_t n = sizeof(data) - 1;
  uint32_t state = kCrc32Init;
  state = Crc32Feed(state, data, 5);
  state = Crc32Feed(state, data + 5, n - 5);
  EXPECT_EQ(Crc32Finalize(state), Crc32(data, n));
  // Sensitive to every byte.
  EXPECT_NE(Crc32(data, n), Crc32(data, n - 1));
  EXPECT_EQ(Crc32("", 0), Crc32Finalize(kCrc32Init));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("gone"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::vector<int>> r(std::vector<int>{1, 2, 3});
  std::vector<int> v = std::move(r).value();
  EXPECT_EQ(v.size(), 3u);
}

Status FailsThenPropagates() {
  HAMLET_RETURN_IF_ERROR(Status::Internal("inner"));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorMacroPropagates) {
  Status st = FailsThenPropagates();
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.message(), "inner");
}

// ------------------------------------------------------------------- Rng --

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.Next() == b.Next();
  EXPECT_LT(equal, 4);
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.UniformInt(13), 13u);
  }
}

TEST(RngTest, UniformIntCoversAllValues) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.UniformInt(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, UniformIntIsRoughlyUniform) {
  Rng rng(11);
  std::vector<int> counts(8, 0);
  const int n = 80000;
  for (int i = 0; i < n; ++i) ++counts[rng.UniformInt(8)];
  for (int c : counts) {
    EXPECT_NEAR(c, n / 8, 4 * std::sqrt(n / 8.0));
  }
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(3);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.UniformDouble();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(5);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, NormalMomentsAreStandard) {
  Rng rng(13);
  double sum = 0.0, sum2 = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(42);
  Rng child = a.Fork(1);
  Rng a2(42);
  Rng child2 = a2.Fork(1);
  // Same fork is reproducible...
  for (int i = 0; i < 10; ++i) EXPECT_EQ(child.Next(), child2.Next());
  // ...and differs from another stream.
  Rng a3(42);
  Rng other = a3.Fork(2);
  int equal = 0;
  Rng a4(42);
  Rng base = a4.Fork(1);
  for (int i = 0; i < 64; ++i) equal += base.Next() == other.Next();
  EXPECT_LT(equal, 4);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(17);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> original = v;
  rng.Shuffle(v);
  EXPECT_FALSE(std::equal(v.begin(), v.end(), original.begin()));
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, SampleDiscreteRespectsWeights) {
  Rng rng(23);
  std::vector<double> w = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[SampleDiscrete(rng, w)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.6, 0.01);
}

TEST(RngTest, SplitMix64KnownSequenceIsDeterministic) {
  uint64_t s1 = 0;
  uint64_t s2 = 0;
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(SplitMix64(s1), SplitMix64(s2));
  }
}

// --------------------------------------------------------------- stringx --

TEST(StringxTest, JoinStrings) {
  EXPECT_EQ(JoinStrings({"a", "b", "c"}, ","), "a,b,c");
  EXPECT_EQ(JoinStrings({}, ","), "");
  EXPECT_EQ(JoinStrings({"solo"}, ", "), "solo");
}

TEST(StringxTest, SplitString) {
  EXPECT_EQ(SplitString("a,b,c", ',').size(), 3u);
  EXPECT_EQ(SplitString("a,,c", ',')[1], "");
  EXPECT_EQ(SplitString("", ',').size(), 1u);
  EXPECT_EQ(SplitString("trailing,", ',').size(), 2u);
}

TEST(StringxTest, SplitJoinRoundTrip) {
  const std::string s = "x,y,,z";
  EXPECT_EQ(JoinStrings(SplitString(s, ','), ","), s);
}

TEST(StringxTest, TrimString) {
  EXPECT_EQ(TrimString("  hi  "), "hi");
  EXPECT_EQ(TrimString("\t\nhi"), "hi");
  EXPECT_EQ(TrimString("hi"), "hi");
  EXPECT_EQ(TrimString("   "), "");
}

TEST(StringxTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(0.85371, 4), "0.8537");
  EXPECT_EQ(FormatDouble(2.0, 1), "2.0");
  EXPECT_EQ(FormatDouble(-0.5, 2), "-0.50");
}

TEST(StringxTest, Padding) {
  EXPECT_EQ(PadRight("ab", 4), "ab  ");
  EXPECT_EQ(PadLeft("ab", 4), "  ab");
  EXPECT_EQ(PadRight("abcdef", 4), "abcd");
  EXPECT_EQ(PadLeft("abcdef", 4), "abcd");
}

TEST(StringxTest, ParseUnsignedAcceptsPlainDigits) {
  EXPECT_EQ(ParseUnsigned("0").value(), 0u);
  EXPECT_EQ(ParseUnsigned("42").value(), 42u);
  EXPECT_EQ(ParseUnsigned("007").value(), 7u);
  EXPECT_EQ(ParseUnsigned("18446744073709551615").value(), UINT64_MAX);
}

TEST(StringxTest, ParseUnsignedRejectsWhatStrtoullSilentlyAccepts) {
  // The whole point of the helper: strtoull("banana") = 0 with no error
  // and strtoull("-1") wraps to UINT64_MAX — both must fail loudly here.
  for (const char* bad :
       {"", "banana", "-1", "+1", " 1", "1 ", "12abc", "0x10", "1.5"}) {
    SCOPED_TRACE(bad);
    const auto parsed = ParseUnsigned(bad);
    ASSERT_FALSE(parsed.ok());
    EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
    // The message names the offending string so CLI errors are
    // actionable.
    EXPECT_NE(parsed.status().message().find(bad), std::string::npos);
  }
  // One past UINT64_MAX overflows.
  const auto over = ParseUnsigned("18446744073709551616");
  ASSERT_FALSE(over.ok());
  EXPECT_EQ(over.status().code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace hamlet
