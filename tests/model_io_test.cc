// Model serialization round-trip and malformed-input tests.
//
// The contract under test (docs/ARCHITECTURE.md, "The model format"):
// Fit -> SaveModel -> LoadModel -> PredictAll is bit-identical to the
// in-memory model at any thread count; the on-disk bytes are
// little-endian regardless of host; and every corrupt, truncated or
// version-skewed input fails with a Status — never a crash.

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "hamlet/io/model_io.h"
#include "hamlet/io/serialize.h"
#include "hamlet/ml/majority.h"
#include "hamlet/ml/nb/backward_selection.h"
#include "parity_util.h"

namespace hamlet {
namespace {

using test::MakeParityDataset;
using test::MakeParityViews;
using test::ParityLearner;
using test::ParityLearners;
using test::ScopedThreads;

/// The serialization roster: every ParityLearner family plus the
/// constant-majority fallback (all seven ModelFamily tags).
std::vector<ParityLearner> SerializableLearners() {
  std::vector<ParityLearner> learners = ParityLearners();
  learners.push_back({"majority", [] {
                        return std::make_unique<ml::MajorityClassifier>();
                      }});
  return learners;
}

/// Serializes `model` to an in-memory byte string, asserting success.
std::string SaveToString(const ml::Classifier& model) {
  std::ostringstream os(std::ios::binary);
  const Status st = io::SaveModel(model, os);
  EXPECT_TRUE(st.ok()) << model.name() << ": " << st.ToString();
  return os.str();
}

Result<std::unique_ptr<ml::Classifier>> LoadFromString(
    const std::string& bytes) {
  std::istringstream is(bytes, std::ios::binary);
  return io::LoadModel(is);
}

TEST(ModelIoTest, RoundTripIsBitIdenticalForEveryFamily) {
  const Dataset data = MakeParityDataset(240, {7, 4, 9, 3, 5}, 17);
  const auto views = MakeParityViews(data, 18);

  for (const ParityLearner& learner : SerializableLearners()) {
    SCOPED_TRACE(learner.name);
    auto model = learner.make();
    ASSERT_TRUE(model->Fit(views.train).ok());
    ASSERT_NE(model->family(), ml::ModelFamily::kUnsupported);
    ASSERT_FALSE(model->train_domain_sizes().empty());

    const std::string bytes = SaveToString(*model);
    auto loaded = LoadFromString(bytes);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

    EXPECT_EQ(loaded.value()->name(), model->name());
    EXPECT_EQ(loaded.value()->family(), model->family());
    EXPECT_EQ(loaded.value()->train_domain_sizes(),
              model->train_domain_sizes());

    // Bit-identical batch predictions, serial and pooled.
    for (const char* threads : {"1", "4"}) {
      ScopedThreads scoped(threads);
      const std::vector<uint8_t> expected = model->PredictAll(views.test);
      const std::vector<uint8_t> got =
          loaded.value()->PredictAll(views.test);
      EXPECT_EQ(got, expected) << "threads=" << threads;
    }

    // Saving the loaded model reproduces the byte stream exactly: the
    // format has no nondeterministic or host-dependent fields.
    EXPECT_EQ(SaveToString(*loaded.value()), bytes);
  }
}

TEST(ModelIoTest, FileRoundTrip) {
  const Dataset data = MakeParityDataset(120, {5, 6, 4}, 3);
  const auto views = MakeParityViews(data, 4);
  ml::MajorityClassifier model;
  ASSERT_TRUE(model.Fit(views.train).ok());

  const std::string path =
      testing::TempDir() + "/hamlet_model_io_test.hmlm";
  ASSERT_TRUE(io::SaveModelToFile(model, path).ok());
  auto loaded = io::LoadModelFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value()->PredictAll(views.test),
            model.PredictAll(views.test));
  std::remove(path.c_str());

  // Failure Statuses name the offending path (and the errno reason), so
  // an operator reading one log line knows which file to look at.
  const auto missing = io::LoadModelFromFile(path + ".does-not-exist");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
  EXPECT_NE(missing.status().message().find(path + ".does-not-exist"),
            std::string::npos);
}

TEST(ModelIoTest, SaveToUnwritablePathNamesThePath) {
  const Dataset data = MakeParityDataset(60, {3, 2}, 9);
  ml::MajorityClassifier model;
  ASSERT_TRUE(model.Fit(DataView(&data)).ok());
  const std::string path =
      testing::TempDir() + "/hamlet-no-such-dir/model.hmlm";
  const Status st = io::SaveModelToFile(model, path);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find(path), std::string::npos);
}

TEST(ModelIoTest, HeaderBytesArePinnedLittleEndian) {
  const Dataset data = MakeParityDataset(60, {3, 2}, 9);
  ml::MajorityClassifier model;
  ASSERT_TRUE(model.Fit(DataView(&data)).ok());
  const std::string bytes = SaveToString(model);

  // magic, version=2, family=kMajority(7), domains=[3,2] — byte-exact,
  // so a model written on any host loads on any other. v2 appends a
  // CRC-32 u32 between the body and the footer.
  const unsigned char expected_header[] = {
      'H', 'M', 'L', 'M',       // magic
      2,   0,   0,   0,         // version u32 LE
      7,   0,   0,   0,         // family u32 LE
      2,   0,   0,   0, 0, 0, 0, 0,  // domain-count u64 LE
      3,   0,   0,   0,         // domain[0]
      2,   0,   0,   0,         // domain[1]
  };
  // header + at least the 4-byte checksum + 4-byte footer.
  ASSERT_GE(bytes.size(), sizeof(expected_header) + 8);
  for (size_t i = 0; i < sizeof(expected_header); ++i) {
    EXPECT_EQ(static_cast<unsigned char>(bytes[i]), expected_header[i])
        << "header byte " << i;
  }
  EXPECT_EQ(bytes.substr(bytes.size() - 4), "MLMH");
}

/// Rewrites v2 bytes as the v1 layout: version field 1, no checksum
/// field before the footer. This is byte-exact what PR 6 builds wrote.
std::string AsV1Bytes(const std::string& v2) {
  std::string v1 = v2;
  v1[4] = 1;                          // version u32 LE, low byte
  v1.erase(v1.size() - 8, 4);         // drop the CRC ahead of the footer
  return v1;
}

TEST(ModelIoTest, V1ModelStillLoads) {
  // Forward compatibility: model files written before the checksum
  // existed (format v1) must keep loading, with identical predictions.
  const Dataset data = MakeParityDataset(240, {7, 4, 9, 3, 5}, 17);
  const auto views = MakeParityViews(data, 18);
  for (const ParityLearner& learner : SerializableLearners()) {
    SCOPED_TRACE(learner.name);
    auto model = learner.make();
    ASSERT_TRUE(model->Fit(views.train).ok());
    const std::string v1 = AsV1Bytes(SaveToString(*model));
    const auto loaded = LoadFromString(v1);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_EQ(loaded.value()->PredictAll(views.test),
              model->PredictAll(views.test));
    // Re-saving writes the current (v2) format.
    EXPECT_EQ(SaveToString(*loaded.value())[4], 2);
  }
}

TEST(ModelIoTest, EverySingleBitFlipIsRejected) {
  // Bit-rot detection: flip each bit of the stream in turn; every
  // variant must fail to load. Flips inside the checksummed region
  // (family tag through body) that survive structural validation
  // surface as kDataLoss; flips the reader rejects structurally keep
  // their original codes. Not one flip may load silently.
  const Dataset data = MakeParityDataset(60, {3, 2}, 9);
  ml::MajorityClassifier model;
  ASSERT_TRUE(model.Fit(DataView(&data)).ok());
  const std::string bytes = SaveToString(model);

  size_t dataloss = 0;
  for (size_t i = 0; i < bytes.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string bad = bytes;
      bad[i] = static_cast<char>(bad[i] ^ (1 << bit));
      const auto loaded = LoadFromString(bad);
      ASSERT_FALSE(loaded.ok()) << "byte " << i << " bit " << bit;
      if (loaded.status().code() == StatusCode::kDataLoss) ++dataloss;
    }
  }
  // The CRC must be doing real work: a healthy share of the flips are
  // only catchable by the checksum.
  EXPECT_GT(dataloss, 0u);
}

TEST(ModelIoTest, ChecksumFieldFlipIsDataLoss) {
  const Dataset data = MakeParityDataset(60, {3, 2}, 9);
  ml::MajorityClassifier model;
  ASSERT_TRUE(model.Fit(DataView(&data)).ok());
  std::string bytes = SaveToString(model);
  // The stored CRC sits in the 4 bytes ahead of the 4-byte footer.
  bytes[bytes.size() - 8] = static_cast<char>(bytes[bytes.size() - 8] ^ 1);
  const auto loaded = LoadFromString(bytes);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(loaded.status().message().find("checksum"), std::string::npos);
}

TEST(ModelIoTest, SaveBeforeFitFails) {
  for (const ParityLearner& learner : SerializableLearners()) {
    SCOPED_TRACE(learner.name);
    auto model = learner.make();
    std::ostringstream os(std::ios::binary);
    const Status st = io::SaveModel(*model, os);
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
  }
}

TEST(ModelIoTest, UnsupportedWrapperFamilyIsRejected) {
  const Dataset data = MakeParityDataset(90, {4, 3, 5}, 21);
  const auto views = MakeParityViews(data, 22);
  ml::BackwardSelectionClassifier model(
      [] { return std::make_unique<ml::NaiveBayes>(); }, views.test);
  ASSERT_TRUE(model.Fit(views.train).ok());
  EXPECT_EQ(model.family(), ml::ModelFamily::kUnsupported);
  std::ostringstream os(std::ios::binary);
  const Status st = io::SaveModel(model, os);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
}

TEST(ModelIoTest, VersionMismatchNamesBothVersions) {
  const Dataset data = MakeParityDataset(60, {3, 2}, 9);
  ml::MajorityClassifier model;
  ASSERT_TRUE(model.Fit(DataView(&data)).ok());
  std::string bytes = SaveToString(model);
  bytes[4] = 99;  // version field, low byte
  const auto loaded = LoadFromString(bytes);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("99"), std::string::npos);
  EXPECT_NE(loaded.status().message().find("version"), std::string::npos);
}

TEST(ModelIoTest, CorruptMagicFamilyAndFooterAreRejected) {
  const Dataset data = MakeParityDataset(60, {3, 2}, 9);
  ml::MajorityClassifier model;
  ASSERT_TRUE(model.Fit(DataView(&data)).ok());
  const std::string bytes = SaveToString(model);

  {
    std::string bad = bytes;
    bad[0] = 'X';
    const auto loaded = LoadFromString(bad);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  }
  {
    std::string bad = bytes;
    bad[8] = static_cast<char>(200);  // family tag: unknown value
    const auto loaded = LoadFromString(bad);
    ASSERT_FALSE(loaded.ok());
    EXPECT_NE(loaded.status().message().find("family"), std::string::npos);
  }
  {
    std::string bad = bytes;
    bad[bad.size() - 1] = 'X';  // footer
    const auto loaded = LoadFromString(bad);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(ModelIoTest, EveryTruncationFailsWithStatusForEveryFamily) {
  // Small dataset keeps the byte streams short enough to sweep every
  // prefix for every family (the MLP model is the largest at ~50 KiB
  // with the tiny test architecture, so stride the long middle).
  const Dataset data = MakeParityDataset(90, {4, 3, 5}, 31);
  const auto views = MakeParityViews(data, 32);
  for (const ParityLearner& learner : SerializableLearners()) {
    SCOPED_TRACE(learner.name);
    auto model = learner.make();
    ASSERT_TRUE(model->Fit(views.train).ok());
    const std::string bytes = SaveToString(*model);

    for (size_t len = 0; len < bytes.size();
         len += (len > 256 && bytes.size() - len > 512) ? 37 : 1) {
      const auto loaded = LoadFromString(bytes.substr(0, len));
      ASSERT_FALSE(loaded.ok()) << "prefix length " << len;
    }
  }
}

TEST(ModelIoTest, ImplausibleVectorLengthIsRejectedWithoutAllocating) {
  const Dataset data = MakeParityDataset(60, {3, 2}, 9);
  ml::MajorityClassifier model;
  ASSERT_TRUE(model.Fit(DataView(&data)).ok());
  std::string bytes = SaveToString(model);
  // Blow up the domain-count u64 (offset 12) far past kMaxVectorElements;
  // the reader must refuse before resizing.
  for (size_t i = 12; i < 20; ++i) bytes[i] = static_cast<char>(0xff);
  const auto loaded = LoadFromString(bytes);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("implausible"),
            std::string::npos);
}

TEST(ModelIoTest, BodyHeaderDisagreementIsRejected) {
  // A naive-bayes body whose likelihood tables cover domains {3,2} must
  // not load under a header claiming wider domains: the load would
  // otherwise index past the tables at predict time.
  const Dataset data = MakeParityDataset(60, {3, 2}, 9);
  ml::NaiveBayes model;
  ASSERT_TRUE(model.Fit(DataView(&data)).ok());
  std::string bytes = SaveToString(model);
  ASSERT_EQ(bytes[20], 3);  // domain[0] low byte
  bytes[20] = 5;
  const auto loaded = LoadFromString(bytes);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace hamlet
