// Tests for hamlet/ml/knn: 1-nearest-neighbour.

#include <gtest/gtest.h>

#include "hamlet/common/rng.h"
#include "hamlet/data/dataset.h"
#include "hamlet/data/view.h"
#include "hamlet/ml/knn/one_nn.h"
#include "hamlet/ml/metrics.h"

namespace hamlet {
namespace ml {
namespace {

Dataset MakeDataset(const std::vector<std::vector<uint32_t>>& rows,
                    const std::vector<uint8_t>& labels,
                    std::vector<uint32_t> domains) {
  std::vector<FeatureSpec> specs;
  for (size_t j = 0; j < domains.size(); ++j) {
    specs.push_back(
        {"f" + std::to_string(j), domains[j], FeatureRole::kHome, -1});
  }
  Dataset d(specs);
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_TRUE(d.AppendRow(rows[i], labels[i]).ok());
  }
  return d;
}

TEST(OneNnTest, ExactMatchWins) {
  Dataset d = MakeDataset({{0, 0}, {1, 1}, {0, 1}}, {0, 1, 0}, {2, 2});
  OneNearestNeighbor knn;
  ASSERT_TRUE(knn.Fit(DataView(&d)).ok());
  // Training rows are their own nearest neighbours.
  DataView v(&d);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(knn.NearestIndex(v, i), i);
    EXPECT_EQ(knn.Predict(v, i), d.label(i));
  }
}

TEST(OneNnTest, HammingDistanceSemantics) {
  // Train: (0,0,0)->0, (1,1,1)->1. Query (1,1,0) is closer to the second.
  Dataset train = MakeDataset({{0, 0, 0}, {1, 1, 1}}, {0, 1}, {2, 2, 2});
  OneNearestNeighbor knn;
  ASSERT_TRUE(knn.Fit(DataView(&train)).ok());
  Dataset q = MakeDataset({{1, 1, 0}}, {0}, {2, 2, 2});
  EXPECT_EQ(knn.Predict(DataView(&q), 0), 1);
}

TEST(OneNnTest, TieBreaksTowardEarliestTrainingRow) {
  // Query (0,1) is at distance 1 from both training rows; the first wins.
  Dataset train = MakeDataset({{0, 0}, {1, 1}}, {0, 1}, {2, 2});
  OneNearestNeighbor knn;
  ASSERT_TRUE(knn.Fit(DataView(&train)).ok());
  Dataset q = MakeDataset({{0, 1}}, {0}, {2, 2});
  EXPECT_EQ(knn.NearestIndex(DataView(&q), 0), 0u);
  EXPECT_EQ(knn.Predict(DataView(&q), 0), 0);
}

TEST(OneNnTest, EmptyTrainingFails) {
  Dataset d = MakeDataset({{0}}, {0}, {2});
  DataView empty(&d, {}, {0});
  OneNearestNeighbor knn;
  EXPECT_FALSE(knn.Fit(empty).ok());
}

TEST(OneNnTest, MemorisesTrainingSetPerfectly) {
  // The paper (§5, Table 5): 1-NN training accuracy is ~1 because every
  // training point matches itself — unless an identical row has the
  // opposite label. Use distinct rows to avoid that.
  Dataset d({{"a", 64, FeatureRole::kHome, -1}});
  for (uint32_t i = 0; i < 64; ++i) {
    d.AppendRowUnchecked({i}, static_cast<uint8_t>(i % 2));
  }
  OneNearestNeighbor knn;
  ASSERT_TRUE(knn.Fit(DataView(&d)).ok());
  EXPECT_DOUBLE_EQ(Accuracy(knn, DataView(&d)), 1.0);
}

TEST(OneNnTest, FkMemorisationGeneralisesOverFiniteDomain) {
  // The paper's §5 insight: with a closed FK domain, matching on FK alone
  // recovers the FK-determined label on fresh test rows.
  Rng rng(5);
  const uint32_t nr = 20;
  std::vector<uint8_t> fk_label(nr);
  for (auto& v : fk_label) v = static_cast<uint8_t>(rng.UniformInt(2));
  auto make = [&](size_t n, uint64_t seed) {
    Dataset d({{"fk", nr, FeatureRole::kForeignKey, 0},
               {"noise", 2, FeatureRole::kHome, -1}});
    Rng r(seed);
    for (size_t i = 0; i < n; ++i) {
      const uint32_t fk = static_cast<uint32_t>(r.UniformInt(nr));
      d.AppendRowUnchecked({fk, static_cast<uint32_t>(r.UniformInt(2))},
                           fk_label[fk]);
    }
    return d;
  };
  Dataset train = make(400, 6);
  Dataset test = make(200, 7);
  OneNearestNeighbor knn;
  ASSERT_TRUE(knn.Fit(DataView(&train)).ok());
  EXPECT_GT(Accuracy(knn, DataView(&test)), 0.95);
}

}  // namespace
}  // namespace ml
}  // namespace hamlet
