// Tests for hamlet/ml/svm: kernels, SMO solver, C-SVC classifier.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "hamlet/common/rng.h"
#include "hamlet/data/dataset.h"
#include "hamlet/data/view.h"
#include "hamlet/ml/metrics.h"
#include "hamlet/ml/svm/kernel.h"
#include "hamlet/ml/svm/smo.h"
#include "hamlet/ml/svm/svm.h"
#include "parity_util.h"

namespace hamlet {
namespace ml {
namespace {

// ---------------------------------------------------------------- kernel --

TEST(KernelTest, MatchCount) {
  const uint32_t a[] = {1, 2, 3, 4};
  const uint32_t b[] = {1, 0, 3, 0};
  EXPECT_EQ(MatchCount(a, b, 4), 2u);
  EXPECT_EQ(MatchCount(a, a, 4), 4u);
}

TEST(KernelTest, LinearEqualsMatchFraction) {
  KernelConfig cfg{KernelType::kLinear, 0.0, 2};
  const uint32_t a[] = {1, 2, 3};
  const uint32_t b[] = {1, 2, 0};
  EXPECT_DOUBLE_EQ(KernelEval(cfg, a, b, 3), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(KernelEval(cfg, a, a, 3), 1.0);
}

TEST(KernelTest, PolyIsSquaredScaledDot) {
  KernelConfig cfg{KernelType::kPoly, 0.5, 2};
  const uint32_t a[] = {7, 7};
  const uint32_t b[] = {7, 7};
  // matches=2, (0.5*2)^2 = 1.
  EXPECT_DOUBLE_EQ(KernelEval(cfg, a, b, 2), 1.0);
}

TEST(KernelTest, RbfIdentityAndDecay) {
  KernelConfig cfg{KernelType::kRbf, 0.1, 2};
  const uint32_t a[] = {1, 2, 3};
  const uint32_t b[] = {1, 2, 9};
  EXPECT_DOUBLE_EQ(KernelEval(cfg, a, a, 3), 1.0);
  // one mismatch: exp(-0.1 * 2).
  EXPECT_NEAR(KernelEval(cfg, a, b, 3), std::exp(-0.2), 1e-12);
}

TEST(KernelTest, RbfMonotoneInMismatches) {
  KernelConfig cfg{KernelType::kRbf, 0.3, 2};
  const uint32_t a[] = {0, 0, 0, 0};
  const uint32_t one[] = {9, 0, 0, 0};
  const uint32_t two[] = {9, 9, 0, 0};
  EXPECT_GT(KernelEval(cfg, a, one, 4), KernelEval(cfg, a, two, 4));
}

TEST(KernelTest, GramIsSymmetricWithUnitDiagonalForRbf) {
  Rng rng(3);
  const size_t n = 20, d = 5;
  std::vector<uint32_t> rows(n * d);
  for (auto& v : rows) v = static_cast<uint32_t>(rng.UniformInt(4));
  KernelConfig cfg{KernelType::kRbf, 0.2, 2};
  const std::vector<float> gram = ComputeGram(cfg, rows, n, d);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_FLOAT_EQ(gram[i * n + i], 1.0f);
    for (size_t j = 0; j < n; ++j) {
      EXPECT_FLOAT_EQ(gram[i * n + j], gram[j * n + i]);
    }
  }
}

// ------------------------------------------------------------------- SMO --

TEST(SmoTest, RejectsBadInput) {
  EXPECT_FALSE(SolveSmo({}, {}, {}).ok());
  std::vector<float> gram = {1.0f};
  EXPECT_FALSE(SolveSmo(gram, {2}, {}).ok());  // bad label
}

TEST(SmoTest, SingleClassDegenerates) {
  std::vector<float> gram = {1.0f, 0.0f, 0.0f, 1.0f};
  Result<SmoSolution> sol = SolveSmo(gram, {1, 1}, {});
  ASSERT_TRUE(sol.ok());
  EXPECT_TRUE(sol.value().converged);
  EXPECT_EQ(sol.value().num_support_vectors, 0u);
}

TEST(SmoTest, SingleClassSolutionFieldsAreFullyPinned) {
  // The single-class early return must set every SmoSolution field
  // deterministically, not just the ones it happens to touch.
  std::vector<float> gram = {1.0f, 0.0f, 0.0f, 1.0f};
  for (int8_t label : {int8_t{1}, int8_t{-1}}) {
    Result<SmoSolution> sol = SolveSmo(gram, {label, label}, {});
    ASSERT_TRUE(sol.ok());
    const SmoSolution& s = sol.value();
    EXPECT_EQ(s.alpha, std::vector<double>(2, 0.0));
    EXPECT_EQ(s.bias, label > 0 ? 1.0 : -1.0);
    EXPECT_EQ(s.iterations, 0u);
    EXPECT_TRUE(s.converged);
    EXPECT_EQ(s.num_support_vectors, 0u);
    EXPECT_EQ(s.cache_hits, 0u);
    EXPECT_EQ(s.cache_misses, 0u);
  }
}

TEST(SmoTest, ExhaustedIterationBudgetStillPinsAllFields) {
  // A deliberately starved run (1 pairwise update) exercises the
  // non-converged exit: every field must still be set deterministically.
  std::vector<float> gram = {1.0f, 0.0f, 0.0f, 1.0f};
  SmoConfig cfg;
  cfg.C = 10.0;
  cfg.max_iterations = 1;
  Result<SmoSolution> sol = SolveSmo(gram, {1, -1}, cfg);
  ASSERT_TRUE(sol.ok());
  const SmoSolution& s = sol.value();
  EXPECT_FALSE(s.converged);
  EXPECT_EQ(s.iterations, 1u);
  EXPECT_EQ(s.alpha.size(), 2u);
  EXPECT_GT(s.num_support_vectors, 0u);
  EXPECT_GT(s.cache_hits + s.cache_misses, 0u);  // rows were fetched
}

TEST(SmoTest, SolvesTwoPointProblem) {
  // Two points, k(x,x)=1, k(x,z)=0, labels +1/-1: symmetric solution with
  // alpha_1 = alpha_2 (equality constraint) and margin at both points.
  std::vector<float> gram = {1.0f, 0.0f, 0.0f, 1.0f};
  SmoConfig cfg;
  cfg.C = 10.0;
  Result<SmoSolution> sol = SolveSmo(gram, {1, -1}, cfg);
  ASSERT_TRUE(sol.ok());
  EXPECT_TRUE(sol.value().converged);
  EXPECT_NEAR(sol.value().alpha[0], sol.value().alpha[1], 1e-6);
  EXPECT_GT(sol.value().alpha[0], 0.0);
  // f(x1) = alpha1*k11 - alpha2*k21 + b = alpha1 + b should be ~ +1.
  const double f1 = sol.value().alpha[0] + sol.value().bias;
  EXPECT_NEAR(f1, 1.0, 0.01);
}

TEST(SmoTest, AlphasRespectBoxAndEqualityConstraints) {
  Rng rng(9);
  const size_t n = 60, d = 6;
  std::vector<uint32_t> rows(n * d);
  for (auto& v : rows) v = static_cast<uint32_t>(rng.UniformInt(3));
  std::vector<int8_t> y(n);
  for (size_t i = 0; i < n; ++i) y[i] = rng.Bernoulli(0.5) ? 1 : -1;
  KernelConfig kc{KernelType::kRbf, 0.3, 2};
  SmoConfig cfg;
  cfg.C = 2.0;
  Result<SmoSolution> sol =
      SolveSmo(ComputeGram(kc, rows, n, d), y, cfg);
  ASSERT_TRUE(sol.ok());
  double eq = 0.0;
  for (size_t i = 0; i < n; ++i) {
    EXPECT_GE(sol.value().alpha[i], -1e-9);
    EXPECT_LE(sol.value().alpha[i], cfg.C + 1e-9);
    eq += sol.value().alpha[i] * y[i];
  }
  EXPECT_NEAR(eq, 0.0, 1e-6);
}

// ------------------------------------------- degenerate-curvature update --

/// Independent evaluation of the pair-restricted dual objective
///   psi(a1, a2) = 1/2 k11 a1^2 + 1/2 k22 a2^2 + s k12 a1 a2
///                 + y1 v1 a1 + y2 v2 a2 - a1 - a2,
/// where v1/v2 are the fixed contributions of all other points, recovered
/// from the error-cache values the same way the solver sees them:
///   v1 = (E1 + y1) - b - a1_old y1 k11 - a2_old y2 k12.
/// This re-derives the objective from the dual definition, independently
/// of the f1/f2 algebra inside DegenerateEndpointAj.
double PairObjective(double a1, double a2, double y1, double y2, double k11,
                     double k22, double k12, double v1, double v2) {
  return 0.5 * k11 * a1 * a1 + 0.5 * k22 * a2 * a2 + y1 * y2 * k12 * a1 * a2 +
         y1 * v1 * a1 + y2 * v2 * a2 - a1 - a2;
}

TEST(SmoDegenerateTest, PicksLowerObjectiveEndNotGradientSign) {
  // Near-duplicate same-label pair under float rounding: kii = kjj = 1,
  // kij = 1 + 1e-7, so eta = -2e-7 (concave along the constraint line).
  // Exact duplicates with equal labels have identical errors, so the
  // local gradient term y2*(E1 - E2) is 0 and the old heuristic fell to
  // the lo end; the concave term makes the end FARTHER from aj_old
  // strictly lower, which here is hi. Platt's endpoint evaluation must
  // pick it.
  const double yi = 1.0, yj = 1.0, s = 1.0;
  const double kii = 1.0, kjj = 1.0, kij = 1.0 + 1e-7;
  const double ai_old = 0.5, aj_old = 0.3;
  const double lo = 0.0, hi = 0.8;  // C = 1, same-label box
  const double e = -0.4, bias = 0.25;  // Ei == Ej for duplicates

  const double chosen = DegenerateEndpointAj(lo, hi, ai_old, aj_old, yi, yj,
                                             e, e, bias, kii, kjj, kij);
  EXPECT_EQ(chosen, hi);

  // Independent check that hi really is the lower-objective end (and
  // that the old gradient-sign choice, lo, was the worse end).
  const double v1 = (e + yi) - bias - ai_old * yi * kii - aj_old * yj * kij;
  const double v2 = (e + yj) - bias - ai_old * yi * kij - aj_old * yj * kjj;
  const double a1_at_lo = ai_old + s * (aj_old - lo);
  const double a1_at_hi = ai_old + s * (aj_old - hi);
  const double obj_lo =
      PairObjective(a1_at_lo, lo, yi, yj, kii, kjj, kij, v1, v2);
  const double obj_hi =
      PairObjective(a1_at_hi, hi, yi, yj, kii, kjj, kij, v1, v2);
  EXPECT_LT(obj_hi, obj_lo);
}

TEST(SmoDegenerateTest, TiedEndsStayPut) {
  // Exact duplicates (eta = 0) with equal errors: the objective is
  // constant along the segment, so the update must report no progress
  // (return aj_old) instead of shuffling mass to an arbitrary end.
  const double aj_old = 0.3;
  const double chosen = DegenerateEndpointAj(
      /*lo=*/0.0, /*hi=*/0.8, /*ai_old=*/0.5, aj_old, /*yi=*/1.0,
      /*yj=*/1.0, /*error_i=*/-0.4, /*error_j=*/-0.4, /*bias=*/0.25,
      /*kii=*/1.0, /*kjj=*/1.0, /*kij=*/1.0);
  EXPECT_EQ(chosen, aj_old);
}

TEST(SmoDegenerateTest, LinearCaseAgreesWithGradientSign) {
  // eta exactly 0 with a nonzero gradient: the objective is linear in
  // aj, so the endpoint evaluation must agree with the gradient sign
  // (the regime where the old heuristic was already correct).
  const double lo = 0.0, hi = 0.8;
  // yj*(Ei - Ej) > 0 -> hi under the old rule.
  EXPECT_EQ(DegenerateEndpointAj(lo, hi, 0.5, 0.3, 1.0, 1.0, /*error_i=*/0.4,
                                 /*error_j=*/-0.4, 0.0, 1.0, 1.0, 1.0),
            hi);
  // yj*(Ei - Ej) < 0 -> lo.
  EXPECT_EQ(DegenerateEndpointAj(lo, hi, 0.5, 0.3, 1.0, 1.0, /*error_i=*/-0.4,
                                 /*error_j=*/0.4, 0.0, 1.0, 1.0, 1.0),
            lo);
}

TEST(SmoDegenerateTest, DuplicateRowProblemStaysStableAndFeasible) {
  // Integration guard: a training set dominated by exactly duplicated
  // rows (every eta for a duplicate pair is exactly 0) must converge
  // without burning the iteration budget shuffling mass between
  // equivalent coordinates, and the solution must stay feasible.
  const size_t d = 3, reps = 8;
  const std::vector<std::vector<uint32_t>> patterns = {
      {0, 1, 2}, {1, 0, 2}, {2, 2, 0}, {0, 0, 1}};
  std::vector<uint32_t> rows;
  std::vector<int8_t> y;
  for (size_t pt = 0; pt < patterns.size(); ++pt) {
    for (size_t r = 0; r < reps; ++r) {
      rows.insert(rows.end(), patterns[pt].begin(), patterns[pt].end());
      // Mixed labels inside two of the duplicate groups force overlap.
      const bool flip = (pt >= 2) && (r % 2 == 1);
      y.push_back(((pt % 2 == 0) != flip) ? 1 : -1);
    }
  }
  const size_t n = y.size();
  KernelConfig kc{KernelType::kRbf, 0.5, 2};
  SmoConfig cfg;
  cfg.C = 4.0;
  Result<SmoSolution> sol = SolveSmo(ComputeGram(kc, rows, n, d), y, cfg);
  ASSERT_TRUE(sol.ok());
  EXPECT_TRUE(sol.value().converged);
  EXPECT_LT(sol.value().iterations, cfg.max_iterations);
  double eq = 0.0;
  for (size_t i = 0; i < n; ++i) {
    EXPECT_GE(sol.value().alpha[i], -1e-9);
    EXPECT_LE(sol.value().alpha[i], cfg.C + 1e-9);
    eq += sol.value().alpha[i] * y[i];
  }
  EXPECT_NEAR(eq, 0.0, 1e-6);
}

// ----------------------------------------------- WSS2 working-set select --

TEST(SmoWss2SelectTest, TieBreaksToLowestIndexOnEqualGain) {
  // Candidates 1 and 2 are exact clones (same error, diagonal, and row-i
  // entry), so their quadratic gains are bit-identical; candidate 3
  // violates less. The scan must keep the FIRST maximum, i.e. index 1.
  const float row_i[] = {1.0f, 0.2f, 0.2f, 0.2f};
  const float diag[] = {1.0f, 1.0f, 1.0f, 1.0f};
  const double error[] = {-1.0, 0.5, 0.5, 0.2};
  const int8_t y[] = {1, -1, -1, -1};
  const double alpha[] = {0.0, 0.0, 0.0, 0.0};
  const int32_t active[] = {0, 1, 2, 3};
  EXPECT_EQ(SelectWss2J(row_i, diag, error, y, alpha, /*C=*/10.0, active, 4,
                        /*kii=*/1.0, /*up_best=*/1.0),
            1u);
}

TEST(SmoWss2SelectTest, PicksMaxGainCandidate) {
  // Same setup, but candidate 2 violates harder (larger error), so its
  // gain dominates and it must win despite the higher index.
  const float row_i[] = {1.0f, 0.2f, 0.2f, 0.2f};
  const float diag[] = {1.0f, 1.0f, 1.0f, 1.0f};
  const double error[] = {-1.0, 0.5, 0.8, 0.2};
  const int8_t y[] = {1, -1, -1, -1};
  const double alpha[] = {0.0, 0.0, 0.0, 0.0};
  const int32_t active[] = {0, 1, 2, 3};
  EXPECT_EQ(SelectWss2J(row_i, diag, error, y, alpha, /*C=*/10.0, active, 4,
                        /*kii=*/1.0, /*up_best=*/1.0),
            2u);
}

TEST(SmoWss2SelectTest, NoViolatingCandidateReturnsSentinel) {
  // Every I_low score meets or exceeds up_best: nothing violates.
  const float row_i[] = {1.0f, 0.2f};
  const float diag[] = {1.0f, 1.0f};
  const double error[] = {-1.0, -1.0};  // score 1.0 == up_best
  const int8_t y[] = {1, -1};
  const double alpha[] = {0.0, 0.0};
  const int32_t active[] = {0, 1};
  EXPECT_EQ(SelectWss2J(row_i, diag, error, y, alpha, /*C=*/10.0, active, 2,
                        /*kii=*/1.0, /*up_best=*/1.0),
            std::numeric_limits<size_t>::max());
}

// ----------------------------------------- HAMLET_SMO_WSS2 / _SHRINK env --

TEST(SmoEnvTest, ToggleGrammar) {
  {
    test::ScopedEnvVar unset("HAMLET_SMO_WSS2", nullptr);
    EXPECT_TRUE(SmoWss2FromEnv());
  }
  for (const char* v : {"1", "on", "true", "yes"}) {
    test::ScopedEnvVar env("HAMLET_SMO_WSS2", v);
    EXPECT_TRUE(SmoWss2FromEnv()) << v;
  }
  for (const char* v : {"0", "off", "false", "no"}) {
    test::ScopedEnvVar env("HAMLET_SMO_WSS2", v);
    EXPECT_FALSE(SmoWss2FromEnv()) << v;
    test::ScopedEnvVar shrink_env("HAMLET_SMO_SHRINK", v);
    EXPECT_FALSE(SmoShrinkFromEnv()) << v;
  }
  {
    // Garbage warns (once) and keeps the acceleration enabled.
    test::ScopedEnvVar env("HAMLET_SMO_WSS2", "definitely-bogus");
    EXPECT_TRUE(SmoWss2FromEnv());
    test::ScopedEnvVar shrink_env("HAMLET_SMO_SHRINK", "2");
    EXPECT_TRUE(SmoShrinkFromEnv());
  }
}

TEST(SmoEnvTest, EnvTogglesMatchExplicitConfig) {
  // kEnv with the vars set to 0 must reproduce the explicit kOff run
  // bit-for-bit (and therefore the historical first-order solver).
  Rng rng(31);
  const size_t n = 50, d = 5;
  std::vector<uint32_t> rows(n * d);
  for (auto& v : rows) v = static_cast<uint32_t>(rng.UniformInt(3));
  std::vector<int8_t> y(n);
  for (auto& v : y) v = rng.Bernoulli(0.5) ? 1 : -1;
  const std::vector<float> gram =
      ComputeGram({KernelType::kRbf, 0.3, 2}, rows, n, d);

  SmoConfig pinned;
  pinned.C = 2.0;
  pinned.use_wss2 = SmoToggle::kOff;
  pinned.use_shrinking = SmoToggle::kOff;
  const Result<SmoSolution> off = SolveSmo(gram, y, pinned);
  ASSERT_TRUE(off.ok());

  test::ScopedEnvVar wss2_env("HAMLET_SMO_WSS2", "0");
  test::ScopedEnvVar shrink_env("HAMLET_SMO_SHRINK", "0");
  SmoConfig from_env;
  from_env.C = 2.0;  // toggles left at kEnv
  const Result<SmoSolution> env = SolveSmo(gram, y, from_env);
  ASSERT_TRUE(env.ok());
  EXPECT_EQ(off.value().alpha, env.value().alpha);  // bitwise
  EXPECT_EQ(off.value().bias, env.value().bias);
  EXPECT_EQ(off.value().iterations, env.value().iterations);
  EXPECT_EQ(env.value().shrink_events, 0u);
  EXPECT_EQ(env.value().unshrink_events, 0u);
}

TEST(SmoWss2SelectTest, ZeroToleranceStopsAtExactOptimumInsteadOfCrashing) {
  // tolerance = 0 lets SelectPair pass its violation check at an EXACT
  // active-set optimum (up_best == low_best), where no candidate
  // violates strictly and SelectWss2J returns its sentinel. The solver
  // must treat that as optimality, not index with SIZE_MAX.
  std::vector<float> gram = {1.0f, 0.0f, 0.0f, 1.0f};
  SmoConfig cfg;
  cfg.C = 10.0;
  cfg.tolerance = 0.0;
  cfg.use_wss2 = SmoToggle::kOn;
  const Result<SmoSolution> sol = SolveSmo(gram, {1, -1}, cfg);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol.value().alpha[0], sol.value().alpha[1], 1e-9);
}

// ------------------------------------------------------------- shrinking --

/// Max KKT violation m - M of (alpha, bias) on the FULL problem,
/// recomputed from scratch (no solver state): the solver may only claim
/// convergence when this is below tolerance, shrink schedule or not.
double FullProblemViolation(const std::vector<float>& gram,
                            const std::vector<int8_t>& y,
                            const std::vector<double>& alpha, double C) {
  const size_t n = y.size();
  double up_best = -std::numeric_limits<double>::infinity();
  double low_best = std::numeric_limits<double>::infinity();
  for (size_t t = 0; t < n; ++t) {
    double f = 0.0;
    for (size_t s = 0; s < n; ++s) {
      f += alpha[s] * y[s] * static_cast<double>(gram[t * n + s]);
    }
    // score = -(f + b - y_t); the bias shift is common to every score
    // and cancels in m - M, so it is dropped here.
    const double score = static_cast<double>(y[t]) - f;
    const bool in_up = (y[t] > 0 && alpha[t] < C) ||
                       (y[t] < 0 && alpha[t] > 0.0);
    const bool in_low = (y[t] > 0 && alpha[t] > 0.0) ||
                        (y[t] < 0 && alpha[t] < C);
    if (in_up && score > up_best) up_best = score;
    if (in_low && score < low_best) low_best = score;
  }
  return up_best - low_best;
}

TEST(SmoShrinkTest, UnshrinkBeforeConvergenceKeepsFullProblemExact) {
  // Overlapping classes (25% flipped labels) with a large C: many points
  // oscillate between the box bounds, so shrink passes (every n
  // iterations at this size) deactivate points that later matter again.
  // The solver must reconstruct the full gradient and unshrink before
  // declaring convergence, so the returned iterate has to satisfy the
  // stopping rule on the FULL problem, recomputed from scratch.
  Rng rng(42);
  const size_t n = 160, d = 6;
  std::vector<uint32_t> rows(n * d);
  for (auto& v : rows) v = static_cast<uint32_t>(rng.UniformInt(4));
  std::vector<int8_t> y(n);
  for (size_t i = 0; i < n; ++i) {
    bool label = rows[i * d] >= 2;
    if (rng.Bernoulli(0.25)) label = !label;
    y[i] = label ? 1 : -1;
  }
  const std::vector<float> gram =
      ComputeGram({KernelType::kRbf, 0.15, 2}, rows, n, d);

  SmoConfig cfg;
  cfg.C = 50.0;
  cfg.max_iterations = 2000000;
  cfg.use_wss2 = SmoToggle::kOn;
  cfg.use_shrinking = SmoToggle::kOn;
  const Result<SmoSolution> sol = SolveSmo(gram, y, cfg);
  ASSERT_TRUE(sol.ok());
  ASSERT_TRUE(sol.value().converged);
  // The schedule must have actually exercised shrink AND unshrink —
  // points left the active set and were reconstructed back in.
  EXPECT_GE(sol.value().shrink_events, 1u);
  EXPECT_GE(sol.value().unshrink_events, 1u);
  EXPECT_GT(sol.value().iterations, std::min(n, size_t{1000}));

  // Exactness: tolerance-optimal on the full problem, from scratch
  // (small slack for the float drift between the solver's incremental
  // error cache and this recomputation).
  EXPECT_LT(FullProblemViolation(gram, y, sol.value().alpha, cfg.C),
            cfg.tolerance + 1e-6);

  // Feasibility on the full problem.
  double eq = 0.0;
  for (size_t i = 0; i < n; ++i) {
    EXPECT_GE(sol.value().alpha[i], -1e-9);
    EXPECT_LE(sol.value().alpha[i], cfg.C + 1e-9);
    eq += sol.value().alpha[i] * y[i];
  }
  EXPECT_NEAR(eq, 0.0, 1e-6);

  // The shrink-free run converges to the same optimum: identical
  // decision-function signs everywhere (the solutions themselves may
  // differ within tolerance).
  SmoConfig no_shrink = cfg;
  no_shrink.use_shrinking = SmoToggle::kOff;
  const Result<SmoSolution> base = SolveSmo(gram, y, no_shrink);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(base.value().converged);
  EXPECT_EQ(base.value().shrink_events, 0u);
  for (size_t t = 0; t < n; ++t) {
    double f_shrink = sol.value().bias, f_base = base.value().bias;
    for (size_t s = 0; s < n; ++s) {
      f_shrink += sol.value().alpha[s] * y[s] *
                  static_cast<double>(gram[t * n + s]);
      f_base += base.value().alpha[s] * y[s] *
                static_cast<double>(gram[t * n + s]);
    }
    EXPECT_EQ(f_shrink >= 0.0, f_base >= 0.0) << "point " << t;
  }
}

// --------------------------------------------------------- solver totals --

TEST(SmoTotalsTest, GlobalTotalsTrackSolvesAndReset) {
  std::vector<float> gram = {1.0f, 0.0f, 0.0f, 1.0f};
  SmoConfig cfg;
  cfg.C = 10.0;
  const SmoTotals before = GlobalSmoTotals();
  const Result<SmoSolution> sol = SolveSmo(gram, {1, -1}, cfg);
  ASSERT_TRUE(sol.ok());
  const SmoTotals after = GlobalSmoTotals();
  EXPECT_EQ(after.fits - before.fits, 1u);
  EXPECT_EQ(after.iterations - before.iterations, sol.value().iterations);
  ResetGlobalSmoTotals();
  const SmoTotals reset = GlobalSmoTotals();
  EXPECT_EQ(reset.fits, 0u);
  EXPECT_EQ(reset.iterations, 0u);
  EXPECT_EQ(reset.shrink_events, 0u);
  EXPECT_EQ(reset.unshrink_events, 0u);
}

// ------------------------------------------------------------------- SVM --

Dataset MakeSeparable(size_t n, uint64_t seed) {
  // Feature 0 in {0,1} decides the label; feature 1 is noise.
  Dataset d({{"sig", 2, FeatureRole::kHome, -1},
             {"noise", 3, FeatureRole::kHome, -1}});
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    const uint32_t s = static_cast<uint32_t>(rng.UniformInt(2));
    d.AppendRowUnchecked({s, static_cast<uint32_t>(rng.UniformInt(3))},
                         static_cast<uint8_t>(s));
  }
  return d;
}

Dataset MakeXor(size_t n, uint64_t seed) {
  Dataset d({{"a", 2, FeatureRole::kHome, -1},
             {"b", 2, FeatureRole::kHome, -1}});
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    const uint32_t a = static_cast<uint32_t>(rng.UniformInt(2));
    const uint32_t b = static_cast<uint32_t>(rng.UniformInt(2));
    d.AppendRowUnchecked({a, b}, static_cast<uint8_t>(a ^ b));
  }
  return d;
}

TEST(KernelSvmTest, LinearSeparatesLinearlySeparableData) {
  Dataset data = MakeSeparable(200, 1);
  DataView view(&data);
  SvmConfig cfg;
  cfg.kernel.type = KernelType::kLinear;
  cfg.C = 10.0;
  KernelSvm svm(cfg);
  ASSERT_TRUE(svm.Fit(view).ok());
  EXPECT_DOUBLE_EQ(Accuracy(svm, view), 1.0);
}

TEST(KernelSvmTest, RbfLearnsXor) {
  Dataset data = MakeXor(200, 2);
  DataView view(&data);
  SvmConfig cfg;
  cfg.kernel.type = KernelType::kRbf;
  cfg.kernel.gamma = 1.0;
  cfg.C = 10.0;
  KernelSvm svm(cfg);
  ASSERT_TRUE(svm.Fit(view).ok());
  EXPECT_DOUBLE_EQ(Accuracy(svm, view), 1.0);
}

TEST(KernelSvmTest, PolyLearnsXor) {
  Dataset data = MakeXor(200, 3);
  DataView view(&data);
  SvmConfig cfg;
  cfg.kernel.type = KernelType::kPoly;
  cfg.kernel.gamma = 1.0;
  cfg.C = 10.0;
  KernelSvm svm(cfg);
  ASSERT_TRUE(svm.Fit(view).ok());
  EXPECT_GE(Accuracy(svm, view), 0.95);
}

TEST(KernelSvmTest, SingleClassPredictsThatClass) {
  Dataset d({{"f", 2, FeatureRole::kHome, -1}});
  for (int i = 0; i < 10; ++i) {
    d.AppendRowUnchecked({static_cast<uint32_t>(i % 2)}, 1);
  }
  KernelSvm svm;
  ASSERT_TRUE(svm.Fit(DataView(&d)).ok());
  EXPECT_EQ(svm.Predict(DataView(&d), 0), 1);
}

TEST(KernelSvmTest, MaxTrainRowsCapsProblemSize) {
  Dataset data = MakeSeparable(500, 4);
  DataView view(&data);
  SvmConfig cfg;
  cfg.kernel.type = KernelType::kLinear;
  cfg.max_train_rows = 50;
  KernelSvm svm(cfg);
  ASSERT_TRUE(svm.Fit(view).ok());
  EXPECT_LE(svm.num_support_vectors(), 50u);
  EXPECT_GE(Accuracy(svm, view), 0.99);  // still separable
}

TEST(KernelSvmTest, ExposesSolverCounters) {
  Dataset data = MakeXor(200, 9);
  DataView view(&data);
  SvmConfig cfg;
  cfg.kernel.type = KernelType::kRbf;
  cfg.kernel.gamma = 1.0;
  cfg.C = 10.0;
  cfg.smo_shrinking = SmoToggle::kOff;
  KernelSvm svm(cfg);
  const SmoTotals before = GlobalSmoTotals();
  ASSERT_TRUE(svm.Fit(view).ok());
  EXPECT_GT(svm.last_iterations(), 0u);
  EXPECT_EQ(svm.last_shrink_events(), 0u);  // shrinking pinned off
  EXPECT_EQ(svm.last_unshrink_events(), 0u);
  const SmoTotals after = GlobalSmoTotals();
  EXPECT_EQ(after.fits - before.fits, 1u);
  EXPECT_EQ(after.iterations - before.iterations, svm.last_iterations());
}

TEST(KernelSvmTest, DecisionValueSignMatchesPrediction) {
  Dataset data = MakeSeparable(100, 5);
  DataView view(&data);
  KernelSvm svm({{KernelType::kRbf, 0.5, 2}, 1.0, 1e-3, 20000, 0});
  ASSERT_TRUE(svm.Fit(view).ok());
  for (size_t i = 0; i < 20; ++i) {
    EXPECT_EQ(svm.Predict(view, i), svm.DecisionValue(view, i) >= 0 ? 1 : 0);
  }
}

TEST(KernelSvmTest, EmptyTrainingFails) {
  Dataset data = MakeSeparable(10, 6);
  DataView empty(&data, {}, {0, 1});
  KernelSvm svm;
  EXPECT_FALSE(svm.Fit(empty).ok());
}

TEST(KernelSvmTest, Names) {
  SvmConfig lin;
  lin.kernel.type = KernelType::kLinear;
  EXPECT_EQ(KernelSvm(lin).name(), "svm-linear");
  SvmConfig rbf;
  rbf.kernel.type = KernelType::kRbf;
  EXPECT_EQ(KernelSvm(rbf).name(), "svm-rbf");
}

// Parameterised generalisation sweep: for several (C, gamma) settings the
// RBF-SVM must beat majority guessing out of sample on learnable data.
class SvmGridTest
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(SvmGridTest, GeneralisesAboveMajority) {
  const auto [C, gamma] = GetParam();
  Dataset train = MakeXor(300, 7);
  Dataset test = MakeXor(200, 8);
  SvmConfig cfg;
  cfg.kernel.type = KernelType::kRbf;
  cfg.kernel.gamma = gamma;
  cfg.C = C;
  KernelSvm svm(cfg);
  ASSERT_TRUE(svm.Fit(DataView(&train)).ok());
  const double acc = Accuracy(svm, DataView(&test));
  // The weakest grid corner (C=0.1, gamma=0.1) legitimately underfits XOR
  // (too little capacity); it must still be stable. All stronger settings
  // must actually learn the concept.
  if (C * gamma <= 0.011) {
    EXPECT_GE(acc, 0.45);
  } else {
    EXPECT_GT(acc, 0.9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    PaperGridCorners, SvmGridTest,
    ::testing::Combine(::testing::Values(0.1, 1.0, 100.0),
                       ::testing::Values(0.1, 1.0)));

}  // namespace
}  // namespace ml
}  // namespace hamlet
