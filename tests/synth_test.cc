// Tests for hamlet/synth: distributions and the data generators.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "hamlet/common/rng.h"
#include "hamlet/relational/join.h"
#include "hamlet/synth/distributions.h"
#include "hamlet/synth/onexr.h"
#include "hamlet/synth/reponexr.h"
#include "hamlet/synth/realworld.h"
#include "hamlet/synth/xsxr.h"

namespace hamlet {
namespace synth {
namespace {

// --------------------------------------------------------- distributions --

TEST(DiscreteTest, ProbabilitiesNormalise) {
  Discrete d({2.0, 6.0, 2.0});
  EXPECT_NEAR(d.probability(0), 0.2, 1e-12);
  EXPECT_NEAR(d.probability(1), 0.6, 1e-12);
  EXPECT_NEAR(d.probability(2), 0.2, 1e-12);
}

TEST(DiscreteTest, SamplingMatchesWeights) {
  Discrete d({1.0, 0.0, 3.0});
  Rng rng(5);
  std::vector<int> counts(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[d.Sample(rng)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.25, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.75, 0.01);
}

TEST(DiscreteTest, UniformIsUniform) {
  Discrete d = MakeUniform(16);
  Rng rng(3);
  std::vector<int> counts(16, 0);
  const int n = 64000;
  for (int i = 0; i < n; ++i) ++counts[d.Sample(rng)];
  for (int c : counts) EXPECT_NEAR(c, n / 16, 5 * std::sqrt(n / 16.0));
}

TEST(DiscreteTest, ZipfZeroExponentIsUniform) {
  Discrete d = MakeZipf(10, 0.0);
  for (size_t i = 0; i < 10; ++i) EXPECT_NEAR(d.probability(i), 0.1, 1e-12);
}

TEST(DiscreteTest, ZipfIsMonotoneDecreasing) {
  Discrete d = MakeZipf(20, 1.5);
  for (size_t i = 1; i < 20; ++i) {
    EXPECT_LT(d.probability(i), d.probability(i - 1));
  }
  // Head dominance grows with the exponent.
  Discrete steep = MakeZipf(20, 3.0);
  EXPECT_GT(steep.probability(0), d.probability(0));
}

TEST(DiscreteTest, NeedleAndThreadMass) {
  Discrete d = MakeNeedleAndThread(11, 0.5);
  EXPECT_NEAR(d.probability(0), 0.5, 1e-12);
  for (size_t i = 1; i < 11; ++i) EXPECT_NEAR(d.probability(i), 0.05, 1e-12);
}

// ----------------------------------------------------------------- OneXr --

TEST(OneXrTest, ShapeMatchesConfig) {
  OneXrConfig cfg;
  cfg.ns = 500;
  cfg.nr = 25;
  cfg.ds = 3;
  cfg.dr = 5;
  StarSchema star = GenerateOneXr(cfg);
  EXPECT_TRUE(star.Validate().ok());
  EXPECT_EQ(star.num_facts(), 500u);
  EXPECT_EQ(star.num_dimensions(), 1u);
  EXPECT_EQ(star.dimension(0).table.num_rows(), 25u);
  EXPECT_EQ(star.dimension(0).table.num_columns(), 5u);
  EXPECT_EQ(star.fact().num_columns(), 3u);
}

TEST(OneXrTest, DeterministicInSeed) {
  OneXrConfig cfg;
  cfg.seed = 11;
  StarSchema a = GenerateOneXr(cfg);
  StarSchema b = GenerateOneXr(cfg);
  ASSERT_EQ(a.num_facts(), b.num_facts());
  for (size_t i = 0; i < a.num_facts(); ++i) {
    EXPECT_EQ(a.labels()[i], b.labels()[i]);
    EXPECT_EQ(a.fk_column(0)[i], b.fk_column(0)[i]);
  }
}

TEST(OneXrTest, LabelFollowsXrWithNoise) {
  // P(Y = 1 | Xr = 1) = p: with p = 0.1 labels disagree with Xr ~90%.
  OneXrConfig cfg;
  cfg.ns = 20000;
  cfg.p = 0.1;
  cfg.seed = 3;
  StarSchema star = GenerateOneXr(cfg);
  size_t agree = 0;
  for (size_t i = 0; i < star.num_facts(); ++i) {
    const uint32_t xr = star.dimension(0).table.at(star.fk_column(0)[i], 0);
    agree += star.labels()[i] == (xr % 2);
  }
  EXPECT_NEAR(static_cast<double>(agree) / star.num_facts(), 0.1, 0.02);
}

TEST(OneXrTest, BayesErrorIsMinP) {
  OneXrConfig cfg;
  cfg.p = 0.1;
  EXPECT_DOUBLE_EQ(OneXrBayesError(cfg), 0.1);
  cfg.p = 0.7;
  EXPECT_NEAR(OneXrBayesError(cfg), 0.3, 1e-12);
}

TEST(OneXrTest, ZipfSkewConcentratesFks) {
  OneXrConfig uni;
  uni.ns = 20000;
  uni.nr = 40;
  uni.seed = 4;
  OneXrConfig zipf = uni;
  zipf.skew = FkSkew::kZipf;
  zipf.skew_param = 2.0;
  auto head_count = [](const StarSchema& star) {
    size_t cnt = 0;
    for (uint32_t fk : star.fk_column(0)) cnt += fk == 0;
    return cnt;
  };
  // Under Zipf(2), FK=0 takes ~61% of the mass vs 2.5% under uniform.
  EXPECT_GT(head_count(GenerateOneXr(zipf)),
            5 * head_count(GenerateOneXr(uni)));
}

TEST(OneXrTest, NeedleThreadSkewHitsNeedleMass) {
  OneXrConfig cfg;
  cfg.ns = 20000;
  cfg.nr = 40;
  cfg.skew = FkSkew::kNeedleThread;
  cfg.skew_param = 0.5;
  cfg.seed = 6;
  StarSchema star = GenerateOneXr(cfg);
  size_t needle = 0;
  for (uint32_t fk : star.fk_column(0)) needle += fk == 0;
  EXPECT_NEAR(static_cast<double>(needle) / star.num_facts(), 0.5, 0.02);
}

TEST(OneXrTest, WiderXrDomain) {
  OneXrConfig cfg;
  cfg.xr_domain = 8;
  cfg.seed = 9;
  StarSchema star = GenerateOneXr(cfg);
  EXPECT_EQ(star.dimension(0).table.schema().column(0).domain_size, 8u);
}

// ------------------------------------------------------------------ XSXR --

TEST(XsxrTest, ShapeMatchesConfig) {
  XsxrConfig cfg;
  cfg.ns = 400;
  cfg.nr = 20;
  cfg.ds = 3;
  cfg.dr = 4;
  StarSchema star = GenerateXsxr(cfg);
  EXPECT_TRUE(star.Validate().ok());
  EXPECT_EQ(star.num_facts(), 400u);
  EXPECT_EQ(star.dimension(0).table.num_rows(), 20u);
  EXPECT_EQ(star.dimension(0).table.num_columns(), 4u);
  EXPECT_EQ(star.fact().num_columns(), 3u);
}

TEST(XsxrTest, LabelIsDeterministicGivenFeatures) {
  // H(Y | X_S, X_R) = 0: any two examples agreeing on all features and the
  // dimension content must agree on the label.
  XsxrConfig cfg;
  cfg.ns = 3000;
  cfg.nr = 10;
  cfg.ds = 3;
  cfg.dr = 3;
  cfg.seed = 21;
  StarSchema star = GenerateXsxr(cfg);
  Result<Dataset> joined = JoinAllTables(star);
  ASSERT_TRUE(joined.ok());
  const Dataset& t = joined.value();
  // Key = (X_S bits, X_R bits) -> label must be constant.
  std::map<std::vector<uint32_t>, uint8_t> seen;
  for (size_t r = 0; r < t.num_rows(); ++r) {
    std::vector<uint32_t> key;
    for (size_t c = 0; c < t.num_features(); ++c) {
      if (t.feature_spec(c).role != FeatureRole::kForeignKey) {
        key.push_back(t.feature(r, c));
      }
    }
    auto [it, inserted] = seen.emplace(key, t.label(r));
    if (!inserted) {
      EXPECT_EQ(it->second, t.label(r)) << "H(Y|X) > 0 at row " << r;
    }
  }
}

TEST(XsxrTest, FkImpliesXr) {
  // The implicit join guarantees FK -> X_R.
  XsxrConfig cfg;
  cfg.ns = 1000;
  cfg.seed = 31;
  StarSchema star = GenerateXsxr(cfg);
  EXPECT_TRUE(star.Validate().ok());
}

TEST(XsxrTest, DeterministicInSeed) {
  XsxrConfig cfg;
  cfg.seed = 77;
  StarSchema a = GenerateXsxr(cfg);
  StarSchema b = GenerateXsxr(cfg);
  ASSERT_EQ(a.num_facts(), b.num_facts());
  for (size_t i = 0; i < a.num_facts(); ++i) {
    EXPECT_EQ(a.labels()[i], b.labels()[i]);
  }
}

// ------------------------------------------------------------- RepOneXr --

TEST(RepOneXrTest, AllForeignColumnsReplicateXr) {
  RepOneXrConfig cfg;
  cfg.nr = 30;
  cfg.dr = 6;
  cfg.seed = 41;
  StarSchema star = GenerateRepOneXr(cfg);
  const Table& dim = star.dimension(0).table;
  for (size_t r = 0; r < dim.num_rows(); ++r) {
    for (size_t c = 1; c < dim.num_columns(); ++c) {
      EXPECT_EQ(dim.at(r, c), dim.at(r, 0));
    }
  }
}

TEST(RepOneXrTest, ShapeAndLabels) {
  RepOneXrConfig cfg;
  cfg.ns = 5000;
  cfg.p = 0.1;
  cfg.seed = 43;
  StarSchema star = GenerateRepOneXr(cfg);
  EXPECT_EQ(star.num_facts(), 5000u);
  size_t agree = 0;
  for (size_t i = 0; i < star.num_facts(); ++i) {
    const uint32_t xr = star.dimension(0).table.at(star.fk_column(0)[i], 0);
    agree += star.labels()[i] == (xr % 2);
  }
  EXPECT_NEAR(static_cast<double>(agree) / star.num_facts(), 0.1, 0.03);
}

// ------------------------------------------------------------- realworld --

TEST(RealWorldTest, SevenDatasetsInPaperOrder) {
  const auto specs = AllRealWorldSpecs();
  ASSERT_EQ(specs.size(), 7u);
  EXPECT_EQ(specs[0].name, "Expedia");
  EXPECT_EQ(specs[1].name, "Movies");
  EXPECT_EQ(specs[2].name, "Yelp");
  EXPECT_EQ(specs[3].name, "Walmart");
  EXPECT_EQ(specs[4].name, "LastFM");
  EXPECT_EQ(specs[5].name, "Books");
  EXPECT_EQ(specs[6].name, "Flights");
}

TEST(RealWorldTest, SchemaShapesMatchTable1) {
  const auto specs = AllRealWorldSpecs();
  // q per dataset.
  EXPECT_EQ(specs[0].dims.size(), 2u);  // Expedia
  EXPECT_EQ(specs[6].dims.size(), 3u);  // Flights
  // d_S per dataset.
  EXPECT_EQ(specs[0].ds, 1u);
  EXPECT_EQ(specs[1].ds, 0u);
  EXPECT_EQ(specs[6].ds, 20u);
  // d_R of selected dimensions.
  EXPECT_EQ(specs[2].dims[0].dr, 32u);  // Yelp businesses
  EXPECT_EQ(specs[1].dims[1].dr, 21u);  // Movies movies
  // Expedia search FK is open-domain.
  EXPECT_TRUE(specs[0].dims[1].open_domain_fk);
  EXPECT_FALSE(specs[0].dims[0].open_domain_fk);
}

TEST(RealWorldTest, TupleRatiosMatchTable1) {
  // Table 1's ratio convention: 0.5 * n_S / n_R.
  for (const auto& spec : AllRealWorldSpecs()) {
    StarSchema star = GenerateRealWorld(spec);
    ASSERT_TRUE(star.Validate().ok());
    for (size_t i = 0; i < spec.dims.size(); ++i) {
      const double ratio = 0.5 * star.TupleRatio(i);
      if (spec.name == "Yelp" && i == 1) {
        EXPECT_NEAR(ratio, 2.5, 0.3);
      }
      if (spec.name == "LastFM" && i == 1) {
        EXPECT_NEAR(ratio, 3.5, 0.4);
      }
      if (spec.name == "Movies" && i == 1) {
        EXPECT_NEAR(ratio, 135.0, 15.0);
      }
    }
  }
}

TEST(RealWorldTest, GeneratorIsDeterministic) {
  const auto spec = AllRealWorldSpecs()[2];  // Yelp
  StarSchema a = GenerateRealWorld(spec);
  StarSchema b = GenerateRealWorld(spec);
  ASSERT_EQ(a.num_facts(), b.num_facts());
  for (size_t i = 0; i < a.num_facts(); ++i) {
    EXPECT_EQ(a.labels()[i], b.labels()[i]);
  }
}

TEST(RealWorldTest, LabelsAreNotDegenerate) {
  for (const auto& spec : AllRealWorldSpecs()) {
    StarSchema star = GenerateRealWorld(spec);
    size_t pos = 0;
    for (uint8_t y : star.labels()) pos += y;
    const double rate = static_cast<double>(pos) / star.num_facts();
    EXPECT_GT(rate, 0.15) << spec.name;
    EXPECT_LT(rate, 0.85) << spec.name;
  }
}

TEST(RealWorldTest, OpenDomainFkExcludedFromJoin) {
  const auto spec = AllRealWorldSpecs()[0];  // Expedia
  StarSchema star = GenerateRealWorld(spec);
  Result<Dataset> joined =
      JoinAllTables(star, RealWorldJoinOptions(spec));
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(joined.value().IndexOf("fk_searches"), -1);
  EXPECT_GE(joined.value().IndexOf("fk_hotels"), 0);
}

TEST(RealWorldTest, LookupByName) {
  Result<RealWorldSpec> r = RealWorldSpecByName("yelp");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().name, "Yelp");
  EXPECT_FALSE(RealWorldSpecByName("nope").ok());
}

TEST(RealWorldTest, ScaleMultipliesFactRows) {
  Result<RealWorldSpec> half = RealWorldSpecByName("Movies", 0.5);
  Result<RealWorldSpec> full = RealWorldSpecByName("Movies", 1.0);
  ASSERT_TRUE(half.ok());
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(half.value().ns * 2, full.value().ns);
}

}  // namespace
}  // namespace synth
}  // namespace hamlet
