// Integration/property tests reproducing the paper's simulation claims at
// small scale: NoJoin tracks JoinAll for high-capacity models at healthy
// tuple ratios, across all three scenarios (OneXr, XSXR, RepOneXr).

#include <gtest/gtest.h>

#include "hamlet/core/experiment.h"
#include "hamlet/core/variants.h"
#include "hamlet/data/split.h"
#include "hamlet/ml/knn/one_nn.h"
#include "hamlet/ml/metrics.h"
#include "hamlet/ml/tree/decision_tree.h"
#include "hamlet/synth/onexr.h"
#include "hamlet/synth/reponexr.h"
#include "hamlet/synth/xsxr.h"

namespace hamlet {
namespace core {
namespace {

/// Trains a gini tree on the variant and returns holdout error, averaged
/// over `runs` freshly sampled datasets (cheap Monte Carlo).
template <typename MakeStar>
double AvgTreeError(MakeStar make_star, FeatureVariant variant,
                    size_t runs) {
  double total = 0.0;
  for (size_t r = 0; r < runs; ++r) {
    StarSchema star = make_star(r);
    Result<PreparedData> prepared = Prepare(star, 1000 + r);
    EXPECT_TRUE(prepared.ok());
    const PreparedData& p = prepared.value();
    SplitViews views = MakeSplitViews(
        p.data, p.split, SelectVariant(p.data, variant));
    ml::DecisionTree tree({.minsplit = 10, .cp = 0.001});
    EXPECT_TRUE(tree.Fit(views.train).ok());
    total += ml::ErrorRate(tree, views.test);
  }
  return total / static_cast<double>(runs);
}

TEST(SimulationOneXr, NoJoinMatchesJoinAllAtHighTupleRatio) {
  auto make = [](size_t r) {
    synth::OneXrConfig cfg;
    cfg.ns = 1000;
    cfg.nr = 40;  // tuple ratio 25 on the training half
    cfg.seed = 50 + r;
    return synth::GenerateOneXr(cfg);
  };
  const double err_join = AvgTreeError(make, FeatureVariant::kJoinAll, 5);
  const double err_nojoin = AvgTreeError(make, FeatureVariant::kNoJoin, 5);
  // Figure 2's core result: the curves coincide near the Bayes error 0.1.
  EXPECT_NEAR(err_nojoin, err_join, 0.035);
  EXPECT_LT(err_nojoin, 0.2);
}

TEST(SimulationOneXr, NoJoinStillFineAtTupleRatioThree) {
  // The paper's headline: "even for a tuple ratio of just 3, NoJoin and
  // JoinAll have similar errors with the decision tree" (Figure 2(B)).
  auto make = [](size_t r) {
    synth::OneXrConfig cfg;
    cfg.ns = 1000;
    cfg.nr = 170;  // ~500 train rows / 170 FK values ~ 3
    cfg.seed = 80 + r;
    return synth::GenerateOneXr(cfg);
  };
  const double err_join = AvgTreeError(make, FeatureVariant::kJoinAll, 5);
  const double err_nojoin = AvgTreeError(make, FeatureVariant::kNoJoin, 5);
  EXPECT_NEAR(err_nojoin, err_join, 0.05);
}

TEST(SimulationOneXr, FkSkewDoesNotWidenTheGap) {
  // Figure 5: Zipfian FK skew leaves NoJoin ~ JoinAll for the tree.
  auto make = [](size_t r) {
    synth::OneXrConfig cfg;
    cfg.ns = 1000;
    cfg.nr = 40;
    cfg.skew = synth::FkSkew::kZipf;
    cfg.skew_param = 2.0;
    cfg.seed = 110 + r;
    return synth::GenerateOneXr(cfg);
  };
  const double err_join = AvgTreeError(make, FeatureVariant::kJoinAll, 5);
  const double err_nojoin = AvgTreeError(make, FeatureVariant::kNoJoin, 5);
  EXPECT_NEAR(err_nojoin, err_join, 0.04);
}

TEST(SimulationXsxr, NoJoinMatchesJoinAll) {
  // Figure 6: even with the whole [X_S, X_R] determining Y, NoJoin's FK
  // representation keeps up with JoinAll.
  auto make = [](size_t r) {
    synth::XsxrConfig cfg;
    cfg.ns = 1000;
    cfg.nr = 40;
    cfg.ds = 4;
    cfg.dr = 4;
    cfg.seed = 140 + r;
    return synth::GenerateXsxr(cfg);
  };
  const double err_join = AvgTreeError(make, FeatureVariant::kJoinAll, 5);
  const double err_nojoin = AvgTreeError(make, FeatureVariant::kNoJoin, 5);
  EXPECT_NEAR(err_nojoin, err_join, 0.06);
}

TEST(SimulationRepOneXr, ReplicatedXrDoesNotConfuseTheTree) {
  // Figure 7(A): dr replicas of Xr, tuple ratio 25 -> NoJoin ~ JoinAll.
  auto make = [](size_t r) {
    synth::RepOneXrConfig cfg;
    cfg.ns = 1000;
    cfg.nr = 40;
    cfg.dr = 8;
    cfg.seed = 170 + r;
    return synth::GenerateRepOneXr(cfg);
  };
  const double err_join = AvgTreeError(make, FeatureVariant::kJoinAll, 5);
  const double err_nojoin = AvgTreeError(make, FeatureVariant::kNoJoin, 5);
  EXPECT_NEAR(err_nojoin, err_join, 0.04);
}

TEST(SimulationOneXr, TreeUsesFkHeavilyUnderNoJoin) {
  // §4.1's inspection: under NoJoin, FK dominates the partitioning because
  // it functionally determines Xr.
  synth::OneXrConfig cfg;
  cfg.ns = 1000;
  cfg.nr = 40;
  cfg.seed = 200;
  StarSchema star = synth::GenerateOneXr(cfg);
  Result<PreparedData> prepared = Prepare(star, 201);
  ASSERT_TRUE(prepared.ok());
  const PreparedData& p = prepared.value();
  const auto features = SelectVariant(p.data, FeatureVariant::kNoJoin);
  SplitViews views = MakeSplitViews(p.data, p.split, features);
  ml::DecisionTree tree({.minsplit = 10, .cp = 0.001});
  ASSERT_TRUE(tree.Fit(views.train).ok());
  const std::vector<size_t> use = tree.FeatureUseCounts();
  // Find the FK feature's index within the NoJoin view.
  size_t fk_view_index = features.size();
  for (size_t j = 0; j < features.size(); ++j) {
    if (p.data.feature_spec(features[j]).role == FeatureRole::kForeignKey) {
      fk_view_index = j;
    }
  }
  ASSERT_LT(fk_view_index, features.size());
  size_t others = 0;
  for (size_t j = 0; j < use.size(); ++j) {
    if (j != fk_view_index) others += use[j];
  }
  EXPECT_GE(use[fk_view_index], 1u);
  EXPECT_GE(use[fk_view_index], others);  // FK at least ties everything else
}

TEST(Simulation1Nn, UnstableAtLowTupleRatio) {
  // Figure 3(A): 1-NN deviates from JoinAll far earlier than the tree.
  // At nr = 250 (train tuple ratio ~2), NoJoin-1NN should be clearly worse
  // than NoFK-1NN (which sees Xr directly).
  synth::OneXrConfig cfg;
  cfg.ns = 1000;
  cfg.nr = 250;
  cfg.ds = 4;
  cfg.seed = 230;
  StarSchema star = synth::GenerateOneXr(cfg);
  Result<PreparedData> prepared = Prepare(star, 231);
  ASSERT_TRUE(prepared.ok());
  const PreparedData& p = prepared.value();
  auto error_for = [&](FeatureVariant v) {
    SplitViews views =
        MakeSplitViews(p.data, p.split, SelectVariant(p.data, v));
    ml::OneNearestNeighbor knn;
    EXPECT_TRUE(knn.Fit(views.train).ok());
    return ml::ErrorRate(knn, views.test);
  };
  EXPECT_GT(error_for(FeatureVariant::kNoJoin),
            error_for(FeatureVariant::kNoFK));
}

}  // namespace
}  // namespace core
}  // namespace hamlet
