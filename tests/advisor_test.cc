// Tests for hamlet/core/advisor: the tuple-ratio decision rule.

#include <gtest/gtest.h>

#include "hamlet/core/advisor.h"
#include "hamlet/synth/realworld.h"

namespace hamlet {
namespace core {
namespace {

StarSchema MakeStarWithRatio(size_t ns, size_t nr) {
  Table dim(TableSchema({{"x", 2}}));
  for (size_t r = 0; r < nr; ++r) dim.AppendRowUnchecked({0});
  StarSchema star{Table(TableSchema({{"h", 2}}))};
  star.AddDimension("d", std::move(dim));
  for (size_t i = 0; i < ns; ++i) {
    EXPECT_TRUE(
        star.AppendFact({0}, {static_cast<uint32_t>(i % nr)}, i % 2).ok());
  }
  return star;
}

TEST(AdvisorTest, ThresholdsFollowThePaper) {
  EXPECT_DOUBLE_EQ(SafetyThreshold(ModelFamily::kLinear), 20.0);
  EXPECT_DOUBLE_EQ(SafetyThreshold(ModelFamily::kRbfSvm), 6.0);
  EXPECT_DOUBLE_EQ(SafetyThreshold(ModelFamily::kDecisionTree), 3.0);
  EXPECT_DOUBLE_EQ(SafetyThreshold(ModelFamily::kAnn), 3.0);
  EXPECT_DOUBLE_EQ(SafetyThreshold(ModelFamily::kOneNn), 100.0);
}

TEST(AdvisorTest, HighRatioIsSafeForTreesNotForLinear) {
  // Training tuple ratio = 0.5 * 1000/100 = 5: above the tree threshold,
  // below the linear one. This is the paper's headline finding in rule
  // form: trees need ~6x fewer examples than linear models.
  StarSchema star = MakeStarWithRatio(1000, 100);
  const auto tree = AdviseJoins(star, ModelFamily::kDecisionTree);
  ASSERT_EQ(tree.size(), 1u);
  EXPECT_EQ(tree[0].advice, JoinAdvice::kSafeToAvoid);
  const auto linear = AdviseJoins(star, ModelFamily::kLinear);
  EXPECT_EQ(linear[0].advice, JoinAdvice::kKeepJoin);
}

TEST(AdvisorTest, BorderlineBand) {
  // Ratio 3.5 for trees (threshold 3, 1.5x band up to 4.5) -> borderline.
  StarSchema star = MakeStarWithRatio(700, 100);
  const auto advice = AdviseJoins(star, ModelFamily::kDecisionTree);
  EXPECT_EQ(advice[0].advice, JoinAdvice::kBorderline);
}

TEST(AdvisorTest, LowRatioKeepsJoin) {
  StarSchema star = MakeStarWithRatio(400, 100);  // train ratio 2
  const auto advice = AdviseJoins(star, ModelFamily::kDecisionTree);
  EXPECT_EQ(advice[0].advice, JoinAdvice::kKeepJoin);
  EXPECT_NE(advice[0].rationale.find("conservative"), std::string::npos);
}

TEST(AdvisorTest, OpenDomainFkIsNeverAvoidable) {
  StarSchema star = MakeStarWithRatio(10000, 10);
  const auto advice =
      AdviseJoins(star, ModelFamily::kDecisionTree, 0.5, {0});
  EXPECT_EQ(advice[0].advice, JoinAdvice::kNeverAvoid);
}

TEST(AdvisorTest, TupleRatioUsesTrainFraction) {
  StarSchema star = MakeStarWithRatio(1000, 100);
  const auto half = AdviseJoins(star, ModelFamily::kLinear, 0.5);
  const auto full = AdviseJoins(star, ModelFamily::kLinear, 1.0);
  EXPECT_DOUBLE_EQ(half[0].tuple_ratio, 5.0);
  EXPECT_DOUBLE_EQ(full[0].tuple_ratio, 10.0);
}

TEST(AdvisorTest, YelpUsersTableIsTheKnownUnsafeJoin) {
  // End-to-end against the simulated Yelp star schema: the users dimension
  // (tuple ratio 2.5) must be flagged for every model family, while the
  // businesses dimension (9.4) is fine for trees.
  auto spec = synth::RealWorldSpecByName("Yelp");
  ASSERT_TRUE(spec.ok());
  StarSchema star = synth::GenerateRealWorld(spec.value());
  const auto advice = AdviseJoins(star, ModelFamily::kDecisionTree);
  ASSERT_EQ(advice.size(), 2u);
  EXPECT_NE(advice[0].advice, JoinAdvice::kKeepJoin);   // businesses
  EXPECT_EQ(advice[1].advice, JoinAdvice::kKeepJoin);   // users, TR 2.5
}

TEST(AdvisorTest, FormatProducesOneRowPerDimension) {
  StarSchema star = MakeStarWithRatio(1000, 100);
  const auto advice = AdviseJoins(star, ModelFamily::kRbfSvm);
  const std::string text = FormatAdvice(advice);
  EXPECT_NE(text.find("dimension"), std::string::npos);
  EXPECT_NE(text.find("d"), std::string::npos);
  EXPECT_NE(text.find("rbf-svm"), std::string::npos);
}

TEST(AdvisorTest, Names) {
  EXPECT_STREQ(ModelFamilyName(ModelFamily::kAnn), "ann");
  EXPECT_STREQ(JoinAdviceName(JoinAdvice::kSafeToAvoid), "safe-to-avoid");
  EXPECT_STREQ(JoinAdviceName(JoinAdvice::kNeverAvoid), "never-avoid");
}

}  // namespace
}  // namespace core
}  // namespace hamlet
