// Parameterised property sweeps over the three simulation generators:
// invariants that must hold for every configuration, not just the bench
// defaults — the FD FK -> X_R in the joined output, label-noise
// calibration, shape bookkeeping, and dim_seed/seed separation.

#include <gtest/gtest.h>

#include <map>

#include "hamlet/relational/join.h"
#include "hamlet/synth/onexr.h"
#include "hamlet/synth/reponexr.h"
#include "hamlet/synth/xsxr.h"

namespace hamlet {
namespace synth {
namespace {

/// Checks FK -> X_R in a joined dataset: rows agreeing on an FK column
/// agree on every foreign feature of that FK's dimension.
void ExpectFunctionalDependency(const Dataset& t) {
  for (uint32_t fk_col = 0; fk_col < t.num_features(); ++fk_col) {
    if (t.feature_spec(fk_col).role != FeatureRole::kForeignKey) continue;
    const int dim = t.feature_spec(fk_col).dim_index;
    std::map<uint32_t, std::vector<uint32_t>> seen;  // fk -> foreign codes
    for (size_t r = 0; r < t.num_rows(); ++r) {
      std::vector<uint32_t> foreign;
      for (uint32_t c = 0; c < t.num_features(); ++c) {
        if (t.feature_spec(c).role == FeatureRole::kForeign &&
            t.feature_spec(c).dim_index == dim) {
          foreign.push_back(t.feature(r, c));
        }
      }
      auto [it, inserted] = seen.emplace(t.feature(r, fk_col), foreign);
      if (!inserted) {
        ASSERT_EQ(it->second, foreign)
            << "FD violated for FK column " << fk_col << " at row " << r;
      }
    }
  }
}

// ------------------------------------------------------------- OneXr ----

struct OneXrParam {
  size_t ns, nr, ds, dr;
  double p;
  FkSkew skew;
  double skew_param;
};

class OneXrPropertyTest : public ::testing::TestWithParam<OneXrParam> {};

TEST_P(OneXrPropertyTest, JoinedOutputSatisfiesFd) {
  const OneXrParam q = GetParam();
  OneXrConfig cfg;
  cfg.ns = q.ns;
  cfg.nr = q.nr;
  cfg.ds = q.ds;
  cfg.dr = q.dr;
  cfg.p = q.p;
  cfg.skew = q.skew;
  cfg.skew_param = q.skew_param;
  cfg.seed = 91;
  StarSchema star = GenerateOneXr(cfg);
  ASSERT_TRUE(star.Validate().ok());
  Result<Dataset> joined = JoinAllTables(star);
  ASSERT_TRUE(joined.ok());
  ExpectFunctionalDependency(joined.value());
}

TEST_P(OneXrPropertyTest, LabelNoiseIsCalibrated) {
  const OneXrParam q = GetParam();
  if (q.ns < 2000) GTEST_SKIP() << "needs enough rows for a tight CI";
  OneXrConfig cfg;
  cfg.ns = q.ns;
  cfg.nr = q.nr;
  cfg.ds = q.ds;
  cfg.dr = q.dr;
  cfg.p = q.p;
  cfg.skew = q.skew;
  cfg.skew_param = q.skew_param;
  cfg.seed = 92;
  StarSchema star = GenerateOneXr(cfg);
  size_t agree = 0;
  for (size_t i = 0; i < star.num_facts(); ++i) {
    const uint32_t xr = star.dimension(0).table.at(star.fk_column(0)[i], 0);
    agree += star.labels()[i] == (xr % 2);
  }
  EXPECT_NEAR(static_cast<double>(agree) / star.num_facts(), q.p, 0.03);
}

TEST_P(OneXrPropertyTest, DimSeedIsolatesTrueDistribution) {
  // Same dim_seed + different fact seeds -> identical dimension table;
  // this is what makes the Monte-Carlo harness sound.
  const OneXrParam q = GetParam();
  OneXrConfig a;
  a.ns = q.ns;
  a.nr = q.nr;
  a.ds = q.ds;
  a.dr = q.dr;
  a.skew = q.skew;
  a.skew_param = q.skew_param;
  a.seed = 1;
  OneXrConfig b = a;
  b.seed = 2;
  StarSchema sa = GenerateOneXr(a);
  StarSchema sb = GenerateOneXr(b);
  ASSERT_EQ(sa.dimension(0).table.num_rows(),
            sb.dimension(0).table.num_rows());
  for (size_t r = 0; r < sa.dimension(0).table.num_rows(); ++r) {
    EXPECT_EQ(sa.dimension(0).table.Row(r), sb.dimension(0).table.Row(r));
  }
  // And the fact rows must actually differ (different sampling stream).
  bool any_diff = false;
  for (size_t i = 0; i < sa.num_facts() && !any_diff; ++i) {
    any_diff = sa.fk_column(0)[i] != sb.fk_column(0)[i];
  }
  EXPECT_TRUE(any_diff);
}

INSTANTIATE_TEST_SUITE_P(
    ConfigSweep, OneXrPropertyTest,
    ::testing::Values(
        OneXrParam{500, 10, 1, 1, 0.1, FkSkew::kUniform, 0.0},
        OneXrParam{2000, 40, 4, 4, 0.1, FkSkew::kUniform, 0.0},
        OneXrParam{2000, 40, 4, 4, 0.3, FkSkew::kUniform, 0.0},
        OneXrParam{2000, 100, 2, 6, 0.1, FkSkew::kZipf, 2.0},
        OneXrParam{2000, 40, 4, 4, 0.1, FkSkew::kZipf, 4.0},
        OneXrParam{2000, 40, 4, 4, 0.1, FkSkew::kNeedleThread, 0.5},
        OneXrParam{2000, 25, 0, 3, 0.2, FkSkew::kNeedleThread, 0.9},
        OneXrParam{500, 500, 4, 4, 0.1, FkSkew::kUniform, 0.0}));

// ------------------------------------------------------------- XSXR -----

class XsxrPropertyTest
    : public ::testing::TestWithParam<std::tuple<size_t, size_t, size_t>> {};

TEST_P(XsxrPropertyTest, FdAndDeterminismAcrossShapes) {
  const auto [nr, ds, dr] = GetParam();
  XsxrConfig cfg;
  cfg.ns = 600;
  cfg.nr = nr;
  cfg.ds = ds;
  cfg.dr = dr;
  cfg.seed = 93;
  StarSchema star = GenerateXsxr(cfg);
  ASSERT_TRUE(star.Validate().ok());
  Result<Dataset> joined = JoinAllTables(star);
  ASSERT_TRUE(joined.ok());
  ExpectFunctionalDependency(joined.value());

  // H(Y | X_S, X_R) = 0 must hold for every shape.
  const Dataset& t = joined.value();
  std::map<std::vector<uint32_t>, uint8_t> label_of;
  for (size_t r = 0; r < t.num_rows(); ++r) {
    std::vector<uint32_t> key;
    for (uint32_t c = 0; c < t.num_features(); ++c) {
      if (t.feature_spec(c).role != FeatureRole::kForeignKey) {
        key.push_back(t.feature(r, c));
      }
    }
    auto [it, inserted] = label_of.emplace(key, t.label(r));
    if (!inserted) {
      ASSERT_EQ(it->second, t.label(r));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    ShapeSweep, XsxrPropertyTest,
    ::testing::Values(std::make_tuple(10, 1, 1), std::make_tuple(40, 4, 4),
                      std::make_tuple(40, 2, 8), std::make_tuple(40, 8, 2),
                      std::make_tuple(200, 4, 4),
                      std::make_tuple(40, 0, 4)));

// --------------------------------------------------------- RepOneXr -----

class RepOneXrPropertyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(RepOneXrPropertyTest, ReplicationHoldsForEveryWidth) {
  RepOneXrConfig cfg;
  cfg.nr = 60;
  cfg.dr = GetParam();
  cfg.seed = 94;
  StarSchema star = GenerateRepOneXr(cfg);
  ASSERT_TRUE(star.Validate().ok());
  const Table& dim = star.dimension(0).table;
  ASSERT_EQ(dim.num_columns(), GetParam());
  for (size_t r = 0; r < dim.num_rows(); ++r) {
    for (size_t c = 1; c < dim.num_columns(); ++c) {
      ASSERT_EQ(dim.at(r, c), dim.at(r, 0));
    }
  }
  Result<Dataset> joined = JoinAllTables(star);
  ASSERT_TRUE(joined.ok());
  ExpectFunctionalDependency(joined.value());
}

INSTANTIATE_TEST_SUITE_P(WidthSweep, RepOneXrPropertyTest,
                         ::testing::Values(1, 2, 6, 11, 16));

}  // namespace
}  // namespace synth
}  // namespace hamlet
