// Tests for hamlet/core/experiment: the end-to-end runner used by all
// benches (join -> split -> grid search -> variant comparison).

#include <gtest/gtest.h>

#include <cstdlib>

#include "hamlet/core/experiment.h"
#include "hamlet/synth/onexr.h"
#include "hamlet/synth/realworld.h"

namespace hamlet {
namespace core {
namespace {

PreparedData PrepareOneXr(size_t ns, size_t nr, uint64_t seed) {
  synth::OneXrConfig cfg;
  cfg.ns = ns;
  cfg.nr = nr;
  cfg.seed = seed;
  StarSchema star = synth::GenerateOneXr(cfg);
  Result<PreparedData> prepared = Prepare(star, seed + 1);
  EXPECT_TRUE(prepared.ok());
  return std::move(prepared).value();
}

TEST(ExperimentTest, PrepareJoinsAndSplits) {
  PreparedData prepared = PrepareOneXr(400, 20, 1);
  EXPECT_EQ(prepared.data.num_rows(), 400u);
  // 4 home + 1 fk + 4 foreign.
  EXPECT_EQ(prepared.data.num_features(), 9u);
  EXPECT_EQ(prepared.split.train.size(), 200u);
  EXPECT_EQ(prepared.split.val.size(), 100u);
  EXPECT_EQ(prepared.split.test.size(), 100u);
}

TEST(ExperimentTest, RunVariantProducesSaneAccuracies) {
  PreparedData prepared = PrepareOneXr(800, 20, 2);
  for (auto variant : {FeatureVariant::kJoinAll, FeatureVariant::kNoJoin,
                       FeatureVariant::kNoFK}) {
    Result<VariantResult> r = RunVariant(prepared, ModelKind::kTreeGini,
                                         variant, Effort::kQuick);
    ASSERT_TRUE(r.ok());
    // OneXr with p=0.1 is ~90% learnable; every variant with access to the
    // signal (directly or through FK) should beat 0.8 on holdout.
    EXPECT_GT(r.value().test_accuracy, 0.8)
        << FeatureVariantName(variant);
    EXPECT_GE(r.value().train_accuracy, r.value().test_accuracy - 0.1);
    EXPECT_GE(r.value().seconds, 0.0);
  }
}

TEST(ExperimentTest, NoJoinTracksJoinAllAtHealthyTupleRatio) {
  // The paper's core claim at the experiment-runner level: tuple ratio
  // 800/20 = 40 is far above the tree threshold, so |NoJoin - JoinAll|
  // should be small.
  PreparedData prepared = PrepareOneXr(800, 20, 3);
  Result<VariantResult> join_all = RunVariant(
      prepared, ModelKind::kTreeGini, FeatureVariant::kJoinAll,
      Effort::kQuick);
  Result<VariantResult> no_join = RunVariant(
      prepared, ModelKind::kTreeGini, FeatureVariant::kNoJoin,
      Effort::kQuick);
  ASSERT_TRUE(join_all.ok());
  ASSERT_TRUE(no_join.ok());
  EXPECT_NEAR(no_join.value().test_accuracy,
              join_all.value().test_accuracy, 0.05);
}

TEST(ExperimentTest, RunOnFeaturesHonoursSubset) {
  PreparedData prepared = PrepareOneXr(400, 20, 4);
  // Only the FK column: the tree can still learn (FK determines Xr).
  const std::vector<uint32_t> fk_only = ForeignKeyColumns(prepared.data);
  ASSERT_EQ(fk_only.size(), 1u);
  Result<VariantResult> r = RunOnFeatures(
      prepared, ModelKind::kTreeGini, fk_only, "fk-only", Effort::kQuick);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().variant_name, "fk-only");
  EXPECT_GT(r.value().test_accuracy, 0.75);
}

TEST(ExperimentTest, AllModelKindsRunOnTinyData) {
  // Smoke: every model kind must fit/predict through the runner. Tiny
  // sizes keep this fast; accuracy is not asserted beyond finiteness.
  PreparedData prepared = PrepareOneXr(200, 10, 5);
  for (auto kind :
       {ModelKind::kTreeGini, ModelKind::kTreeInfoGain,
        ModelKind::kTreeGainRatio, ModelKind::kOneNn, ModelKind::kSvmLinear,
        ModelKind::kSvmPoly, ModelKind::kSvmRbf,
        ModelKind::kNaiveBayesBackward, ModelKind::kLogRegL1}) {
    Result<VariantResult> r = RunVariant(prepared, kind,
                                         FeatureVariant::kNoJoin,
                                         Effort::kQuick);
    ASSERT_TRUE(r.ok()) << ModelKindName(kind) << ": "
                        << r.status().ToString();
    EXPECT_GE(r.value().test_accuracy, 0.0);
    EXPECT_LE(r.value().test_accuracy, 1.0);
  }
}

TEST(ExperimentTest, AnnRunsOnTinyData) {
  // The MLP is slower; give it its own smoke test so failures attribute.
  PreparedData prepared = PrepareOneXr(150, 10, 6);
  Result<VariantResult> r = RunVariant(prepared, ModelKind::kAnnMlp,
                                       FeatureVariant::kNoJoin,
                                       Effort::kQuick);
  ASSERT_TRUE(r.ok());
  EXPECT_GE(r.value().test_accuracy, 0.4);
}

TEST(ExperimentTest, GridsMatchPaperInFullMode) {
  // Full-effort grids reproduce the paper's §3.2 axes.
  const auto tree = GridFor(ModelKind::kTreeGini, Effort::kFull).Enumerate();
  EXPECT_EQ(tree.size(), 4u * 5u);
  const auto rbf = GridFor(ModelKind::kSvmRbf, Effort::kFull).Enumerate();
  EXPECT_EQ(rbf.size(), 5u * 6u);
  const auto ann = GridFor(ModelKind::kAnnMlp, Effort::kFull).Enumerate();
  EXPECT_EQ(ann.size(), 3u * 3u);
  const auto nb =
      GridFor(ModelKind::kNaiveBayesBackward, Effort::kFull).Enumerate();
  EXPECT_EQ(nb.size(), 1u);  // no hyper-parameters
}

TEST(ExperimentTest, EffortFromEnvDefaultsToQuick) {
  unsetenv("HAMLET_BENCH_MODE");
  EXPECT_EQ(EffortFromEnv(), Effort::kQuick);
  setenv("HAMLET_BENCH_MODE", "full", 1);
  EXPECT_EQ(EffortFromEnv(), Effort::kFull);
  unsetenv("HAMLET_BENCH_MODE");
}

TEST(ExperimentTest, BenchModeFromEnvRecognisesAllTiers) {
  unsetenv("HAMLET_BENCH_MODE");
  EXPECT_EQ(BenchModeFromEnv(), BenchMode::kQuick);
  setenv("HAMLET_BENCH_MODE", "smoke", 1);
  EXPECT_EQ(BenchModeFromEnv(), BenchMode::kSmoke);
  EXPECT_EQ(EffortFromEnv(), Effort::kQuick);  // smoke keeps quick grids
  setenv("HAMLET_BENCH_MODE", "full", 1);
  EXPECT_EQ(BenchModeFromEnv(), BenchMode::kFull);
  setenv("HAMLET_BENCH_MODE", "quick", 1);
  EXPECT_EQ(BenchModeFromEnv(), BenchMode::kQuick);
  setenv("HAMLET_BENCH_MODE", "bogus", 1);
  EXPECT_EQ(BenchModeFromEnv(), BenchMode::kQuick);
  unsetenv("HAMLET_BENCH_MODE");
}

TEST(ExperimentTest, BenchModeFromEnvWarnsOnUnrecognizedValue) {
  // A typo like "fulll" must not silently mean quick mode: the fallback is
  // explicit on stderr (once per distinct value, so repeated parses of the
  // same typo stay quiet).
  setenv("HAMLET_BENCH_MODE", "fulll", 1);
  testing::internal::CaptureStderr();
  EXPECT_EQ(BenchModeFromEnv(), BenchMode::kQuick);
  std::string warning = testing::internal::GetCapturedStderr();
  EXPECT_NE(warning.find("fulll"), std::string::npos) << warning;
  EXPECT_NE(warning.find("quick"), std::string::npos) << warning;

  testing::internal::CaptureStderr();
  EXPECT_EQ(BenchModeFromEnv(), BenchMode::kQuick);  // same value: no spam
  EXPECT_EQ(testing::internal::GetCapturedStderr(), "");

  // Recognised values never warn.
  setenv("HAMLET_BENCH_MODE", "smoke", 1);
  testing::internal::CaptureStderr();
  EXPECT_EQ(BenchModeFromEnv(), BenchMode::kSmoke);
  EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
  unsetenv("HAMLET_BENCH_MODE");
}

TEST(ExperimentTest, ModelKindNamesAreUnique) {
  std::set<std::string> names;
  for (auto kind :
       {ModelKind::kTreeGini, ModelKind::kTreeInfoGain,
        ModelKind::kTreeGainRatio, ModelKind::kOneNn, ModelKind::kSvmLinear,
        ModelKind::kSvmPoly, ModelKind::kSvmRbf, ModelKind::kAnnMlp,
        ModelKind::kNaiveBayesBackward, ModelKind::kLogRegL1}) {
    EXPECT_TRUE(names.insert(ModelKindName(kind)).second);
  }
  EXPECT_EQ(names.size(), 10u);
}

TEST(ExperimentTest, RealWorldPipelineEndToEnd) {
  // Integration: simulated Walmart (strong signal) through the runner.
  auto spec = synth::RealWorldSpecByName("Walmart", 0.2);  // small scale
  ASSERT_TRUE(spec.ok());
  StarSchema star = synth::GenerateRealWorld(spec.value());
  Result<PreparedData> prepared =
      Prepare(star, 7, synth::RealWorldJoinOptions(spec.value()));
  ASSERT_TRUE(prepared.ok());
  Result<VariantResult> r = RunVariant(prepared.value(),
                                       ModelKind::kTreeGini,
                                       FeatureVariant::kNoJoin,
                                       Effort::kQuick);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r.value().test_accuracy, 0.6);
}

}  // namespace
}  // namespace core
}  // namespace hamlet
