// Figure 8: Scenario RepOneXr with the RBF-SVM (same setup as Figure 7).
//
// Paper claim to check: NoJoin tracks JoinAll at tuple ratio ~25 (A) and
// starts deviating around ~5 (B) — the SVM's threshold is ~6x.

#include <cstdio>

#include "bench_util.h"
#include "hamlet/synth/reponexr.h"

namespace {

using namespace hamlet;

void RunPanel(const char* title, size_t nr,
              const std::vector<double>& drs) {
  std::printf("--- %s ---\n", title);
  std::printf("%-12s %-10s %-10s %-10s\n", "dR", "JoinAll", "NoJoin",
              "NoFK");
  for (double dr : drs) {
    std::printf("%-12g", dr);
    for (auto variant :
         {core::FeatureVariant::kJoinAll, core::FeatureVariant::kNoJoin,
          core::FeatureVariant::kNoFK}) {
      auto make = [&](size_t run) {
        synth::RepOneXrConfig cfg;
        cfg.nr = nr;
        cfg.dr = static_cast<size_t>(dr);
        cfg.seed = 8181 + 131 * run;
        return synth::GenerateRepOneXr(cfg);
      };
      const ml::BiasVariance bv = bench::SimulateVariant(
          make, variant, bench::SimModel::kSvmRbf, bench::NumRuns());
      std::printf(" %-10.4f", bv.mean_error);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  const hamlet::bench::SvmStatsScope svm_stats;
  const hamlet::bench::PackedStatsScope packed_stats;
  bench::PrintHeader("Figure 8: RepOneXr simulations, RBF-SVM");
  const bool full = bench::IsFullMode();
  const std::vector<double> drs = full
                                      ? std::vector<double>{1, 6, 11, 16}
                                      : std::vector<double>{1, 8, 16};

  RunPanel("(A) nR = 40 (tuple ratio ~25)", 40, drs);
  RunPanel("(B) nR = 200 (tuple ratio ~5)", 200, drs);

  std::printf(
      "Expected shape (paper Fig. 8): NoJoin ~ JoinAll in (A); a visible\n"
      "NoJoin deviation opens in (B), the ~5x tuple-ratio regime.\n");
  bench::PrintSvmCacheStats(svm_stats);
  bench::PrintPackedStats(packed_stats);
  return bench::ExitCode();
}
