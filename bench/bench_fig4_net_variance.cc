// Figure 4: average net variance (Domingos decomposition) for the Figure 3
// experiments — 1-NN (A) and RBF-SVM (B) in Scenario OneXr, varying n_R.
//
// Paper claim to check: the RBF-SVM's NoJoin error deviation at low tuple
// ratios is driven by net variance (extra overfitting), mirroring the
// linear-model analysis in Kumar et al.; the 1-NN's net variance is
// non-monotonic (its instability artifact).

#include <cstdio>

#include "bench_util.h"
#include "hamlet/synth/onexr.h"

namespace {

using namespace hamlet;

void RunModelPanel(const char* title, bench::SimModel model,
                   const std::vector<double>& nrs) {
  std::printf("--- %s ---\n", title);
  std::printf("%-12s %-12s %-12s %-12s\n", "nR", "JoinAll", "NoJoin",
              "NoFK");
  for (double nr : nrs) {
    std::printf("%-12g", nr);
    for (auto variant :
         {core::FeatureVariant::kJoinAll, core::FeatureVariant::kNoJoin,
          core::FeatureVariant::kNoFK}) {
      auto make = [&](size_t run) {
        synth::OneXrConfig cfg;
        cfg.nr = static_cast<size_t>(nr);
        cfg.seed = 9911 + 131 * run;
        return synth::GenerateOneXr(cfg);
      };
      const ml::BiasVariance bv =
          bench::SimulateVariant(make, variant, model, bench::NumRuns());
      std::printf(" %-12.4f", bv.net_variance);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Figure 4: average net variance in OneXr, 1-NN (A) and RBF-SVM (B)");
  const bool full = bench::IsFullMode();
  const std::vector<double> nrs =
      full ? std::vector<double>{1, 10, 40, 100, 250, 500, 1000}
           : std::vector<double>{10, 40, 170, 500};

  RunModelPanel("(A) 1-NN", bench::SimModel::kOneNn, nrs);
  RunModelPanel("(B) RBF-SVM", bench::SimModel::kSvmRbf, nrs);

  std::printf(
      "Expected shape (paper Fig. 4): NoJoin net variance rises with nR for\n"
      "the RBF-SVM (the extra overfitting); 1-NN's curve is non-monotonic.\n");
  return bench::ExitCode();
}
