// Extension (paper §5.2): the partial-avoidance trade-off curve.
//
// The paper observes that FD axioms allow avoiding *subsets* of foreign
// features, opening a space between NoJoin (k = 0) and JoinAll (k = d_R).
// This bench sweeps k (top-k foreign features per dimension by mutual
// information with the target, estimated on the training split) on the
// Yelp simulator — the one dataset where full avoidance costs accuracy —
// and on LastFM, where it costs nothing. Expectation: Yelp climbs from
// the NoJoin level toward the NoFK/JoinAll level within a few features;
// LastFM stays flat, so k = 0 is optimal there.

#include <cstdio>

#include "bench_util.h"
#include "hamlet/core/partial_avoidance.h"
#include "hamlet/ml/nb/naive_bayes.h"
#include "hamlet/ml/tree/decision_tree.h"
#include "hamlet/synth/realworld.h"

namespace {

using namespace hamlet;

void Sweep(const char* dataset) {
  auto spec = synth::RealWorldSpecByName(dataset, bench::DataScale());
  if (!spec.ok()) {
    std::printf("--- %s --- spec failed: %s\n", dataset,
                spec.status().ToString().c_str());
    bench::ReportFailure();
    return;
  }
  StarSchema star = synth::GenerateRealWorld(spec.value());
  Result<core::PreparedData> prepared = core::Prepare(
      star, 2024, synth::RealWorldJoinOptions(spec.value()));
  if (!prepared.ok()) {
    std::printf("--- %s --- prepare failed: %s\n", dataset,
                prepared.status().ToString().c_str());
    bench::ReportFailure();
    return;
  }
  const core::PreparedData& p = prepared.value();
  DataView full_train(&p.data, p.split.train, [&] {
    std::vector<uint32_t> all(p.data.num_features());
    for (uint32_t c = 0; c < all.size(); ++c) all[c] = c;
    return all;
  }());

  // Two model families: Naive Bayes weighs evidence from every kept
  // feature, so its curve exposes the trade-off; the greedy tree mostly
  // sticks to FK splits whatever is added — the contrast is the point.
  std::printf("--- %s ---\n", dataset);
  std::printf("%-22s %-10s %-12s %-12s\n", "k (foreign feats/dim)",
              "features", "nb-accuracy", "dt-accuracy");
  for (size_t k : {size_t{0}, size_t{1}, size_t{2}, size_t{4}, size_t{8},
                   size_t{32}}) {
    const auto cols = core::SelectPartialAvoidance(p.data, full_train, k);
    SplitViews views = MakeSplitViews(p.data, p.split, cols);
    ml::NaiveBayes nb;
    (void)nb.Fit(views.train);
    ml::DecisionTree tree({.minsplit = 10, .cp = 0.001});
    (void)tree.Fit(views.train);
    std::printf("%-22zu %-10zu %-12.4f %-12.4f\n", k, cols.size(),
                ml::Accuracy(nb, views.test), ml::Accuracy(tree, views.test));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Extension: partial join avoidance (top-k foreign features by MI)");
  Sweep("Yelp");
  Sweep("LastFM");
  std::printf(
      "Expected: on Yelp (tuple ratio 2.5 on users) accuracy rises with k\n"
      "— a few foreign features close most of the NoJoin gap; on LastFM\n"
      "(per-RID signal) the curve is flat and k = 0 suffices.\n");
  return bench::ExitCode();
}
