// Table 2: holdout test accuracy of the three decision trees (gini,
// information gain, gain ratio) and 1-NN on the seven datasets, comparing
// JoinAll vs NoJoin (and NoFK for the trees).
//
// Paper claim to check: NoJoin is within ~1% of JoinAll everywhere except
// Yelp (whose users dimension has tuple ratio 2.5); NoFK is clearly worse
// on datasets with per-RID signal (Flights, LastFM, Books).

#include "bench_tables.h"

int main() {
  using namespace hamlet;
  using core::FeatureVariant;
  using core::ModelKind;
  bench::PrintHeader(
      "Table 2: decision trees + 1-NN, holdout test accuracy");

  bench::RunAccuracyTable(
      {
          {ModelKind::kTreeGini, FeatureVariant::kJoinAll},
          {ModelKind::kTreeGini, FeatureVariant::kNoJoin},
          {ModelKind::kTreeGini, FeatureVariant::kNoFK},
          {ModelKind::kTreeInfoGain, FeatureVariant::kJoinAll},
          {ModelKind::kTreeInfoGain, FeatureVariant::kNoJoin},
          {ModelKind::kTreeInfoGain, FeatureVariant::kNoFK},
          {ModelKind::kTreeGainRatio, FeatureVariant::kJoinAll},
          {ModelKind::kTreeGainRatio, FeatureVariant::kNoJoin},
          {ModelKind::kTreeGainRatio, FeatureVariant::kNoFK},
          {ModelKind::kOneNn, FeatureVariant::kJoinAll},
          {ModelKind::kOneNn, FeatureVariant::kNoJoin},
      },
      /*report_train_accuracy=*/false);

  std::printf(
      "\nExpected shape (paper Table 2): NoJoin within ~0.01 of JoinAll for\n"
      "every dataset except Yelp; NoFK notably lower on Flights/LastFM/\n"
      "Books/Expedia/Movies, higher on Yelp/Walmart.\n");
  return bench::ExitCode();
}
