// Figure 7: Scenario RepOneXr (X_R = dR replicas of Xr), decision tree.
// Panels: (A) vary d_R at n_R = 40 (tuple ratio ~25 on the train split),
// (B) vary d_R at n_R = 200 (tuple ratio ~5).
//
// Paper claim to check: inflating |D_FK| relative to |D_Xr| — the setup
// engineered to "confuse" NoJoin — still leaves JoinAll ~ NoJoin for the
// tree at both tuple ratios.

#include <cstdio>

#include "bench_util.h"
#include "hamlet/synth/reponexr.h"

namespace {

using namespace hamlet;

void RunPanel(const char* title, size_t nr,
              const std::vector<double>& drs, bench::SimModel model) {
  std::printf("--- %s ---\n", title);
  std::printf("%-12s %-10s %-10s %-10s\n", "dR", "JoinAll", "NoJoin",
              "NoFK");
  for (double dr : drs) {
    std::printf("%-12g", dr);
    for (auto variant :
         {core::FeatureVariant::kJoinAll, core::FeatureVariant::kNoJoin,
          core::FeatureVariant::kNoFK}) {
      auto make = [&](size_t run) {
        synth::RepOneXrConfig cfg;
        cfg.nr = nr;
        cfg.dr = static_cast<size_t>(dr);
        cfg.seed = 7171 + 131 * run;
        return synth::GenerateRepOneXr(cfg);
      };
      const ml::BiasVariance bv =
          bench::SimulateVariant(make, variant, model, bench::NumRuns());
      std::printf(" %-10.4f", bv.mean_error);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  bench::PrintHeader("Figure 7: RepOneXr simulations, decision tree (gini)");
  const bool full = bench::IsFullMode();
  const std::vector<double> drs = full
                                      ? std::vector<double>{1, 6, 11, 16}
                                      : std::vector<double>{1, 8, 16};

  RunPanel("(A) nR = 40 (tuple ratio ~25)", 40, drs,
           bench::SimModel::kTreeGini);
  RunPanel("(B) nR = 200 (tuple ratio ~5)", 200, drs,
           bench::SimModel::kTreeGini);

  std::printf(
      "Expected shape (paper Fig. 7): JoinAll ~ NoJoin at both tuple\n"
      "ratios, for every dR.\n");
  return bench::ExitCode();
}
