// Serving throughput per learner family (extension bench, PR 6).
//
// For each serializable model family: fit on a synthetic training view,
// round-trip the model through the binary format (io::SaveModel /
// io::LoadModel — the loaded model is what a hamlet_serve process runs),
// then measure sustained batched prediction throughput: the query set is
// scored in HAMLET_SERVE_BATCH-row batches through PredictAll, repeated
// over several runs, and summarised as predictions/sec with nearest-rank
// p50/p99 batch latencies.
//
// After the table, one machine-parseable line per family:
//   [serving] model=dt-gini rows=12000 runs=3 seconds=0.042
//       preds_per_sec=285714.3 p50_us=350.0 p99_us=420.0 errors=0
//       (one line)
// run_all.py records them into BENCH_results.json (schema v6, see
// docs/BENCH_SCHEMA.md). errors counts rejected request lines; this
// bench feeds pre-validated batches, so it reports the StatsSummary
// counter (0 unless a run goes wrong) to keep the line schema identical
// to hamlet_serve's [serve] line fields.
//
// A socket section follows (model=net-<family>): the same query stream
// served end to end through the serve/net TCP front-end — four
// concurrent line-protocol connections multiplexed onto shared batches.
// seconds/preds_per_sec there are wall-clock (parse + batching + socket
// I/O included), so the gap between net-<family> and <family> is the
// transport + framing overhead; p50/p99 remain per-batch model time
// from the server's own stats.

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "hamlet/common/rng.h"
#include "hamlet/data/dataset.h"
#include "hamlet/data/view.h"
#include "hamlet/io/serialize.h"
#include "hamlet/ml/ann/mlp.h"
#include "hamlet/ml/classifier.h"
#include "hamlet/ml/knn/one_nn.h"
#include "hamlet/ml/linear/logistic_regression.h"
#include "hamlet/ml/majority.h"
#include "hamlet/ml/nb/naive_bayes.h"
#include "hamlet/ml/svm/svm.h"
#include "hamlet/ml/tree/decision_tree.h"
#include "hamlet/serve/net/net_server.h"
#include "hamlet/serve/net/socket.h"
#include "hamlet/serve/server.h"
#include "hamlet/serve/stats.h"
#include "bench_util.h"

namespace hamlet {
namespace {

struct ServingSizes {
  size_t train_rows;
  size_t query_rows;
  size_t runs;
};

ServingSizes SizesFromMode() {
  switch (bench::ModeFromEnv()) {
    case bench::BenchMode::kSmoke:
      return {400, 2000, 3};
    case bench::BenchMode::kQuick:
      return {1500, 20000, 5};
    case bench::BenchMode::kFull:
      return {4000, 100000, 10};
  }
  return {1500, 20000, 5};
}

/// Deterministic categorical dataset with label signal on feature 0.
Dataset MakeServingDataset(size_t rows, uint64_t seed) {
  const std::vector<uint32_t> domains = {16, 8, 12, 6, 10, 4};
  std::vector<FeatureSpec> specs(domains.size());
  for (size_t j = 0; j < domains.size(); ++j) {
    specs[j].name = "f" + std::to_string(j);
    specs[j].domain_size = domains[j];
    specs[j].role = FeatureRole::kHome;
  }
  Dataset data(std::move(specs));
  data.Reserve(rows);
  Rng rng(seed);
  std::vector<uint32_t> codes(domains.size());
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < domains.size(); ++j) {
      codes[j] = static_cast<uint32_t>(rng.UniformInt(domains[j]));
    }
    uint8_t label = 2 * codes[0] >= domains[0] ? 1 : 0;
    if (rng.Bernoulli(0.1)) label = 1 - label;
    data.AppendRowUnchecked(codes, label);
  }
  return data;
}

struct ServingLearner {
  const char* label;
  std::unique_ptr<ml::Classifier> (*make)();
};

/// The seven serializable families. SVM training is quadratic, so its
/// fit rides on the shared max_train_rows cap; everything else fits the
/// full training view.
std::vector<ServingLearner> ServingRoster() {
  return {
      {"dt-gini", [] { return std::unique_ptr<ml::Classifier>(
                           std::make_unique<ml::DecisionTree>()); }},
      {"naive-bayes", [] { return std::unique_ptr<ml::Classifier>(
                               std::make_unique<ml::NaiveBayes>()); }},
      {"logreg-l1",
       [] {
         ml::LogisticRegressionConfig config;
         config.nlambda = 5;
         config.maxit = 60;
         return std::unique_ptr<ml::Classifier>(
             std::make_unique<ml::LogisticRegressionL1>(config));
       }},
      {"svm-rbf",
       [] {
         ml::SvmConfig config;
         config.kernel.type = ml::KernelType::kRbf;
         config.kernel.gamma = 0.2;
         config.max_train_rows = 1000;
         return std::unique_ptr<ml::Classifier>(
             std::make_unique<ml::KernelSvm>(config));
       }},
      {"1nn", [] { return std::unique_ptr<ml::Classifier>(
                       std::make_unique<ml::OneNearestNeighbor>()); }},
      {"ann-mlp",
       [] {
         ml::MlpConfig config;
         config.hidden_sizes = {32, 8};
         config.epochs = 2;
         return std::unique_ptr<ml::Classifier>(
             std::make_unique<ml::Mlp>(config));
       }},
      {"majority", [] { return std::unique_ptr<ml::Classifier>(
                            std::make_unique<ml::MajorityClassifier>()); }},
  };
}

/// Scores `query` in serving-sized batches, accumulating one latency
/// sample per batch — the same unit the hamlet_serve stats report.
void ScoreBatched(const ml::Classifier& model, const DataView& query,
                  size_t batch_size, serve::LatencyStats& stats) {
  const size_t n = query.num_rows();
  std::vector<uint32_t> ids;
  for (size_t start = 0; start < n; start += batch_size) {
    const size_t stop = std::min(n, start + batch_size);
    ids.resize(stop - start);
    for (size_t i = start; i < stop; ++i) {
      ids[i - start] = static_cast<uint32_t>(i);
    }
    const DataView batch = query.SelectRows(ids);
    const auto t0 = std::chrono::steady_clock::now();
    const std::vector<uint8_t> preds = model.PredictAll(batch);
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t0;
    if (preds.size() != batch.num_rows()) {
      bench::ReportFailure();
      return;
    }
    stats.RecordBatch(preds.size(), dt.count());
  }
}

/// Renders `view` as request lines in the serve wire format, ready to
/// stream down a client connection.
std::string RenderRequests(const DataView& view) {
  std::string out;
  out.reserve(view.num_rows() * view.num_features() * 3);
  char buf[16];
  for (size_t i = 0; i < view.num_rows(); ++i) {
    for (size_t j = 0; j < view.num_features(); ++j) {
      std::snprintf(buf, sizeof(buf), "%u", view.feature(i, j));
      if (j > 0) out += ' ';
      out += buf;
    }
    out += '\n';
  }
  return out;
}

/// One full client exchange against the bench server: stream every
/// request, half-close, read responses to EOF. Returns the number of
/// response lines (predictions) received.
size_t DriveClient(uint16_t port, const std::string& requests) {
  auto sock = serve::net::ConnectTcp("127.0.0.1", port);
  if (!sock.ok()) return 0;
  const int fd = sock.value().fd();
  // Writer thread: with megabytes in flight both kernel buffers fill,
  // so a send-all-then-read-all client would deadlock the exchange.
  std::thread writer([fd, &requests] {
    (void)serve::net::SendAll(fd, requests.data(), requests.size());
    ::shutdown(fd, SHUT_WR);
  });
  size_t lines = 0;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) {
    for (ssize_t i = 0; i < n; ++i) {
      if (buf[i] == '\n') ++lines;
    }
  }
  writer.join();
  return lines;
}

/// End-to-end socket serving: `runs` rounds of four concurrent client
/// connections streaming `requests` through a NetServer over `model`.
/// Appends a "[serving] model=net-<label> ..." line on success.
void BenchSocketServing(const char* label, const ml::Classifier& model,
                        const std::string& requests, size_t expected_rows,
                        size_t runs, size_t batch_size,
                        std::vector<std::string>& lines) {
  constexpr size_t kClients = 4;
  serve::net::NetServeConfig config;
  config.batch_size = batch_size;
  serve::net::NetServer server(model, config);
  const Status started = server.Start();
  if (!started.ok()) {
    std::printf("net-%s: listen failed: %s\n", label,
                started.ToString().c_str());
    bench::ReportFailure();
    return;
  }
  std::ostringstream server_log;
  Result<serve::StatsSummary> summary =
      Status::Internal("server never ran");
  std::thread runner(
      [&server, &server_log, &summary] { summary = server.Run(server_log); });

  // Warm-up round (acceptor, pool, allocator), then the measured rounds.
  DriveClient(server.port(), requests);
  size_t received = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (size_t r = 0; r < runs; ++r) {
    std::vector<std::thread> clients;
    std::vector<size_t> counts(kClients, 0);
    clients.reserve(kClients);
    for (size_t c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        counts[c] = DriveClient(server.port(), requests);
      });
    }
    for (std::thread& t : clients) t.join();
    for (size_t c = 0; c < kClients; ++c) received += counts[c];
  }
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - t0;

  server.RequestShutdown();
  runner.join();
  if (!summary.ok()) {
    std::printf("net-%s: serving failed: %s\n", label,
                summary.status().ToString().c_str());
    bench::ReportFailure();
    return;
  }
  const size_t measured_rows = runs * kClients * expected_rows;
  if (received != measured_rows) {
    std::printf("net-%s: expected %zu responses, got %zu\n", label,
                measured_rows, received);
    bench::ReportFailure();
    return;
  }
  const serve::StatsSummary s = summary.value();

  char row[256];
  std::snprintf(row, sizeof(row), "%.0f",
                static_cast<double>(measured_rows) / wall.count());
  char net_label[64];
  std::snprintf(net_label, sizeof(net_label), "net-%s", label);
  bench::PrintRow({net_label, row,
                   std::to_string(static_cast<long>(s.p50_us)),
                   std::to_string(static_cast<long>(s.p99_us)), "-"},
                  12);

  // Wall-clock rate: rows include the warm-up round in s.rows, so use
  // the measured count; p50/p99 stay per-batch model time.
  char line[256];
  std::snprintf(line, sizeof(line),
                "[serving] model=net-%s rows=%zu runs=%zu seconds=%.6f "
                "preds_per_sec=%.1f p50_us=%.1f p99_us=%.1f errors=%llu",
                label, measured_rows, runs, wall.count(),
                static_cast<double>(measured_rows) / wall.count(), s.p50_us,
                s.p99_us, static_cast<unsigned long long>(s.errors));
  lines.push_back(line);
}

}  // namespace
}  // namespace hamlet

int main() {
  using namespace hamlet;

  const auto sizes = SizesFromMode();
  bench::PrintHeader("Serving throughput per model family (extension)");
  std::printf("train rows: %zu, query rows: %zu, runs: %zu, batch: %zu\n\n",
              sizes.train_rows, sizes.query_rows, sizes.runs,
              serve::ConfiguredBatchSize());

  const Dataset train_data = MakeServingDataset(sizes.train_rows, 101);
  const Dataset query_data = MakeServingDataset(sizes.query_rows, 202);
  const DataView train(&train_data);
  const DataView query(&query_data);
  const size_t batch_size = serve::ConfiguredBatchSize();

  bench::PrintRow({"model", "preds/s", "p50(us)", "p99(us)", "model-KiB"},
                  12);
  std::vector<std::string> lines;
  for (const auto& learner : ServingRoster()) {
    auto model = learner.make();
    Status st = model->Fit(train);
    if (!st.ok()) {
      std::printf("%s: fit failed: %s\n", learner.label,
                  st.ToString().c_str());
      bench::ReportFailure();
      continue;
    }

    // Serve what a server would serve: the loaded round-trip model.
    std::ostringstream bytes(std::ios::binary);
    st = io::SaveModel(*model, bytes);
    if (!st.ok()) {
      std::printf("%s: save failed: %s\n", learner.label,
                  st.ToString().c_str());
      bench::ReportFailure();
      continue;
    }
    std::istringstream in(bytes.str(), std::ios::binary);
    auto loaded = io::LoadModel(in);
    if (!loaded.ok()) {
      std::printf("%s: load failed: %s\n", learner.label,
                  loaded.status().ToString().c_str());
      bench::ReportFailure();
      continue;
    }

    // Warm-up run (pool spin-up, cold caches), then the measured runs.
    serve::LatencyStats warmup;
    ScoreBatched(*loaded.value(), query, batch_size, warmup);
    serve::LatencyStats stats;
    for (size_t r = 0; r < sizes.runs; ++r) {
      ScoreBatched(*loaded.value(), query, batch_size, stats);
    }
    const serve::StatsSummary s = stats.Summarize();

    char row[256];
    std::snprintf(row, sizeof(row), "%.0f", s.preds_per_sec);
    bench::PrintRow({learner.label, row,
                     std::to_string(static_cast<long>(s.p50_us)),
                     std::to_string(static_cast<long>(s.p99_us)),
                     std::to_string(bytes.str().size() / 1024)},
                    12);

    char line[256];
    std::snprintf(line, sizeof(line),
                  "[serving] model=%s rows=%llu runs=%zu seconds=%.6f "
                  "preds_per_sec=%.1f p50_us=%.1f p99_us=%.1f errors=%llu",
                  learner.label,
                  static_cast<unsigned long long>(s.rows), sizes.runs,
                  s.model_seconds, s.preds_per_sec, s.p50_us, s.p99_us,
                  static_cast<unsigned long long>(s.errors));
    lines.push_back(line);

    // Socket section for the cheapest and a representative tree model:
    // net-majority isolates transport + framing cost (the model is a
    // constant), net-dt-gini shows it against a real serving family.
    const std::string family(learner.label);
    if (family == "dt-gini" || family == "majority") {
      BenchSocketServing(learner.label, *loaded.value(),
                         RenderRequests(query), query.num_rows(),
                         sizes.runs, batch_size, lines);
    }
  }

  std::printf("\n");
  for (const std::string& line : lines) std::printf("%s\n", line.c_str());
  return bench::ExitCode();
}
