// Table 1: dataset statistics for the seven simulated real-world datasets.
//
// Prints (n_S, d_S), q, per-dimension (n_R, d_R) and the tuple ratio
// computed against the 50% training split — the same convention as the
// paper's Table 1. "N/A" marks open-domain FKs that can never be features.

#include <cstdio>

#include "bench_util.h"
#include "hamlet/synth/realworld.h"

int main() {
  using namespace hamlet;
  bench::PrintHeader("Table 1: dataset statistics (simulated)");

  std::printf("%-10s %-14s %-3s %-16s %-12s\n", "Dataset", "(nS, dS)", "q",
              "(nR, dR)", "TupleRatio");
  for (const auto& spec : bench::BenchSpecs()) {
    StarSchema star = synth::GenerateRealWorld(spec);
    std::printf("%-10s (%zu, %zu)%*s %-3zu", spec.name.c_str(), spec.ns,
                spec.ds, static_cast<int>(6 - std::to_string(spec.ns).size()),
                "", spec.dims.size());
    bool first = true;
    for (size_t i = 0; i < spec.dims.size(); ++i) {
      const auto& dim = spec.dims[i];
      if (!first) std::printf("%-33s", "");
      const double ratio = 0.5 * star.TupleRatio(i);
      std::printf(" (%zu, %zu)", dim.nr, dim.dr);
      if (dim.open_domain_fk) {
        std::printf("  N/A (open-domain FK)\n");
      } else {
        std::printf("  %.1f\n", ratio);
      }
      first = false;
    }
  }
  std::printf(
      "\nTuple ratio = 0.5 * nS / nR (against the training split), as in\n"
      "the paper. Shapes (q, dS, dR, ratios) replicate the paper's Table 1;\n"
      "nS is scaled down for bench runtime (see EXPERIMENTS.md).\n");
  return bench::ExitCode();
}
