// Ablation: how the rpart-style pre-pruning knobs interact with FK
// overfitting (a design choice DESIGN.md calls out).
//
// At a healthy tuple ratio the tree can afford to memorise FK; at ratio
// ~2 the FK column invites pure overfitting and pruning has to contain
// it. This sweep shows holdout error and tree size for NoJoin as a
// function of cp and minsplit at two tuple ratios, quantifying how much
// of the "trees are robust to avoiding joins" result depends on the
// pruning configuration (answer: little at healthy ratios, a lot at
// pathological ones).

#include <cstdio>

#include "bench_util.h"
#include "hamlet/ml/tree/decision_tree.h"
#include "hamlet/synth/onexr.h"

namespace {

using namespace hamlet;

void Sweep(size_t nr) {
  synth::OneXrConfig cfg;
  cfg.ns = 1000;
  cfg.nr = nr;
  cfg.seed = 515;
  StarSchema star = synth::GenerateOneXr(cfg);
  Result<core::PreparedData> prepared = core::Prepare(star, 516);
  if (!prepared.ok()) {
    std::printf("prepare(nR=%zu) failed: %s\n", nr,
                prepared.status().ToString().c_str());
    bench::ReportFailure();
    return;
  }
  const core::PreparedData& p = prepared.value();
  SplitViews views = MakeSplitViews(
      p.data, p.split,
      core::SelectVariant(p.data, core::FeatureVariant::kNoJoin));

  std::printf("--- nR = %zu (train tuple ratio %.1f) ---\n", nr,
              0.5 * static_cast<double>(cfg.ns) / static_cast<double>(nr));
  std::printf("%-10s %-10s %-12s %-12s %-10s\n", "cp", "minsplit",
              "test-error", "train-error", "nodes");
  for (double cp : {0.0, 1e-4, 1e-3, 0.01, 0.1}) {
    for (size_t minsplit : {size_t{1}, size_t{10}, size_t{100}}) {
      ml::DecisionTree tree({.minsplit = minsplit, .cp = cp});
      (void)tree.Fit(views.train);
      std::printf("%-10g %-10zu %-12.4f %-12.4f %-10zu\n", cp, minsplit,
                  ml::ErrorRate(tree, views.test),
                  ml::ErrorRate(tree, views.train), tree.num_nodes());
    }
  }
  std::printf("\n");
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Ablation: pre-pruning (cp, minsplit) vs FK overfitting, NoJoin");
  Sweep(40);    // tuple ratio ~12.5: safe regime
  Sweep(250);   // tuple ratio ~2: the regime where avoiding joins hurts
  std::printf(
      "Expected: at nR=40 every configuration lands near the Bayes error\n"
      "(0.1) — the robustness result does not hinge on tuning. At nR=250\n"
      "unpruned trees overfit FK (train error ~0, test error high); cp\n"
      ">= 0.01 or minsplit >= 100 recovers part of the gap.\n");
  return bench::ExitCode();
}
