// Table 4: robustness study — discard dimension tables one at a time
// (NoR_i keeps FK_i but drops X_Ri) with a gini decision tree, plus the
// pairwise combinations for Flights (q = 3).
//
// Paper claim to check: only Yelp's users table (tuple ratio 2.5) hurts
// when dropped; every other dimension (13 of 14) is safe to discard.

#include <cstdio>

#include "bench_util.h"
#include "hamlet/synth/realworld.h"

int main() {
  using namespace hamlet;
  using core::FeatureVariant;
  using core::ModelKind;
  bench::PrintHeader("Table 4: drop-one-dimension robustness (dt-gini)");

  const core::Effort effort = bench::EffortFromMode();
  for (const auto& spec :
       bench::BenchSpecs()) {
    StarSchema star = synth::GenerateRealWorld(spec);
    Result<core::PreparedData> prepared = core::Prepare(
        star, spec.seed + 991, synth::RealWorldJoinOptions(spec));
    if (!prepared.ok()) {
      std::printf("%-10s prepare failed: %s\n", spec.name.c_str(),
                  prepared.status().ToString().c_str());
      bench::ReportFailure();
      continue;
    }
    const core::PreparedData& p = prepared.value();

    std::printf("%-10s", spec.name.c_str());
    // JoinAll and NoJoin anchors.
    for (auto variant : {FeatureVariant::kJoinAll, FeatureVariant::kNoJoin}) {
      Result<core::VariantResult> r =
          core::RunVariant(p, ModelKind::kTreeGini, variant, effort);
      std::printf("  %s=%.4f", core::FeatureVariantName(variant),
                  bench::TestAccuracyOrFail(r));
    }
    // NoR_i: drop one dimension's foreign features at a time.
    for (size_t i = 0; i < spec.dims.size(); ++i) {
      Result<core::VariantResult> r = core::RunOnFeatures(
          p, ModelKind::kTreeGini,
          core::SelectDroppingDimensions(p.data, {static_cast<int>(i)}),
          "NoR" + std::to_string(i + 1), effort);
      std::printf("  NoR%zu(%s)=%.4f", i + 1, spec.dims[i].name.c_str(),
                  bench::TestAccuracyOrFail(r));
    }
    // Pairwise drops for q = 3 (Flights).
    if (spec.dims.size() == 3) {
      std::printf("\n%-10s", "");
      const int pairs[3][2] = {{0, 1}, {0, 2}, {1, 2}};
      for (const auto& pr : pairs) {
        Result<core::VariantResult> r = core::RunOnFeatures(
            p, ModelKind::kTreeGini,
            core::SelectDroppingDimensions(p.data, {pr[0], pr[1]}),
            "NoR-pair", effort);
        std::printf("  NoR%d,%d=%.4f", pr[0] + 1, pr[1] + 1,
                    bench::TestAccuracyOrFail(r));
      }
    }
    std::printf("\n");
    std::fflush(stdout);
  }

  std::printf(
      "\nExpected shape (paper Table 4): every NoR_i matches JoinAll within\n"
      "~0.01 except Yelp's NoR2 (users, tuple ratio 2.5), which drops.\n");
  return bench::ExitCode();
}
