// Shared helpers for the bench binaries: effort handling, table printing,
// and the Monte-Carlo sweep driver used by the figure benches.
//
// Every binary prints the corresponding paper table/figure series. Effort
// defaults to quick (HAMLET_BENCH_MODE=full for paper-fidelity grids and
// run counts); quick mode shrinks sizes so the whole bench suite finishes
// in minutes while preserving the qualitative shapes. A third level,
// HAMLET_BENCH_MODE=smoke, shrinks further (fewer runs, smaller data,
// fewer datasets) so ctest can exercise every binary in seconds — smoke
// output checks that the code paths run, not that the figures replicate.

#ifndef HAMLET_BENCH_BENCH_UTIL_H_
#define HAMLET_BENCH_BENCH_UTIL_H_

#include <atomic>
#include <cstdio>
#include <string>
#include <vector>

#include "hamlet/common/stringx.h"
#include "hamlet/core/experiment.h"
#include "hamlet/core/variants.h"
#include "hamlet/data/split.h"
#include "hamlet/ml/bias_variance.h"
#include "hamlet/ml/knn/one_nn.h"
#include "hamlet/ml/metrics.h"
#include "hamlet/ml/svm/kernel_cache.h"
#include "hamlet/ml/svm/svm.h"
#include "hamlet/ml/tree/decision_tree.h"
#include "hamlet/simd/simd.h"
#include "hamlet/synth/realworld.h"

namespace hamlet {
namespace bench {

/// Bench effort level. Quick/full map onto core::Effort for grids; smoke
/// additionally shrinks run counts, data scale, and the dataset roster.
/// core::BenchModeFromEnv() is the single parser of HAMLET_BENCH_MODE.
using core::BenchMode;

inline BenchMode ModeFromEnv() { return core::BenchModeFromEnv(); }

inline const char* BenchModeName(BenchMode m) {
  switch (m) {
    case BenchMode::kSmoke:
      return "smoke";
    case BenchMode::kQuick:
      return "quick";
    case BenchMode::kFull:
      return "full";
  }
  return "?";
}

inline bool IsFullMode() { return ModeFromEnv() == BenchMode::kFull; }
inline bool IsSmokeMode() { return ModeFromEnv() == BenchMode::kSmoke; }

/// Grid effort for bench runs — same parse as the data-scale helpers.
inline core::Effort EffortFromMode() { return core::EffortFromEnv(); }

/// Process-wide failure flag. Bench binaries keep printing their tables
/// when individual cells fail (ERR / -1 entries), but any reported
/// failure makes ExitCode() nonzero so the ctest smoke entries catch a
/// bench whose runs all silently break. Atomic because Monte-Carlo run
/// callbacks report failures from pool worker threads.
inline std::atomic<int>& FailureCount() {
  static std::atomic<int> count{0};
  return count;
}
inline void ReportFailure() {
  FailureCount().fetch_add(1, std::memory_order_relaxed);
}
inline int ExitCode() { return FailureCount().load() == 0 ? 0 : 1; }

/// Test accuracy of `r`, or -1 with the failure flag set — keeps table
/// rows printing while making the binary exit nonzero at the end.
inline double TestAccuracyOrFail(const Result<core::VariantResult>& r) {
  if (!r.ok()) {
    ReportFailure();
    return -1.0;
  }
  return r.value().test_accuracy;
}

/// Monte-Carlo runs per point: the paper uses 100; quick mode uses 12.
inline size_t NumRuns() {
  switch (ModeFromEnv()) {
    case BenchMode::kSmoke:
      return 3;
    case BenchMode::kQuick:
      return 12;
    case BenchMode::kFull:
      return 100;
  }
  return 12;
}

/// Dataset scale for the real-world simulators (1.0 = ~6000 fact rows).
inline double DataScale() {
  switch (ModeFromEnv()) {
    case BenchMode::kSmoke:
      return 0.2;
    case BenchMode::kQuick:
      return 0.5;
    case BenchMode::kFull:
      return 1.0;
  }
  return 0.5;
}

/// The dataset roster for table benches: all seven simulated datasets in
/// quick/full mode, a two-dataset subset in smoke mode.
inline std::vector<synth::RealWorldSpec> BenchSpecs() {
  std::vector<synth::RealWorldSpec> specs =
      synth::AllRealWorldSpecs(DataScale());
  if (IsSmokeMode() && specs.size() > 2) specs.resize(2);
  return specs;
}

inline void PrintHeader(const std::string& title) {
  std::printf("=== %s ===\n", title.c_str());
  std::printf("mode: %s\n\n", BenchModeName(ModeFromEnv()));
}

inline void PrintRow(const std::vector<std::string>& cells, size_t width) {
  for (const auto& cell : cells) {
    std::printf("%s", PadRight(cell, width).c_str());
  }
  std::printf("\n");
}

/// Snapshot scope over the process-wide SVM counters (kernel-row cache
/// totals and SMO solver totals). The globals are monotone and never
/// reset, so a bench that wants ITS OWN numbers — not whatever earlier
/// fits in the same process accumulated — constructs one of these at the
/// start of main and reports the deltas. This is the scoped-snapshot
/// companion to ml::ResetGlobal{KernelCache,Smo}Totals(), preferred in
/// benches because it composes with any fits that preceded the scope.
class SvmStatsScope {
 public:
  SvmStatsScope()
      : cache_start_(ml::GlobalKernelCacheTotals()),
        smo_start_(ml::GlobalSmoTotals()) {}

  ml::KernelCacheTotals CacheDelta() const {
    const ml::KernelCacheTotals now = ml::GlobalKernelCacheTotals();
    ml::KernelCacheTotals d;
    d.hits = now.hits - cache_start_.hits;
    d.misses = now.misses - cache_start_.misses;
    return d;
  }

  ml::SmoTotals SmoDelta() const {
    const ml::SmoTotals now = ml::GlobalSmoTotals();
    ml::SmoTotals d;
    d.fits = now.fits - smo_start_.fits;
    d.iterations = now.iterations - smo_start_.iterations;
    d.shrink_events = now.shrink_events - smo_start_.shrink_events;
    d.unshrink_events = now.unshrink_events - smo_start_.unshrink_events;
    return d;
  }

 private:
  ml::KernelCacheTotals cache_start_;
  ml::SmoTotals smo_start_;
};

/// Prints the SMO kernel-row cache and solver counters accumulated since
/// `scope` was constructed, in a stable, machine-parseable form. The
/// SVM-heavy benches (fig1, fig3, fig8, table3, table6) call this after
/// their tables so run_all.py can record cache effectiveness and
/// iteration counts in BENCH_results.json across commits (schema v4, see
/// docs/BENCH_SCHEMA.md). Counters cover every fit inside the scope (all
/// grid cells, all Monte-Carlo runs); hit_rate is n/a when no SVM fit
/// ran (e.g. fig1's smoke roster).
inline void PrintSvmCacheStats(const SvmStatsScope& scope) {
  const ml::KernelCacheTotals cache = scope.CacheDelta();
  const ml::SmoTotals smo = scope.SmoDelta();
  const uint64_t accesses = cache.hits + cache.misses;
  std::printf("[svm-cache] hits=%llu misses=%llu hit_rate=",
              static_cast<unsigned long long>(cache.hits),
              static_cast<unsigned long long>(cache.misses));
  if (accesses == 0) {
    std::printf("n/a");
  } else {
    std::printf("%.4f", static_cast<double>(cache.hits) /
                            static_cast<double>(accesses));
  }
  std::printf(" fits=%llu iters=%llu shrinks=%llu unshrinks=%llu\n",
              static_cast<unsigned long long>(smo.fits),
              static_cast<unsigned long long>(smo.iterations),
              static_cast<unsigned long long>(smo.shrink_events),
              static_cast<unsigned long long>(smo.unshrink_events));
}

/// Snapshot scope over the process-wide packed-code counters
/// (simd::GlobalPackedStats), mirroring SvmStatsScope: construct at the
/// start of main, report deltas at the end.
class PackedStatsScope {
 public:
  PackedStatsScope() : start_(simd::GlobalPackedStats()) {}

  simd::PackedStats Delta() const {
    const simd::PackedStats now = simd::GlobalPackedStats();
    simd::PackedStats d;
    d.builds = now.builds - start_.builds;
    d.rows = now.rows - start_.rows;
    d.build_words = now.build_words - start_.build_words;
    d.evals = now.evals - start_.evals;
    d.eval_words = now.eval_words - start_.eval_words;
    return d;
  }

 private:
  simd::PackedStats start_;
};

/// Prints the packed-code layer's counters accumulated since `scope` was
/// constructed, in a stable, machine-parseable form. The match-counting
/// benches (1-NN and SVM families) call this after their tables so
/// run_all.py can record the active backend and packed work volume in
/// BENCH_results.json across commits (schema v7, see
/// docs/BENCH_SCHEMA.md). words_per_row is the mean packed row width
/// (build words / rows packed); n/a when nothing was packed inside the
/// scope.
inline void PrintPackedStats(const PackedStatsScope& scope) {
  const simd::PackedStats d = scope.Delta();
  std::printf("[packed] backend=%s builds=%llu rows=%llu words_per_row=",
              simd::BackendName(simd::ActiveBackend()),
              static_cast<unsigned long long>(d.builds),
              static_cast<unsigned long long>(d.rows));
  if (d.rows == 0) {
    std::printf("n/a");
  } else {
    std::printf("%.2f", static_cast<double>(d.build_words) /
                            static_cast<double>(d.rows));
  }
  std::printf(" evals=%llu eval_words=%llu\n",
              static_cast<unsigned long long>(d.evals),
              static_cast<unsigned long long>(d.eval_words));
}

/// Which model a figure bench trains inside its Monte-Carlo loop.
enum class SimModel { kTreeGini, kOneNn, kSvmRbf };

inline const char* SimModelName(SimModel m) {
  switch (m) {
    case SimModel::kTreeGini:
      return "dt-gini";
    case SimModel::kOneNn:
      return "1nn";
    case SimModel::kSvmRbf:
      return "svm-rbf";
  }
  return "?";
}

/// Average holdout error and net variance of `model` on `variant`, over
/// NumRuns() freshly generated star schemas. `make_star(run)` samples one
/// dataset; a small validation grid tunes the tree's cp / the SVM's gamma
/// per run (quick surrogate of the paper's full grid).
template <typename MakeStar>
ml::BiasVariance SimulateVariant(MakeStar&& make_star,
                                 core::FeatureVariant variant,
                                 SimModel model, size_t runs) {
  // Fixed test set from an independent draw: run index 10^6.
  StarSchema test_star = make_star(1000000);
  Result<core::PreparedData> test_prep = core::Prepare(test_star, 999);
  if (!test_prep.ok()) {
    std::printf("prepare(test) failed: %s\n",
                test_prep.status().ToString().c_str());
    ReportFailure();
    return {};
  }
  const core::PreparedData& tp = test_prep.value();
  const std::vector<uint32_t> features =
      core::SelectVariant(tp.data, variant);
  // Use all rows of the test draw's test split as the fixed holdout.
  DataView fixed_test(&tp.data, tp.split.test, features);
  std::vector<uint8_t> labels(fixed_test.num_rows());
  for (size_t i = 0; i < labels.size(); ++i) labels[i] = fixed_test.label(i);

  // The runs execute concurrently on the parallel pool via the
  // Monte-Carlo driver: every piece of per-run state (data seed, split
  // seed, models) derives from the run index r, so the callback is
  // thread-safe and the decomposition is bit-identical at any
  // HAMLET_THREADS. A failed run returns an empty prediction vector,
  // which the decomposition rejects as a size mismatch below.
  auto run_one = [&](size_t r) -> std::vector<uint8_t> {
    StarSchema star = make_star(r);
    Result<core::PreparedData> prep = core::Prepare(star, 31 * r + 7);
    if (!prep.ok()) {
      std::printf("prepare(run %zu) failed: %s\n", r,
                  prep.status().ToString().c_str());
      ReportFailure();
      return {};
    }
    const core::PreparedData& p = prep.value();
    const std::vector<uint32_t> run_features =
        core::SelectVariant(p.data, variant);
    DataView train(&p.data, p.split.train, run_features);

    // NOTE: the fixed test set's feature ids must match the run's ids;
    // generators are deterministic in shape, so column layouts agree.
    std::vector<uint8_t> run_preds;
    switch (model) {
      case SimModel::kTreeGini: {
        ml::DecisionTree m({.minsplit = 10, .cp = 0.001});
        (void)m.Fit(train);
        run_preds = m.PredictAll(fixed_test);
        break;
      }
      case SimModel::kOneNn: {
        ml::OneNearestNeighbor m;
        (void)m.Fit(train);
        run_preds = m.PredictAll(fixed_test);
        break;
      }
      case SimModel::kSvmRbf: {
        // Gamma must track the feature-set width (the RBF exponent scale
        // is 2 x #mismatches, which grows with d), so tune it per run on
        // the run's own validation split, as the paper's grid search does.
        DataView val(&p.data, p.split.val, run_features);
        double best_acc = -1.0;
        for (double gamma : {0.05, 0.2, 1.0}) {
          ml::SvmConfig cfg;
          cfg.kernel.type = ml::KernelType::kRbf;
          cfg.kernel.gamma = gamma;
          cfg.C = 10.0;
          cfg.max_train_rows = 1500;
          ml::KernelSvm m(cfg);
          (void)m.Fit(train);
          const double acc = ml::Accuracy(m, val);
          if (acc > best_acc) {
            best_acc = acc;
            run_preds = m.PredictAll(fixed_test);
          }
        }
        break;
      }
    }
    return run_preds;
  };
  Result<ml::BiasVariance> bv =
      ml::MonteCarloBiasVariance(runs, run_one, labels, labels);
  if (!bv.ok()) {
    std::printf("decompose failed: %s\n", bv.status().ToString().c_str());
    ReportFailure();
    return {};
  }
  return bv.value();
}

}  // namespace bench
}  // namespace hamlet

#endif  // HAMLET_BENCH_BENCH_UTIL_H_
