// Figure 2: Scenario OneXr simulations with the gini decision tree.
// Panels: (A) vary n_S, (B) vary n_R = |D_FK|, (C) vary d_S, (D) vary d_R,
// (E) vary the probability parameter p, (F) vary |D_Xr|.
//
// Paper claim to check: JoinAll and NoJoin have virtually identical errors
// (near the Bayes error) across every panel; NoFK is better only when the
// tuple ratio is very low.

#include <cstdio>

#include "bench_util.h"
#include "hamlet/synth/onexr.h"

namespace {

using namespace hamlet;

void RunPanel(const char* title, const char* x_name,
              const std::vector<double>& xs,
              const std::function<synth::OneXrConfig(double)>& config_for) {
  std::printf("--- %s ---\n", title);
  std::printf("%-12s %-10s %-10s %-10s\n", x_name, "JoinAll", "NoJoin",
              "NoFK");
  for (double x : xs) {
    std::printf("%-12g", x);
    for (auto variant :
         {core::FeatureVariant::kJoinAll, core::FeatureVariant::kNoJoin,
          core::FeatureVariant::kNoFK}) {
      auto make = [&](size_t run) {
        synth::OneXrConfig cfg = config_for(x);
        cfg.seed = 7777 + 131 * run;
        return synth::GenerateOneXr(cfg);
      };
      const ml::BiasVariance bv = bench::SimulateVariant(
          make, variant, bench::SimModel::kTreeGini, bench::NumRuns());
      std::printf(" %-10.4f", bv.mean_error);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  using synth::OneXrConfig;
  bench::PrintHeader("Figure 2: OneXr simulations, decision tree (gini)");
  const bool full = bench::IsFullMode();

  // (A) vary nS; (nR, dS, dR) = (40, 4, 4).
  RunPanel("(A) vary nS", "nS",
           full ? std::vector<double>{100, 500, 1000, 2000, 5000, 10000}
                : std::vector<double>{200, 1000, 4000},
           [](double x) {
             OneXrConfig cfg;
             cfg.ns = static_cast<size_t>(x);
             return cfg;
           });

  // (B) vary nR; (nS, dS, dR) = (1000, 4, 4).
  RunPanel("(B) vary nR = |D_FK|", "nR",
           full ? std::vector<double>{1, 10, 40, 100, 250, 500, 1000}
                : std::vector<double>{10, 40, 170, 500},
           [](double x) {
             OneXrConfig cfg;
             cfg.nr = static_cast<size_t>(x);
             return cfg;
           });

  // (C) vary dS; (nS, nR, dR) = (1000, 40, 4).
  RunPanel("(C) vary dS", "dS",
           full ? std::vector<double>{1, 2, 4, 7, 10}
                : std::vector<double>{1, 4, 10},
           [](double x) {
             OneXrConfig cfg;
             cfg.ds = static_cast<size_t>(x);
             return cfg;
           });

  // (D) vary dR; (nS, nR, dS) = (1000, 40, 4).
  RunPanel("(D) vary dR", "dR",
           full ? std::vector<double>{1, 2, 4, 7, 10}
                : std::vector<double>{1, 4, 10},
           [](double x) {
             OneXrConfig cfg;
             cfg.dr = static_cast<size_t>(x);
             return cfg;
           });

  // (E) vary p; (nS, nR, dS, dR) = (1000, 40, 4, 4).
  RunPanel("(E) vary p (label noise)", "p",
           full ? std::vector<double>{0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0}
                : std::vector<double>{0.0, 0.1, 0.5, 0.9},
           [](double x) {
             OneXrConfig cfg;
             cfg.p = x;
             return cfg;
           });

  // (F) vary |D_Xr|; other features binary.
  RunPanel("(F) vary |D_Xr|", "|D_Xr|",
           full ? std::vector<double>{2, 5, 10, 20, 40}
                : std::vector<double>{2, 10, 40},
           [](double x) {
             OneXrConfig cfg;
             cfg.xr_domain = static_cast<uint32_t>(x);
             return cfg;
           });

  std::printf(
      "Expected shape (paper Fig. 2): JoinAll ~ NoJoin everywhere, near the\n"
      "Bayes error min(p, 1-p); errors rise for both only when nS is tiny\n"
      "or nR huge (tuple ratio < ~3), where NoFK is better.\n");
  return bench::ExitCode();
}
