#!/usr/bin/env python3
"""Regenerate the committed bench baseline (bench/BENCH_baseline.json).

run_all.py embeds per-bench `speedup_vs_baseline` ratios against this
file, so it must be refreshed — with THIS script, not by hand — whenever
the bench roster or the report schema changes; run_all.py nulls the
speedup columns when the baseline's schema_version is older than its
own. The procedure is documented in docs/BENCH_SCHEMA.md.

Usage (from the repo root, after building the bench targets):

    cmake --build build --target all
    bench/refresh_baseline.py --build-dir build

The script pins HAMLET_THREADS (default 4, matching the historical
baselines) so wall times stay comparable across hosts with different
core counts, runs run_all.py WITHOUT a baseline (a refresh measures, it
does not compare), validates the fresh report (expected schema version,
zero failed benches), and only then replaces the output file.
"""

import argparse
import glob
import json
import os
import stat
import subprocess
import sys

EXPECTED_SCHEMA_VERSION = 7


def find_bench_binaries(build_dir: str) -> list:
    """Bench executables under <build-dir>/bench, sorted by name."""
    paths = []
    for path in sorted(glob.glob(os.path.join(build_dir, "bench", "bench_*"))):
        if not os.path.isfile(path):
            continue
        mode = os.stat(path).st_mode
        if mode & stat.S_IXUSR and not path.endswith((".cc", ".o")):
            paths.append(path)
    return paths


def main() -> int:
    here = os.path.dirname(os.path.abspath(__file__))
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--build-dir", default="build",
                    help="CMake build tree containing the bench binaries")
    ap.add_argument("--mode", default="smoke",
                    choices=["smoke", "quick", "full"],
                    help="HAMLET_BENCH_MODE for the baseline run (the "
                         "committed baseline uses smoke, like CI)")
    ap.add_argument("--threads", default="4",
                    help="HAMLET_THREADS to pin for the run")
    ap.add_argument("--output",
                    default=os.path.join(here, "BENCH_baseline.json"),
                    help="baseline file to replace")
    args = ap.parse_args()

    benches = find_bench_binaries(args.build_dir)
    if not benches:
        sys.exit(f"[refresh_baseline] no bench binaries under "
                 f"{args.build_dir}/bench; build them first "
                 f"(cmake --build {args.build_dir})")
    print(f"[refresh_baseline] {len(benches)} benches, mode={args.mode}, "
          f"HAMLET_THREADS={args.threads}")

    # Write to a temp path first: a failed run must not clobber the
    # committed baseline.
    tmp_output = args.output + ".tmp"
    env = dict(os.environ, HAMLET_THREADS=args.threads)
    proc = subprocess.run(
        [sys.executable, os.path.join(here, "run_all.py"),
         "--mode", args.mode, "--output", tmp_output,
         "--bench"] + benches,
        env=env)
    if proc.returncode != 0:
        sys.exit(f"[refresh_baseline] run_all.py failed "
                 f"(exit {proc.returncode}); baseline left untouched")

    with open(tmp_output) as f:
        report = json.load(f)
    schema = report.get("schema_version")
    if schema != EXPECTED_SCHEMA_VERSION:
        sys.exit(f"[refresh_baseline] fresh report has schema_version "
                 f"{schema!r}, expected {EXPECTED_SCHEMA_VERSION}; "
                 "update this script alongside run_all.py")
    if report.get("num_failed"):
        sys.exit(f"[refresh_baseline] {report['num_failed']} benches "
                 "failed; refusing to commit a failing baseline")

    os.replace(tmp_output, args.output)
    print(f"[refresh_baseline] wrote {args.output}: "
          f"{report['num_benches']} benches, "
          f"{report['total_seconds']}s total")
    return 0


if __name__ == "__main__":
    sys.exit(main())
