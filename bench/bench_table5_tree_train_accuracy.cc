// Table 5: training accuracy for the same models/variants as Table 2.
//
// Paper claim to check (§5.1): JoinAll and NoJoin are almost
// indistinguishable in training accuracy too — avoiding the join does not
// change the generalisation gap; 1-NN memorises (train accuracy ~1).

#include "bench_tables.h"

int main() {
  using namespace hamlet;
  using core::FeatureVariant;
  using core::ModelKind;
  bench::PrintHeader(
      "Table 5: decision trees + 1-NN, training accuracy");

  bench::RunAccuracyTable(
      {
          {ModelKind::kTreeGini, FeatureVariant::kJoinAll},
          {ModelKind::kTreeGini, FeatureVariant::kNoJoin},
          {ModelKind::kTreeGini, FeatureVariant::kNoFK},
          {ModelKind::kTreeInfoGain, FeatureVariant::kJoinAll},
          {ModelKind::kTreeInfoGain, FeatureVariant::kNoJoin},
          {ModelKind::kTreeGainRatio, FeatureVariant::kJoinAll},
          {ModelKind::kTreeGainRatio, FeatureVariant::kNoJoin},
          {ModelKind::kOneNn, FeatureVariant::kJoinAll},
          {ModelKind::kOneNn, FeatureVariant::kNoJoin},
      },
      /*report_train_accuracy=*/true);

  std::printf(
      "\nExpected shape (paper Table 5): JoinAll ~ NoJoin per model; 1-NN\n"
      "training accuracy ~1 (pure memorisation).\n");
  return bench::ExitCode();
}
