// Figure 3: Scenario OneXr, vary n_R = |D_FK|, for (A) 1-NN and
// (B) RBF-SVM — the Figure 2(B) setup with the other two high-capacity
// models.
//
// Paper claim to check: the RBF-SVM's NoJoin error deviates from JoinAll
// once the tuple ratio falls below ~6; the 1-NN is far less stable and
// deviates even at a tuple ratio of ~100 (n_R = 10 at n_S = 1000).

#include <cstdio>

#include "bench_util.h"
#include "hamlet/synth/onexr.h"

namespace {

using namespace hamlet;

void RunModelPanel(const char* title, bench::SimModel model,
                   const std::vector<double>& nrs) {
  std::printf("--- %s ---\n", title);
  std::printf("%-12s %-10s %-10s %-10s\n", "nR", "JoinAll", "NoJoin",
              "NoFK");
  for (double nr : nrs) {
    std::printf("%-12g", nr);
    for (auto variant :
         {core::FeatureVariant::kJoinAll, core::FeatureVariant::kNoJoin,
          core::FeatureVariant::kNoFK}) {
      auto make = [&](size_t run) {
        synth::OneXrConfig cfg;
        cfg.nr = static_cast<size_t>(nr);
        cfg.seed = 8811 + 131 * run;
        return synth::GenerateOneXr(cfg);
      };
      const ml::BiasVariance bv =
          bench::SimulateVariant(make, variant, model, bench::NumRuns());
      std::printf(" %-10.4f", bv.mean_error);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  const hamlet::bench::SvmStatsScope svm_stats;
  const hamlet::bench::PackedStatsScope packed_stats;
  bench::PrintHeader("Figure 3: OneXr vary nR, 1-NN (A) and RBF-SVM (B)");
  const bool full = bench::IsFullMode();
  const std::vector<double> nrs =
      full ? std::vector<double>{1, 10, 40, 100, 250, 500, 1000}
           : std::vector<double>{10, 40, 170, 500};

  RunModelPanel("(A) 1-NN", bench::SimModel::kOneNn, nrs);
  RunModelPanel("(B) RBF-SVM", bench::SimModel::kSvmRbf, nrs);

  std::printf(
      "Expected shape (paper Fig. 3): 1-NN NoJoin degrades early (already\n"
      "at nR ~ 10); RBF-SVM NoJoin tracks JoinAll until the tuple ratio\n"
      "falls below ~6 (nR ~ 80+ at nS = 1000 -> 500 train rows).\n");
  bench::PrintSvmCacheStats(svm_stats);
  bench::PrintPackedStats(packed_stats);
  return bench::ExitCode();
}
