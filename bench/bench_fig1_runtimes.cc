// Figure 1: end-to-end runtimes (training incl. grid search + testing),
// JoinAll vs NoJoin, for six model families on the seven datasets.
//
// Uses google-benchmark for the wall-clock measurement. The paper's claim
// to check is relative: NoJoin is faster than JoinAll (roughly 2x for the
// high-capacity models, much more for Naive Bayes with backward selection,
// whose wrapper cost is quadratic in the number of features).

#include <benchmark/benchmark.h>

#include <map>
#include <memory>
#include <string>

#include "bench_util.h"
#include "hamlet/synth/realworld.h"

namespace {

using namespace hamlet;

/// Prepared datasets are cached across benchmark repetitions.
const core::PreparedData& PreparedFor(const std::string& name) {
  static std::map<std::string, std::unique_ptr<core::PreparedData>> cache;
  auto it = cache.find(name);
  if (it == cache.end()) {
    auto spec = synth::RealWorldSpecByName(name, bench::DataScale());
    StarSchema star = synth::GenerateRealWorld(spec.value());
    Result<core::PreparedData> prepared = core::Prepare(
        star, 4242, synth::RealWorldJoinOptions(spec.value()));
    it = cache
             .emplace(name, std::make_unique<core::PreparedData>(
                                std::move(prepared).value()))
             .first;
  }
  return *it->second;
}

void RunEndToEnd(benchmark::State& state, const std::string& dataset,
                 core::ModelKind kind, core::FeatureVariant variant) {
  const core::PreparedData& prepared = PreparedFor(dataset);
  for (auto _ : state) {
    Result<core::VariantResult> r =
        core::RunVariant(prepared, kind, variant, bench::EffortFromMode());
    if (!r.ok()) {
      // SkipWithError only annotates the report; flag the process too.
      bench::ReportFailure();
      state.SkipWithError(r.status().ToString().c_str());
    }
    benchmark::DoNotOptimize(r);
  }
}

void RegisterAll() {
  std::vector<std::pair<std::string, core::ModelKind>> models = {
      {"dt_gini", core::ModelKind::kTreeGini},
      {"1nn", core::ModelKind::kOneNn},
      {"svm_rbf", core::ModelKind::kSvmRbf},
      {"ann", core::ModelKind::kAnnMlp},
      {"nb_bfs", core::ModelKind::kNaiveBayesBackward},
      {"logreg_l1", core::ModelKind::kLogRegL1},
  };
  // The paper's dataset-letter order: W E F Y M L B.
  std::vector<std::string> datasets = {
      "Walmart", "Expedia", "Flights", "Yelp", "Movies", "LastFM", "Books"};
  if (bench::IsSmokeMode()) {
    // Smoke: one cheap and one expensive family on two datasets, just to
    // keep the end-to-end path (generate -> prepare -> grid search) alive.
    models = {{"dt_gini", core::ModelKind::kTreeGini},
              {"nb_bfs", core::ModelKind::kNaiveBayesBackward}};
    datasets = {"Walmart", "Yelp"};
  }
  for (const auto& [mname, kind] : models) {
    for (const auto& ds : datasets) {
      for (auto variant : {core::FeatureVariant::kJoinAll,
                           core::FeatureVariant::kNoJoin}) {
        const std::string bench_name =
            "fig1/" + mname + "/" + ds + "/" +
            core::FeatureVariantName(variant);
        benchmark::RegisterBenchmark(
            bench_name.c_str(),
            [ds, kind, variant](benchmark::State& st) {
              RunEndToEnd(st, ds, kind, variant);
            })
            ->Unit(benchmark::kMillisecond)
            ->Iterations(1)
            ->MeasureProcessCPUTime();
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const hamlet::bench::SvmStatsScope svm_stats;
  const hamlet::bench::PackedStatsScope packed_stats;
  bench::PrintHeader(
      "Figure 1: end-to-end runtimes, JoinAll vs NoJoin (expect NoJoin "
      "faster)");
  RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  bench::PrintSvmCacheStats(svm_stats);
  bench::PrintPackedStats(packed_stats);
  return bench::ExitCode();
}
