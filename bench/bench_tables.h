// Shared driver for the accuracy tables (paper Tables 2, 3, 5, 6).
//
// Runs a list of model kinds over all seven simulated datasets and prints
// one row per dataset with JoinAll / NoJoin (and NoFK for the tree tables)
// accuracies. Tables 2/3 report holdout test accuracy; Tables 5/6 report
// training accuracy for the same fitted models.

#ifndef HAMLET_BENCH_BENCH_TABLES_H_
#define HAMLET_BENCH_BENCH_TABLES_H_

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "hamlet/synth/realworld.h"

namespace hamlet {
namespace bench {

struct TableColumn {
  core::ModelKind kind;
  core::FeatureVariant variant;
};

/// Runs `columns` on every simulated dataset; prints `train_accuracy`
/// (Tables 5/6) or test accuracy (Tables 2/3) with 4 decimals.
inline void RunAccuracyTable(const std::vector<TableColumn>& columns,
                             bool report_train_accuracy) {
  const core::Effort effort = EffortFromMode();

  // Header: model/variant labels.
  std::printf("%-10s", "Dataset");
  for (const auto& col : columns) {
    const std::string label = std::string(core::ModelKindName(col.kind)) +
                              ":" +
                              core::FeatureVariantName(col.variant);
    std::printf(" %-22s", label.c_str());
  }
  std::printf("\n");

  for (const auto& spec : BenchSpecs()) {
    StarSchema star = synth::GenerateRealWorld(spec);
    Result<core::PreparedData> prepared =
        core::Prepare(star, spec.seed + 991,
                      synth::RealWorldJoinOptions(spec));
    if (!prepared.ok()) {
      std::printf("%-10s prepare failed: %s\n", spec.name.c_str(),
                  prepared.status().ToString().c_str());
      ReportFailure();
      continue;
    }
    std::printf("%-10s", spec.name.c_str());
    std::fflush(stdout);
    for (const auto& col : columns) {
      Result<core::VariantResult> r =
          core::RunVariant(prepared.value(), col.kind, col.variant, effort);
      if (!r.ok()) {
        std::printf(" %-22s", "ERR");
        ReportFailure();
        continue;
      }
      const double acc = report_train_accuracy
                             ? r.value().train_accuracy
                             : r.value().test_accuracy;
      std::printf(" %-22.4f", acc);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
}

}  // namespace bench
}  // namespace hamlet

#endif  // HAMLET_BENCH_BENCH_TABLES_H_
