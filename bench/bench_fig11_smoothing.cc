// Figure 11: foreign-key smoothing in Scenario OneXr. Vary γ = fraction of
// D_FK withheld from training; compare (A) random reassignment vs (B)
// X_R-based reassignment for JoinAll / NoJoin / NoFK with a gini tree.
//
// Paper claim to check: X_R-based smoothing keeps errors near the Bayes
// error for γ < 0.5 and degrades gracefully; random reassignment is much
// worse throughout (X_R carries the signal in OneXr).

#include <cstdio>

#include "bench_util.h"
#include "hamlet/core/fk_smoothing.h"
#include "hamlet/synth/onexr.h"

namespace {

using namespace hamlet;

/// Builds an OneXr dataset where training rows only use FK codes
/// [floor(gamma * nr), nr) — i.e. a γ fraction of the domain is unseen in
/// training but occurs at test time. Returns the gini-tree holdout error
/// after smoothing with `method`.
double ErrorWithSmoothing(double gamma, core::SmoothingMethod method,
                          core::FeatureVariant variant, uint64_t seed) {
  synth::OneXrConfig cfg;
  cfg.ns = 1500;
  cfg.nr = 60;
  cfg.seed = seed;
  StarSchema star = synth::GenerateOneXr(cfg);
  Result<core::PreparedData> prepared = core::Prepare(star, seed + 1);
  if (!prepared.ok()) {
    bench::ReportFailure();
    return -1.0;
  }
  core::PreparedData& p = prepared.value();

  // Move rows whose FK < gamma*nr out of the training split (into test)
  // to realise "unseen during training".
  const int fk_col = p.data.IndexOf("fk_r");
  const uint32_t cutoff = static_cast<uint32_t>(gamma * cfg.nr);
  std::vector<uint32_t> new_train;
  for (uint32_t row : p.split.train) {
    if (p.data.feature(row, static_cast<size_t>(fk_col)) < cutoff) {
      p.split.test.push_back(row);
    } else {
      new_train.push_back(row);
    }
  }
  p.split.train = std::move(new_train);

  // Fit the smoothing map on the training rows and rewrite the FK column.
  DataView train_fk(&p.data, p.split.train,
                    {static_cast<uint32_t>(fk_col)});
  const std::vector<uint8_t> seen = core::SeenCodes(train_fk, 0);
  Result<core::SmoothingMap> map =
      method == core::SmoothingMethod::kRandom
          ? core::BuildRandomSmoothing(seen, seed + 2)
          : core::BuildXrSmoothing(seen, star.dimension(0).table);
  if (!map.ok()) {
    bench::ReportFailure();
    return -1.0;
  }
  if (!core::ApplySmoothing(p.data, static_cast<size_t>(fk_col),
                            map.value())
           .ok()) {
    bench::ReportFailure();
    return -1.0;
  }

  SplitViews views = MakeSplitViews(p.data, p.split,
                                    core::SelectVariant(p.data, variant));
  ml::DecisionTree tree({.minsplit = 10, .cp = 0.001});
  if (!tree.Fit(views.train).ok()) {
    bench::ReportFailure();
    return -1.0;
  }
  return ml::ErrorRate(tree, views.test);
}

void RunPanel(const char* title, core::SmoothingMethod method) {
  std::printf("--- %s ---\n", title);
  std::printf("%-10s %-10s %-10s %-10s\n", "gamma", "JoinAll", "NoJoin",
              "NoFK");
  const std::vector<double> gammas =
      bench::IsFullMode()
          ? std::vector<double>{0.0, 0.2, 0.4, 0.6, 0.8, 0.95}
          : std::vector<double>{0.0, 0.4, 0.8};
  const size_t reps = bench::IsFullMode() ? 10 : 4;
  for (double gamma : gammas) {
    std::printf("%-10.2f", gamma);
    for (auto variant :
         {core::FeatureVariant::kJoinAll, core::FeatureVariant::kNoJoin,
          core::FeatureVariant::kNoFK}) {
      double total = 0.0;
      for (size_t rep = 0; rep < reps; ++rep) {
        total += ErrorWithSmoothing(gamma, method, variant, 3000 + 17 * rep);
      }
      std::printf(" %-10.4f", total / static_cast<double>(reps));
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  bench::PrintHeader("Figure 11: FK smoothing in OneXr (dt-gini)");
  RunPanel("(A) random reassignment", core::SmoothingMethod::kRandom);
  RunPanel("(B) X_R-based reassignment", core::SmoothingMethod::kXrBased);
  std::printf(
      "Expected shape (paper Fig. 11): X_R-based smoothing holds errors\n"
      "near the Bayes error (0.1) for gamma < 0.5 and degrades slower than\n"
      "random reassignment as gamma -> 1.\n");
  return bench::ExitCode();
}
