// Figure 6: Scenario XSXR simulations, decision tree (gini).
// Panels: (A) vary n_S, (B) vary n_R, (C) vary d_R, (D) vary d_S.
//
// Paper claim to check: even with the full [X_S, X_R] determining Y
// noise-free, NoJoin tracks JoinAll (largest paper gap: 0.017); NoFK stays
// low as n_R grows but loses its edge as d_R/d_S rise; all gaps close with
// more training data.

#include <cstdio>

#include "bench_util.h"
#include "hamlet/synth/xsxr.h"

namespace {

using namespace hamlet;

void RunPanel(const char* title, const char* x_name,
              const std::vector<double>& xs,
              const std::function<synth::XsxrConfig(double)>& config_for) {
  std::printf("--- %s ---\n", title);
  std::printf("%-12s %-10s %-10s %-10s\n", x_name, "JoinAll", "NoJoin",
              "NoFK");
  for (double x : xs) {
    std::printf("%-12g", x);
    for (auto variant :
         {core::FeatureVariant::kJoinAll, core::FeatureVariant::kNoJoin,
          core::FeatureVariant::kNoFK}) {
      auto make = [&](size_t run) {
        synth::XsxrConfig cfg = config_for(x);
        cfg.seed = 6161 + 131 * run;
        return synth::GenerateXsxr(cfg);
      };
      const ml::BiasVariance bv = bench::SimulateVariant(
          make, variant, bench::SimModel::kTreeGini, bench::NumRuns());
      std::printf(" %-10.4f", bv.mean_error);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  using synth::XsxrConfig;
  bench::PrintHeader("Figure 6: XSXR simulations, decision tree (gini)");
  const bool full = bench::IsFullMode();

  RunPanel("(A) vary nS", "nS",
           full ? std::vector<double>{100, 500, 1000, 2000, 5000, 10000}
                : std::vector<double>{200, 1000, 4000},
           [](double x) {
             XsxrConfig cfg;
             cfg.ns = static_cast<size_t>(x);
             return cfg;
           });

  RunPanel("(B) vary nR = |D_FK|", "nR",
           full ? std::vector<double>{10, 40, 100, 250, 500, 1000}
                : std::vector<double>{10, 40, 400},
           [](double x) {
             XsxrConfig cfg;
             cfg.nr = static_cast<size_t>(x);
             return cfg;
           });

  RunPanel("(C) vary dR", "dR",
           full ? std::vector<double>{1, 4, 7, 10}
                : std::vector<double>{1, 4, 8},
           [](double x) {
             XsxrConfig cfg;
             cfg.dr = static_cast<size_t>(x);
             return cfg;
           });

  RunPanel("(D) vary dS", "dS",
           full ? std::vector<double>{1, 4, 7, 10}
                : std::vector<double>{1, 4, 8},
           [](double x) {
             XsxrConfig cfg;
             cfg.ds = static_cast<size_t>(x);
             return cfg;
           });

  std::printf(
      "Expected shape (paper Fig. 6): NoJoin ~ JoinAll in every panel (max\n"
      "gap ~0.02); NoFK stays flat as nR rises; gaps close as nS grows.\n");
  return bench::ExitCode();
}
