// Table 6: training accuracy for the same models/variants as Table 3.
//
// Paper claim to check (§5.1): NoJoin does not change the generalisation
// gap — train accuracies track JoinAll within each model family.

#include "bench_tables.h"

int main() {
  const hamlet::bench::SvmStatsScope svm_stats;
  const hamlet::bench::PackedStatsScope packed_stats;
  using namespace hamlet;
  using core::FeatureVariant;
  using core::ModelKind;
  bench::PrintHeader(
      "Table 6: SVMs + ANN + Naive Bayes + logistic regression, "
      "training accuracy");

  bench::RunAccuracyTable(
      {
          {ModelKind::kSvmLinear, FeatureVariant::kJoinAll},
          {ModelKind::kSvmLinear, FeatureVariant::kNoJoin},
          {ModelKind::kSvmPoly, FeatureVariant::kJoinAll},
          {ModelKind::kSvmPoly, FeatureVariant::kNoJoin},
          {ModelKind::kSvmRbf, FeatureVariant::kJoinAll},
          {ModelKind::kSvmRbf, FeatureVariant::kNoJoin},
          {ModelKind::kAnnMlp, FeatureVariant::kJoinAll},
          {ModelKind::kAnnMlp, FeatureVariant::kNoJoin},
          {ModelKind::kNaiveBayesBackward, FeatureVariant::kJoinAll},
          {ModelKind::kNaiveBayesBackward, FeatureVariant::kNoJoin},
          {ModelKind::kLogRegL1, FeatureVariant::kJoinAll},
          {ModelKind::kLogRegL1, FeatureVariant::kNoJoin},
      },
      /*report_train_accuracy=*/true);

  std::printf(
      "\nExpected shape (paper Table 6): JoinAll ~ NoJoin train accuracy\n"
      "within each model family; kernel SVMs overfit more than linear.\n");
  bench::PrintSvmCacheStats(svm_stats);
  bench::PrintPackedStats(packed_stats);
  return bench::ExitCode();
}
