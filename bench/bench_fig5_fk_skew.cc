// Figure 5: Scenario OneXr with foreign-key skew, decision tree (gini).
// Panels: (A) vary the Zipfian skew parameter, (B) vary n_S at Zipf skew 2,
// (C) vary the needle probability, (D) vary n_S at needle mass 0.5.
//
// Paper claim to check: no amount of FK skew (Zipfian or needle-and-
// thread) widens the gap between NoJoin and JoinAll for the decision tree.

#include <cstdio>

#include "bench_util.h"
#include "hamlet/synth/onexr.h"

namespace {

using namespace hamlet;

void RunPanel(const char* title, const char* x_name,
              const std::vector<double>& xs,
              const std::function<synth::OneXrConfig(double)>& config_for) {
  std::printf("--- %s ---\n", title);
  std::printf("%-12s %-10s %-10s %-10s\n", x_name, "JoinAll", "NoJoin",
              "NoFK");
  for (double x : xs) {
    std::printf("%-12g", x);
    for (auto variant :
         {core::FeatureVariant::kJoinAll, core::FeatureVariant::kNoJoin,
          core::FeatureVariant::kNoFK}) {
      auto make = [&](size_t run) {
        synth::OneXrConfig cfg = config_for(x);
        cfg.seed = 5151 + 131 * run;
        return synth::GenerateOneXr(cfg);
      };
      const ml::BiasVariance bv = bench::SimulateVariant(
          make, variant, bench::SimModel::kTreeGini, bench::NumRuns());
      std::printf(" %-10.4f", bv.mean_error);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  using synth::FkSkew;
  using synth::OneXrConfig;
  bench::PrintHeader("Figure 5: OneXr with FK skew, decision tree (gini)");
  const bool full = bench::IsFullMode();

  RunPanel("(A) vary Zipf skew parameter", "zipf",
           full ? std::vector<double>{0, 1, 2, 3, 4}
                : std::vector<double>{0, 2, 4},
           [](double x) {
             OneXrConfig cfg;
             cfg.skew = FkSkew::kZipf;
             cfg.skew_param = x;
             return cfg;
           });

  RunPanel("(B) vary nS at Zipf skew 2", "nS",
           full ? std::vector<double>{100, 500, 1000, 3000, 10000}
                : std::vector<double>{200, 1000, 4000},
           [](double x) {
             OneXrConfig cfg;
             cfg.ns = static_cast<size_t>(x);
             cfg.skew = FkSkew::kZipf;
             cfg.skew_param = 2.0;
             return cfg;
           });

  RunPanel("(C) vary needle probability", "p_needle",
           full ? std::vector<double>{0.1, 0.25, 0.5, 0.75, 0.95}
                : std::vector<double>{0.1, 0.5, 0.95},
           [](double x) {
             OneXrConfig cfg;
             cfg.skew = FkSkew::kNeedleThread;
             cfg.skew_param = x;
             return cfg;
           });

  RunPanel("(D) vary nS at needle probability 0.5", "nS",
           full ? std::vector<double>{100, 500, 1000, 3000, 10000}
                : std::vector<double>{200, 1000, 4000},
           [](double x) {
             OneXrConfig cfg;
             cfg.ns = static_cast<size_t>(x);
             cfg.skew = FkSkew::kNeedleThread;
             cfg.skew_param = 0.5;
             return cfg;
           });

  std::printf(
      "Expected shape (paper Fig. 5): the NoJoin-JoinAll gap stays flat\n"
      "under both skew families; NoFK wins only at very small nS.\n");
  return bench::ExitCode();
}
