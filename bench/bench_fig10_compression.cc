// Figure 10: foreign-key domain compression on (A) Flights and (B) Yelp,
// gini decision tree with NoJoin features, budget sweep, Random hashing vs
// the supervised Sort-based method.
//
// Paper claim to check: Sort-based >= Random at small budgets and the gap
// narrows as the budget grows; accuracy at aggressive compression stays
// surprisingly close to the uncompressed NoJoin accuracy.

#include <cstdio>

#include "bench_util.h"
#include "hamlet/core/fk_compression.h"
#include "hamlet/synth/realworld.h"

namespace {

using namespace hamlet;

/// Compresses every FK column of a copy of `prepared.data` to `budget`
/// values using `method` (the map is fit on the train split only), then
/// trains a gini tree on NoJoin features and returns holdout accuracy.
double AccuracyWithBudget(const core::PreparedData& prepared,
                          uint32_t budget,
                          core::CompressionMethod method, uint64_t seed) {
  Dataset copy = prepared.data;
  const std::vector<uint32_t> fk_cols = core::ForeignKeyColumns(copy);
  for (uint32_t col : fk_cols) {
    core::DomainMapping map;
    if (method == core::CompressionMethod::kRandomHash) {
      map = core::BuildRandomHashMapping(
          copy.feature_spec(col).domain_size, budget, seed + col);
    } else {
      DataView train(&copy, prepared.split.train, {col});
      Result<core::DomainMapping> r =
          core::BuildSortedEntropyMapping(train, 0, budget);
      if (!r.ok()) {
        bench::ReportFailure();
        return -1.0;
      }
      map = std::move(r).value();
    }
    if (!core::ApplyMapping(copy, col, map).ok()) {
      bench::ReportFailure();
      return -1.0;
    }
  }
  SplitViews views =
      MakeSplitViews(copy, prepared.split,
                     core::SelectVariant(copy, core::FeatureVariant::kNoJoin));
  ml::DecisionTree tree({.minsplit = 10, .cp = 0.001});
  if (!tree.Fit(views.train).ok()) {
    bench::ReportFailure();
    return -1.0;
  }
  return ml::Accuracy(tree, views.test);
}

void RunDataset(const char* name) {
  auto spec = synth::RealWorldSpecByName(name, bench::DataScale());
  if (!spec.ok()) {
    std::printf("--- %s --- spec failed: %s\n", name,
                spec.status().ToString().c_str());
    bench::ReportFailure();
    return;
  }
  StarSchema star = synth::GenerateRealWorld(spec.value());
  Result<core::PreparedData> prepared = core::Prepare(
      star, 1234, synth::RealWorldJoinOptions(spec.value()));
  if (!prepared.ok()) {
    std::printf("--- %s --- prepare failed: %s\n", name,
                prepared.status().ToString().c_str());
    bench::ReportFailure();
    return;
  }
  const core::PreparedData& p = prepared.value();

  std::printf("--- %s ---\n", name);
  std::printf("%-10s %-14s %-14s\n", "budget", "Random", "Sort-based");
  const std::vector<uint32_t> budgets =
      bench::IsFullMode() ? std::vector<uint32_t>{2, 5, 10, 25, 50}
                          : std::vector<uint32_t>{2, 10, 50};
  const size_t random_reps = bench::IsFullMode() ? 5 : 3;
  for (uint32_t budget : budgets) {
    // Random hashing averaged over hash seeds (the paper averages 5 runs).
    double random_sum = 0.0;
    for (size_t rep = 0; rep < random_reps; ++rep) {
      random_sum += AccuracyWithBudget(
          p, budget, core::CompressionMethod::kRandomHash, 100 + 7 * rep);
    }
    const double random_acc = random_sum / static_cast<double>(random_reps);
    const double sorted_acc = AccuracyWithBudget(
        p, budget, core::CompressionMethod::kSortedEntropy, 0);
    std::printf("%-10u %-14.4f %-14.4f\n", budget, random_acc, sorted_acc);
    std::fflush(stdout);
  }
  // Uncompressed reference.
  SplitViews views = MakeSplitViews(
      p.data, p.split,
      core::SelectVariant(p.data, core::FeatureVariant::kNoJoin));
  ml::DecisionTree tree({.minsplit = 10, .cp = 0.001});
  (void)tree.Fit(views.train);
  std::printf("(uncompressed NoJoin reference: %.4f)\n\n",
              ml::Accuracy(tree, views.test));
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Figure 10: FK domain compression, Random vs Sort-based (dt-gini, "
      "NoJoin)");
  RunDataset("Flights");
  RunDataset("Yelp");
  std::printf(
      "Expected shape (paper Fig. 10): Sort-based >= Random, gap largest at\n"
      "small budgets; compressed accuracy close to (or on Yelp above) the\n"
      "uncompressed reference.\n");
  return bench::ExitCode();
}
