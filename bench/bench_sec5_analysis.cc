// Section 5 analysis: mechanism diagnostics behind the headline results.
//
// The paper explains the robustness of high-capacity models intuitively:
// (a) for 1-NN/RBF-SVM, FK dominates distances when X_S is noise, and a
//     match on FK implies a match on the (implicit) X_R, so memorising FK
//     generalises over its closed domain;
// (b) for decision trees, FK is used heavily for partitioning because it
//     functionally determines Xr.
// This bench quantifies both claims on Scenario OneXr: the fraction of
// test queries whose nearest neighbour shares their FK (and the accuracy
// conditioned on that event), and the fraction of internal tree nodes
// testing FK, as the tuple ratio varies.

#include <cstdio>

#include "bench_util.h"
#include "hamlet/ml/knn/one_nn.h"
#include "hamlet/ml/tree/decision_tree.h"
#include "hamlet/synth/onexr.h"

namespace {

using namespace hamlet;

void NearestNeighbourFkMatch() {
  std::printf("--- (a) 1-NN under NoJoin: FK-match rate of the nearest "
              "neighbour ---\n");
  std::printf("%-8s %-12s %-14s %-16s %-16s\n", "nR", "tuple-ratio",
              "fk-match-rate", "acc|fk-match", "acc|no-match");
  const std::vector<size_t> nrs = bench::IsFullMode()
                                      ? std::vector<size_t>{10, 40, 100, 250, 500}
                                      : std::vector<size_t>{10, 100, 500};
  for (size_t nr : nrs) {
    synth::OneXrConfig cfg;
    cfg.ns = 1000;
    cfg.nr = nr;
    cfg.seed = 424;
    StarSchema star = synth::GenerateOneXr(cfg);
    Result<core::PreparedData> prepared = core::Prepare(star, 425);
    if (!prepared.ok()) {
      std::printf("prepare(nR=%zu) failed: %s\n", nr,
                  prepared.status().ToString().c_str());
      bench::ReportFailure();
      continue;
    }
    const core::PreparedData& p = prepared.value();
    const auto features =
        core::SelectVariant(p.data, core::FeatureVariant::kNoJoin);
    SplitViews views = MakeSplitViews(p.data, p.split, features);

    ml::OneNearestNeighbor knn;
    (void)knn.Fit(views.train);
    // FK is the last NoJoin feature (home features come first).
    size_t fk_j = features.size();
    for (size_t j = 0; j < features.size(); ++j) {
      if (p.data.feature_spec(features[j]).role ==
          FeatureRole::kForeignKey) {
        fk_j = j;
      }
    }
    size_t match = 0, match_correct = 0, nomatch = 0, nomatch_correct = 0;
    for (size_t i = 0; i < views.test.num_rows(); ++i) {
      const size_t nn = knn.NearestIndex(views.test, i);
      const bool fk_equal =
          views.test.feature(i, fk_j) == views.train.feature(nn, fk_j);
      const bool correct =
          knn.Predict(views.test, i) == views.test.label(i);
      if (fk_equal) {
        ++match;
        match_correct += correct;
      } else {
        ++nomatch;
        nomatch_correct += correct;
      }
    }
    const double n_test = static_cast<double>(views.test.num_rows());
    std::printf("%-8zu %-12.1f %-14.3f %-16.3f %-16.3f\n", nr,
                0.5 * static_cast<double>(cfg.ns) / static_cast<double>(nr),
                match / n_test,
                match == 0 ? 0.0 : static_cast<double>(match_correct) / match,
                nomatch == 0
                    ? 0.0
                    : static_cast<double>(nomatch_correct) / nomatch);
  }
  std::printf(
      "\nExpected: the FK-match rate falls as nR grows (fewer training\n"
      "rows per FK value); accuracy conditioned on an FK match stays near\n"
      "1-p while accuracy without a match decays toward chance — the\n"
      "paper's explanation of 1-NN's instability at low tuple ratios.\n\n");
}

void TreeFkUsage() {
  std::printf("--- (b) decision tree: fraction of internal nodes testing "
              "FK ---\n");
  std::printf("%-8s %-14s %-14s\n", "nR", "JoinAll", "NoJoin");
  const std::vector<size_t> nrs = bench::IsFullMode()
                                      ? std::vector<size_t>{10, 40, 100, 250}
                                      : std::vector<size_t>{10, 100, 250};
  for (size_t nr : nrs) {
    std::printf("%-8zu", nr);
    for (auto variant : {core::FeatureVariant::kJoinAll,
                         core::FeatureVariant::kNoJoin}) {
      synth::OneXrConfig cfg;
      cfg.ns = 1000;
      cfg.nr = nr;
      cfg.seed = 626;
      StarSchema star = synth::GenerateOneXr(cfg);
      Result<core::PreparedData> prepared = core::Prepare(star, 627);
      if (!prepared.ok()) {
        std::printf("prepare(nR=%zu) failed: %s\n", nr,
                    prepared.status().ToString().c_str());
        bench::ReportFailure();
        continue;
      }
      const core::PreparedData& p = prepared.value();
      const auto features = core::SelectVariant(p.data, variant);
      SplitViews views = MakeSplitViews(p.data, p.split, features);
      ml::DecisionTree tree({.minsplit = 10, .cp = 0.001});
      (void)tree.Fit(views.train);
      const auto use = tree.FeatureUseCounts();
      size_t fk_nodes = 0, total = 0;
      for (size_t j = 0; j < use.size(); ++j) {
        total += use[j];
        if (p.data.feature_spec(features[j]).role ==
            FeatureRole::kForeignKey) {
          fk_nodes += use[j];
        }
      }
      std::printf(" %-14.3f",
                  total == 0 ? 0.0
                             : static_cast<double>(fk_nodes) /
                                   static_cast<double>(total));
    }
    std::printf("\n");
  }
  std::printf(
      "\nExpected: FK dominates the partitioning in both variants (the\n"
      "paper inspected the fitted rpart trees and found \"FK was used\n"
      "heavily ... seldom was a feature from XR used\").\n");
}

}  // namespace

int main() {
  bench::PrintHeader("Section 5 analysis: FK-match and FK-usage diagnostics");
  NearestNeighbourFkMatch();
  TreeFkUsage();
  return bench::ExitCode();
}
