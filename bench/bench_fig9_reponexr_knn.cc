// Figure 9: Scenario RepOneXr with 1-NN (same setup as Figure 7).
//
// Paper claim to check: 1-NN is the least stable — NoJoin deviates from
// JoinAll even at the *higher* tuple ratio of ~25 (panel A), and both
// trail NoFK at the lower ratio.

#include <cstdio>

#include "bench_util.h"
#include "hamlet/synth/reponexr.h"

namespace {

using namespace hamlet;

void RunPanel(const char* title, size_t nr,
              const std::vector<double>& drs) {
  std::printf("--- %s ---\n", title);
  std::printf("%-12s %-10s %-10s %-10s\n", "dR", "JoinAll", "NoJoin",
              "NoFK");
  for (double dr : drs) {
    std::printf("%-12g", dr);
    for (auto variant :
         {core::FeatureVariant::kJoinAll, core::FeatureVariant::kNoJoin,
          core::FeatureVariant::kNoFK}) {
      auto make = [&](size_t run) {
        synth::RepOneXrConfig cfg;
        cfg.nr = nr;
        cfg.dr = static_cast<size_t>(dr);
        cfg.seed = 9191 + 131 * run;
        return synth::GenerateRepOneXr(cfg);
      };
      const ml::BiasVariance bv = bench::SimulateVariant(
          make, variant, bench::SimModel::kOneNn, bench::NumRuns());
      std::printf(" %-10.4f", bv.mean_error);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  bench::PrintHeader("Figure 9: RepOneXr simulations, 1-NN");
  const hamlet::bench::PackedStatsScope packed_stats;
  const bool full = bench::IsFullMode();
  const std::vector<double> drs = full
                                      ? std::vector<double>{1, 6, 11, 16}
                                      : std::vector<double>{1, 8, 16};

  RunPanel("(A) nR = 40 (tuple ratio ~25)", 40, drs);
  RunPanel("(B) nR = 200 (tuple ratio ~5)", 200, drs);

  bench::PrintPackedStats(packed_stats);
  std::printf(
      "Expected shape (paper Fig. 9): 1-NN NoJoin deviates from JoinAll\n"
      "already in (A); both trail NoFK badly in (B).\n");
  return bench::ExitCode();
}
