// Table 3: holdout test accuracy of the three SVMs (linear, quadratic
// polynomial, RBF), the MLP ANN, Naive Bayes with backward selection, and
// L1 logistic regression, comparing JoinAll vs NoJoin on the seven
// datasets.
//
// Paper claim to check: the relative behaviour of NoJoin vs JoinAll is the
// same for high-capacity and linear models; on Yelp the drop is *smaller*
// for the RBF-SVM/ANN than for NB/logistic regression.

#include "bench_tables.h"

int main() {
  const hamlet::bench::SvmStatsScope svm_stats;
  const hamlet::bench::PackedStatsScope packed_stats;
  using namespace hamlet;
  using core::FeatureVariant;
  using core::ModelKind;
  bench::PrintHeader(
      "Table 3: SVMs + ANN + Naive Bayes + logistic regression, "
      "holdout test accuracy");

  bench::RunAccuracyTable(
      {
          {ModelKind::kSvmLinear, FeatureVariant::kJoinAll},
          {ModelKind::kSvmLinear, FeatureVariant::kNoJoin},
          {ModelKind::kSvmPoly, FeatureVariant::kJoinAll},
          {ModelKind::kSvmPoly, FeatureVariant::kNoJoin},
          {ModelKind::kSvmRbf, FeatureVariant::kJoinAll},
          {ModelKind::kSvmRbf, FeatureVariant::kNoJoin},
          {ModelKind::kAnnMlp, FeatureVariant::kJoinAll},
          {ModelKind::kAnnMlp, FeatureVariant::kNoJoin},
          {ModelKind::kNaiveBayesBackward, FeatureVariant::kJoinAll},
          {ModelKind::kNaiveBayesBackward, FeatureVariant::kNoJoin},
          {ModelKind::kLogRegL1, FeatureVariant::kJoinAll},
          {ModelKind::kLogRegL1, FeatureVariant::kNoJoin},
      },
      /*report_train_accuracy=*/false);

  std::printf(
      "\nExpected shape (paper Table 3): NoJoin within ~0.01 of JoinAll\n"
      "everywhere except Yelp (and LastFM/Books for the RBF-SVM); the\n"
      "Yelp drop is smaller for RBF-SVM/ANN (~0.01) than for NB/LR "
      "(~0.03).\n");
  bench::PrintSvmCacheStats(svm_stats);
  bench::PrintPackedStats(packed_stats);
  return bench::ExitCode();
}
