#!/usr/bin/env python3
"""Run every hamlet bench binary and aggregate timings into one JSON file.

Invoked by the `bench_run_all` CMake target as

    run_all.py --mode smoke --output BENCH_results.json --bench <bin>...

but also usable standalone against an existing build tree:

    bench/run_all.py --mode quick --output /tmp/r.json --bench build/bench/bench_*

Each bench runs with HAMLET_BENCH_MODE set to --mode; the report records
per-bench wall time, exit code, and captured stdout tail, keyed by the
paper figure/table the binary reproduces, so later perf PRs can diff
`BENCH_results.json` across commits. The report also records the threading
context (HAMLET_THREADS and the host core count) since bench wall times
are only comparable at equal parallelism. Pass --baseline <old.json> to
print per-bench speedups against a previous report and embed them as
`speedup_vs_baseline`; the CMake `bench_run_all` target passes the
committed bench/BENCH_baseline.json automatically when it exists (see
HAMLET_BENCH_BASELINE), so CI artifacts record the perf delta.
"""

import argparse
import json
import os
import subprocess
import sys
import time


def run_one(path: str, mode: str, timeout_s: int) -> dict:
    name = os.path.basename(path)
    env = dict(os.environ, HAMLET_BENCH_MODE=mode)
    start = time.monotonic()
    try:
        proc = subprocess.run(
            [path],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            timeout=timeout_s,
        )
        exit_code = proc.returncode
        output = proc.stdout
    except subprocess.TimeoutExpired as exc:
        # TimeoutExpired.stdout is bytes even when text=True.
        partial = exc.stdout or b""
        if isinstance(partial, bytes):
            partial = partial.decode(errors="replace")
        exit_code = -1
        output = partial + f"\n[timeout after {timeout_s}s]"
    except OSError as exc:
        exit_code = -1
        output = f"[failed to launch: {exc}]"
    seconds = time.monotonic() - start

    tail = output.splitlines()[-12:]
    figure = name[len("bench_"):] if name.startswith("bench_") else name
    return {
        "name": name,
        "figure": figure,
        "seconds": round(seconds, 3),
        "exit_code": exit_code,
        "ok": exit_code == 0,
        "stdout_tail": tail,
    }


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--mode", default="smoke",
                    choices=["smoke", "quick", "full"])
    ap.add_argument("--output", required=True,
                    help="path of the aggregated JSON report")
    ap.add_argument("--timeout", type=int, default=900,
                    help="per-bench timeout in seconds")
    ap.add_argument("--baseline",
                    help="previous BENCH_results.json to compute per-bench "
                         "speedups against")
    ap.add_argument("--bench", nargs="+", required=True,
                    help="bench binaries to run")
    args = ap.parse_args()

    baseline_seconds = {}
    if args.baseline:
        # A stale or unreadable baseline must not fail the bench run: the
        # speedup columns are informational, the timings are the payload.
        try:
            with open(args.baseline) as f:
                baseline = json.load(f)
            baseline_seconds = {b["name"]: b["seconds"]
                                for b in baseline.get("benches", [])}
        except (OSError, ValueError, KeyError, TypeError,
                AttributeError) as exc:
            print(f"[run_all] warning: ignoring baseline {args.baseline}: "
                  f"{exc}", file=sys.stderr)
            args.baseline = None

    results = []
    for path in args.bench:
        print(f"[run_all] {os.path.basename(path)} ...",
              flush=True)
        result = run_one(path, args.mode, args.timeout)
        status = "ok" if result["ok"] else f"FAILED ({result['exit_code']})"
        base = baseline_seconds.get(result["name"])
        if base and result["seconds"] > 0:
            result["speedup_vs_baseline"] = round(base / result["seconds"], 3)
            status += f", {result['speedup_vs_baseline']}x vs baseline"
        print(f"[run_all]   {status} in {result['seconds']}s", flush=True)
        results.append(result)

    report = {
        "schema_version": 2,
        "suite": "hamlet-bench",
        "mode": args.mode,
        # Wall times are only comparable at equal parallelism, so pin the
        # threading context alongside them (unset = hardware concurrency).
        "hamlet_threads": os.environ.get("HAMLET_THREADS"),
        "host_cores": os.cpu_count(),
        "baseline": args.baseline,
        "num_benches": len(results),
        "num_failed": sum(1 for r in results if not r["ok"]),
        "total_seconds": round(sum(r["seconds"] for r in results), 3),
        "benches": results,
    }
    with open(args.output, "w") as f:
        json.dump(report, f, indent=2)
        f.write("\n")
    print(f"[run_all] wrote {args.output}: {report['num_benches']} benches, "
          f"{report['num_failed']} failed, {report['total_seconds']}s total "
          f"(HAMLET_THREADS={report['hamlet_threads'] or 'default'}, "
          f"{report['host_cores']} cores)")
    if baseline_seconds:
        compared = [r for r in results if "speedup_vs_baseline" in r]
        if compared:
            total_base = sum(baseline_seconds[r["name"]] for r in compared)
            total_now = sum(r["seconds"] for r in compared)
            overall = total_base / total_now if total_now > 0 else 0.0
            print(f"[run_all] overall speedup vs {args.baseline}: "
                  f"{overall:.3f}x over {len(compared)} benches")
    return 1 if report["num_failed"] else 0


if __name__ == "__main__":
    sys.exit(main())
