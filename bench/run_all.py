#!/usr/bin/env python3
"""Run every hamlet bench binary and aggregate timings into one JSON file.

Invoked by the `bench_run_all` CMake target as

    run_all.py --mode smoke --output BENCH_results.json --bench <bin>...

but also usable standalone against an existing build tree:

    bench/run_all.py --mode quick --output /tmp/r.json --bench build/bench/bench_*

Each bench runs with HAMLET_BENCH_MODE set to --mode; the report records
per-bench wall time, exit code, and captured stdout tail, keyed by the
paper figure/table the binary reproduces, so later perf PRs can diff
`BENCH_results.json` across commits. The report also records the threading
context (HAMLET_THREADS and the host core count) since bench wall times
are only comparable at equal parallelism. Pass --baseline <old.json> to
print per-bench speedups against a previous report and embed them as
`speedup_vs_baseline`; the CMake `bench_run_all` target passes the
committed bench/BENCH_baseline.json automatically when it exists (see
HAMLET_BENCH_BASELINE), so CI artifacts record the perf delta.
"""

import argparse
import json
import os
import re
import subprocess
import sys
import time

# Wall times below this are rounding noise (seconds are rounded to 1 ms);
# dividing by them turns the informational speedup column into inf or a
# ZeroDivisionError, so such comparisons are reported as null instead.
MIN_COMPARABLE_SECONDS = 1e-3

# Stable marker printed by bench::PrintSvmCacheStats (SVM-heavy benches):
#   [svm-cache] hits=123 misses=45 hit_rate=0.7321 fits=9 iters=1200 \
#       shrinks=3 unshrinks=2
# (hit_rate=n/a when no SVM fit ran inside the bench's stats scope).
# The full schema is documented in docs/BENCH_SCHEMA.md.
SVM_CACHE_RE = re.compile(
    r"^\[svm-cache\] hits=(\d+) misses=(\d+) hit_rate=(n/a|[0-9.]+) "
    r"fits=(\d+) iters=(\d+) shrinks=(\d+) unshrinks=(\d+)$")


# Stable marker printed by bench_serving_throughput, one line per model
# family served through a Save/Load round trip:
#   [serving] model=dt-gini rows=6000 runs=3 seconds=0.000133 \
#       preds_per_sec=44958974.9 p50_us=43.9 p99_us=47.5 errors=0
# The full schema is documented in docs/BENCH_SCHEMA.md.
SERVING_RE = re.compile(
    r"^\[serving\] model=([A-Za-z0-9._-]+) rows=(\d+) runs=(\d+) "
    r"seconds=([0-9.]+) preds_per_sec=([0-9.]+) "
    r"p50_us=([0-9.]+) p99_us=([0-9.]+) errors=(\d+)$")

# Stable marker printed by bench::PrintPackedStats (the match-counting
# benches: 1-NN and the SVM families):
#   [packed] backend=native builds=12 rows=7200 words_per_row=2.00 \
#       evals=48000 eval_words=96000
# (words_per_row=n/a when nothing was packed inside the stats scope).
# The full schema is documented in docs/BENCH_SCHEMA.md.
PACKED_RE = re.compile(
    r"^\[packed\] backend=(scalar|swar|native) builds=(\d+) rows=(\d+) "
    r"words_per_row=(n/a|[0-9.]+) evals=(\d+) eval_words=(\d+)$")

# Baselines from reports older than this schema lack the packed-code
# counters (v7), the serving `errors` counter (pre-v6), the `serving`
# block itself (pre-v5), or the smo/svm_cache semantics (pre-v4) — and
# pre-v7 wall times predate the packed match-counting hot loops, so they
# are not comparable run-for-run; speedups against them are nulled out.
MIN_BASELINE_SCHEMA = 7


class SvmCacheParseError(ValueError):
    """A bench printed an [svm-cache] line this script cannot parse."""


class ServingParseError(ValueError):
    """A bench printed a [serving] line this script cannot parse."""


class PackedParseError(ValueError):
    """A bench printed a [packed] line this script cannot parse."""


def parse_packed(output: str):
    """Extracts the packed-code counters a bench printed, if any.

    Returns a dict, or None when the bench printed no [packed] line at
    all. A line that STARTS with the marker but does not match the
    schema raises PackedParseError, for the same fail-loudly reason as
    parse_svm_cache.
    """
    parsed = None
    for line in output.splitlines():
        if not line.startswith("[packed]"):
            continue
        match = PACKED_RE.fullmatch(line.rstrip())
        if match is None:
            raise PackedParseError(
                f"unparseable [packed] line: {line.rstrip()!r} "
                f"(expected: {PACKED_RE.pattern!r}; "
                "see docs/BENCH_SCHEMA.md)")
        parsed = match
    if parsed is None:
        return None
    words_per_row = parsed.group(4)
    return {
        "backend": parsed.group(1),
        "builds": int(parsed.group(2)),
        "rows": int(parsed.group(3)),
        "words_per_row": (None if words_per_row == "n/a"
                          else float(words_per_row)),
        "evals": int(parsed.group(5)),
        "eval_words": int(parsed.group(6)),
    }


def parse_serving(output: str):
    """Extracts the per-family serving stats a bench printed, if any.

    Returns a list of per-model dicts in print order, or None when the
    bench printed no [serving] line at all. A line that STARTS with the
    marker but does not match the schema raises ServingParseError, for
    the same fail-loudly reason as parse_svm_cache.
    """
    models = []
    for line in output.splitlines():
        if not line.startswith("[serving]"):
            continue
        match = SERVING_RE.fullmatch(line.rstrip())
        if match is None:
            raise ServingParseError(
                f"unparseable [serving] line: {line.rstrip()!r} "
                f"(expected: {SERVING_RE.pattern!r}; "
                "see docs/BENCH_SCHEMA.md)")
        models.append({
            "model": match.group(1),
            "rows": int(match.group(2)),
            "runs": int(match.group(3)),
            "model_seconds": float(match.group(4)),
            "preds_per_sec": float(match.group(5)),
            "p50_us": float(match.group(6)),
            "p99_us": float(match.group(7)),
            "errors": int(match.group(8)),
        })
    return models or None


def parse_svm_cache(output: str):
    """Extracts the cache + SMO counters a bench printed, if any.

    Returns (svm_cache, smo) dicts, or (None, None) when the bench
    printed no [svm-cache] line at all. A line that STARTS with the
    marker but does not match the schema raises SvmCacheParseError:
    silently recording nulls would hide a reporting-format regression
    from every downstream consumer of BENCH_results.json.
    """
    parsed = None
    for line in output.splitlines():
        if not line.startswith("[svm-cache]"):
            continue
        match = SVM_CACHE_RE.fullmatch(line.rstrip())
        if match is None:
            raise SvmCacheParseError(
                f"unparseable [svm-cache] line: {line.rstrip()!r} "
                f"(expected: {SVM_CACHE_RE.pattern!r}; "
                "see docs/BENCH_SCHEMA.md)")
        parsed = match
    if parsed is None:
        return None, None
    hits, misses = int(parsed.group(1)), int(parsed.group(2))
    total = hits + misses
    svm_cache = {
        "hits": hits,
        "misses": misses,
        "hit_rate": round(hits / total, 4) if total else None,
    }
    smo = {
        "fits": int(parsed.group(4)),
        "iterations": int(parsed.group(5)),
        "shrink_events": int(parsed.group(6)),
        "unshrink_events": int(parsed.group(7)),
    }
    return svm_cache, smo


def run_one(path: str, mode: str, timeout_s: int) -> dict:
    name = os.path.basename(path)
    env = dict(os.environ, HAMLET_BENCH_MODE=mode)
    start = time.monotonic()
    try:
        proc = subprocess.run(
            [path],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            timeout=timeout_s,
        )
        exit_code = proc.returncode
        output = proc.stdout
    except subprocess.TimeoutExpired as exc:
        # TimeoutExpired.stdout is bytes even when text=True.
        partial = exc.stdout or b""
        if isinstance(partial, bytes):
            partial = partial.decode(errors="replace")
        exit_code = -1
        output = partial + f"\n[timeout after {timeout_s}s]"
    except OSError as exc:
        exit_code = -1
        output = f"[failed to launch: {exc}]"
    seconds = time.monotonic() - start

    tail = output.splitlines()[-12:]
    figure = name[len("bench_"):] if name.startswith("bench_") else name
    # Fail fast on a malformed [svm-cache] line from a SUCCESSFUL bench:
    # a schema drift between bench_util.h and this parser must break the
    # run loudly, not record nulls that look like "this bench has no SVM
    # stats". A timed-out or crashed bench can legitimately leave a
    # truncated line behind; that case is already reported through
    # ok=false / exit_code, so keep its partial results.
    try:
        svm_cache, smo = parse_svm_cache(output)
    except SvmCacheParseError as exc:
        if exit_code == 0:
            sys.exit(f"[run_all] error: bench {name}: {exc}")
        svm_cache, smo = None, None
    # Same contract for [serving] lines (bench_serving_throughput).
    try:
        serving = parse_serving(output)
    except ServingParseError as exc:
        if exit_code == 0:
            sys.exit(f"[run_all] error: bench {name}: {exc}")
        serving = None
    # Same contract for [packed] lines (1-NN / SVM benches).
    try:
        packed = parse_packed(output)
    except PackedParseError as exc:
        if exit_code == 0:
            sys.exit(f"[run_all] error: bench {name}: {exc}")
        packed = None
    return {
        "name": name,
        "figure": figure,
        "seconds": round(seconds, 3),
        "exit_code": exit_code,
        "ok": exit_code == 0,
        # Kernel-row cache + SMO solver counters (SVM-heavy benches print
        # them; null for benches that don't) so CI artifacts track cache
        # effectiveness and iteration counts across commits.
        "svm_cache": svm_cache,
        "smo": smo,
        # Per-family serving throughput through a model-format round trip
        # (bench_serving_throughput prints it; null for other benches).
        "serving": serving,
        # Packed-code layer counters: active backend, build/eval volume
        # (the 1-NN and SVM benches print them; null elsewhere).
        "packed": packed,
        "stdout_tail": tail,
    }


def main() -> int:
    ap = argparse.ArgumentParser(
        description=__doc__,
        epilog="The output schema (currently version 7) is documented in "
               "docs/BENCH_SCHEMA.md, alongside the HAMLET_BENCH_MODE / "
               "HAMLET_BENCH_BASELINE knobs.")
    ap.add_argument("--mode", default="smoke",
                    choices=["smoke", "quick", "full"])
    ap.add_argument("--output", required=True,
                    help="path of the aggregated JSON report")
    ap.add_argument("--timeout", type=int, default=900,
                    help="per-bench timeout in seconds")
    ap.add_argument("--baseline",
                    help="previous BENCH_results.json to compute per-bench "
                         "speedups against")
    ap.add_argument("--bench", nargs="+", required=True,
                    help="bench binaries to run")
    args = ap.parse_args()

    baseline_seconds = {}
    if args.baseline:
        # A stale or unreadable baseline must not fail the bench run: the
        # speedup columns are informational, the timings are the payload.
        try:
            with open(args.baseline) as f:
                baseline = json.load(f)
            # A baseline from an older schema is not comparable bench-for-
            # bench (pre-v7 reports predate the packed match-counting hot
            # loops): warn and null the speedup columns rather than report
            # ratios against a different workload. Refresh the committed
            # baseline with bench/refresh_baseline.py.
            schema = baseline.get("schema_version")
            if not isinstance(schema, int) or schema < MIN_BASELINE_SCHEMA:
                print(f"[run_all] warning: baseline {args.baseline} has "
                      f"schema_version {schema!r} < {MIN_BASELINE_SCHEMA}; "
                      "speedups will be null (refresh it with "
                      "bench/refresh_baseline.py)", file=sys.stderr)
                args.baseline = None
            else:
                baseline_seconds = {b["name"]: b["seconds"]
                                    for b in baseline.get("benches", [])}
        except (OSError, ValueError, KeyError, TypeError,
                AttributeError) as exc:
            print(f"[run_all] warning: ignoring baseline {args.baseline}: "
                  f"{exc}", file=sys.stderr)
            args.baseline = None

    results = []
    for path in args.bench:
        print(f"[run_all] {os.path.basename(path)} ...",
              flush=True)
        result = run_one(path, args.mode, args.timeout)
        status = "ok" if result["ok"] else f"FAILED ({result['exit_code']})"
        base = baseline_seconds.get(result["name"])
        if base is not None:
            # Zero/near-zero wall times (possible for the fastest benches
            # in smoke mode) make the ratio meaningless: record null
            # rather than inf or a ZeroDivisionError.
            if (isinstance(base, (int, float))
                    and base >= MIN_COMPARABLE_SECONDS
                    and result["seconds"] >= MIN_COMPARABLE_SECONDS):
                result["speedup_vs_baseline"] = round(
                    base / result["seconds"], 3)
                status += f", {result['speedup_vs_baseline']}x vs baseline"
            else:
                result["speedup_vs_baseline"] = None
                status += ", speedup not comparable"
        cache = result["svm_cache"]
        if cache and cache["hit_rate"] is not None:
            status += f", cache hit rate {cache['hit_rate']}"
        print(f"[run_all]   {status} in {result['seconds']}s", flush=True)
        results.append(result)

    report = {
        # v7: per-bench `packed` block (backend + packed-code build/eval
        # counters from the simd match-counting layer), and baselines
        # older than v7 are rejected with null speedups because their
        # wall times predate the packed hot loops. v6 added the serving
        # `errors` counter; v5 the `serving` block; v4 `smo` next to
        # `svm_cache`. speedup_vs_baseline may be null when either wall
        # time is too small to compare. See docs/BENCH_SCHEMA.md.
        "schema_version": 7,
        "suite": "hamlet-bench",
        "mode": args.mode,
        # Wall times are only comparable at equal parallelism, so pin the
        # threading context alongside them (unset = hardware concurrency).
        "hamlet_threads": os.environ.get("HAMLET_THREADS"),
        "host_cores": os.cpu_count(),
        "baseline": args.baseline,
        "num_benches": len(results),
        "num_failed": sum(1 for r in results if not r["ok"]),
        "total_seconds": round(sum(r["seconds"] for r in results), 3),
        "benches": results,
    }
    with open(args.output, "w") as f:
        json.dump(report, f, indent=2)
        f.write("\n")
    print(f"[run_all] wrote {args.output}: {report['num_benches']} benches, "
          f"{report['num_failed']} failed, {report['total_seconds']}s total "
          f"(HAMLET_THREADS={report['hamlet_threads'] or 'default'}, "
          f"{report['host_cores']} cores)")
    if baseline_seconds:
        compared = [r for r in results
                    if r.get("speedup_vs_baseline") is not None]
        total_base = sum(baseline_seconds[r["name"]] for r in compared)
        total_now = sum(r["seconds"] for r in compared)
        if compared and total_now >= MIN_COMPARABLE_SECONDS:
            overall = total_base / total_now
            print(f"[run_all] overall speedup vs {args.baseline}: "
                  f"{overall:.3f}x over {len(compared)} benches")
    return 1 if report["num_failed"] else 0


if __name__ == "__main__":
    sys.exit(main())
