#!/usr/bin/env python3
"""Run every hamlet bench binary and aggregate timings into one JSON file.

Invoked by the `bench_run_all` CMake target as

    run_all.py --mode smoke --output BENCH_results.json --bench <bin>...

but also usable standalone against an existing build tree:

    bench/run_all.py --mode quick --output /tmp/r.json --bench build/bench/bench_*

Each bench runs with HAMLET_BENCH_MODE set to --mode; the report records
per-bench wall time, exit code, and captured stdout tail, keyed by the
paper figure/table the binary reproduces, so later perf PRs can diff
`BENCH_results.json` across commits. The report also records the threading
context (HAMLET_THREADS and the host core count) since bench wall times
are only comparable at equal parallelism. Pass --baseline <old.json> to
print per-bench speedups against a previous report and embed them as
`speedup_vs_baseline`; the CMake `bench_run_all` target passes the
committed bench/BENCH_baseline.json automatically when it exists (see
HAMLET_BENCH_BASELINE), so CI artifacts record the perf delta.
"""

import argparse
import json
import os
import re
import subprocess
import sys
import time

# Wall times below this are rounding noise (seconds are rounded to 1 ms);
# dividing by them turns the informational speedup column into inf or a
# ZeroDivisionError, so such comparisons are reported as null instead.
MIN_COMPARABLE_SECONDS = 1e-3

# Stable marker printed by bench::PrintSvmCacheStats (SVM-heavy benches):
# "[svm-cache] hits=123 misses=45 hit_rate=0.7321" (hit_rate=n/a when no
# SVM fit ran in the process).
SVM_CACHE_RE = re.compile(
    r"^\[svm-cache\] hits=(\d+) misses=(\d+) hit_rate=", re.MULTILINE)


def parse_svm_cache(output: str):
    """Extracts the kernel-row cache counters a bench printed, if any."""
    matches = SVM_CACHE_RE.findall(output)
    if not matches:
        return None
    hits, misses = (int(v) for v in matches[-1])
    total = hits + misses
    return {
        "hits": hits,
        "misses": misses,
        "hit_rate": round(hits / total, 4) if total else None,
    }


def run_one(path: str, mode: str, timeout_s: int) -> dict:
    name = os.path.basename(path)
    env = dict(os.environ, HAMLET_BENCH_MODE=mode)
    start = time.monotonic()
    try:
        proc = subprocess.run(
            [path],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            timeout=timeout_s,
        )
        exit_code = proc.returncode
        output = proc.stdout
    except subprocess.TimeoutExpired as exc:
        # TimeoutExpired.stdout is bytes even when text=True.
        partial = exc.stdout or b""
        if isinstance(partial, bytes):
            partial = partial.decode(errors="replace")
        exit_code = -1
        output = partial + f"\n[timeout after {timeout_s}s]"
    except OSError as exc:
        exit_code = -1
        output = f"[failed to launch: {exc}]"
    seconds = time.monotonic() - start

    tail = output.splitlines()[-12:]
    figure = name[len("bench_"):] if name.startswith("bench_") else name
    return {
        "name": name,
        "figure": figure,
        "seconds": round(seconds, 3),
        "exit_code": exit_code,
        "ok": exit_code == 0,
        # Kernel-row cache counters (SVM-heavy benches print them; null
        # for benches that don't) so CI artifacts track cache
        # effectiveness across commits.
        "svm_cache": parse_svm_cache(output),
        "stdout_tail": tail,
    }


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--mode", default="smoke",
                    choices=["smoke", "quick", "full"])
    ap.add_argument("--output", required=True,
                    help="path of the aggregated JSON report")
    ap.add_argument("--timeout", type=int, default=900,
                    help="per-bench timeout in seconds")
    ap.add_argument("--baseline",
                    help="previous BENCH_results.json to compute per-bench "
                         "speedups against")
    ap.add_argument("--bench", nargs="+", required=True,
                    help="bench binaries to run")
    args = ap.parse_args()

    baseline_seconds = {}
    if args.baseline:
        # A stale or unreadable baseline must not fail the bench run: the
        # speedup columns are informational, the timings are the payload.
        try:
            with open(args.baseline) as f:
                baseline = json.load(f)
            baseline_seconds = {b["name"]: b["seconds"]
                                for b in baseline.get("benches", [])}
        except (OSError, ValueError, KeyError, TypeError,
                AttributeError) as exc:
            print(f"[run_all] warning: ignoring baseline {args.baseline}: "
                  f"{exc}", file=sys.stderr)
            args.baseline = None

    results = []
    for path in args.bench:
        print(f"[run_all] {os.path.basename(path)} ...",
              flush=True)
        result = run_one(path, args.mode, args.timeout)
        status = "ok" if result["ok"] else f"FAILED ({result['exit_code']})"
        base = baseline_seconds.get(result["name"])
        if base is not None:
            # Zero/near-zero wall times (possible for the fastest benches
            # in smoke mode) make the ratio meaningless: record null
            # rather than inf or a ZeroDivisionError.
            if (isinstance(base, (int, float))
                    and base >= MIN_COMPARABLE_SECONDS
                    and result["seconds"] >= MIN_COMPARABLE_SECONDS):
                result["speedup_vs_baseline"] = round(
                    base / result["seconds"], 3)
                status += f", {result['speedup_vs_baseline']}x vs baseline"
            else:
                result["speedup_vs_baseline"] = None
                status += ", speedup not comparable"
        cache = result["svm_cache"]
        if cache and cache["hit_rate"] is not None:
            status += f", cache hit rate {cache['hit_rate']}"
        print(f"[run_all]   {status} in {result['seconds']}s", flush=True)
        results.append(result)

    report = {
        # v3: per-bench svm_cache counters; speedup_vs_baseline may be
        # null when either wall time is too small to compare.
        "schema_version": 3,
        "suite": "hamlet-bench",
        "mode": args.mode,
        # Wall times are only comparable at equal parallelism, so pin the
        # threading context alongside them (unset = hardware concurrency).
        "hamlet_threads": os.environ.get("HAMLET_THREADS"),
        "host_cores": os.cpu_count(),
        "baseline": args.baseline,
        "num_benches": len(results),
        "num_failed": sum(1 for r in results if not r["ok"]),
        "total_seconds": round(sum(r["seconds"] for r in results), 3),
        "benches": results,
    }
    with open(args.output, "w") as f:
        json.dump(report, f, indent=2)
        f.write("\n")
    print(f"[run_all] wrote {args.output}: {report['num_benches']} benches, "
          f"{report['num_failed']} failed, {report['total_seconds']}s total "
          f"(HAMLET_THREADS={report['hamlet_threads'] or 'default'}, "
          f"{report['host_cores']} cores)")
    if baseline_seconds:
        compared = [r for r in results
                    if r.get("speedup_vs_baseline") is not None]
        total_base = sum(baseline_seconds[r["name"]] for r in compared)
        total_now = sum(r["seconds"] for r in compared)
        if compared and total_now >= MIN_COMPARABLE_SECONDS:
            overall = total_base / total_now
            print(f"[run_all] overall speedup vs {args.baseline}: "
                  f"{overall:.3f}x over {len(compared)} benches")
    return 1 if report["num_failed"] else 0


if __name__ == "__main__":
    sys.exit(main())
