#!/usr/bin/env python3
"""Project lint for hamlet: repo-specific invariants no stock tool checks.

Rules
-----
  env-docs        Every getenv("HAMLET_*") site in src/ must appear in the
                  README environment-variable table, and every table row
                  must have a live getenv site (doc drift in either
                  direction fails). Indirect readers that take the variable
                  name as a string literal (e.g. SmoBoolFromEnv(
                  "HAMLET_SMO_WSS2", ...)) count as sites.
  determinism     No raw std::thread construction, rand()/srand(),
                  std::random_device, or wall-clock reads
                  (std::chrono::system_clock, time(), gettimeofday,
                  clock_gettime(CLOCK_REALTIME)) in src/ outside the
                  allowlist below. hamlet's reproducibility contract says
                  randomness flows from seeded generators and parallelism
                  flows through common/parallel; a stray rand() or thread
                  breaks bit-identical reruns silently. steady_clock is
                  fine (timing measurements, not schedule decisions).
  unordered-iter  No range-for over an unordered_map/unordered_set in
                  src/: iteration order is unspecified, so anything
                  derived from it (output lines, aggregates in float
                  arithmetic, serialized bytes) can differ run to run.
  test-reg        Every tests/*_test.cc must be registered in
                  tests/CMakeLists.txt — an unregistered suite compiles
                  green in nobody's build and rots.

Waivers: append `// hamlet-lint: allow(<rule>)` to the offending line
(rule is one of: determinism, unordered-iter). env-docs and test-reg are
cross-file properties with no meaningful per-line waiver.

Exit status: 0 clean, 1 findings, 2 usage/internal error.
Run from anywhere: paths resolve relative to the repo root (parent of
this script's directory). `--root DIR` overrides, for the self-test.
"""

import argparse
import os
import re
import sys

# std::thread is allowed only where the threading layer itself lives:
# the pool, and the socket front-end (acceptor + reader threads are its
# documented design; see net_server.h).
DETERMINISM_ALLOWLIST = {
    "src/hamlet/common/parallel.cc",
    "src/hamlet/serve/net/net_server.h",
    "src/hamlet/serve/net/net_server.cc",
    "src/hamlet/serve/hamlet_serve_main.cc",
}

WAIVER_RE = re.compile(r"//\s*hamlet-lint:\s*allow\(([a-z-]+)\)")

ENV_SITE_RE = re.compile(r'(?:getenv\s*\(\s*|FromEnv\s*\(\s*)"(HAMLET_[A-Z0-9_]+)"')
ENV_DOC_RE = re.compile(r"^\|\s*`(HAMLET_[A-Z0-9_]+)`\s*\|")

DETERMINISM_PATTERNS = [
    (re.compile(r"\bstd::thread\b"), "std::thread",
     "spawn through common/parallel so HAMLET_THREADS governs it"),
    (re.compile(r"(?<![\w:])s?rand\s*\("), "rand()/srand()",
     "use a seeded SplitMix64/engine so reruns are bit-identical"),
    (re.compile(r"\bstd::random_device\b"), "std::random_device",
     "nondeterministic seed source; thread the seed from config"),
    (re.compile(r"\bsystem_clock\b"), "std::chrono::system_clock",
     "wall clock; use steady_clock for intervals"),
    (re.compile(r"(?<![\w:.])time\s*\(\s*(?:NULL|nullptr|0|&)"), "time()",
     "wall clock; use steady_clock for intervals"),
    (re.compile(r"\bgettimeofday\s*\("), "gettimeofday",
     "wall clock; use steady_clock for intervals"),
    (re.compile(r"\bclock_gettime\s*\(\s*CLOCK_REALTIME"),
     "clock_gettime(CLOCK_REALTIME)",
     "wall clock; use steady_clock for intervals"),
]

UNORDERED_ITER_RE = re.compile(
    r"for\s*\(.*:\s*\w[\w\->\.\[\]\(\)]*unordered_(?:map|set)|"
    r"for\s*\(.*:\s*[^)]*\bunordered_\w+<[^)]*\)")

# Range-for whose sequence expression mentions a variable we saw declared
# as an unordered container in the same file. Two-pass: collect declared
# names, then flag `for (... : name)`.
UNORDERED_DECL_RE = re.compile(
    r"\bunordered_(?:map|set|multimap|multiset)\s*<[^;{]*?>\s+(\w+)\s*[;{=(]")

TEST_REG_RE = re.compile(r"([A-Za-z0-9_]+_test\.cc)")


def strip_comments_and_strings(line):
    """Removes string/char literals and // comments so pattern hits in
    documentation or messages don't count. Keeps the waiver comment
    readable by operating on a copy. Block comments are handled by the
    caller's state flag."""
    out = []
    i, n = 0, len(line)
    while i < n:
        c = line[i]
        if c == '"' or c == "'":
            quote = c
            i += 1
            while i < n:
                if line[i] == "\\":
                    i += 2
                    continue
                if line[i] == quote:
                    i += 1
                    break
                i += 1
            out.append('""' if quote == '"' else "''")
            continue
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        out.append(c)
        i += 1
    return "".join(out)


class Linter:
    def __init__(self, root):
        self.root = root
        self.findings = []

    def add(self, path, lineno, rule, msg):
        self.findings.append((path, lineno, rule, msg))

    def rel(self, path):
        return os.path.relpath(path, self.root).replace(os.sep, "/")

    def source_files(self, subdir, exts=(".h", ".cc")):
        base = os.path.join(self.root, subdir)
        for dirpath, _, names in os.walk(base):
            for name in sorted(names):
                if name.endswith(exts):
                    yield os.path.join(dirpath, name)

    # -- env-docs ------------------------------------------------------
    def check_env_docs(self):
        sites = {}  # var -> first "file:line"
        for path in self.source_files("src"):
            rel = self.rel(path)
            with open(path, encoding="utf-8") as f:
                for lineno, line in enumerate(f, 1):
                    for var in ENV_SITE_RE.findall(line):
                        sites.setdefault(var, "%s:%d" % (rel, lineno))
        documented = set()
        readme = os.path.join(self.root, "README.md")
        if os.path.exists(readme):
            with open(readme, encoding="utf-8") as f:
                for line in f:
                    m = ENV_DOC_RE.match(line.strip())
                    if m:
                        documented.add(m.group(1))
        for var in sorted(set(sites) - documented):
            self.add(sites[var], 0, "env-docs",
                     "%s is read here but missing from the README "
                     "environment-variable table" % var)
        for var in sorted(documented - set(sites)):
            self.add("README.md", 0, "env-docs",
                     "%s is documented in the README table but no "
                     "getenv/FromEnv site in src/ reads it" % var)

    # -- determinism + unordered-iter (per-line scans) -----------------
    def check_source_rules(self):
        for path in self.source_files("src"):
            rel = self.rel(path)
            decl_names = set()
            in_block_comment = False
            lines = open(path, encoding="utf-8").read().splitlines()
            stripped_lines = []
            for raw in lines:
                line = raw
                if in_block_comment:
                    end = line.find("*/")
                    if end < 0:
                        stripped_lines.append("")
                        continue
                    line = line[end + 2:]
                    in_block_comment = False
                # Remove complete /* ... */ spans, then detect an opener.
                line = re.sub(r"/\*.*?\*/", "", line)
                start = line.find("/*")
                if start >= 0:
                    line = line[:start]
                    in_block_comment = True
                stripped_lines.append(strip_comments_and_strings(line))
            for code in stripped_lines:
                for name in UNORDERED_DECL_RE.findall(code):
                    decl_names.add(name)
            iter_res = [
                re.compile(r"for\s*\(\s*[^;)]*:\s*" + re.escape(name) +
                           r"\s*\)")
                for name in decl_names
            ]
            for lineno, (raw, code) in enumerate(zip(lines, stripped_lines),
                                                 1):
                waiver = WAIVER_RE.search(raw)
                waived = waiver.group(1) if waiver else None
                if rel not in DETERMINISM_ALLOWLIST and waived != \
                        "determinism":
                    for pat, what, why in DETERMINISM_PATTERNS:
                        if pat.search(code):
                            self.add(rel, lineno, "determinism",
                                     "%s in src/ (%s)" % (what, why))
                if waived != "unordered-iter":
                    hit = UNORDERED_ITER_RE.search(code) or any(
                        r.search(code) for r in iter_res)
                    if hit:
                        self.add(
                            rel, lineno, "unordered-iter",
                            "range-for over an unordered container: "
                            "iteration order is unspecified; sort first "
                            "or waive with "
                            "// hamlet-lint: allow(unordered-iter)")

    # -- test-reg ------------------------------------------------------
    def check_test_registration(self):
        tests_dir = os.path.join(self.root, "tests")
        cml = os.path.join(tests_dir, "CMakeLists.txt")
        if not os.path.isdir(tests_dir):
            return
        registered = set()
        if os.path.exists(cml):
            with open(cml, encoding="utf-8") as f:
                registered = set(TEST_REG_RE.findall(f.read()))
        for name in sorted(os.listdir(tests_dir)):
            if name.endswith("_test.cc") and name not in registered:
                self.add("tests/" + name, 0, "test-reg",
                         "test suite is not registered in "
                         "tests/CMakeLists.txt; it builds in nobody's "
                         "tree")

    def run(self):
        self.check_env_docs()
        self.check_source_rules()
        self.check_test_registration()
        return self.findings


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root",
        default=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        help="repo root (default: parent of this script's directory)")
    args = parser.parse_args()
    root = os.path.abspath(args.root)
    if not os.path.isdir(os.path.join(root, "src")) and not os.path.isdir(
            os.path.join(root, "tests")):
        print("hamlet_lint: %s has neither src/ nor tests/" % root,
              file=sys.stderr)
        return 2
    findings = Linter(root).run()
    for path, lineno, rule, msg in findings:
        loc = "%s:%d" % (path, lineno) if lineno else path
        print("%s: [%s] %s" % (loc, rule, msg))
    if findings:
        print("hamlet_lint: %d finding(s)" % len(findings), file=sys.stderr)
        return 1
    print("hamlet_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
